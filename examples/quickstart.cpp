//===- quickstart.cpp - Five-minute tour of the Vault library -------------===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
// Demonstrates the core API:
//   1. check a Vault program (the paper's Figure 2 region examples),
//   2. read the protocol diagnostics,
//   3. run an accepted program under the interpreter,
//   4. lower it to C with every key and guard erased.
//
//===----------------------------------------------------------------------===//

#include "interp/Interp.h"
#include "lower/CEmitter.h"
#include "sema/Checker.h"

#include <cstdio>

using namespace vault;

static const char *Prelude = R"(
interface REGION {
  type region;
  tracked(R) region create() [new R];
  void delete(tracked(R) region) [-R];
}
extern module Region : REGION;
struct point { int x; int y; }
void print_int(int n);
)";

static void banner(const char *Title) {
  std::printf("\n==== %s ====\n", Title);
}

int main() {
  // ---- 1. A correct program is accepted. -------------------------------
  banner("okay: correct region usage (accepted)");
  {
    VaultCompiler C;
    C.addSource("okay.vlt", std::string(Prelude) + R"(
void main() {
  tracked(R) region rgn = Region.create();
  R:point pt = new(rgn) point {x=1; y=2;};
  pt.x++;
  print_int(pt.x);
  Region.delete(rgn);
}
)");
    bool Ok = C.check();
    std::printf("verdict: %s\n", Ok ? "protocol-safe" : "rejected");

    // Run it: the dynamic oracle stays clean.
    interp::Interp I(C);
    I.run("main");
    for (const std::string &L : I.output())
      std::printf("output: %s\n", L.c_str());
    std::printf("dynamic violations: %u\n", I.totalViolations());

    // Lower to C: keys and guards leave no trace.
    CEmitter E(C);
    std::string CSrc = E.emitProgram();
    std::printf("emitted %zu lines of C (no run-time key artifacts)\n",
                CEmitter::countCodeLines(CSrc));
  }

  // ---- 2. A dangling access is rejected at compile time. ----------------
  banner("dangling: access after delete (rejected)");
  {
    VaultCompiler C;
    C.addSource("dangling.vlt", std::string(Prelude) + R"(
void main() {
  tracked(R) region rgn = Region.create();
  R:point pt = new(rgn) point {x=1; y=2;};
  Region.delete(rgn);
  pt.x++; // error: key R no longer held
}
)");
    bool Ok = C.check();
    std::printf("verdict: %s\n", Ok ? "protocol-safe" : "rejected");
    std::fputs(C.diags().render().c_str(), stdout);
  }

  // ---- 3. A leak is rejected at compile time. ---------------------------
  banner("leaky: region never deleted (rejected)");
  {
    VaultCompiler C;
    C.addSource("leaky.vlt", std::string(Prelude) + R"(
void main() {
  tracked(R) region rgn = Region.create();
  R:point pt = new(rgn) point {x=1; y=2;};
  pt.x++;
}
)");
    bool Ok = C.check();
    std::printf("verdict: %s\n", Ok ? "protocol-safe" : "rejected");
    std::fputs(C.diags().render().c_str(), stdout);
  }
  return 0;
}
