//===- socket_protocol.cpp - The §2.3 socket protocol end to end ----------===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
// Checks the paper's socket programs (Figure 3) and runs them against
// the in-memory socket substrate, contrasting:
//   * the correct server (accepted, runs clean),
//   * a server that skips bind (rejected; dynamically violates),
//   * the unchecked fallible bind (rejected before it can misbehave).
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"
#include "interp/Interp.h"

#include <cstdio>

using namespace vault;

static void runOne(const char *Name) {
  std::printf("\n==== %s ====\n", Name);
  auto C = corpus::check(Name);
  bool Ok = !C->diags().hasErrors();
  std::printf("static verdict: %s (%u error(s))\n",
              Ok ? "protocol-safe" : "rejected", C->diags().errorCount());
  if (!Ok)
    std::fputs(C->diags().render().c_str(), stdout);

  interp::Interp I(*C);
  I.run("main");
  for (const std::string &L : I.output())
    std::printf("output: %s\n", L.c_str());
  unsigned Dyn = I.totalViolations() +
                 static_cast<unsigned>(I.sockets().leakedSockets().size());
  std::printf("dynamic oracle: %u violation(s), %zu leaked socket(s)\n",
              I.totalViolations(), I.sockets().leakedSockets().size());
  for (const std::string &V : I.sockets().violationLog())
    std::printf("  substrate: %s\n", V.c_str());
  (void)Dyn;
}

int main() {
  runOne("figures/fig3_server_ok");
  runOne("figures/fig3_missing_bind");
  runOne("figures/fig3_unchecked_bind");
  runOne("figures/fig3_checked_bind");
  std::printf("\nThe protocol automaton raw->named->listening->ready is "
              "enforced at compile time;\nthe substrate's run-time checks "
              "never fire for accepted programs.\n");
  return 0;
}
