//===- gdi_paint.cpp - The §6 graphics domain end to end ------------------===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
// The paper's conclusion names "graphic interfaces" as the next domain
// to validate Vault on. This example does exactly that: it checks
// GDI-style paint-session programs against the Vault interface in
// corpus/include/gdi.vlt, runs them on the graphics substrate, and
// shows the display list the verified program produced — and the
// violations the buggy ones would have caused in production.
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"
#include "interp/Interp.h"

#include <cstdio>

using namespace vault;

static void runOne(const char *Name) {
  std::printf("\n==== %s ====\n", Name);
  auto C = corpus::check(Name);
  bool Ok = !C->diags().hasErrors();
  std::printf("static verdict: %s (%u error(s))\n",
              Ok ? "protocol-safe" : "rejected", C->diags().errorCount());
  if (!Ok)
    std::fputs(C->diags().render().c_str(), stdout);

  interp::Interp I(*C);
  I.run("main");
  std::printf("display list: %zu draw command(s)\n",
              I.gdi().displayList().size());
  for (const auto &Cmd : I.gdi().displayList())
    std::printf("  line (%d,%d)-(%d,%d) pen#%llu\n", Cmd.X0, Cmd.Y0, Cmd.X1,
                Cmd.Y1, static_cast<unsigned long long>(Cmd.Pen));
  std::printf("dynamic oracle: %u violation(s), %zu leaked DC(s), %zu live "
              "pen(s)\n",
              I.gdi().violationCount(), I.gdi().leakedDcs().size(),
              I.gdi().livePenCount());
  for (const std::string &V : I.gdi().violationLog())
    std::printf("  substrate: %s\n", V.c_str());
}

int main() {
  runOne("gdi/paint_ok");
  runOne("gdi/unrestored_pen");
  runOne("gdi/conditional_restore");
  runOne("gdi/conditional_restore_fixed");
  std::printf("\nThe select/restore bracket and the paint session are "
              "protocols like any other:\nkeys make them compile-time "
              "obligations (paper §6).\n");
  return 0;
}
