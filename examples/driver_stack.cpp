//===- driver_stack.cpp - The §4 case study end to end --------------------===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
// 1. Type-checks the Vault floppy driver (corpus/driver/floppy.vlt)
//    against the Vault kernel interface — the paper's case study.
// 2. Runs its executable twin on the kernel simulator: starts the
//    device via PnP (the Figure 7 regain-ownership idiom), performs
//    I/O through a four-driver stack, queries geometry, and removes
//    the device — with the ownership oracle verifying every protocol.
// 3. Shows what happens when a buggy filter driver (which Vault would
//    reject) is inserted instead.
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"
#include "driver/FloppyDriver.h"
#include "driver/PassThroughDriver.h"

#include <cstdio>
#include <cstring>

using namespace vault;
using namespace vault::kern;
using namespace vault::drv;

static NtStatus sendPnp(Kernel &K, DeviceObject *Top, PnpMinor Minor) {
  Irp *I = K.allocateIrp(IrpMajor::Pnp, Top);
  I->currentLocation(nullptr).Minor = Minor;
  return K.sendRequest(Top, I);
}

int main() {
  // ---- 1. Verify the driver source. -------------------------------------
  std::printf("==== checking corpus/driver/floppy.vlt ====\n");
  auto C = corpus::check("driver/floppy");
  std::printf("static verdict: %s (%u error(s), %u function(s) checked)\n",
              C->diags().hasErrors() ? "rejected" : "protocol-safe",
              C->diags().errorCount(), C->stats().FunctionsChecked);
  if (C->diags().hasErrors())
    std::fputs(C->diags().render().c_str(), stdout);

  // ---- 2. Run the compiled twin under the kernel simulator. --------------
  std::printf("\n==== running the driver on the kernel simulator ====\n");
  Kernel K;
  DeviceObject *Floppy = nullptr;
  DeviceObject *Top = buildFloppyStack(K, &Floppy);
  std::printf("driver stack:");
  for (DeviceObject *D = Top; D; D = D->lower())
    std::printf(" %s%s", D->name().c_str(), D->lower() ? " ->" : "");
  std::printf("\n");

  NtStatus St = sendPnp(K, Top, PnpMinor::StartDevice);
  std::printf("PnP StartDevice: %s\n", ntStatusName(St));

  // Write a block, read it back.
  const char Msg[] = "Vault was here";
  Irp *W = K.allocateIrp(IrpMajor::Write, Top, 512);
  std::memcpy(W->buffer(nullptr).data(), Msg, sizeof(Msg));
  W->currentLocation(nullptr).Offset = 512 * 33;
  W->currentLocation(nullptr).Length = 512;
  std::printf("Write sector 33: %s\n", ntStatusName(K.sendRequest(Top, W)));

  Irp *R = K.allocateIrp(IrpMajor::Read, Top, 512);
  R->currentLocation(nullptr).Offset = 512 * 33;
  R->currentLocation(nullptr).Length = 512;
  St = K.sendRequest(Top, R);
  std::printf("Read  sector 33: %s, payload '%s'\n", ntStatusName(St),
              reinterpret_cast<const char *>(R->buffer(nullptr).data()));

  Irp *G = K.allocateIrp(IrpMajor::DeviceControl, Top,
                         sizeof(FloppyGeometry));
  G->currentLocation(nullptr).ControlCode =
      static_cast<uint32_t>(FloppyIoctl::GetGeometry);
  St = K.sendRequest(Top, G);
  FloppyGeometry Geo{};
  std::memcpy(&Geo, G->buffer(nullptr).data(), sizeof(Geo));
  std::printf("GetGeometry: %s (%u cyl x %u heads x %u spt x %u B)\n",
              ntStatusName(St), Geo.Cylinders, Geo.Heads, Geo.SectorsPerTrack,
              Geo.SectorSize);

  St = sendPnp(K, Top, PnpMinor::RemoveDevice);
  std::printf("PnP RemoveDevice: %s\n", ntStatusName(St));

  K.reportIrpLeaks();
  std::printf("kernel stats: %llu dispatches, %llu completions, "
              "%llu completion routines, %llu work items\n",
              static_cast<unsigned long long>(K.stats().Dispatches),
              static_cast<unsigned long long>(K.stats().IrpsCompleted),
              static_cast<unsigned long long>(K.stats().CompletionRoutinesRun),
              static_cast<unsigned long long>(K.stats().WorkItemsRun));
  std::printf("ownership oracle: %u violation(s)\n%s", K.oracle().total(),
              K.oracle().report().c_str());

  // ---- 3. A buggy driver (statically rejectable) misbehaves at run time. --
  std::printf("\n==== inserting a buggy filter (forgets IRPs) ====\n");
  Kernel K2;
  DeviceObject *Floppy2 = nullptr;
  DeviceObject *Top2 = buildFloppyStack(K2, &Floppy2);
  DeviceObject *Bug = K2.createDevice("buggy-filter");
  makeBuggyDriver(K2, Bug, DriverBug::ForgetIrp, /*TriggerEvery=*/2);
  K2.attach(Bug, Top2);
  sendPnp(K2, Bug, PnpMinor::StartDevice);
  for (int N = 0; N != 4; ++N) {
    Irp *I = K2.allocateIrp(IrpMajor::Read, Bug, 512);
    I->currentLocation(nullptr).Offset = 512 * N;
    I->currentLocation(nullptr).Length = 512;
    std::printf("read %d: %s\n", N, ntStatusName(K2.sendRequest(Bug, I)));
  }
  K2.reportIrpLeaks();
  std::printf("oracle after buggy runs: %u violation(s), including %u "
              "forgotten IRP(s)\n",
              K2.oracle().total(), K2.oracle().count(Violation::IrpLeak));
  std::printf("Vault rejects this bug at compile time (see "
              "corpus/figures/irp_service_leak.vlt).\n");
  return 0;
}
