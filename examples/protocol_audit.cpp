//===- protocol_audit.cpp - Static vs dynamic detection over the corpus ---===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
// Audits the whole program corpus: checks every program statically,
// runs every runnable one under the interpreter's dynamic oracle, and
// prints the comparison table that backs the paper's motivation —
// exhaustive static checking catches every seeded protocol defect,
// while a test run only catches the ones its inputs happen to trigger.
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"
#include "interp/Interp.h"

#include <cstdio>

using namespace vault;

int main() {
  std::printf("%-42s %-10s %-9s %-9s %s\n", "program", "expected", "static",
              "dynamic", "paper");
  std::printf("%.*s\n", 100,
              "--------------------------------------------------------------"
              "--------------------------------------");

  unsigned Defects = 0, StaticCaught = 0, DynCaught = 0;
  for (const auto &P : corpus::index()) {
    auto C = corpus::check(P.Name);
    bool Rejected = C->diags().hasErrors();

    std::string Dyn = "n/a";
    bool DynHit = false;
    if (P.Runnable) {
      interp::Interp I(*C);
      I.run("main");
      unsigned V = I.totalViolations() +
                   static_cast<unsigned>(I.regions().leakedRegions().size()) +
                   static_cast<unsigned>(I.sockets().leakedSockets().size()) +
                   static_cast<unsigned>(I.gdi().leakedDcs().size());
      DynHit = V > 0;
      Dyn = DynHit ? "CAUGHT" : "missed";
    }
    if (!P.ExpectAccept) {
      ++Defects;
      if (Rejected)
        ++StaticCaught;
      if (P.Runnable && DynHit)
        ++DynCaught;
    }
    std::printf("%-42s %-10s %-9s %-9s %s\n", P.Name.c_str(),
                P.ExpectAccept ? "accept" : "reject",
                Rejected ? "REJECTED" : "ok",
                P.ExpectAccept ? (P.Runnable ? (DynHit ? "DIRTY" : "clean")
                                             : "n/a")
                               : Dyn.c_str(),
                P.PaperRef.c_str());
  }

  std::printf("\nseeded defects: %u\n", Defects);
  std::printf("caught by Vault's static checker: %u (%.0f%%)\n", StaticCaught,
              100.0 * StaticCaught / Defects);
  std::printf("caught by one dynamic test run:   %u (%.0f%%)\n", DynCaught,
              100.0 * DynCaught / Defects);
  std::printf("\nThe gap is the paper's thesis: protocol bugs hide on cold "
              "paths and in\nunobservable leaks, where \"testing has not "
              "proven to be a good way to\nachieve high reliability\" (§1).\n");
  return 0;
}
