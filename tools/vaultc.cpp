//===- vaultc.cpp - The Vault compiler driver -----------------------------===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
// Usage:
//   vaultc [options] <file.vlt | corpus-name>
//
// See usage() below for the option list; it is the single source of
// truth and a CLI test cross-checks it against the flags this file
// actually parses.
//
// Inputs may be files or corpus program names (e.g. figures/fig2_okay);
// `//!include name.vlt` lines resolve against corpus/include. A
// missing include is a hard error.
//
//===----------------------------------------------------------------------===//

#include "ast/AstPrinter.h"
#include "corpus/Corpus.h"
#include "interp/Interp.h"
#include "lower/CEmitter.h"
#include "vm/VM.h"
#include "sema/Cfg.h"
#include "server/Frame.h"
#include "support/DiagnosticsFormat.h"
#include "support/Json.h"

#include <cerrno>
#include <chrono>
#include <climits>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#ifndef _WIN32
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

using namespace vault;

static void usage() {
  std::fprintf(
      stderr,
      "usage: vaultc [options] <file.vlt|corpus-name>...\n"
      "\n"
      "modes (mutually exclusive):\n"
      "  --check           parse and protocol-check only (default)\n"
      "  --emit-c          lower to C on stdout after a clean check\n"
      "  --run             interpret main() after checking (the dynamic\n"
      "                    oracle; runs even when checking fails)\n"
      "  --dump-ast        pretty-print the parsed program\n"
      "  --dump-cfg        print each function's control-flow graph as dot\n"
      "  --dump-bytecode   print each function's register bytecode (the\n"
      "                    --engine=vm compilation of its body)\n"
      "  --daemon-client   drive a vaultd check server end to end: spawn\n"
      "                    the daemon binary named by the one input, play\n"
      "                    a request script against it, print each\n"
      "                    response line. Everything after a literal --\n"
      "                    is passed to the daemon as options.\n"
      "\n"
      "daemon-client options:\n"
      "  --script FILE     request script (default: stdin). JSON lines\n"
      "                    are sent verbatim; '#open NAME PATH' and\n"
      "                    '#change NAME PATH' directives send the named\n"
      "                    file's contents (PATH relative to the script);\n"
      "                    other '#' lines are comments\n"
      "  --via-socket      connect over a Unix socket (the daemon is\n"
      "                    told to listen on a temporary socket path)\n"
      "                    instead of stdio pipes\n"
      "  --timings         print each request's round-trip latency on\n"
      "                    stderr (client-side clock; complements the\n"
      "                    handle_us field of the daemon's structured\n"
      "                    log)\n"
      "\n"
      "options:\n"
      "  --engine E        dynamic-oracle engine for --run: 'walker' (the\n"
      "                    tree-walking interpreter, default), 'vm' (the\n"
      "                    register-bytecode VM), or 'both' (run both and\n"
      "                    hard-fail on any observable divergence)\n"
      "  --max-steps N     execution budget for --run: abort with a\n"
      "                    structured interp-step-limit trap after N\n"
      "                    steps (loop iterations + calls); both engines\n"
      "                    charge at the same points\n"
      "  --jobs N          flow-check bodies on N worker threads; 0 or\n"
      "                    omitted means hardware concurrency. Output is\n"
      "                    byte-identical at any job count.\n"
      "  --cache-dir DIR   reuse per-function flow-check results across\n"
      "                    runs (incremental checking); DIR is created on\n"
      "                    demand\n"
      "  --stats           print checker statistics on stderr (counts,\n"
      "                    cache hits/misses, wall-time and held-key\n"
      "                    histograms, metrics registry)\n"
      "  --stats-json FILE write the metrics registry as JSON to FILE\n"
      "  --trace-keys      print the held-key set after every statement\n"
      "                    (on stderr)\n"
      "  --trace-json FILE write a Chrome trace-event timeline of every\n"
      "                    pass to FILE; not combinable with --dump-ast\n"
      "                    or --dump-cfg\n"
      "  --diagnostics-format FMT\n"
      "                    render diagnostics as 'text' (default),\n"
      "                    'json', or 'sarif' (SARIF 2.1.0) on stderr\n"
      "  --explain         attach provenance notes to key diagnostics\n"
      "                    (how each key entered or left the held set)\n"
      "  --help, -h        show this help\n");
}

namespace {

/// The --daemon-client shim: everything ctest needs to drive a vaultd
/// process end to end — spawn, play a request script, print the
/// responses, report the daemon's exit status.
struct DaemonClient {
  std::string DaemonPath;
  std::string ScriptPath; ///< Empty = stdin.
  bool ViaSocket = false;
  bool Timings = false; ///< --timings: per-request latency on stderr.
  std::vector<std::string> DaemonArgs;

  int run();

private:
  /// Expands one script line into the request frame to send, or
  /// returns false for comments/blank lines. Directives:
  ///   #open NAME PATH    -> open with PATH's contents as text
  ///   #change NAME PATH  -> change with PATH's contents as text
  /// PATH resolves relative to the script's directory.
  bool expandLine(const std::string &Line, std::string &Frame);

  int playScript(int InFd, int OutFd);

  unsigned NextAutoId = 1001;
};

bool DaemonClient::expandLine(const std::string &Line, std::string &Frame) {
  std::string Trimmed = Line;
  while (!Trimmed.empty() && (Trimmed.back() == '\r' || Trimmed.back() == ' '))
    Trimmed.pop_back();
  if (Trimmed.empty())
    return false;
  if (Trimmed[0] != '#') {
    Frame = Trimmed;
    return true;
  }
  std::istringstream Words(Trimmed);
  std::string Directive, Name, Path;
  Words >> Directive >> Name >> Path;
  if (Directive != "#open" && Directive != "#change")
    return false; // Comment.
  if (Name.empty() || Path.empty()) {
    std::fprintf(stderr, "vaultc: malformed script directive '%s'\n",
                 Trimmed.c_str());
    std::exit(2);
  }
  namespace fs = std::filesystem;
  fs::path Resolved(Path);
  if (Resolved.is_relative() && !ScriptPath.empty())
    Resolved = fs::path(ScriptPath).parent_path() / Resolved;
  std::ifstream In(Resolved, std::ios::binary);
  if (!In) {
    std::fprintf(stderr, "vaultc: cannot read script file '%s'\n",
                 Resolved.string().c_str());
    std::exit(2);
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  Frame = "{\"jsonrpc\": \"2.0\", \"id\": " + std::to_string(NextAutoId++) +
          ", \"method\": \"" + Directive.substr(1) +
          "\", \"params\": {\"name\": " + vault::json::str(Name) +
          ", \"text\": " + vault::json::str(Buf.str()) + "}}";
  return true;
}

#ifndef _WIN32

int DaemonClient::playScript(int InFd, int OutFd) {
  std::ifstream ScriptFile;
  std::istream *Script = &std::cin;
  if (!ScriptPath.empty()) {
    ScriptFile.open(ScriptPath, std::ios::binary);
    if (!ScriptFile) {
      std::fprintf(stderr, "vaultc: cannot read script '%s'\n",
                   ScriptPath.c_str());
      return 2;
    }
    Script = &ScriptFile;
  }

  vault::server::FrameReader Responses(64u << 20);
  char Buf[64 * 1024];
  std::string Line;
  unsigned RequestNo = 0;
  while (std::getline(*Script, Line)) {
    std::string Frame;
    if (!expandLine(Line, Frame))
      continue;
    ++RequestNo;
    auto SendAt = std::chrono::steady_clock::now();
    Frame += '\n';
    size_t Off = 0;
    while (Off < Frame.size()) {
      ssize_t W = write(OutFd, Frame.data() + Off, Frame.size() - Off);
      if (W < 0 && errno == EINTR)
        continue;
      if (W < 0) {
        std::fprintf(stderr, "vaultc: daemon closed the request pipe\n");
        return 1;
      }
      Off += static_cast<size_t>(W);
    }
    // One response per request, in order — read it before sending the
    // next frame so the pipes can never fill up against each other.
    for (;;) {
      vault::server::FrameReader::Frame R = Responses.next();
      if (R.K == vault::server::FrameReader::Kind::Ok) {
        if (Timings) {
          // Client-side clock: includes the wire, the daemon's queue
          // wait and handling — what an editor integration would feel.
          auto Us = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - SendAt)
                        .count();
          std::fprintf(stderr, "vaultc: request %u round-trip %lld us\n",
                       RequestNo, static_cast<long long>(Us));
        }
        std::printf("%s\n", R.Line.c_str());
        std::fflush(stdout);
        break;
      }
      ssize_t N = read(InFd, Buf, sizeof(Buf));
      if (N < 0 && errno == EINTR)
        continue;
      if (N <= 0) {
        std::fprintf(stderr,
                     "vaultc: daemon exited before answering: %s\n",
                     Frame.c_str());
        return 1;
      }
      Responses.feed(std::string_view(Buf, static_cast<size_t>(N)));
    }
  }
  return 0;
}

int DaemonClient::run() {
  std::string SocketPath;
  std::vector<std::string> Args;
  Args.push_back(DaemonPath);
  if (ViaSocket) {
    SocketPath = "/tmp/vaultd-client-" + std::to_string(getpid()) + ".sock";
    Args.push_back("--socket");
    Args.push_back(SocketPath);
  }
  Args.insert(Args.end(), DaemonArgs.begin(), DaemonArgs.end());

  int ToChild[2], FromChild[2];
  if (pipe(ToChild) != 0 || pipe(FromChild) != 0) {
    std::fprintf(stderr, "vaultc: pipe: %s\n", std::strerror(errno));
    return 2;
  }
  pid_t Child = fork();
  if (Child < 0) {
    std::fprintf(stderr, "vaultc: fork: %s\n", std::strerror(errno));
    return 2;
  }
  if (Child == 0) {
    dup2(ToChild[0], STDIN_FILENO);
    if (!ViaSocket)
      dup2(FromChild[1], STDOUT_FILENO);
    close(ToChild[0]);
    close(ToChild[1]);
    close(FromChild[0]);
    close(FromChild[1]);
    std::vector<char *> Argv2;
    for (std::string &A : Args)
      Argv2.push_back(A.data());
    Argv2.push_back(nullptr);
    execv(Args[0].c_str(), Argv2.data());
    std::fprintf(stderr, "vaultc: cannot exec '%s': %s\n", Args[0].c_str(),
                 std::strerror(errno));
    _exit(127);
  }
  close(ToChild[0]);
  close(FromChild[1]);

  int Status = 0, Rc = 0;
  if (!ViaSocket) {
    Rc = playScript(FromChild[0], ToChild[1]);
    close(ToChild[1]);
    close(FromChild[0]);
  } else {
    close(FromChild[0]);
    // Wait for the daemon to bind, then connect.
    int Sock = -1;
    for (int Attempt = 0; Attempt < 200; ++Attempt) {
      Sock = socket(AF_UNIX, SOCK_STREAM, 0);
      sockaddr_un Addr{};
      Addr.sun_family = AF_UNIX;
      std::strncpy(Addr.sun_path, SocketPath.c_str(),
                   sizeof(Addr.sun_path) - 1);
      if (connect(Sock, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) ==
          0)
        break;
      close(Sock);
      Sock = -1;
      usleep(25000);
    }
    if (Sock < 0) {
      std::fprintf(stderr, "vaultc: cannot connect to daemon socket '%s'\n",
                   SocketPath.c_str());
      kill(Child, SIGKILL);
      waitpid(Child, &Status, 0);
      return 1;
    }
    Rc = playScript(Sock, Sock);
    close(Sock);
    close(ToChild[1]);
  }
  waitpid(Child, &Status, 0);
  if (Rc != 0)
    return Rc;
  if (!WIFEXITED(Status) || WEXITSTATUS(Status) != 0) {
    std::fprintf(stderr, "vaultc: daemon exited abnormally (status %d)\n",
                 Status);
    return 1;
  }
  std::fprintf(stderr, "vaultc: daemon session complete, clean shutdown\n");
  return 0;
}

#else // _WIN32

int DaemonClient::run() {
  std::fprintf(stderr,
               "vaultc: --daemon-client is not supported on this platform\n");
  return 2;
}

#endif

} // namespace

int main(int Argc, char **Argv) {
  bool EmitC = false, Run = false, DumpAst = false, DumpCfg = false,
       DumpBytecode = false, Stats = false, TraceKeys = false, Explain = false;
  std::string Engine; // --engine: walker | vm | both (empty = walker).
  bool HaveMaxSteps = false;
  size_t MaxSteps = 0;
  bool DaemonClientMode = false, ViaSocket = false, Timings = false;
  std::string ScriptPath;
  std::vector<std::string> DaemonArgs;
  unsigned Jobs = 0; // 0 = hardware concurrency.
  std::string CacheDir;
  std::string TraceJsonPath, StatsJsonPath;
  DiagnosticsFormat DiagFormat = DiagnosticsFormat::Text;
  std::vector<std::string> Inputs;
  // The output modes are mutually exclusive; remember which one was
  // picked so a second one is a proper driver error, not silently
  // combined output.
  const char *Mode = nullptr;
  auto SetMode = [&](const char *M) {
    if (Mode && std::strcmp(Mode, M) != 0) {
      std::fprintf(stderr, "vaultc: conflicting modes '%s' and '%s'\n", Mode,
                   M);
      return false;
    }
    Mode = M;
    return true;
  };
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A == "--check") {
      if (!SetMode("--check"))
        return 2;
    } else if (A == "--daemon-client") {
      if (!SetMode("--daemon-client"))
        return 2;
      DaemonClientMode = true;
    } else if (A == "--script" || A.rfind("--script=", 0) == 0) {
      if (A == "--script") {
        if (I + 1 >= Argc) {
          std::fprintf(stderr, "vaultc: --script requires an argument\n");
          return 2;
        }
        ScriptPath = Argv[++I];
      } else {
        ScriptPath = A.substr(9);
      }
      if (ScriptPath.empty()) {
        std::fprintf(stderr, "vaultc: --script requires an argument\n");
        return 2;
      }
    } else if (A == "--via-socket") {
      ViaSocket = true;
    } else if (A == "--timings") {
      Timings = true;
    } else if (A == "--") {
      // Everything after the separator goes to the spawned daemon.
      for (++I; I < Argc; ++I)
        DaemonArgs.push_back(Argv[I]);
      break;
    } else if (A == "--jobs" || A.rfind("--jobs=", 0) == 0) {
      std::string Val;
      if (A == "--jobs") {
        if (I + 1 >= Argc) {
          std::fprintf(stderr, "vaultc: --jobs requires an argument\n");
          return 2;
        }
        Val = Argv[++I];
      } else {
        Val = A.substr(7);
      }
      char *End = nullptr;
      errno = 0;
      long N = std::strtol(Val.c_str(), &End, 10);
      // The range checks matter: strtol saturates on overflow
      // (ERANGE), and a long wider than unsigned would otherwise
      // truncate silently — --jobs=4294967296 must not become 0.
      if (Val.empty() || !End || *End || N < 0 || errno == ERANGE ||
          static_cast<unsigned long>(N) > UINT_MAX) {
        std::fprintf(stderr, "vaultc: invalid --jobs value '%s'\n",
                     Val.c_str());
        return 2;
      }
      Jobs = static_cast<unsigned>(N);
    } else if (A == "--cache-dir" || A.rfind("--cache-dir=", 0) == 0) {
      if (A == "--cache-dir") {
        if (I + 1 >= Argc) {
          std::fprintf(stderr, "vaultc: --cache-dir requires an argument\n");
          return 2;
        }
        CacheDir = Argv[++I];
      } else {
        CacheDir = A.substr(12);
      }
      if (CacheDir.empty()) {
        std::fprintf(stderr, "vaultc: --cache-dir requires an argument\n");
        return 2;
      }
    } else if (A == "--emit-c") {
      if (!SetMode("--emit-c"))
        return 2;
      EmitC = true;
    } else if (A == "--run") {
      if (!SetMode("--run"))
        return 2;
      Run = true;
    } else if (A == "--dump-ast") {
      if (!SetMode("--dump-ast"))
        return 2;
      DumpAst = true;
    } else if (A == "--dump-cfg") {
      if (!SetMode("--dump-cfg"))
        return 2;
      DumpCfg = true;
    } else if (A == "--dump-bytecode") {
      if (!SetMode("--dump-bytecode"))
        return 2;
      DumpBytecode = true;
    } else if (A == "--engine" || A.rfind("--engine=", 0) == 0) {
      std::string Val;
      if (A == "--engine") {
        if (I + 1 >= Argc) {
          std::fprintf(stderr, "vaultc: --engine requires an argument\n");
          return 2;
        }
        Val = Argv[++I];
      } else {
        Val = A.substr(9);
      }
      if (Val != "walker" && Val != "vm" && Val != "both") {
        std::fprintf(stderr,
                     "vaultc: invalid --engine value '%s' "
                     "(expected walker, vm, or both)\n",
                     Val.c_str());
        return 2;
      }
      Engine = Val;
    } else if (A == "--max-steps" || A.rfind("--max-steps=", 0) == 0) {
      std::string Val;
      if (A == "--max-steps") {
        if (I + 1 >= Argc) {
          std::fprintf(stderr, "vaultc: --max-steps requires an argument\n");
          return 2;
        }
        Val = Argv[++I];
      } else {
        Val = A.substr(12);
      }
      char *End = nullptr;
      errno = 0;
      // Same saturation-aware parse as --jobs; a budget of zero would
      // trap before the first statement, so require at least one step.
      long long N = std::strtoll(Val.c_str(), &End, 10);
      if (Val.empty() || !End || *End || N < 1 || errno == ERANGE) {
        std::fprintf(stderr, "vaultc: invalid --max-steps value '%s'\n",
                     Val.c_str());
        return 2;
      }
      HaveMaxSteps = true;
      MaxSteps = static_cast<size_t>(N);
    } else if (A == "--stats") {
      Stats = true;
    } else if (A == "--stats-json" || A.rfind("--stats-json=", 0) == 0) {
      if (A == "--stats-json") {
        if (I + 1 >= Argc) {
          std::fprintf(stderr, "vaultc: --stats-json requires an argument\n");
          return 2;
        }
        StatsJsonPath = Argv[++I];
      } else {
        StatsJsonPath = A.substr(13);
      }
      if (StatsJsonPath.empty()) {
        std::fprintf(stderr, "vaultc: --stats-json requires an argument\n");
        return 2;
      }
    } else if (A == "--trace-keys") {
      TraceKeys = true;
    } else if (A == "--trace-json" || A.rfind("--trace-json=", 0) == 0) {
      if (A == "--trace-json") {
        if (I + 1 >= Argc) {
          std::fprintf(stderr, "vaultc: --trace-json requires an argument\n");
          return 2;
        }
        TraceJsonPath = Argv[++I];
      } else {
        TraceJsonPath = A.substr(13);
      }
      if (TraceJsonPath.empty()) {
        std::fprintf(stderr, "vaultc: --trace-json requires an argument\n");
        return 2;
      }
    } else if (A == "--diagnostics-format" ||
               A.rfind("--diagnostics-format=", 0) == 0) {
      std::string Val;
      if (A == "--diagnostics-format") {
        if (I + 1 >= Argc) {
          std::fprintf(stderr,
                       "vaultc: --diagnostics-format requires an argument\n");
          return 2;
        }
        Val = Argv[++I];
      } else {
        Val = A.substr(21);
      }
      if (Val == "text") {
        DiagFormat = DiagnosticsFormat::Text;
      } else if (Val == "json") {
        DiagFormat = DiagnosticsFormat::Json;
      } else if (Val == "sarif") {
        DiagFormat = DiagnosticsFormat::Sarif;
      } else {
        std::fprintf(stderr,
                     "vaultc: invalid --diagnostics-format '%s' "
                     "(expected text, json, or sarif)\n",
                     Val.c_str());
        return 2;
      }
    } else if (A == "--explain") {
      Explain = true;
    } else if (A == "--help" || A == "-h") {
      usage();
      return 0;
    } else if (!A.empty() && A[0] == '-') {
      std::fprintf(stderr, "vaultc: unknown option '%s'\n", A.c_str());
      usage();
      return 2;
    } else {
      Inputs.push_back(A);
    }
  }
  if (DaemonClientMode) {
    if (Inputs.size() != 1) {
      std::fprintf(stderr, "vaultc: --daemon-client needs exactly one input "
                           "(the vaultd binary)\n");
      return 2;
    }
    DaemonClient DC;
    DC.DaemonPath = Inputs[0];
    DC.ScriptPath = ScriptPath;
    DC.ViaSocket = ViaSocket;
    DC.Timings = Timings;
    DC.DaemonArgs = DaemonArgs;
    return DC.run();
  }
  if (!ScriptPath.empty() || ViaSocket || Timings || !DaemonArgs.empty()) {
    std::fprintf(stderr,
                 "vaultc: --script, --via-socket, --timings and '--' require "
                 "--daemon-client\n");
    return 2;
  }
  if (Inputs.empty()) {
    usage();
    return 2;
  }
  if ((!Engine.empty() || HaveMaxSteps) && !Run) {
    std::fprintf(stderr, "vaultc: --engine and --max-steps require --run\n");
    return 2;
  }
  // A trace timeline of the dump modes would be all dead air: none of
  // them runs the checker pipeline the spans cover.
  if (!TraceJsonPath.empty() && (DumpAst || DumpCfg || DumpBytecode)) {
    std::fprintf(stderr, "vaultc: --trace-json cannot be combined with %s\n",
                 DumpAst   ? "--dump-ast"
                 : DumpCfg ? "--dump-cfg"
                           : "--dump-bytecode");
    return 2;
  }

  VaultCompiler C;
  C.setJobs(Jobs);
  if (!CacheDir.empty())
    C.setCacheDir(CacheDir);
  Tracer T;
  if (!TraceJsonPath.empty())
    C.setTracer(&T); // Before addSource, so parse spans are recorded.
  if (Explain)
    C.enableExplain();
  for (const std::string &In : Inputs) {
    std::vector<std::string> Missing;
    std::string Text = corpus::load(In, &Missing);
    if (Text.empty()) {
      // Not a corpus name: read as a plain file.
      std::optional<uint32_t> Id = C.sources().addFile(In);
      if (!Id) {
        std::fprintf(stderr, "vaultc: cannot read '%s'\n", In.c_str());
        return 2;
      }
      // Re-load through the corpus resolver for //!include support.
      std::string Raw(C.sources().bufferText(*Id));
      Text = corpus::resolveIncludes(Raw, &Missing);
    }
    for (const std::string &Inc : Missing)
      std::fprintf(stderr,
                   "vaultc: %s: cannot resolve include '%s' (looked in %s)\n",
                   In.c_str(), Inc.c_str(),
                   (corpus::corpusDir() + "/include").c_str());
    if (!Missing.empty())
      return 2;
    // Queued rather than parsed inline: check() parses every queued
    // buffer with the --jobs worker pool, merged in input order.
    C.queueSource(In, Text);
  }

  if (TraceKeys)
    C.enableKeyTrace();
  bool Ok = C.check();
  // json/sarif runs print only the document on stderr (no text render,
  // no summary line), so the whole stream is machine-parseable — and
  // byte-identical between cold and warm cache runs at any job count.
  switch (DiagFormat) {
  case DiagnosticsFormat::Text:
    std::fputs(C.diags().render().c_str(), stderr);
    std::fprintf(stderr, "vaultc: %s (%u error(s))\n",
                 Ok ? "program is protocol-safe" : "protocol violations found",
                 C.diags().errorCount());
    break;
  case DiagnosticsFormat::Json:
    std::fputs(renderDiagnosticsJson(C.diags()).c_str(), stderr);
    break;
  case DiagnosticsFormat::Sarif:
    std::fputs(renderDiagnosticsSarif(C.diags()).c_str(), stderr);
    break;
  }

  if (DumpAst) {
    AstPrinter P;
    std::fputs(P.print(C.ast().program()).c_str(), stdout);
  }
  if (DumpCfg) {
    for (const Decl *D : C.ast().program().Decls)
      if (const auto *F = dyn_cast<FuncDecl>(D); F && F->body()) {
        std::printf("// CFG of %s\n", F->name().c_str());
        std::fputs(Cfg::build(F).dot().c_str(), stdout);
      }
  }
  if (DumpBytecode) {
    // globals().Functions is a sorted map, so the dump order is
    // deterministic regardless of declaration order across inputs.
    bool First = true;
    for (const auto &[Name, Sig] : C.globals().Functions)
      if (Sig->Decl && Sig->Decl->body()) {
        if (!First)
          std::printf("\n");
        First = false;
        std::unique_ptr<vm::Chunk> Ch = vm::compileFunction(C, Sig->Decl);
        std::fputs(vm::disassemble(*Ch).c_str(), stdout);
      }
  }
  // All telemetry goes to stderr so it can never interleave with
  // machine-readable stdout (--emit-c, --dump-ast, --dump-cfg).
  if (TraceKeys) {
    for (const KeyTraceEntry &T : C.keyTrace()) {
      PresumedLoc P = C.sources().presumed(T.Loc);
      std::fprintf(stderr, "%s:%u: held = %s\n", T.Function.c_str(),
                   P.isValid() ? P.Line : 0, T.Held.c_str());
    }
  }
  if (Stats)
    std::fputs(C.renderStatsText().c_str(), stderr);
  if (!StatsJsonPath.empty()) {
    std::ofstream Out(StatsJsonPath, std::ios::binary | std::ios::trunc);
    Out << C.renderStatsJson();
    if (!Out.flush()) {
      std::fprintf(stderr, "vaultc: cannot write stats file '%s'\n",
                   StatsJsonPath.c_str());
      return 2;
    }
  }
  if (!TraceJsonPath.empty() && !T.writeJson(TraceJsonPath)) {
    std::fprintf(stderr, "vaultc: cannot write trace file '%s'\n",
                 TraceJsonPath.c_str());
    return 2;
  }
  if (EmitC && Ok) {
    CEmitter E(C);
    std::fputs(E.emitProgram().c_str(), stdout);
  }
  if (Run) {
    // Dyn is the --run surface's historical arithmetic (mutex leaks
    // are reported through totalViolations' lock world, not re-added).
    auto DynOf = [](interp::Machine &M) {
      return M.totalViolations() +
             static_cast<unsigned>(M.regions().leakedRegions().size()) +
             static_cast<unsigned>(M.sockets().leakedSockets().size()) +
             static_cast<unsigned>(M.gdi().leakedDcs().size());
    };
    auto RunOne = [&](interp::Machine &M) {
      if (HaveMaxSteps)
        M.MaxSteps = MaxSteps;
      return M.run("main");
    };
    // The engine whose observable behavior this invocation reports.
    std::unique_ptr<interp::Machine> M;
    if (Engine == "vm")
      M = std::make_unique<vm::Vm>(C);
    else
      M = std::make_unique<interp::Interp>(C);
    bool Ran = RunOne(*M);
    for (const std::string &L : M->output())
      std::printf("%s\n", L.c_str());
    if (!Ran)
      std::fprintf(stderr, "vaultc: run trapped: %s\n",
                   M->trapMessage().c_str());
    unsigned Dyn = DynOf(*M);
    for (const std::string &V : M->violations())
      std::fprintf(stderr, "vaultc: dynamic violation: %s\n", V.c_str());
    std::fprintf(stderr, "vaultc: dynamic oracle: %u violation(s)\n", Dyn);
    if (Engine == "both") {
      // Differential mode: the walker above is the reference; run the
      // VM on the same checked program and hard-fail on any observable
      // divergence.
      vm::Vm V(C);
      bool VmRan = RunOne(V);
      unsigned Divergences = 0;
      auto Diverge = [&](const char *Field, const std::string &Walker,
                         const std::string &Vm) {
        ++Divergences;
        std::fprintf(stderr,
                     "vaultc: engine divergence in %s:\n"
                     "  walker: %s\n"
                     "  vm:     %s\n",
                     Field, Walker.c_str(), Vm.c_str());
      };
      if (Ran != VmRan)
        Diverge("completion", Ran ? "ran" : "trapped",
                VmRan ? "ran" : "trapped");
      if (M->trapMessage() != V.trapMessage())
        Diverge("trap message", M->trapMessage(), V.trapMessage());
      if (M->output() != V.output())
        Diverge("output",
                std::to_string(M->output().size()) + " line(s)",
                std::to_string(V.output().size()) + " line(s)");
      if (M->violations() != V.violations())
        Diverge("violations",
                std::to_string(M->violations().size()) + " recorded",
                std::to_string(V.violations().size()) + " recorded");
      if (Dyn != DynOf(V))
        Diverge("dynamic-oracle count", std::to_string(Dyn),
                std::to_string(DynOf(V)));
      if (Divergences) {
        std::fprintf(stderr, "vaultc: engines diverge (%u field(s))\n",
                     Divergences);
        return 1;
      }
      std::fprintf(stderr, "vaultc: engines agree\n");
    }
    return Ok && Dyn == 0 && Ran ? 0 : 1;
  }
  return Ok ? 0 : 1;
}
