//===- vaultc.cpp - The Vault compiler driver -----------------------------===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
// Usage:
//   vaultc [options] <file.vlt | corpus-name>
//
// Options:
//   --check      Parse and type-check (default).
//   --emit-c     Lower to C on stdout after checking.
//   --run        Interpret main() after checking (runs even if
//                checking fails, to demonstrate the dynamic oracle).
//   --dump-ast   Pretty-print the parsed program.
//   --dump-cfg   Print each function's control-flow graph as dot.
//   --stats      Print checker statistics.
//   --trace-keys Print the held-key set after every statement.
//
// Inputs may be files or corpus program names (e.g. figures/fig2_okay);
// `//!include name.vlt` lines resolve against corpus/include.
//
//===----------------------------------------------------------------------===//

#include "ast/AstPrinter.h"
#include "corpus/Corpus.h"
#include "interp/Interp.h"
#include "lower/CEmitter.h"
#include "sema/Cfg.h"

#include <cstdio>
#include <cstring>

using namespace vault;

static void usage() {
  std::fprintf(
      stderr,
      "usage: vaultc [--check|--emit-c|--run|--dump-ast|--dump-cfg|--stats] "
      "<file.vlt|corpus-name>...\n");
}

int main(int Argc, char **Argv) {
  bool EmitC = false, Run = false, DumpAst = false, DumpCfg = false,
       Stats = false, TraceKeys = false;
  std::vector<std::string> Inputs;
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A == "--check") {
      // Default.
    } else if (A == "--emit-c") {
      EmitC = true;
    } else if (A == "--run") {
      Run = true;
    } else if (A == "--dump-ast") {
      DumpAst = true;
    } else if (A == "--dump-cfg") {
      DumpCfg = true;
    } else if (A == "--stats") {
      Stats = true;
    } else if (A == "--trace-keys") {
      TraceKeys = true;
    } else if (A == "--help" || A == "-h") {
      usage();
      return 0;
    } else if (!A.empty() && A[0] == '-') {
      std::fprintf(stderr, "vaultc: unknown option '%s'\n", A.c_str());
      usage();
      return 2;
    } else {
      Inputs.push_back(A);
    }
  }
  if (Inputs.empty()) {
    usage();
    return 2;
  }

  VaultCompiler C;
  for (const std::string &In : Inputs) {
    std::string Text = corpus::load(In);
    if (Text.empty()) {
      // Not a corpus name: read as a plain file.
      std::optional<uint32_t> Id = C.sources().addFile(In);
      if (!Id) {
        std::fprintf(stderr, "vaultc: cannot read '%s'\n", In.c_str());
        return 2;
      }
      // Re-load through the corpus resolver for //!include support.
      std::string Raw(C.sources().bufferText(*Id));
      std::string Resolved;
      size_t Pos = 0;
      while (Pos < Raw.size()) {
        size_t Eol = Raw.find('\n', Pos);
        if (Eol == std::string::npos)
          Eol = Raw.size();
        std::string Line = Raw.substr(Pos, Eol - Pos);
        Pos = Eol + 1;
        if (Line.rfind("//!include ", 0) == 0)
          Resolved += corpus::loadInclude(Line.substr(11));
        else
          Resolved += Line;
        Resolved += '\n';
      }
      C.addSource(In, Resolved);
    } else {
      C.addSource(In, Text);
    }
  }

  if (TraceKeys)
    C.enableKeyTrace();
  bool Ok = C.check();
  std::fputs(C.diags().render().c_str(), stderr);
  std::fprintf(stderr, "vaultc: %s (%u error(s))\n",
               Ok ? "program is protocol-safe" : "protocol violations found",
               C.diags().errorCount());

  if (DumpAst) {
    AstPrinter P;
    std::fputs(P.print(C.ast().program()).c_str(), stdout);
  }
  if (DumpCfg) {
    for (const Decl *D : C.ast().program().Decls)
      if (const auto *F = dyn_cast<FuncDecl>(D); F && F->body()) {
        std::printf("// CFG of %s\n", F->name().c_str());
        std::fputs(Cfg::build(F).dot().c_str(), stdout);
      }
  }
  if (TraceKeys) {
    for (const KeyTraceEntry &T : C.keyTrace()) {
      PresumedLoc P = C.sources().presumed(T.Loc);
      std::printf("%s:%u: held = %s\n", T.Function.c_str(),
                  P.isValid() ? P.Line : 0, T.Held.c_str());
    }
  }
  if (Stats) {
    std::printf("functions checked: %u\n", C.stats().FunctionsChecked);
    std::printf("declarations:      %u\n", C.stats().DeclsRegistered);
    std::printf("keys allocated:    %zu\n", C.types().keys().size());
  }
  if (EmitC && Ok) {
    CEmitter E(C);
    std::fputs(E.emitProgram().c_str(), stdout);
  }
  if (Run) {
    interp::Interp I(C);
    bool Ran = I.run("main");
    for (const std::string &L : I.output())
      std::printf("%s\n", L.c_str());
    if (!Ran)
      std::fprintf(stderr, "vaultc: run trapped: %s\n",
                   I.trapMessage().c_str());
    unsigned Dyn = I.totalViolations() +
                   static_cast<unsigned>(I.regions().leakedRegions().size()) +
                   static_cast<unsigned>(I.sockets().leakedSockets().size()) +
                   static_cast<unsigned>(I.gdi().leakedDcs().size());
    for (const std::string &V : I.violations())
      std::fprintf(stderr, "vaultc: dynamic violation: %s\n", V.c_str());
    std::fprintf(stderr, "vaultc: dynamic oracle: %u violation(s)\n", Dyn);
    return Ok && Dyn == 0 && Ran ? 0 : 1;
  }
  return Ok ? 0 : 1;
}
