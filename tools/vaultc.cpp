//===- vaultc.cpp - The Vault compiler driver -----------------------------===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
// Usage:
//   vaultc [options] <file.vlt | corpus-name>
//
// See usage() below for the option list; it is the single source of
// truth and a CLI test cross-checks it against the flags this file
// actually parses.
//
// Inputs may be files or corpus program names (e.g. figures/fig2_okay);
// `//!include name.vlt` lines resolve against corpus/include. A
// missing include is a hard error.
//
//===----------------------------------------------------------------------===//

#include "ast/AstPrinter.h"
#include "corpus/Corpus.h"
#include "interp/Interp.h"
#include "lower/CEmitter.h"
#include "sema/Cfg.h"
#include "support/DiagnosticsFormat.h"

#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

using namespace vault;

static void usage() {
  std::fprintf(
      stderr,
      "usage: vaultc [options] <file.vlt|corpus-name>...\n"
      "\n"
      "modes (mutually exclusive):\n"
      "  --check           parse and protocol-check only (default)\n"
      "  --emit-c          lower to C on stdout after a clean check\n"
      "  --run             interpret main() after checking (the dynamic\n"
      "                    oracle; runs even when checking fails)\n"
      "  --dump-ast        pretty-print the parsed program\n"
      "  --dump-cfg        print each function's control-flow graph as dot\n"
      "\n"
      "options:\n"
      "  --jobs N          flow-check bodies on N worker threads; 0 or\n"
      "                    omitted means hardware concurrency. Output is\n"
      "                    byte-identical at any job count.\n"
      "  --cache-dir DIR   reuse per-function flow-check results across\n"
      "                    runs (incremental checking); DIR is created on\n"
      "                    demand\n"
      "  --stats           print checker statistics on stderr (counts,\n"
      "                    cache hits/misses, wall-time and held-key\n"
      "                    histograms, metrics registry)\n"
      "  --stats-json FILE write the metrics registry as JSON to FILE\n"
      "  --trace-keys      print the held-key set after every statement\n"
      "                    (on stderr)\n"
      "  --trace-json FILE write a Chrome trace-event timeline of every\n"
      "                    pass to FILE; not combinable with --dump-ast\n"
      "                    or --dump-cfg\n"
      "  --diagnostics-format FMT\n"
      "                    render diagnostics as 'text' (default),\n"
      "                    'json', or 'sarif' (SARIF 2.1.0) on stderr\n"
      "  --explain         attach provenance notes to key diagnostics\n"
      "                    (how each key entered or left the held set)\n"
      "  --help, -h        show this help\n");
}

int main(int Argc, char **Argv) {
  bool EmitC = false, Run = false, DumpAst = false, DumpCfg = false,
       Stats = false, TraceKeys = false, Explain = false;
  unsigned Jobs = 0; // 0 = hardware concurrency.
  std::string CacheDir;
  std::string TraceJsonPath, StatsJsonPath;
  DiagnosticsFormat DiagFormat = DiagnosticsFormat::Text;
  std::vector<std::string> Inputs;
  // The output modes are mutually exclusive; remember which one was
  // picked so a second one is a proper driver error, not silently
  // combined output.
  const char *Mode = nullptr;
  auto SetMode = [&](const char *M) {
    if (Mode && std::strcmp(Mode, M) != 0) {
      std::fprintf(stderr, "vaultc: conflicting modes '%s' and '%s'\n", Mode,
                   M);
      return false;
    }
    Mode = M;
    return true;
  };
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A == "--check") {
      if (!SetMode("--check"))
        return 2;
    } else if (A == "--jobs" || A.rfind("--jobs=", 0) == 0) {
      std::string Val;
      if (A == "--jobs") {
        if (I + 1 >= Argc) {
          std::fprintf(stderr, "vaultc: --jobs requires an argument\n");
          return 2;
        }
        Val = Argv[++I];
      } else {
        Val = A.substr(7);
      }
      char *End = nullptr;
      errno = 0;
      long N = std::strtol(Val.c_str(), &End, 10);
      // The range checks matter: strtol saturates on overflow
      // (ERANGE), and a long wider than unsigned would otherwise
      // truncate silently — --jobs=4294967296 must not become 0.
      if (Val.empty() || !End || *End || N < 0 || errno == ERANGE ||
          static_cast<unsigned long>(N) > UINT_MAX) {
        std::fprintf(stderr, "vaultc: invalid --jobs value '%s'\n",
                     Val.c_str());
        return 2;
      }
      Jobs = static_cast<unsigned>(N);
    } else if (A == "--cache-dir" || A.rfind("--cache-dir=", 0) == 0) {
      if (A == "--cache-dir") {
        if (I + 1 >= Argc) {
          std::fprintf(stderr, "vaultc: --cache-dir requires an argument\n");
          return 2;
        }
        CacheDir = Argv[++I];
      } else {
        CacheDir = A.substr(12);
      }
      if (CacheDir.empty()) {
        std::fprintf(stderr, "vaultc: --cache-dir requires an argument\n");
        return 2;
      }
    } else if (A == "--emit-c") {
      if (!SetMode("--emit-c"))
        return 2;
      EmitC = true;
    } else if (A == "--run") {
      if (!SetMode("--run"))
        return 2;
      Run = true;
    } else if (A == "--dump-ast") {
      if (!SetMode("--dump-ast"))
        return 2;
      DumpAst = true;
    } else if (A == "--dump-cfg") {
      if (!SetMode("--dump-cfg"))
        return 2;
      DumpCfg = true;
    } else if (A == "--stats") {
      Stats = true;
    } else if (A == "--stats-json" || A.rfind("--stats-json=", 0) == 0) {
      if (A == "--stats-json") {
        if (I + 1 >= Argc) {
          std::fprintf(stderr, "vaultc: --stats-json requires an argument\n");
          return 2;
        }
        StatsJsonPath = Argv[++I];
      } else {
        StatsJsonPath = A.substr(13);
      }
      if (StatsJsonPath.empty()) {
        std::fprintf(stderr, "vaultc: --stats-json requires an argument\n");
        return 2;
      }
    } else if (A == "--trace-keys") {
      TraceKeys = true;
    } else if (A == "--trace-json" || A.rfind("--trace-json=", 0) == 0) {
      if (A == "--trace-json") {
        if (I + 1 >= Argc) {
          std::fprintf(stderr, "vaultc: --trace-json requires an argument\n");
          return 2;
        }
        TraceJsonPath = Argv[++I];
      } else {
        TraceJsonPath = A.substr(13);
      }
      if (TraceJsonPath.empty()) {
        std::fprintf(stderr, "vaultc: --trace-json requires an argument\n");
        return 2;
      }
    } else if (A == "--diagnostics-format" ||
               A.rfind("--diagnostics-format=", 0) == 0) {
      std::string Val;
      if (A == "--diagnostics-format") {
        if (I + 1 >= Argc) {
          std::fprintf(stderr,
                       "vaultc: --diagnostics-format requires an argument\n");
          return 2;
        }
        Val = Argv[++I];
      } else {
        Val = A.substr(21);
      }
      if (Val == "text") {
        DiagFormat = DiagnosticsFormat::Text;
      } else if (Val == "json") {
        DiagFormat = DiagnosticsFormat::Json;
      } else if (Val == "sarif") {
        DiagFormat = DiagnosticsFormat::Sarif;
      } else {
        std::fprintf(stderr,
                     "vaultc: invalid --diagnostics-format '%s' "
                     "(expected text, json, or sarif)\n",
                     Val.c_str());
        return 2;
      }
    } else if (A == "--explain") {
      Explain = true;
    } else if (A == "--help" || A == "-h") {
      usage();
      return 0;
    } else if (!A.empty() && A[0] == '-') {
      std::fprintf(stderr, "vaultc: unknown option '%s'\n", A.c_str());
      usage();
      return 2;
    } else {
      Inputs.push_back(A);
    }
  }
  if (Inputs.empty()) {
    usage();
    return 2;
  }
  // A trace timeline of the dump modes would be all dead air: neither
  // runs the checker pipeline the spans cover.
  if (!TraceJsonPath.empty() && (DumpAst || DumpCfg)) {
    std::fprintf(stderr, "vaultc: --trace-json cannot be combined with %s\n",
                 DumpAst ? "--dump-ast" : "--dump-cfg");
    return 2;
  }

  VaultCompiler C;
  C.setJobs(Jobs);
  if (!CacheDir.empty())
    C.setCacheDir(CacheDir);
  Tracer T;
  if (!TraceJsonPath.empty())
    C.setTracer(&T); // Before addSource, so parse spans are recorded.
  if (Explain)
    C.enableExplain();
  for (const std::string &In : Inputs) {
    std::vector<std::string> Missing;
    std::string Text = corpus::load(In, &Missing);
    if (Text.empty()) {
      // Not a corpus name: read as a plain file.
      std::optional<uint32_t> Id = C.sources().addFile(In);
      if (!Id) {
        std::fprintf(stderr, "vaultc: cannot read '%s'\n", In.c_str());
        return 2;
      }
      // Re-load through the corpus resolver for //!include support.
      std::string Raw(C.sources().bufferText(*Id));
      Text = corpus::resolveIncludes(Raw, &Missing);
    }
    for (const std::string &Inc : Missing)
      std::fprintf(stderr,
                   "vaultc: %s: cannot resolve include '%s' (looked in %s)\n",
                   In.c_str(), Inc.c_str(),
                   (corpus::corpusDir() + "/include").c_str());
    if (!Missing.empty())
      return 2;
    // Queued rather than parsed inline: check() parses every queued
    // buffer with the --jobs worker pool, merged in input order.
    C.queueSource(In, Text);
  }

  if (TraceKeys)
    C.enableKeyTrace();
  bool Ok = C.check();
  // json/sarif runs print only the document on stderr (no text render,
  // no summary line), so the whole stream is machine-parseable — and
  // byte-identical between cold and warm cache runs at any job count.
  switch (DiagFormat) {
  case DiagnosticsFormat::Text:
    std::fputs(C.diags().render().c_str(), stderr);
    std::fprintf(stderr, "vaultc: %s (%u error(s))\n",
                 Ok ? "program is protocol-safe" : "protocol violations found",
                 C.diags().errorCount());
    break;
  case DiagnosticsFormat::Json:
    std::fputs(renderDiagnosticsJson(C.diags()).c_str(), stderr);
    break;
  case DiagnosticsFormat::Sarif:
    std::fputs(renderDiagnosticsSarif(C.diags()).c_str(), stderr);
    break;
  }

  if (DumpAst) {
    AstPrinter P;
    std::fputs(P.print(C.ast().program()).c_str(), stdout);
  }
  if (DumpCfg) {
    for (const Decl *D : C.ast().program().Decls)
      if (const auto *F = dyn_cast<FuncDecl>(D); F && F->body()) {
        std::printf("// CFG of %s\n", F->name().c_str());
        std::fputs(Cfg::build(F).dot().c_str(), stdout);
      }
  }
  // All telemetry goes to stderr so it can never interleave with
  // machine-readable stdout (--emit-c, --dump-ast, --dump-cfg).
  if (TraceKeys) {
    for (const KeyTraceEntry &T : C.keyTrace()) {
      PresumedLoc P = C.sources().presumed(T.Loc);
      std::fprintf(stderr, "%s:%u: held = %s\n", T.Function.c_str(),
                   P.isValid() ? P.Line : 0, T.Held.c_str());
    }
  }
  if (Stats)
    std::fputs(C.renderStatsText().c_str(), stderr);
  if (!StatsJsonPath.empty()) {
    std::ofstream Out(StatsJsonPath, std::ios::binary | std::ios::trunc);
    Out << C.renderStatsJson();
    if (!Out.flush()) {
      std::fprintf(stderr, "vaultc: cannot write stats file '%s'\n",
                   StatsJsonPath.c_str());
      return 2;
    }
  }
  if (!TraceJsonPath.empty() && !T.writeJson(TraceJsonPath)) {
    std::fprintf(stderr, "vaultc: cannot write trace file '%s'\n",
                 TraceJsonPath.c_str());
    return 2;
  }
  if (EmitC && Ok) {
    CEmitter E(C);
    std::fputs(E.emitProgram().c_str(), stdout);
  }
  if (Run) {
    interp::Interp I(C);
    bool Ran = I.run("main");
    for (const std::string &L : I.output())
      std::printf("%s\n", L.c_str());
    if (!Ran)
      std::fprintf(stderr, "vaultc: run trapped: %s\n",
                   I.trapMessage().c_str());
    unsigned Dyn = I.totalViolations() +
                   static_cast<unsigned>(I.regions().leakedRegions().size()) +
                   static_cast<unsigned>(I.sockets().leakedSockets().size()) +
                   static_cast<unsigned>(I.gdi().leakedDcs().size());
    for (const std::string &V : I.violations())
      std::fprintf(stderr, "vaultc: dynamic violation: %s\n", V.c_str());
    std::fprintf(stderr, "vaultc: dynamic oracle: %u violation(s)\n", Dyn);
    return Ok && Dyn == 0 && Ran ? 0 : 1;
  }
  return Ok ? 0 : 1;
}
