//===- vaultc.cpp - The Vault compiler driver -----------------------------===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
// Usage:
//   vaultc [options] <file.vlt | corpus-name>
//
// See usage() below for the option list; it is the single source of
// truth and a CLI test cross-checks it against the flags this file
// actually parses.
//
// Inputs may be files or corpus program names (e.g. figures/fig2_okay);
// `//!include name.vlt` lines resolve against corpus/include. A
// missing include is a hard error.
//
//===----------------------------------------------------------------------===//

#include "ast/AstPrinter.h"
#include "corpus/Corpus.h"
#include "interp/Interp.h"
#include "lower/CEmitter.h"
#include "sema/Cfg.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace vault;

static void usage() {
  std::fprintf(
      stderr,
      "usage: vaultc [options] <file.vlt|corpus-name>...\n"
      "\n"
      "modes (mutually exclusive):\n"
      "  --check           parse and protocol-check only (default)\n"
      "  --emit-c          lower to C on stdout after a clean check\n"
      "  --run             interpret main() after checking (the dynamic\n"
      "                    oracle; runs even when checking fails)\n"
      "  --dump-ast        pretty-print the parsed program\n"
      "  --dump-cfg        print each function's control-flow graph as dot\n"
      "\n"
      "options:\n"
      "  --jobs N          flow-check bodies on N worker threads; 0 or\n"
      "                    omitted means hardware concurrency. Output is\n"
      "                    byte-identical at any job count.\n"
      "  --cache-dir DIR   reuse per-function flow-check results across\n"
      "                    runs (incremental checking); DIR is created on\n"
      "                    demand\n"
      "  --stats           print checker statistics (counts, cache\n"
      "                    hits/misses, wall-time and held-key histograms)\n"
      "  --trace-keys      print the held-key set after every statement\n"
      "  --help, -h        show this help\n");
}

int main(int Argc, char **Argv) {
  bool EmitC = false, Run = false, DumpAst = false, DumpCfg = false,
       Stats = false, TraceKeys = false;
  unsigned Jobs = 0; // 0 = hardware concurrency.
  std::string CacheDir;
  std::vector<std::string> Inputs;
  // The output modes are mutually exclusive; remember which one was
  // picked so a second one is a proper driver error, not silently
  // combined output.
  const char *Mode = nullptr;
  auto SetMode = [&](const char *M) {
    if (Mode && std::strcmp(Mode, M) != 0) {
      std::fprintf(stderr, "vaultc: conflicting modes '%s' and '%s'\n", Mode,
                   M);
      return false;
    }
    Mode = M;
    return true;
  };
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A == "--check") {
      if (!SetMode("--check"))
        return 2;
    } else if (A == "--jobs" || A.rfind("--jobs=", 0) == 0) {
      std::string Val;
      if (A == "--jobs") {
        if (I + 1 >= Argc) {
          std::fprintf(stderr, "vaultc: --jobs requires an argument\n");
          return 2;
        }
        Val = Argv[++I];
      } else {
        Val = A.substr(7);
      }
      char *End = nullptr;
      long N = std::strtol(Val.c_str(), &End, 10);
      if (Val.empty() || !End || *End || N < 0) {
        std::fprintf(stderr, "vaultc: invalid --jobs value '%s'\n",
                     Val.c_str());
        return 2;
      }
      Jobs = static_cast<unsigned>(N);
    } else if (A == "--cache-dir" || A.rfind("--cache-dir=", 0) == 0) {
      if (A == "--cache-dir") {
        if (I + 1 >= Argc) {
          std::fprintf(stderr, "vaultc: --cache-dir requires an argument\n");
          return 2;
        }
        CacheDir = Argv[++I];
      } else {
        CacheDir = A.substr(12);
      }
      if (CacheDir.empty()) {
        std::fprintf(stderr, "vaultc: --cache-dir requires an argument\n");
        return 2;
      }
    } else if (A == "--emit-c") {
      if (!SetMode("--emit-c"))
        return 2;
      EmitC = true;
    } else if (A == "--run") {
      if (!SetMode("--run"))
        return 2;
      Run = true;
    } else if (A == "--dump-ast") {
      if (!SetMode("--dump-ast"))
        return 2;
      DumpAst = true;
    } else if (A == "--dump-cfg") {
      if (!SetMode("--dump-cfg"))
        return 2;
      DumpCfg = true;
    } else if (A == "--stats") {
      Stats = true;
    } else if (A == "--trace-keys") {
      TraceKeys = true;
    } else if (A == "--help" || A == "-h") {
      usage();
      return 0;
    } else if (!A.empty() && A[0] == '-') {
      std::fprintf(stderr, "vaultc: unknown option '%s'\n", A.c_str());
      usage();
      return 2;
    } else {
      Inputs.push_back(A);
    }
  }
  if (Inputs.empty()) {
    usage();
    return 2;
  }

  VaultCompiler C;
  C.setJobs(Jobs);
  if (!CacheDir.empty())
    C.setCacheDir(CacheDir);
  for (const std::string &In : Inputs) {
    std::vector<std::string> Missing;
    std::string Text = corpus::load(In, &Missing);
    if (Text.empty()) {
      // Not a corpus name: read as a plain file.
      std::optional<uint32_t> Id = C.sources().addFile(In);
      if (!Id) {
        std::fprintf(stderr, "vaultc: cannot read '%s'\n", In.c_str());
        return 2;
      }
      // Re-load through the corpus resolver for //!include support.
      std::string Raw(C.sources().bufferText(*Id));
      Text = corpus::resolveIncludes(Raw, &Missing);
    }
    for (const std::string &Inc : Missing)
      std::fprintf(stderr,
                   "vaultc: %s: cannot resolve include '%s' (looked in %s)\n",
                   In.c_str(), Inc.c_str(),
                   (corpus::corpusDir() + "/include").c_str());
    if (!Missing.empty())
      return 2;
    C.addSource(In, Text);
  }

  if (TraceKeys)
    C.enableKeyTrace();
  bool Ok = C.check();
  std::fputs(C.diags().render().c_str(), stderr);
  std::fprintf(stderr, "vaultc: %s (%u error(s))\n",
               Ok ? "program is protocol-safe" : "protocol violations found",
               C.diags().errorCount());

  if (DumpAst) {
    AstPrinter P;
    std::fputs(P.print(C.ast().program()).c_str(), stdout);
  }
  if (DumpCfg) {
    for (const Decl *D : C.ast().program().Decls)
      if (const auto *F = dyn_cast<FuncDecl>(D); F && F->body()) {
        std::printf("// CFG of %s\n", F->name().c_str());
        std::fputs(Cfg::build(F).dot().c_str(), stdout);
      }
  }
  if (TraceKeys) {
    for (const KeyTraceEntry &T : C.keyTrace()) {
      PresumedLoc P = C.sources().presumed(T.Loc);
      std::printf("%s:%u: held = %s\n", T.Function.c_str(),
                  P.isValid() ? P.Line : 0, T.Held.c_str());
    }
  }
  if (Stats) {
    const VaultCompiler::Stats &S = C.stats();
    std::printf("functions checked: %u\n", S.FunctionsChecked);
    std::printf("flow checks run:   %u\n", S.FlowChecksRun);
    std::printf("declarations:      %u\n", S.DeclsRegistered);
    std::printf("keys allocated:    %zu\n", C.types().keys().size());
    std::printf("jobs used:         %u\n", S.JobsUsed);
    if (S.CacheEnabled) {
      std::printf("cache hits:        %u\n", S.CacheHits);
      std::printf("cache misses:      %u\n", S.CacheMisses);
      std::printf("cache invalidated: %u\n", S.CacheInvalidations);
    }

    // Per-function wall-time histogram (log buckets).
    static const double MsEdges[] = {0.01, 0.1, 1.0, 10.0};
    unsigned MsBuckets[5] = {};
    double TotalMs = 0;
    for (const auto &F : S.PerFunction) {
      TotalMs += F.WallMs;
      size_t B = 0;
      while (B < 4 && F.WallMs >= MsEdges[B])
        ++B;
      ++MsBuckets[B];
    }
    std::printf("flow-check time:   %.3f ms total\n", TotalMs);
    static const char *MsLabels[] = {"     <0.01ms", " 0.01-0.10ms",
                                     " 0.10-1.00ms", " 1.00-10.0ms",
                                     "     >=10ms "};
    std::printf("wall-time histogram:\n");
    for (size_t B = 0; B < 5; ++B)
      std::printf("  %s  %u\n", MsLabels[B], MsBuckets[B]);

    // Held-key-set size histogram (peak per function).
    static const unsigned HeldEdges[] = {1, 2, 3, 5, 9};
    unsigned HeldBuckets[6] = {};
    for (const auto &F : S.PerFunction) {
      size_t B = 0;
      while (B < 5 && F.MaxHeldKeys >= HeldEdges[B])
        ++B;
      ++HeldBuckets[B];
    }
    static const char *HeldLabels[] = {"   0", "   1", "   2",
                                       " 3-4", " 5-8", " >=9"};
    std::printf("peak held-key-set size histogram:\n");
    for (size_t B = 0; B < 6; ++B)
      std::printf("  %s keys  %u\n", HeldLabels[B], HeldBuckets[B]);

    // The slowest functions, for profiling batch checks.
    std::vector<VaultCompiler::Stats::FuncStat> Sorted = S.PerFunction;
    std::stable_sort(Sorted.begin(), Sorted.end(),
                     [](const auto &A, const auto &B) {
                       return A.WallMs > B.WallMs;
                     });
    size_t Top = std::min<size_t>(Sorted.size(), 5);
    if (Top) {
      std::printf("slowest functions:\n");
      for (size_t I = 0; I < Top; ++I)
        std::printf("  %-24s %8.3f ms  (peak %u key(s))\n",
                    Sorted[I].Name.c_str(), Sorted[I].WallMs,
                    Sorted[I].MaxHeldKeys);
    }
  }
  if (EmitC && Ok) {
    CEmitter E(C);
    std::fputs(E.emitProgram().c_str(), stdout);
  }
  if (Run) {
    interp::Interp I(C);
    bool Ran = I.run("main");
    for (const std::string &L : I.output())
      std::printf("%s\n", L.c_str());
    if (!Ran)
      std::fprintf(stderr, "vaultc: run trapped: %s\n",
                   I.trapMessage().c_str());
    unsigned Dyn = I.totalViolations() +
                   static_cast<unsigned>(I.regions().leakedRegions().size()) +
                   static_cast<unsigned>(I.sockets().leakedSockets().size()) +
                   static_cast<unsigned>(I.gdi().leakedDcs().size());
    for (const std::string &V : I.violations())
      std::fprintf(stderr, "vaultc: dynamic violation: %s\n", V.c_str());
    std::fprintf(stderr, "vaultc: dynamic oracle: %u violation(s)\n", Dyn);
    return Ok && Dyn == 0 && Ran ? 0 : 1;
  }
  return Ok ? 0 : 1;
}
