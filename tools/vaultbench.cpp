//===- vaultbench.cpp - Checker performance trajectory emitter ------------===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
// Usage:
//   vaultbench [options]
//
// Times the checker end to end — cold whole-corpus runs through the
// queued (parallel) front end at --jobs 1 and --jobs N, plus a
// synthetic many-function unit that stresses parsing and signature
// elaboration — and records the measurements as one run object in a
// trajectory JSON file (BENCH_checker.json at the repository root is
// the committed history). Unlike the google-benchmark micro harness
// under bench/, this measures the whole pipeline in-process, including
// parse and elaboration time, so front-end parallelism shows up.
//
// The file is append-only: an existing trajectory keeps its previous
// runs and the new run is spliced into the "runs" array. The tool
// re-reads whatever it wrote and exits nonzero if the result is not
// well-formed, so a CI step (the bench.trajectory ctest) catches a
// corrupted trajectory immediately.
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

#include <cerrno>
#include <chrono>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace vault;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: vaultbench [options]\n"
      "\n"
      "options:\n"
      "  --out FILE      trajectory file to update (default\n"
      "                  BENCH_checker.json in the current directory)\n"
      "  --label NAME    label recorded on this run (default 'local')\n"
      "  --jobs N        job count for the parallel measurements\n"
      "                  (default 8)\n"
      "  --iterations K  repetitions per measurement; the minimum is\n"
      "                  recorded (default 3)\n"
      "  --subset        pinned quick subset: figures-only corpus and a\n"
      "                  smaller synthetic unit (what the bench.trajectory\n"
      "                  ctest runs)\n"
      "  --validate FILE parse FILE as a trajectory and exit (0 if\n"
      "                  well-formed, 1 otherwise)\n"
      "  --help, -h      show this help\n");
}

unsigned parseUnsigned(const char *Flag, const std::string &Val) {
  char *End = nullptr;
  errno = 0;
  long N = std::strtol(Val.c_str(), &End, 10);
  if (Val.empty() || !End || *End || N <= 0 || errno == ERANGE ||
      static_cast<unsigned long>(N) > UINT_MAX) {
    std::fprintf(stderr, "vaultbench: invalid %s value '%s'\n", Flag,
                 Val.c_str());
    std::exit(2);
  }
  return static_cast<unsigned>(N);
}

double nowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One measurement: name, job count, and the best-of-K wall time.
struct Entry {
  std::string Name;
  unsigned Jobs = 1;
  double WallMs = 0;
  unsigned Programs = 0;
  unsigned Functions = 0;
};

/// A synthetic unit with \p Count functions over a tracked-key
/// interface: enough signatures to make pass 2 matter and enough
/// buffers to exercise the parallel parser.
std::vector<std::pair<std::string, std::string>>
syntheticUnit(unsigned Count) {
  std::string Prelude = R"(
interface REGION {
  type region;
  tracked(R) region create() [new R];
  void delete(tracked(R) region) [-R];
}
extern module Region : REGION;
)";
  std::vector<std::pair<std::string, std::string>> Buffers;
  Buffers.emplace_back("prelude.vlt", Prelude);
  const unsigned PerBuffer = 32;
  std::string Cur;
  for (unsigned I = 0; I < Count; ++I) {
    std::string N = "fn" + std::to_string(I);
    // Nested loops over tracked regions: the flow checker has to
    // iterate each loop to a fixpoint, so every function carries real
    // dataflow work, not just a handful of straight-line transitions.
    Cur += "void " + N + "(int n, bool b) {\n"
           "  tracked region r = Region.create();\n"
           "  int i = 0;\n"
           "  while (i < n) {\n"
           "    int j = 0;\n"
           "    while (j < n) {\n"
           "      tracked region t = Region.create();\n"
           "      if (b) {\n"
           "        tracked region u = Region.create();\n"
           "        Region.delete(u);\n"
           "      }\n"
           "      Region.delete(t);\n"
           "      j++;\n"
           "    }\n"
           "    i++;\n"
           "  }\n"
           "  if (b) { Region.delete(r); }\n"
           "  else { Region.delete(r); }\n"
           "}\n";
    if ((I + 1) % PerBuffer == 0 || I + 1 == Count) {
      Buffers.emplace_back("unit" + std::to_string(Buffers.size()) + ".vlt",
                           Cur);
      Cur.clear();
    }
  }
  return Buffers;
}

/// Cold-checks every named corpus program, one compiler per program,
/// through the queued front end. Returns total wall ms and accumulates
/// program/function counts.
double runCorpus(const std::vector<std::string> &Names, unsigned Jobs,
                 unsigned &Programs, unsigned &Functions) {
  double Begin = nowMs();
  Programs = Functions = 0;
  for (const std::string &Name : Names) {
    std::string Text = corpus::load(Name);
    if (Text.empty())
      continue;
    VaultCompiler C;
    C.setJobs(Jobs);
    C.queueSource(Name + ".vlt", Text);
    C.check();
    ++Programs;
    Functions += C.stats().FunctionsChecked;
  }
  return nowMs() - Begin;
}

double runSynthetic(
    const std::vector<std::pair<std::string, std::string>> &Buffers,
    unsigned Jobs, unsigned &Functions) {
  double Begin = nowMs();
  VaultCompiler C;
  C.setJobs(Jobs);
  for (const auto &[Name, Text] : Buffers)
    C.queueSource(Name, Text);
  C.check();
  Functions = C.stats().FunctionsChecked;
  return nowMs() - Begin;
}

template <typename Fn> double bestOf(unsigned Iterations, Fn &&Body) {
  double Best = 0;
  for (unsigned I = 0; I < Iterations; ++I) {
    double Ms = Body();
    if (I == 0 || Ms < Best)
      Best = Ms;
  }
  return Best;
}

std::string renderRun(const std::string &Label, unsigned Jobs,
                      unsigned Iterations, bool Subset,
                      const std::vector<Entry> &Entries) {
  // Fixed 3-decimal times keep the file diff-friendly; json::num's
  // shortest-round-trip form would churn every digit on every run.
  auto Ms = [](double V) {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.3f", V);
    return std::string(Buf);
  };
  std::ostringstream O;
  // The host's core count is part of the measurement: a 1-core runner
  // can at best reach parity with --jobs 1 (thread spawn is pure
  // overhead there), so trajectory points are only comparable between
  // runs with the same "cpus".
  unsigned Cpus = std::max(1u, std::thread::hardware_concurrency());
  O << "    {\n"
    << "      \"label\": \"" << Label << "\",\n"
    << "      \"cpus\": " << Cpus << ",\n"
    << "      \"jobs\": " << Jobs << ",\n"
    << "      \"iterations\": " << Iterations << ",\n"
    << "      \"subset\": " << (Subset ? "true" : "false") << ",\n"
    << "      \"entries\": [\n";
  for (size_t I = 0; I < Entries.size(); ++I) {
    const Entry &E = Entries[I];
    O << "        {\"name\": \"" << E.Name << "\", \"jobs\": " << E.Jobs
      << ", \"wall_ms\": " << Ms(E.WallMs) << ", \"programs\": " << E.Programs
      << ", \"functions\": " << E.Functions << "}"
      << (I + 1 < Entries.size() ? "," : "") << "\n";
  }
  O << "      ]\n"
    << "    }";
  return O.str();
}

constexpr const char *SchemaMarker = "vault-bench-trajectory-v1";

/// Structural validation: schema marker, balanced braces and brackets
/// outside string literals, and at least one complete measurement.
bool validateTrajectory(const std::string &Text, std::string &Err) {
  if (Text.find(std::string("\"schema\": \"") + SchemaMarker + "\"") ==
      std::string::npos) {
    Err = "missing schema marker";
    return false;
  }
  int Brace = 0, Bracket = 0;
  bool InStr = false, Esc = false;
  for (char C : Text) {
    if (InStr) {
      if (Esc)
        Esc = false;
      else if (C == '\\')
        Esc = true;
      else if (C == '"')
        InStr = false;
      continue;
    }
    switch (C) {
    case '"':
      InStr = true;
      break;
    case '{':
      ++Brace;
      break;
    case '}':
      --Brace;
      break;
    case '[':
      ++Bracket;
      break;
    case ']':
      --Bracket;
      break;
    default:
      break;
    }
    if (Brace < 0 || Bracket < 0) {
      Err = "unbalanced close";
      return false;
    }
  }
  if (InStr || Brace != 0 || Bracket != 0) {
    Err = "unterminated string or unbalanced brackets";
    return false;
  }
  if (Text.find("\"runs\": [") == std::string::npos) {
    Err = "missing runs array";
    return false;
  }
  if (Text.find("\"wall_ms\": ") == std::string::npos) {
    Err = "no measurements";
    return false;
  }
  return true;
}

std::string readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return "";
  std::ostringstream O;
  O << In.rdbuf();
  return O.str();
}

/// Splices \p Run into an existing trajectory's "runs" array, or
/// starts a fresh file when there is none (or the existing one is not
/// a trajectory — the old content is then preserved nowhere, so bail
/// instead).
bool updateTrajectory(const std::string &Path, const std::string &Run,
                      std::string &Err) {
  std::string Old = readFile(Path);
  std::string Out;
  if (Old.empty()) {
    Out = std::string("{\n  \"schema\": \"") + SchemaMarker + "\",\n" +
          "  \"unit\": \"milliseconds, best of N iterations\",\n" +
          "  \"runs\": [\n" + Run + "\n  ]\n}\n";
  } else {
    if (!validateTrajectory(Old, Err)) {
      Err = "refusing to update " + Path + ": existing file is not a " +
            "well-formed trajectory (" + Err + ")";
      return false;
    }
    // Splice before the closing "]" of the runs array: the last "]"
    // that precedes the final "}".
    size_t CloseObj = Old.rfind('}');
    size_t CloseArr = Old.rfind(']', CloseObj);
    if (CloseObj == std::string::npos || CloseArr == std::string::npos) {
      Err = "cannot find runs array in " + Path;
      return false;
    }
    Out = Old.substr(0, CloseArr);
    while (!Out.empty() && (Out.back() == '\n' || Out.back() == ' '))
      Out.pop_back();
    Out += ",\n" + Run + "\n  " + Old.substr(CloseArr);
  }
  if (!validateTrajectory(Out, Err))
    return false;
  std::ofstream O(Path, std::ios::binary | std::ios::trunc);
  O << Out;
  if (!O.flush()) {
    Err = "cannot write " + Path;
    return false;
  }
  // Re-read what actually landed on disk; a partial write must fail
  // the run, not poison the committed history silently.
  std::string Back = readFile(Path);
  if (Back != Out) {
    Err = "readback mismatch on " + Path;
    return false;
  }
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string OutPath = "BENCH_checker.json";
  std::string Label = "local";
  std::string ValidatePath;
  unsigned Jobs = 8;
  unsigned Iterations = 3;
  bool Subset = false;

  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    auto value = [&](const char *Flag) -> const char * {
      std::string Eq = std::string(Flag) + "=";
      if (A == Flag) {
        if (I + 1 >= Argc) {
          std::fprintf(stderr, "vaultbench: %s requires an argument\n", Flag);
          std::exit(2);
        }
        return Argv[++I];
      }
      if (A.rfind(Eq, 0) == 0)
        return A.c_str() + Eq.size();
      return nullptr;
    };
    if (const char *V = value("--out")) {
      OutPath = V;
    } else if (const char *V = value("--label")) {
      Label = V;
    } else if (const char *V = value("--jobs")) {
      Jobs = parseUnsigned("--jobs", V);
    } else if (const char *V = value("--iterations")) {
      Iterations = parseUnsigned("--iterations", V);
    } else if (const char *V = value("--validate")) {
      ValidatePath = V;
    } else if (A == "--subset") {
      Subset = true;
    } else if (A == "--help" || A == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "vaultbench: unknown option '%s'\n", A.c_str());
      usage();
      return 2;
    }
  }

  if (!ValidatePath.empty()) {
    std::string Err;
    std::string Text = readFile(ValidatePath);
    if (Text.empty()) {
      std::fprintf(stderr, "vaultbench: cannot read '%s'\n",
                   ValidatePath.c_str());
      return 1;
    }
    if (!validateTrajectory(Text, Err)) {
      std::fprintf(stderr, "vaultbench: '%s' is malformed: %s\n",
                   ValidatePath.c_str(), Err.c_str());
      return 1;
    }
    std::printf("vaultbench: '%s' is a well-formed trajectory\n",
                ValidatePath.c_str());
    return 0;
  }

  // Pick the measured corpus: everything, or the pinned figures-only
  // subset the ctest uses to stay fast.
  std::vector<std::string> Names;
  for (const corpus::ProgramInfo &P : corpus::index())
    if (!Subset || P.Name.rfind("figures/", 0) == 0)
      Names.push_back(P.Name);
  if (Names.empty()) {
    std::fprintf(stderr, "vaultbench: corpus index is empty\n");
    return 1;
  }
  auto Buffers = syntheticUnit(Subset ? 64 : 256);

  std::vector<Entry> Entries;
  for (unsigned J : {1u, Jobs}) {
    Entry E;
    E.Name = "corpus-cold";
    E.Jobs = J;
    E.WallMs = bestOf(Iterations, [&] {
      return runCorpus(Names, J, E.Programs, E.Functions);
    });
    Entries.push_back(E);
    std::fprintf(stderr, "corpus-cold jobs=%u: %.3f ms (%u programs)\n", J,
                 E.WallMs, E.Programs);
    if (J == Jobs)
      break; // Jobs == 1: one measurement, not two.
  }
  for (unsigned J : {1u, Jobs}) {
    Entry E;
    E.Name = "synthetic-many-fns";
    E.Jobs = J;
    E.Programs = 1;
    E.WallMs =
        bestOf(Iterations, [&] { return runSynthetic(Buffers, J, E.Functions); });
    Entries.push_back(E);
    std::fprintf(stderr, "synthetic-many-fns jobs=%u: %.3f ms (%u functions)\n",
                 J, E.WallMs, E.Functions);
    if (J == Jobs)
      break;
  }

  std::string Run = renderRun(Label, Jobs, Iterations, Subset, Entries);
  std::string Err;
  if (!updateTrajectory(OutPath, Run, Err)) {
    std::fprintf(stderr, "vaultbench: %s\n", Err.c_str());
    return 1;
  }
  std::printf("vaultbench: recorded run '%s' in %s\n", Label.c_str(),
              OutPath.c_str());
  return 0;
}
