//===- vaultfuzz.cpp - Protocol-aware differential fuzzer -----------------===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
// Usage:
//   vaultfuzz [options]
//
// Generates seeded, deterministic Vault programs biased toward
// protocol structure, optionally seeds one labeled defect into each,
// runs the differential oracles (parity, determinism, round-trip,
// vm engine-equivalence) over every program, and delta-debugs each
// finding into a minimal .vlt reproducer. The whole run is a pure function of --seed: the
// same seed yields identical program bytes and an identical report.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Campaign.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace vault;
using namespace vault::fuzz;

static void usage() {
  std::fprintf(
      stderr,
      "usage: vaultfuzz [options]\n"
      "\n"
      "options:\n"
      "  --seed N          campaign seed (default 1); the run is a pure\n"
      "                    function of it\n"
      "  --count N         number of clean programs to generate (default\n"
      "                    50); --mutate doubles the total\n"
      "  --mutate          also run each program's seeded-defect twin\n"
      "                    (default on)\n"
      "  --no-mutate       generate clean programs only\n"
      "  --oracle LIST     comma-separated subset of parity,determinism,\n"
      "                    roundtrip,vm (default all)\n"
      "  --reduce          delta-debug findings to minimal reproducers\n"
      "                    (default on)\n"
      "  --no-reduce       report findings without reducing them\n"
      "  --out DIR         write reduced .vlt reproducers into DIR\n"
      "  --emit DIR        write every generated program into DIR\n"
      "  --tmp DIR         scratch space for cache dirs and C binaries\n"
      "                    (default /tmp)\n"
      "  --det-jobs N      the N of the --jobs 1 vs N determinism\n"
      "                    comparison (default 4)\n"
      "  --min-detect PCT  seeded-defect detection floor in percent for\n"
      "                    exit status 0 (default 95)\n"
      "  --stats-json FILE write the fuzz metrics registry as JSON\n"
      "  --trace-json FILE write a Chrome trace-event timeline of the\n"
      "                    campaign (generate/mutate/oracle/reduce spans)\n"
      "  --help, -h        show this help\n"
      "\n"
      "exit status: 0 if the campaign passed (no unclassified oracle\n"
      "violations and detection >= the floor), 1 if it failed, 2 on\n"
      "usage errors.\n");
}

/// Parses `--flag VAL` / `--flag=VAL`; on match, \p Val is set and I
/// advanced. Exits with a usage error when the argument is missing.
static bool valueFlag(int Argc, char **Argv, int &I, const char *Flag,
                      std::string &Val) {
  std::string A = Argv[I];
  std::string Eq = std::string(Flag) + "=";
  if (A == Flag) {
    if (I + 1 >= Argc) {
      std::fprintf(stderr, "vaultfuzz: %s requires an argument\n", Flag);
      std::exit(2);
    }
    Val = Argv[++I];
    return true;
  }
  if (A.rfind(Eq, 0) == 0) {
    Val = A.substr(Eq.size());
    if (Val.empty()) {
      std::fprintf(stderr, "vaultfuzz: %s requires an argument\n", Flag);
      std::exit(2);
    }
    return true;
  }
  return false;
}

/// Parses \p Val as an unsigned integer no larger than \p Max.
/// Rejects overflow (ERANGE) and negative input — strtoull wraps a
/// leading '-' silently — and exits with the usual invalid-value
/// message. Callers that narrow the result pass the narrow type's max
/// so e.g. --count=4294967296 cannot truncate to 0.
static uint64_t parseU64(const char *Flag, const std::string &Val,
                         uint64_t Max = UINT64_MAX) {
  char *End = nullptr;
  errno = 0;
  unsigned long long N = std::strtoull(Val.c_str(), &End, 10);
  if (Val.empty() || Val[0] == '-' || !End || *End || errno == ERANGE ||
      N > Max) {
    std::fprintf(stderr, "vaultfuzz: invalid %s value '%s'\n", Flag,
                 Val.c_str());
    std::exit(2);
  }
  return N;
}

int main(int Argc, char **Argv) {
  CampaignOptions Opts;
  std::string StatsJsonPath, TraceJsonPath, Val;
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    if (valueFlag(Argc, Argv, I, "--seed", Val)) {
      Opts.Seed = parseU64("--seed", Val);
    } else if (valueFlag(Argc, Argv, I, "--count", Val)) {
      Opts.Count = static_cast<unsigned>(parseU64("--count", Val, UINT32_MAX));
    } else if (A == "--mutate") {
      Opts.Mutate = true;
    } else if (A == "--no-mutate") {
      Opts.Mutate = false;
    } else if (A == "--reduce") {
      Opts.Reduce = true;
    } else if (A == "--no-reduce") {
      Opts.Reduce = false;
    } else if (valueFlag(Argc, Argv, I, "--oracle", Val)) {
      Opts.RunParity = Opts.RunDeterminism = Opts.RunRoundtrip = Opts.RunVm =
          false;
      std::istringstream List(Val);
      std::string Name;
      while (std::getline(List, Name, ',')) {
        if (Name == "parity") {
          Opts.RunParity = true;
        } else if (Name == "determinism") {
          Opts.RunDeterminism = true;
        } else if (Name == "roundtrip") {
          Opts.RunRoundtrip = true;
        } else if (Name == "vm") {
          Opts.RunVm = true;
        } else if (Name == "all") {
          Opts.RunParity = Opts.RunDeterminism = Opts.RunRoundtrip =
              Opts.RunVm = true;
        } else {
          std::fprintf(stderr,
                       "vaultfuzz: unknown oracle '%s' (expected parity, "
                       "determinism, roundtrip, vm, or all)\n",
                       Name.c_str());
          return 2;
        }
      }
      if (!Opts.RunParity && !Opts.RunDeterminism && !Opts.RunRoundtrip &&
          !Opts.RunVm) {
        std::fprintf(stderr, "vaultfuzz: --oracle selected no oracles\n");
        return 2;
      }
    } else if (valueFlag(Argc, Argv, I, "--out", Val)) {
      Opts.ReduceDir = Val;
    } else if (valueFlag(Argc, Argv, I, "--emit", Val)) {
      Opts.EmitDir = Val;
    } else if (valueFlag(Argc, Argv, I, "--tmp", Val)) {
      Opts.TmpDir = Val;
    } else if (valueFlag(Argc, Argv, I, "--det-jobs", Val)) {
      Opts.DetJobs = static_cast<unsigned>(parseU64("--det-jobs", Val, UINT32_MAX));
      if (Opts.DetJobs < 2) {
        std::fprintf(stderr, "vaultfuzz: --det-jobs must be at least 2\n");
        return 2;
      }
    } else if (valueFlag(Argc, Argv, I, "--min-detect", Val)) {
      Opts.MinDetectPct =
          static_cast<unsigned>(parseU64("--min-detect", Val, UINT32_MAX));
      if (Opts.MinDetectPct > 100) {
        std::fprintf(stderr, "vaultfuzz: --min-detect must be 0..100\n");
        return 2;
      }
    } else if (valueFlag(Argc, Argv, I, "--stats-json", Val)) {
      StatsJsonPath = Val;
    } else if (valueFlag(Argc, Argv, I, "--trace-json", Val)) {
      TraceJsonPath = Val;
    } else if (A == "--help" || A == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "vaultfuzz: unknown option '%s'\n", A.c_str());
      usage();
      return 2;
    }
  }

  Metrics M;
  Tracer T;
  CampaignResult R =
      runCampaign(Opts, &M, TraceJsonPath.empty() ? nullptr : &T);

  // The report is the product; stdout stays machine-comparable (the
  // determinism smoke test diffs two runs byte-for-byte).
  std::fputs(R.Report.c_str(), stdout);

  if (!StatsJsonPath.empty()) {
    std::ofstream Out(StatsJsonPath, std::ios::binary | std::ios::trunc);
    Out << M.renderJson();
    if (!Out.flush()) {
      std::fprintf(stderr, "vaultfuzz: cannot write stats file '%s'\n",
                   StatsJsonPath.c_str());
      return 2;
    }
  }
  if (!TraceJsonPath.empty() && !T.writeJson(TraceJsonPath)) {
    std::fprintf(stderr, "vaultfuzz: cannot write trace file '%s'\n",
                 TraceJsonPath.c_str());
    return 2;
  }
  return R.Pass ? 0 : 1;
}
