//===- vaultd.cpp - The persistent Vault check server ---------------------===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
// A long-lived check server: clients open/change/close an in-memory
// overlay of buffers and issue check requests; the fingerprint-keyed
// result cache stays warm across requests, so an edit re-checks only
// the functions it dirtied. Speaks newline-delimited JSON-RPC on
// stdio (the default — one session) or a Unix socket (--socket PATH —
// one session per connection, sharing the warm cache and the
// admission gate).
//
//===----------------------------------------------------------------------===//

#include "server/Server.h"

#include <atomic>
#include <cerrno>
#include <climits>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#ifndef _WIN32
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

using namespace vault;

static void usage() {
  std::fprintf(
      stderr,
      "usage: vaultd [options]\n"
      "\n"
      "Long-lived check server speaking newline-delimited JSON-RPC.\n"
      "Methods: open {name,text}, change {name,text}, close {name},\n"
      "check [{jobs}], stats, metrics, health, shutdown. Check\n"
      "responses embed the --diagnostics-format=json and --stats-json\n"
      "documents verbatim; metrics embeds the server-wide registry in\n"
      "the same document shape.\n"
      "\n"
      "options:\n"
      "  --socket PATH     listen on a Unix socket instead of stdio;\n"
      "                    one session per connection, warm cache and\n"
      "                    admission gate shared\n"
      "  --jobs N          worker threads per check (0 = hardware\n"
      "                    concurrency; default 1)\n"
      "  --cache-dir DIR   back the result cache with this shared\n"
      "                    directory instead of process memory\n"
      "  --max-queue N     check requests allowed to wait before new\n"
      "                    ones are rejected (default 8)\n"
      "  --timeout-ms N    longest a check waits for the slot before\n"
      "                    failing (default 30000)\n"
      "  --max-frame-bytes N\n"
      "                    longest accepted request line (default 8M)\n"
      "  --log-json PATH   append one JSON event line per request,\n"
      "                    session, and admission reject ('-' = stderr;\n"
      "                    stdout stays the wire protocol's)\n"
      "  --slow-ms N       also log a slow_request event for requests\n"
      "                    handled in >= N ms (requires --log-json)\n"
      "  --trace-json PATH write one merged Chrome/Perfetto trace of\n"
      "                    every session's request spans at exit\n"
      "  --help, -h        show this help\n");
}

/// Strict unsigned parse mirroring vaultc's --jobs contract: rejects
/// rather than truncates.
static bool parseU64(const std::string &Val, uint64_t Max, uint64_t &Out) {
  char *End = nullptr;
  errno = 0;
  unsigned long long N = std::strtoull(Val.c_str(), &End, 10);
  if (Val.empty() || Val[0] == '-' || !End || *End || errno == ERANGE ||
      N > Max)
    return false;
  Out = N;
  return true;
}

/// Serves one session over a pair of file descriptors. Returns when
/// the client disconnects or requests shutdown.
static void serveFd(int InFd, int OutFd, const server::Config &Cfg,
                    server::Admission &Gate, CheckMemoryStore &Store,
                    const server::Telemetry &Tel) {
  server::Workspace Ws(Cfg, Gate, Store);
  Ws.setTelemetry(Tel);
  server::FrameReader Frames(Cfg.MaxFrameBytes);
  char Buf[64 * 1024];
  for (;;) {
    for (;;) {
      server::FrameReader::Frame F = Frames.next();
      if (F.K == server::FrameReader::Kind::None)
        break;
      std::string Resp = Ws.handleFrame(F);
      Resp += '\n';
      size_t Off = 0;
      while (Off < Resp.size()) {
        ssize_t W = write(OutFd, Resp.data() + Off, Resp.size() - Off);
        if (W < 0) {
          if (errno == EINTR)
            continue;
          return; // Client gone; drop the session.
        }
        Off += static_cast<size_t>(W);
      }
      if (Ws.shutdownRequested())
        return;
    }
    ssize_t N = read(InFd, Buf, sizeof(Buf));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return;
    }
    if (N == 0)
      return; // EOF.
    Frames.feed(std::string_view(Buf, static_cast<size_t>(N)));
  }
}

int main(int Argc, char **Argv) {
  server::Config Cfg;
  std::string SocketPath;
  std::string LogPath;
  std::string TracePath;
  uint64_t SlowMs = UINT64_MAX;
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    auto Value = [&](const char *Flag, size_t PrefixLen,
                     std::string &Out) -> bool {
      if (A == Flag) {
        if (I + 1 >= Argc) {
          std::fprintf(stderr, "vaultd: %s requires an argument\n", Flag);
          return false;
        }
        Out = Argv[++I];
        return true;
      }
      Out = A.substr(PrefixLen);
      if (Out.empty()) {
        std::fprintf(stderr, "vaultd: %s requires an argument\n", Flag);
        return false;
      }
      return true;
    };
    std::string Val;
    uint64_t N = 0;
    if (A == "--socket" || A.rfind("--socket=", 0) == 0) {
      if (!Value("--socket", 9, SocketPath))
        return 2;
    } else if (A == "--jobs" || A.rfind("--jobs=", 0) == 0) {
      if (!Value("--jobs", 7, Val))
        return 2;
      if (!parseU64(Val, UINT_MAX, N)) {
        std::fprintf(stderr, "vaultd: invalid --jobs value '%s'\n",
                     Val.c_str());
        return 2;
      }
      Cfg.Jobs = static_cast<unsigned>(N);
    } else if (A == "--cache-dir" || A.rfind("--cache-dir=", 0) == 0) {
      if (!Value("--cache-dir", 12, Cfg.CacheDir))
        return 2;
    } else if (A == "--max-queue" || A.rfind("--max-queue=", 0) == 0) {
      if (!Value("--max-queue", 12, Val))
        return 2;
      if (!parseU64(Val, 1u << 20, N)) {
        std::fprintf(stderr, "vaultd: invalid --max-queue value '%s'\n",
                     Val.c_str());
        return 2;
      }
      Cfg.MaxQueue = static_cast<size_t>(N);
    } else if (A == "--timeout-ms" || A.rfind("--timeout-ms=", 0) == 0) {
      if (!Value("--timeout-ms", 13, Val))
        return 2;
      if (!parseU64(Val, 86400000, N)) {
        std::fprintf(stderr, "vaultd: invalid --timeout-ms value '%s'\n",
                     Val.c_str());
        return 2;
      }
      Cfg.RequestTimeoutMs = N;
    } else if (A == "--max-frame-bytes" ||
               A.rfind("--max-frame-bytes=", 0) == 0) {
      if (!Value("--max-frame-bytes", 18, Val))
        return 2;
      if (!parseU64(Val, 1u << 30, N) || N < 16) {
        std::fprintf(stderr, "vaultd: invalid --max-frame-bytes value '%s'\n",
                     Val.c_str());
        return 2;
      }
      Cfg.MaxFrameBytes = static_cast<size_t>(N);
    } else if (A == "--log-json" || A.rfind("--log-json=", 0) == 0) {
      if (!Value("--log-json", 11, LogPath))
        return 2;
    } else if (A == "--slow-ms" || A.rfind("--slow-ms=", 0) == 0) {
      if (!Value("--slow-ms", 10, Val))
        return 2;
      if (!parseU64(Val, 86400000, N)) {
        std::fprintf(stderr, "vaultd: invalid --slow-ms value '%s'\n",
                     Val.c_str());
        return 2;
      }
      SlowMs = N;
    } else if (A == "--trace-json" || A.rfind("--trace-json=", 0) == 0) {
      if (!Value("--trace-json", 13, TracePath))
        return 2;
    } else if (A == "--help" || A == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "vaultd: unknown option '%s'\n", A.c_str());
      usage();
      return 2;
    }
  }

#ifndef _WIN32
  // A client that disconnects mid-response must not kill the daemon.
  std::signal(SIGPIPE, SIG_IGN);
#endif

  server::Admission Gate(Cfg.MaxQueue, Cfg.RequestTimeoutMs);
  CheckMemoryStore Store;

  // Daemon-wide telemetry. The aggregator is always live — the
  // `metrics` and `health` methods must answer on an otherwise plain
  // daemon — while the event log and tracer exist only when asked for.
  server::ServerMetrics Metrics;
  std::unique_ptr<server::ServerLog> Log;
  if (!LogPath.empty()) {
    std::string Err;
    Log = server::ServerLog::open(LogPath, &Err);
    if (!Log) {
      std::fprintf(stderr, "vaultd: %s\n", Err.c_str());
      return 2;
    }
  }
  std::unique_ptr<Tracer> Trc;
  if (!TracePath.empty())
    Trc = std::make_unique<Tracer>();

  server::Telemetry Tel;
  Tel.Log = Log.get();
  Tel.Metrics = &Metrics;
  Tel.Trc = Trc.get();
  Tel.SlowMs = SlowMs;

  // Every session's spans land in the one tracer; the merged file is
  // written when the daemon exits (shutdown request or EOF/last
  // connection), so it covers the whole process lifetime.
  auto WriteTrace = [&]() -> int {
    if (!Trc)
      return 0;
    if (!Trc->writeJson(TracePath)) {
      std::fprintf(stderr, "vaultd: cannot write trace file '%s'\n",
                   TracePath.c_str());
      return 2;
    }
    return 0;
  };

  if (SocketPath.empty()) {
    // Stdio mode: one session, then exit. Exit status reflects a clean
    // shutdown (explicit request or EOF between frames).
    serveFd(STDIN_FILENO, STDOUT_FILENO, Cfg, Gate, Store, Tel);
    return WriteTrace();
  }

#ifdef _WIN32
  std::fprintf(stderr, "vaultd: --socket is not supported on this platform\n");
  return 2;
#else
  if (SocketPath.size() >= sizeof(sockaddr_un{}.sun_path)) {
    std::fprintf(stderr, "vaultd: socket path too long: '%s'\n",
                 SocketPath.c_str());
    return 2;
  }
  int Listen = socket(AF_UNIX, SOCK_STREAM, 0);
  if (Listen < 0) {
    std::fprintf(stderr, "vaultd: socket: %s\n", std::strerror(errno));
    return 2;
  }
  unlink(SocketPath.c_str()); // Stale socket from a previous run.
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  std::strncpy(Addr.sun_path, SocketPath.c_str(), sizeof(Addr.sun_path) - 1);
  if (bind(Listen, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0 ||
      listen(Listen, 16) < 0) {
    std::fprintf(stderr, "vaultd: cannot listen on '%s': %s\n",
                 SocketPath.c_str(), std::strerror(errno));
    close(Listen);
    return 2;
  }
  std::fprintf(stderr, "vaultd: listening on %s\n", SocketPath.c_str());

  // One thread per connection; a session's shutdown request stops the
  // whole daemon (close the listener, let live sessions finish).
  std::vector<std::thread> Sessions;
  std::atomic<bool> Stop{false};
  while (!Stop.load(std::memory_order_relaxed)) {
    int Conn = accept(Listen, nullptr, nullptr);
    if (Conn < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    Sessions.emplace_back([Conn, &Cfg, &Gate, &Store, &Tel, &Stop, Listen] {
      server::Workspace Ws(Cfg, Gate, Store);
      Ws.setTelemetry(Tel);
      server::FrameReader Frames(Cfg.MaxFrameBytes);
      char Buf[64 * 1024];
      bool Alive = true;
      while (Alive) {
        for (;;) {
          server::FrameReader::Frame F = Frames.next();
          if (F.K == server::FrameReader::Kind::None)
            break;
          std::string Resp = Ws.handleFrame(F) + "\n";
          size_t Off = 0;
          while (Off < Resp.size()) {
            ssize_t W = write(Conn, Resp.data() + Off, Resp.size() - Off);
            if (W < 0 && errno == EINTR)
              continue;
            if (W < 0) {
              Alive = false;
              break;
            }
            Off += static_cast<size_t>(W);
          }
          if (Ws.shutdownRequested()) {
            Stop.store(true, std::memory_order_relaxed);
            // Unblock accept() so the daemon can exit.
            shutdown(Listen, SHUT_RDWR);
            Alive = false;
            break;
          }
        }
        if (!Alive)
          break;
        ssize_t N = read(Conn, Buf, sizeof(Buf));
        if (N < 0 && errno == EINTR)
          continue;
        if (N <= 0)
          break;
        Frames.feed(std::string_view(Buf, static_cast<size_t>(N)));
      }
      close(Conn);
    });
  }
  for (std::thread &T : Sessions)
    T.join();
  close(Listen);
  unlink(SocketPath.c_str());
  return WriteTrace();
#endif
}
