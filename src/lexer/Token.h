//===- Token.h - Vault surface tokens ---------------------------*- C++ -*-===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds for Vault's C-based surface syntax, extended with the
/// paper's protocol constructs: `tracked`, effect clauses in brackets,
/// key-state annotations with `@`, variant constructors written with a
/// leading tick (`'SomeKey`), and `stateset` partial orders.
///
//===----------------------------------------------------------------------===//

#ifndef VAULT_LEXER_TOKEN_H
#define VAULT_LEXER_TOKEN_H

#include "support/Hash.h"
#include "support/SourceManager.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace vault {

enum class TokKind : uint8_t {
  Eof,
  Identifier,
  TickIdentifier, ///< 'SomeKey — a variant constructor name.
  IntLiteral,
  StringLiteral,

  // Keywords.
  KwInterface,
  KwModule,
  KwExtern,
  KwType,
  KwVariant,
  KwStateset,
  KwKey,
  KwState,
  KwTracked,
  KwNew,
  KwFree,
  KwSwitch,
  KwCase,
  KwDefault,
  KwIf,
  KwElse,
  KwWhile,
  KwReturn,
  KwStruct,
  KwInt,
  KwBool,
  KwByte,
  KwVoid,
  KwString,
  KwTrue,
  KwFalse,
  KwGuarded,   ///< guarded<K> T — lock-guarded type sugar.
  KwBorrow,    ///< borrow y = x; — split a revocable alias key.
  KwEndborrow, ///< endborrow y; — revoke the alias key.

  // Punctuation and operators.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Less,
  Greater,
  LessEqual,
  GreaterEqual,
  EqualEqual,
  ExclaimEqual,
  Equal,
  Plus,
  PlusPlus,
  Minus,
  MinusMinus,
  Arrow, ///< -> (state transition in effects, not member access)
  Star,
  Slash,
  Percent,
  Exclaim,
  AmpAmp,
  PipePipe,
  Pipe,
  Semi,
  Comma,
  Dot,
  Colon,
  At,
  Underscore,

  NumTokens
};

/// Human-readable spelling of a token kind, for diagnostics.
const char *tokKindName(TokKind K);

struct Token {
  TokKind Kind = TokKind::Eof;
  SourceLoc Loc;
  /// The raw spelling; for TickIdentifier this excludes the tick, for
  /// StringLiteral this is the decoded contents.
  std::string Text;
  /// Value for IntLiteral tokens.
  int64_t IntValue = 0;

  bool is(TokKind K) const { return Kind == K; }
  bool isNot(TokKind K) const { return Kind != K; }
  bool isOneOf(std::initializer_list<TokKind> Ks) const {
    for (TokKind K : Ks)
      if (Kind == K)
        return true;
    return false;
  }

  /// Feeds the token's kind and spelling (not its location) into \p H:
  /// a token-stream hash is insensitive to layout and comments.
  void hashInto(Hasher &H) const {
    H.u8(static_cast<uint8_t>(Kind));
    H.str(Text);
    H.u64(static_cast<uint64_t>(IntValue));
  }
};

/// Hashes the half-open token range [\p Begin, \p End): the basis of
/// the incremental checker's per-declaration fingerprints. Identical
/// token streams — regardless of whitespace, comments, or position in
/// the file — hash equal.
void hashTokenRange(const Token *Begin, const Token *End, Hasher &H);

} // namespace vault

#endif // VAULT_LEXER_TOKEN_H
