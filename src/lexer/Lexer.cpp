//===- Lexer.cpp ----------------------------------------------------------===//

#include "lexer/Lexer.h"

#include <cctype>
#include <unordered_map>

using namespace vault;

Lexer::Lexer(const SourceManager &SM, uint32_t BufferId,
             DiagnosticEngine &Diags)
    : Text(SM.bufferText(BufferId)), BufferId(BufferId), Diags(Diags) {}

static const std::unordered_map<std::string_view, TokKind> &keywordMap() {
  static const std::unordered_map<std::string_view, TokKind> Map = {
      {"interface", TokKind::KwInterface},
      {"module", TokKind::KwModule},
      {"extern", TokKind::KwExtern},
      {"type", TokKind::KwType},
      {"variant", TokKind::KwVariant},
      {"stateset", TokKind::KwStateset},
      {"key", TokKind::KwKey},
      {"state", TokKind::KwState},
      {"tracked", TokKind::KwTracked},
      {"new", TokKind::KwNew},
      {"free", TokKind::KwFree},
      {"switch", TokKind::KwSwitch},
      {"case", TokKind::KwCase},
      {"default", TokKind::KwDefault},
      {"if", TokKind::KwIf},
      {"else", TokKind::KwElse},
      {"while", TokKind::KwWhile},
      {"return", TokKind::KwReturn},
      {"struct", TokKind::KwStruct},
      {"int", TokKind::KwInt},
      {"bool", TokKind::KwBool},
      {"byte", TokKind::KwByte},
      {"void", TokKind::KwVoid},
      {"string", TokKind::KwString},
      {"true", TokKind::KwTrue},
      {"false", TokKind::KwFalse},
      {"guarded", TokKind::KwGuarded},
      {"borrow", TokKind::KwBorrow},
      {"endborrow", TokKind::KwEndborrow},
  };
  return Map;
}

void Lexer::skipTrivia() {
  for (;;) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      ++Pos;
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      // '\r' ends the comment too, so CR-only files don't fold the
      // following lines into it.
      while (peek() != '\n' && peek() != '\r' && peek() != '\0')
        ++Pos;
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      size_t Start = Pos;
      Pos += 2;
      while (!(peek() == '*' && peek(1) == '/')) {
        if (peek() == '\0') {
          Diags.report(DiagId::LexUnterminatedComment, loc(Start),
                       "unterminated block comment");
          return;
        }
        ++Pos;
      }
      Pos += 2;
      continue;
    }
    return;
  }
}

Token Lexer::makeToken(TokKind Kind, size_t Start) {
  Token T;
  T.Kind = Kind;
  T.Loc = loc(Start);
  T.Text = std::string(Text.substr(Start, Pos - Start));
  return T;
}

Token Lexer::lexIdentifier(size_t Start, bool Tick) {
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
    ++Pos;
  Token T;
  T.Loc = loc(Start);
  size_t NameStart = Tick ? Start + 1 : Start;
  T.Text = std::string(Text.substr(NameStart, Pos - NameStart));
  if (Tick) {
    T.Kind = TokKind::TickIdentifier;
    return T;
  }
  if (T.Text == "_") {
    T.Kind = TokKind::Underscore;
    return T;
  }
  auto It = keywordMap().find(T.Text);
  T.Kind = It != keywordMap().end() ? It->second : TokKind::Identifier;
  return T;
}

Token Lexer::lexNumber(size_t Start) {
  int64_t Value = 0;
  bool Bad = false;
  if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
    Pos += 2;
    if (!std::isxdigit(static_cast<unsigned char>(peek())))
      Bad = true;
    while (std::isxdigit(static_cast<unsigned char>(peek()))) {
      char C = advance();
      int Digit = C <= '9' ? C - '0' : (std::tolower(C) - 'a' + 10);
      Value = Value * 16 + Digit;
    }
  } else {
    while (std::isdigit(static_cast<unsigned char>(peek())))
      Value = Value * 10 + (advance() - '0');
    if (std::isalpha(static_cast<unsigned char>(peek())))
      Bad = true;
  }
  Token T = makeToken(TokKind::IntLiteral, Start);
  T.IntValue = Value;
  if (Bad)
    Diags.report(DiagId::LexBadNumber, T.Loc,
                 "malformed numeric literal '" + T.Text + "'");
  return T;
}

Token Lexer::lexString(size_t Start) {
  std::string Decoded;
  for (;;) {
    char C = peek();
    // '\r' ends the line for CRLF and CR sources: without it the
    // carriage return would be decoded into the string contents and
    // the diagnostic would differ from the LF encoding of the file.
    if (C == '\0' || C == '\n' || C == '\r') {
      Diags.report(DiagId::LexUnterminatedString, loc(Start),
                   "unterminated string literal");
      break;
    }
    ++Pos;
    if (C == '"')
      break;
    if (C == '\\') {
      char E = peek();
      ++Pos;
      switch (E) {
      case 'n':
        Decoded += '\n';
        break;
      case 't':
        Decoded += '\t';
        break;
      case '\\':
        Decoded += '\\';
        break;
      case '"':
        Decoded += '"';
        break;
      case '0':
        Decoded += '\0';
        break;
      default:
        Decoded += E;
        break;
      }
      continue;
    }
    Decoded += C;
  }
  Token T;
  T.Kind = TokKind::StringLiteral;
  T.Loc = loc(Start);
  T.Text = std::move(Decoded);
  return T;
}

Token Lexer::lex() {
  skipTrivia();
  size_t Start = Pos;
  char C = peek();
  if (C == '\0') {
    Token T;
    T.Kind = TokKind::Eof;
    T.Loc = loc(Start);
    return T;
  }
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
    ++Pos;
    return lexIdentifier(Start, /*Tick=*/false);
  }
  if (C == '\'' && (std::isalpha(static_cast<unsigned char>(peek(1))) ||
                    peek(1) == '_')) {
    Pos += 2;
    return lexIdentifier(Start, /*Tick=*/true);
  }
  if (std::isdigit(static_cast<unsigned char>(C)))
    return lexNumber(Start);
  if (C == '"') {
    ++Pos;
    return lexString(Start);
  }

  ++Pos;
  switch (C) {
  case '(':
    return makeToken(TokKind::LParen, Start);
  case ')':
    return makeToken(TokKind::RParen, Start);
  case '{':
    return makeToken(TokKind::LBrace, Start);
  case '}':
    return makeToken(TokKind::RBrace, Start);
  case '[':
    return makeToken(TokKind::LBracket, Start);
  case ']':
    return makeToken(TokKind::RBracket, Start);
  case '<':
    return makeToken(match('=') ? TokKind::LessEqual : TokKind::Less, Start);
  case '>':
    return makeToken(match('=') ? TokKind::GreaterEqual : TokKind::Greater,
                     Start);
  case '=':
    return makeToken(match('=') ? TokKind::EqualEqual : TokKind::Equal, Start);
  case '!':
    return makeToken(match('=') ? TokKind::ExclaimEqual : TokKind::Exclaim,
                     Start);
  case '+':
    return makeToken(match('+') ? TokKind::PlusPlus : TokKind::Plus, Start);
  case '-':
    if (match('>'))
      return makeToken(TokKind::Arrow, Start);
    return makeToken(match('-') ? TokKind::MinusMinus : TokKind::Minus, Start);
  case '*':
    return makeToken(TokKind::Star, Start);
  case '/':
    return makeToken(TokKind::Slash, Start);
  case '%':
    return makeToken(TokKind::Percent, Start);
  case '&':
    if (match('&'))
      return makeToken(TokKind::AmpAmp, Start);
    break;
  case '|':
    return makeToken(match('|') ? TokKind::PipePipe : TokKind::Pipe, Start);
  case ';':
    return makeToken(TokKind::Semi, Start);
  case ',':
    return makeToken(TokKind::Comma, Start);
  case '.':
    return makeToken(TokKind::Dot, Start);
  case ':':
    return makeToken(TokKind::Colon, Start);
  case '@':
    return makeToken(TokKind::At, Start);
  default:
    break;
  }
  Diags.report(DiagId::LexUnknownChar, loc(Start),
               std::string("unknown character '") + C + "'");
  return lex();
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  for (;;) {
    Tokens.push_back(lex());
    if (Tokens.back().is(TokKind::Eof))
      return Tokens;
  }
}
