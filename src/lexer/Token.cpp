//===- Token.cpp ----------------------------------------------------------===//

#include "lexer/Token.h"

using namespace vault;

const char *vault::tokKindName(TokKind K) {
  switch (K) {
  case TokKind::Eof:
    return "end of file";
  case TokKind::Identifier:
    return "identifier";
  case TokKind::TickIdentifier:
    return "constructor name";
  case TokKind::IntLiteral:
    return "integer literal";
  case TokKind::StringLiteral:
    return "string literal";
  case TokKind::KwInterface:
    return "'interface'";
  case TokKind::KwModule:
    return "'module'";
  case TokKind::KwExtern:
    return "'extern'";
  case TokKind::KwType:
    return "'type'";
  case TokKind::KwVariant:
    return "'variant'";
  case TokKind::KwStateset:
    return "'stateset'";
  case TokKind::KwKey:
    return "'key'";
  case TokKind::KwState:
    return "'state'";
  case TokKind::KwTracked:
    return "'tracked'";
  case TokKind::KwNew:
    return "'new'";
  case TokKind::KwFree:
    return "'free'";
  case TokKind::KwSwitch:
    return "'switch'";
  case TokKind::KwCase:
    return "'case'";
  case TokKind::KwDefault:
    return "'default'";
  case TokKind::KwIf:
    return "'if'";
  case TokKind::KwElse:
    return "'else'";
  case TokKind::KwWhile:
    return "'while'";
  case TokKind::KwReturn:
    return "'return'";
  case TokKind::KwStruct:
    return "'struct'";
  case TokKind::KwInt:
    return "'int'";
  case TokKind::KwBool:
    return "'bool'";
  case TokKind::KwByte:
    return "'byte'";
  case TokKind::KwVoid:
    return "'void'";
  case TokKind::KwString:
    return "'string'";
  case TokKind::KwTrue:
    return "'true'";
  case TokKind::KwFalse:
    return "'false'";
  case TokKind::KwGuarded:
    return "'guarded'";
  case TokKind::KwBorrow:
    return "'borrow'";
  case TokKind::KwEndborrow:
    return "'endborrow'";
  case TokKind::LParen:
    return "'('";
  case TokKind::RParen:
    return "')'";
  case TokKind::LBrace:
    return "'{'";
  case TokKind::RBrace:
    return "'}'";
  case TokKind::LBracket:
    return "'['";
  case TokKind::RBracket:
    return "']'";
  case TokKind::Less:
    return "'<'";
  case TokKind::Greater:
    return "'>'";
  case TokKind::LessEqual:
    return "'<='";
  case TokKind::GreaterEqual:
    return "'>='";
  case TokKind::EqualEqual:
    return "'=='";
  case TokKind::ExclaimEqual:
    return "'!='";
  case TokKind::Equal:
    return "'='";
  case TokKind::Plus:
    return "'+'";
  case TokKind::PlusPlus:
    return "'++'";
  case TokKind::Minus:
    return "'-'";
  case TokKind::MinusMinus:
    return "'--'";
  case TokKind::Arrow:
    return "'->'";
  case TokKind::Star:
    return "'*'";
  case TokKind::Slash:
    return "'/'";
  case TokKind::Percent:
    return "'%'";
  case TokKind::Exclaim:
    return "'!'";
  case TokKind::AmpAmp:
    return "'&&'";
  case TokKind::PipePipe:
    return "'||'";
  case TokKind::Pipe:
    return "'|'";
  case TokKind::Semi:
    return "';'";
  case TokKind::Comma:
    return "','";
  case TokKind::Dot:
    return "'.'";
  case TokKind::Colon:
    return "':'";
  case TokKind::At:
    return "'@'";
  case TokKind::Underscore:
    return "'_'";
  case TokKind::NumTokens:
    break;
  }
  return "unknown token";
}

void vault::hashTokenRange(const Token *Begin, const Token *End, Hasher &H) {
  H.u64(static_cast<uint64_t>(End - Begin));
  for (const Token *T = Begin; T != End; ++T)
    T->hashInto(H);
}
