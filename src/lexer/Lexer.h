//===- Lexer.h - Vault lexer ------------------------------------*- C++ -*-===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer for Vault's surface syntax. Supports C-style
/// `//` and `/* */` comments, decimal and hex integer literals, string
/// literals with escapes, and tick-prefixed constructor names.
///
//===----------------------------------------------------------------------===//

#ifndef VAULT_LEXER_LEXER_H
#define VAULT_LEXER_LEXER_H

#include "lexer/Token.h"
#include "support/Diagnostics.h"

namespace vault {

class Lexer {
public:
  Lexer(const SourceManager &SM, uint32_t BufferId, DiagnosticEngine &Diags);

  /// Lexes and returns the next token.
  Token lex();

  /// Lexes the whole buffer; the returned vector ends with an Eof token.
  std::vector<Token> lexAll();

  /// Byte position, for the parser's tentative-parse save/restore.
  size_t position() const { return Pos; }
  void setPosition(size_t P) { Pos = P; }

private:
  SourceLoc loc(size_t Offset) const {
    return SourceLoc{BufferId, static_cast<uint32_t>(Offset)};
  }

  char peek(size_t Ahead = 0) const {
    size_t P = Pos + Ahead;
    return P < Text.size() ? Text[P] : '\0';
  }
  char advance() { return Text[Pos++]; }
  bool match(char C) {
    if (peek() != C)
      return false;
    ++Pos;
    return true;
  }

  void skipTrivia();
  Token makeToken(TokKind Kind, size_t Start);
  Token lexIdentifier(size_t Start, bool Tick);
  Token lexNumber(size_t Start);
  Token lexString(size_t Start);

  std::string_view Text;
  uint32_t BufferId;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
};

} // namespace vault

#endif // VAULT_LEXER_LEXER_H
