//===- Mutex.h - Guarded-by mutex substrate ---------------------*- C++ -*-===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic in-memory mutex substrate for the concurrency protocol
/// domain. The object under study is the lock-discipline automaton
///
///     unlocked --acquire--> locked --release--> unlocked --destroy--> (gone)
///
/// plus the guarded-by relation: cells created against a mutex may only
/// be accessed while that mutex is held in the `locked` state. Every
/// operation checks the mutex's dynamic state and records a protocol
/// violation when misused, providing the run-time oracle that the
/// static lock-discipline flow analysis is evaluated against.
///
//===----------------------------------------------------------------------===//

#ifndef VAULT_LOCKS_MUTEX_H
#define VAULT_LOCKS_MUTEX_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace vault::lock {

enum class MutexState : uint8_t {
  Unlocked,
  Locked,
  Destroyed,
};

const char *mutexStateName(MutexState S);

enum class MutexError : uint8_t {
  Ok,
  WrongState, ///< Operation applied in the wrong protocol state.
  BadHandle,  ///< Unknown or destroyed mutex handle.
};

const char *mutexErrorName(MutexError E);

/// An in-process world of mutexes. All operations are non-blocking and
/// deterministic: "acquire" on a locked mutex is a protocol violation
/// (a self-deadlock in the single-threaded dynamic oracle), not a wait.
class MutexWorld {
public:
  using Handle = uint64_t;

  /// Creates a mutex in the "unlocked" state.
  Handle mutexCreate();

  /// unlocked -> locked.
  MutexError acquire(Handle H);

  /// locked -> unlocked.
  MutexError release(Handle H);

  /// unlocked -> destroyed. Destroying a locked mutex is a violation.
  MutexError destroy(Handle H);

  /// Records an unguarded access: a guarded cell was touched while its
  /// mutex was not held in the locked state.
  void unguardedAccess(Handle H, const std::string &What);

  MutexState stateOf(Handle H) const;
  bool isLocked(Handle H) const;
  bool isLive(Handle H) const;
  size_t liveCount() const;

  /// Mutexes never destroyed (the dynamic analogue of a leaked key).
  std::vector<Handle> leakedMutexes() const;

  /// Count of operations applied in a protocol-violating state,
  /// including unguarded cell accesses.
  unsigned violationCount() const { return Violations; }

  /// Log of violations (operation name + state), for the test oracle.
  const std::vector<std::string> &violationLog() const { return Log; }

private:
  struct Mtx {
    MutexState State = MutexState::Unlocked;
    unsigned AcquireCount = 0;
  };

  Mtx *get(Handle H);
  const Mtx *get(Handle H) const;
  void violation(const std::string &What, Handle H);

  std::vector<std::optional<Mtx>> Mutexes;
  unsigned Violations = 0;
  std::vector<std::string> Log;
};

} // namespace vault::lock

#endif // VAULT_LOCKS_MUTEX_H
