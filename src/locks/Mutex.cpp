//===- Mutex.cpp ----------------------------------------------------------===//

#include "locks/Mutex.h"

using namespace vault::lock;

const char *vault::lock::mutexStateName(MutexState S) {
  switch (S) {
  case MutexState::Unlocked:
    return "unlocked";
  case MutexState::Locked:
    return "locked";
  case MutexState::Destroyed:
    return "destroyed";
  }
  return "?";
}

const char *vault::lock::mutexErrorName(MutexError E) {
  switch (E) {
  case MutexError::Ok:
    return "ok";
  case MutexError::WrongState:
    return "wrong-state";
  case MutexError::BadHandle:
    return "bad-handle";
  }
  return "?";
}

MutexWorld::Mtx *MutexWorld::get(Handle H) {
  if (H < 1 || H > Mutexes.size() || !Mutexes[H - 1])
    return nullptr;
  return &*Mutexes[H - 1];
}

const MutexWorld::Mtx *MutexWorld::get(Handle H) const {
  if (H < 1 || H > Mutexes.size() || !Mutexes[H - 1])
    return nullptr;
  return &*Mutexes[H - 1];
}

void MutexWorld::violation(const std::string &What, Handle H) {
  ++Violations;
  const Mtx *M = get(H);
  Log.push_back(What + " on mutex #" + std::to_string(H) + " in state " +
                (M ? mutexStateName(M->State) : "<dead>"));
}

MutexWorld::Handle MutexWorld::mutexCreate() {
  Mutexes.emplace_back(Mtx{});
  return Mutexes.size();
}

MutexError MutexWorld::acquire(Handle H) {
  Mtx *M = get(H);
  if (!M) {
    violation("acquire", H);
    return MutexError::BadHandle;
  }
  if (M->State != MutexState::Unlocked) {
    violation("acquire", H);
    return MutexError::WrongState;
  }
  M->State = MutexState::Locked;
  ++M->AcquireCount;
  return MutexError::Ok;
}

MutexError MutexWorld::release(Handle H) {
  Mtx *M = get(H);
  if (!M) {
    violation("release", H);
    return MutexError::BadHandle;
  }
  if (M->State != MutexState::Locked) {
    violation("release", H);
    return MutexError::WrongState;
  }
  M->State = MutexState::Unlocked;
  return MutexError::Ok;
}

MutexError MutexWorld::destroy(Handle H) {
  Mtx *M = get(H);
  if (!M) {
    violation("destroy", H);
    return MutexError::BadHandle;
  }
  if (M->State != MutexState::Unlocked) {
    violation("destroy", H);
    return MutexError::WrongState;
  }
  M->State = MutexState::Destroyed;
  return MutexError::Ok;
}

void MutexWorld::unguardedAccess(Handle H, const std::string &What) {
  violation(What, H);
}

MutexState MutexWorld::stateOf(Handle H) const {
  const Mtx *M = get(H);
  return M ? M->State : MutexState::Destroyed;
}

bool MutexWorld::isLocked(Handle H) const {
  const Mtx *M = get(H);
  return M && M->State == MutexState::Locked;
}

bool MutexWorld::isLive(Handle H) const {
  const Mtx *M = get(H);
  return M && M->State != MutexState::Destroyed;
}

size_t MutexWorld::liveCount() const {
  size_t N = 0;
  for (const auto &M : Mutexes)
    if (M && M->State != MutexState::Destroyed)
      ++N;
  return N;
}

std::vector<MutexWorld::Handle> MutexWorld::leakedMutexes() const {
  std::vector<Handle> Out;
  for (size_t I = 0; I != Mutexes.size(); ++I)
    if (Mutexes[I] && Mutexes[I]->State != MutexState::Destroyed)
      Out.push_back(I + 1);
  return Out;
}
