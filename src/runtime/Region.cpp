//===- Region.cpp ---------------------------------------------------------===//

#include "runtime/Region.h"

#include <cassert>
#include <cstring>

using namespace vault::rt;

Region::Region(size_t ChunkSize) : ChunkSize(ChunkSize) {
  assert(ChunkSize >= 256 && "chunk size too small");
}

Region::~Region() = default;

void Region::addChunk(size_t MinSize) {
  size_t Size = std::max(ChunkSize, MinSize);
  Chunk C;
  C.Memory = std::make_unique<char[]>(Size);
  C.Size = Size;
  Cursor = C.Memory.get();
  End = Cursor + Size;
  Chunks.push_back(std::move(C));
}

void *Region::allocate(size_t Size, size_t Align) {
  if (Size == 0)
    Size = 1;
  uintptr_t P = reinterpret_cast<uintptr_t>(Cursor);
  uintptr_t Aligned = (P + Align - 1) & ~(uintptr_t)(Align - 1);
  if (Cursor == nullptr ||
      Aligned + Size > reinterpret_cast<uintptr_t>(End)) {
    addChunk(Size + Align);
    P = reinterpret_cast<uintptr_t>(Cursor);
    Aligned = (P + Align - 1) & ~(uintptr_t)(Align - 1);
  }
  Cursor = reinterpret_cast<char *>(Aligned + Size);
  Allocated += Size;
  ++NumAllocs;
  return reinterpret_cast<void *>(Aligned);
}

void Region::reset() {
  Chunks.clear();
  Cursor = End = nullptr;
  Allocated = 0;
  NumAllocs = 0;
}

RegionManager::Handle RegionManager::create() {
  Entry E;
  E.R = std::make_unique<Region>();
  E.Live = true;
  Entries.push_back(std::move(E));
  return Entries.size(); // 1-based; 0 is never a valid handle.
}

bool RegionManager::isLive(Handle H) const {
  return H >= 1 && H <= Entries.size() && Entries[H - 1].Live;
}

bool RegionManager::destroy(Handle H) {
  if (!isLive(H)) {
    ++Violations;
    return false;
  }
  Entries[H - 1].Live = false;
  Entries[H - 1].R.reset();
  return true;
}

void *RegionManager::allocate(Handle H, size_t Size) {
  if (!isLive(H)) {
    ++Violations;
    return nullptr;
  }
  return Entries[H - 1].R->allocate(Size);
}

size_t RegionManager::liveCount() const {
  size_t N = 0;
  for (const Entry &E : Entries)
    if (E.Live)
      ++N;
  return N;
}

std::vector<RegionManager::Handle> RegionManager::leakedRegions() const {
  std::vector<Handle> Out;
  for (size_t I = 0; I != Entries.size(); ++I)
    if (Entries[I].Live)
      Out.push_back(I + 1);
  return Out;
}
