//===- Region.h - Region (arena) allocator runtime --------------*- C++ -*-===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The run-time half of the paper's §2.2 region abstraction (regions /
/// arenas in the style of Tofte-Talpin and Gay-Aiken): objects are
/// allocated individually from a region and deallocated all at once
/// when the region is deleted. The Vault checker proves statically
/// that compiled programs neither access a deleted region nor leak
/// one; this runtime additionally offers a *checked* mode that detects
/// such violations dynamically, serving as the oracle the benchmarks
/// compare against.
///
//===----------------------------------------------------------------------===//

#ifndef VAULT_RUNTIME_REGION_H
#define VAULT_RUNTIME_REGION_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace vault::rt {

/// A bump-pointer arena. Not thread-safe (one region per owner, as the
/// key discipline guarantees).
class Region {
public:
  static constexpr size_t DefaultChunkSize = 64 * 1024;

  explicit Region(size_t ChunkSize = DefaultChunkSize);
  ~Region();
  Region(const Region &) = delete;
  Region &operator=(const Region &) = delete;

  /// Allocates \p Size bytes aligned to \p Align from the region.
  void *allocate(size_t Size, size_t Align = alignof(std::max_align_t));

  /// Constructs a T in the region. The destructor is *not* run on
  /// deletion — regions hold trivially destructible data, as in the
  /// paper's model.
  template <typename T, typename... Args> T *create(Args &&...As) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "regions hold trivially destructible objects");
    return new (allocate(sizeof(T), alignof(T))) T{std::forward<Args>(As)...};
  }

  /// Total bytes handed out.
  size_t bytesAllocated() const { return Allocated; }
  /// Number of individual allocations served.
  size_t numAllocations() const { return NumAllocs; }
  /// Number of chunks requested from the system allocator.
  size_t numChunks() const { return Chunks.size(); }

  /// Releases every chunk but keeps the region usable (bulk free).
  void reset();

private:
  struct Chunk {
    std::unique_ptr<char[]> Memory;
    size_t Size;
  };
  void addChunk(size_t MinSize);

  std::vector<Chunk> Chunks;
  char *Cursor = nullptr;
  char *End = nullptr;
  size_t ChunkSize;
  size_t Allocated = 0;
  size_t NumAllocs = 0;
};

/// Handle-based region manager with dynamic protocol checking: the
/// run-time analogue of the key discipline. Used by the interpreter
/// and by the "testing" baseline in the evaluation: use-after-delete
/// and leaked regions are *detected*, not prevented.
class RegionManager {
public:
  using Handle = uint64_t;

  /// Creates a region, returning its handle.
  Handle create();

  /// Deletes a region. Returns false (a protocol violation: double
  /// delete or bogus handle) if the region is not live.
  bool destroy(Handle H);

  /// Allocates from a region; returns null and records a violation if
  /// the region is not live (use-after-delete).
  void *allocate(Handle H, size_t Size);

  bool isLive(Handle H) const;
  size_t liveCount() const;

  /// Regions never deleted: the dynamic analogue of FlowKeyLeaked.
  std::vector<Handle> leakedRegions() const;

  /// Violations observed so far (use-after-delete, double delete).
  unsigned violationCount() const { return Violations; }

private:
  struct Entry {
    std::unique_ptr<Region> R;
    bool Live = false;
  };
  std::vector<Entry> Entries;
  unsigned Violations = 0;
};

} // namespace vault::rt

#endif // VAULT_RUNTIME_REGION_H
