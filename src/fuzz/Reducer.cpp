//===- Reducer.cpp --------------------------------------------------------===//

#include "fuzz/Reducer.h"

#include <vector>

using namespace vault::fuzz;

namespace {

std::vector<std::string> splitLines(const std::string &Text) {
  std::vector<std::string> Lines;
  std::string Cur;
  for (char C : Text) {
    if (C == '\n') {
      Lines.push_back(Cur);
      Cur.clear();
    } else {
      Cur += C;
    }
  }
  if (!Cur.empty())
    Lines.push_back(Cur);
  return Lines;
}

std::string joinLines(const std::vector<std::string> &Lines,
                      const std::vector<bool> &Alive) {
  std::string Out;
  for (size_t I = 0; I < Lines.size(); ++I)
    if (Alive[I]) {
      Out += Lines[I];
      Out += '\n';
    }
  return Out;
}

} // namespace

std::string vault::fuzz::reduceLines(
    const std::string &Text,
    const std::function<bool(const std::string &)> &StillFails,
    unsigned MaxEvals, ReduceStats *Stats) {
  std::vector<std::string> Lines = splitLines(Text);
  std::vector<bool> Alive(Lines.size(), true);
  size_t AliveCount = Lines.size();
  unsigned Evals = 0;

  // ddmin over contiguous chunks: halve the chunk size each round a
  // full sweep removes nothing, down to single lines; restart at the
  // current size after any successful deletion so the sweep is greedy.
  size_t Chunk = (AliveCount + 1) / 2;
  while (Chunk >= 1 && AliveCount > 1 && Evals < MaxEvals) {
    bool Removed = false;
    // Walk alive-line positions in fixed order for determinism.
    std::vector<size_t> Pos;
    Pos.reserve(AliveCount);
    for (size_t I = 0; I < Lines.size(); ++I)
      if (Alive[I])
        Pos.push_back(I);
    for (size_t Start = 0; Start < Pos.size() && Evals < MaxEvals;
         Start += Chunk) {
      size_t End = std::min(Start + Chunk, Pos.size());
      for (size_t I = Start; I < End; ++I)
        Alive[Pos[I]] = false;
      ++Evals;
      if (StillFails(joinLines(Lines, Alive))) {
        AliveCount -= End - Start;
        Removed = true;
      } else {
        for (size_t I = Start; I < End; ++I)
          Alive[Pos[I]] = true;
      }
    }
    if (!Removed) {
      if (Chunk == 1)
        break;
      Chunk /= 2;
    } else {
      Chunk = std::min(Chunk, AliveCount);
      if (Chunk == 0)
        Chunk = 1;
    }
  }

  if (Stats) {
    Stats->Evals = Evals;
    Stats->LinesBefore = static_cast<unsigned>(Lines.size());
    Stats->LinesAfter = static_cast<unsigned>(AliveCount);
  }
  return joinLines(Lines, Alive);
}
