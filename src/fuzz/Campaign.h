//===- Campaign.h - Fuzzing campaign driver ---------------------*- C++ -*-===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Orchestrates one differential-fuzzing campaign: generate Count
/// programs from a seed (plus one mutant each when Mutate is set), run
/// the enabled oracles over every program, auto-reduce each violation
/// and each missed seeded defect to a minimal reproducer, and render a
/// deterministic report. The campaign populates the shared Metrics
/// registry under the `fuzz.` prefix and opens Tracer spans, so
/// --stats-json / --trace-json cover fuzz runs exactly as they cover
/// checker runs.
///
//===----------------------------------------------------------------------===//

#ifndef VAULT_FUZZ_CAMPAIGN_H
#define VAULT_FUZZ_CAMPAIGN_H

#include "fuzz/Fuzz.h"
#include "fuzz/Oracles.h"

#include <map>
#include <string>
#include <vector>

namespace vault {
class Metrics;
class Tracer;
} // namespace vault

namespace vault::fuzz {

struct CampaignOptions {
  uint64_t Seed = 1;
  unsigned Count = 50;  ///< Clean programs; mutants double the total.
  bool Mutate = true;   ///< Also run every program's seeded-defect twin.
  bool Reduce = true;   ///< ddmin violations/misses into reproducers.
  bool RunParity = true;
  bool RunDeterminism = true;
  bool RunRoundtrip = true;
  bool RunVm = true; ///< VM-vs-walker engine-equivalence oracle.
  unsigned DetJobs = 4;        ///< The N of the --jobs 1 vs N comparison.
  unsigned MinDetectPct = 95;  ///< Seeded-defect detection floor for Pass.
  unsigned MaxReduceEvals = 300;
  std::string EmitDir;   ///< When set, every program text is written here.
  std::string ReduceDir; ///< Reproducer output dir ("" = don't write).
  std::string TmpDir = "/tmp"; ///< Scratch for cache dirs and C binaries.
};

/// One oracle violation or missed defect, with its reduction result.
struct Finding {
  std::string Oracle;  ///< "parity" | "determinism" | "roundtrip" | "vm".
  std::string Program; ///< GeneratedProgram::Name.
  std::string Class;   ///< e.g. "dynamic-gap", "missed".
  std::string Detail;
  std::string ReducedPath; ///< Reproducer file, if one was written.
  unsigned ReducedLines = 0;
};

struct CampaignResult {
  unsigned Generated = 0;
  unsigned Mutants = 0;
  /// Per-oracle tallies keyed by outcome bucket, e.g.
  /// Parity["classified:join-conservative"].
  std::map<std::string, unsigned> Parity, Determinism, Roundtrip, Vm;
  unsigned MutantsDetected = 0; ///< static-only + detected-both + dynamic-gap.
  unsigned MutantsMissed = 0;
  std::vector<Finding> Findings;
  bool Pass = false;
  std::string Report; ///< Deterministic human-readable summary.

  unsigned violations() const {
    unsigned N = 0;
    for (const Finding &F : Findings)
      if (F.Class != "missed")
        ++N;
    return N;
  }
  /// Detection rate in percent (100 when no mutants ran).
  double detectPct() const {
    unsigned Total = MutantsDetected + MutantsMissed;
    return Total ? 100.0 * MutantsDetected / Total : 100.0;
  }
};

/// Runs the campaign. \p M and \p T may be null.
CampaignResult runCampaign(const CampaignOptions &Opts, Metrics *M = nullptr,
                           Tracer *T = nullptr);

/// Renders the reproducer file for \p Text: `//!fuzz-*` header lines
/// (oracle, class, origin, and a fresh `//!fuzz-expect:` verdict line
/// derived by re-checking \p Text) followed by the program. The
/// regress harness parses these headers back. Exposed for tests.
std::string renderReproducer(const std::string &Text, const Finding &F,
                             const GeneratedProgram &Origin, uint64_t Seed);

} // namespace vault::fuzz

#endif // VAULT_FUZZ_CAMPAIGN_H
