//===- Oracles.h - Differential fuzzing oracles -----------------*- C++ -*-===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The four differential oracles of the fuzzing subsystem:
///
///  * parity — the static checker's verdict against the interpreter's
///    dynamic protocol oracle, with the documented Fig. 5 class
///    (join-point conservatism) *classified* rather than flagged;
///  * determinism — byte-identical diagnostics across --jobs 1/N and
///    across cold/warm --cache-dir runs, for every generated program;
///  * erasure round-trip — the --emit-c lowering of an accepted
///    program compiles, runs, and matches the interpreter's output;
///  * vm — the register-bytecode VM and the tree-walking interpreter
///    observe identical behavior (output, traps, violations, leaks)
///    on every generated program and mutant.
///
/// Each oracle returns a four-way outcome: Ok, Classified (an expected
/// and explainable divergence), Violation (a finding worth reducing),
/// or Skipped (precondition absent, e.g. no C compiler).
///
//===----------------------------------------------------------------------===//

#ifndef VAULT_FUZZ_ORACLES_H
#define VAULT_FUZZ_ORACLES_H

#include "fuzz/Fuzz.h"
#include "sema/Checker.h"

#include <memory>
#include <string>

namespace vault::fuzz {

/// One static run of the checker over a program text.
struct StaticRun {
  std::unique_ptr<VaultCompiler> C;
  bool Accept = false;
  /// diags().render() plus a verdict trailer — the byte string the
  /// determinism oracle compares.
  std::string Signature;
  /// Error-severity DiagIds reported (deduplicated, sorted).
  std::vector<DiagId> ErrorIds;
};

StaticRun checkText(const std::string &Name, const std::string &Text,
                    unsigned Jobs = 1, const std::string &CacheDir = "");

/// One dynamic-oracle engine run (tree-walker or bytecode VM).
struct DynamicRun {
  bool Ran = false;
  bool Trapped = false;
  std::string TrapMessage;
  /// Protocol violations + end-of-run leaks (regions, sockets, DCs).
  unsigned Detections = 0;
  std::string Output; ///< print()/print_int() lines, '\n'-joined.
  /// The individual violation messages, in detection order.
  std::vector<std::string> Violations;
};

/// Tree-walking interpreter run over an already-checked program.
DynamicRun runDynamic(VaultCompiler &C);

/// Register-bytecode VM run over an already-checked program; fills the
/// same DynamicRun fields so the two engines compare field-by-field.
DynamicRun runVm(VaultCompiler &C);

struct OracleOutcome {
  enum class Status { Ok, Classified, Violation, Skipped };
  Status S = Status::Ok;
  /// Classification or skip reason ("join-conservative", "static-only",
  /// "missed", "no-cc", "statically-rejected", ...).
  std::string Class;
  std::string Detail; ///< Human-readable finding description.

  bool ok() const { return S == Status::Ok; }
  bool violation() const { return S == Status::Violation; }
};

/// Static-vs-dynamic parity. For mutants, also decides the detection
/// outcome: Class is "detected-both", "static-only", "dynamic-gap"
/// (a Violation: statically missed, dynamically caught) or "missed".
OracleOutcome runParityOracle(const GeneratedProgram &P);

/// Diagnostics byte-identity across jobs 1 vs \p JobsB and across a
/// cold-then-warm result cache rooted under \p ScratchDir.
OracleOutcome runDeterminismOracle(const GeneratedProgram &P, unsigned JobsB,
                                   const std::string &ScratchDir);

/// Erasure round-trip: lower, compile with the C runtime stub, run,
/// and compare observable output with the interpreter. Only meaningful
/// for statically-accepted programs within the stub's feature set.
/// \p ScratchDir receives the temporary .c/.bin files.
OracleOutcome runRoundtripOracle(const GeneratedProgram &P,
                                 const std::string &ScratchDir);

/// Engine equivalence: run the tree-walker and the bytecode VM over
/// the same checked program and compare every observable — completion,
/// trap message, output, violation list, detection count. Any
/// difference is a Violation (there is no benign classification; the
/// engines are contractually identical).
OracleOutcome runVmOracle(const GeneratedProgram &P);

/// Whether a C compiler ("cc") is reachable; cached after first call.
bool haveCCompiler();

} // namespace vault::fuzz

#endif // VAULT_FUZZ_ORACLES_H
