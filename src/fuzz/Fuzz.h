//===- Fuzz.h - Protocol-aware program generator ----------------*- C++ -*-===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The differential-fuzzing subsystem's front half: a seeded,
/// deterministic grammar-directed generator that emits well-formed
/// Vault programs biased toward protocol structure (tracked locals
/// flowing through branches, loops and joins; keyed variants packing
/// and unpacking keys; effect-clause-polymorphic helpers; socket
/// state-machine lifecycles), plus a protocol-aware mutator that seeds
/// exactly one labeled defect into a generated program.
///
/// Everything is a pure function of (seed, program index): the same
/// seed reproduces the same program bytes on any machine, which is
/// what makes fuzz findings replayable and the smoke ctest pinnable.
///
//===----------------------------------------------------------------------===//

#ifndef VAULT_FUZZ_FUZZ_H
#define VAULT_FUZZ_FUZZ_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace vault::fuzz {

/// SplitMix64: tiny, well-distributed, and fully portable — the
/// generator must not depend on libstdc++ distribution details.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed) {}

  uint64_t next() {
    State += 0x9E3779B97F4A7C15ull;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ull;
    Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBull;
    return Z ^ (Z >> 31);
  }
  /// Uniform in [0, N); 0 when N == 0.
  size_t below(size_t N) { return N ? next() % N : 0; }
  /// Uniform in [Lo, Hi] (inclusive).
  int range(int Lo, int Hi) {
    return Lo + static_cast<int>(below(static_cast<size_t>(Hi - Lo + 1)));
  }
  bool chance(unsigned Pct) { return below(100) < Pct; }

private:
  uint64_t State;
};

/// The seeded-defect classes of the evaluation (ISSUE 5): each mutant
/// carries exactly one, with ground truth of what was broken.
enum class MutationKind {
  None,
  DropRelease,   ///< A release/delete/free/repack is removed (leak).
  DoubleRelease, ///< A release is performed twice (double free/close).
  WrongStateUse, ///< A resource is used after release / in a wrong state.
  OnePathLeak,   ///< A release is made conditional; one path leaks.
  DoubleAcquire, ///< A fresh-key introduction reuses a live key name.
  UnguardedAccess,  ///< A guarded cell is created/used without the lock.
  UnlockBorrowLive, ///< The guard mutex is released while a borrow lives.
  UseAfterRevoke,   ///< A borrow alias is used after its endborrow.
};

const char *mutationName(MutationKind K);

/// One generated program plus its ground-truth label.
struct GeneratedProgram {
  std::string Name; ///< e.g. "fuzz-s42-p17" or "fuzz-s42-p17-m-drop-release".
  std::string Text; ///< Self-contained Vault source (no //!include).
  bool Mutated = false;
  MutationKind Mutation = MutationKind::None;
  /// Ground truth: un-mutated programs are protocol-clean by
  /// construction; mutants carry exactly one seeded defect.
  bool ExpectClean = true;
  /// For OnePathLeak: whether the guarding condition is true at run
  /// time (true = the release still executes, so the defect is cold).
  bool MutationIsCold = false;
  /// False for programs using features the C backend's runtime stub
  /// does not model (sockets, mutexes); the round-trip oracle skips
  /// those.
  bool RoundtripEligible = true;
  /// Human-oriented note about the mutation site ("rgn3", "s1", ...).
  std::string MutationNote;
};

/// Grammar-directed generator; see file comment. Thread-compatible:
/// one instance per thread.
class Generator {
public:
  explicit Generator(uint64_t Seed) : Seed(Seed) {}

  /// The \p Index-th clean program of this seed's campaign.
  GeneratedProgram generate(unsigned Index) const;

  /// Re-derives program \p Index and seeds one defect into it.
  /// Deterministic in (Seed, Index). Returns nullopt only if the
  /// program exposes no mutation point (never the case for the
  /// current fragment set).
  std::optional<GeneratedProgram> mutate(unsigned Index) const;

  uint64_t seed() const { return Seed; }

private:
  uint64_t Seed;
};

} // namespace vault::fuzz

#endif // VAULT_FUZZ_FUZZ_H
