//===- Reducer.h - Delta-debugging reducer ----------------------*- C++ -*-===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A line-oriented delta-debugging (ddmin-style) reducer: given a
/// program text and a predicate "does this text still exhibit the
/// finding", it greedily deletes ever-smaller contiguous line chunks
/// until the text is 1-minimal under the predicate. Deterministic —
/// chunk order is fixed, no randomness — so a reduced reproducer is a
/// pure function of (input, predicate).
///
//===----------------------------------------------------------------------===//

#ifndef VAULT_FUZZ_REDUCER_H
#define VAULT_FUZZ_REDUCER_H

#include <functional>
#include <string>

namespace vault::fuzz {

struct ReduceStats {
  unsigned Evals = 0;       ///< Predicate evaluations performed.
  unsigned LinesBefore = 0; ///< Input line count.
  unsigned LinesAfter = 0;  ///< Output line count.
};

/// Shrinks \p Text while \p StillFails holds. \p StillFails must be
/// true for \p Text itself; the result is the smallest variant found
/// within \p MaxEvals predicate evaluations (the cap bounds reduction
/// time on pathological inputs; the partially reduced text is still
/// valid). Lines are the atomic unit — the predicate is expected to
/// tolerate arbitrary line deletions (parse errors simply fail it).
std::string reduceLines(const std::string &Text,
                        const std::function<bool(const std::string &)>
                            &StillFails,
                        unsigned MaxEvals = 400, ReduceStats *Stats = nullptr);

} // namespace vault::fuzz

#endif // VAULT_FUZZ_REDUCER_H
