//===- Generator.cpp - Grammar-directed program generation ----------------===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
// Programs are assembled from independent protocol fragments, each a
// self-contained block over its own resources: region lifecycles
// through straight lines, branches and loops; tracked heap objects;
// keyed variants packing a region key through a join (the Fig. 5
// rewrite) or a loop; effect-clause-polymorphic helper functions; and
// socket state-machine lifecycles. Every fragment registers the
// mutation points the defect seeder may strike, so ground-truth labels
// come from construction, not from guessing.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzz.h"

#include <cassert>
#include <sstream>

using namespace vault::fuzz;

const char *vault::fuzz::mutationName(MutationKind K) {
  switch (K) {
  case MutationKind::None:
    return "none";
  case MutationKind::DropRelease:
    return "drop-release";
  case MutationKind::DoubleRelease:
    return "double-release";
  case MutationKind::WrongStateUse:
    return "wrong-state-use";
  case MutationKind::OnePathLeak:
    return "one-path-leak";
  case MutationKind::DoubleAcquire:
    return "double-acquire";
  case MutationKind::UnguardedAccess:
    return "unguarded-access";
  case MutationKind::UnlockBorrowLive:
    return "unlock-while-borrow-live";
  case MutationKind::UseAfterRevoke:
    return "use-after-revoke";
  }
  return "none";
}

namespace {

struct ScriptLine {
  std::string Text;
  int Indent = 1;
};

/// How a mutation edits the script, independent of its label.
enum class MutOp { Erase, Duplicate, InsertAfter, Wrap, RenameKey };

struct MutPoint {
  MutationKind Label;
  MutOp Op;
  size_t Line;      ///< Anchor into Script::Main.
  std::string Aux;  ///< InsertAfter: stmt; Wrap: condition; RenameKey: new.
  std::string Aux2; ///< RenameKey: old key text (with parens).
  bool Cold = false; ///< Defect invisible to the generated run.
  std::string Note; ///< Resource the mutation strikes.
};

struct Script {
  std::vector<std::string> TopDecls;
  std::vector<ScriptLine> Main;
  std::vector<MutPoint> Points;
  bool UsesRegion = false, UsesPoint = false, UsesHolds = false,
       UsesSocket = false, UsesMutex = false;

  size_t line(std::string Text, int Indent = 1) {
    Main.push_back({std::move(Text), Indent});
    return Main.size() - 1;
  }
  void point(MutationKind Label, MutOp Op, size_t Line, std::string Note,
             std::string Aux = "", std::string Aux2 = "", bool Cold = false) {
    Points.push_back(
        {Label, Op, Line, std::move(Aux), std::move(Aux2), Cold,
         std::move(Note)});
  }
};

/// A fresh-key-introducing declaration, for double-acquire renames.
struct KeyIntro {
  size_t Line;
  std::string Key; ///< Bare key name, e.g. "R3".
};

//===----------------------------------------------------------------------===//
// Fragments
//===----------------------------------------------------------------------===//

/// Registers the release-site mutations every fragment shares: drop,
/// duplicate, use-after via \p UseStmt, and (when \p WrapLeak) the
/// conditional one-path leak. \p Hot tells whether the generated run
/// actually reaches this release.
void releasePoints(Script &S, Rng &R, size_t ReleaseLine,
                   const std::string &Res, const std::string &UseStmt,
                   bool LeakIsHot, bool WrapLeak = true) {
  S.point(MutationKind::DropRelease, MutOp::Erase, ReleaseLine, Res, "", "",
          /*Cold=*/!LeakIsHot);
  S.point(MutationKind::DoubleRelease, MutOp::Duplicate, ReleaseLine, Res, "",
          "", /*Cold=*/!LeakIsHot);
  if (!UseStmt.empty())
    S.point(MutationKind::WrongStateUse, MutOp::InsertAfter, ReleaseLine, Res,
            UseStmt, "", /*Cold=*/!LeakIsHot);
  if (WrapLeak) {
    // The wrapped release still runs when the literal condition is
    // true — then only the checker sees the leak (a cold defect).
    bool CondTrue = R.chance(50);
    S.point(MutationKind::OnePathLeak, MutOp::Wrap, ReleaseLine, Res,
            CondTrue ? "0 < 1" : "1 < 0", "",
            /*Cold=*/CondTrue || !LeakIsHot);
  }
}

void emitRegionLinear(Script &S, Rng &R, int Id, std::vector<KeyIntro> &Keys) {
  S.UsesRegion = S.UsesPoint = true;
  std::string N = std::to_string(Id);
  std::string Rgn = "rgn" + N, Pt = "pt" + N, Key = "R" + N;
  Keys.push_back({S.line("tracked(" + Key + ") region " + Rgn +
                         " = Region.create();"),
                  Key});
  S.line(Key + ":point " + Pt + " = new(" + Rgn + ") point {x=" +
         std::to_string(R.range(1, 9)) + "; y=" + std::to_string(R.range(1, 9)) +
         ";};");
  bool TwoObjects = R.chance(40);
  std::string Qt = "qt" + N;
  if (TwoObjects)
    S.line(Key + ":point " + Qt + " = new(" + Rgn + ") point {x=" +
           std::to_string(R.range(1, 9)) + "; y=" +
           std::to_string(R.range(1, 9)) + ";};");
  int Ops = R.range(1, 3);
  for (int I = 0; I < Ops; ++I) {
    const char *Fld = R.chance(50) ? "x" : "y";
    if (TwoObjects && R.chance(50))
      S.line(Pt + "." + Fld + " = " + Pt + "." + Fld + " + " + Qt + "." +
             (R.chance(50) ? "x" : "y") + ";");
    else
      S.line(Pt + "." + Fld + " = " + Pt + "." + Fld + " + " +
             std::to_string(R.range(1, 5)) + ";");
  }
  S.line("print_int(" + Pt + ".x + " + Pt + ".y);");
  size_t Rel = S.line("Region.delete(" + Rgn + ");");
  releasePoints(S, R, Rel, Rgn, "print_int(" + Pt + ".x);", /*LeakIsHot=*/true);
}

void emitRegionBranch(Script &S, Rng &R, int Id, std::vector<KeyIntro> &Keys) {
  S.UsesRegion = S.UsesPoint = true;
  std::string N = std::to_string(Id);
  if (R.chance(50)) {
    // Style A: one region, data-dependent branch, release after join.
    std::string Rgn = "rgn" + N, Pt = "pt" + N, V = "v" + N, Key = "R" + N;
    int K = R.range(0, 9), C = R.range(0, 9);
    Keys.push_back({S.line("tracked(" + Key + ") region " + Rgn +
                           " = Region.create();"),
                    Key});
    S.line(Key + ":point " + Pt + " = new(" + Rgn + ") point {x=" +
           std::to_string(R.range(1, 9)) + "; y=" +
           std::to_string(R.range(1, 9)) + ";};");
    S.line("int " + V + " = " + std::to_string(K) + ";");
    S.line("if (" + V + " > " + std::to_string(C) + ") {");
    S.line(Pt + ".x = " + Pt + ".x + 1;", 2);
    S.line("} else {");
    S.line(Pt + ".y = " + Pt + ".y + 2;", 2);
    S.line("}");
    S.line("print_int(" + Pt + ".x + " + Pt + ".y);");
    size_t Rel = S.line("Region.delete(" + Rgn + ");");
    releasePoints(S, R, Rel, Rgn, "print_int(" + Pt + ".y);", true);
  } else {
    // Style B: two regions released in both arms in *different*
    // orders — the join-renaming stress from PR 1's bugfix.
    std::string A = "ra" + N, B = "rb" + N, Pa = "pa" + N, Pb = "pb" + N,
                V = "v" + N, Ka = "RA" + N, Kb = "RB" + N;
    int K = R.range(0, 9), C = R.range(0, 9);
    bool Then = K > C;
    Keys.push_back({S.line("tracked(" + Ka + ") region " + A +
                           " = Region.create();"),
                    Ka});
    Keys.push_back({S.line("tracked(" + Kb + ") region " + B +
                           " = Region.create();"),
                    Kb});
    S.line(Ka + ":point " + Pa + " = new(" + A + ") point {x=" +
           std::to_string(R.range(1, 9)) + "; y=0;};");
    S.line(Kb + ":point " + Pb + " = new(" + B + ") point {x=" +
           std::to_string(R.range(1, 9)) + "; y=0;};");
    S.line("int " + V + " = " + std::to_string(K) + ";");
    S.line("if (" + V + " > " + std::to_string(C) + ") {");
    S.line("print_int(" + Pa + ".x);", 2);
    size_t R1 = S.line("Region.delete(" + A + ");", 2);
    size_t R2 = S.line("Region.delete(" + B + ");", 2);
    S.line("} else {");
    S.line("print_int(" + Pb + ".x);", 2);
    size_t R3 = S.line("Region.delete(" + B + ");", 2);
    size_t R4 = S.line("Region.delete(" + A + ");", 2);
    S.line("}");
    releasePoints(S, R, R1, A, "print_int(" + Pa + ".x);", Then,
                  /*WrapLeak=*/false);
    releasePoints(S, R, R2, B, "", Then, false);
    releasePoints(S, R, R3, B, "print_int(" + Pb + ".x);", !Then, false);
    releasePoints(S, R, R4, A, "", !Then, false);
  }
}

void emitRegionLoop(Script &S, Rng &R, int Id, std::vector<KeyIntro> &Keys) {
  S.UsesRegion = S.UsesPoint = true;
  std::string N = std::to_string(Id);
  std::string Rgn = "rgn" + N, Acc = "acc" + N, I = "i" + N, Key = "R" + N;
  int Bound = R.range(3, 8);
  Keys.push_back({S.line("tracked(" + Key + ") region " + Rgn +
                         " = Region.create();"),
                  Key});
  S.line(Key + ":point " + Acc + " = new(" + Rgn + ") point {x=0; y=" +
         std::to_string(R.range(0, 4)) + ";};");
  S.line("int " + I + " = 0;");
  S.line("while (" + I + " < " + std::to_string(Bound) + ") {");
  S.line(Acc + ".x = " + Acc + ".x + " + I + ";", 2);
  if (R.chance(60))
    S.line(Acc + ".y = " + Acc + ".y + " + Acc + ".x;", 2);
  S.line(I + " = " + I + " + 1;", 2);
  S.line("}");
  S.line("print_int(" + Acc + ".x);");
  S.line("print_int(" + Acc + ".y);");
  size_t Rel = S.line("Region.delete(" + Rgn + ");");
  releasePoints(S, R, Rel, Rgn, "print_int(" + Acc + ".x);", true);
}

void emitHeap(Script &S, Rng &R, int Id, std::vector<KeyIntro> &Keys) {
  S.UsesPoint = true;
  std::string N = std::to_string(Id);
  std::string P = "p" + N, Key = "K" + N;
  Keys.push_back({S.line("tracked(" + Key + ") point " + P +
                         " = new tracked point {x=" +
                         std::to_string(R.range(1, 9)) + "; y=" +
                         std::to_string(R.range(1, 9)) + ";};"),
                  Key});
  int Ops = R.range(0, 2);
  for (int I = 0; I < Ops; ++I)
    S.line(P + ".x = " + P + ".x * " + std::to_string(R.range(2, 3)) + ";");
  S.line("print_int(" + P + ".x + " + P + ".y);");
  size_t Rel = S.line("free(" + P + ");");
  // A dropped free leaks silently at run time (no heap-leak tracker,
  // exactly the paper's "testing cannot see it" class) — cold.
  releasePoints(S, R, Rel, P, "print_int(" + P + ".y);",
                /*LeakIsHot=*/false);
}

void emitKeyedVariantJoin(Script &S, Rng &R, int Id,
                          std::vector<KeyIntro> &Keys) {
  S.UsesRegion = S.UsesPoint = S.UsesHolds = true;
  std::string N = std::to_string(Id);
  std::string Rgn = "rgn" + N, Pt = "pt" + N, Fl = "fl" + N, Key = "R" + N;
  int A = R.range(1, 9), C = R.range(0, 9);
  bool ThenTaken = A > C; // pt.x > C decides at run time.
  Keys.push_back({S.line("tracked(" + Key + ") region " + Rgn +
                         " = Region.create();"),
                  Key});
  S.line(Key + ":point " + Pt + " = new(" + Rgn + ") point {x=" +
         std::to_string(A) + "; y=" + std::to_string(R.range(1, 9)) + ";};");
  S.line("tracked holds<" + Key + "> " + Fl + ";");
  S.line("if (" + Pt + ".x > " + std::to_string(C) + ") {");
  S.line(Pt + ".y = 0;", 2);
  size_t RelThen = S.line("Region.delete(" + Rgn + ");", 2);
  S.line(Fl + " = 'Deleted;", 2);
  S.line("} else {");
  S.line(Pt + ".y = " + Pt + ".x;", 2);
  S.line(Fl + " = 'Alive{" + Key + "};", 2);
  S.line("}");
  S.line("switch (" + Fl + ") {");
  S.line("case 'Deleted:", 1);
  S.line("print(\"gone" + N + "\");", 2);
  S.line("case 'Alive:", 1);
  S.line("print_int(" + Pt + ".y);", 2);
  size_t RelCase = S.line("Region.delete(" + Rgn + ");", 2);
  S.line("}");
  releasePoints(S, R, RelThen, Rgn, Pt + ".x = 2;", ThenTaken,
                /*WrapLeak=*/false);
  releasePoints(S, R, RelCase, Rgn, Pt + ".x = 3;", !ThenTaken,
                /*WrapLeak=*/false);
}

void emitVariantLoop(Script &S, Rng &R, int Id, std::vector<KeyIntro> &Keys) {
  S.UsesRegion = S.UsesPoint = S.UsesHolds = true;
  std::string N = std::to_string(Id);
  std::string Rgn = "rgn" + N, Pt = "pt" + N, Fl = "fl" + N, I = "i" + N,
              Key = "R" + N;
  int Bound = R.range(2, 6);
  Keys.push_back({S.line("tracked(" + Key + ") region " + Rgn +
                         " = Region.create();"),
                  Key});
  S.line(Key + ":point " + Pt + " = new(" + Rgn + ") point {x=" +
         std::to_string(R.range(1, 9)) + "; y=0;};");
  S.line("tracked holds<" + Key + "> " + Fl + " = 'Alive{" + Key + "};");
  S.line("int " + I + " = 0;");
  S.line("while (" + I + " < " + std::to_string(Bound) + ") {");
  S.line("switch (" + Fl + ") {", 2);
  S.line("case 'Deleted:", 2);
  S.line(Fl + " = 'Deleted;", 3);
  S.line("case 'Alive:", 2);
  S.line(Pt + ".y = " + Pt + ".y + " + I + ";", 3);
  size_t Repack = S.line(Fl + " = 'Alive{" + Key + "};", 3);
  S.line("}", 2);
  S.line(I + " = " + I + " + 1;", 2);
  S.line("}");
  S.line("switch (" + Fl + ") {");
  S.line("case 'Deleted:", 1);
  S.line("print(\"dead" + N + "\");", 2);
  S.line("case 'Alive:", 1);
  S.line("print_int(" + Pt + ".y);", 2);
  size_t Rel = S.line("Region.delete(" + Rgn + ");", 2);
  S.line("}");
  // Dropping the repack leaves the key loose in the 'Alive case only —
  // a loop/join disagreement the checker must catch; the run stays
  // clean (the variant value is unchanged), so the defect is cold.
  S.point(MutationKind::DropRelease, MutOp::Erase, Repack, Fl, "", "",
          /*Cold=*/true);
  releasePoints(S, R, Rel, Rgn, Pt + ".x = 1;", /*LeakIsHot=*/true,
                /*WrapLeak=*/false);
}

void emitHelperCalls(Script &S, Rng &R, int Id, std::vector<KeyIntro> &Keys) {
  S.UsesPoint = true;
  std::string N = std::to_string(Id);
  // Effect-clause polymorphism: one helper pair, two call sites with
  // distinct caller-chosen keys.
  S.TopDecls.push_back("tracked(H) point mk" + N +
                       "(int a) [new H] {\n"
                       "  return new tracked point {x=a; y=a+1;};\n"
                       "}");
  S.TopDecls.push_back("int burn" + N +
                       "(tracked(H) point p) [-H] {\n"
                       "  int t = p.x + p.y;\n"
                       "  free(p);\n"
                       "  return t;\n"
                       "}");
  std::string U = "u" + N, W = "w" + N, Ka = "A" + N, Kb = "B" + N;
  Keys.push_back({S.line("tracked(" + Ka + ") point " + U + " = mk" + N + "(" +
                         std::to_string(R.range(1, 9)) + ");"),
                  Ka});
  Keys.push_back({S.line("tracked(" + Kb + ") point " + W + " = mk" + N + "(" +
                         std::to_string(R.range(1, 9)) + ");"),
                  Kb});
  S.line(U + ".x = " + U + ".x + " + std::to_string(R.range(1, 5)) + ";");
  size_t B1 = S.line("print_int(burn" + N + "(" + U + "));");
  size_t B2 = S.line("print_int(burn" + N + "(" + W + "));");
  releasePoints(S, R, B1, U, "print_int(" + U + ".y);", /*LeakIsHot=*/true,
                /*WrapLeak=*/false);
  releasePoints(S, R, B2, W, "", /*LeakIsHot=*/true, /*WrapLeak=*/false);
}

void emitSocket(Script &S, Rng &R, int Id, std::vector<KeyIntro> &Keys) {
  S.UsesSocket = true;
  std::string N = std::to_string(Id);
  std::string Addr = "addr" + N, Sock = "s" + N;
  S.line("sockaddr " + Addr + " = new sockaddr {port=" +
         std::to_string(R.range(1024, 9999)) + ";};");
  // The socket key is introduced anonymously at @raw (Fig. 3 style),
  // so double-acquire renames do not apply here.
  S.line("tracked(@raw) sock " + Sock + " = socket(" +
         (R.chance(50) ? "'UNIX" : "'INET") + ", 'STREAM, 0);");
  size_t Bind = S.line("bind(" + Sock + ", " + Addr + ");");
  S.line("listen(" + Sock + ", " + std::to_string(R.range(1, 16)) + ");");
  size_t Rel = S.line("close(" + Sock + ");");
  (void)Keys;
  // Dropping the bind skips a protocol transition: listen then runs on
  // a @raw socket — the canonical wrong-state defect, hot.
  S.point(MutationKind::WrongStateUse, MutOp::Erase, Bind, Sock, "", "",
          /*Cold=*/false);
  releasePoints(S, R, Rel, Sock, "listen(" + Sock + ", 1);",
                /*LeakIsHot=*/true);
}

void emitMutex(Script &S, Rng &R, int Id, std::vector<KeyIntro> &Keys) {
  S.UsesMutex = true;
  std::string N = std::to_string(Id);
  std::string Mx = "mx" + N, Cell = "c" + N, Bor = "b" + N, MKey = "M" + N,
              DKey = "D" + N;
  Keys.push_back({S.line("tracked(" + MKey + ") mutex " + Mx +
                         " = mutex_create();"),
                  MKey});
  size_t Acq = S.line("mutex_acquire(" + Mx + ");");
  S.line("guarded<" + MKey + "> tracked(" + DKey + ") cell " + Cell +
         " = cell_new(" + Mx + ", " + std::to_string(R.range(1, 9)) + ");");
  int Ops = R.range(0, 2);
  for (int I = 0; I < Ops; ++I)
    S.line(Cell + ".val = " + Cell + ".val + " +
           std::to_string(R.range(1, 5)) + ";");
  size_t Borrow = S.line("borrow " + Bor + " = " + Cell + ";");
  S.line(Bor + ".val = " + Bor + ".val * " + std::to_string(R.range(2, 3)) +
         ";");
  size_t End = S.line("endborrow " + Bor + ";");
  S.line("print_int(" + Cell + ".val);");
  S.line("free(" + Cell + ");");
  size_t Rel = S.line("mutex_release(" + Mx + ");");
  S.line("mutex_destroy(" + Mx + ");");
  // The three concurrency-domain defect kinds, all hot: the generated
  // run reaches every struck line.
  // 1. Drop the acquire: the cell is created and used with the mutex
  //    unlocked — every access is unguarded.
  S.point(MutationKind::UnguardedAccess, MutOp::Erase, Acq, Mx, "", "",
          /*Cold=*/false);
  // 2. Release the guard while the borrow alias is still live: the
  //    lock is yanked out from under the guarded borrow.
  S.point(MutationKind::UnlockBorrowLive, MutOp::InsertAfter, Borrow, Bor,
          "mutex_release(" + Mx + ");", "", /*Cold=*/false);
  // 3. Use the alias after endborrow revoked it.
  S.point(MutationKind::UseAfterRevoke, MutOp::InsertAfter, End, Bor,
          Bor + ".val = " + Bor + ".val + 1;", "", /*Cold=*/false);
  // The shared release-site strikes also apply to the mutex lifecycle:
  // dropping the release leaves the mutex locked at destroy, and a
  // doubled release trips the automaton — both visible to the run.
  releasePoints(S, R, Rel, Mx, "", /*LeakIsHot=*/true, /*WrapLeak=*/false);
}

//===----------------------------------------------------------------------===//
// Whole-program assembly
//===----------------------------------------------------------------------===//

enum class FragKind {
  RegionLinear,
  RegionBranch,
  RegionLoop,
  Heap,
  KeyedVariantJoin,
  VariantLoop,
  HelperCalls,
  Socket,
  Mutex,
  NumKinds
};

Script buildScript(uint64_t Seed, unsigned Index) {
  // One stream decides everything about program Index; mutation picks
  // come from a second, independent stream (see mutate()).
  Rng R(Seed * 0x9E3779B97F4A7C15ull + Index * 2654435761ull + 1);
  Script S;
  std::vector<KeyIntro> Keys;
  int NumFrags = R.range(1, 3);
  for (int F = 0; F < NumFrags; ++F) {
    int Id = F + 1;
    switch (static_cast<FragKind>(R.below(
        static_cast<size_t>(FragKind::NumKinds)))) {
    case FragKind::RegionLinear:
      emitRegionLinear(S, R, Id, Keys);
      break;
    case FragKind::RegionBranch:
      emitRegionBranch(S, R, Id, Keys);
      break;
    case FragKind::RegionLoop:
      emitRegionLoop(S, R, Id, Keys);
      break;
    case FragKind::Heap:
      emitHeap(S, R, Id, Keys);
      break;
    case FragKind::KeyedVariantJoin:
      emitKeyedVariantJoin(S, R, Id, Keys);
      break;
    case FragKind::VariantLoop:
      emitVariantLoop(S, R, Id, Keys);
      break;
    case FragKind::HelperCalls:
      emitHelperCalls(S, R, Id, Keys);
      break;
    case FragKind::Socket:
      emitSocket(S, R, Id, Keys);
      break;
    case FragKind::Mutex:
      emitMutex(S, R, Id, Keys);
      break;
    case FragKind::NumKinds:
      break;
    }
  }
  // Double-acquire points: a later fresh-key declaration can be
  // renamed to collide with any earlier live key.
  for (size_t J = 1; J < Keys.size(); ++J)
    for (size_t I = 0; I < J; ++I)
      S.point(MutationKind::DoubleAcquire, MutOp::RenameKey, Keys[J].Line,
              Keys[J].Key + "->" + Keys[I].Key, "(" + Keys[I].Key + ")",
              "(" + Keys[J].Key + ")", /*Cold=*/true);
  return S;
}

std::string renderProgram(const Script &S, uint64_t Seed, unsigned Index,
                          MutationKind K, const std::string &Note) {
  std::ostringstream Out;
  Out << "// generated by vaultfuzz: seed=" << Seed << " program=" << Index
      << " mutation=" << mutationName(K);
  if (!Note.empty())
    Out << " site=" << Note;
  Out << "\n";
  Out << "void print(string s);\n"
         "void print_int(int n);\n";
  if (S.UsesRegion)
    Out << "interface REGION {\n"
           "  type region;\n"
           "  tracked(R) region create() [new R];\n"
           "  void delete(tracked(R) region) [-R];\n"
           "}\n"
           "extern module Region : REGION;\n";
  if (S.UsesPoint)
    Out << "struct point { int x; int y; }\n";
  if (S.UsesHolds)
    Out << "variant holds<key K> [ 'Deleted | 'Alive {K} ];\n";
  if (S.UsesMutex)
    Out << "interface MUTEX {\n"
           "  type mutex;\n"
           "  struct cell { int val; }\n"
           "  tracked(@unlocked) mutex mutex_create();\n"
           "  void mutex_acquire(tracked(M) mutex) [M@unlocked->locked];\n"
           "  void mutex_release(tracked(M) mutex) [M@locked->unlocked];\n"
           "  void mutex_destroy(tracked(M) mutex) [-M@unlocked];\n"
           "  guarded<M> tracked cell cell_new(tracked(M) mutex, int val) "
           "[M@locked];\n"
           "}\n";
  if (S.UsesSocket)
    Out << "type sock;\n"
           "variant domain [ 'UNIX | 'INET ];\n"
           "variant comm_style [ 'STREAM | 'DGRAM ];\n"
           "struct sockaddr { int port; }\n"
           "tracked(@raw) sock socket(domain, comm_style, int);\n"
           "void bind(tracked(S) sock, sockaddr) [S@raw->named];\n"
           "void listen(tracked(S) sock, int) [S@named->listening];\n"
           "void close(tracked(S) sock) [-S];\n";
  for (const std::string &D : S.TopDecls)
    Out << D << "\n";
  Out << "void main() {\n";
  for (const ScriptLine &L : S.Main) {
    for (int I = 0; I < L.Indent; ++I)
      Out << "  ";
    Out << L.Text << "\n";
  }
  Out << "}\n";
  return Out.str();
}

} // namespace

GeneratedProgram Generator::generate(unsigned Index) const {
  Script S = buildScript(Seed, Index);
  GeneratedProgram P;
  P.Name = "fuzz-s" + std::to_string(Seed) + "-p" + std::to_string(Index);
  P.Text = renderProgram(S, Seed, Index, MutationKind::None, "");
  P.RoundtripEligible = !S.UsesSocket && !S.UsesMutex;
  return P;
}

std::optional<GeneratedProgram> Generator::mutate(unsigned Index) const {
  Script S = buildScript(Seed, Index);
  if (S.Points.empty())
    return std::nullopt;
  Rng R(Seed * 0xD1B54A32D192ED03ull + Index * 0x8CB92BA72F3D8DD7ull + 5);
  const MutPoint P = S.Points[R.below(S.Points.size())];

  std::vector<ScriptLine> &M = S.Main;
  assert(P.Line < M.size());
  switch (P.Op) {
  case MutOp::Erase:
    M.erase(M.begin() + static_cast<long>(P.Line));
    break;
  case MutOp::Duplicate:
    M.insert(M.begin() + static_cast<long>(P.Line) + 1, M[P.Line]);
    break;
  case MutOp::InsertAfter:
    M.insert(M.begin() + static_cast<long>(P.Line) + 1,
             {P.Aux, M[P.Line].Indent});
    break;
  case MutOp::Wrap: {
    ScriptLine Orig = M[P.Line];
    M[P.Line] = {"if (" + P.Aux + ") {", Orig.Indent};
    M.insert(M.begin() + static_cast<long>(P.Line) + 1,
             {Orig.Text, Orig.Indent + 1});
    M.insert(M.begin() + static_cast<long>(P.Line) + 2,
             {"}", Orig.Indent});
    break;
  }
  case MutOp::RenameKey: {
    std::string &T = M[P.Line].Text;
    size_t At = T.find(P.Aux2);
    if (At == std::string::npos)
      return std::nullopt;
    T.replace(At, P.Aux2.size(), P.Aux);
    break;
  }
  }

  GeneratedProgram G;
  G.Name = "fuzz-s" + std::to_string(Seed) + "-p" + std::to_string(Index) +
           "-" + mutationName(P.Label);
  G.Text = renderProgram(S, Seed, Index, P.Label, P.Note);
  G.Mutated = true;
  G.Mutation = P.Label;
  G.ExpectClean = false;
  G.MutationIsCold = P.Cold;
  G.RoundtripEligible = !S.UsesSocket && !S.UsesMutex;
  G.MutationNote = P.Note;
  return G;
}
