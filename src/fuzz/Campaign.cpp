//===- Campaign.cpp -------------------------------------------------------===//

#include "fuzz/Campaign.h"

#include "fuzz/Reducer.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace vault;
using namespace vault::fuzz;

namespace fs = std::filesystem;

namespace {

/// Buckets an outcome into the per-oracle tally map.
void tally(std::map<std::string, unsigned> &Map, const OracleOutcome &O) {
  switch (O.S) {
  case OracleOutcome::Status::Ok:
    ++Map["ok"];
    break;
  case OracleOutcome::Status::Classified:
    ++Map["classified:" + O.Class];
    break;
  case OracleOutcome::Status::Violation:
    ++Map["violation"];
    break;
  case OracleOutcome::Status::Skipped:
    ++Map["skipped:" + O.Class];
    break;
  }
}

void countOutcome(Metrics *M, const char *Oracle, const OracleOutcome &O) {
  if (!M)
    return;
  const char *Bucket = O.ok()          ? "ok"
                       : O.violation() ? "violation"
                       : O.S == OracleOutcome::Status::Classified
                           ? "classified"
                           : "skipped";
  M->add(std::string("fuzz.oracle.") + Oracle + "." + Bucket);
}

/// Writes \p Content to \p Dir/\p Name.vlt; returns the path ("" on
/// error — emit/reduce dirs are conveniences, not correctness).
std::string writeProgram(const std::string &Dir, const std::string &Name,
                         const std::string &Content) {
  std::error_code EC;
  fs::create_directories(Dir, EC);
  std::string Path = Dir + "/" + Name + ".vlt";
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  if (!Out)
    return "";
  Out << Content;
  return Out.good() ? Path : "";
}

/// The reduction predicate for a finding: "the reduced text still
/// exhibits the same oracle outcome class". Findings of different
/// oracles need different re-checks.
std::function<bool(const std::string &)>
makePredicate(const Finding &F, const GeneratedProgram &Origin,
              const CampaignOptions &Opts) {
  // The reduced candidate inherits the origin's metadata so oracle
  // classification logic behaves identically.
  auto Wrap = [Origin](const std::string &Text) {
    GeneratedProgram P = Origin;
    P.Name += "-red";
    P.Text = Text;
    return P;
  };
  if (F.Oracle == "determinism")
    return [Wrap, &Opts](const std::string &Text) {
      return runDeterminismOracle(Wrap(Text), Opts.DetJobs, Opts.TmpDir)
          .violation();
    };
  if (F.Oracle == "roundtrip")
    return [Wrap, &Opts](const std::string &Text) {
      return runRoundtripOracle(Wrap(Text), Opts.TmpDir).violation();
    };
  if (F.Oracle == "vm")
    return [Wrap](const std::string &Text) {
      return runVmOracle(Wrap(Text)).violation();
    };
  // Parity findings: a "missed" defect must keep looking like a miss
  // (accepted statically, silent dynamically) *and* keep the mutated
  // resource in play — anchoring on the mutation site's identifier
  // stops ddmin from collapsing the program to an empty (trivially
  // clean) main. Violations just need to stay violations.
  if (F.Class == "missed") {
    std::string Anchor = Origin.MutationNote;
    return [Wrap, Anchor](const std::string &Text) {
      if (!Anchor.empty() && Text.find(Anchor) == std::string::npos)
        return false;
      OracleOutcome O = runParityOracle(Wrap(Text));
      return O.Class == "missed";
    };
  }
  return [Wrap](const std::string &Text) {
    return runParityOracle(Wrap(Text)).violation();
  };
}

} // namespace

std::string vault::fuzz::renderReproducer(const std::string &Text,
                                          const Finding &F,
                                          const GeneratedProgram &Origin,
                                          uint64_t Seed) {
  // Re-derive the expected verdict from the reduced text itself: the
  // regress harness replays exactly this.
  StaticRun S = checkText(Origin.Name + "-expect", Text);
  std::string Expect = S.Accept ? "accept" : "reject";
  for (DiagId Id : S.ErrorIds)
    Expect += std::string(" ") + diagName(Id);

  std::ostringstream Out;
  Out << "//!fuzz-oracle: " << F.Oracle << "\n";
  if (!F.Class.empty())
    Out << "//!fuzz-class: " << F.Class << "\n";
  Out << "//!fuzz-origin: seed=" << Seed << " program=" << Origin.Name;
  if (Origin.Mutated) {
    Out << " mutation=" << mutationName(Origin.Mutation);
    if (!Origin.MutationNote.empty())
      Out << " site=" << Origin.MutationNote;
  }
  Out << "\n";
  Out << "//!fuzz-expect: " << Expect << "\n";
  Out << Text;
  return Out.str();
}

CampaignResult vault::fuzz::runCampaign(const CampaignOptions &Opts,
                                        Metrics *M, Tracer *T) {
  TraceSpan Campaign(T, "fuzz.campaign");
  Campaign.arg("seed", Opts.Seed);
  Campaign.arg("count", static_cast<uint64_t>(Opts.Count));

  CampaignResult R;
  Generator Gen(Opts.Seed);
  std::string Scratch = Opts.TmpDir + "/vaultfuzz-s" +
                        std::to_string(Opts.Seed);
  std::error_code EC;
  fs::create_directories(Scratch, EC);

  auto runOracles = [&](const GeneratedProgram &P) {
    if (Opts.RunParity) {
      TraceSpan Span(T, "fuzz.oracle.parity");
      OracleOutcome O = runParityOracle(P);
      tally(R.Parity, O);
      countOutcome(M, "parity", O);
      if (P.Mutated) {
        if (O.Class == "missed") {
          ++R.MutantsMissed;
          if (M)
            M->add("fuzz.mutants.missed");
          R.Findings.push_back({"parity", P.Name, O.Class, O.Detail, "", 0});
        } else {
          ++R.MutantsDetected;
          if (M)
            M->add("fuzz.mutants.detected");
          if (O.violation())
            R.Findings.push_back({"parity", P.Name, O.Class, O.Detail, "", 0});
        }
      } else if (O.violation()) {
        R.Findings.push_back({"parity", P.Name, O.Class, O.Detail, "", 0});
      }
    }
    if (Opts.RunDeterminism) {
      TraceSpan Span(T, "fuzz.oracle.determinism");
      OracleOutcome O = runDeterminismOracle(P, Opts.DetJobs, Scratch);
      tally(R.Determinism, O);
      countOutcome(M, "determinism", O);
      if (O.violation())
        R.Findings.push_back({"determinism", P.Name, O.Class, O.Detail, "",
                              0});
    }
    if (Opts.RunRoundtrip) {
      TraceSpan Span(T, "fuzz.oracle.roundtrip");
      OracleOutcome O = runRoundtripOracle(P, Scratch);
      tally(R.Roundtrip, O);
      countOutcome(M, "roundtrip", O);
      if (O.violation())
        R.Findings.push_back({"roundtrip", P.Name, O.Class, O.Detail, "", 0});
    }
    if (Opts.RunVm) {
      TraceSpan Span(T, "fuzz.oracle.vm");
      OracleOutcome O = runVmOracle(P);
      tally(R.Vm, O);
      countOutcome(M, "vm", O);
      if (O.violation())
        R.Findings.push_back({"vm", P.Name, O.Class, O.Detail, "", 0});
    }
  };

  std::vector<GeneratedProgram> Origins;
  for (unsigned I = 0; I < Opts.Count; ++I) {
    GeneratedProgram P;
    {
      TraceSpan Span(T, "fuzz.generate");
      P = Gen.generate(I);
    }
    ++R.Generated;
    if (M) {
      M->add("fuzz.programs.generated");
      M->histogram("fuzz.program.bytes", {256, 512, 1024, 2048, 4096})
          .record(static_cast<double>(P.Text.size()));
    }
    if (!Opts.EmitDir.empty())
      writeProgram(Opts.EmitDir, P.Name, P.Text);
    size_t FindingsBefore = R.Findings.size();
    runOracles(P);
    for (size_t FI = FindingsBefore; FI < R.Findings.size(); ++FI)
      Origins.push_back(P);

    if (Opts.Mutate) {
      std::optional<GeneratedProgram> Mut;
      {
        TraceSpan Span(T, "fuzz.mutate");
        Mut = Gen.mutate(I);
      }
      if (Mut) {
        ++R.Mutants;
        if (M)
          M->add("fuzz.programs.mutated");
        if (!Opts.EmitDir.empty())
          writeProgram(Opts.EmitDir, Mut->Name, Mut->Text);
        FindingsBefore = R.Findings.size();
        runOracles(*Mut);
        for (size_t FI = FindingsBefore; FI < R.Findings.size(); ++FI)
          Origins.push_back(*Mut);
      }
    }
  }

  // Reduce every finding to a minimal reproducer.
  if (Opts.Reduce) {
    for (size_t FI = 0; FI < R.Findings.size(); ++FI) {
      Finding &F = R.Findings[FI];
      const GeneratedProgram &Origin = Origins[FI];
      TraceSpan Span(T, "fuzz.reduce");
      Span.arg("program", F.Program);
      auto Pred = makePredicate(F, Origin, Opts);
      ReduceStats RS;
      std::string Reduced = Origin.Text;
      if (Pred(Origin.Text))
        Reduced = reduceLines(Origin.Text, Pred, Opts.MaxReduceEvals, &RS);
      F.ReducedLines = RS.LinesAfter ? RS.LinesAfter : RS.LinesBefore;
      if (M) {
        M->add("fuzz.reduce.runs");
        M->add("fuzz.reduce.evals", RS.Evals);
      }
      if (!Opts.ReduceDir.empty())
        F.ReducedPath = writeProgram(
            Opts.ReduceDir, F.Program,
            renderReproducer(Reduced, F, Origin, Opts.Seed));
    }
  }

  fs::remove_all(Scratch, EC);

  R.Pass = R.violations() == 0 &&
           (R.Mutants == 0 || R.detectPct() >= Opts.MinDetectPct);
  if (M) {
    M->set("fuzz.findings", R.Findings.size());
    M->set("fuzz.pass", R.Pass ? 1 : 0);
  }

  // Deterministic report: every line derives from counters and sorted
  // maps, never from wall time or directory iteration order.
  std::ostringstream Rep;
  Rep << "vaultfuzz: seed=" << Opts.Seed << " count=" << Opts.Count
      << " mutate=" << (Opts.Mutate ? "on" : "off") << "\n";
  Rep << "programs: " << R.Generated << " clean + " << R.Mutants
      << " mutants = " << (R.Generated + R.Mutants) << "\n";
  auto RenderMap = [&Rep](const char *Name,
                          const std::map<std::string, unsigned> &Map) {
    Rep << Name << ":";
    if (Map.empty())
      Rep << " (not run)";
    for (const auto &[K, V] : Map)
      Rep << " " << K << "=" << V;
    Rep << "\n";
  };
  RenderMap("parity", R.Parity);
  RenderMap("determinism", R.Determinism);
  RenderMap("roundtrip", R.Roundtrip);
  RenderMap("vm", R.Vm);
  if (R.Mutants) {
    std::ostringstream Pct;
    Pct.precision(1);
    Pct << std::fixed << R.detectPct();
    Rep << "seeded-defect detection: " << R.MutantsDetected << "/"
        << (R.MutantsDetected + R.MutantsMissed) << " (" << Pct.str()
        << "%, floor " << Opts.MinDetectPct << "%)\n";
  }
  for (const Finding &F : R.Findings) {
    Rep << "finding: oracle=" << F.Oracle << " program=" << F.Program
        << " class=" << (F.Class.empty() ? "violation" : F.Class);
    if (!F.ReducedPath.empty())
      Rep << " reduced=" << F.ReducedPath << " (" << F.ReducedLines
          << " lines)";
    Rep << "\n";
    if (!F.Detail.empty()) {
      std::istringstream Lines(F.Detail);
      std::string L;
      while (std::getline(Lines, L))
        Rep << "  | " << L << "\n";
    }
  }
  Rep << (R.Pass ? "PASS" : "FAIL") << "\n";
  R.Report = Rep.str();
  return R;
}
