//===- Oracles.cpp --------------------------------------------------------===//

#include "fuzz/Oracles.h"

#include "interp/Interp.h"
#include "lower/CEmitter.h"
#include "vm/VM.h"
#include "support/ShellQuote.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

using namespace vault;
using namespace vault::fuzz;

namespace fs = std::filesystem;

StaticRun vault::fuzz::checkText(const std::string &Name,
                                 const std::string &Text, unsigned Jobs,
                                 const std::string &CacheDir) {
  StaticRun R;
  R.C = std::make_unique<VaultCompiler>();
  R.C->setJobs(Jobs);
  if (!CacheDir.empty())
    R.C->setCacheDir(CacheDir);
  R.C->addSource(Name + ".vlt", Text);
  R.Accept = R.C->check();
  std::set<DiagId> Ids;
  for (const Diagnostic &D : R.C->diags().diagnostics())
    if (D.Severity == DiagSeverity::Error)
      Ids.insert(D.Id);
  R.ErrorIds.assign(Ids.begin(), Ids.end());
  R.Signature = R.C->diags().render() + "verdict: " +
                (R.Accept ? "accept" : "reject") + " errors=" +
                std::to_string(R.C->diags().errorCount()) + "\n";
  return R;
}

/// Shared capture: both engines are Machines, so one extractor fills
/// the DynamicRun the oracles (and the vm differential) compare.
static DynamicRun captureRun(interp::Machine &M) {
  DynamicRun D;
  D.Ran = M.run("main");
  D.Trapped = M.trapped();
  D.TrapMessage = M.trapMessage();
  D.Detections =
      M.totalViolations() +
      static_cast<unsigned>(M.regions().leakedRegions().size()) +
      static_cast<unsigned>(M.sockets().leakedSockets().size()) +
      static_cast<unsigned>(M.gdi().leakedDcs().size()) +
      static_cast<unsigned>(M.locks().leakedMutexes().size());
  D.Violations = M.violations();
  std::string Out;
  for (const std::string &L : M.output())
    Out += L + "\n";
  D.Output = std::move(Out);
  return D;
}

DynamicRun vault::fuzz::runDynamic(VaultCompiler &C) {
  interp::Interp I(C);
  return captureRun(I);
}

DynamicRun vault::fuzz::runVm(VaultCompiler &C) {
  vm::Vm V(C);
  return captureRun(V);
}

static bool onlyJoinConservatism(const std::vector<DiagId> &Ids) {
  if (Ids.empty())
    return false;
  for (DiagId Id : Ids)
    if (Id != DiagId::FlowJoinMismatch)
      return false;
  return true;
}

OracleOutcome vault::fuzz::runParityOracle(const GeneratedProgram &P) {
  StaticRun S = checkText(P.Name, P.Text);
  DynamicRun D = runDynamic(*S.C);
  bool DynDetect = D.Detections > 0;

  OracleOutcome O;
  if (!P.Mutated) {
    // Ground truth: protocol-clean and terminating by construction.
    if (S.Accept && !D.Trapped && !DynDetect)
      return O; // Ok.
    if (S.Accept) {
      O.S = OracleOutcome::Status::Violation;
      O.Detail = "checker-accepted program misbehaved dynamically: " +
                 (D.Trapped ? "trap: " + D.TrapMessage
                            : std::to_string(D.Detections) + " violation(s)");
      return O;
    }
    if (onlyJoinConservatism(S.ErrorIds)) {
      // The documented Fig. 5 limitation: the join is conservative on
      // a memory-safe program. Classified, not a finding.
      O.S = OracleOutcome::Status::Classified;
      O.Class = "join-conservative";
      return O;
    }
    O.S = OracleOutcome::Status::Violation;
    O.Detail = "clean-by-construction program rejected:\n" + S.Signature;
    return O;
  }

  // Mutant: exactly one seeded defect. Detection = static rejection or
  // any dynamic observation (violation, leak, or trap).
  bool StaticDetect = !S.Accept;
  bool DynamicDetect = DynDetect || D.Trapped;
  if (StaticDetect && DynamicDetect) {
    O.Class = "detected-both";
    return O;
  }
  if (StaticDetect) {
    // The paper's core argument: a single test run misses cold-path
    // defects and silent leaks that the checker still catches.
    O.Class = "static-only";
    return O;
  }
  if (DynamicDetect) {
    O.S = OracleOutcome::Status::Violation;
    O.Class = "dynamic-gap";
    O.Detail = "seeded defect (" + std::string(mutationName(P.Mutation)) +
               " at " + P.MutationNote +
               ") missed statically but caught by the dynamic oracle";
    return O;
  }
  O.S = OracleOutcome::Status::Classified;
  O.Class = "missed";
  O.Detail = "seeded defect (" + std::string(mutationName(P.Mutation)) +
             " at " + P.MutationNote + ") missed by both oracles";
  return O;
}

OracleOutcome vault::fuzz::runDeterminismOracle(const GeneratedProgram &P,
                                                unsigned JobsB,
                                                const std::string &ScratchDir) {
  OracleOutcome O;
  StaticRun Base = checkText(P.Name, P.Text, 1);
  StaticRun Par = checkText(P.Name, P.Text, JobsB);
  if (Par.Signature != Base.Signature) {
    O.S = OracleOutcome::Status::Violation;
    O.Detail = "diagnostics differ between --jobs 1 and --jobs " +
               std::to_string(JobsB) + ":\n--- jobs 1\n" + Base.Signature +
               "--- jobs " + std::to_string(JobsB) + "\n" + Par.Signature;
    return O;
  }
  std::string CacheDir = ScratchDir + "/cache-" + P.Name;
  std::error_code EC;
  fs::remove_all(CacheDir, EC);
  StaticRun Cold = checkText(P.Name, P.Text, 2, CacheDir);
  StaticRun Warm = checkText(P.Name, P.Text, 3, CacheDir);
  bool WarmReplayed = Warm.C->stats().CacheEnabled &&
                      Warm.C->stats().FlowChecksRun == 0;
  std::string ColdSig = Cold.Signature, WarmSig = Warm.Signature;
  fs::remove_all(CacheDir, EC);
  if (ColdSig != Base.Signature || WarmSig != Base.Signature) {
    O.S = OracleOutcome::Status::Violation;
    O.Detail = "diagnostics differ between uncached, cold-cache and "
               "warm-cache runs:\n--- uncached\n" +
               Base.Signature + "--- cold\n" + ColdSig + "--- warm\n" +
               WarmSig;
    return O;
  }
  if (!WarmReplayed) {
    O.S = OracleOutcome::Status::Violation;
    O.Detail = "warm cache run re-checked " +
               std::to_string(Warm.C->stats().FlowChecksRun) +
               " function(s) instead of replaying";
    return O;
  }
  return O;
}

OracleOutcome vault::fuzz::runVmOracle(const GeneratedProgram &P) {
  OracleOutcome O;
  StaticRun S = checkText(P.Name, P.Text);
  DynamicRun W = runDynamic(*S.C);
  DynamicRun V = runVm(*S.C);

  std::string Diff;
  if (W.Ran != V.Ran || W.Trapped != V.Trapped)
    Diff += "  completion: walker " +
            std::string(W.Trapped ? "trapped" : "ran") + ", vm " +
            (V.Trapped ? "trapped" : "ran") + "\n";
  if (W.TrapMessage != V.TrapMessage)
    Diff += "  trap message: walker '" + W.TrapMessage + "', vm '" +
            V.TrapMessage + "'\n";
  if (W.Detections != V.Detections)
    Diff += "  detections: walker " + std::to_string(W.Detections) + ", vm " +
            std::to_string(V.Detections) + "\n";
  if (W.Violations != V.Violations) {
    Diff += "  violations differ:\n";
    for (const std::string &Msg : W.Violations)
      Diff += "    walker: " + Msg + "\n";
    for (const std::string &Msg : V.Violations)
      Diff += "    vm:     " + Msg + "\n";
  }
  if (W.Output != V.Output)
    Diff += "  output differs:\n  --- walker\n" + W.Output + "  --- vm\n" +
            V.Output;
  if (Diff.empty())
    return O; // Ok: the engines agree on every observable.
  O.S = OracleOutcome::Status::Violation;
  O.Class = "engine-divergence";
  O.Detail = "tree-walker and bytecode VM diverge:\n" + Diff;
  return O;
}

bool vault::fuzz::haveCCompiler() {
  static const bool Have = [] {
    return std::system("cc --version >/dev/null 2>&1") == 0;
  }();
  return Have;
}

/// The same 30-line protocol-free runtime the E10 execution test links
/// against: enough for regions, tracked heap objects and the I/O
/// builtins the generator emits.
static const char *RuntimeStub = R"(
#include <stdint.h>
#include <stdio.h>
#include <stdlib.h>

static uint64_t next_region = 1;
uint64_t Region_create(void) { return next_region++; }
void Region_delete(uint64_t r) { (void)r; }
void *vault_region_alloc(uint64_t region, size_t size) {
  (void)region;
  return calloc(1, size);
}
void print(const char *s) { printf("%s\n", s); }
void print_int(int32_t n) { printf("%d\n", n); }
void expect(_Bool b) {
  if (!b) {
    fprintf(stderr, "expect failed\n");
    exit(3);
  }
}
)";

OracleOutcome vault::fuzz::runRoundtripOracle(const GeneratedProgram &P,
                                              const std::string &ScratchDir) {
  OracleOutcome O;
  if (!P.RoundtripEligible) {
    O.S = OracleOutcome::Status::Skipped;
    O.Class = "unsupported-features";
    return O;
  }
  StaticRun S = checkText(P.Name, P.Text);
  if (!S.Accept) {
    O.S = OracleOutcome::Status::Skipped;
    O.Class = "statically-rejected";
    return O;
  }
  if (!haveCCompiler()) {
    O.S = OracleOutcome::Status::Skipped;
    O.Class = "no-cc";
    return O;
  }
  DynamicRun D = runDynamic(*S.C);
  if (D.Trapped || D.Detections > 0) {
    // The parity oracle owns this finding; don't report it twice.
    O.S = OracleOutcome::Status::Skipped;
    O.Class = "dynamic-misbehavior";
    return O;
  }

  CEmitter E(*S.C);
  std::string CSrc = E.emitProgram();
  std::error_code EC;
  fs::create_directories(ScratchDir, EC);
  std::string Base = ScratchDir + "/" + P.Name;
  {
    std::ofstream PFile(Base + ".c", std::ios::binary | std::ios::trunc);
    PFile << CSrc;
    std::ofstream SFile(Base + "_rt.c", std::ios::binary | std::ios::trunc);
    SFile << RuntimeStub;
  }
  std::string ExtraFlags;
  if (const char *F = std::getenv("VAULTFUZZ_CC_FLAGS"))
    ExtraFlags = std::string(" ") + F;
  // Every path is shell-quoted: the scratch directory is caller- (and
  // environment-) controlled, and a space or metacharacter in it must
  // not split or misroute the command. VAULTFUZZ_CC_FLAGS stays
  // verbatim — it is deliberately a flag *list*.
  std::string Bin = Base + ".bin";
  std::string Cmd = "cc -std=c11 -w" + ExtraFlags + " " +
                    shellQuote(Base + ".c") + " " + shellQuote(Base + "_rt.c") +
                    " -o " + shellQuote(Bin) + " 2>" +
                    shellQuote(Base + ".log");
  auto Cleanup = [&] {
    std::error_code E2;
    for (const char *Ext : {".c", "_rt.c", ".bin", ".out", ".log"})
      fs::remove(Base + Ext, E2);
  };
  if (std::system(Cmd.c_str()) != 0) {
    std::ifstream Log(Base + ".log");
    std::string Err((std::istreambuf_iterator<char>(Log)),
                    std::istreambuf_iterator<char>());
    Cleanup();
    O.S = OracleOutcome::Status::Violation;
    O.Detail = "emitted C failed to compile:\n" + Err;
    return O;
  }
  std::string OutFile = Base + ".out";
  if (std::system((shellQuote(Bin) + " >" + shellQuote(OutFile)).c_str()) !=
      0) {
    Cleanup();
    O.S = OracleOutcome::Status::Violation;
    O.Detail = "emitted binary exited non-zero";
    return O;
  }
  std::ifstream Out(OutFile);
  std::string CText((std::istreambuf_iterator<char>(Out)),
                    std::istreambuf_iterator<char>());
  Cleanup();
  if (CText != D.Output) {
    O.S = OracleOutcome::Status::Violation;
    O.Detail = "observable behavior diverges:\n--- interpreter\n" + D.Output +
               "--- emitted C\n" + CText;
    return O;
  }
  return O;
}
