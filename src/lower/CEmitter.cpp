//===- CEmitter.cpp -------------------------------------------------------===//

#include "lower/CEmitter.h"

#include <cctype>

using namespace vault;

//===----------------------------------------------------------------------===//
// Output helpers
//===----------------------------------------------------------------------===//

void CEmitter::line(const std::string &S) {
  for (unsigned I = 0; I != Indent; ++I)
    *Out << "  ";
  *Out << S << '\n';
}

std::string CEmitter::fresh(const std::string &Hint) {
  return "__" + Hint + std::to_string(TempCounter++);
}

size_t CEmitter::countCodeLines(const std::string &Text) {
  size_t N = 0;
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t Eol = Text.find('\n', Pos);
    if (Eol == std::string::npos)
      Eol = Text.size();
    std::string_view Line(Text.data() + Pos, Eol - Pos);
    Pos = Eol + 1;
    size_t First = Line.find_first_not_of(" \t\r");
    if (First == std::string_view::npos)
      continue;
    if (Line.substr(First, 2) == "//")
      continue;
    ++N;
  }
  return N;
}

std::string CEmitter::pointee(const std::string &Ty) {
  std::string P = Ty;
  while (!P.empty() && (P.back() == '*' || P.back() == ' '))
    P.pop_back();
  return P;
}

static bool isPtrType(const std::string &Ty) {
  return !Ty.empty() && Ty.back() == '*';
}

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

bool CEmitter::variantNeedsPointer(const VariantDecl *V) const {
  (void)V;
  return true;
}

std::string CEmitter::cNamedType(const NamedTypeExpr *N) {
  // A type parameter bound by an enclosing alias expansion.
  if (auto It = TypeParamBindings.find(N->name());
      It != TypeParamBindings.end() && N->args().empty())
    return cType(It->second);
  const Decl *D = Globals.findType(N->name());
  if (!D)
    return "int32_t /* unknown " + N->name() + " */";
  if (const auto *S = dyn_cast<StructDecl>(D))
    return "struct " + S->name();
  if (const auto *V = dyn_cast<VariantDecl>(D)) {
    // Enum-like variants (no payload anywhere) lower to a plain enum.
    bool AnyPayload = false;
    for (const VariantDecl::Ctor &C : V->ctors())
      if (!C.Payload.empty())
        AnyPayload = true;
    return AnyPayload ? "struct " + V->name() : "enum " + V->name();
  }
  if (const auto *A = dyn_cast<TypeAliasDecl>(D)) {
    if (A->isAbstract())
      return A->name(); // Opaque handle typedef.
    if (isa<FuncTypeExpr>(A->underlying()))
      return "@fnptr:" + A->name(); // Expanded by the parameter printer.
    if (isa<TupleTypeExpr>(A->underlying()))
      return "struct " + A->name(); // Tuple aliases get a struct.
    // Expand the alias body with its type parameters bound to the
    // argument type expressions.
    auto Saved = TypeParamBindings;
    for (size_t I = 0; I < A->params().size() && I < N->args().size(); ++I)
      if (A->params()[I].K == TypeParamAst::Kind::Type)
        TypeParamBindings[A->params()[I].Name] = N->args()[I];
    std::string Result = cType(A->underlying());
    TypeParamBindings = std::move(Saved);
    return Result;
  }
  return "int32_t";
}

std::string CEmitter::cType(const TypeExprAst *T) {
  switch (T->kind()) {
  case TypeExprKind::Prim:
    switch (cast<PrimTypeExpr>(T)->prim()) {
    case PrimKind::Int:
      return "int32_t";
    case PrimKind::Bool:
      return "bool";
    case PrimKind::Byte:
      return "uint8_t";
    case PrimKind::Void:
      return "void";
    case PrimKind::String:
      return "const char *";
    }
    return "int32_t";
  case TypeExprKind::Named:
    return cNamedType(cast<NamedTypeExpr>(T));
  case TypeExprKind::Tracked: {
    // Key erased; tracked records become pointers, handles and enums
    // stay by value.
    std::string Inner = cType(cast<TrackedTypeExpr>(T)->inner());
    if (Inner.rfind("struct ", 0) == 0)
      return Inner + " *";
    return Inner;
  }
  case TypeExprKind::Guarded: {
    // Guard erased; region-allocated records are pointers. A
    // guarded<M> tracked T inner has already become a pointer — do
    // not add a second level of indirection.
    std::string Inner = cType(cast<GuardedTypeExpr>(T)->inner());
    if (Inner.rfind("struct ", 0) == 0 && Inner.back() != '*')
      return Inner + " *";
    return Inner;
  }
  case TypeExprKind::Tuple:
    // Anonymous tuples only occur behind tuple-type aliases in
    // practice; a bare one is unsupported.
    return "struct vault_tuple /* unsupported anonymous tuple */";
  case TypeExprKind::Array:
    return cType(cast<ArrayTypeExpr>(T)->elem()) + " *";
  case TypeExprKind::Func:
    return "void *";
  }
  return "int32_t";
}

std::string CEmitter::fieldCType(const std::string &StructTy,
                                 const std::string &Field) {
  std::string Name = pointee(StructTy);
  if (Name.rfind("struct ", 0) == 0)
    Name = Name.substr(7);
  const Decl *D = Globals.findType(Name);
  if (!D)
    return "";
  if (const auto *S = dyn_cast<StructDecl>(D))
    for (const StructDecl::Field &F : S->fields())
      if (F.Name == Field)
        return cType(F.Type);
  return "";
}

std::string CEmitter::tupleFieldCType(const std::string &StructTy,
                                      size_t Idx) {
  std::string Name = pointee(StructTy);
  if (Name.rfind("struct ", 0) == 0)
    Name = Name.substr(7);
  const Decl *D = Globals.findType(Name);
  const auto *A = dyn_cast<TypeAliasDecl>(D);
  if (!A || A->isAbstract())
    return "";
  const auto *Tu = dyn_cast<TupleTypeExpr>(A->underlying());
  if (!Tu || Idx >= Tu->elems().size())
    return "";
  return cType(Tu->elems()[Idx]);
}

std::string CEmitter::boxInto(const std::string &PtrTy,
                              const std::string &Value) {
  std::string Tmp = fresh("box");
  stmt(PtrTy + " " + Tmp + " = malloc(sizeof(" + pointee(PtrTy) + "))");
  stmt("*" + Tmp + " = " + Value);
  return Tmp;
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

CEmitter::CExpr CEmitter::emitCtor(const CtorExpr *E) {
  const VariantDecl *V = variantOfCtor(E->name());
  if (!V)
    return {"0 /* unknown ctor */", ""};
  bool AnyPayload = false;
  for (const VariantDecl::Ctor &C : V->ctors())
    if (!C.Payload.empty())
      AnyPayload = true;
  if (!AnyPayload)
    return {V->name() + "_" + E->name(), "enum " + V->name()};

  const VariantDecl::Ctor *C = V->findCtor(E->name());
  std::string Lit =
      "(struct " + V->name() + "){ .tag = " + V->name() + "_" + E->name();
  if (C && !E->args().empty()) {
    Lit += ", .u." + E->name() + " = { ";
    for (size_t I = 0; I != E->args().size(); ++I) {
      if (I)
        Lit += ", ";
      std::string Slot =
          I < C->Payload.size() ? cType(C->Payload[I]) : std::string();

      // A tuple literal headed for a tuple-alias slot becomes a
      // compound literal of the alias struct.
      if (const auto *TupArg = dyn_cast<TupleExpr>(E->args()[I])) {
        std::string StructName = pointee(Slot);
        std::string Compound = "(" + StructName + "){ ";
        for (size_t J = 0; J != TupArg->elems().size(); ++J) {
          if (J)
            Compound += ", ";
          Compound += ".f" + std::to_string(J) + " = " +
                      emitExpr(TupArg->elems()[J]);
        }
        Compound += " }";
        Lit += isPtrType(Slot) ? boxInto(Slot, Compound) : Compound;
        continue;
      }

      CExpr Arg = emitExprT(E->args()[I]);
      // Box by-value arguments headed for pointer-lowered slots.
      if (isPtrType(Slot) && !isPtrType(Arg.Ty) &&
          Arg.Ty.rfind("struct ", 0) == 0)
        Arg.Text = boxInto(Slot, Arg.Text);
      Lit += Arg.Text;
    }
    Lit += " }";
  }
  Lit += " }";
  return {Lit, "struct " + V->name()};
}

CEmitter::CExpr CEmitter::emitNew(const NewExpr *E) {
  std::string Ty = cType(E->typeExpr());
  std::string Tmp = fresh("new");
  if (E->region()) {
    std::string Rgn = emitExpr(E->region());
    stmt(Ty + " *" + Tmp + " = vault_region_alloc(" + Rgn + ", sizeof(" + Ty +
         "))");
    for (const NewExpr::FieldInit &FI : E->inits())
      stmt(Tmp + "->" + FI.Field + " = " + emitExpr(FI.Init));
    return {Tmp, Ty + " *"};
  }
  if (E->isTracked()) {
    stmt(Ty + " *" + Tmp + " = malloc(sizeof(" + Ty + "))");
    stmt("memset(" + Tmp + ", 0, sizeof(" + Ty + "))");
    for (const NewExpr::FieldInit &FI : E->inits())
      stmt(Tmp + "->" + FI.Field + " = " + emitExpr(FI.Init));
    return {Tmp, Ty + " *"};
  }
  // Plain record construction: a by-value temporary.
  stmt(Ty + " " + Tmp + " = {0}");
  for (const NewExpr::FieldInit &FI : E->inits())
    stmt(Tmp + "." + FI.Field + " = " + emitExpr(FI.Init));
  return {Tmp, Ty};
}

CEmitter::CExpr CEmitter::emitCall(const CallExpr *E) {
  std::string Callee;
  std::string Name;
  if (const auto *N = dyn_cast<NameExpr>(E->callee())) {
    Callee = Name = N->name();
  } else if (const auto *F = dyn_cast<FieldExpr>(E->callee())) {
    // Module-qualified call lowers to Module_function.
    if (const auto *Base = dyn_cast<NameExpr>(F->base())) {
      Callee = Base->name() + "_" + F->field();
      Name = F->field();
    } else {
      Callee = emitExpr(E->callee());
    }
  } else {
    Callee = emitExpr(E->callee());
  }

  std::string Call = Callee + "(";
  bool First = true;
  for (const Expr *A : E->args()) {
    if (!First)
      Call += ", ";
    First = false;
    // A nested function passed as a value becomes (fn, &env).
    if (const auto *N = dyn_cast<NameExpr>(A);
        N && NestedFnNames.count(N->name())) {
      Call += "(vault_fnptr)" + N->name() + "_lifted, &" + N->name() + "_env";
      continue;
    }
    Call += emitExpr(A);
  }
  Call += ")";

  std::string RetTy;
  if (!Name.empty())
    if (FuncSig *Sig = Globals.findFunction(Name); Sig && Sig->Decl)
      RetTy = cType(Sig->Decl->retType());
  return {Call, RetTy};
}

CEmitter::CExpr CEmitter::emitExprT(const Expr *E) {
  switch (E->kind()) {
  case ExprKind::IntLiteral:
    return {std::to_string(cast<IntLiteralExpr>(E)->value()), "int32_t"};
  case ExprKind::BoolLiteral:
    return {cast<BoolLiteralExpr>(E)->value() ? "true" : "false", "bool"};
  case ExprKind::StringLiteral: {
    std::string Out = "\"";
    for (char C : cast<StringLiteralExpr>(E)->value()) {
      if (C == '"' || C == '\\')
        Out += '\\';
      if (C == '\n') {
        Out += "\\n";
        continue;
      }
      Out += C;
    }
    return {Out + "\"", "const char *"};
  }
  case ExprKind::Name: {
    const auto *N = cast<NameExpr>(E);
    auto It = LocalCTypes.find(N->name());
    std::string Ty = It != LocalCTypes.end() ? It->second : std::string();
    if (InNestedFn && CurrentCaptures.count(N->name()))
      return {"(*__env->" + N->name() + ")", Ty};
    return {N->name(), Ty};
  }
  case ExprKind::Call:
    return emitCall(cast<CallExpr>(E));
  case ExprKind::Ctor:
    return emitCtor(cast<CtorExpr>(E));
  case ExprKind::New:
    return emitNew(cast<NewExpr>(E));
  case ExprKind::Field: {
    const auto *F = cast<FieldExpr>(E);
    CExpr Base = emitExprT(F->base());
    const char *Sep = isPtrType(Base.Ty) ? "->" : ".";
    return {Base.Text + Sep + F->field(), fieldCType(Base.Ty, F->field())};
  }
  case ExprKind::Index: {
    const auto *Ix = cast<IndexExpr>(E);
    CExpr Base = emitExprT(Ix->base());
    // Constant index into a tuple-alias struct -> member access.
    if (const auto *Lit = dyn_cast<IntLiteralExpr>(Ix->index())) {
      std::string ElemTy =
          tupleFieldCType(Base.Ty, static_cast<size_t>(Lit->value()));
      if (!ElemTy.empty()) {
        const char *Sep = isPtrType(Base.Ty) ? "->" : ".";
        return {Base.Text + Sep + "f" + std::to_string(Lit->value()), ElemTy};
      }
    }
    std::string ElemTy;
    if (isPtrType(Base.Ty))
      ElemTy = pointee(Base.Ty);
    return {Base.Text + "[" + emitExpr(Ix->index()) + "]", ElemTy};
  }
  case ExprKind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    bool Not = U->op() == UnaryOp::Not;
    return {std::string(Not ? "!" : "-") + "(" + emitExpr(U->operand()) + ")",
            Not ? "bool" : "int32_t"};
  }
  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    std::string Text = "(" + emitExpr(B->lhs()) + " " +
                       binaryOpSpelling(B->op()) + " " + emitExpr(B->rhs()) +
                       ")";
    switch (B->op()) {
    case BinaryOp::Add:
    case BinaryOp::Sub:
    case BinaryOp::Mul:
    case BinaryOp::Div:
    case BinaryOp::Rem:
      return {Text, "int32_t"};
    default:
      return {Text, "bool"};
    }
  }
  case ExprKind::Assign: {
    const auto *A = cast<AssignExpr>(E);
    CExpr L = emitExprT(A->lhs());
    CExpr R = emitExprT(A->rhs());
    if (isPtrType(L.Ty) && !isPtrType(R.Ty) && R.Ty.rfind("struct ", 0) == 0)
      R.Text = boxInto(L.Ty, R.Text);
    return {L.Text + " = " + R.Text, L.Ty};
  }
  case ExprKind::IncDec: {
    const auto *I = cast<IncDecExpr>(E);
    return {emitExpr(I->base()) + (I->isIncrement() ? "++" : "--"),
            "int32_t"};
  }
  case ExprKind::Tuple:
    // Bare tuples only appear as constructor payloads (handled in
    // emitCtor); anywhere else is unsupported.
    return {"0 /* bare tuple unsupported */", ""};
  }
  return {"0", ""};
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

void CEmitter::emitStmt(const Stmt *S) {
  switch (S->kind()) {
  case StmtKind::Block: {
    line("{");
    ++Indent;
    for (const Stmt *Sub : cast<BlockStmt>(S)->stmts())
      emitStmt(Sub);
    --Indent;
    line("}");
    return;
  }
  case StmtKind::Decl: {
    const Decl *D = cast<DeclStmt>(S)->decl();
    if (const auto *V = dyn_cast<VarDecl>(D)) {
      std::string Ty = cType(V->typeExpr());
      LocalCTypes[V->name()] = Ty;
      if (!V->init()) {
        if (isPtrType(Ty))
          stmt(Ty + " " + V->name() + " = NULL");
        else if (Ty.rfind("struct ", 0) == 0)
          stmt(Ty + " " + V->name() + " = {0}");
        else
          stmt(Ty + " " + V->name() + " = 0");
        return;
      }
      CExpr Init = emitExprT(V->init());
      if (isPtrType(Ty) && !isPtrType(Init.Ty) &&
          Init.Ty.rfind("struct ", 0) == 0)
        Init.Text = boxInto(Ty, Init.Text);
      stmt(Ty + " " + V->name() + " = " + Init.Text);
      return;
    }
    if (const auto *F = dyn_cast<FuncDecl>(D)) {
      liftNestedFunction(F);
      return;
    }
    return;
  }
  case StmtKind::Expr:
    stmt(emitExpr(cast<ExprStmt>(S)->expr()));
    return;
  case StmtKind::If: {
    const auto *I = cast<IfStmt>(S);
    line("if (" + emitExpr(I->cond()) + ")");
    if (!isa<BlockStmt>(I->thenStmt())) {
      ++Indent;
      emitStmt(I->thenStmt());
      --Indent;
    } else {
      emitStmt(I->thenStmt());
    }
    if (I->elseStmt()) {
      line("else");
      if (!isa<BlockStmt>(I->elseStmt())) {
        ++Indent;
        emitStmt(I->elseStmt());
        --Indent;
      } else {
        emitStmt(I->elseStmt());
      }
    }
    return;
  }
  case StmtKind::While: {
    const auto *W = cast<WhileStmt>(S);
    line("while (" + emitExpr(W->cond()) + ")");
    emitStmt(W->body());
    return;
  }
  case StmtKind::Return: {
    const auto *R = cast<ReturnStmt>(S);
    if (!R->value()) {
      stmt("return");
      return;
    }
    CExpr V = emitExprT(R->value());
    if (isPtrType(CurrentRetCType) && !isPtrType(V.Ty) &&
        V.Ty.rfind("struct ", 0) == 0)
      V.Text = boxInto(CurrentRetCType, V.Text);
    stmt("return " + V.Text);
    return;
  }
  case StmtKind::Switch: {
    const auto *Sw = cast<SwitchStmt>(S);
    CExpr Subj = emitExprT(Sw->subject());
    const VariantDecl *V = nullptr;
    for (const SwitchStmt::Case &C : Sw->cases())
      if (!C.Pattern.IsDefault && !V)
        V = variantOfCtor(C.Pattern.CtorName);
    bool Enumish = true;
    if (V)
      for (const VariantDecl::Ctor &C : V->ctors())
        if (!C.Payload.empty())
          Enumish = false;

    // Stabilize non-trivial subjects in a temporary.
    std::string Tmp = Subj.Text;
    if (!isa<NameExpr>(Sw->subject())) {
      Tmp = fresh("subj");
      std::string Ty = !Subj.Ty.empty()
                           ? Subj.Ty
                           : (V ? (Enumish ? "enum " : "struct ") + V->name()
                                : std::string("int32_t"));
      stmt(Ty + " " + Tmp + " = " + Subj.Text);
    }
    std::string Access = isPtrType(Subj.Ty) ? "->" : ".";
    line("switch (" + Tmp + (Enumish ? "" : Access + "tag") + ") {");
    for (const SwitchStmt::Case &C : Sw->cases()) {
      if (C.Pattern.IsDefault) {
        line("default: {");
      } else {
        const VariantDecl *CV = variantOfCtor(C.Pattern.CtorName);
        line("case " + (CV ? CV->name() : std::string("?")) + "_" +
             C.Pattern.CtorName + ": {");
      }
      ++Indent;
      if (!C.Pattern.IsDefault && V && !Enumish) {
        const VariantDecl::Ctor *Ct = V->findCtor(C.Pattern.CtorName);
        for (size_t I = 0;
             Ct && I < C.Pattern.Binders.size() && I < Ct->Payload.size();
             ++I) {
          if (C.Pattern.Binders[I].empty())
            continue;
          std::string BTy = cType(Ct->Payload[I]);
          LocalCTypes[C.Pattern.Binders[I]] = BTy;
          stmt(BTy + " " + C.Pattern.Binders[I] + " = " + Tmp + Access +
               "u." + C.Pattern.CtorName + ".f" + std::to_string(I));
        }
      }
      for (const Stmt *Sub : C.Body)
        emitStmt(Sub);
      stmt("break");
      --Indent;
      line("}");
    }
    line("}");
    return;
  }
  case StmtKind::Free:
    stmt("free((void *)(uintptr_t)" + emitExpr(cast<FreeStmt>(S)->operand()) +
         ")");
    return;
  case StmtKind::Borrow: {
    // A borrow is an alias of the same underlying storage; the borrow
    // discipline itself is compile-time only.
    const auto *B = cast<BorrowStmt>(S);
    CExpr Src = emitExprT(B->source());
    std::string Ty = !Src.Ty.empty() ? Src.Ty : std::string("void *");
    LocalCTypes[B->binderName()] = Ty;
    stmt(Ty + " " + B->binderName() + " = " + Src.Text);
    return;
  }
  case StmtKind::EndBorrow:
    // Revocation is erased at the C level.
    stmt("(void)" + emitExpr(cast<EndBorrowStmt>(S)->operand()));
    return;
  }
}

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

void CEmitter::emitStructDecl(const StructDecl *S) {
  line("struct " + S->name() + " {");
  ++Indent;
  for (const StructDecl::Field &F : S->fields())
    stmt(cType(F.Type) + " " + F.Name);
  --Indent;
  line("};");
}

void CEmitter::emitVariantDecl(const VariantDecl *V) {
  bool AnyPayload = false;
  for (const VariantDecl::Ctor &C : V->ctors())
    if (!C.Payload.empty())
      AnyPayload = true;

  std::string EnumName = AnyPayload ? V->name() + "_tag" : V->name();
  std::string Tags = "enum " + EnumName + " { ";
  bool First = true;
  for (const VariantDecl::Ctor &C : V->ctors()) {
    if (!First)
      Tags += ", ";
    First = false;
    Tags += V->name() + "_" + C.Name;
  }
  Tags += " };";
  line(Tags);
  if (!AnyPayload)
    return;

  line("struct " + V->name() + " {");
  ++Indent;
  stmt("enum " + EnumName + " tag");
  line("union {");
  ++Indent;
  for (const VariantDecl::Ctor &C : V->ctors()) {
    if (C.Payload.empty())
      continue;
    line("struct {");
    ++Indent;
    for (size_t I = 0; I != C.Payload.size(); ++I)
      stmt(cType(C.Payload[I]) + " f" + std::to_string(I));
    --Indent;
    line("} " + C.Name + ";");
  }
  --Indent;
  line("} u;");
  --Indent;
  line("};");
}

void CEmitter::emitAbstractType(const TypeAliasDecl *A) {
  // Abstract resources lower to opaque 64-bit handles, matching the
  // runtime libraries.
  line("typedef uint64_t " + A->name() + ";");
}

/// Emits one parameter, expanding function-typed parameters into a
/// pointer + context pair.
static std::string cParam(const std::string &Ty, const std::string &Name) {
  if (Ty.rfind("@fnptr:", 0) == 0) {
    std::string N = Name.empty() ? "fn" : Name;
    return "vault_fnptr " + N + ", void *" + N + "_ctx";
  }
  return Ty + (Name.empty() ? "" : " " + Name);
}

void CEmitter::emitFunc(const FuncDecl *F, const std::string &NameOverride,
                        const std::vector<std::string> &ExtraParams) {
  std::string Name = NameOverride.empty() ? F->name() : NameOverride;
  CurrentRetCType = cType(F->retType());
  // A Vault `void main()` becomes a well-formed C `int main(void)`.
  bool IsCMain = Name == "main" && CurrentRetCType == "void" &&
                 F->params().empty() && !F->isPrototype();
  if (IsCMain)
    CurrentRetCType = "int";
  std::string Sig = CurrentRetCType + " " + Name + "(";
  bool First = true;
  for (const FuncDecl::Param &P : F->params()) {
    if (!First)
      Sig += ", ";
    First = false;
    Sig += cParam(cType(P.Type), P.Name);
    if (!P.Name.empty())
      LocalCTypes[P.Name] = cType(P.Type);
  }
  for (const std::string &E : ExtraParams) {
    if (!First)
      Sig += ", ";
    First = false;
    Sig += E;
  }
  if (First)
    Sig += "void";
  Sig += ")";
  if (F->isPrototype()) {
    line("extern " + Sig + ";");
    return;
  }
  line(Sig);
  if (IsCMain) {
    line("{");
    ++Indent;
    for (const Stmt *Sub : F->body()->stmts())
      emitStmt(Sub);
    stmt("return 0");
    --Indent;
    line("}");
  } else {
    emitStmt(F->body());
  }
  line("");
}

void CEmitter::liftNestedFunction(const FuncDecl *F) {
  // Find captured names: free names of the body that are locals of the
  // enclosing function.
  std::set<std::string> Bound;
  for (const FuncDecl::Param &P : F->params())
    Bound.insert(P.Name);
  std::set<std::string> Captured;
  collectCaptures(F->body(), Bound, Captured);

  // Environment struct + instance in the enclosing body.
  std::string EnvStruct = "struct " + F->name() + "_envt";
  std::string Decl = EnvStruct + " { ";
  std::string Init = EnvStruct + " " + F->name() + "_env = { ";
  bool First = true;
  for (const std::string &C : Captured) {
    auto It = LocalCTypes.find(C);
    std::string Ty = It != LocalCTypes.end() ? It->second : "int32_t";
    if (!First) {
      Decl += " ";
      Init += ", ";
    }
    First = false;
    Decl += Ty + " *" + C + ";";
    Init += "&" + C;
  }
  Decl += " };";
  Init += " };";

  // Emit the lifted function into the side buffer.
  std::ostringstream Lifted;
  std::ostringstream *SavedOut = Out;
  Out = &Lifted;
  unsigned SavedIndent = Indent;
  Indent = 0;
  bool SavedNested = InNestedFn;
  std::set<std::string> SavedCaptures = CurrentCaptures;
  std::string SavedRet = CurrentRetCType;
  InNestedFn = true;
  CurrentCaptures = Captured;
  CurrentRetCType = cType(F->retType());

  line(Decl);
  std::string Sig = CurrentRetCType + " " + F->name() + "_lifted(";
  bool FirstP = true;
  for (const FuncDecl::Param &P : F->params()) {
    if (!FirstP)
      Sig += ", ";
    FirstP = false;
    Sig += cParam(cType(P.Type), P.Name);
    if (!P.Name.empty())
      LocalCTypes[P.Name] = cType(P.Type);
  }
  Sig += std::string(FirstP ? "" : ", ") + "void *__env_raw)";
  line("static " + Sig + " {");
  ++Indent;
  stmt(EnvStruct + " *__env = (" + EnvStruct + " *)__env_raw");
  for (const Stmt *Sub : F->body()->stmts())
    emitStmt(Sub);
  --Indent;
  line("}");

  Out = SavedOut;
  Indent = SavedIndent;
  InNestedFn = SavedNested;
  CurrentCaptures = SavedCaptures;
  CurrentRetCType = SavedRet;
  LiftedFunctions.push_back(Lifted.str());

  NestedFnNames.insert(F->name());
  stmt(Init);
}

void CEmitter::collectCaptures(const Stmt *S, std::set<std::string> &Bound,
                               std::set<std::string> &Out) const {
  struct Walker {
    const CEmitter &E;
    std::set<std::string> &Bound;
    std::set<std::string> &Out;

    void expr(const Expr *Ex) {
      if (!Ex)
        return;
      switch (Ex->kind()) {
      case ExprKind::Name: {
        const std::string &N = cast<NameExpr>(Ex)->name();
        if (!Bound.count(N) && E.LocalCTypes.count(N))
          Out.insert(N);
        return;
      }
      case ExprKind::Call: {
        const auto *C = cast<CallExpr>(Ex);
        expr(C->callee());
        for (const Expr *A : C->args())
          expr(A);
        return;
      }
      case ExprKind::Ctor:
        for (const Expr *A : cast<CtorExpr>(Ex)->args())
          expr(A);
        return;
      case ExprKind::New: {
        const auto *N = cast<NewExpr>(Ex);
        expr(N->region());
        for (const auto &I : N->inits())
          expr(I.Init);
        return;
      }
      case ExprKind::Field:
        expr(cast<FieldExpr>(Ex)->base());
        return;
      case ExprKind::Index:
        expr(cast<IndexExpr>(Ex)->base());
        expr(cast<IndexExpr>(Ex)->index());
        return;
      case ExprKind::Unary:
        expr(cast<UnaryExpr>(Ex)->operand());
        return;
      case ExprKind::Binary:
        expr(cast<BinaryExpr>(Ex)->lhs());
        expr(cast<BinaryExpr>(Ex)->rhs());
        return;
      case ExprKind::Assign:
        expr(cast<AssignExpr>(Ex)->lhs());
        expr(cast<AssignExpr>(Ex)->rhs());
        return;
      case ExprKind::IncDec:
        expr(cast<IncDecExpr>(Ex)->base());
        return;
      case ExprKind::Tuple:
        for (const Expr *El : cast<TupleExpr>(Ex)->elems())
          expr(El);
        return;
      default:
        return;
      }
    }

    void stmt(const Stmt *St) {
      if (!St)
        return;
      switch (St->kind()) {
      case StmtKind::Block:
        for (const Stmt *Sub : cast<BlockStmt>(St)->stmts())
          stmt(Sub);
        return;
      case StmtKind::Decl: {
        const Decl *D = cast<DeclStmt>(St)->decl();
        if (const auto *V = dyn_cast<VarDecl>(D)) {
          expr(V->init());
          Bound.insert(V->name());
        }
        return;
      }
      case StmtKind::Expr:
        expr(cast<ExprStmt>(St)->expr());
        return;
      case StmtKind::If:
        expr(cast<IfStmt>(St)->cond());
        stmt(cast<IfStmt>(St)->thenStmt());
        stmt(cast<IfStmt>(St)->elseStmt());
        return;
      case StmtKind::While:
        expr(cast<WhileStmt>(St)->cond());
        stmt(cast<WhileStmt>(St)->body());
        return;
      case StmtKind::Return:
        expr(cast<ReturnStmt>(St)->value());
        return;
      case StmtKind::Switch: {
        const auto *Sw = cast<SwitchStmt>(St);
        expr(Sw->subject());
        for (const SwitchStmt::Case &C : Sw->cases()) {
          for (const std::string &B : C.Pattern.Binders)
            if (!B.empty())
              Bound.insert(B);
          for (const Stmt *Sub : C.Body)
            stmt(Sub);
        }
        return;
      }
      case StmtKind::Free:
        expr(cast<FreeStmt>(St)->operand());
        return;
      case StmtKind::Borrow:
        expr(cast<BorrowStmt>(St)->source());
        Bound.insert(cast<BorrowStmt>(St)->binderName());
        return;
      case StmtKind::EndBorrow:
        expr(cast<EndBorrowStmt>(St)->operand());
        return;
      }
    }
  };
  Walker W{*this, Bound, Out};
  W.stmt(S);
}

void CEmitter::emitDecl(const Decl *D) {
  switch (D->kind()) {
  case DeclKind::Stateset:
  case DeclKind::Key:
  case DeclKind::Module:
    // Purely compile-time artifacts: erased.
    line("/* " + D->name() + ": compile-time only, erased */");
    return;
  case DeclKind::TypeAlias: {
    const auto *A = cast<TypeAliasDecl>(D);
    if (A->isAbstract()) {
      emitAbstractType(A);
      return;
    }
    // Tuple aliases become structs with f0..fN members.
    if (const auto *Tu = dyn_cast<TupleTypeExpr>(A->underlying())) {
      line("struct " + A->name() + " {");
      ++Indent;
      for (size_t I = 0; I != Tu->elems().size(); ++I)
        stmt(cType(Tu->elems()[I]) + " f" + std::to_string(I));
      --Indent;
      line("};");
      return;
    }
    // Other aliases are expanded at use sites.
    return;
  }
  case DeclKind::Struct:
    emitStructDecl(cast<StructDecl>(D));
    return;
  case DeclKind::Variant:
    emitVariantDecl(cast<VariantDecl>(D));
    return;
  case DeclKind::Func:
    LocalCTypes.clear();
    NestedFnNames.clear();
    LiftedFunctions.clear();
    {
      std::ostringstream FnBody;
      std::ostringstream *Saved = Out;
      Out = &FnBody;
      emitFunc(cast<FuncDecl>(D));
      Out = Saved;
      for (const std::string &L : LiftedFunctions)
        *Out << L;
      *Out << FnBody.str();
    }
    return;
  case DeclKind::Interface:
    for (const Decl *M : cast<InterfaceDecl>(D)->members())
      emitDecl(M);
    return;
  case DeclKind::Var:
    return;
  }
}

std::string CEmitter::emitProgram() {
  Header.str("");
  Body.str("");
  Out = &Header;
  line("/* Generated by vaultc: keys, guards and effects erased. */");
  line("#include <stdbool.h>");
  line("#include <stdint.h>");
  line("#include <stdlib.h>");
  line("#include <string.h>");
  line("");
  line("typedef void (*vault_fnptr)(void);");
  line("typedef uint64_t vault_region_handle;");
  line("extern void *vault_region_alloc(uint64_t region, size_t size);");
  line("");

  Out = &Body;
  for (const Decl *D : Compiler.ast().program().Decls)
    emitDecl(D);
  return Header.str() + Body.str();
}
