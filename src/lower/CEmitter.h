//===- CEmitter.h - Vault-to-C lowering -------------------------*- C++ -*-===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a checked Vault program to C, erasing every protocol
/// artifact: "keys are purely compile-time entities that have no
/// impact on run-time representations or execution time" (§2.1).
///
/// Lowering map:
///  * guarded types `K@s : T`      -> plain `T`;
///  * tracked struct types         -> pointers;
///  * abstract types               -> opaque handle typedefs;
///  * variants                     -> tagged unions; keyed constructors
///                                    lose their key braces entirely;
///  * `new tracked T{..}` / free   -> malloc / free;
///  * `new(rgn) T{..}`             -> vault_region_alloc;
///  * effect clauses               -> (nothing);
///  * nested functions and
///    function-typed values        -> lifted functions + explicit
///                                    environment pointer (the classic
///                                    closure lowering; completion
///                                    routines get their Context
///                                    parameter back).
///
//===----------------------------------------------------------------------===//

#ifndef VAULT_LOWER_CEMITTER_H
#define VAULT_LOWER_CEMITTER_H

#include "sema/Checker.h"

#include <set>
#include <sstream>

namespace vault {

class CEmitter {
public:
  explicit CEmitter(VaultCompiler &C)
      : Compiler(C), Globals(C.globals()) {}

  /// Emits the whole program as one C translation unit.
  std::string emitProgram();

  /// Counts non-blank, non-comment lines of the given text — used for
  /// the paper's case-study line comparison (§4: C 4900 vs Vault 5200).
  static size_t countCodeLines(const std::string &Text);

private:
  // Types.
  std::string cType(const TypeExprAst *T);
  std::string cNamedType(const NamedTypeExpr *N);

  // Declarations.
  void emitDecl(const Decl *D);
  void emitStructDecl(const StructDecl *S);
  void emitVariantDecl(const VariantDecl *V);
  void emitAbstractType(const TypeAliasDecl *A);
  void emitFunc(const FuncDecl *F, const std::string &NameOverride = "",
                const std::vector<std::string> &ExtraParams = {});

  // Statements / expressions. Expressions may append setup statements
  // to the current body via stmt().
  void emitStmt(const Stmt *S);
  /// An emitted C expression together with its (best-effort) C type,
  /// used for `.` vs `->` selection and boxing decisions.
  struct CExpr {
    std::string Text;
    std::string Ty;
  };
  CExpr emitExprT(const Expr *E);
  std::string emitExpr(const Expr *E) { return emitExprT(E).Text; }
  CExpr emitCall(const CallExpr *E);
  CExpr emitCtor(const CtorExpr *E);
  CExpr emitNew(const NewExpr *E);

  /// C type of a struct's field; "" if unknown. \p StructTy is e.g.
  /// "struct point" or "struct point *".
  std::string fieldCType(const std::string &StructTy,
                         const std::string &Field);
  /// C type of element \p Idx of a tuple-alias struct; "" if unknown.
  std::string tupleFieldCType(const std::string &StructTy, size_t Idx);
  /// Boxes a by-value expression into a freshly malloc'd \p PtrTy.
  std::string boxInto(const std::string &PtrTy, const std::string &Value);
  /// Strips a trailing "*" (and space) from a pointer type.
  static std::string pointee(const std::string &Ty);

  // Nested function lifting.
  void liftNestedFunction(const FuncDecl *F);
  void collectCaptures(const Stmt *S, std::set<std::string> &Bound,
                       std::set<std::string> &Out) const;

  // Output helpers.
  void line(const std::string &S);
  void stmt(const std::string &S) { line(S + ";"); }
  std::string fresh(const std::string &Hint);

  /// True if the variant is recursive (payload mentions itself) and
  /// must therefore be lowered behind a pointer when packed.
  bool variantNeedsPointer(const VariantDecl *V) const;

  const VariantDecl *variantOfCtor(const std::string &Name) const {
    return Globals.findCtor(Name);
  }

  VaultCompiler &Compiler;
  GlobalSymbols &Globals;
  std::ostringstream Header;
  std::ostringstream Body;
  std::ostringstream *Out = nullptr;
  unsigned Indent = 0;
  unsigned TempCounter = 0;
  /// Nested functions lifted out of the function being emitted.
  std::vector<std::string> LiftedFunctions;
  /// Names of locals captured by the nested function being lifted.
  std::set<std::string> CurrentCaptures;
  /// Names that refer to nested-function values in the current scope
  /// (call sites must pass the environment pointer).
  std::set<std::string> NestedFnNames;
  /// Declared C types of locals in the function being emitted (used
  /// for `.` vs `->` and for boxing decisions).
  std::map<std::string, std::string> LocalCTypes;
  /// Alias type-parameter bindings active while expanding a generic
  /// alias (e.g. T -> DISK_GEOMETRY inside paged<T>).
  std::map<std::string, const TypeExprAst *> TypeParamBindings;
  std::string CurrentRetCType;
  bool InNestedFn = false;
};

} // namespace vault

#endif // VAULT_LOWER_CEMITTER_H
