//===- Interp.cpp ---------------------------------------------------------===//

#include "interp/Interp.h"

using namespace vault;
using namespace vault::interp;

bool Interp::run(const std::string &Name, std::vector<Value> Args) {
  const FuncDecl *F = findFunction(Name);
  if (!F || !F->body()) {
    trap("no function '" + Name + "' with a body");
    return false;
  }
  Result = callFunction(F, std::move(Args), nullptr);
  return !Trapped;
}

Value Interp::callFunction(const FuncDecl *F, std::vector<Value> Args,
                           std::shared_ptr<Env> Captured) {
  if (!F->body()) {
    trap("call to function '" + F->name() + "' with no body");
    return Value::unit();
  }
  // One step per call entry: the same charge point as the VM, so both
  // engines exhaust a step budget at the identical call.
  if (!chargeStep())
    return Value::unit();
  auto E = std::make_shared<Env>();
  E->Parent = std::move(Captured);
  for (size_t I = 0; I != F->params().size() && I < Args.size(); ++I) {
    const std::string &N = F->params()[I].Name;
    if (!N.empty())
      E->Vars[N] = std::move(Args[I]);
  }
  ReturnSlot = Value::unit();
  execBlock(F->body(), E);
  return ReturnSlot;
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

Interp::Flow Interp::execBlock(const BlockStmt *B, std::shared_ptr<Env> &E) {
  auto Inner = std::make_shared<Env>();
  Inner->Parent = E;
  for (const Stmt *S : B->stmts()) {
    if (Trapped)
      return Flow::Return;
    if (execStmt(S, Inner) == Flow::Return)
      return Flow::Return;
  }
  return Flow::Normal;
}

Interp::Flow Interp::execStmt(const Stmt *S, std::shared_ptr<Env> &E) {
  if (Trapped)
    return Flow::Return;
  switch (S->kind()) {
  case StmtKind::Block:
    return execBlock(cast<BlockStmt>(S), E);
  case StmtKind::Decl: {
    const Decl *D = cast<DeclStmt>(S)->decl();
    if (const auto *V = dyn_cast<VarDecl>(D)) {
      E->Vars[V->name()] =
          V->init() ? evalExpr(V->init(), E) : Value::unit();
      return Flow::Normal;
    }
    if (const auto *F = dyn_cast<FuncDecl>(D)) {
      auto FD = std::make_shared<FuncData>();
      FD->Decl = F;
      FD->Captured = E;
      E->Vars[F->name()] = Value::funcV(std::move(FD));
      return Flow::Normal;
    }
    return Flow::Normal;
  }
  case StmtKind::Expr:
    evalExpr(cast<ExprStmt>(S)->expr(), E);
    return Flow::Normal;
  case StmtKind::If: {
    const auto *I = cast<IfStmt>(S);
    Value C = evalExpr(I->cond(), E);
    if (Trapped)
      return Flow::Return;
    if (C.asBool())
      return execStmt(I->thenStmt(), E);
    if (I->elseStmt())
      return execStmt(I->elseStmt(), E);
    return Flow::Normal;
  }
  case StmtKind::While: {
    const auto *W = cast<WhileStmt>(S);
    while (!Trapped && evalExpr(W->cond(), E).asBool()) {
      // One step per iteration: the shared engine charge point.
      if (!chargeStep())
        return Flow::Return;
      if (execStmt(W->body(), E) == Flow::Return)
        return Flow::Return;
    }
    return Flow::Normal;
  }
  case StmtKind::Return: {
    const auto *R = cast<ReturnStmt>(S);
    ReturnSlot = R->value() ? evalExpr(R->value(), E) : Value::unit();
    return Flow::Return;
  }
  case StmtKind::Switch: {
    const auto *Sw = cast<SwitchStmt>(S);
    Value Subj = evalExpr(Sw->subject(), E);
    if (Trapped)
      return Flow::Return;
    // A tracked variant is tested through its cell.
    if (Subj.kind() == Value::Kind::Tracked)
      Subj = derefForAccess(Subj, "switch subject");
    if (Subj.kind() != Value::Kind::Variant) {
      trap("switch on a non-variant value");
      return Flow::Normal;
    }
    const SwitchStmt::Case *Default = nullptr;
    for (const SwitchStmt::Case &C : Sw->cases()) {
      if (C.Pattern.IsDefault) {
        Default = &C;
        continue;
      }
      if (C.Pattern.CtorName != Subj.variantData()->Tag)
        continue;
      auto Inner = std::make_shared<Env>();
      Inner->Parent = E;
      for (size_t I = 0; I < C.Pattern.Binders.size() &&
                         I < Subj.variantData()->Payload.size();
           ++I)
        if (!C.Pattern.Binders[I].empty())
          Inner->Vars[C.Pattern.Binders[I]] =
              Subj.variantData()->Payload[I];
      for (const Stmt *Sub : C.Body)
        if (execStmt(Sub, Inner) == Flow::Return)
          return Flow::Return;
      return Flow::Normal;
    }
    if (Default) {
      auto Inner = std::make_shared<Env>();
      Inner->Parent = E;
      for (const Stmt *Sub : Default->Body)
        if (execStmt(Sub, Inner) == Flow::Return)
          return Flow::Return;
    }
    return Flow::Normal;
  }
  case StmtKind::Free: {
    Value V = evalExpr(cast<FreeStmt>(S)->operand(), E);
    if (Trapped)
      return Flow::Return;
    if (V.kind() == Value::Kind::Tracked && V.cell()) {
      if (!V.cell()->Alive)
        violation("double free of tracked object");
      V.cell()->Alive = false;
      return Flow::Normal;
    }
    if (V.kind() == Value::Kind::Region) {
      if (!Regions.destroy(V.handle()))
        violation("free of dead region");
      return Flow::Normal;
    }
    if (V.kind() == Value::Kind::Tuple || V.kind() == Value::Kind::Variant)
      return Flow::Normal; // Freeing an unpacked box: no-op.
    violation("free of a non-tracked value");
    return Flow::Normal;
  }
  case StmtKind::Borrow: {
    // The alias gets its own cell sharing the source's storage, so
    // revoking the borrow later does not kill the original.
    const auto *B = cast<BorrowStmt>(S);
    Value Src = evalExpr(B->source(), E);
    if (Trapped)
      return Flow::Return;
    if (Src.kind() == Value::Kind::Tracked && Src.cell()) {
      auto Alias = std::make_shared<CellData>(*Src.cell());
      Alias->Revoked = false;
      E->Vars[B->binderName()] = Value::trackedV(std::move(Alias));
    } else {
      E->Vars[B->binderName()] = std::move(Src);
    }
    return Flow::Normal;
  }
  case StmtKind::EndBorrow: {
    Value V = evalExpr(cast<EndBorrowStmt>(S)->operand(), E);
    if (Trapped)
      return Flow::Return;
    if (V.kind() == Value::Kind::Tracked && V.cell()) {
      if (V.cell()->Revoked)
        violation("endborrow of an already-revoked borrow");
      V.cell()->Revoked = true;
    } else {
      violation("endborrow of a non-borrowed value");
    }
    return Flow::Normal;
  }
  }
  return Flow::Normal;
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

Value *Interp::evalLValue(const Expr *E, std::shared_ptr<Env> &Ev) {
  if (const auto *N = dyn_cast<NameExpr>(E))
    return Ev->lookup(N->name());
  if (const auto *F = dyn_cast<FieldExpr>(E)) {
    Value *Base = evalLValue(F->base(), Ev);
    Value Tmp;
    Value *Target = Base;
    if (!Base) {
      // Base may be an rvalue (e.g. a call); evaluate it.
      Tmp = evalExpr(F->base(), Ev);
      Target = &Tmp;
    }
    Value Record = *Target;
    if (Record.kind() == Value::Kind::Tracked) {
      if (Record.cell()->Revoked) {
        violation("field access through revoked borrow");
        return nullptr;
      }
      if (!Record.cell()->Alive ||
          (Record.cell()->Region && !Regions.isLive(Record.cell()->Region))) {
        violation("field access through dead tracked object");
        return nullptr;
      }
      if (Record.cell()->GuardMutex != 0 &&
          !Locks.isLocked(Record.cell()->GuardMutex))
        Locks.unguardedAccess(Record.cell()->GuardMutex, "field access");
      Record = Record.cell()->Inner ? *Record.cell()->Inner : Value::unit();
      if (Record.kind() == Value::Kind::Struct) {
        auto It = Record.structData()->Fields.find(F->field());
        if (It != Record.structData()->Fields.end())
          return &It->second;
      }
      return nullptr;
    }
    if (Record.kind() == Value::Kind::Struct) {
      auto It = Record.structData()->Fields.find(F->field());
      if (It != Record.structData()->Fields.end())
        return &It->second;
    }
    return nullptr;
  }
  if (const auto *Ix = dyn_cast<IndexExpr>(E)) {
    Value *Base = evalLValue(Ix->base(), Ev);
    if (!Base)
      return nullptr;
    Value Idx = evalExpr(Ix->index(), Ev);
    Value Arr = derefForAccess(*Base, "index");
    if (Arr.kind() == Value::Kind::Array && Arr.array()) {
      auto &Elems = Arr.array()->Elems;
      if (Idx.asInt() >= 0 &&
          static_cast<size_t>(Idx.asInt()) < Elems.size())
        return &Elems[Idx.asInt()];
      trap("array index out of bounds");
    }
    if (Base->kind() == Value::Kind::Tuple) {
      auto &Elems = Base->tupleElems();
      if (Idx.asInt() >= 0 &&
          static_cast<size_t>(Idx.asInt()) < Elems.size())
        return &Elems[Idx.asInt()];
    }
    return nullptr;
  }
  return nullptr;
}

Value Interp::evalCall(const CallExpr *E, std::shared_ptr<Env> &Ev) {
  std::string Name;
  std::string Qualified;
  if (const auto *N = dyn_cast<NameExpr>(E->callee())) {
    Name = N->name();
    // A local function value shadows globals.
    if (Value *V = Ev->lookup(Name); V && V->kind() == Value::Kind::Func) {
      std::vector<Value> Args;
      for (const Expr *A : E->args())
        Args.push_back(evalExpr(A, Ev));
      if (Trapped)
        return Value::unit();
      // Re-check through the slot: argument evaluation may have
      // rebound the callee (e.g. `f(f = g)`); trap instead of calling
      // through a stale or non-function value.
      if (V->kind() != Value::Kind::Func || !V->func() || !V->func()->Decl) {
        trap("call target is no longer a function");
        return Value::unit();
      }
      return callFunction(V->func()->Decl, std::move(Args),
                          V->func()->Captured);
    }
  } else if (const auto *F = dyn_cast<FieldExpr>(E->callee())) {
    if (const auto *Base = dyn_cast<NameExpr>(F->base())) {
      Name = F->field();
      Qualified = Base->name() + "." + F->field();
    }
  }
  if (Name.empty()) {
    trap("unsupported call target");
    return Value::unit();
  }

  std::vector<Value> Args;
  for (const Expr *A : E->args())
    Args.push_back(evalExpr(A, Ev));
  if (Trapped)
    return Value::unit();

  // User-defined function with a body?
  if (const FuncDecl *F = findFunction(Name); F && F->body())
    return callFunction(F, std::move(Args), nullptr);

  // Builtin (qualified name first).
  if (!Qualified.empty())
    if (auto It = Builtins.find(Qualified); It != Builtins.end())
      return It->second(*this, Args);
  if (auto It = Builtins.find(Name); It != Builtins.end())
    return It->second(*this, Args);

  trap("call to undefined function '" + (Qualified.empty() ? Name : Qualified) +
       "' (no body, no builtin)");
  return Value::unit();
}

Value Interp::evalExpr(const Expr *E, std::shared_ptr<Env> &Ev) {
  if (Trapped)
    return Value::unit();
  switch (E->kind()) {
  case ExprKind::IntLiteral:
    return Value::intV(cast<IntLiteralExpr>(E)->value());
  case ExprKind::BoolLiteral:
    return Value::boolV(cast<BoolLiteralExpr>(E)->value());
  case ExprKind::StringLiteral:
    return Value::strV(cast<StringLiteralExpr>(E)->value());
  case ExprKind::Name: {
    const auto *N = cast<NameExpr>(E);
    if (Value *V = Ev->lookup(N->name()))
      return *V;
    // A top-level function used as a value.
    if (const FuncDecl *F = findFunction(N->name())) {
      auto FD = std::make_shared<FuncData>();
      FD->Decl = F;
      return Value::funcV(std::move(FD));
    }
    trap("unknown name '" + N->name() + "'");
    return Value::unit();
  }
  case ExprKind::Call:
    return evalCall(cast<CallExpr>(E), Ev);
  case ExprKind::Ctor: {
    const auto *C = cast<CtorExpr>(E);
    auto D = std::make_shared<VariantData>();
    D->Tag = C->name();
    for (const Expr *A : C->args())
      D->Payload.push_back(evalExpr(A, Ev));
    return Value::variantV(std::move(D));
  }
  case ExprKind::New: {
    const auto *N = cast<NewExpr>(E);
    auto SD = std::make_shared<StructData>();
    // Zero-fill declared fields, then apply initializers.
    if (const auto *Named = dyn_cast<NamedTypeExpr>(N->typeExpr()))
      if (const auto *StD = dyn_cast<StructDecl>(
              Compiler.globals().findType(Named->name())
                  ? Compiler.globals().findType(Named->name())
                  : nullptr))
        for (const StructDecl::Field &F : StD->fields())
          SD->Fields[F.Name] = Value::intV(0);
    for (const NewExpr::FieldInit &FI : N->inits())
      SD->Fields[FI.Field] = evalExpr(FI.Init, Ev);
    Value Inner = Value::structV(std::move(SD));

    auto Cell = std::make_shared<CellData>();
    Cell->Inner = std::make_shared<Value>(std::move(Inner));
    Cell->Alive = true;
    if (N->region()) {
      Value R = evalExpr(N->region(), Ev);
      if (R.kind() != Value::Kind::Region) {
        trap("new(rgn) with a non-region value");
        return Value::unit();
      }
      if (!Regions.isLive(R.handle()))
        violation("allocation from deleted region");
      else
        Regions.allocate(R.handle(), 64); // Account the allocation.
      Cell->Region = R.handle();
      return Value::trackedV(std::move(Cell));
    }
    if (N->isTracked())
      return Value::trackedV(std::move(Cell));
    return *Cell->Inner; // Plain record value.
  }
  case ExprKind::Field: {
    const auto *F = cast<FieldExpr>(E);
    Value Base = evalExpr(F->base(), Ev);
    Value Record = derefForAccess(Base, "field access");
    if (Record.kind() == Value::Kind::Struct) {
      auto It = Record.structData()->Fields.find(F->field());
      if (It != Record.structData()->Fields.end())
        return It->second;
    }
    return Value::unit();
  }
  case ExprKind::Index: {
    const auto *Ix = cast<IndexExpr>(E);
    Value Base = evalExpr(Ix->base(), Ev);
    Value Idx = evalExpr(Ix->index(), Ev);
    Value Arr = derefForAccess(Base, "index");
    if (Arr.kind() == Value::Kind::Array && Arr.array()) {
      auto &Elems = Arr.array()->Elems;
      if (Idx.asInt() >= 0 &&
          static_cast<size_t>(Idx.asInt()) < Elems.size())
        return Elems[Idx.asInt()];
      trap("array index out of bounds");
      return Value::unit();
    }
    if (Base.kind() == Value::Kind::Tuple) {
      auto &Elems = Base.tupleElems();
      if (Idx.asInt() >= 0 &&
          static_cast<size_t>(Idx.asInt()) < Elems.size())
        return Elems[Idx.asInt()];
    }
    return Value::unit();
  }
  case ExprKind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    Value V = derefForAccess(evalExpr(U->operand(), Ev), "operand");
    if (U->op() == UnaryOp::Not)
      return Value::boolV(!V.asBool());
    return Value::intV(-V.asInt());
  }
  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    // Short-circuit logicals.
    if (B->op() == BinaryOp::And) {
      Value L = evalExpr(B->lhs(), Ev);
      if (!L.asBool())
        return Value::boolV(false);
      return Value::boolV(evalExpr(B->rhs(), Ev).asBool());
    }
    if (B->op() == BinaryOp::Or) {
      Value L = evalExpr(B->lhs(), Ev);
      if (L.asBool())
        return Value::boolV(true);
      return Value::boolV(evalExpr(B->rhs(), Ev).asBool());
    }
    Value L = derefForAccess(evalExpr(B->lhs(), Ev), "operand");
    Value R = derefForAccess(evalExpr(B->rhs(), Ev), "operand");
    switch (B->op()) {
    case BinaryOp::Add:
      return Value::intV(L.asInt() + R.asInt());
    case BinaryOp::Sub:
      return Value::intV(L.asInt() - R.asInt());
    case BinaryOp::Mul:
      return Value::intV(L.asInt() * R.asInt());
    case BinaryOp::Div:
      if (R.asInt() == 0) {
        trap("division by zero");
        return Value::intV(0);
      }
      return Value::intV(L.asInt() / R.asInt());
    case BinaryOp::Rem:
      if (R.asInt() == 0) {
        trap("remainder by zero");
        return Value::intV(0);
      }
      return Value::intV(L.asInt() % R.asInt());
    case BinaryOp::Eq:
      return Value::boolV(L.equals(R));
    case BinaryOp::Ne:
      return Value::boolV(!L.equals(R));
    case BinaryOp::Lt:
      return Value::boolV(L.asInt() < R.asInt());
    case BinaryOp::Le:
      return Value::boolV(L.asInt() <= R.asInt());
    case BinaryOp::Gt:
      return Value::boolV(L.asInt() > R.asInt());
    case BinaryOp::Ge:
      return Value::boolV(L.asInt() >= R.asInt());
    case BinaryOp::And:
    case BinaryOp::Or:
      break;
    }
    return Value::unit();
  }
  case ExprKind::Assign: {
    const auto *A = cast<AssignExpr>(E);
    Value RHS = evalExpr(A->rhs(), Ev);
    if (Trapped)
      return Value::unit();
    Value *Slot = evalLValue(A->lhs(), Ev);
    if (Trapped)
      return Value::unit();
    if (Slot) {
      *Slot = RHS;
      return Value::unit();
    }
    // Implicit declaration? No — uninitialized vars exist in Env as
    // Unit; unknown names are an error.
    if (const auto *N = dyn_cast<NameExpr>(A->lhs())) {
      trap("assignment to unknown variable '" + N->name() + "'");
      return Value::unit();
    }
    violation("assignment through dead object");
    return Value::unit();
  }
  case ExprKind::IncDec: {
    const auto *I = cast<IncDecExpr>(E);
    Value *Slot = evalLValue(I->base(), Ev);
    if (Trapped)
      return Value::unit();
    if (Slot) {
      int64_t Old = Slot->asInt();
      *Slot = Value::intV(I->isIncrement() ? Old + 1 : Old - 1);
      return Value::intV(Old);
    }
    violation("increment through dead object");
    return Value::unit();
  }
  case ExprKind::Tuple: {
    const auto *T = cast<TupleExpr>(E);
    std::vector<Value> Elems;
    for (const Expr *El : T->elems())
      Elems.push_back(evalExpr(El, Ev));
    return Value::tupleV(std::move(Elems));
  }
  }
  return Value::unit();
}
