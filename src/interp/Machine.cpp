//===- Machine.cpp --------------------------------------------------------===//

#include "interp/Machine.h"

using namespace vault;
using namespace vault::interp;

Machine::Machine(VaultCompiler &C) : Compiler(C) {
  registerDefaultBuiltins(*this);
}

const FuncDecl *Machine::findFunction(const std::string &Name) const {
  FuncSig *Sig = Compiler.globals().findFunction(Name);
  return Sig ? Sig->Decl : nullptr;
}

unsigned Machine::totalViolations() const {
  unsigned N = static_cast<unsigned>(Violations.size());
  N += Regions.violationCount();
  N += Sockets.violationCount();
  N += Gdi.violationCount();
  N += Locks.violationCount();
  return N;
}

Value Machine::derefForAccess(const Value &V, const char *What) {
  if (V.kind() != Value::Kind::Tracked || !V.cell())
    return V;
  const auto &C = V.cell();
  if (C->Revoked) {
    violation(std::string("use of revoked borrow: ") + What);
    return Value::unit();
  }
  if (!C->Alive) {
    violation(std::string("use after free: ") + What);
    return Value::unit();
  }
  if (C->Region != 0 && !Regions.isLive(C->Region)) {
    violation(std::string("dangling region access: ") + What);
    return Value::unit();
  }
  // Guarded cell: the guarding mutex must be locked at every access.
  if (C->GuardMutex != 0 && !Locks.isLocked(C->GuardMutex))
    Locks.unguardedAccess(C->GuardMutex, What);
  return C->Inner ? *C->Inner : Value::unit();
}
