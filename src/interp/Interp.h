//===- Interp.h - Vault interpreter with dynamic oracle ---------*- C++ -*-===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tree-walking evaluator for (parsed, usually checked) Vault
/// programs. Its second job is to be the *dynamic oracle* of the
/// evaluation: it executes the same resource operations the checker
/// reasons about and records every run-time protocol violation —
/// use-after-free, double free, dangling region access, socket
/// protocol misuse, leaked regions/sockets. The soundness property
/// tested by the suite is: a program the checker accepts produces no
/// oracle violations on any run.
///
/// The tree-walker is also the differential reference for the
/// register-bytecode VM (src/vm/): both derive from interp::Machine
/// and must agree byte for byte on output, violations, and traps.
///
//===----------------------------------------------------------------------===//

#ifndef VAULT_INTERP_INTERP_H
#define VAULT_INTERP_INTERP_H

#include "interp/Machine.h"

namespace vault::interp {

class Interp : public Machine {
public:
  using Builtin = Machine::Builtin;

  explicit Interp(VaultCompiler &C) : Machine(C) {}

  bool run(const std::string &Name = "main",
           std::vector<Value> Args = {}) override;

private:
  enum class Flow { Normal, Return };

  Flow execStmt(const Stmt *S, std::shared_ptr<Env> &E);
  Flow execBlock(const BlockStmt *B, std::shared_ptr<Env> &E);
  Value evalExpr(const Expr *E, std::shared_ptr<Env> &Ev);
  Value evalCall(const CallExpr *E, std::shared_ptr<Env> &Ev);
  Value callFunction(const FuncDecl *F, std::vector<Value> Args,
                     std::shared_ptr<Env> Captured);
  Value *evalLValue(const Expr *E, std::shared_ptr<Env> &Ev);

  Value ReturnSlot;
};

} // namespace vault::interp

#endif // VAULT_INTERP_INTERP_H
