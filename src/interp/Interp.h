//===- Interp.h - Vault interpreter with dynamic oracle ---------*- C++ -*-===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tree-walking evaluator for (parsed, usually checked) Vault
/// programs. Its second job is to be the *dynamic oracle* of the
/// evaluation: it executes the same resource operations the checker
/// reasons about and records every run-time protocol violation —
/// use-after-free, double free, dangling region access, socket
/// protocol misuse, leaked regions/sockets. The soundness property
/// tested by the suite is: a program the checker accepts produces no
/// oracle violations on any run.
///
//===----------------------------------------------------------------------===//

#ifndef VAULT_INTERP_INTERP_H
#define VAULT_INTERP_INTERP_H

#include "interp/Value.h"
#include "gdi/Gdi.h"
#include "locks/Mutex.h"
#include "runtime/Region.h"
#include "sema/Checker.h"
#include "sockets/Socket.h"

#include <functional>

namespace vault::interp {

class Interp {
public:
  using Builtin = std::function<Value(Interp &, std::vector<Value> &)>;

  explicit Interp(VaultCompiler &C);

  /// Runs function \p Name with \p Args. Returns false if the function
  /// is missing or the program trapped (see trapMessage()).
  bool run(const std::string &Name = "main", std::vector<Value> Args = {});

  Value result() const { return Result; }

  /// Registers (or overrides) a builtin; also reachable as
  /// "Module.name" through any module qualifier.
  void registerBuiltin(const std::string &Name, Builtin Fn) {
    Builtins[Name] = std::move(Fn);
  }

  // -- Oracle state -----------------------------------------------------
  rt::RegionManager &regions() { return Regions; }
  net::SocketWorld &sockets() { return Sockets; }
  gdi::GdiWorld &gdi() { return Gdi; }
  lock::MutexWorld &locks() { return Locks; }

  void violation(const std::string &Msg) { Violations.push_back(Msg); }
  const std::vector<std::string> &violations() const { return Violations; }
  /// Total dynamic protocol violations including substrate-detected
  /// ones and end-of-run leaks.
  unsigned totalViolations() const;

  const std::vector<std::string> &output() const { return Output; }
  void print(std::string Line) { Output.push_back(std::move(Line)); }

  bool trapped() const { return Trapped; }
  const std::string &trapMessage() const { return TrapMsg; }
  void trap(const std::string &Msg) {
    if (!Trapped) {
      Trapped = true;
      TrapMsg = Msg;
    }
  }

  /// Budget guard: aborts runaway programs deterministically.
  size_t MaxSteps = 10'000'000;

  VaultCompiler &compiler() { return Compiler; }

private:
  enum class Flow { Normal, Return };

  Flow execStmt(const Stmt *S, std::shared_ptr<Env> &E);
  Flow execBlock(const BlockStmt *B, std::shared_ptr<Env> &E);
  Value evalExpr(const Expr *E, std::shared_ptr<Env> &Ev);
  Value evalCall(const CallExpr *E, std::shared_ptr<Env> &Ev);
  Value callFunction(const FuncDecl *F, std::vector<Value> Args,
                     std::shared_ptr<Env> Captured);
  Value *evalLValue(const Expr *E, std::shared_ptr<Env> &Ev);

  /// Reads through tracked cells, recording a violation on dead ones.
  Value derefForAccess(const Value &V, SourceLoc Loc, const char *What);

  const FuncDecl *findFunction(const std::string &Name) const;
  bool step() {
    if (++Steps > MaxSteps) {
      trap("step budget exhausted (infinite loop?)");
      return false;
    }
    return !Trapped;
  }

  VaultCompiler &Compiler;
  std::map<std::string, Builtin> Builtins;
  rt::RegionManager Regions;
  net::SocketWorld Sockets;
  gdi::GdiWorld Gdi;
  lock::MutexWorld Locks;
  std::vector<std::string> Violations;
  std::vector<std::string> Output;
  Value Result;
  Value ReturnSlot;
  bool Trapped = false;
  std::string TrapMsg;
  size_t Steps = 0;
};

/// Installs the standard builtins: print/assert, the REGION interface,
/// the socket library, and FILE open/close.
void registerDefaultBuiltins(Interp &I);

} // namespace vault::interp

#endif // VAULT_INTERP_INTERP_H
