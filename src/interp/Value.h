//===- Value.h - Interpreter values -----------------------------*- C++ -*-===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Run-time values of the Vault interpreter. Keys and guards have no
/// run-time representation (the paper's erasure property) — but
/// tracked heap cells and region-allocated records carry *liveness*
/// bits so the interpreter can serve as the dynamic oracle: a program
/// that the checker accepts must never trip one of these bits.
///
//===----------------------------------------------------------------------===//

#ifndef VAULT_INTERP_VALUE_H
#define VAULT_INTERP_VALUE_H

#include "ast/Ast.h"

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace vault::interp {

class Value;
struct Env;

struct StructData {
  std::map<std::string, Value> Fields;
};

struct VariantData {
  std::string Tag;
  std::vector<Value> Payload;
};

/// A tracked heap cell (or region-allocated record when Region != 0).
struct CellData {
  std::shared_ptr<Value> Inner;
  bool Alive = true;
  uint64_t Region = 0; ///< Owning region handle, 0 for `new tracked`.
  /// Guarding mutex handle, 0 when unguarded. Accesses while the mutex
  /// is not locked are recorded as unguarded-access violations.
  uint64_t GuardMutex = 0;
  /// Set when this cell is a borrow alias that has been revoked by
  /// `endborrow`; any later access through it is a violation.
  bool Revoked = false;
};

struct ArrayData {
  std::vector<Value> Elems;
};

struct VmBox;

/// A function value: a top-level or nested function plus its captured
/// environment. The tree-walker fills `Captured`; the VM fills
/// `VmProto` (an opaque vm::Chunk pointer) plus `VmUpvals`.
struct FuncData {
  const FuncDecl *Decl = nullptr;
  std::shared_ptr<Env> Captured;
  const void *VmProto = nullptr;
  std::vector<std::shared_ptr<VmBox>> VmUpvals;
};

class Value {
public:
  enum class Kind : uint8_t {
    Unit,
    Int,
    Bool,
    Byte,
    Str,
    Struct,
    Variant,
    Tracked,
    Region, ///< Opaque region handle.
    Handle, ///< Other opaque handle (socket, file, ...), tagged.
    Array,
    Tuple,
    Func,
  };

  Value() = default;

  static Value unit() { return Value(); }
  static Value intV(int64_t I);
  static Value boolV(bool B);
  static Value byteV(uint8_t B);
  static Value strV(std::string S);
  static Value structV(std::shared_ptr<StructData> D);
  static Value variantV(std::shared_ptr<VariantData> D);
  static Value trackedV(std::shared_ptr<CellData> C);
  static Value regionV(uint64_t Handle);
  static Value handleV(std::string Tag, uint64_t Handle);
  static Value arrayV(std::shared_ptr<ArrayData> A);
  static Value tupleV(std::vector<Value> Elems);
  static Value funcV(std::shared_ptr<FuncData> F);

  Kind kind() const { return K; }
  bool isUnit() const { return K == Kind::Unit; }

  int64_t asInt() const { return I; }
  bool asBool() const { return I != 0; }
  const std::string &asStr() const { return S; }
  uint64_t handle() const { return static_cast<uint64_t>(I); }
  const std::string &handleTag() const { return S; }

  const std::shared_ptr<StructData> &structData() const { return Struct; }
  const std::shared_ptr<VariantData> &variantData() const { return Var; }
  const std::shared_ptr<CellData> &cell() const { return Cell; }
  const std::shared_ptr<ArrayData> &array() const { return Arr; }
  const std::shared_ptr<FuncData> &func() const { return Fn; }
  std::vector<Value> &tupleElems() { return Tup; }
  const std::vector<Value> &tupleElems() const { return Tup; }

  /// Structural equality on scalars and variants (tags); reference
  /// equality on cells.
  bool equals(const Value &O) const;

  /// Debug / print rendering.
  std::string str() const;

private:
  Kind K = Kind::Unit;
  int64_t I = 0;
  std::string S;
  std::shared_ptr<StructData> Struct;
  std::shared_ptr<VariantData> Var;
  std::shared_ptr<CellData> Cell;
  std::shared_ptr<ArrayData> Arr;
  std::shared_ptr<FuncData> Fn;
  std::vector<Value> Tup;
};

/// A heap box for a local captured by a nested function in the
/// bytecode VM. `Bound` mirrors the tree-walker's "has this name been
/// declared yet on this execution of its block" semantics.
struct VmBox {
  Value V;
  bool Bound = false;
};

/// A lexical environment frame; frames are shared so closures can
/// capture them.
struct Env {
  std::shared_ptr<Env> Parent;
  std::map<std::string, Value> Vars;

  Value *lookup(const std::string &Name) {
    auto It = Vars.find(Name);
    if (It != Vars.end())
      return &It->second;
    return Parent ? Parent->lookup(Name) : nullptr;
  }
};

} // namespace vault::interp

#endif // VAULT_INTERP_VALUE_H
