//===- Value.cpp ----------------------------------------------------------===//

#include "interp/Value.h"

using namespace vault::interp;

Value Value::intV(int64_t I) {
  Value V;
  V.K = Kind::Int;
  V.I = I;
  return V;
}

Value Value::boolV(bool B) {
  Value V;
  V.K = Kind::Bool;
  V.I = B ? 1 : 0;
  return V;
}

Value Value::byteV(uint8_t B) {
  Value V;
  V.K = Kind::Byte;
  V.I = B;
  return V;
}

Value Value::strV(std::string S) {
  Value V;
  V.K = Kind::Str;
  V.S = std::move(S);
  return V;
}

Value Value::structV(std::shared_ptr<StructData> D) {
  Value V;
  V.K = Kind::Struct;
  V.Struct = std::move(D);
  return V;
}

Value Value::variantV(std::shared_ptr<VariantData> D) {
  Value V;
  V.K = Kind::Variant;
  V.Var = std::move(D);
  return V;
}

Value Value::trackedV(std::shared_ptr<CellData> C) {
  Value V;
  V.K = Kind::Tracked;
  V.Cell = std::move(C);
  return V;
}

Value Value::regionV(uint64_t Handle) {
  Value V;
  V.K = Kind::Region;
  V.I = static_cast<int64_t>(Handle);
  return V;
}

Value Value::handleV(std::string Tag, uint64_t Handle) {
  Value V;
  V.K = Kind::Handle;
  V.S = std::move(Tag);
  V.I = static_cast<int64_t>(Handle);
  return V;
}

Value Value::arrayV(std::shared_ptr<ArrayData> A) {
  Value V;
  V.K = Kind::Array;
  V.Arr = std::move(A);
  return V;
}

Value Value::tupleV(std::vector<Value> Elems) {
  Value V;
  V.K = Kind::Tuple;
  V.Tup = std::move(Elems);
  return V;
}

Value Value::funcV(std::shared_ptr<FuncData> F) {
  Value V;
  V.K = Kind::Func;
  V.Fn = std::move(F);
  return V;
}

bool Value::equals(const Value &O) const {
  if (K != O.K)
    return false;
  switch (K) {
  case Kind::Unit:
    return true;
  case Kind::Int:
  case Kind::Bool:
  case Kind::Byte:
    return I == O.I;
  case Kind::Str:
    return S == O.S;
  case Kind::Region:
  case Kind::Handle:
    return I == O.I && S == O.S;
  case Kind::Variant: {
    if (Var->Tag != O.Var->Tag ||
        Var->Payload.size() != O.Var->Payload.size())
      return false;
    for (size_t Idx = 0; Idx != Var->Payload.size(); ++Idx)
      if (!Var->Payload[Idx].equals(O.Var->Payload[Idx]))
        return false;
    return true;
  }
  case Kind::Tracked:
    return Cell == O.Cell;
  case Kind::Struct:
    return Struct == O.Struct;
  case Kind::Array:
    return Arr == O.Arr;
  case Kind::Func:
    return Fn == O.Fn;
  case Kind::Tuple: {
    if (Tup.size() != O.Tup.size())
      return false;
    for (size_t Idx = 0; Idx != Tup.size(); ++Idx)
      if (!Tup[Idx].equals(O.Tup[Idx]))
        return false;
    return true;
  }
  }
  return false;
}

std::string Value::str() const {
  switch (K) {
  case Kind::Unit:
    return "()";
  case Kind::Int:
    return std::to_string(I);
  case Kind::Bool:
    return I ? "true" : "false";
  case Kind::Byte:
    return std::to_string(I) + "b";
  case Kind::Str:
    return "\"" + S + "\"";
  case Kind::Struct: {
    std::string Out = "{";
    bool First = true;
    for (const auto &[Name, V] : Struct->Fields) {
      if (!First)
        Out += ", ";
      First = false;
      Out += Name + "=" + V.str();
    }
    return Out + "}";
  }
  case Kind::Variant: {
    std::string Out = "'" + Var->Tag;
    if (!Var->Payload.empty()) {
      Out += "(";
      bool First = true;
      for (const Value &V : Var->Payload) {
        if (!First)
          Out += ", ";
        First = false;
        Out += V.str();
      }
      Out += ")";
    }
    return Out;
  }
  case Kind::Tracked:
    return Cell ? (Cell->Alive ? "tracked " +
                                     (Cell->Inner ? Cell->Inner->str() : "?")
                               : "<dead>")
                : "<null>";
  case Kind::Region:
    return "region#" + std::to_string(I);
  case Kind::Handle:
    return S + "#" + std::to_string(I);
  case Kind::Array:
    return "[" + std::to_string(Arr ? Arr->Elems.size() : 0) + " elems]";
  case Kind::Tuple: {
    std::string Out = "(";
    bool First = true;
    for (const Value &V : Tup) {
      if (!First)
        Out += ", ";
      First = false;
      Out += V.str();
    }
    return Out + ")";
  }
  case Kind::Func:
    return "<fn " + (Fn && Fn->Decl ? Fn->Decl->name() : "?") + ">";
  }
  return "?";
}
