//===- Machine.h - Shared substrate for the dynamic-oracle engines -*- C++ -*-===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execution substrate shared by both dynamic-oracle engines: the
/// tree-walking interpreter (interp::Interp) and the register-bytecode
/// VM (vm::Vm). A Machine owns the oracle worlds (regions, sockets,
/// GDI, mutexes), the violation/output/trap state, the builtin table,
/// and the step budget. Engines differ only in *how* they execute the
/// checked AST; everything observable — output lines, violations,
/// traps, leak counts — lives here so the differential harness can
/// compare engines field by field.
///
//===----------------------------------------------------------------------===//

#ifndef VAULT_INTERP_MACHINE_H
#define VAULT_INTERP_MACHINE_H

#include "interp/Value.h"
#include "gdi/Gdi.h"
#include "locks/Mutex.h"
#include "runtime/Region.h"
#include "sema/Checker.h"
#include "sockets/Socket.h"

#include <functional>

namespace vault::interp {

class Machine {
public:
  using Builtin = std::function<Value(Machine &, std::vector<Value> &)>;

  explicit Machine(VaultCompiler &C);
  virtual ~Machine() = default;

  /// Runs function \p Name with \p Args. Returns false if the function
  /// is missing or the program trapped (see trapMessage()).
  virtual bool run(const std::string &Name = "main",
                   std::vector<Value> Args = {}) = 0;

  Value result() const { return Result; }

  /// Registers (or overrides) a builtin; also reachable as
  /// "Module.name" through any module qualifier.
  void registerBuiltin(const std::string &Name, Builtin Fn) {
    Builtins[Name] = std::move(Fn);
  }

  // -- Oracle state -----------------------------------------------------
  rt::RegionManager &regions() { return Regions; }
  net::SocketWorld &sockets() { return Sockets; }
  gdi::GdiWorld &gdi() { return Gdi; }
  lock::MutexWorld &locks() { return Locks; }

  void violation(const std::string &Msg) { Violations.push_back(Msg); }
  const std::vector<std::string> &violations() const { return Violations; }
  /// Total dynamic protocol violations including substrate-detected
  /// ones and end-of-run leaks.
  unsigned totalViolations() const;

  const std::vector<std::string> &output() const { return Output; }
  void print(std::string Line) { Output.push_back(std::move(Line)); }

  bool trapped() const { return Trapped; }
  const std::string &trapMessage() const { return TrapMsg; }
  void trap(const std::string &Msg) {
    if (!Trapped) {
      Trapped = true;
      TrapMsg = Msg;
    }
  }

  /// Budget guard: aborts runaway programs deterministically. Both
  /// engines charge one step per loop iteration and per function-call
  /// entry — the same abstract points — so a given program exhausts
  /// the budget at the identical place under either engine.
  size_t MaxSteps = 10'000'000;

  VaultCompiler &compiler() { return Compiler; }

protected:
  /// Charges one execution step; on exhaustion traps with the
  /// structured "interp-step-limit" message shared by both engines.
  bool chargeStep() {
    if (++Steps > MaxSteps) {
      trap("interp-step-limit: exceeded " + std::to_string(MaxSteps) +
           " steps");
      return false;
    }
    return !Trapped;
  }

  /// Reads through tracked cells, recording a violation on dead ones.
  Value derefForAccess(const Value &V, const char *What);

  const FuncDecl *findFunction(const std::string &Name) const;

  VaultCompiler &Compiler;
  std::map<std::string, Builtin> Builtins;
  rt::RegionManager Regions;
  net::SocketWorld Sockets;
  gdi::GdiWorld Gdi;
  lock::MutexWorld Locks;
  std::vector<std::string> Violations;
  std::vector<std::string> Output;
  Value Result;
  bool Trapped = false;
  std::string TrapMsg;
  size_t Steps = 0;
};

/// Installs the standard builtins: print/assert, the REGION interface,
/// the socket library, and FILE open/close.
void registerDefaultBuiltins(Machine &M);

} // namespace vault::interp

#endif // VAULT_INTERP_MACHINE_H
