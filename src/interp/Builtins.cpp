//===- Builtins.cpp - Standard interpreter builtins -----------------------===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
// Implements the externally-declared functions the corpus programs
// rely on: the REGION interface (§2.2), the socket library (§2.3),
// FILE open/close (§2.1), and basic I/O/testing helpers. Each builtin
// operates on the interpreter's substrate instances so that dynamic
// protocol violations are recorded by the oracle.
//
//===----------------------------------------------------------------------===//

#include "interp/Machine.h"

using namespace vault;
using namespace vault::interp;

static uint16_t portOf(Machine &I, const Value &Addr) {
  if (Addr.kind() == Value::Kind::Struct && Addr.structData()) {
    auto It = Addr.structData()->Fields.find("port");
    if (It != Addr.structData()->Fields.end())
      return static_cast<uint16_t>(It->second.asInt());
  }
  (void)I;
  return 0;
}

static Value sockStatus(net::SockError E) {
  auto D = std::make_shared<VariantData>();
  if (E == net::SockError::Ok) {
    D->Tag = "Ok";
  } else {
    D->Tag = "Error";
    D->Payload.push_back(Value::intV(static_cast<int64_t>(E)));
  }
  return Value::variantV(std::move(D));
}

void vault::interp::registerDefaultBuiltins(Machine &I) {
  // -- I/O and testing helpers -----------------------------------------
  I.registerBuiltin("print", [](Machine &It, std::vector<Value> &Args) {
    It.print(Args.empty() ? "" : (Args[0].kind() == Value::Kind::Str
                                      ? Args[0].asStr()
                                      : Args[0].str()));
    return Value::unit();
  });
  I.registerBuiltin("print_int", [](Machine &It, std::vector<Value> &Args) {
    It.print(Args.empty() ? "0" : std::to_string(Args[0].asInt()));
    return Value::unit();
  });
  I.registerBuiltin("expect", [](Machine &It, std::vector<Value> &Args) {
    if (!Args.empty() && !Args[0].asBool())
      It.trap("expect() failed");
    return Value::unit();
  });

  // -- The REGION interface (paper Fig. 1) ------------------------------
  I.registerBuiltin("create", [](Machine &It, std::vector<Value> &) {
    return Value::regionV(It.regions().create());
  });
  I.registerBuiltin("delete", [](Machine &It, std::vector<Value> &Args) {
    if (Args.empty() || Args[0].kind() != Value::Kind::Region) {
      It.violation("Region.delete of a non-region value");
      return Value::unit();
    }
    if (!It.regions().destroy(Args[0].handle()))
      It.violation("Region.delete of a dead region (double delete)");
    return Value::unit();
  });

  // -- FILEs (paper §2.1) ------------------------------------------------
  I.registerBuiltin("fopen", [](Machine &It, std::vector<Value> &Args) {
    auto Cell = std::make_shared<CellData>();
    Cell->Inner = std::make_shared<Value>(
        Value::strV(Args.empty() ? "" : Args[0].asStr()));
    (void)It;
    return Value::trackedV(std::move(Cell));
  });
  I.registerBuiltin("fclose", [](Machine &It, std::vector<Value> &Args) {
    if (Args.empty() || Args[0].kind() != Value::Kind::Tracked ||
        !Args[0].cell()) {
      It.violation("fclose of a non-file value");
      return Value::unit();
    }
    if (!Args[0].cell()->Alive)
      It.violation("fclose of an already-closed file");
    Args[0].cell()->Alive = false;
    return Value::unit();
  });

  // -- Sockets (paper Fig. 3 / §2.3) -------------------------------------
  I.registerBuiltin("socket", [](Machine &It, std::vector<Value> &) {
    return Value::handleV("sock", It.sockets().socketCreate());
  });
  I.registerBuiltin("bind", [](Machine &It, std::vector<Value> &Args) {
    if (Args.size() < 2)
      return Value::unit();
    It.sockets().bind(Args[0].handle(), portOf(It, Args[1]));
    return Value::unit();
  });
  // Fallible variant returning a status value (§2.3's improved bind).
  I.registerBuiltin("bind2", [](Machine &It, std::vector<Value> &Args) {
    if (Args.size() < 2)
      return sockStatus(net::SockError::BadHandle);
    return sockStatus(It.sockets().bind(Args[0].handle(), portOf(It, Args[1])));
  });
  I.registerBuiltin("listen", [](Machine &It, std::vector<Value> &Args) {
    if (Args.size() < 2)
      return Value::unit();
    It.sockets().listen(Args[0].handle(),
                        static_cast<unsigned>(Args[1].asInt()));
    return Value::unit();
  });
  I.registerBuiltin("accept", [](Machine &It, std::vector<Value> &Args) {
    if (Args.empty())
      return Value::handleV("sock", 0);
    net::SocketWorld::Handle Conn = 0;
    It.sockets().accept(Args[0].handle(), Conn);
    return Value::handleV("sock", Conn);
  });
  I.registerBuiltin("receive", [](Machine &It, std::vector<Value> &Args) {
    if (Args.empty())
      return Value::unit();
    std::vector<uint8_t> Data;
    It.sockets().receive(Args[0].handle(), Data);
    if (Args.size() >= 2 && Args[1].kind() == Value::Kind::Array &&
        Args[1].array()) {
      auto &Elems = Args[1].array()->Elems;
      for (size_t B = 0; B != Data.size() && B < Elems.size(); ++B)
        Elems[B] = Value::byteV(Data[B]);
    }
    return Value::unit();
  });
  I.registerBuiltin("close", [](Machine &It, std::vector<Value> &Args) {
    if (!Args.empty())
      It.sockets().close(Args[0].handle());
    return Value::unit();
  });
  // Test helpers: connect a client to a listening port and send from
  // it, so accept and receive succeed deterministically.
  I.registerBuiltin("sim_client", [](Machine &It, std::vector<Value> &Args) {
    uint16_t Port = Args.empty() ? 0 : static_cast<uint16_t>(Args[0].asInt());
    auto H = It.sockets().socketCreate();
    It.sockets().connect(H, Port);
    return Value::handleV("sock", H);
  });
  I.registerBuiltin("sim_send", [](Machine &It, std::vector<Value> &Args) {
    if (Args.size() < 2)
      return Value::unit();
    std::string Msg =
        Args[1].kind() == Value::Kind::Str ? Args[1].asStr() : Args[1].str();
    It.sockets().send(Args[0].handle(),
                      std::vector<uint8_t>(Msg.begin(), Msg.end()));
    return Value::unit();
  });
  I.registerBuiltin("make_buffer", [](Machine &, std::vector<Value> &Args) {
    auto A = std::make_shared<ArrayData>();
    size_t N = Args.empty() ? 0 : static_cast<size_t>(Args[0].asInt());
    A->Elems.assign(N, Value::byteV(0));
    return Value::arrayV(std::move(A));
  });

  // -- Mutexes and guarded cells (the concurrency protocol domain) ------
  I.registerBuiltin("mutex_create", [](Machine &It, std::vector<Value> &) {
    return Value::handleV("mutex", It.locks().mutexCreate());
  });
  I.registerBuiltin("mutex_acquire", [](Machine &It, std::vector<Value> &Args) {
    if (!Args.empty())
      It.locks().acquire(Args[0].handle());
    return Value::unit();
  });
  I.registerBuiltin("mutex_release", [](Machine &It, std::vector<Value> &Args) {
    if (!Args.empty())
      It.locks().release(Args[0].handle());
    return Value::unit();
  });
  I.registerBuiltin("mutex_destroy", [](Machine &It, std::vector<Value> &Args) {
    if (!Args.empty())
      It.locks().destroy(Args[0].handle());
    return Value::unit();
  });
  // cell_new(mutex, val): a tracked cell whose accesses require the
  // mutex locked. Creating it is itself a guarded access.
  I.registerBuiltin("cell_new", [](Machine &It, std::vector<Value> &Args) {
    auto SD = std::make_shared<StructData>();
    SD->Fields["val"] =
        Value::intV(Args.size() >= 2 ? Args[1].asInt() : 0);
    auto Cell = std::make_shared<CellData>();
    Cell->Inner = std::make_shared<Value>(Value::structV(std::move(SD)));
    if (!Args.empty() && Args[0].kind() == Value::Kind::Handle) {
      Cell->GuardMutex = Args[0].handle();
      if (!It.locks().isLocked(Cell->GuardMutex))
        It.locks().unguardedAccess(Cell->GuardMutex, "cell_new");
    }
    return Value::trackedV(std::move(Cell));
  });

  // -- Graphics device contexts (the §6 "graphic interfaces" domain) ----
  I.registerBuiltin("sim_window", [](Machine &It, std::vector<Value> &Args) {
    std::string Title =
        !Args.empty() && Args[0].kind() == Value::Kind::Str ? Args[0].asStr()
                                                            : "window";
    return Value::handleV("hwnd", It.gdi().createWindow(Title));
  });
  I.registerBuiltin("BeginPaint", [](Machine &It, std::vector<Value> &Args) {
    gdi::GdiWorld::Handle Dc = 0;
    if (!Args.empty())
      It.gdi().beginPaint(Args[0].handle(), Dc);
    return Value::handleV("hdc", Dc);
  });
  I.registerBuiltin("EndPaint", [](Machine &It, std::vector<Value> &Args) {
    if (Args.size() >= 2)
      It.gdi().endPaint(Args[0].handle(), Args[1].handle());
    return Value::unit();
  });
  I.registerBuiltin("CreatePen", [](Machine &It, std::vector<Value> &Args) {
    int W = Args.empty() ? 1 : static_cast<int>(Args[0].asInt());
    uint32_t C = Args.size() >= 2 ? static_cast<uint32_t>(Args[1].asInt()) : 0;
    return Value::handleV("hpen", It.gdi().createPen(W, C));
  });
  I.registerBuiltin("DeletePen", [](Machine &It, std::vector<Value> &Args) {
    if (!Args.empty())
      It.gdi().deletePen(Args[0].handle());
    return Value::unit();
  });
  I.registerBuiltin("SelectPen", [](Machine &It, std::vector<Value> &Args) {
    gdi::GdiWorld::Handle Old = 0;
    if (Args.size() >= 2)
      It.gdi().selectPen(Args[0].handle(), Args[1].handle(), Old);
    return Value::handleV("oldpen", Old);
  });
  I.registerBuiltin("RestorePen", [](Machine &It, std::vector<Value> &Args) {
    if (Args.size() >= 2)
      It.gdi().restorePen(Args[0].handle(), Args[1].handle());
    return Value::unit();
  });
  I.registerBuiltin("MoveTo", [](Machine &It, std::vector<Value> &Args) {
    if (Args.size() >= 3)
      It.gdi().moveTo(Args[0].handle(), static_cast<int>(Args[1].asInt()),
                      static_cast<int>(Args[2].asInt()));
    return Value::unit();
  });
  I.registerBuiltin("LineTo", [](Machine &It, std::vector<Value> &Args) {
    if (Args.size() >= 3)
      It.gdi().lineTo(Args[0].handle(), static_cast<int>(Args[1].asInt()),
                      static_cast<int>(Args[2].asInt()));
    return Value::unit();
  });
}
