//===- KeySet.h - Keys and held-key sets ------------------------*- C++ -*-===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Keys are compile-time tokens denoting run-time resources (§2.1).
/// The KeyTable allocates them; the HeldKeySet is the checker's flow
/// fact: the set of keys held at a program point, each in a local
/// state. Keys can be neither duplicated nor lost — HeldKeySet's API
/// enforces this by making add-of-held and remove-of-unheld explicit
/// failures the checker turns into diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef VAULT_TYPES_KEYSET_H
#define VAULT_TYPES_KEYSET_H

#include "support/SmallVector.h"
#include "support/SourceManager.h"
#include "types/StateSet.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace vault {

/// Dense id of a key. 0 is invalid.
using KeySym = uint32_t;

inline constexpr KeySym InvalidKey = 0;

/// Origin and metadata of every key the checker ever creates.
///
/// Thread safety: create() may be called concurrently from pass-3
/// worker threads. Storage is chunked, and a chunk is never moved or
/// freed once published, so accessors stay lock-free. The supported
/// access pattern is the checker's: a thread reads only keys it
/// created itself or keys that existed before the workers were
/// spawned (global and signature keys).
class KeyTable {
public:
  enum class Origin : uint8_t {
    Global,      ///< `key IRQL @ ...;` — shared by all functions.
    Signature,   ///< A key parameter of some function signature.
    Local,       ///< Fresh key from tracked allocation / unpacking.
    Existential, ///< Placeholder bound inside a type alias body;
                 ///< instantiated to a fresh Local key on unpack.
  };

  KeyTable();
  ~KeyTable();
  KeyTable(const KeyTable &) = delete;
  KeyTable &operator=(const KeyTable &) = delete;

  /// Allocates a new key. \p Name is for diagnostics only and need not
  /// be unique.
  KeySym create(std::string Name, Origin O, SourceLoc Loc,
                const Stateset *Order = nullptr);

  /// Syms at or above this value denote thread-local scratch keys (see
  /// ScratchScope); they never enter shared state. The shared table is
  /// capped at 2M keys, far below this.
  static constexpr KeySym ScratchBase = KeySym(1) << 30;

  /// Reserves \p N contiguous slots (allocating their chunks eagerly)
  /// and returns the first reserved sym. The slots count as allocated
  /// — size() includes them — but hold empty entries until a
  /// WindowScope writer fills them; per the class access pattern, only
  /// the thread that fills a slot reads it before the workers join.
  KeySym reserve(size_t N);

  const std::string &name(KeySym K) const { return entry(K).Name; }
  Origin origin(KeySym K) const { return entry(K).O; }
  SourceLoc loc(KeySym K) const { return entry(K).Loc; }
  /// The stateset ordering this key's states live in, or null.
  const Stateset *order(KeySym K) const { return entry(K).Order; }
  bool isGlobal(KeySym K) const { return entry(K).O == Origin::Global; }

  /// Number a key is *displayed* with (e.g. "R#7" in key traces).
  /// Outside a DisplayScope this is the raw KeySym; inside one, keys
  /// are numbered from the scope's base in creation order, which makes
  /// rendered output independent of how concurrent checks interleave
  /// their allocations in the shared table.
  uint32_t displayId(KeySym K) const { return entry(K).Display; }

  size_t size() const { return Count.load(std::memory_order_acquire); }

  /// Frees every key. Callers must not retain KeySyms across a clear.
  void clear();

  /// RAII: while alive, keys created *on this thread* in this table
  /// are numbered Base+1, Base+2, ... for display purposes. Pass 3
  /// installs one per checked function (all with the same base), so
  /// display numbering restarts per function and is deterministic
  /// regardless of worker scheduling.
  class DisplayScope {
  public:
    DisplayScope(const KeyTable &T, uint32_t Base);
    ~DisplayScope();
    DisplayScope(const DisplayScope &) = delete;
    DisplayScope &operator=(const DisplayScope &) = delete;

  private:
    const KeyTable *SavedTable;
    uint32_t SavedBase;
    uint32_t SavedNext;
  };

  /// RAII: while alive, create() calls *on this thread* allocate
  /// thread-local scratch keys (syms from ScratchBase) instead of
  /// touching the shared table; accessors resolve scratch syms against
  /// the scope. The parallel signature-elaboration discovery pass uses
  /// this to learn how many keys a signature allocates without
  /// perturbing shared numbering.
  class ScratchScope {
  public:
    explicit ScratchScope(const KeyTable &T);
    ~ScratchScope();
    ScratchScope(const ScratchScope &) = delete;
    ScratchScope &operator=(const ScratchScope &) = delete;

    /// Keys created on this thread since the scope opened.
    size_t created() const;
  };

  /// RAII: while alive, create() calls *on this thread* fill the
  /// reserved slots [First, First+Len), in order and lock-free (the
  /// slots came from reserve()). Destruction asserts the window was
  /// filled exactly — a mismatch means the discovery pass miscounted.
  class WindowScope {
  public:
    WindowScope(KeyTable &T, KeySym First, uint32_t Len);
    ~WindowScope();
    WindowScope(const WindowScope &) = delete;
    WindowScope &operator=(const WindowScope &) = delete;
  };

private:
  struct Entry {
    std::string Name;
    Origin O;
    SourceLoc Loc;
    const Stateset *Order;
    uint32_t Display;
  };

  static constexpr size_t ChunkBits = 9; // 512 entries per chunk.
  static constexpr size_t ChunkSize = size_t(1) << ChunkBits;
  static constexpr size_t MaxChunks = 4096; // 2M keys per compilation.

  const Entry &entry(KeySym K) const {
    if (K >= ScratchBase)
      return scratchEntry(K);
    assert(K != InvalidKey && K <= size() && "bad key");
    size_t Idx = K - 1;
    return Chunks[Idx >> ChunkBits].load(std::memory_order_acquire)
        [Idx & (ChunkSize - 1)];
  }
  /// Resolves a scratch sym against this thread's active ScratchScope.
  const Entry &scratchEntry(KeySym K) const;

  struct ScratchTLS {
    const KeyTable *Table = nullptr;
    std::vector<Entry> Entries;
  };
  struct WindowTLS {
    KeyTable *Table = nullptr;
    size_t First = 0; ///< 0-based index of the first reserved slot.
    uint32_t Len = 0;
    uint32_t Next = 0;
  };
  static ScratchTLS &scratchTLS();
  static WindowTLS &windowTLS();

  std::unique_ptr<std::atomic<Entry *>[]> Chunks;
  std::atomic<size_t> Count{0};
  std::mutex CreateMutex;
};

/// Feeds a stable description of key \p K into \p H: raw id, display
/// id, name, origin, and the defining stateset (if any). The ids are
/// included deliberately — both can be rendered verbatim into
/// diagnostics ("R#7", "tracked(F#3)"), so any run in which they would
/// differ must produce a different fingerprint.
void hashKey(KeySym K, const KeyTable &Keys, Hasher &H);

/// A flat, sorted key renaming (source key -> target key), applied
/// *simultaneously* — a swap `{k1->k2, k2->k1}` exchanges the two
/// keys, it does not chain. Built by the join-point canonicalization;
/// replaces the std::map the joins used to allocate per call.
class KeyRename {
public:
  struct Pair {
    KeySym From;
    KeySym To;
  };

  /// Records From -> To. Keeps the table sorted by From; a duplicate
  /// From is an error (callers check before inserting).
  void add(KeySym From, KeySym To) {
    auto It = lowerBound(From);
    assert((It == Pairs.end() || It->From != From) && "duplicate source");
    Pairs.insert(It, Pair{From, To});
  }

  /// The target of \p K, or \p K itself when unmapped.
  KeySym map(KeySym K) const {
    auto It = lowerBound(K);
    return It != Pairs.end() && It->From == K ? It->To : K;
  }

  /// The target of \p K, or InvalidKey when unmapped (distinguishes
  /// "maps to itself" from "not in the table").
  KeySym lookup(KeySym K) const {
    auto It = lowerBound(K);
    return It != Pairs.end() && It->From == K ? It->To : InvalidKey;
  }

  bool contains(KeySym K) const {
    auto It = lowerBound(K);
    return It != Pairs.end() && It->From == K;
  }

  bool empty() const { return Pairs.empty(); }
  size_t size() const { return Pairs.size(); }
  auto begin() const { return Pairs.begin(); }
  auto end() const { return Pairs.end(); }

private:
  const Pair *lowerBound(KeySym K) const {
    return std::lower_bound(
        Pairs.begin(), Pairs.end(), K,
        [](const Pair &P, KeySym S) { return P.From < S; });
  }
  Pair *lowerBound(KeySym K) {
    return const_cast<Pair *>(
        static_cast<const KeyRename *>(this)->lowerBound(K));
  }

  SmallVector<Pair, 4> Pairs;
};

/// The held-key set: finite map from keys to their current local
/// states, ordered by key for stable diagnostics.
///
/// Representation: a sorted small-vector (inline capacity covers the
/// corpus — peak held-set sizes are single digits) plus a 64-bit
/// residue mask over `K & 63` for fast negative contains(). The mask
/// is a may-contain filter: remove() leaves bits stale rather than
/// rescanning, so a set bit still falls through to the binary search.
class HeldKeySet {
public:
  bool contains(KeySym K) const {
    if (!(Mask >> (K & 63) & 1))
      return false;
    auto It = lowerBound(K);
    return It != Entries.end() && It->Sym == K;
  }

  /// State of a held key; asserts that the key is held.
  const StateRef &stateOf(KeySym K) const {
    auto It = lowerBound(K);
    assert(It != Entries.end() && It->Sym == K && "key not held");
    return It->St;
  }

  /// Adds a key. Returns false (and leaves the set unchanged) if the
  /// key is already held — keys cannot be duplicated.
  bool add(KeySym K, StateRef S) {
    auto It = lowerBound(K);
    if (It != Entries.end() && It->Sym == K)
      return false;
    Entries.insert(It, Item{K, std::move(S)});
    Mask |= uint64_t(1) << (K & 63);
    return true;
  }

  /// Removes a key. Returns false if the key was not held.
  bool remove(KeySym K) {
    auto It = lowerBound(K);
    if (It == Entries.end() || It->Sym != K)
      return false;
    Entries.erase(It);
    return true;
  }

  /// Changes the state of a held key. Returns false if not held.
  bool transition(KeySym K, StateRef S) {
    auto It = lowerBound(K);
    if (It == Entries.end() || It->Sym != K)
      return false;
    It->St = std::move(S);
    return true;
  }

  size_t size() const { return Entries.size(); }
  bool empty() const { return Entries.empty(); }

  auto begin() const { return Entries.begin(); }
  auto end() const { return Entries.end(); }

  /// Renames keys according to \p Map, simultaneously (keys absent
  /// from the map keep their names). Returns false — leaving the set
  /// *unchanged* — if two held keys would land on the same name, since
  /// merging them would silently lose a key. (The previous std::map
  /// representation kept the first and dropped the second.) The join
  /// canonicalization pre-rejects every colliding shape, so a false
  /// return indicates a checker bug, not a user error.
  [[nodiscard]] bool renameKeys(const KeyRename &Map);

  /// Compatibility overload for the std::map-based callers (tests,
  /// benchmarks); same simultaneous-rename semantics.
  [[nodiscard]] bool renameKeys(const std::map<KeySym, KeySym> &Map);

  friend bool operator==(const HeldKeySet &A, const HeldKeySet &B) {
    return A.Entries == B.Entries;
  }

  /// Renders e.g. "{R@T, S@raw}" for diagnostics; key names resolved
  /// through \p Keys.
  std::string str(const KeyTable &Keys) const;

  /// Feeds a stable description of the held set (keys in deterministic
  /// order, with states) into \p H.
  void hashInto(const KeyTable &Keys, Hasher &H) const;

private:
  struct Item {
    KeySym Sym;
    StateRef St;

    friend bool operator==(const Item &A, const Item &B) {
      return A.Sym == B.Sym && A.St == B.St;
    }
  };

  const Item *lowerBound(KeySym K) const {
    return std::lower_bound(
        Entries.begin(), Entries.end(), K,
        [](const Item &I, KeySym S) { return I.Sym < S; });
  }
  Item *lowerBound(KeySym K) {
    return const_cast<Item *>(
        static_cast<const HeldKeySet *>(this)->lowerBound(K));
  }

  /// Sorted by Sym. Inline capacity 4: flow.peak_held_keys over the
  /// corpus rarely exceeds it, so branch/join snapshots stay
  /// allocation-free.
  SmallVector<Item, 4> Entries;
  /// May-contain filter: bit `K & 63` is set if a key with that
  /// residue was ever added.
  uint64_t Mask = 0;
};

} // namespace vault

#endif // VAULT_TYPES_KEYSET_H
