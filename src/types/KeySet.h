//===- KeySet.h - Keys and held-key sets ------------------------*- C++ -*-===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Keys are compile-time tokens denoting run-time resources (§2.1).
/// The KeyTable allocates them; the HeldKeySet is the checker's flow
/// fact: the set of keys held at a program point, each in a local
/// state. Keys can be neither duplicated nor lost — HeldKeySet's API
/// enforces this by making add-of-held and remove-of-unheld explicit
/// failures the checker turns into diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef VAULT_TYPES_KEYSET_H
#define VAULT_TYPES_KEYSET_H

#include "support/SourceManager.h"
#include "types/StateSet.h"

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace vault {

/// Dense id of a key. 0 is invalid.
using KeySym = uint32_t;

inline constexpr KeySym InvalidKey = 0;

/// Origin and metadata of every key the checker ever creates.
///
/// Thread safety: create() may be called concurrently from pass-3
/// worker threads. Storage is chunked, and a chunk is never moved or
/// freed once published, so accessors stay lock-free. The supported
/// access pattern is the checker's: a thread reads only keys it
/// created itself or keys that existed before the workers were
/// spawned (global and signature keys).
class KeyTable {
public:
  enum class Origin : uint8_t {
    Global,      ///< `key IRQL @ ...;` — shared by all functions.
    Signature,   ///< A key parameter of some function signature.
    Local,       ///< Fresh key from tracked allocation / unpacking.
    Existential, ///< Placeholder bound inside a type alias body;
                 ///< instantiated to a fresh Local key on unpack.
  };

  KeyTable();
  ~KeyTable();
  KeyTable(const KeyTable &) = delete;
  KeyTable &operator=(const KeyTable &) = delete;

  /// Allocates a new key. \p Name is for diagnostics only and need not
  /// be unique.
  KeySym create(std::string Name, Origin O, SourceLoc Loc,
                const Stateset *Order = nullptr);

  const std::string &name(KeySym K) const { return entry(K).Name; }
  Origin origin(KeySym K) const { return entry(K).O; }
  SourceLoc loc(KeySym K) const { return entry(K).Loc; }
  /// The stateset ordering this key's states live in, or null.
  const Stateset *order(KeySym K) const { return entry(K).Order; }
  bool isGlobal(KeySym K) const { return entry(K).O == Origin::Global; }

  /// Number a key is *displayed* with (e.g. "R#7" in key traces).
  /// Outside a DisplayScope this is the raw KeySym; inside one, keys
  /// are numbered from the scope's base in creation order, which makes
  /// rendered output independent of how concurrent checks interleave
  /// their allocations in the shared table.
  uint32_t displayId(KeySym K) const { return entry(K).Display; }

  size_t size() const { return Count.load(std::memory_order_acquire); }

  /// Frees every key. Callers must not retain KeySyms across a clear.
  void clear();

  /// RAII: while alive, keys created *on this thread* in this table
  /// are numbered Base+1, Base+2, ... for display purposes. Pass 3
  /// installs one per checked function (all with the same base), so
  /// display numbering restarts per function and is deterministic
  /// regardless of worker scheduling.
  class DisplayScope {
  public:
    DisplayScope(const KeyTable &T, uint32_t Base);
    ~DisplayScope();
    DisplayScope(const DisplayScope &) = delete;
    DisplayScope &operator=(const DisplayScope &) = delete;

  private:
    const KeyTable *SavedTable;
    uint32_t SavedBase;
    uint32_t SavedNext;
  };

private:
  struct Entry {
    std::string Name;
    Origin O;
    SourceLoc Loc;
    const Stateset *Order;
    uint32_t Display;
  };

  static constexpr size_t ChunkBits = 9; // 512 entries per chunk.
  static constexpr size_t ChunkSize = size_t(1) << ChunkBits;
  static constexpr size_t MaxChunks = 4096; // 2M keys per compilation.

  const Entry &entry(KeySym K) const {
    assert(K != InvalidKey && K <= size() && "bad key");
    size_t Idx = K - 1;
    return Chunks[Idx >> ChunkBits].load(std::memory_order_acquire)
        [Idx & (ChunkSize - 1)];
  }

  std::unique_ptr<std::atomic<Entry *>[]> Chunks;
  std::atomic<size_t> Count{0};
  std::mutex CreateMutex;
};

/// Feeds a stable description of key \p K into \p H: raw id, display
/// id, name, origin, and the defining stateset (if any). The ids are
/// included deliberately — both can be rendered verbatim into
/// diagnostics ("R#7", "tracked(F#3)"), so any run in which they would
/// differ must produce a different fingerprint.
void hashKey(KeySym K, const KeyTable &Keys, Hasher &H);

/// The held-key set: finite map from keys to their current local
/// states. Deterministically ordered for stable diagnostics.
class HeldKeySet {
public:
  bool contains(KeySym K) const { return Entries.count(K) != 0; }

  /// State of a held key; asserts that the key is held.
  const StateRef &stateOf(KeySym K) const {
    auto It = Entries.find(K);
    assert(It != Entries.end() && "key not held");
    return It->second;
  }

  /// Adds a key. Returns false (and leaves the set unchanged) if the
  /// key is already held — keys cannot be duplicated.
  bool add(KeySym K, StateRef S) {
    return Entries.emplace(K, std::move(S)).second;
  }

  /// Removes a key. Returns false if the key was not held.
  bool remove(KeySym K) { return Entries.erase(K) != 0; }

  /// Changes the state of a held key. Returns false if not held.
  bool transition(KeySym K, StateRef S) {
    auto It = Entries.find(K);
    if (It == Entries.end())
      return false;
    It->second = std::move(S);
    return true;
  }

  size_t size() const { return Entries.size(); }
  bool empty() const { return Entries.empty(); }

  auto begin() const { return Entries.begin(); }
  auto end() const { return Entries.end(); }

  /// Renames keys according to \p Map (keys absent from the map keep
  /// their names). Used by the join-point canonicalization.
  void renameKeys(const std::map<KeySym, KeySym> &Map);

  friend bool operator==(const HeldKeySet &A, const HeldKeySet &B) {
    return A.Entries == B.Entries;
  }

  /// Renders e.g. "{R@T, S@raw}" for diagnostics; key names resolved
  /// through \p Keys.
  std::string str(const KeyTable &Keys) const;

  /// Feeds a stable description of the held set (keys in deterministic
  /// order, with states) into \p H.
  void hashInto(const KeyTable &Keys, Hasher &H) const;

private:
  std::map<KeySym, StateRef> Entries;
};

} // namespace vault

#endif // VAULT_TYPES_KEYSET_H
