//===- Substitution.cpp ---------------------------------------------------===//

#include "types/Substitution.h"

using namespace vault;

StateRef vault::substState(const StateRef &State, const Subst &S) {
  if (!State.isVar())
    return State;
  auto It = S.StateVars.find(State.varId());
  return It != S.StateVars.end() ? It->second : State;
}

GenArg vault::substGenArg(TypeContext &Ctx, const GenArg &A, const Subst &S) {
  switch (A.K) {
  case Kind::Type:
    return GenArg::type(substType(Ctx, A.T, S));
  case Kind::Key:
    return GenArg::key(S.mapKey(A.Key));
  case Kind::State:
    return GenArg::state(substState(A.State, S));
  case Kind::KeySet:
    return A;
  }
  return A;
}

const Type *vault::substType(TypeContext &Ctx, const Type *T, const Subst &S) {
  if (!T || S.empty())
    return T;
  switch (T->kind()) {
  case TyKind::Prim:
  case TyKind::Func:
  case TyKind::Error:
    return T;
  case TyKind::TypeVar: {
    auto It = S.TypeVars.find(cast<TypeVarType>(T)->param());
    return It != S.TypeVars.end() ? It->second : T;
  }
  case TyKind::Struct: {
    const auto *St = cast<StructType>(T);
    std::vector<GenArg> Args;
    Args.reserve(St->args().size());
    for (const GenArg &A : St->args())
      Args.push_back(substGenArg(Ctx, A, S));
    return Ctx.make<StructType>(St->decl(), std::move(Args));
  }
  case TyKind::Abstract: {
    const auto *Ab = cast<AbstractType>(T);
    std::vector<GenArg> Args;
    Args.reserve(Ab->args().size());
    for (const GenArg &A : Ab->args())
      Args.push_back(substGenArg(Ctx, A, S));
    return Ctx.make<AbstractType>(Ab->decl(), std::move(Args));
  }
  case TyKind::Variant: {
    const auto *V = cast<VariantType>(T);
    std::vector<GenArg> Args;
    Args.reserve(V->args().size());
    for (const GenArg &A : V->args())
      Args.push_back(substGenArg(Ctx, A, S));
    return Ctx.make<VariantType>(V->decl(), std::move(Args));
  }
  case TyKind::Tracked: {
    const auto *Tr = cast<TrackedType>(T);
    return Ctx.make<TrackedType>(substType(Ctx, Tr->inner(), S),
                                 S.mapKey(Tr->key()));
  }
  case TyKind::AnonTracked: {
    const auto *Tr = cast<AnonTrackedType>(T);
    return Ctx.make<AnonTrackedType>(substType(Ctx, Tr->inner(), S),
                                     substState(Tr->state(), S));
  }
  case TyKind::Guarded: {
    const auto *G = cast<GuardedType>(T);
    std::vector<GuardedType::Guard> Guards;
    Guards.reserve(G->guards().size());
    for (const GuardedType::Guard &Gu : G->guards())
      Guards.push_back(
          GuardedType::Guard{S.mapKey(Gu.Key), substState(Gu.Required, S)});
    return Ctx.make<GuardedType>(std::move(Guards),
                                 substType(Ctx, G->inner(), S));
  }
  case TyKind::Tuple: {
    const auto *Tu = cast<TupleType>(T);
    std::vector<const Type *> Elems;
    Elems.reserve(Tu->elems().size());
    for (const Type *E : Tu->elems())
      Elems.push_back(substType(Ctx, E, S));
    return Ctx.make<TupleType>(std::move(Elems));
  }
  case TyKind::Array:
    return Ctx.make<ArrayType>(substType(Ctx, cast<ArrayType>(T)->elem(), S));
  }
  return T;
}
