//===- Kind.h - Kinds of the internal type language -------------*- C++ -*-===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The kind system of the paper's internal type language (Fig. 6):
/// kinds ::= Type | Key | KeySet | State.
///
//===----------------------------------------------------------------------===//

#ifndef VAULT_TYPES_KIND_H
#define VAULT_TYPES_KIND_H

#include <cstdint>

namespace vault {

enum class Kind : uint8_t {
  Type,
  Key,
  KeySet,
  State,
};

const char *kindName(Kind K);

} // namespace vault

#endif // VAULT_TYPES_KIND_H
