//===- TypeContext.cpp ----------------------------------------------------===//

#include "types/TypeContext.h"

using namespace vault;

thread_local TypeArena *TypeContext::ActiveArena = nullptr;

TypeContext::TypeContext() { initPrims(); }

void TypeContext::initPrims() {
  IntTy = make<PrimType>(PrimKind::Int);
  BoolTy = make<PrimType>(PrimKind::Bool);
  ByteTy = make<PrimType>(PrimKind::Byte);
  VoidTy = make<PrimType>(PrimKind::Void);
  StringTy = make<PrimType>(PrimKind::String);
  ErrTy = make<ErrorType>();
}

void TypeContext::adopt(TypeArena &&A) {
  Types.insert(Types.end(), std::make_move_iterator(A.Types.begin()),
               std::make_move_iterator(A.Types.end()));
  Sigs.insert(Sigs.end(), std::make_move_iterator(A.Sigs.begin()),
              std::make_move_iterator(A.Sigs.end()));
  A.Types.clear();
  A.Sigs.clear();
}

void TypeContext::reset() {
  assert(!ActiveArena && "reset inside an arena scope");
  Types.clear();
  Sigs.clear();
  Statesets.clear();
  Keys.clear();
  initPrims();
}

const PrimType *TypeContext::primType(PrimKind K) const {
  switch (K) {
  case PrimKind::Int:
    return IntTy;
  case PrimKind::Bool:
    return BoolTy;
  case PrimKind::Byte:
    return ByteTy;
  case PrimKind::Void:
    return VoidTy;
  case PrimKind::String:
    return StringTy;
  }
  return IntTy;
}

const Stateset *
TypeContext::addStateset(std::string Name,
                         std::vector<std::vector<std::string>> Ranks) {
  if (Statesets.count(Name))
    return nullptr;
  auto S = std::make_unique<Stateset>(Name, std::move(Ranks));
  const Stateset *Raw = S.get();
  Statesets.emplace(std::move(Name), std::move(S));
  return Raw;
}

const Stateset *TypeContext::findStateset(const std::string &Name) const {
  auto It = Statesets.find(Name);
  return It != Statesets.end() ? It->second.get() : nullptr;
}

bool TypeContext::isKnownStateName(const std::string &State) const {
  for (const auto &[Name, Set] : Statesets)
    if (Set->contains(State))
      return true;
  return false;
}
