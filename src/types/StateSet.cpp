//===- StateSet.cpp -------------------------------------------------------===//

#include "types/StateSet.h"

#include <cassert>

using namespace vault;

Stateset::Stateset(std::string Name,
                   std::vector<std::vector<std::string>> Ranks)
    : Name(std::move(Name)) {
  unsigned Rank = 0;
  for (const auto &Group : Ranks) {
    for (const std::string &S : Group) {
      States.push_back(S);
      RankOf.push_back(Rank);
    }
    ++Rank;
  }
}

std::optional<unsigned> Stateset::indexOf(const std::string &State) const {
  for (unsigned I = 0, E = static_cast<unsigned>(States.size()); I != E; ++I)
    if (States[I] == State)
      return I;
  return std::nullopt;
}

bool Stateset::leq(const std::string &A, const std::string &B) const {
  std::optional<unsigned> IA = indexOf(A), IB = indexOf(B);
  assert(IA && IB && "states must belong to the stateset");
  if (*IA == *IB)
    return true;
  // Same rank but different states: incomparable.
  if (RankOf[*IA] == RankOf[*IB])
    return false;
  return RankOf[*IA] < RankOf[*IB];
}

void Stateset::hashInto(Hasher &H) const {
  H.str(Name);
  H.u64(States.size());
  for (size_t I = 0; I < States.size(); ++I) {
    H.str(States[I]);
    H.u32(RankOf[I]);
  }
}

void StateRef::hashInto(Hasher &H) const {
  H.u8(static_cast<uint8_t>(K));
  H.str(StateName);
  H.u32(VarId);
  H.u8(Strict);
}

std::string StateRef::str() const {
  switch (K) {
  case Kind::Top:
    return "T";
  case Kind::Name:
    return StateName;
  case Kind::Var: {
    std::string S = "$" + std::to_string(VarId);
    if (!StateName.empty())
      S += (Strict ? "<" : "<=") + StateName;
    return S;
  }
  }
  return "?";
}

bool vault::stateSatisfies(const StateRef &Held, const StateRef &Required,
                           const Stateset *Order) {
  switch (Required.kind()) {
  case StateRef::Kind::Top:
    return true;
  case StateRef::Kind::Name:
    // A symbolic held state (checking a body polymorphic in the state)
    // never satisfies a concrete requirement.
    return Held.isName() && Held.nameOrBound() == Required.nameOrBound();
  case StateRef::Kind::Var: {
    if (Required.nameOrBound().empty())
      return true; // Unbounded variable matches any state.
    // Symbolic held state: satisfied iff its own bound implies the
    // required bound (held <= boundH <= boundR).
    if (Held.isVar()) {
      if (Held.varId() == Required.varId())
        return true;
      const std::string &BH = Held.nameOrBound();
      const std::string &BR = Required.nameOrBound();
      if (BH.empty())
        return false;
      if (!Order)
        return BH == BR;
      if (!Order->contains(BH) || !Order->contains(BR))
        return false;
      return Required.strictBound() ? Order->lt(BH, BR) : Order->leq(BH, BR);
    }
    if (!Held.isName())
      return false; // Top does not satisfy a bound.
    if (!Order)
      return Held.nameOrBound() == Required.nameOrBound();
    if (!Order->contains(Held.nameOrBound()) ||
        !Order->contains(Required.nameOrBound()))
      return false;
    return Required.strictBound()
               ? Order->lt(Held.nameOrBound(), Required.nameOrBound())
               : Order->leq(Held.nameOrBound(), Required.nameOrBound());
  }
  }
  return false;
}
