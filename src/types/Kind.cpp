//===- Kind.cpp -----------------------------------------------------------===//

#include "types/Kind.h"

using namespace vault;

const char *vault::kindName(Kind K) {
  switch (K) {
  case Kind::Type:
    return "type";
  case Kind::Key:
    return "key";
  case Kind::KeySet:
    return "key set";
  case Kind::State:
    return "state";
  }
  return "?";
}
