//===- Type.cpp -----------------------------------------------------------===//

#include "types/Type.h"

using namespace vault;

bool vault::genArgEquals(const GenArg &A, const GenArg &B) {
  if (A.K != B.K)
    return false;
  switch (A.K) {
  case Kind::Type:
    return typeEquals(A.T, B.T);
  case Kind::Key:
    return A.Key == B.Key;
  case Kind::State:
    return A.State == B.State;
  case Kind::KeySet:
    return false;
  }
  return false;
}

static bool genArgsEqual(const std::vector<GenArg> &A,
                         const std::vector<GenArg> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I != A.size(); ++I)
    if (!genArgEquals(A[I], B[I]))
      return false;
  return true;
}

bool vault::typeEquals(const Type *A, const Type *B) {
  if (A == B)
    return true;
  if (!A || !B)
    return false;
  // Error types compare equal to anything to suppress error cascades.
  if (A->kind() == TyKind::Error || B->kind() == TyKind::Error)
    return true;
  if (A->kind() != B->kind())
    return false;
  switch (A->kind()) {
  case TyKind::Prim:
    return cast<PrimType>(A)->prim() == cast<PrimType>(B)->prim();
  case TyKind::Struct: {
    const auto *SA = cast<StructType>(A), *SB = cast<StructType>(B);
    return SA->decl() == SB->decl() && genArgsEqual(SA->args(), SB->args());
  }
  case TyKind::Abstract: {
    const auto *AA = cast<AbstractType>(A), *AB = cast<AbstractType>(B);
    return AA->decl() == AB->decl() && genArgsEqual(AA->args(), AB->args());
  }
  case TyKind::Variant: {
    const auto *VA = cast<VariantType>(A), *VB = cast<VariantType>(B);
    return VA->decl() == VB->decl() && genArgsEqual(VA->args(), VB->args());
  }
  case TyKind::Tracked: {
    const auto *TA = cast<TrackedType>(A), *TB = cast<TrackedType>(B);
    return TA->key() == TB->key() && typeEquals(TA->inner(), TB->inner());
  }
  case TyKind::AnonTracked: {
    const auto *TA = cast<AnonTrackedType>(A), *TB = cast<AnonTrackedType>(B);
    return TA->state() == TB->state() && typeEquals(TA->inner(), TB->inner());
  }
  case TyKind::Guarded: {
    const auto *GA = cast<GuardedType>(A), *GB = cast<GuardedType>(B);
    if (GA->guards().size() != GB->guards().size())
      return false;
    for (size_t I = 0; I != GA->guards().size(); ++I) {
      if (GA->guards()[I].Key != GB->guards()[I].Key ||
          !(GA->guards()[I].Required == GB->guards()[I].Required))
        return false;
    }
    return typeEquals(GA->inner(), GB->inner());
  }
  case TyKind::Tuple: {
    const auto *TA = cast<TupleType>(A), *TB = cast<TupleType>(B);
    if (TA->elems().size() != TB->elems().size())
      return false;
    for (size_t I = 0; I != TA->elems().size(); ++I)
      if (!typeEquals(TA->elems()[I], TB->elems()[I]))
        return false;
    return true;
  }
  case TyKind::Array:
    return typeEquals(cast<ArrayType>(A)->elem(), cast<ArrayType>(B)->elem());
  case TyKind::Func:
    // Function values are compared by signature identity; structural
    // matching of polymorphic signatures happens during unification.
    return cast<FuncType>(A)->sig() == cast<FuncType>(B)->sig();
  case TyKind::TypeVar:
    return cast<TypeVarType>(A)->param() == cast<TypeVarType>(B)->param();
  case TyKind::Error:
    return true;
  }
  return false;
}

static void genArgStr(std::string &Out, const GenArg &A, const KeyTable &Keys) {
  switch (A.K) {
  case Kind::Type:
    Out += typeStr(A.T, Keys);
    return;
  case Kind::Key:
    Out += Keys.name(A.Key);
    Out += '#';
    Out += std::to_string(A.Key);
    return;
  case Kind::State:
    Out += A.State.str();
    return;
  case Kind::KeySet:
    Out += "<keyset>";
    return;
  }
}

static void appliedStr(std::string &Out, const std::string &Name,
                       const std::vector<GenArg> &Args, const KeyTable &Keys) {
  Out += Name;
  if (Args.empty())
    return;
  Out += '<';
  bool First = true;
  for (const GenArg &A : Args) {
    if (!First)
      Out += ", ";
    First = false;
    genArgStr(Out, A, Keys);
  }
  Out += '>';
}

std::string vault::typeStr(const Type *T, const KeyTable &Keys) {
  if (!T)
    return "<null>";
  std::string Out;
  switch (T->kind()) {
  case TyKind::Prim:
    switch (cast<PrimType>(T)->prim()) {
    case PrimKind::Int:
      return "int";
    case PrimKind::Bool:
      return "bool";
    case PrimKind::Byte:
      return "byte";
    case PrimKind::Void:
      return "void";
    case PrimKind::String:
      return "string";
    }
    return "?";
  case TyKind::Error:
    return "<error>";
  case TyKind::Struct:
    appliedStr(Out, cast<StructType>(T)->decl()->name(),
               cast<StructType>(T)->args(), Keys);
    return Out;
  case TyKind::Abstract:
    appliedStr(Out, cast<AbstractType>(T)->decl()->name(),
               cast<AbstractType>(T)->args(), Keys);
    return Out;
  case TyKind::Variant:
    appliedStr(Out, cast<VariantType>(T)->decl()->name(),
               cast<VariantType>(T)->args(), Keys);
    return Out;
  case TyKind::Tracked: {
    const auto *Tr = cast<TrackedType>(T);
    Out = "tracked(" + Keys.name(Tr->key()) + "#" +
          std::to_string(Tr->key()) + ") " + typeStr(Tr->inner(), Keys);
    return Out;
  }
  case TyKind::AnonTracked: {
    const auto *Tr = cast<AnonTrackedType>(T);
    Out = "tracked";
    if (!Tr->state().isTop())
      Out += "(@" + Tr->state().str() + ")";
    Out += ' ';
    Out += typeStr(Tr->inner(), Keys);
    return Out;
  }
  case TyKind::Guarded: {
    const auto *G = cast<GuardedType>(T);
    bool First = true;
    for (const GuardedType::Guard &Gu : G->guards()) {
      if (!First)
        Out += ", ";
      First = false;
      Out += Keys.name(Gu.Key);
      Out += '#';
      Out += std::to_string(Gu.Key);
      if (!Gu.Required.isTop()) {
        Out += '@';
        Out += Gu.Required.str();
      }
    }
    Out += ':';
    Out += typeStr(G->inner(), Keys);
    return Out;
  }
  case TyKind::Tuple: {
    Out = "(";
    bool First = true;
    for (const Type *E : cast<TupleType>(T)->elems()) {
      if (!First)
        Out += ", ";
      First = false;
      Out += typeStr(E, Keys);
    }
    Out += ')';
    return Out;
  }
  case TyKind::Array:
    return typeStr(cast<ArrayType>(T)->elem(), Keys) + "[]";
  case TyKind::Func:
    return "fn " + cast<FuncType>(T)->sig()->Name;
  case TyKind::TypeVar:
    return cast<TypeVarType>(T)->param()->Name;
  }
  return "?";
}

void vault::collectKeys(const Type *T, std::vector<KeySym> &Out) {
  if (!T)
    return;
  switch (T->kind()) {
  case TyKind::Prim:
  case TyKind::TypeVar:
  case TyKind::Func:
  case TyKind::Error:
    return;
  case TyKind::Struct:
  case TyKind::Abstract:
  case TyKind::Variant: {
    const std::vector<GenArg> *Args;
    if (const auto *S = dyn_cast<StructType>(T))
      Args = &S->args();
    else if (const auto *A = dyn_cast<AbstractType>(T))
      Args = &A->args();
    else
      Args = &cast<VariantType>(T)->args();
    for (const GenArg &A : *Args) {
      if (A.K == Kind::Key && A.Key != InvalidKey)
        Out.push_back(A.Key);
      else if (A.K == Kind::Type)
        collectKeys(A.T, Out);
    }
    return;
  }
  case TyKind::Tracked: {
    const auto *Tr = cast<TrackedType>(T);
    Out.push_back(Tr->key());
    collectKeys(Tr->inner(), Out);
    return;
  }
  case TyKind::AnonTracked:
    collectKeys(cast<AnonTrackedType>(T)->inner(), Out);
    return;
  case TyKind::Guarded: {
    const auto *G = cast<GuardedType>(T);
    for (const GuardedType::Guard &Gu : G->guards())
      Out.push_back(Gu.Key);
    collectKeys(G->inner(), Out);
    return;
  }
  case TyKind::Tuple:
    for (const Type *E : cast<TupleType>(T)->elems())
      collectKeys(E, Out);
    return;
  case TyKind::Array:
    collectKeys(cast<ArrayType>(T)->elem(), Out);
    return;
  }
}

/// Syntactic scan used to decide whether a variant's payload can hold
/// keys: any `tracked` or guard marker anywhere in the payload's
/// surface type.
static bool typeExprMentionsTracking(const TypeExprAst *T) {
  if (!T)
    return false;
  switch (T->kind()) {
  case TypeExprKind::Tracked:
  case TypeExprKind::Guarded:
    return true;
  case TypeExprKind::Prim:
    return false;
  case TypeExprKind::Named:
    for (const TypeExprAst *A : cast<NamedTypeExpr>(T)->args())
      if (typeExprMentionsTracking(A))
        return true;
    return false;
  case TypeExprKind::Tuple:
    for (const TypeExprAst *E : cast<TupleTypeExpr>(T)->elems())
      if (typeExprMentionsTracking(E))
        return true;
    return false;
  case TypeExprKind::Array:
    return typeExprMentionsTracking(cast<ArrayTypeExpr>(T)->elem());
  case TypeExprKind::Func:
    return false;
  }
  return false;
}

bool vault::typeCarriesKeys(const Type *T) {
  if (!T)
    return false;
  switch (T->kind()) {
  case TyKind::Prim:
  case TyKind::TypeVar:
  case TyKind::Func:
  case TyKind::Abstract:
  case TyKind::Error:
    return false;
  case TyKind::Tracked:
  case TyKind::AnonTracked:
    return true;
  case TyKind::Guarded:
    return typeCarriesKeys(cast<GuardedType>(T)->inner());
  case TyKind::Tuple:
    for (const Type *E : cast<TupleType>(T)->elems())
      if (typeCarriesKeys(E))
        return true;
    return false;
  case TyKind::Array:
    return typeCarriesKeys(cast<ArrayType>(T)->elem());
  case TyKind::Struct: {
    // Struct fields are elaborated per instantiation; a syntactic scan
    // of the declaration suffices here.
    for (const StructDecl::Field &F : cast<StructType>(T)->decl()->fields())
      if (typeExprMentionsTracking(F.Type))
        return true;
    return false;
  }
  case TyKind::Variant: {
    const VariantDecl *D = cast<VariantType>(T)->decl();
    for (const VariantDecl::Ctor &C : D->ctors()) {
      if (!C.KeyAttachments.empty())
        return true;
      for (const TypeExprAst *P : C.Payload)
        if (typeExprMentionsTracking(P))
          return true;
    }
    return false;
  }
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Stable hashing (incremental-check fingerprints).
//===----------------------------------------------------------------------===//

static void hashGenArg(const GenArg &A, const KeyTable &Keys, Hasher &H) {
  H.u8(static_cast<uint8_t>(A.K));
  switch (A.K) {
  case Kind::Type:
    hashType(A.T, Keys, H);
    return;
  case Kind::Key:
    hashKey(A.Key, Keys, H);
    return;
  case Kind::State:
    A.State.hashInto(H);
    return;
  }
}

static void hashGenArgs(const std::vector<GenArg> &Args, const KeyTable &Keys,
                        Hasher &H) {
  H.u64(Args.size());
  for (const GenArg &A : Args)
    hashGenArg(A, Keys, H);
}

void vault::hashType(const Type *T, const KeyTable &Keys, Hasher &H) {
  if (!T) {
    H.u8(0xFF);
    return;
  }
  H.u8(static_cast<uint8_t>(T->kind()));
  switch (T->kind()) {
  case TyKind::Prim:
    H.u8(static_cast<uint8_t>(cast<PrimType>(T)->prim()));
    return;
  case TyKind::Error:
    return;
  case TyKind::Struct:
    H.str(cast<StructType>(T)->decl()->name());
    hashGenArgs(cast<StructType>(T)->args(), Keys, H);
    return;
  case TyKind::Abstract:
    H.str(cast<AbstractType>(T)->decl()->name());
    hashGenArgs(cast<AbstractType>(T)->args(), Keys, H);
    return;
  case TyKind::Variant:
    H.str(cast<VariantType>(T)->decl()->name());
    hashGenArgs(cast<VariantType>(T)->args(), Keys, H);
    return;
  case TyKind::Tracked:
    hashKey(cast<TrackedType>(T)->key(), Keys, H);
    hashType(cast<TrackedType>(T)->inner(), Keys, H);
    return;
  case TyKind::AnonTracked:
    cast<AnonTrackedType>(T)->state().hashInto(H);
    hashType(cast<AnonTrackedType>(T)->inner(), Keys, H);
    return;
  case TyKind::Guarded: {
    const auto *G = cast<GuardedType>(T);
    H.u64(G->guards().size());
    for (const GuardedType::Guard &Gu : G->guards()) {
      hashKey(Gu.Key, Keys, H);
      Gu.Required.hashInto(H);
    }
    hashType(G->inner(), Keys, H);
    return;
  }
  case TyKind::Tuple: {
    const auto &Elems = cast<TupleType>(T)->elems();
    H.u64(Elems.size());
    for (const Type *E : Elems)
      hashType(E, Keys, H);
    return;
  }
  case TyKind::Array:
    hashType(cast<ArrayType>(T)->elem(), Keys, H);
    return;
  case TyKind::Func:
    hashSignature(cast<FuncType>(T)->sig(), Keys, H);
    return;
  case TyKind::TypeVar:
    H.str(cast<TypeVarType>(T)->param()->Name);
    return;
  }
}

void vault::hashSignature(const FuncSig *Sig, const KeyTable &Keys,
                          Hasher &H) {
  if (!Sig) {
    H.u8(0xFF);
    return;
  }
  H.str(Sig->Name);
  H.u8(Sig->IsLocal);
  H.u64(Sig->SigKeys.size());
  for (KeySym K : Sig->SigKeys)
    hashKey(K, Keys, H);
  H.u64(Sig->FreshKeys.size());
  for (KeySym K : Sig->FreshKeys)
    hashKey(K, Keys, H);
  H.u32(Sig->NumStateVars);
  H.u64(Sig->StateVarNames.size());
  for (const auto &[Name, S] : Sig->StateVarNames) {
    H.str(Name);
    S.hashInto(H);
  }
  H.u64(Sig->ParamTypes.size());
  for (size_t I = 0; I < Sig->ParamTypes.size(); ++I) {
    hashType(Sig->ParamTypes[I], Keys, H);
    H.str(I < Sig->ParamNames.size() ? Sig->ParamNames[I] : std::string());
  }
  hashType(Sig->RetType, Keys, H);
  H.u64(Sig->Effects.size());
  for (const EffectItem &E : Sig->Effects) {
    H.u8(static_cast<uint8_t>(E.M));
    hashKey(E.Key, Keys, H);
    E.Pre.hashInto(H);
    H.u8(E.Post.has_value());
    if (E.Post)
      E.Post->hashInto(H);
  }
}
