//===- KeySet.cpp ---------------------------------------------------------===//

#include "types/KeySet.h"

using namespace vault;

namespace {
/// Active display-numbering scope of the current thread (see
/// KeyTable::DisplayScope). A worker checks exactly one function at a
/// time, so a single slot (rather than a stack) suffices; nesting is
/// still handled by the save/restore in the scope object itself.
struct DisplayTL {
  const KeyTable *Table = nullptr;
  uint32_t Base = 0;
  uint32_t Next = 0;
};
thread_local DisplayTL TheDisplayTL;
} // namespace

KeyTable::KeyTable()
    : Chunks(std::make_unique<std::atomic<Entry *>[]>(MaxChunks)) {
  for (size_t I = 0; I < MaxChunks; ++I)
    Chunks[I].store(nullptr, std::memory_order_relaxed);
}

KeyTable::~KeyTable() { clear(); }

void KeyTable::clear() {
  std::lock_guard<std::mutex> Lock(CreateMutex);
  Count.store(0, std::memory_order_release);
  for (size_t I = 0; I < MaxChunks; ++I)
    delete[] Chunks[I].exchange(nullptr, std::memory_order_acq_rel);
}

KeySym KeyTable::create(std::string Name, Origin O, SourceLoc Loc,
                        const Stateset *Order) {
  std::lock_guard<std::mutex> Lock(CreateMutex);
  size_t Idx = Count.load(std::memory_order_relaxed);
  assert(Idx < MaxChunks * ChunkSize && "key table full");
  size_t ChunkIdx = Idx >> ChunkBits;
  Entry *Chunk = Chunks[ChunkIdx].load(std::memory_order_relaxed);
  if (!Chunk) {
    Chunk = new Entry[ChunkSize];
    Chunks[ChunkIdx].store(Chunk, std::memory_order_release);
  }
  KeySym Sym = static_cast<KeySym>(Idx + 1);
  uint32_t Display = Sym;
  if (TheDisplayTL.Table == this)
    Display = TheDisplayTL.Base + ++TheDisplayTL.Next;
  Chunk[Idx & (ChunkSize - 1)] = Entry{std::move(Name), O, Loc, Order, Display};
  Count.store(Idx + 1, std::memory_order_release);
  return Sym;
}

KeyTable::DisplayScope::DisplayScope(const KeyTable &T, uint32_t Base)
    : SavedTable(TheDisplayTL.Table), SavedBase(TheDisplayTL.Base),
      SavedNext(TheDisplayTL.Next) {
  TheDisplayTL = DisplayTL{&T, Base, 0};
}

KeyTable::DisplayScope::~DisplayScope() {
  TheDisplayTL = DisplayTL{SavedTable, SavedBase, SavedNext};
}

void HeldKeySet::renameKeys(const std::map<KeySym, KeySym> &Map) {
  if (Map.empty())
    return;
  std::map<KeySym, StateRef> Renamed;
  for (auto &[K, S] : Entries) {
    auto It = Map.find(K);
    Renamed.emplace(It != Map.end() ? It->second : K, std::move(S));
  }
  Entries = std::move(Renamed);
}

std::string HeldKeySet::str(const KeyTable &Keys) const {
  std::string Out = "{";
  bool First = true;
  for (const auto &[K, S] : Entries) {
    if (!First)
      Out += ", ";
    First = false;
    Out += Keys.name(K);
    Out += '#';
    Out += std::to_string(Keys.displayId(K));
    if (!S.isTop()) {
      Out += '@';
      Out += S.str();
    }
  }
  Out += '}';
  return Out;
}

void vault::hashKey(KeySym K, const KeyTable &Keys, Hasher &H) {
  if (K == InvalidKey) {
    H.u32(0);
    return;
  }
  H.u32(K);
  H.u32(Keys.displayId(K));
  H.str(Keys.name(K));
  H.u8(static_cast<uint8_t>(Keys.origin(K)));
  if (const Stateset *Order = Keys.order(K)) {
    H.u8(1);
    Order->hashInto(H);
  } else {
    H.u8(0);
  }
}

void HeldKeySet::hashInto(const KeyTable &Keys, Hasher &H) const {
  H.u64(Entries.size());
  for (const auto &[K, S] : Entries) {
    hashKey(K, Keys, H);
    S.hashInto(H);
  }
}
