//===- KeySet.cpp ---------------------------------------------------------===//

#include "types/KeySet.h"

using namespace vault;

namespace {
/// Active display-numbering scope of the current thread (see
/// KeyTable::DisplayScope). A worker checks exactly one function at a
/// time, so a single slot (rather than a stack) suffices; nesting is
/// still handled by the save/restore in the scope object itself.
struct DisplayTL {
  const KeyTable *Table = nullptr;
  uint32_t Base = 0;
  uint32_t Next = 0;
};
thread_local DisplayTL TheDisplayTL;
} // namespace

KeyTable::KeyTable()
    : Chunks(std::make_unique<std::atomic<Entry *>[]>(MaxChunks)) {
  for (size_t I = 0; I < MaxChunks; ++I)
    Chunks[I].store(nullptr, std::memory_order_relaxed);
}

KeyTable::~KeyTable() { clear(); }

void KeyTable::clear() {
  std::lock_guard<std::mutex> Lock(CreateMutex);
  Count.store(0, std::memory_order_release);
  for (size_t I = 0; I < MaxChunks; ++I)
    delete[] Chunks[I].exchange(nullptr, std::memory_order_acq_rel);
}

KeySym KeyTable::create(std::string Name, Origin O, SourceLoc Loc,
                        const Stateset *Order) {
  if (ScratchTLS &S = scratchTLS(); S.Table == this) {
    KeySym Sym = static_cast<KeySym>(ScratchBase + S.Entries.size() + 1);
    S.Entries.push_back(Entry{std::move(Name), O, Loc, Order, Sym});
    return Sym;
  }
  if (WindowTLS &W = windowTLS(); W.Table == this) {
    assert(W.Next < W.Len && "window overflow: discovery undercounted");
    size_t Idx = W.First + W.Next++;
    KeySym Sym = static_cast<KeySym>(Idx + 1);
    uint32_t Display = Sym;
    if (TheDisplayTL.Table == this)
      Display = TheDisplayTL.Base + ++TheDisplayTL.Next;
    Chunks[Idx >> ChunkBits].load(std::memory_order_acquire)
        [Idx & (ChunkSize - 1)] = Entry{std::move(Name), O, Loc, Order, Display};
    return Sym;
  }
  std::lock_guard<std::mutex> Lock(CreateMutex);
  size_t Idx = Count.load(std::memory_order_relaxed);
  assert(Idx < MaxChunks * ChunkSize && "key table full");
  size_t ChunkIdx = Idx >> ChunkBits;
  Entry *Chunk = Chunks[ChunkIdx].load(std::memory_order_relaxed);
  if (!Chunk) {
    Chunk = new Entry[ChunkSize];
    Chunks[ChunkIdx].store(Chunk, std::memory_order_release);
  }
  KeySym Sym = static_cast<KeySym>(Idx + 1);
  uint32_t Display = Sym;
  if (TheDisplayTL.Table == this)
    Display = TheDisplayTL.Base + ++TheDisplayTL.Next;
  Chunk[Idx & (ChunkSize - 1)] = Entry{std::move(Name), O, Loc, Order, Display};
  Count.store(Idx + 1, std::memory_order_release);
  return Sym;
}

KeySym KeyTable::reserve(size_t N) {
  std::lock_guard<std::mutex> Lock(CreateMutex);
  size_t First = Count.load(std::memory_order_relaxed);
  if (N == 0)
    return static_cast<KeySym>(First + 1);
  assert(First + N <= MaxChunks * ChunkSize && "key table full");
  for (size_t ChunkIdx = First >> ChunkBits;
       ChunkIdx <= (First + N - 1) >> ChunkBits; ++ChunkIdx)
    if (!Chunks[ChunkIdx].load(std::memory_order_relaxed))
      Chunks[ChunkIdx].store(new Entry[ChunkSize], std::memory_order_release);
  Count.store(First + N, std::memory_order_release);
  return static_cast<KeySym>(First + 1);
}

KeyTable::ScratchTLS &KeyTable::scratchTLS() {
  static thread_local ScratchTLS TLS;
  return TLS;
}

KeyTable::WindowTLS &KeyTable::windowTLS() {
  static thread_local WindowTLS TLS;
  return TLS;
}

const KeyTable::Entry &KeyTable::scratchEntry(KeySym K) const {
  const ScratchTLS &S = scratchTLS();
  assert(S.Table == this && "scratch key resolved outside its scope");
  size_t Idx = K - ScratchBase - 1;
  assert(Idx < S.Entries.size() && "bad scratch key");
  return S.Entries[Idx];
}

KeyTable::ScratchScope::ScratchScope(const KeyTable &T) {
  ScratchTLS &S = scratchTLS();
  assert(!S.Table && "nested scratch scopes are not supported");
  S.Table = &T;
  S.Entries.clear();
}

KeyTable::ScratchScope::~ScratchScope() {
  ScratchTLS &S = scratchTLS();
  S.Table = nullptr;
  S.Entries.clear();
}

size_t KeyTable::ScratchScope::created() const {
  return scratchTLS().Entries.size();
}

KeyTable::WindowScope::WindowScope(KeyTable &T, KeySym First, uint32_t Len) {
  WindowTLS &W = windowTLS();
  assert(!W.Table && "nested window scopes are not supported");
  W = WindowTLS{&T, static_cast<size_t>(First) - 1, Len, 0};
}

KeyTable::WindowScope::~WindowScope() {
  WindowTLS &W = windowTLS();
  assert(W.Next == W.Len && "window underfilled: discovery overcounted");
  W = WindowTLS{};
}

KeyTable::DisplayScope::DisplayScope(const KeyTable &T, uint32_t Base)
    : SavedTable(TheDisplayTL.Table), SavedBase(TheDisplayTL.Base),
      SavedNext(TheDisplayTL.Next) {
  TheDisplayTL = DisplayTL{&T, Base, 0};
}

KeyTable::DisplayScope::~DisplayScope() {
  TheDisplayTL = DisplayTL{SavedTable, SavedBase, SavedNext};
}

bool HeldKeySet::renameKeys(const KeyRename &Map) {
  if (Map.empty() || Entries.empty())
    return true;
  // Map every entry, then restore the sort. Renaming may permute the
  // order arbitrarily; the sets are tiny, so an insertion sort beats
  // anything with allocation or dispatch overhead.
  SmallVector<Item, 4> Renamed;
  Renamed.reserve(Entries.size());
  uint64_t NewMask = 0;
  for (const Item &E : Entries) {
    KeySym Target = Map.map(E.Sym);
    auto It = std::lower_bound(
        Renamed.begin(), Renamed.end(), Target,
        [](const Item &I, KeySym S) { return I.Sym < S; });
    if (It != Renamed.end() && It->Sym == Target)
      return false; // Two sources collide on one target: reject whole.
    Renamed.insert(It, Item{Target, E.St});
    NewMask |= uint64_t(1) << (Target & 63);
  }
  Entries = std::move(Renamed);
  Mask = NewMask;
  return true;
}

bool HeldKeySet::renameKeys(const std::map<KeySym, KeySym> &Map) {
  KeyRename R;
  for (const auto &[From, To] : Map)
    R.add(From, To);
  return renameKeys(R);
}

std::string HeldKeySet::str(const KeyTable &Keys) const {
  std::string Out = "{";
  bool First = true;
  for (const auto &[K, S] : *this) {
    if (!First)
      Out += ", ";
    First = false;
    Out += Keys.name(K);
    Out += '#';
    Out += std::to_string(Keys.displayId(K));
    if (!S.isTop()) {
      Out += '@';
      Out += S.str();
    }
  }
  Out += '}';
  return Out;
}

void vault::hashKey(KeySym K, const KeyTable &Keys, Hasher &H) {
  if (K == InvalidKey) {
    H.u32(0);
    return;
  }
  H.u32(K);
  H.u32(Keys.displayId(K));
  H.str(Keys.name(K));
  H.u8(static_cast<uint8_t>(Keys.origin(K)));
  if (const Stateset *Order = Keys.order(K)) {
    H.u8(1);
    Order->hashInto(H);
  } else {
    H.u8(0);
  }
}

void HeldKeySet::hashInto(const KeyTable &Keys, Hasher &H) const {
  H.u64(Entries.size());
  for (const auto &[K, S] : *this) {
    hashKey(K, Keys, H);
    S.hashInto(H);
  }
}
