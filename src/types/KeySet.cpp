//===- KeySet.cpp ---------------------------------------------------------===//

#include "types/KeySet.h"

using namespace vault;

KeySym KeyTable::create(std::string Name, Origin O, SourceLoc Loc,
                        const Stateset *Order) {
  Entries.push_back(Entry{std::move(Name), O, Loc, Order});
  return static_cast<KeySym>(Entries.size());
}

void HeldKeySet::renameKeys(const std::map<KeySym, KeySym> &Map) {
  if (Map.empty())
    return;
  std::map<KeySym, StateRef> Renamed;
  for (auto &[K, S] : Entries) {
    auto It = Map.find(K);
    Renamed.emplace(It != Map.end() ? It->second : K, std::move(S));
  }
  Entries = std::move(Renamed);
}

std::string HeldKeySet::str(const KeyTable &Keys) const {
  std::string Out = "{";
  bool First = true;
  for (const auto &[K, S] : Entries) {
    if (!First)
      Out += ", ";
    First = false;
    Out += Keys.name(K);
    Out += '#';
    Out += std::to_string(K);
    if (!S.isTop()) {
      Out += '@';
      Out += S.str();
    }
  }
  Out += '}';
  return Out;
}
