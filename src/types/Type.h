//===- Type.h - Internal type language --------------------------*- C++ -*-===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The elaborated (internal) type language of the paper's Fig. 6:
///
///   * singleton types s(κ) — here TrackedType(inner, key): the type of
///     all aliases of the unique resource named by `key`;
///   * anonymous tracked types — AnonTrackedType, the existential
///     ∃[p | {p@st ↦ τ}]. s(p) used for resources in collections;
///   * guarded types C ▷ τ — GuardedType, access requires the guard
///     keys in the required states;
///   * applied named types (struct / abstract / variant) with
///     type/key/state arguments;
///   * function types carrying a polymorphic signature with explicit
///     pre/post key sets (the effect clause).
///
/// Types are arena-owned by TypeContext and compared structurally.
///
//===----------------------------------------------------------------------===//

#ifndef VAULT_TYPES_TYPE_H
#define VAULT_TYPES_TYPE_H

#include "ast/Ast.h"
#include "types/KeySet.h"
#include "types/Kind.h"
#include "types/StateSet.h"

#include <optional>

namespace vault {

class Type;
class TypeContext;
struct FuncSig;

/// An argument to an applied named type: a type, a key, or a state.
struct GenArg {
  Kind K = Kind::Type;
  const Type *T = nullptr;
  KeySym Key = InvalidKey;
  StateRef State;

  static GenArg type(const Type *Ty) {
    GenArg A;
    A.K = Kind::Type;
    A.T = Ty;
    return A;
  }
  static GenArg key(KeySym Sym) {
    GenArg A;
    A.K = Kind::Key;
    A.Key = Sym;
    return A;
  }
  static GenArg state(StateRef S) {
    GenArg A;
    A.K = Kind::State;
    A.State = std::move(S);
    return A;
  }
};

bool genArgEquals(const GenArg &A, const GenArg &B);

enum class TyKind : uint8_t {
  Prim,
  Struct,
  Abstract,
  Variant,
  Tracked,
  AnonTracked,
  Guarded,
  Tuple,
  Array,
  Func,
  TypeVar,
  Error, ///< Poison type produced after a reported sema error.
};

class Type {
public:
  TyKind kind() const { return K; }

protected:
  explicit Type(TyKind K) : K(K) {}

private:
  TyKind K;
};

class PrimType : public Type {
public:
  explicit PrimType(PrimKind P) : Type(TyKind::Prim), P(P) {}
  PrimKind prim() const { return P; }
  static bool classof(const Type *T) { return T->kind() == TyKind::Prim; }

private:
  PrimKind P;
};

class ErrorType : public Type {
public:
  ErrorType() : Type(TyKind::Error) {}
  static bool classof(const Type *T) { return T->kind() == TyKind::Error; }
};

/// An applied struct type, e.g. `point` or `pair<int, F>`.
class StructType : public Type {
public:
  StructType(const StructDecl *D, std::vector<GenArg> Args)
      : Type(TyKind::Struct), D(D), Args(std::move(Args)) {}
  const StructDecl *decl() const { return D; }
  const std::vector<GenArg> &args() const { return Args; }
  static bool classof(const Type *T) { return T->kind() == TyKind::Struct; }

private:
  const StructDecl *D;
  std::vector<GenArg> Args;
};

/// An applied abstract type (a `type name;` declaration with no
/// definition), e.g. `region`, `sock`, `IRP`, `KEVENT<I>`.
class AbstractType : public Type {
public:
  AbstractType(const TypeAliasDecl *D, std::vector<GenArg> Args)
      : Type(TyKind::Abstract), D(D), Args(std::move(Args)) {}
  const TypeAliasDecl *decl() const { return D; }
  const std::vector<GenArg> &args() const { return Args; }
  static bool classof(const Type *T) { return T->kind() == TyKind::Abstract; }

private:
  const TypeAliasDecl *D;
  std::vector<GenArg> Args;
};

/// An applied variant type, e.g. `opt_key<F>`, `status<S>`, `reglist`.
class VariantType : public Type {
public:
  VariantType(const VariantDecl *D, std::vector<GenArg> Args)
      : Type(TyKind::Variant), D(D), Args(std::move(Args)) {}
  const VariantDecl *decl() const { return D; }
  const std::vector<GenArg> &args() const { return Args; }
  static bool classof(const Type *T) { return T->kind() == TyKind::Variant; }

private:
  const VariantDecl *D;
  std::vector<GenArg> Args;
};

/// The singleton type s(κ): every program name of this type denotes
/// the one run-time object whose key is \p Key (paper §3.1).
class TrackedType : public Type {
public:
  TrackedType(const Type *Inner, KeySym Key)
      : Type(TyKind::Tracked), Inner(Inner), Key(Key) {}
  const Type *inner() const { return Inner; }
  KeySym key() const { return Key; }
  static bool classof(const Type *T) { return T->kind() == TyKind::Tracked; }

private:
  const Type *Inner;
  KeySym Key;
};

/// The anonymous tracked type ∃[p | {p@State ↦ Inner}]. s(p): a value
/// carrying its own key. Packing into this type consumes the key;
/// unpacking (binding to a variable, pattern matching) produces a
/// fresh key (paper §2.4, §3.3).
class AnonTrackedType : public Type {
public:
  AnonTrackedType(const Type *Inner, StateRef State)
      : Type(TyKind::AnonTracked), Inner(Inner), State(std::move(State)) {}
  const Type *inner() const { return Inner; }
  const StateRef &state() const { return State; }
  static bool classof(const Type *T) {
    return T->kind() == TyKind::AnonTracked;
  }

private:
  const Type *Inner;
  StateRef State;
};

/// A guarded type C ▷ τ: accessing a value requires every guard key to
/// be held in a state satisfying the guard's state requirement.
class GuardedType : public Type {
public:
  struct Guard {
    KeySym Key;
    StateRef Required;
  };
  GuardedType(std::vector<Guard> Guards, const Type *Inner)
      : Type(TyKind::Guarded), Guards(std::move(Guards)), Inner(Inner) {}
  const std::vector<Guard> &guards() const { return Guards; }
  const Type *inner() const { return Inner; }
  static bool classof(const Type *T) { return T->kind() == TyKind::Guarded; }

private:
  std::vector<Guard> Guards;
  const Type *Inner;
};

class TupleType : public Type {
public:
  explicit TupleType(std::vector<const Type *> Elems)
      : Type(TyKind::Tuple), Elems(std::move(Elems)) {}
  const std::vector<const Type *> &elems() const { return Elems; }
  static bool classof(const Type *T) { return T->kind() == TyKind::Tuple; }

private:
  std::vector<const Type *> Elems;
};

class ArrayType : public Type {
public:
  explicit ArrayType(const Type *Elem) : Type(TyKind::Array), Elem(Elem) {}
  const Type *elem() const { return Elem; }
  static bool classof(const Type *T) { return T->kind() == TyKind::Array; }

private:
  const Type *Elem;
};

/// A function value's type; the signature is owned by the TypeContext.
class FuncType : public Type {
public:
  explicit FuncType(const FuncSig *Sig) : Type(TyKind::Func), Sig(Sig) {}
  const FuncSig *sig() const { return Sig; }
  static bool classof(const Type *T) { return T->kind() == TyKind::Func; }

private:
  const FuncSig *Sig;
};

/// A type variable bound by a `type T` parameter. Identity is the
/// declaring TypeParamAst.
class TypeVarType : public Type {
public:
  explicit TypeVarType(const TypeParamAst *Param)
      : Type(TyKind::TypeVar), Param(Param) {}
  const TypeParamAst *param() const { return Param; }
  static bool classof(const Type *T) { return T->kind() == TyKind::TypeVar; }

private:
  const TypeParamAst *Param;
};

//===----------------------------------------------------------------------===//
// Elaborated function signatures (pre/post key sets).
//===----------------------------------------------------------------------===//

/// One elaborated conjunct of an effect clause.
struct EffectItem {
  enum class Mode : uint8_t { Keep, Consume, Produce, Fresh };
  Mode M = Mode::Keep;
  KeySym Key = InvalidKey; ///< Signature-local or global key.
  /// Required held state before the call (Top = any; Name = exact;
  /// bounded Var = bounded polymorphism). Meaningless for Produce/Fresh.
  StateRef Pre;
  /// State after the call. nullopt means "unchanged" (Keep only).
  std::optional<StateRef> Post;
  SourceLoc Loc;
};

/// An elaborated, polymorphic function signature: implicit universal
/// quantification over its signature keys, state variables, and the
/// untouched "rest" of the held-key set (paper §3.2).
struct FuncSig {
  const FuncDecl *Decl = nullptr;
  std::string Name;
  /// Keys bound by this signature (from tracked(K) params, guards, and
  /// effect items); instantiated per call site.
  std::vector<KeySym> SigKeys;
  /// Subset of SigKeys created by the call (Fresh effects and tracked
  /// return keys not bound by any parameter).
  std::vector<KeySym> FreshKeys;
  unsigned NumStateVars = 0;
  /// Named state variables of this signature (e.g. `level` in
  /// `[IRQL@(level <= DISPATCH_LEVEL)]`), for use in the body's scope.
  std::vector<std::pair<std::string, StateRef>> StateVarNames;
  std::vector<const Type *> ParamTypes;
  std::vector<std::string> ParamNames;
  const Type *RetType = nullptr;
  std::vector<EffectItem> Effects;
  SourceLoc Loc;
  /// True for nested (local) functions; their non-fresh signature keys
  /// may refer to enclosing keys monomorphically.
  bool IsLocal = false;

  bool isSigKey(KeySym K) const {
    for (KeySym S : SigKeys)
      if (S == K)
        return true;
    return false;
  }
  bool isFreshKey(KeySym K) const {
    for (KeySym S : FreshKeys)
      if (S == K)
        return true;
    return false;
  }
};

//===----------------------------------------------------------------------===//
// Structural operations.
//===----------------------------------------------------------------------===//

/// Structural type equality (key symbols compared exactly).
bool typeEquals(const Type *A, const Type *B);

/// Renders a type for diagnostics, resolving key names via \p Keys.
std::string typeStr(const Type *T, const KeyTable &Keys);

/// Collects every key symbol mentioned anywhere in \p T.
void collectKeys(const Type *T, std::vector<KeySym> &Out);

/// True if values of this type carry keys when packed: tracked or
/// anonymous-tracked types, tuples/variants containing them, etc.
/// Variants are resolved through \p Memo to handle recursion.
bool typeCarriesKeys(const Type *T);

/// Feeds a stable structural description of \p T into \p H: the same
/// (structural) type hashes equal across runs and job counts. Key
/// symbols are hashed with their ids, names and statesets (see
/// hashKey), state variables with their ids — both can surface
/// verbatim in rendered diagnostics, so the hash must track them.
void hashType(const Type *T, const KeyTable &Keys, Hasher &H);

/// Feeds a stable description of an elaborated signature — parameters,
/// return type, signature/fresh keys, state variables and the effect
/// clause — into \p H. This is the "interface" part of a function for
/// the incremental-check fingerprint: callers depend on it, never on
/// the callee's body.
void hashSignature(const FuncSig *Sig, const KeyTable &Keys, Hasher &H);

} // namespace vault

#endif // VAULT_TYPES_TYPE_H
