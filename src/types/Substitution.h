//===- Substitution.h - Key/type/state substitution -------------*- C++ -*-===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Substitutions over the internal type language: maps signature keys
/// to caller keys, type variables to types, and state variables to
/// states. Used to instantiate polymorphic signatures at call sites
/// and generic declarations at application sites.
///
//===----------------------------------------------------------------------===//

#ifndef VAULT_TYPES_SUBSTITUTION_H
#define VAULT_TYPES_SUBSTITUTION_H

#include "types/Type.h"
#include "types/TypeContext.h"

#include <map>

namespace vault {

struct Subst {
  std::map<KeySym, KeySym> Keys;
  std::map<const TypeParamAst *, const Type *> TypeVars;
  std::map<StateVarId, StateRef> StateVars;
  /// Flat key renaming applied in addition to (and before) Keys. The
  /// join canonicalization substitutes through its KeyRename directly
  /// instead of copying it into the Keys map on every join.
  const KeyRename *FlatKeys = nullptr;

  bool empty() const {
    return Keys.empty() && TypeVars.empty() && StateVars.empty() &&
           (!FlatKeys || FlatKeys->empty());
  }

  KeySym mapKey(KeySym K) const {
    if (FlatKeys) {
      KeySym To = FlatKeys->lookup(K);
      if (To != InvalidKey)
        return To;
    }
    auto It = Keys.find(K);
    return It != Keys.end() ? It->second : K;
  }
};

/// Applies \p S to a state (resolving state variables; a variable not
/// in the map stays symbolic).
StateRef substState(const StateRef &State, const Subst &S);

/// Applies \p S to a type, allocating any rewritten nodes in \p Ctx.
const Type *substType(TypeContext &Ctx, const Type *T, const Subst &S);

/// Applies \p S to a generic argument.
GenArg substGenArg(TypeContext &Ctx, const GenArg &A, const Subst &S);

} // namespace vault

#endif // VAULT_TYPES_SUBSTITUTION_H
