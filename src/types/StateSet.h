//===- StateSet.h - Key states and stateset partial orders ------*- C++ -*-===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Key-local states (paper §2.1) and `stateset` declarations with a
/// partial order (paper §4.4, used for the Windows IRQL levels):
///
///   stateset IRQ_LEVEL = [ PASSIVE_LEVEL < APC_LEVEL
///                          < DISPATCH_LEVEL < DIRQL ];
///
/// A state in the checker is a StateRef: the default/top state (states
/// omitted in the source), a concrete name, or a state *variable*
/// (possibly bounded, for the paper's bounded state polymorphism à la
/// `KeReleaseSemaphore [IRQL @ (level <= DISPATCH_LEVEL)]`).
///
//===----------------------------------------------------------------------===//

#ifndef VAULT_TYPES_STATESET_H
#define VAULT_TYPES_STATESET_H

#include "support/Hash.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace vault {

/// A declared, partially ordered set of state names. States separated
/// by `<` in the source form ascending ranks; states listed with `,`
/// share a rank and are incomparable.
class Stateset {
public:
  Stateset(std::string Name, std::vector<std::vector<std::string>> Ranks);

  const std::string &name() const { return Name; }

  bool contains(const std::string &State) const {
    return indexOf(State).has_value();
  }

  /// Partial order: returns true iff A <= B. States are comparable iff
  /// equal or of different ranks.
  bool leq(const std::string &A, const std::string &B) const;

  /// Strict order A < B.
  bool lt(const std::string &A, const std::string &B) const {
    return A != B && leq(A, B);
  }

  const std::vector<std::string> &allStates() const { return States; }

  /// Feeds a stable description of this stateset (name, states, ranks)
  /// into \p H. Two runs that declare the same stateset hash equal.
  void hashInto(Hasher &H) const;

private:
  std::optional<unsigned> indexOf(const std::string &State) const;

  std::string Name;
  std::vector<std::string> States;
  std::vector<unsigned> RankOf; ///< Parallel to States.
};

/// Identifier of a state variable within one function signature.
using StateVarId = uint32_t;

/// A state expression as used in held-key sets, guards, and effects.
class StateRef {
public:
  enum class Kind : uint8_t {
    Top,  ///< The default state (state omitted in the source).
    Name, ///< A concrete state name.
    Var,  ///< A state variable, optionally upper-bounded.
  };

  StateRef() : K(Kind::Top) {}

  static StateRef top() { return StateRef(); }
  static StateRef name(std::string N) {
    StateRef S;
    S.K = Kind::Name;
    S.StateName = std::move(N);
    return S;
  }
  static StateRef var(StateVarId Id, std::string Bound = "",
                      bool Strict = false) {
    StateRef S;
    S.K = Kind::Var;
    S.VarId = Id;
    S.StateName = std::move(Bound);
    S.Strict = Strict;
    return S;
  }

  Kind kind() const { return K; }
  bool isTop() const { return K == Kind::Top; }
  bool isName() const { return K == Kind::Name; }
  bool isVar() const { return K == Kind::Var; }

  /// Concrete state name (Name kind) or bound name (Var kind; "" if
  /// unbounded).
  const std::string &nameOrBound() const { return StateName; }
  StateVarId varId() const { return VarId; }
  bool strictBound() const { return Strict; }

  std::string str() const;

  /// Feeds a stable description of this state expression into \p H.
  /// Var ids are hashed as-is: they are deterministic for a fixed
  /// program (see Elaborator::seedStateVarCounter) and rendered
  /// verbatim into diagnostics, so a fingerprint *must* change when
  /// they do.
  void hashInto(Hasher &H) const;

  friend bool operator==(const StateRef &A, const StateRef &B) {
    if (A.K != B.K)
      return false;
    switch (A.K) {
    case Kind::Top:
      return true;
    case Kind::Name:
      return A.StateName == B.StateName;
    case Kind::Var:
      return A.VarId == B.VarId;
    }
    return false;
  }
  friend bool operator!=(const StateRef &A, const StateRef &B) {
    return !(A == B);
  }

private:
  Kind K;
  std::string StateName;
  StateVarId VarId = 0;
  bool Strict = false;
};

/// Checks a held state against a required state under an optional
/// stateset order. \p Held must be concrete (Top or Name); \p Required
/// may be Top (matches anything), a Name (must match exactly), or a
/// bounded Var (held must satisfy the bound in \p Order).
///
/// \returns true if \p Held satisfies \p Required.
bool stateSatisfies(const StateRef &Held, const StateRef &Required,
                    const Stateset *Order);

} // namespace vault

#endif // VAULT_TYPES_STATESET_H
