//===- TypeContext.h - Ownership of the type language -----------*- C++ -*-===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Arena for internal types, signatures, key table and statesets of a
/// compilation.
///
//===----------------------------------------------------------------------===//

#ifndef VAULT_TYPES_TYPECONTEXT_H
#define VAULT_TYPES_TYPECONTEXT_H

#include "types/Type.h"

#include <memory>
#include <unordered_map>

namespace vault {

class TypeContext {
public:
  TypeContext();

  template <typename T, typename... Args> const T *make(Args &&...As) {
    auto Owned = std::make_unique<T>(std::forward<Args>(As)...);
    const T *Raw = Owned.get();
    Types.push_back(std::move(Owned));
    return Raw;
  }

  // Shared primitive types.
  const PrimType *intType() const { return IntTy; }
  const PrimType *boolType() const { return BoolTy; }
  const PrimType *byteType() const { return ByteTy; }
  const PrimType *voidType() const { return VoidTy; }
  const PrimType *stringType() const { return StringTy; }
  const ErrorType *errorType() const { return ErrTy; }
  const PrimType *primType(PrimKind K) const;

  KeyTable &keys() { return Keys; }
  const KeyTable &keys() const { return Keys; }

  /// Registers a stateset; returns null and leaves the table unchanged
  /// if the name is taken.
  const Stateset *addStateset(std::string Name,
                              std::vector<std::vector<std::string>> Ranks);
  const Stateset *findStateset(const std::string &Name) const;

  /// True if \p State is a member of any registered stateset.
  bool isKnownStateName(const std::string &State) const;

  FuncSig *makeSig() {
    Sigs.push_back(std::make_unique<FuncSig>());
    return Sigs.back().get();
  }

private:
  std::vector<std::unique_ptr<Type>> Types;
  std::vector<std::unique_ptr<FuncSig>> Sigs;
  std::unordered_map<std::string, std::unique_ptr<Stateset>> Statesets;
  KeyTable Keys;
  const PrimType *IntTy;
  const PrimType *BoolTy;
  const PrimType *ByteTy;
  const PrimType *VoidTy;
  const PrimType *StringTy;
  const ErrorType *ErrTy;
};

} // namespace vault

#endif // VAULT_TYPES_TYPECONTEXT_H
