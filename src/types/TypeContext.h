//===- TypeContext.h - Ownership of the type language -----------*- C++ -*-===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Arena for internal types, signatures, key table and statesets of a
/// compilation.
///
//===----------------------------------------------------------------------===//

#ifndef VAULT_TYPES_TYPECONTEXT_H
#define VAULT_TYPES_TYPECONTEXT_H

#include "types/Type.h"

#include <memory>
#include <unordered_map>

namespace vault {

/// Owns the types and signatures allocated by one pass-3 worker while
/// an ArenaScope is active. Adopted into the TypeContext (which
/// extends their lifetime to the whole compilation) once the worker
/// has finished — this keeps allocation during concurrent function
/// checking completely lock-free.
class TypeArena {
public:
  TypeArena() = default;
  TypeArena(TypeArena &&) = default;
  TypeArena &operator=(TypeArena &&) = default;

  /// Bytes of type/signature objects allocated through this arena.
  /// Object payload only (not vector bookkeeping): a stable measure of
  /// how much type structure a function's check materialized.
  size_t bytes() const { return Bytes; }

private:
  friend class TypeContext;
  std::vector<std::unique_ptr<Type>> Types;
  std::vector<std::unique_ptr<FuncSig>> Sigs;
  size_t Bytes = 0;
};

class TypeContext {
public:
  TypeContext();

  template <typename T, typename... Args> const T *make(Args &&...As) {
    auto Owned = std::make_unique<T>(std::forward<Args>(As)...);
    const T *Raw = Owned.get();
    if (TypeArena *A = ActiveArena) {
      A->Types.push_back(std::move(Owned));
      A->Bytes += sizeof(T);
    } else {
      Types.push_back(std::move(Owned));
    }
    return Raw;
  }

  // Shared primitive types.
  const PrimType *intType() const { return IntTy; }
  const PrimType *boolType() const { return BoolTy; }
  const PrimType *byteType() const { return ByteTy; }
  const PrimType *voidType() const { return VoidTy; }
  const PrimType *stringType() const { return StringTy; }
  const ErrorType *errorType() const { return ErrTy; }
  const PrimType *primType(PrimKind K) const;

  KeyTable &keys() { return Keys; }
  const KeyTable &keys() const { return Keys; }

  /// Registers a stateset; returns null and leaves the table unchanged
  /// if the name is taken.
  const Stateset *addStateset(std::string Name,
                              std::vector<std::vector<std::string>> Ranks);
  const Stateset *findStateset(const std::string &Name) const;

  /// True if \p State is a member of any registered stateset.
  bool isKnownStateName(const std::string &State) const;

  FuncSig *makeSig() {
    auto Owned = std::make_unique<FuncSig>();
    FuncSig *Raw = Owned.get();
    if (TypeArena *A = ActiveArena) {
      A->Sigs.push_back(std::move(Owned));
      A->Bytes += sizeof(FuncSig);
    } else {
      Sigs.push_back(std::move(Owned));
    }
    return Raw;
  }

  /// RAII: while alive, make()/makeSig() on this thread allocate into
  /// \p A instead of the shared tables. Pass-3 workers install one per
  /// function so concurrent checks never touch the shared vectors.
  class ArenaScope {
  public:
    explicit ArenaScope(TypeArena &A) : Saved(ActiveArena) {
      ActiveArena = &A;
    }
    ~ArenaScope() { ActiveArena = Saved; }
    ArenaScope(const ArenaScope &) = delete;
    ArenaScope &operator=(const ArenaScope &) = delete;

  private:
    TypeArena *Saved;
  };

  /// Splices a finished worker arena into the context, extending the
  /// lifetime of its types to the compilation's. Must be called from
  /// the coordinating thread, after the worker is done with \p A.
  void adopt(TypeArena &&A);

  /// Drops every type, signature, stateset and key and re-creates the
  /// primitives. Invalidates all outstanding Type/FuncSig/KeySym
  /// handles; used by VaultCompiler::check() to make re-checking
  /// idempotent.
  void reset();

private:
  void initPrims();

  static thread_local TypeArena *ActiveArena;

  std::vector<std::unique_ptr<Type>> Types;
  std::vector<std::unique_ptr<FuncSig>> Sigs;
  std::unordered_map<std::string, std::unique_ptr<Stateset>> Statesets;
  KeyTable Keys;
  const PrimType *IntTy;
  const PrimType *BoolTy;
  const PrimType *ByteTy;
  const PrimType *VoidTy;
  const PrimType *StringTy;
  const ErrorType *ErrTy;
};

} // namespace vault

#endif // VAULT_TYPES_TYPECONTEXT_H
