//===- Parser.h - Vault parser ----------------------------------*- C++ -*-===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for Vault. Two ambiguities inherent in the
/// C-based surface syntax are resolved by tentative parsing with
/// backtracking:
///
///  * statement-level "declaration vs expression" (`K:FILE f;` vs
///    `a < b;`), and
///  * guard prefixes in types (`K@open : FILE` vs a named type).
///
/// During a tentative parse diagnostics are suppressed; they are only
/// emitted on the committed path.
///
//===----------------------------------------------------------------------===//

#ifndef VAULT_PARSER_PARSER_H
#define VAULT_PARSER_PARSER_H

#include "ast/Ast.h"
#include "lexer/Lexer.h"
#include "support/Diagnostics.h"

namespace vault {

class Parser {
public:
  Parser(AstContext &Ctx, const SourceManager &SM, uint32_t BufferId,
         DiagnosticEngine &Diags);

  /// Parses the whole buffer into Ctx's program. Returns false if any
  /// syntax error was reported.
  bool parseProgram();

  /// Convenience: lex + parse a named source text into \p Ctx.
  /// Registers the buffer with \p SM.
  static bool parseString(AstContext &Ctx, SourceManager &SM,
                          DiagnosticEngine &Diags, const std::string &Name,
                          const std::string &Text);

private:
  // Token stream access.
  const Token &tok(size_t Ahead = 0) const {
    size_t I = Idx + Ahead;
    return I < Tokens.size() ? Tokens[I] : Tokens.back();
  }
  bool at(TokKind K) const { return tok().is(K); }
  bool atOneOf(std::initializer_list<TokKind> Ks) const {
    return tok().isOneOf(Ks);
  }
  Token consume() { return Tokens[Idx < Tokens.size() - 1 ? Idx++ : Idx]; }
  bool accept(TokKind K) {
    if (!at(K))
      return false;
    consume();
    return true;
  }
  bool expect(TokKind K, const char *Context);
  void error(DiagId Id, const std::string &Msg);
  void skipTo(std::initializer_list<TokKind> Sync);

  // Tentative parsing.
  struct Snapshot {
    size_t Idx;
  };
  Snapshot save() const { return Snapshot{Idx}; }
  void restore(Snapshot S) { Idx = S.Idx; }

  // Declarations.
  Decl *parseTopLevelDecl();
  Decl *parseStatesetDecl();
  Decl *parseKeyDecl();
  Decl *parseTypeDecl();
  Decl *parseStructDecl();
  Decl *parseVariantDecl();
  Decl *parseInterfaceDecl();
  Decl *parseExternModuleDecl();
  /// Parses `RetType name(params) [effect] (body|;)` given the already
  /// parsed return type.
  FuncDecl *parseFuncRest(TypeExprAst *RetType, const Token &NameTok);
  bool parseTypeParams(std::vector<TypeParamAst> &Out);
  bool parseParamList(std::vector<FuncDecl::Param> &Out);
  bool parseEffectClause(EffectClauseAst &Out);

  // Types.
  TypeExprAst *parseType();
  TypeExprAst *parseTypeNoGuard();
  TypeExprAst *tryParseGuardedType();
  bool parseStateExpr(StateExprAst &Out);
  bool parseKeyStateRef(KeyStateRef &Out);
  bool parseTypeArgs(std::vector<TypeExprAst *> &Out);

  // Statements.
  Stmt *parseStmt();
  Stmt *parseStmtImpl();
  BlockStmt *parseBlock();
  Stmt *parseIf();
  Stmt *parseWhile();
  Stmt *parseReturn();
  Stmt *parseSwitch();
  Stmt *parseFree();
  Stmt *parseBorrow();
  Stmt *parseEndBorrow();
  /// Tries to parse a local declaration (variable or nested function);
  /// returns nullptr without diagnostics if the lookahead is not a
  /// declaration.
  Stmt *tryParseLocalDecl();

  // Expressions (precedence climbing).
  Expr *parseExpr();
  Expr *parseAssign();
  Expr *parseOr();
  Expr *parseAnd();
  Expr *parseEquality();
  Expr *parseRelational();
  Expr *parseAdditive();
  Expr *parseMultiplicative();
  Expr *parseUnary();
  Expr *parsePostfix();
  Expr *parsePrimary();
  Expr *parseNew();
  Expr *parseCtor();

  /// Recursion budget shared by parseExpr/parseStmt/parseType. Each
  /// nesting level costs a dozen-odd stack frames through the
  /// precedence chain, so this bounds real stack use well below any
  /// platform default instead of crashing on pathological input.
  static constexpr unsigned MaxDepth = 512;
  bool enterDepth(const char *What);

  AstContext &Ctx;
  DiagnosticEngine &Diags;
  std::vector<Token> Tokens;
  size_t Idx = 0;
  unsigned Depth = 0;
  /// >0 while inside a tentative parse: suppress diagnostics.
  int Quiet = 0;
  bool SawError = false;
};

} // namespace vault

#endif // VAULT_PARSER_PARSER_H
