//===- Parser.cpp ---------------------------------------------------------===//

#include "parser/Parser.h"

using namespace vault;

Parser::Parser(AstContext &Ctx, const SourceManager &SM, uint32_t BufferId,
               DiagnosticEngine &Diags)
    : Ctx(Ctx), Diags(Diags) {
  Lexer Lex(SM, BufferId, Diags);
  Tokens = Lex.lexAll();
}

bool Parser::parseString(AstContext &Ctx, SourceManager &SM,
                         DiagnosticEngine &Diags, const std::string &Name,
                         const std::string &Text) {
  uint32_t Id = SM.addBuffer(Name, Text);
  Parser P(Ctx, SM, Id, Diags);
  return P.parseProgram();
}

void Parser::error(DiagId Id, const std::string &Msg) {
  if (Quiet > 0)
    return;
  SawError = true;
  Diags.report(Id, tok().Loc, Msg);
}

bool Parser::enterDepth(const char *What) {
  if (Depth < MaxDepth)
    return true;
  error(DiagId::ParseTooDeep,
        std::string(What) + " nesting exceeds the parser's depth limit");
  return false;
}

bool Parser::expect(TokKind K, const char *Context) {
  if (accept(K))
    return true;
  error(DiagId::ParseExpected, std::string("expected ") + tokKindName(K) +
                                   " " + Context + ", found " +
                                   tokKindName(tok().Kind));
  return false;
}

void Parser::skipTo(std::initializer_list<TokKind> Sync) {
  unsigned Nest = 0;
  while (!at(TokKind::Eof)) {
    if (Nest == 0)
      for (TokKind K : Sync)
        if (at(K))
          return;
    if (atOneOf({TokKind::LBrace, TokKind::LParen, TokKind::LBracket}))
      ++Nest;
    else if (atOneOf({TokKind::RBrace, TokKind::RParen, TokKind::RBracket})) {
      if (Nest == 0)
        return;
      --Nest;
    }
    consume();
  }
}

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

bool Parser::parseStateExpr(StateExprAst &Out) {
  Out.Loc = tok().Loc;
  if (accept(TokKind::LParen)) {
    // Bounded state variable: (level <= DISPATCH_LEVEL).
    if (!at(TokKind::Identifier)) {
      error(DiagId::ParseBadType, "expected state variable name");
      return false;
    }
    Out.K = StateExprAst::Kind::BoundedVar;
    Out.Name = consume().Text;
    if (accept(TokKind::LessEqual))
      Out.Strict = false;
    else if (accept(TokKind::Less))
      Out.Strict = true;
    else {
      error(DiagId::ParseBadType, "expected '<=' or '<' in state bound");
      return false;
    }
    if (!at(TokKind::Identifier)) {
      error(DiagId::ParseBadType, "expected state name as bound");
      return false;
    }
    Out.Bound = consume().Text;
    return expect(TokKind::RParen, "after state bound");
  }
  if (!at(TokKind::Identifier)) {
    error(DiagId::ParseBadType, "expected state name");
    return false;
  }
  Out.K = StateExprAst::Kind::Name;
  Out.Name = consume().Text;
  return true;
}

bool Parser::parseKeyStateRef(KeyStateRef &Out) {
  Out.Loc = tok().Loc;
  if (!at(TokKind::Identifier)) {
    error(DiagId::ParseBadType, "expected key name");
    return false;
  }
  Out.KeyName = consume().Text;
  if (accept(TokKind::At)) {
    StateExprAst S;
    if (!parseStateExpr(S))
      return false;
    Out.State = std::move(S);
  }
  return true;
}

/// Attempts `guard (',' guard)* ':'` where a guard is `K`, `K@st`, or
/// `(K @ st)`. Returns the guarded type on success, nullptr (with the
/// token position restored) otherwise.
TypeExprAst *Parser::tryParseGuardedType() {
  Snapshot Snap = save();
  ++Quiet;
  std::vector<KeyStateRef> Guards;
  bool Ok = true;
  do {
    KeyStateRef Ref;
    if (accept(TokKind::LParen)) {
      if (!parseKeyStateRef(Ref) || !accept(TokKind::RParen)) {
        Ok = false;
        break;
      }
    } else if (!parseKeyStateRef(Ref)) {
      Ok = false;
      break;
    }
    Guards.push_back(std::move(Ref));
  } while (accept(TokKind::Comma));
  if (!Ok || !accept(TokKind::Colon)) {
    --Quiet;
    restore(Snap);
    return nullptr;
  }
  --Quiet;
  TypeExprAst *Inner = parseTypeNoGuard();
  if (!Inner) {
    restore(Snap);
    return nullptr;
  }
  SourceLoc L = Guards.front().Loc;
  return Ctx.create<GuardedTypeExpr>(std::move(Guards), Inner, L);
}

bool Parser::parseTypeArgs(std::vector<TypeExprAst *> &Out) {
  // Caller has already consumed '<'.
  do {
    TypeExprAst *Arg = parseType();
    if (!Arg)
      return false;
    Out.push_back(Arg);
  } while (accept(TokKind::Comma));
  return accept(TokKind::Greater);
}

TypeExprAst *Parser::parseTypeNoGuard() {
  SourceLoc L = tok().Loc;
  TypeExprAst *Base = nullptr;
  switch (tok().Kind) {
  case TokKind::KwInt:
    consume();
    Base = Ctx.create<PrimTypeExpr>(PrimKind::Int, L);
    break;
  case TokKind::KwBool:
    consume();
    Base = Ctx.create<PrimTypeExpr>(PrimKind::Bool, L);
    break;
  case TokKind::KwByte:
    consume();
    Base = Ctx.create<PrimTypeExpr>(PrimKind::Byte, L);
    break;
  case TokKind::KwVoid:
    consume();
    Base = Ctx.create<PrimTypeExpr>(PrimKind::Void, L);
    break;
  case TokKind::KwString:
    consume();
    Base = Ctx.create<PrimTypeExpr>(PrimKind::String, L);
    break;
  case TokKind::KwTracked: {
    consume();
    std::optional<std::string> KeyName;
    std::optional<StateExprAst> InitState;
    if (accept(TokKind::LParen)) {
      if (accept(TokKind::At)) {
        StateExprAst S;
        if (!parseStateExpr(S))
          return nullptr;
        InitState = std::move(S);
      } else if (at(TokKind::Identifier)) {
        KeyName = consume().Text;
      } else {
        error(DiagId::ParseBadType, "expected key name or '@state'");
        return nullptr;
      }
      if (!expect(TokKind::RParen, "after tracked key"))
        return nullptr;
    }
    TypeExprAst *Inner = parseTypeNoGuard();
    if (!Inner)
      return nullptr;
    Base = Ctx.create<TrackedTypeExpr>(std::move(KeyName), std::move(InitState),
                                       Inner, L);
    break;
  }
  case TokKind::KwGuarded: {
    // `guarded<K> T` / `guarded<K@state> T`: keyword sugar for the
    // guard-prefix form `K@locked : T`, defaulting the guard state to
    // the mutex substrate's `locked`.
    consume();
    if (!expect(TokKind::Less, "after 'guarded'"))
      return nullptr;
    std::vector<KeyStateRef> Guards;
    do {
      KeyStateRef Ref;
      if (!parseKeyStateRef(Ref))
        return nullptr;
      if (!Ref.State) {
        StateExprAst Locked;
        Locked.K = StateExprAst::Kind::Name;
        Locked.Name = "locked";
        Locked.Loc = Ref.Loc;
        Ref.State = std::move(Locked);
      }
      Guards.push_back(std::move(Ref));
    } while (accept(TokKind::Comma));
    if (!expect(TokKind::Greater, "after guarded key"))
      return nullptr;
    TypeExprAst *Inner = parseTypeNoGuard();
    if (!Inner)
      return nullptr;
    Base = Ctx.create<GuardedTypeExpr>(std::move(Guards), Inner, L);
    break;
  }
  case TokKind::LParen: {
    consume();
    std::vector<TypeExprAst *> Elems;
    do {
      TypeExprAst *E = parseType();
      if (!E)
        return nullptr;
      Elems.push_back(E);
    } while (accept(TokKind::Comma));
    if (!expect(TokKind::RParen, "after tuple type"))
      return nullptr;
    Base = Elems.size() == 1 ? Elems.front()
                             : Ctx.create<TupleTypeExpr>(std::move(Elems), L);
    break;
  }
  case TokKind::Identifier: {
    std::string Name = consume().Text;
    std::vector<TypeExprAst *> Args;
    if (at(TokKind::Less)) {
      // Tentatively parse type arguments; `a < b` never appears in a
      // committed type position, but be safe for tentative contexts.
      Snapshot Snap = save();
      consume();
      ++Quiet;
      std::vector<TypeExprAst *> Tentative;
      bool Ok = parseTypeArgs(Tentative);
      --Quiet;
      if (Ok)
        Args = std::move(Tentative);
      else
        restore(Snap);
    }
    Base = Ctx.create<NamedTypeExpr>(std::move(Name), std::move(Args), L);
    break;
  }
  default:
    error(DiagId::ParseBadType,
          std::string("expected a type, found ") + tokKindName(tok().Kind));
    return nullptr;
  }

  // Postfix array suffixes: T[], T[][].
  while (at(TokKind::LBracket) && tok(1).is(TokKind::RBracket)) {
    consume();
    consume();
    Base = Ctx.create<ArrayTypeExpr>(Base, L);
  }
  return Base;
}

TypeExprAst *Parser::parseType() {
  if (!enterDepth("type"))
    return nullptr;
  ++Depth;
  TypeExprAst *T = nullptr;
  if (atOneOf({TokKind::Identifier, TokKind::LParen}))
    T = tryParseGuardedType();
  if (!T)
    T = parseTypeNoGuard();
  --Depth;
  return T;
}

//===----------------------------------------------------------------------===//
// Effects
//===----------------------------------------------------------------------===//

bool Parser::parseEffectClause(EffectClauseAst &Out) {
  Out.Loc = tok().Loc;
  if (!accept(TokKind::LBracket))
    return true; // Absent clause.
  Out.Present = true;
  if (accept(TokKind::RBracket))
    return true; // Explicit empty effect `[]`.
  do {
    EffectItemAst Item;
    Item.Loc = tok().Loc;
    if (accept(TokKind::Minus))
      Item.M = EffectItemAst::Mode::Consume;
    else if (accept(TokKind::Plus))
      Item.M = EffectItemAst::Mode::Produce;
    else if (at(TokKind::KwNew)) {
      consume();
      Item.M = EffectItemAst::Mode::Fresh;
    } else
      Item.M = EffectItemAst::Mode::Keep;

    if (!at(TokKind::Identifier)) {
      error(DiagId::ParseBadEffect, "expected key name in effect clause");
      return false;
    }
    Item.KeyName = consume().Text;

    if (accept(TokKind::At)) {
      StateExprAst Pre;
      if (!parseStateExpr(Pre))
        return false;
      if (accept(TokKind::Arrow)) {
        if (!at(TokKind::Identifier)) {
          error(DiagId::ParseBadEffect, "expected post state after '->'");
          return false;
        }
        Item.Post = consume().Text;
        Item.Pre = std::move(Pre);
      } else {
        switch (Item.M) {
        case EffectItemAst::Mode::Keep:
          // [K@a] is shorthand for [K@a->a].
          if (Pre.K == StateExprAst::Kind::Name)
            Item.Post = Pre.Name;
          Item.Pre = std::move(Pre);
          break;
        case EffectItemAst::Mode::Consume:
          Item.Pre = std::move(Pre);
          break;
        case EffectItemAst::Mode::Produce:
        case EffectItemAst::Mode::Fresh:
          if (Pre.K != StateExprAst::Kind::Name) {
            error(DiagId::ParseBadEffect,
                  "produced keys need a concrete post state");
            return false;
          }
          Item.Post = Pre.Name;
          break;
        }
      }
    }
    Out.Items.push_back(std::move(Item));
  } while (accept(TokKind::Comma));
  return expect(TokKind::RBracket, "to close effect clause");
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

Expr *Parser::parseExpr() {
  if (!enterDepth("expression"))
    return nullptr;
  ++Depth;
  Expr *E = parseAssign();
  --Depth;
  return E;
}

Expr *Parser::parseAssign() {
  Expr *Lhs = parseOr();
  if (!Lhs)
    return nullptr;
  if (at(TokKind::Equal)) {
    SourceLoc L = tok().Loc;
    consume();
    Expr *Rhs = parseAssign();
    if (!Rhs)
      return nullptr;
    return Ctx.create<AssignExpr>(Lhs, Rhs, L);
  }
  return Lhs;
}

Expr *Parser::parseOr() {
  Expr *Lhs = parseAnd();
  if (!Lhs)
    return nullptr;
  while (at(TokKind::PipePipe)) {
    SourceLoc L = consume().Loc;
    Expr *Rhs = parseAnd();
    if (!Rhs)
      return nullptr;
    Lhs = Ctx.create<BinaryExpr>(BinaryOp::Or, Lhs, Rhs, L);
  }
  return Lhs;
}

Expr *Parser::parseAnd() {
  Expr *Lhs = parseEquality();
  if (!Lhs)
    return nullptr;
  while (at(TokKind::AmpAmp)) {
    SourceLoc L = consume().Loc;
    Expr *Rhs = parseEquality();
    if (!Rhs)
      return nullptr;
    Lhs = Ctx.create<BinaryExpr>(BinaryOp::And, Lhs, Rhs, L);
  }
  return Lhs;
}

Expr *Parser::parseEquality() {
  Expr *Lhs = parseRelational();
  if (!Lhs)
    return nullptr;
  while (atOneOf({TokKind::EqualEqual, TokKind::ExclaimEqual})) {
    BinaryOp Op = at(TokKind::EqualEqual) ? BinaryOp::Eq : BinaryOp::Ne;
    SourceLoc L = consume().Loc;
    Expr *Rhs = parseRelational();
    if (!Rhs)
      return nullptr;
    Lhs = Ctx.create<BinaryExpr>(Op, Lhs, Rhs, L);
  }
  return Lhs;
}

Expr *Parser::parseRelational() {
  Expr *Lhs = parseAdditive();
  if (!Lhs)
    return nullptr;
  while (atOneOf({TokKind::Less, TokKind::LessEqual, TokKind::Greater,
                  TokKind::GreaterEqual})) {
    BinaryOp Op;
    switch (tok().Kind) {
    case TokKind::Less:
      Op = BinaryOp::Lt;
      break;
    case TokKind::LessEqual:
      Op = BinaryOp::Le;
      break;
    case TokKind::Greater:
      Op = BinaryOp::Gt;
      break;
    default:
      Op = BinaryOp::Ge;
      break;
    }
    SourceLoc L = consume().Loc;
    Expr *Rhs = parseAdditive();
    if (!Rhs)
      return nullptr;
    Lhs = Ctx.create<BinaryExpr>(Op, Lhs, Rhs, L);
  }
  return Lhs;
}

Expr *Parser::parseAdditive() {
  Expr *Lhs = parseMultiplicative();
  if (!Lhs)
    return nullptr;
  while (atOneOf({TokKind::Plus, TokKind::Minus})) {
    BinaryOp Op = at(TokKind::Plus) ? BinaryOp::Add : BinaryOp::Sub;
    SourceLoc L = consume().Loc;
    Expr *Rhs = parseMultiplicative();
    if (!Rhs)
      return nullptr;
    Lhs = Ctx.create<BinaryExpr>(Op, Lhs, Rhs, L);
  }
  return Lhs;
}

Expr *Parser::parseMultiplicative() {
  Expr *Lhs = parseUnary();
  if (!Lhs)
    return nullptr;
  while (atOneOf({TokKind::Star, TokKind::Slash, TokKind::Percent})) {
    BinaryOp Op = at(TokKind::Star)    ? BinaryOp::Mul
                  : at(TokKind::Slash) ? BinaryOp::Div
                                       : BinaryOp::Rem;
    SourceLoc L = consume().Loc;
    Expr *Rhs = parseUnary();
    if (!Rhs)
      return nullptr;
    Lhs = Ctx.create<BinaryExpr>(Op, Lhs, Rhs, L);
  }
  return Lhs;
}

Expr *Parser::parseUnary() {
  if (at(TokKind::Exclaim)) {
    SourceLoc L = consume().Loc;
    Expr *Operand = parseUnary();
    if (!Operand)
      return nullptr;
    return Ctx.create<UnaryExpr>(UnaryOp::Not, Operand, L);
  }
  if (at(TokKind::Minus)) {
    SourceLoc L = consume().Loc;
    Expr *Operand = parseUnary();
    if (!Operand)
      return nullptr;
    return Ctx.create<UnaryExpr>(UnaryOp::Neg, Operand, L);
  }
  return parsePostfix();
}

Expr *Parser::parsePostfix() {
  Expr *Base = parsePrimary();
  if (!Base)
    return nullptr;
  for (;;) {
    SourceLoc L = tok().Loc;
    if (accept(TokKind::LParen)) {
      std::vector<Expr *> Args;
      if (!at(TokKind::RParen)) {
        do {
          Expr *A = parseExpr();
          if (!A)
            return nullptr;
          Args.push_back(A);
        } while (accept(TokKind::Comma));
      }
      if (!expect(TokKind::RParen, "to close call"))
        return nullptr;
      Base = Ctx.create<CallExpr>(Base, std::move(Args), L);
      continue;
    }
    if (accept(TokKind::Dot)) {
      if (!at(TokKind::Identifier)) {
        error(DiagId::ParseUnexpectedToken, "expected field name after '.'");
        return nullptr;
      }
      std::string Field = consume().Text;
      Base = Ctx.create<FieldExpr>(Base, std::move(Field), L);
      continue;
    }
    if (accept(TokKind::LBracket)) {
      Expr *Index = parseExpr();
      if (!Index)
        return nullptr;
      if (!expect(TokKind::RBracket, "to close index"))
        return nullptr;
      Base = Ctx.create<IndexExpr>(Base, Index, L);
      continue;
    }
    if (at(TokKind::PlusPlus) || at(TokKind::MinusMinus)) {
      bool Inc = at(TokKind::PlusPlus);
      consume();
      Base = Ctx.create<IncDecExpr>(Base, Inc, L);
      continue;
    }
    return Base;
  }
}

Expr *Parser::parseCtor() {
  SourceLoc L = tok().Loc;
  std::string Name = consume().Text; // TickIdentifier.
  std::vector<KeyStateRef> KeyArgs;
  if (accept(TokKind::LBrace)) {
    do {
      KeyStateRef Ref;
      if (!parseKeyStateRef(Ref))
        return nullptr;
      KeyArgs.push_back(std::move(Ref));
    } while (accept(TokKind::Comma));
    if (!expect(TokKind::RBrace, "to close constructor key arguments"))
      return nullptr;
  }
  std::vector<Expr *> Args;
  if (accept(TokKind::LParen)) {
    if (!at(TokKind::RParen)) {
      do {
        Expr *A = parseExpr();
        if (!A)
          return nullptr;
        Args.push_back(A);
      } while (accept(TokKind::Comma));
    }
    if (!expect(TokKind::RParen, "to close constructor arguments"))
      return nullptr;
  }
  return Ctx.create<CtorExpr>(std::move(Name), std::move(KeyArgs),
                              std::move(Args), L);
}

Expr *Parser::parseNew() {
  SourceLoc L = consume().Loc; // 'new'
  bool Tracked = false;
  Expr *Region = nullptr;
  if (at(TokKind::KwTracked)) {
    consume();
    Tracked = true;
  } else if (accept(TokKind::LParen)) {
    Region = parseExpr();
    if (!Region)
      return nullptr;
    if (!expect(TokKind::RParen, "after region argument"))
      return nullptr;
  }
  TypeExprAst *Type = parseTypeNoGuard();
  if (!Type)
    return nullptr;
  std::vector<NewExpr::FieldInit> Inits;
  if (accept(TokKind::LBrace)) {
    while (!at(TokKind::RBrace)) {
      NewExpr::FieldInit Init;
      Init.Loc = tok().Loc;
      if (!at(TokKind::Identifier)) {
        error(DiagId::ParseUnexpectedToken, "expected field initializer");
        return nullptr;
      }
      Init.Field = consume().Text;
      if (!expect(TokKind::Equal, "in field initializer"))
        return nullptr;
      Init.Init = parseExpr();
      if (!Init.Init)
        return nullptr;
      Inits.push_back(Init);
      // The paper separates field initializers with ';'; accept ',' too.
      if (!accept(TokKind::Semi))
        accept(TokKind::Comma);
    }
    consume(); // '}'
  }
  return Ctx.create<NewExpr>(Tracked, Region, Type, std::move(Inits), L);
}

Expr *Parser::parsePrimary() {
  SourceLoc L = tok().Loc;
  switch (tok().Kind) {
  case TokKind::IntLiteral: {
    Token T = consume();
    return Ctx.create<IntLiteralExpr>(T.IntValue, L);
  }
  case TokKind::KwTrue:
    consume();
    return Ctx.create<BoolLiteralExpr>(true, L);
  case TokKind::KwFalse:
    consume();
    return Ctx.create<BoolLiteralExpr>(false, L);
  case TokKind::StringLiteral: {
    Token T = consume();
    return Ctx.create<StringLiteralExpr>(T.Text, L);
  }
  case TokKind::Identifier: {
    Token T = consume();
    return Ctx.create<NameExpr>("", T.Text, L);
  }
  case TokKind::TickIdentifier:
    return parseCtor();
  case TokKind::KwNew:
    return parseNew();
  case TokKind::LParen: {
    consume();
    std::vector<Expr *> Elems;
    do {
      Expr *E = parseExpr();
      if (!E)
        return nullptr;
      Elems.push_back(E);
    } while (accept(TokKind::Comma));
    if (!expect(TokKind::RParen, "to close parenthesized expression"))
      return nullptr;
    if (Elems.size() == 1)
      return Elems.front();
    return Ctx.create<TupleExpr>(std::move(Elems), L);
  }
  default:
    error(DiagId::ParseUnexpectedToken,
          std::string("expected an expression, found ") +
              tokKindName(tok().Kind));
    return nullptr;
  }
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

BlockStmt *Parser::parseBlock() {
  SourceLoc L = tok().Loc;
  if (!expect(TokKind::LBrace, "to open block"))
    return nullptr;
  std::vector<Stmt *> Stmts;
  while (!at(TokKind::RBrace) && !at(TokKind::Eof)) {
    size_t Before = Idx;
    Stmt *S = parseStmt();
    if (!S) {
      skipTo({TokKind::Semi, TokKind::RBrace});
      accept(TokKind::Semi);
      if (Idx == Before)
        consume();
      continue;
    }
    Stmts.push_back(S);
  }
  expect(TokKind::RBrace, "to close block");
  return Ctx.create<BlockStmt>(std::move(Stmts), L);
}

Stmt *Parser::parseIf() {
  SourceLoc L = consume().Loc; // 'if'
  if (!expect(TokKind::LParen, "after 'if'"))
    return nullptr;
  Expr *Cond = parseExpr();
  if (!Cond)
    return nullptr;
  if (!expect(TokKind::RParen, "after if condition"))
    return nullptr;
  Stmt *Then = parseStmt();
  if (!Then)
    return nullptr;
  Stmt *Else = nullptr;
  if (accept(TokKind::KwElse)) {
    Else = parseStmt();
    if (!Else)
      return nullptr;
  }
  return Ctx.create<IfStmt>(Cond, Then, Else, L);
}

Stmt *Parser::parseWhile() {
  SourceLoc L = consume().Loc; // 'while'
  if (!expect(TokKind::LParen, "after 'while'"))
    return nullptr;
  Expr *Cond = parseExpr();
  if (!Cond)
    return nullptr;
  if (!expect(TokKind::RParen, "after while condition"))
    return nullptr;
  Stmt *Body = parseStmt();
  if (!Body)
    return nullptr;
  return Ctx.create<WhileStmt>(Cond, Body, L);
}

Stmt *Parser::parseReturn() {
  SourceLoc L = consume().Loc; // 'return'
  Expr *Value = nullptr;
  if (!at(TokKind::Semi)) {
    Value = parseExpr();
    if (!Value)
      return nullptr;
  }
  if (!expect(TokKind::Semi, "after return"))
    return nullptr;
  return Ctx.create<ReturnStmt>(Value, L);
}

Stmt *Parser::parseFree() {
  SourceLoc L = consume().Loc; // 'free'
  if (!expect(TokKind::LParen, "after 'free'"))
    return nullptr;
  Expr *Operand = parseExpr();
  if (!Operand)
    return nullptr;
  if (!expect(TokKind::RParen, "after free operand"))
    return nullptr;
  if (!expect(TokKind::Semi, "after free statement"))
    return nullptr;
  return Ctx.create<FreeStmt>(Operand, L);
}

Stmt *Parser::parseBorrow() {
  SourceLoc L = consume().Loc; // 'borrow'
  if (!at(TokKind::Identifier)) {
    error(DiagId::ParseExpected, "expected borrow binder name");
    return nullptr;
  }
  std::string Binder = consume().Text;
  if (!expect(TokKind::Equal, "after borrow binder"))
    return nullptr;
  Expr *Source = parseExpr();
  if (!Source)
    return nullptr;
  if (!expect(TokKind::Semi, "after borrow statement"))
    return nullptr;
  return Ctx.create<BorrowStmt>(std::move(Binder), Source, L);
}

Stmt *Parser::parseEndBorrow() {
  SourceLoc L = consume().Loc; // 'endborrow'
  Expr *Operand = parseExpr();
  if (!Operand)
    return nullptr;
  if (!expect(TokKind::Semi, "after endborrow statement"))
    return nullptr;
  return Ctx.create<EndBorrowStmt>(Operand, L);
}

Stmt *Parser::parseSwitch() {
  SourceLoc L = consume().Loc; // 'switch'
  if (!expect(TokKind::LParen, "after 'switch'"))
    return nullptr;
  Expr *Subject = parseExpr();
  if (!Subject)
    return nullptr;
  if (!expect(TokKind::RParen, "after switch subject"))
    return nullptr;
  if (!expect(TokKind::LBrace, "to open switch body"))
    return nullptr;

  std::vector<SwitchStmt::Case> Cases;
  while (!at(TokKind::RBrace) && !at(TokKind::Eof)) {
    SwitchStmt::Case C;
    C.Loc = tok().Loc;
    C.Pattern.Loc = tok().Loc;
    if (accept(TokKind::KwDefault)) {
      C.Pattern.IsDefault = true;
      if (!expect(TokKind::Colon, "after 'default'"))
        return nullptr;
    } else {
      if (!expect(TokKind::KwCase, "in switch body"))
        return nullptr;
      if (!at(TokKind::TickIdentifier)) {
        error(DiagId::ParseBadPattern, "expected constructor pattern");
        return nullptr;
      }
      C.Pattern.CtorName = consume().Text;
      if (accept(TokKind::LParen)) {
        C.Pattern.HasParens = true;
        do {
          if (accept(TokKind::Underscore)) {
            C.Pattern.Binders.push_back("");
          } else if (at(TokKind::Identifier)) {
            C.Pattern.Binders.push_back(consume().Text);
          } else {
            error(DiagId::ParseBadPattern, "expected binder or '_'");
            return nullptr;
          }
        } while (accept(TokKind::Comma));
        if (!expect(TokKind::RParen, "to close pattern"))
          return nullptr;
      }
      if (!expect(TokKind::Colon, "after case pattern"))
        return nullptr;
    }
    while (!atOneOf({TokKind::KwCase, TokKind::KwDefault, TokKind::RBrace,
                     TokKind::Eof})) {
      size_t Before = Idx;
      Stmt *S = parseStmt();
      if (!S) {
        skipTo({TokKind::Semi, TokKind::KwCase, TokKind::KwDefault,
                TokKind::RBrace});
        accept(TokKind::Semi);
        if (Idx == Before)
          consume();
        continue;
      }
      C.Body.push_back(S);
    }
    Cases.push_back(std::move(C));
  }
  expect(TokKind::RBrace, "to close switch");
  return Ctx.create<SwitchStmt>(Subject, std::move(Cases), L);
}

Stmt *Parser::tryParseLocalDecl() {
  // Fast negative checks: a declaration must start with a type.
  if (!atOneOf({TokKind::KwInt, TokKind::KwBool, TokKind::KwByte,
                TokKind::KwVoid, TokKind::KwString, TokKind::KwTracked,
                TokKind::KwGuarded, TokKind::Identifier, TokKind::LParen}))
    return nullptr;

  Snapshot Snap = save();
  ++Quiet;
  TypeExprAst *Type = parseType();
  if (!Type || !at(TokKind::Identifier)) {
    --Quiet;
    restore(Snap);
    return nullptr;
  }
  Token NameTok = consume();
  SourceLoc L = NameTok.Loc;

  if (at(TokKind::LParen)) {
    // Nested function declaration (paper Fig. 7's RegainIrp).
    --Quiet;
    FuncDecl *F = parseFuncRest(Type, NameTok);
    if (!F) {
      restore(Snap);
      return nullptr;
    }
    return Ctx.create<DeclStmt>(F, L);
  }

  if (at(TokKind::Equal)) {
    --Quiet;
    consume();
    Expr *Init = parseExpr();
    if (!Init) {
      restore(Snap);
      return nullptr;
    }
    if (!expect(TokKind::Semi, "after variable declaration")) {
      restore(Snap);
      return nullptr;
    }
    auto *V = Ctx.create<VarDecl>(Type, NameTok.Text, Init, L);
    return Ctx.create<DeclStmt>(V, L);
  }

  if (at(TokKind::Semi)) {
    --Quiet;
    consume();
    auto *V = Ctx.create<VarDecl>(Type, NameTok.Text, nullptr, L);
    return Ctx.create<DeclStmt>(V, L);
  }

  --Quiet;
  restore(Snap);
  return nullptr;
}

Stmt *Parser::parseStmt() {
  if (!enterDepth("statement"))
    return nullptr;
  ++Depth;
  Stmt *S = parseStmtImpl();
  --Depth;
  return S;
}

Stmt *Parser::parseStmtImpl() {
  switch (tok().Kind) {
  case TokKind::LBrace:
    return parseBlock();
  case TokKind::KwIf:
    return parseIf();
  case TokKind::KwWhile:
    return parseWhile();
  case TokKind::KwReturn:
    return parseReturn();
  case TokKind::KwSwitch:
    return parseSwitch();
  case TokKind::KwFree:
    return parseFree();
  case TokKind::KwBorrow:
    return parseBorrow();
  case TokKind::KwEndborrow:
    return parseEndBorrow();
  case TokKind::Semi:
    consume();
    return Ctx.create<BlockStmt>(std::vector<Stmt *>{}, tok().Loc);
  default:
    break;
  }
  if (Stmt *S = tryParseLocalDecl())
    return S;
  SourceLoc L = tok().Loc;
  Expr *E = parseExpr();
  if (!E)
    return nullptr;
  if (!expect(TokKind::Semi, "after expression statement"))
    return nullptr;
  return Ctx.create<ExprStmt>(E, L);
}

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

bool Parser::parseTypeParams(std::vector<TypeParamAst> &Out) {
  if (!accept(TokKind::Less))
    return true;
  do {
    TypeParamAst P;
    P.Loc = tok().Loc;
    if (accept(TokKind::KwType))
      P.K = TypeParamAst::Kind::Type;
    else if (accept(TokKind::KwKey))
      P.K = TypeParamAst::Kind::Key;
    else if (accept(TokKind::KwState))
      P.K = TypeParamAst::Kind::State;
    else {
      error(DiagId::ParseExpected, "expected 'type', 'key', or 'state'");
      return false;
    }
    if (!at(TokKind::Identifier)) {
      error(DiagId::ParseExpected, "expected parameter name");
      return false;
    }
    P.Name = consume().Text;
    Out.push_back(std::move(P));
  } while (accept(TokKind::Comma));
  return expect(TokKind::Greater, "to close type parameters");
}

bool Parser::parseParamList(std::vector<FuncDecl::Param> &Out) {
  if (!expect(TokKind::LParen, "to open parameter list"))
    return false;
  if (accept(TokKind::RParen))
    return true;
  do {
    FuncDecl::Param P;
    P.Loc = tok().Loc;
    P.Type = parseType();
    if (!P.Type)
      return false;
    if (at(TokKind::Identifier))
      P.Name = consume().Text;
    Out.push_back(P);
  } while (accept(TokKind::Comma));
  return expect(TokKind::RParen, "to close parameter list");
}

FuncDecl *Parser::parseFuncRest(TypeExprAst *RetType, const Token &NameTok) {
  std::vector<FuncDecl::Param> Params;
  if (!parseParamList(Params))
    return nullptr;
  EffectClauseAst Effect;
  if (!parseEffectClause(Effect))
    return nullptr;
  BlockStmt *Body = nullptr;
  if (at(TokKind::LBrace)) {
    Body = parseBlock();
    if (!Body)
      return nullptr;
  } else if (!expect(TokKind::Semi, "after function prototype")) {
    return nullptr;
  }
  return Ctx.create<FuncDecl>(RetType, NameTok.Text, std::move(Params),
                              std::move(Effect), Body, NameTok.Loc);
}

Decl *Parser::parseStatesetDecl() {
  SourceLoc L = consume().Loc; // 'stateset'
  if (!at(TokKind::Identifier)) {
    error(DiagId::ParseExpected, "expected stateset name");
    return nullptr;
  }
  std::string Name = consume().Text;
  if (!expect(TokKind::Equal, "in stateset declaration"))
    return nullptr;
  if (!expect(TokKind::LBracket, "to open stateset"))
    return nullptr;
  std::vector<StatesetDecl::RankGroup> Ranks;
  StatesetDecl::RankGroup Current;
  for (;;) {
    if (!at(TokKind::Identifier)) {
      error(DiagId::ParseExpected, "expected state name");
      return nullptr;
    }
    Current.push_back(consume().Text);
    if (accept(TokKind::Comma))
      continue;
    if (accept(TokKind::Less)) {
      Ranks.push_back(std::move(Current));
      Current.clear();
      continue;
    }
    break;
  }
  Ranks.push_back(std::move(Current));
  if (!expect(TokKind::RBracket, "to close stateset"))
    return nullptr;
  if (!expect(TokKind::Semi, "after stateset declaration"))
    return nullptr;
  return Ctx.create<StatesetDecl>(std::move(Name), std::move(Ranks), L);
}

Decl *Parser::parseKeyDecl() {
  SourceLoc L = consume().Loc; // 'key'
  if (!at(TokKind::Identifier)) {
    error(DiagId::ParseExpected, "expected key name");
    return nullptr;
  }
  std::string Name = consume().Text;
  std::string Stateset;
  if (accept(TokKind::At)) {
    if (!at(TokKind::Identifier)) {
      error(DiagId::ParseExpected, "expected stateset name after '@'");
      return nullptr;
    }
    Stateset = consume().Text;
  }
  if (!expect(TokKind::Semi, "after key declaration"))
    return nullptr;
  return Ctx.create<KeyDecl>(std::move(Name), std::move(Stateset), L);
}

Decl *Parser::parseTypeDecl() {
  SourceLoc L = consume().Loc; // 'type'
  if (!at(TokKind::Identifier)) {
    error(DiagId::ParseExpected, "expected type name");
    return nullptr;
  }
  std::string Name = consume().Text;
  std::vector<TypeParamAst> Params;
  if (!parseTypeParams(Params))
    return nullptr;
  TypeExprAst *Underlying = nullptr;
  if (accept(TokKind::Equal)) {
    // The alias body may be a function type: `T name(params) [eff]`.
    Snapshot Snap = save();
    ++Quiet;
    TypeExprAst *Ret = parseType();
    if (Ret && at(TokKind::Identifier) && tok(1).is(TokKind::LParen)) {
      consume(); // routine name, documentation only.
      --Quiet;
      std::vector<FuncDecl::Param> Params2;
      if (!parseParamList(Params2))
        return nullptr;
      EffectClauseAst Effect;
      if (!parseEffectClause(Effect))
        return nullptr;
      std::vector<FuncTypeExpr::Param> FParams;
      for (const auto &P : Params2)
        FParams.push_back({P.Type, P.Name});
      Underlying =
          Ctx.create<FuncTypeExpr>(Ret, std::move(FParams), std::move(Effect), L);
    } else {
      --Quiet;
      restore(Snap);
      Underlying = parseType();
      if (!Underlying)
        return nullptr;
    }
  }
  if (!expect(TokKind::Semi, "after type declaration"))
    return nullptr;
  return Ctx.create<TypeAliasDecl>(std::move(Name), std::move(Params),
                                   Underlying, L);
}

Decl *Parser::parseStructDecl() {
  SourceLoc L = consume().Loc; // 'struct'
  if (!at(TokKind::Identifier)) {
    error(DiagId::ParseExpected, "expected struct name");
    return nullptr;
  }
  std::string Name = consume().Text;
  std::vector<TypeParamAst> Params;
  if (!parseTypeParams(Params))
    return nullptr;
  if (!expect(TokKind::LBrace, "to open struct body"))
    return nullptr;
  std::vector<StructDecl::Field> Fields;
  while (!at(TokKind::RBrace) && !at(TokKind::Eof)) {
    StructDecl::Field F;
    F.Loc = tok().Loc;
    F.Type = parseType();
    if (!F.Type)
      return nullptr;
    if (!at(TokKind::Identifier)) {
      error(DiagId::ParseExpected, "expected field name");
      return nullptr;
    }
    F.Name = consume().Text;
    if (!expect(TokKind::Semi, "after struct field"))
      return nullptr;
    Fields.push_back(F);
  }
  expect(TokKind::RBrace, "to close struct body");
  accept(TokKind::Semi);
  return Ctx.create<StructDecl>(std::move(Name), std::move(Params),
                                std::move(Fields), L);
}

Decl *Parser::parseVariantDecl() {
  SourceLoc L = consume().Loc; // 'variant'
  if (!at(TokKind::Identifier)) {
    error(DiagId::ParseExpected, "expected variant name");
    return nullptr;
  }
  std::string Name = consume().Text;
  std::vector<TypeParamAst> Params;
  if (!parseTypeParams(Params))
    return nullptr;
  if (!expect(TokKind::LBracket, "to open variant constructors"))
    return nullptr;
  std::vector<VariantDecl::Ctor> Ctors;
  do {
    VariantDecl::Ctor C;
    C.Loc = tok().Loc;
    if (!at(TokKind::TickIdentifier)) {
      error(DiagId::ParseExpected, "expected constructor name");
      return nullptr;
    }
    C.Name = consume().Text;
    if (accept(TokKind::LParen)) {
      do {
        TypeExprAst *T = parseType();
        if (!T)
          return nullptr;
        C.Payload.push_back(T);
      } while (accept(TokKind::Comma));
      if (!expect(TokKind::RParen, "to close constructor payload"))
        return nullptr;
    }
    if (accept(TokKind::LBrace)) {
      do {
        KeyStateRef Ref;
        if (!parseKeyStateRef(Ref))
          return nullptr;
        C.KeyAttachments.push_back(std::move(Ref));
      } while (accept(TokKind::Comma));
      if (!expect(TokKind::RBrace, "to close key attachments"))
        return nullptr;
    }
    Ctors.push_back(std::move(C));
  } while (accept(TokKind::Pipe));
  if (!expect(TokKind::RBracket, "to close variant declaration"))
    return nullptr;
  if (!expect(TokKind::Semi, "after variant declaration"))
    return nullptr;
  return Ctx.create<VariantDecl>(std::move(Name), std::move(Params),
                                 std::move(Ctors), L);
}

Decl *Parser::parseInterfaceDecl() {
  SourceLoc L = consume().Loc; // 'interface'
  if (!at(TokKind::Identifier)) {
    error(DiagId::ParseExpected, "expected interface name");
    return nullptr;
  }
  std::string Name = consume().Text;
  if (!expect(TokKind::LBrace, "to open interface body"))
    return nullptr;
  std::vector<Decl *> Members;
  while (!at(TokKind::RBrace) && !at(TokKind::Eof)) {
    size_t Before = Idx;
    Decl *D = parseTopLevelDecl();
    if (!D) {
      skipTo({TokKind::Semi, TokKind::RBrace});
      accept(TokKind::Semi);
      if (Idx == Before)
        consume();
      continue;
    }
    Members.push_back(D);
  }
  expect(TokKind::RBrace, "to close interface body");
  accept(TokKind::Semi);
  return Ctx.create<InterfaceDecl>(std::move(Name), std::move(Members), L);
}

Decl *Parser::parseExternModuleDecl() {
  SourceLoc L = consume().Loc; // 'extern'
  if (!expect(TokKind::KwModule, "after 'extern'"))
    return nullptr;
  if (!at(TokKind::Identifier)) {
    error(DiagId::ParseExpected, "expected module name");
    return nullptr;
  }
  std::string Name = consume().Text;
  if (!expect(TokKind::Colon, "in module declaration"))
    return nullptr;
  if (!at(TokKind::Identifier)) {
    error(DiagId::ParseExpected, "expected interface name");
    return nullptr;
  }
  std::string Iface = consume().Text;
  if (!expect(TokKind::Semi, "after module declaration"))
    return nullptr;
  return Ctx.create<ModuleDecl>(std::move(Name), std::move(Iface), L);
}

Decl *Parser::parseTopLevelDecl() {
  switch (tok().Kind) {
  case TokKind::KwStateset:
    return parseStatesetDecl();
  case TokKind::KwKey:
    return parseKeyDecl();
  case TokKind::KwType:
    return parseTypeDecl();
  case TokKind::KwStruct:
    return parseStructDecl();
  case TokKind::KwVariant:
    return parseVariantDecl();
  case TokKind::KwInterface:
    return parseInterfaceDecl();
  case TokKind::KwExtern:
    return parseExternModuleDecl();
  default:
    break;
  }
  // A function: RetType Name ( ...
  TypeExprAst *Ret = parseType();
  if (!Ret)
    return nullptr;
  if (!at(TokKind::Identifier)) {
    error(DiagId::ParseExpected, "expected function name");
    return nullptr;
  }
  Token NameTok = consume();
  return parseFuncRest(Ret, NameTok);
}

bool Parser::parseProgram() {
  while (!at(TokKind::Eof)) {
    size_t Before = Idx;
    Decl *D = parseTopLevelDecl();
    if (!D) {
      skipTo({TokKind::Semi, TokKind::KwInterface, TokKind::KwType,
              TokKind::KwVariant, TokKind::KwStateset, TokKind::KwKey,
              TokKind::KwStruct, TokKind::KwExtern});
      accept(TokKind::Semi);
      // Guarantee progress: a failed parse that consumed nothing and
      // stopped on a sync token would otherwise loop forever.
      if (Idx == Before)
        consume();
      continue;
    }
    Ctx.program().Decls.push_back(D);
  }
  return !SawError;
}
