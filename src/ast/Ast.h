//===- Ast.h - Vault abstract syntax ----------------------------*- C++ -*-===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract syntax for Vault's surface language: C-like declarations,
/// statements and expressions extended with the paper's constructs —
/// tracked types, guarded types (`K@s : T`), effect clauses, statesets,
/// keyed variants with tick constructors, and `new(region)` allocation.
///
/// Nodes are arena-owned by an AstContext and use LLVM-style kind tags
/// with `classof` for dyn_cast-style dispatch (no RTTI).
///
//===----------------------------------------------------------------------===//

#ifndef VAULT_AST_AST_H
#define VAULT_AST_AST_H

#include "support/SourceManager.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace vault {

class AstContext;
class Decl;
class Stmt;
class Expr;
class TypeExprAst;
class FuncDecl;

//===----------------------------------------------------------------------===//
// Casting utilities (LLVM-style isa/cast/dyn_cast over kind tags).
//===----------------------------------------------------------------------===//

template <typename To, typename From> bool isa(const From *Node) {
  assert(Node && "isa<> on null node");
  return To::classof(Node);
}

template <typename To, typename From> To *cast(From *Node) {
  assert(isa<To>(Node) && "cast<> to incompatible kind");
  return static_cast<To *>(Node);
}

template <typename To, typename From> const To *cast(const From *Node) {
  assert(isa<To>(Node) && "cast<> to incompatible kind");
  return static_cast<const To *>(Node);
}

template <typename To, typename From> To *dyn_cast(From *Node) {
  return Node && To::classof(Node) ? static_cast<To *>(Node) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *Node) {
  return Node && To::classof(Node) ? static_cast<const To *>(Node) : nullptr;
}

//===----------------------------------------------------------------------===//
// Auxiliary syntax shared by several node categories.
//===----------------------------------------------------------------------===//

/// A state expression in guard/effect position: either a plain name
/// (concrete state or state variable) or a bounded variable
/// `(var <= Bound)` / `(var < Bound)` as used for IRQL polymorphism.
struct StateExprAst {
  enum class Kind { Name, BoundedVar };
  Kind K = Kind::Name;
  std::string Name;       ///< State name, or variable name for BoundedVar.
  std::string Bound;      ///< Upper bound state for BoundedVar.
  bool Strict = false;    ///< True for `<`, false for `<=`.
  SourceLoc Loc;
};

/// A key with an optional state annotation: `K`, `K@open`,
/// `IRQL@(level <= DISPATCH_LEVEL)`.
struct KeyStateRef {
  std::string KeyName;
  std::optional<StateExprAst> State;
  SourceLoc Loc;
};

/// One conjunct of an effect clause.
///
///   [K]            Keep, no states        (held before and after)
///   [K@a]          Keep, pre=a            (shorthand for a->a)
///   [K@a->b]       Keep, pre=a, post=b
///   [-K@a]         Consume, pre=a
///   [+K@b]         Produce, post=b
///   [new K@b]      Fresh, post=b          (fresh key returned to caller)
struct EffectItemAst {
  enum class Mode { Keep, Consume, Produce, Fresh };
  Mode M = Mode::Keep;
  std::string KeyName;
  std::optional<StateExprAst> Pre;
  std::optional<std::string> Post;
  SourceLoc Loc;
};

/// A function's effect clause: the bracketed list after the parameter
/// list. Absent clause means "no keys added, no keys removed".
struct EffectClauseAst {
  std::vector<EffectItemAst> Items;
  SourceLoc Loc;
  bool Present = false;
};

/// A formal type-level parameter: `type T`, `key K`, or `state S`.
struct TypeParamAst {
  enum class Kind { Type, Key, State };
  Kind K = Kind::Type;
  std::string Name;
  SourceLoc Loc;
};

//===----------------------------------------------------------------------===//
// Type expressions.
//===----------------------------------------------------------------------===//

enum class TypeExprKind : uint8_t {
  Prim,
  Named,
  Tracked,
  Guarded,
  Tuple,
  Array,
  Func,
};

class TypeExprAst {
public:
  TypeExprKind kind() const { return Kind; }
  SourceLoc loc() const { return Loc; }

protected:
  TypeExprAst(TypeExprKind K, SourceLoc L) : Kind(K), Loc(L) {}

private:
  TypeExprKind Kind;
  SourceLoc Loc;
};

enum class PrimKind : uint8_t { Int, Bool, Byte, Void, String };

class PrimTypeExpr : public TypeExprAst {
public:
  PrimTypeExpr(PrimKind P, SourceLoc L) : TypeExprAst(TypeExprKind::Prim, L), Prim(P) {}
  PrimKind prim() const { return Prim; }
  static bool classof(const TypeExprAst *T) {
    return T->kind() == TypeExprKind::Prim;
  }

private:
  PrimKind Prim;
};

/// `NAME` or `NAME<arg, ...>`. Each argument is parsed as a type
/// expression; whether it denotes a type, key, or state is resolved
/// against the referenced declaration's parameter kinds during sema.
class NamedTypeExpr : public TypeExprAst {
public:
  NamedTypeExpr(std::string Name, std::vector<TypeExprAst *> Args, SourceLoc L)
      : TypeExprAst(TypeExprKind::Named, L), Name(std::move(Name)),
        Args(std::move(Args)) {}
  const std::string &name() const { return Name; }
  const std::vector<TypeExprAst *> &args() const { return Args; }
  static bool classof(const TypeExprAst *T) {
    return T->kind() == TypeExprKind::Named;
  }

private:
  std::string Name;
  std::vector<TypeExprAst *> Args;
};

/// `tracked(K) T` (named key) or `tracked T` (anonymous). Also used
/// for key allocation annotations like `tracked(@raw) sock` in which
/// only the initial state is given: there KeyName is empty and
/// InitialState is set.
class TrackedTypeExpr : public TypeExprAst {
public:
  TrackedTypeExpr(std::optional<std::string> KeyName,
                  std::optional<StateExprAst> InitialState, TypeExprAst *Inner,
                  SourceLoc L)
      : TypeExprAst(TypeExprKind::Tracked, L), KeyName(std::move(KeyName)),
        InitialState(std::move(InitialState)), Inner(Inner) {}
  const std::optional<std::string> &keyName() const { return KeyName; }
  const std::optional<StateExprAst> &initialState() const {
    return InitialState;
  }
  TypeExprAst *inner() const { return Inner; }
  static bool classof(const TypeExprAst *T) {
    return T->kind() == TypeExprKind::Tracked;
  }

private:
  std::optional<std::string> KeyName;
  std::optional<StateExprAst> InitialState;
  TypeExprAst *Inner;
};

/// `K:T`, `K@s:T` — the guarded types of the paper (§2.1).
class GuardedTypeExpr : public TypeExprAst {
public:
  GuardedTypeExpr(std::vector<KeyStateRef> Guards, TypeExprAst *Inner,
                  SourceLoc L)
      : TypeExprAst(TypeExprKind::Guarded, L), Guards(std::move(Guards)),
        Inner(Inner) {}
  const std::vector<KeyStateRef> &guards() const { return Guards; }
  TypeExprAst *inner() const { return Inner; }
  static bool classof(const TypeExprAst *T) {
    return T->kind() == TypeExprKind::Guarded;
  }

private:
  std::vector<KeyStateRef> Guards;
  TypeExprAst *Inner;
};

class TupleTypeExpr : public TypeExprAst {
public:
  TupleTypeExpr(std::vector<TypeExprAst *> Elems, SourceLoc L)
      : TypeExprAst(TypeExprKind::Tuple, L), Elems(std::move(Elems)) {}
  const std::vector<TypeExprAst *> &elems() const { return Elems; }
  static bool classof(const TypeExprAst *T) {
    return T->kind() == TypeExprKind::Tuple;
  }

private:
  std::vector<TypeExprAst *> Elems;
};

class ArrayTypeExpr : public TypeExprAst {
public:
  ArrayTypeExpr(TypeExprAst *Elem, SourceLoc L)
      : TypeExprAst(TypeExprKind::Array, L), Elem(Elem) {}
  TypeExprAst *elem() const { return Elem; }
  static bool classof(const TypeExprAst *T) {
    return T->kind() == TypeExprKind::Array;
  }

private:
  TypeExprAst *Elem;
};

/// A function type written in a type alias, e.g. the paper's
/// COMPLETION_ROUTINE: `tracked R Routine(DEVICE_OBJECT, tracked(K) IRP)
/// [-K]`. The routine name is documentation only.
class FuncTypeExpr : public TypeExprAst {
public:
  struct Param {
    TypeExprAst *Type;
    std::string Name; ///< May be empty.
  };
  FuncTypeExpr(TypeExprAst *Ret, std::vector<Param> Params,
               EffectClauseAst Effect, SourceLoc L)
      : TypeExprAst(TypeExprKind::Func, L), Ret(Ret), Params(std::move(Params)),
        Effect(std::move(Effect)) {}
  TypeExprAst *ret() const { return Ret; }
  const std::vector<Param> &params() const { return Params; }
  const EffectClauseAst &effect() const { return Effect; }
  static bool classof(const TypeExprAst *T) {
    return T->kind() == TypeExprKind::Func;
  }

private:
  TypeExprAst *Ret;
  std::vector<Param> Params;
  EffectClauseAst Effect;
};

//===----------------------------------------------------------------------===//
// Expressions.
//===----------------------------------------------------------------------===//

enum class ExprKind : uint8_t {
  IntLiteral,
  BoolLiteral,
  StringLiteral,
  Name,
  Call,
  Ctor,
  New,
  Field,
  Index,
  Unary,
  Binary,
  Assign,
  IncDec,
  Tuple,
};

class Expr {
public:
  ExprKind kind() const { return Kind; }
  SourceLoc loc() const { return Loc; }

protected:
  Expr(ExprKind K, SourceLoc L) : Kind(K), Loc(L) {}

private:
  ExprKind Kind;
  SourceLoc Loc;
};

class IntLiteralExpr : public Expr {
public:
  IntLiteralExpr(int64_t V, SourceLoc L) : Expr(ExprKind::IntLiteral, L), V(V) {}
  int64_t value() const { return V; }
  static bool classof(const Expr *E) { return E->kind() == ExprKind::IntLiteral; }

private:
  int64_t V;
};

class BoolLiteralExpr : public Expr {
public:
  BoolLiteralExpr(bool V, SourceLoc L) : Expr(ExprKind::BoolLiteral, L), V(V) {}
  bool value() const { return V; }
  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::BoolLiteral;
  }

private:
  bool V;
};

class StringLiteralExpr : public Expr {
public:
  StringLiteralExpr(std::string V, SourceLoc L)
      : Expr(ExprKind::StringLiteral, L), V(std::move(V)) {}
  const std::string &value() const { return V; }
  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::StringLiteral;
  }

private:
  std::string V;
};

/// A possibly module-qualified name: `pt` or `Region.create`.
class NameExpr : public Expr {
public:
  NameExpr(std::string Qualifier, std::string Name, SourceLoc L)
      : Expr(ExprKind::Name, L), Qualifier(std::move(Qualifier)),
        Name(std::move(Name)) {}
  const std::string &qualifier() const { return Qualifier; } ///< "" if none.
  const std::string &name() const { return Name; }
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Name; }

private:
  std::string Qualifier;
  std::string Name;
};

class CallExpr : public Expr {
public:
  CallExpr(Expr *Callee, std::vector<Expr *> Args, SourceLoc L)
      : Expr(ExprKind::Call, L), Callee(Callee), Args(std::move(Args)) {}
  Expr *callee() const { return Callee; }
  const std::vector<Expr *> &args() const { return Args; }
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Call; }

private:
  Expr *Callee;
  std::vector<Expr *> Args;
};

/// Variant construction: `'NoKey`, `'SomeKey{F}`, `'Error(code)`,
/// `'Cons(rgn, 'Nil)`.
class CtorExpr : public Expr {
public:
  CtorExpr(std::string Name, std::vector<KeyStateRef> KeyArgs,
           std::vector<Expr *> Args, SourceLoc L)
      : Expr(ExprKind::Ctor, L), Name(std::move(Name)),
        KeyArgs(std::move(KeyArgs)), Args(std::move(Args)) {}
  const std::string &name() const { return Name; }
  const std::vector<KeyStateRef> &keyArgs() const { return KeyArgs; }
  const std::vector<Expr *> &args() const { return Args; }
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Ctor; }

private:
  std::string Name;
  std::vector<KeyStateRef> KeyArgs;
  std::vector<Expr *> Args;
};

/// `new tracked T {f=e; ...}` (tracked heap allocation, grants a fresh
/// key) or `new(rgn) T {f=e; ...}` (region allocation, result guarded
/// by the region's key — paper §2.2).
class NewExpr : public Expr {
public:
  struct FieldInit {
    std::string Field;
    Expr *Init;
    SourceLoc Loc;
  };
  NewExpr(bool Tracked, Expr *Region, TypeExprAst *Type,
          std::vector<FieldInit> Inits, SourceLoc L)
      : Expr(ExprKind::New, L), Tracked(Tracked), Region(Region), Type(Type),
        Inits(std::move(Inits)) {}
  bool isTracked() const { return Tracked; }
  Expr *region() const { return Region; } ///< Null unless `new(rgn)`.
  TypeExprAst *typeExpr() const { return Type; }
  const std::vector<FieldInit> &inits() const { return Inits; }
  static bool classof(const Expr *E) { return E->kind() == ExprKind::New; }

private:
  bool Tracked;
  Expr *Region;
  TypeExprAst *Type;
  std::vector<FieldInit> Inits;
};

class FieldExpr : public Expr {
public:
  FieldExpr(Expr *Base, std::string Field, SourceLoc L)
      : Expr(ExprKind::Field, L), Base(Base), Field(std::move(Field)) {}
  Expr *base() const { return Base; }
  const std::string &field() const { return Field; }
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Field; }

private:
  Expr *Base;
  std::string Field;
};

class IndexExpr : public Expr {
public:
  IndexExpr(Expr *Base, Expr *Index, SourceLoc L)
      : Expr(ExprKind::Index, L), Base(Base), Index(Index) {}
  Expr *base() const { return Base; }
  Expr *index() const { return Index; }
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Index; }

private:
  Expr *Base;
  Expr *Index;
};

enum class UnaryOp : uint8_t { Not, Neg };

class UnaryExpr : public Expr {
public:
  UnaryExpr(UnaryOp Op, Expr *Operand, SourceLoc L)
      : Expr(ExprKind::Unary, L), Op(Op), Operand(Operand) {}
  UnaryOp op() const { return Op; }
  Expr *operand() const { return Operand; }
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Unary; }

private:
  UnaryOp Op;
  Expr *Operand;
};

enum class BinaryOp : uint8_t {
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  And,
  Or,
};

const char *binaryOpSpelling(BinaryOp Op);

class BinaryExpr : public Expr {
public:
  BinaryExpr(BinaryOp Op, Expr *Lhs, Expr *Rhs, SourceLoc L)
      : Expr(ExprKind::Binary, L), Op(Op), Lhs(Lhs), Rhs(Rhs) {}
  BinaryOp op() const { return Op; }
  Expr *lhs() const { return Lhs; }
  Expr *rhs() const { return Rhs; }
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Binary; }

private:
  BinaryOp Op;
  Expr *Lhs;
  Expr *Rhs;
};

class AssignExpr : public Expr {
public:
  AssignExpr(Expr *Lhs, Expr *Rhs, SourceLoc L)
      : Expr(ExprKind::Assign, L), Lhs(Lhs), Rhs(Rhs) {}
  Expr *lhs() const { return Lhs; }
  Expr *rhs() const { return Rhs; }
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Assign; }

private:
  Expr *Lhs;
  Expr *Rhs;
};

/// Postfix `++` / `--` on an lvalue (e.g. `pt.x++`).
class IncDecExpr : public Expr {
public:
  IncDecExpr(Expr *Base, bool Inc, SourceLoc L)
      : Expr(ExprKind::IncDec, L), Base(Base), Inc(Inc) {}
  Expr *base() const { return Base; }
  bool isIncrement() const { return Inc; }
  static bool classof(const Expr *E) { return E->kind() == ExprKind::IncDec; }

private:
  Expr *Base;
  bool Inc;
};

class TupleExpr : public Expr {
public:
  TupleExpr(std::vector<Expr *> Elems, SourceLoc L)
      : Expr(ExprKind::Tuple, L), Elems(std::move(Elems)) {}
  const std::vector<Expr *> &elems() const { return Elems; }
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Tuple; }

private:
  std::vector<Expr *> Elems;
};

//===----------------------------------------------------------------------===//
// Statements.
//===----------------------------------------------------------------------===//

enum class StmtKind : uint8_t {
  Block,
  Decl,
  Expr,
  If,
  While,
  Return,
  Switch,
  Free,
  Borrow,
  EndBorrow,
};

class Stmt {
public:
  StmtKind kind() const { return Kind; }
  SourceLoc loc() const { return Loc; }

protected:
  Stmt(StmtKind K, SourceLoc L) : Kind(K), Loc(L) {}

private:
  StmtKind Kind;
  SourceLoc Loc;
};

class BlockStmt : public Stmt {
public:
  BlockStmt(std::vector<Stmt *> Stmts, SourceLoc L)
      : Stmt(StmtKind::Block, L), Stmts(std::move(Stmts)) {}
  const std::vector<Stmt *> &stmts() const { return Stmts; }
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Block; }

private:
  std::vector<Stmt *> Stmts;
};

/// A local declaration: variable or nested function.
class DeclStmt : public Stmt {
public:
  DeclStmt(Decl *D, SourceLoc L) : Stmt(StmtKind::Decl, L), D(D) {}
  Decl *decl() const { return D; }
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Decl; }

private:
  Decl *D;
};

class ExprStmt : public Stmt {
public:
  ExprStmt(Expr *E, SourceLoc L) : Stmt(StmtKind::Expr, L), E(E) {}
  Expr *expr() const { return E; }
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Expr; }

private:
  Expr *E;
};

class IfStmt : public Stmt {
public:
  IfStmt(Expr *Cond, Stmt *Then, Stmt *Else, SourceLoc L)
      : Stmt(StmtKind::If, L), Cond(Cond), Then(Then), Else(Else) {}
  Expr *cond() const { return Cond; }
  Stmt *thenStmt() const { return Then; }
  Stmt *elseStmt() const { return Else; } ///< May be null.
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::If; }

private:
  Expr *Cond;
  Stmt *Then;
  Stmt *Else;
};

class WhileStmt : public Stmt {
public:
  WhileStmt(Expr *Cond, Stmt *Body, SourceLoc L)
      : Stmt(StmtKind::While, L), Cond(Cond), Body(Body) {}
  Expr *cond() const { return Cond; }
  Stmt *body() const { return Body; }
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::While; }

private:
  Expr *Cond;
  Stmt *Body;
};

class ReturnStmt : public Stmt {
public:
  ReturnStmt(Expr *Value, SourceLoc L) : Stmt(StmtKind::Return, L), Value(Value) {}
  Expr *value() const { return Value; } ///< May be null.
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Return; }

private:
  Expr *Value;
};

/// A pattern in a switch case: `'Name`, `'Name(x, _, y)`, or default.
struct PatternAst {
  bool IsDefault = false;
  std::string CtorName;
  /// Binder names; empty string means wildcard `_`.
  std::vector<std::string> Binders;
  bool HasParens = false;
  SourceLoc Loc;
};

class SwitchStmt : public Stmt {
public:
  struct Case {
    PatternAst Pattern;
    std::vector<Stmt *> Body;
    SourceLoc Loc;
  };
  SwitchStmt(Expr *Subject, std::vector<Case> Cases, SourceLoc L)
      : Stmt(StmtKind::Switch, L), Subject(Subject), Cases(std::move(Cases)) {}
  Expr *subject() const { return Subject; }
  const std::vector<Case> &cases() const { return Cases; }
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Switch; }

private:
  Expr *Subject;
  std::vector<Case> Cases;
};

/// `free(e);` — the primitive key-revoking operation (§2.1).
class FreeStmt : public Stmt {
public:
  FreeStmt(Expr *Operand, SourceLoc L) : Stmt(StmtKind::Free, L), Operand(Operand) {}
  Expr *operand() const { return Operand; }
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Free; }

private:
  Expr *Operand;
};

/// `borrow y = x;` — splits the tracked key of `x` into a fresh
/// revocable alias key bound to `y`, valid until a matching
/// `endborrow y;` revokes it (Typestate via Revocable Capabilities).
class BorrowStmt : public Stmt {
public:
  BorrowStmt(std::string BinderName, Expr *Source, SourceLoc L)
      : Stmt(StmtKind::Borrow, L), BinderName(std::move(BinderName)),
        Source(Source) {}
  const std::string &binderName() const { return BinderName; }
  Expr *source() const { return Source; }
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Borrow; }

private:
  std::string BinderName;
  Expr *Source;
};

/// `endborrow y;` — revokes the borrow key of `y`, restoring the
/// borrowed-from key. The flow checker proves the borrow key dead on
/// every path reaching this point.
class EndBorrowStmt : public Stmt {
public:
  EndBorrowStmt(Expr *Operand, SourceLoc L)
      : Stmt(StmtKind::EndBorrow, L), Operand(Operand) {}
  Expr *operand() const { return Operand; }
  static bool classof(const Stmt *S) {
    return S->kind() == StmtKind::EndBorrow;
  }

private:
  Expr *Operand;
};

//===----------------------------------------------------------------------===//
// Declarations.
//===----------------------------------------------------------------------===//

enum class DeclKind : uint8_t {
  Stateset,
  Key,
  TypeAlias,
  Struct,
  Variant,
  Func,
  Var,
  Interface,
  Module,
};

class Decl {
public:
  DeclKind kind() const { return Kind; }
  SourceLoc loc() const { return Loc; }
  const std::string &name() const { return Name; }

protected:
  Decl(DeclKind K, std::string Name, SourceLoc L)
      : Kind(K), Loc(L), Name(std::move(Name)) {}

private:
  DeclKind Kind;
  SourceLoc Loc;
  std::string Name;
};

/// `stateset IRQ_LEVEL = [ PASSIVE < APC < DISPATCH < DIRQL ];`
///
/// States separated by `<` form an ascending chain; states separated by
/// `,` within the same bracket position share a rank (incomparable).
class StatesetDecl : public Decl {
public:
  /// States grouped by rank, ascending.
  using RankGroup = std::vector<std::string>;
  StatesetDecl(std::string Name, std::vector<RankGroup> Ranks, SourceLoc L)
      : Decl(DeclKind::Stateset, std::move(Name), L), Ranks(std::move(Ranks)) {}
  const std::vector<RankGroup> &ranks() const { return Ranks; }
  static bool classof(const Decl *D) { return D->kind() == DeclKind::Stateset; }

private:
  std::vector<RankGroup> Ranks;
};

/// `key IRQL @ IRQ_LEVEL;` — a statically declared global key (§4.4).
class KeyDecl : public Decl {
public:
  KeyDecl(std::string Name, std::string StatesetName, SourceLoc L)
      : Decl(DeclKind::Key, std::move(Name), L),
        StatesetName(std::move(StatesetName)) {}
  const std::string &statesetName() const { return StatesetName; } ///< "" if none.
  static bool classof(const Decl *D) { return D->kind() == DeclKind::Key; }

private:
  std::string StatesetName;
};

/// `type name<params> = T;` or the abstract `type name;` / `type
/// name<params>;` forms used in interfaces.
class TypeAliasDecl : public Decl {
public:
  TypeAliasDecl(std::string Name, std::vector<TypeParamAst> Params,
                TypeExprAst *Underlying, SourceLoc L)
      : Decl(DeclKind::TypeAlias, std::move(Name), L), Params(std::move(Params)),
        Underlying(Underlying) {}
  const std::vector<TypeParamAst> &params() const { return Params; }
  TypeExprAst *underlying() const { return Underlying; } ///< Null if abstract.
  bool isAbstract() const { return Underlying == nullptr; }
  static bool classof(const Decl *D) { return D->kind() == DeclKind::TypeAlias; }

private:
  std::vector<TypeParamAst> Params;
  TypeExprAst *Underlying;
};

/// `struct point { int x; int y; }`
class StructDecl : public Decl {
public:
  struct Field {
    TypeExprAst *Type;
    std::string Name;
    SourceLoc Loc;
  };
  StructDecl(std::string Name, std::vector<TypeParamAst> Params,
             std::vector<Field> Fields, SourceLoc L)
      : Decl(DeclKind::Struct, std::move(Name), L), Params(std::move(Params)),
        Fields(std::move(Fields)) {}
  const std::vector<TypeParamAst> &params() const { return Params; }
  const std::vector<Field> &fields() const { return Fields; }
  static bool classof(const Decl *D) { return D->kind() == DeclKind::Struct; }

private:
  std::vector<TypeParamAst> Params;
  std::vector<Field> Fields;
};

/// `variant opt_key<key K> [ 'NoKey | 'SomeKey{K} ];`
class VariantDecl : public Decl {
public:
  struct Ctor {
    std::string Name;
    std::vector<TypeExprAst *> Payload;
    /// Keys attached to this constructor, with the state they carry
    /// (paper §2.3: `'Ok{K@named} | 'Error(error_code){K@raw}`).
    std::vector<KeyStateRef> KeyAttachments;
    SourceLoc Loc;
  };
  VariantDecl(std::string Name, std::vector<TypeParamAst> Params,
              std::vector<Ctor> Ctors, SourceLoc L)
      : Decl(DeclKind::Variant, std::move(Name), L), Params(std::move(Params)),
        Ctors(std::move(Ctors)) {}
  const std::vector<TypeParamAst> &params() const { return Params; }
  const std::vector<Ctor> &ctors() const { return Ctors; }
  const Ctor *findCtor(const std::string &Name) const {
    for (const Ctor &C : Ctors)
      if (C.Name == Name)
        return &C;
    return nullptr;
  }
  static bool classof(const Decl *D) { return D->kind() == DeclKind::Variant; }

private:
  std::vector<TypeParamAst> Params;
  std::vector<Ctor> Ctors;
};

class FuncDecl : public Decl {
public:
  struct Param {
    TypeExprAst *Type;
    std::string Name; ///< May be empty in prototypes.
    SourceLoc Loc;
  };
  FuncDecl(TypeExprAst *RetType, std::string Name, std::vector<Param> Params,
           EffectClauseAst Effect, BlockStmt *Body, SourceLoc L)
      : Decl(DeclKind::Func, std::move(Name), L), RetType(RetType),
        Params(std::move(Params)), Effect(std::move(Effect)), Body(Body) {}
  TypeExprAst *retType() const { return RetType; }
  const std::vector<Param> &params() const { return Params; }
  const EffectClauseAst &effect() const { return Effect; }
  BlockStmt *body() const { return Body; } ///< Null for prototypes.
  bool isPrototype() const { return Body == nullptr; }
  static bool classof(const Decl *D) { return D->kind() == DeclKind::Func; }

private:
  TypeExprAst *RetType;
  std::vector<Param> Params;
  EffectClauseAst Effect;
  BlockStmt *Body;
};

/// A local variable declaration (appears inside DeclStmt).
class VarDecl : public Decl {
public:
  VarDecl(TypeExprAst *Type, std::string Name, Expr *Init, SourceLoc L)
      : Decl(DeclKind::Var, std::move(Name), L), Type(Type), Init(Init) {}
  TypeExprAst *typeExpr() const { return Type; }
  Expr *init() const { return Init; } ///< May be null.
  static bool classof(const Decl *D) { return D->kind() == DeclKind::Var; }

private:
  TypeExprAst *Type;
  Expr *Init;
};

/// `interface REGION { ... }` — a named group of declarations
/// (abstract types and function prototypes).
class InterfaceDecl : public Decl {
public:
  InterfaceDecl(std::string Name, std::vector<Decl *> Members, SourceLoc L)
      : Decl(DeclKind::Interface, std::move(Name), L), Members(std::move(Members)) {}
  const std::vector<Decl *> &members() const { return Members; }
  static bool classof(const Decl *D) { return D->kind() == DeclKind::Interface; }

private:
  std::vector<Decl *> Members;
};

/// `extern module Region : REGION;` — binds a module name to an
/// interface so that `Region.create(...)` resolves to the interface's
/// `create` prototype.
class ModuleDecl : public Decl {
public:
  ModuleDecl(std::string Name, std::string InterfaceName, SourceLoc L)
      : Decl(DeclKind::Module, std::move(Name), L),
        InterfaceName(std::move(InterfaceName)) {}
  const std::string &interfaceName() const { return InterfaceName; }
  static bool classof(const Decl *D) { return D->kind() == DeclKind::Module; }

private:
  std::string InterfaceName;
};

//===----------------------------------------------------------------------===//
// Program root and node arena.
//===----------------------------------------------------------------------===//

struct Program {
  std::vector<Decl *> Decls;
};

/// Owns every AST node of a compilation.
class AstContext {
public:
  template <typename T, typename... Args> T *create(Args &&...As) {
    auto Owned = std::make_unique<T>(std::forward<Args>(As)...);
    T *Raw = Owned.get();
    Nodes.push_back(NodePtr(Owned.release(), &AstContext::destroy<T>));
    return Raw;
  }

  Program &program() { return Prog; }
  const Program &program() const { return Prog; }

  /// Steals every node and top-level declaration of \p O, appending
  /// O's declarations after this context's. The parallel front end
  /// parses each buffer into a private context and merges them in
  /// input order, so the combined program is identical to what serial
  /// parsing would have produced.
  void adopt(AstContext &&O) {
    Nodes.insert(Nodes.end(), std::make_move_iterator(O.Nodes.begin()),
                 std::make_move_iterator(O.Nodes.end()));
    O.Nodes.clear();
    Prog.Decls.insert(Prog.Decls.end(), O.Prog.Decls.begin(),
                      O.Prog.Decls.end());
    O.Prog.Decls.clear();
  }

private:
  template <typename T> static void destroy(void *P) {
    delete static_cast<T *>(P);
  }
  using NodePtr = std::unique_ptr<void, void (*)(void *)>;
  std::vector<NodePtr> Nodes;
  Program Prog;
};

} // namespace vault

#endif // VAULT_AST_AST_H
