//===- AstPrinter.h - AST dumping -------------------------------*- C++ -*-===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders the AST back into Vault-like surface syntax. Used by parser
/// tests (round-trip / golden checks) and the `vaultc --dump-ast` mode.
///
//===----------------------------------------------------------------------===//

#ifndef VAULT_AST_ASTPRINTER_H
#define VAULT_AST_ASTPRINTER_H

#include "ast/Ast.h"

#include <string>

namespace vault {

/// Pretty-prints AST nodes in (approximately) Vault surface syntax.
class AstPrinter {
public:
  std::string print(const Program &P);
  std::string print(const Decl *D);
  std::string print(const Stmt *S);
  std::string print(const Expr *E);
  std::string print(const TypeExprAst *T);
  std::string print(const EffectClauseAst &E);

private:
  void printDecl(std::string &Out, const Decl *D, unsigned Indent);
  void printStmt(std::string &Out, const Stmt *S, unsigned Indent);
  void printExpr(std::string &Out, const Expr *E);
  void printType(std::string &Out, const TypeExprAst *T);
  void printEffect(std::string &Out, const EffectClauseAst &E);
  void printStateExpr(std::string &Out, const StateExprAst &S);
  void printKeyStateRef(std::string &Out, const KeyStateRef &K);
  void printTypeParams(std::string &Out, const std::vector<TypeParamAst> &Ps);
  void indent(std::string &Out, unsigned Indent);
};

} // namespace vault

#endif // VAULT_AST_ASTPRINTER_H
