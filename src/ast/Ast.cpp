//===- Ast.cpp ------------------------------------------------------------===//

#include "ast/Ast.h"

using namespace vault;

const char *vault::binaryOpSpelling(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
    return "+";
  case BinaryOp::Sub:
    return "-";
  case BinaryOp::Mul:
    return "*";
  case BinaryOp::Div:
    return "/";
  case BinaryOp::Rem:
    return "%";
  case BinaryOp::Eq:
    return "==";
  case BinaryOp::Ne:
    return "!=";
  case BinaryOp::Lt:
    return "<";
  case BinaryOp::Le:
    return "<=";
  case BinaryOp::Gt:
    return ">";
  case BinaryOp::Ge:
    return ">=";
  case BinaryOp::And:
    return "&&";
  case BinaryOp::Or:
    return "||";
  }
  return "?";
}
