//===- AstPrinter.cpp -----------------------------------------------------===//

#include "ast/AstPrinter.h"

using namespace vault;

void AstPrinter::indent(std::string &Out, unsigned Indent) {
  Out.append(Indent * 2, ' ');
}

std::string AstPrinter::print(const Program &P) {
  std::string Out;
  for (const Decl *D : P.Decls) {
    printDecl(Out, D, 0);
    Out += '\n';
  }
  return Out;
}

std::string AstPrinter::print(const Decl *D) {
  std::string Out;
  printDecl(Out, D, 0);
  return Out;
}

std::string AstPrinter::print(const Stmt *S) {
  std::string Out;
  printStmt(Out, S, 0);
  return Out;
}

std::string AstPrinter::print(const Expr *E) {
  std::string Out;
  printExpr(Out, E);
  return Out;
}

std::string AstPrinter::print(const TypeExprAst *T) {
  std::string Out;
  printType(Out, T);
  return Out;
}

std::string AstPrinter::print(const EffectClauseAst &E) {
  std::string Out;
  printEffect(Out, E);
  return Out;
}

void AstPrinter::printStateExpr(std::string &Out, const StateExprAst &S) {
  if (S.K == StateExprAst::Kind::Name) {
    Out += S.Name;
    return;
  }
  Out += '(';
  Out += S.Name;
  Out += S.Strict ? " < " : " <= ";
  Out += S.Bound;
  Out += ')';
}

void AstPrinter::printKeyStateRef(std::string &Out, const KeyStateRef &K) {
  Out += K.KeyName;
  if (K.State) {
    Out += '@';
    printStateExpr(Out, *K.State);
  }
}

void AstPrinter::printTypeParams(std::string &Out,
                                 const std::vector<TypeParamAst> &Ps) {
  if (Ps.empty())
    return;
  Out += '<';
  bool First = true;
  for (const TypeParamAst &P : Ps) {
    if (!First)
      Out += ", ";
    First = false;
    switch (P.K) {
    case TypeParamAst::Kind::Type:
      Out += "type ";
      break;
    case TypeParamAst::Kind::Key:
      Out += "key ";
      break;
    case TypeParamAst::Kind::State:
      Out += "state ";
      break;
    }
    Out += P.Name;
  }
  Out += '>';
}

void AstPrinter::printEffect(std::string &Out, const EffectClauseAst &E) {
  if (!E.Present)
    return;
  Out += " [";
  bool First = true;
  for (const EffectItemAst &I : E.Items) {
    if (!First)
      Out += ", ";
    First = false;
    switch (I.M) {
    case EffectItemAst::Mode::Keep:
      break;
    case EffectItemAst::Mode::Consume:
      Out += '-';
      break;
    case EffectItemAst::Mode::Produce:
      Out += '+';
      break;
    case EffectItemAst::Mode::Fresh:
      Out += "new ";
      break;
    }
    Out += I.KeyName;
    if (I.M == EffectItemAst::Mode::Produce ||
        I.M == EffectItemAst::Mode::Fresh) {
      // Produced keys carry only a post state: `+K@b` / `new K@b`.
      if (I.Post) {
        Out += '@';
        Out += *I.Post;
      }
    } else {
      if (I.Pre) {
        Out += '@';
        printStateExpr(Out, *I.Pre);
      }
      if (I.Post && (!I.Pre || I.Pre->K != StateExprAst::Kind::Name ||
                     I.Pre->Name != *I.Post)) {
        if (!I.Pre)
          Out += '@';
        Out += "->";
        Out += *I.Post;
      }
    }
  }
  Out += ']';
}

void AstPrinter::printType(std::string &Out, const TypeExprAst *T) {
  switch (T->kind()) {
  case TypeExprKind::Prim: {
    switch (cast<PrimTypeExpr>(T)->prim()) {
    case PrimKind::Int:
      Out += "int";
      break;
    case PrimKind::Bool:
      Out += "bool";
      break;
    case PrimKind::Byte:
      Out += "byte";
      break;
    case PrimKind::Void:
      Out += "void";
      break;
    case PrimKind::String:
      Out += "string";
      break;
    }
    return;
  }
  case TypeExprKind::Named: {
    const auto *N = cast<NamedTypeExpr>(T);
    Out += N->name();
    if (!N->args().empty()) {
      Out += '<';
      bool First = true;
      for (const TypeExprAst *A : N->args()) {
        if (!First)
          Out += ", ";
        First = false;
        printType(Out, A);
      }
      Out += '>';
    }
    return;
  }
  case TypeExprKind::Tracked: {
    const auto *Tr = cast<TrackedTypeExpr>(T);
    Out += "tracked";
    if (Tr->keyName()) {
      Out += '(';
      Out += *Tr->keyName();
      Out += ')';
    } else if (Tr->initialState()) {
      Out += "(@";
      printStateExpr(Out, *Tr->initialState());
      Out += ')';
    }
    Out += ' ';
    printType(Out, Tr->inner());
    return;
  }
  case TypeExprKind::Guarded: {
    const auto *G = cast<GuardedTypeExpr>(T);
    bool First = true;
    for (const KeyStateRef &K : G->guards()) {
      if (!First)
        Out += ", ";
      First = false;
      printKeyStateRef(Out, K);
    }
    Out += ':';
    printType(Out, G->inner());
    return;
  }
  case TypeExprKind::Tuple: {
    const auto *Tu = cast<TupleTypeExpr>(T);
    Out += '(';
    bool First = true;
    for (const TypeExprAst *E : Tu->elems()) {
      if (!First)
        Out += ", ";
      First = false;
      printType(Out, E);
    }
    Out += ')';
    return;
  }
  case TypeExprKind::Array: {
    printType(Out, cast<ArrayTypeExpr>(T)->elem());
    Out += "[]";
    return;
  }
  case TypeExprKind::Func: {
    // Printed in the parseable alias-body form with a dummy routine
    // name (the name is documentation only).
    const auto *F = cast<FuncTypeExpr>(T);
    printType(Out, F->ret());
    Out += " Routine(";
    bool First = true;
    for (const auto &P : F->params()) {
      if (!First)
        Out += ", ";
      First = false;
      printType(Out, P.Type);
      if (!P.Name.empty()) {
        Out += ' ';
        Out += P.Name;
      }
    }
    Out += ')';
    printEffect(Out, F->effect());
    return;
  }
  }
}

void AstPrinter::printExpr(std::string &Out, const Expr *E) {
  switch (E->kind()) {
  case ExprKind::IntLiteral:
    Out += std::to_string(cast<IntLiteralExpr>(E)->value());
    return;
  case ExprKind::BoolLiteral:
    Out += cast<BoolLiteralExpr>(E)->value() ? "true" : "false";
    return;
  case ExprKind::StringLiteral:
    Out += '"';
    Out += cast<StringLiteralExpr>(E)->value();
    Out += '"';
    return;
  case ExprKind::Name: {
    const auto *N = cast<NameExpr>(E);
    if (!N->qualifier().empty()) {
      Out += N->qualifier();
      Out += '.';
    }
    Out += N->name();
    return;
  }
  case ExprKind::Call: {
    const auto *C = cast<CallExpr>(E);
    printExpr(Out, C->callee());
    Out += '(';
    bool First = true;
    for (const Expr *A : C->args()) {
      if (!First)
        Out += ", ";
      First = false;
      printExpr(Out, A);
    }
    Out += ')';
    return;
  }
  case ExprKind::Ctor: {
    const auto *C = cast<CtorExpr>(E);
    Out += '\'';
    Out += C->name();
    if (!C->keyArgs().empty()) {
      Out += '{';
      bool First = true;
      for (const KeyStateRef &K : C->keyArgs()) {
        if (!First)
          Out += ", ";
        First = false;
        printKeyStateRef(Out, K);
      }
      Out += '}';
    }
    if (!C->args().empty()) {
      Out += '(';
      bool First = true;
      for (const Expr *A : C->args()) {
        if (!First)
          Out += ", ";
        First = false;
        printExpr(Out, A);
      }
      Out += ')';
    }
    return;
  }
  case ExprKind::New: {
    const auto *N = cast<NewExpr>(E);
    Out += "new";
    if (N->isTracked())
      Out += " tracked";
    if (N->region()) {
      Out += '(';
      printExpr(Out, N->region());
      Out += ')';
    }
    Out += ' ';
    printType(Out, N->typeExpr());
    Out += " {";
    for (const auto &I : N->inits()) {
      Out += I.Field;
      Out += '=';
      printExpr(Out, I.Init);
      Out += "; ";
    }
    Out += '}';
    return;
  }
  case ExprKind::Field: {
    const auto *F = cast<FieldExpr>(E);
    printExpr(Out, F->base());
    Out += '.';
    Out += F->field();
    return;
  }
  case ExprKind::Index: {
    const auto *I = cast<IndexExpr>(E);
    printExpr(Out, I->base());
    Out += '[';
    printExpr(Out, I->index());
    Out += ']';
    return;
  }
  case ExprKind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    Out += U->op() == UnaryOp::Not ? '!' : '-';
    printExpr(Out, U->operand());
    return;
  }
  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    Out += '(';
    printExpr(Out, B->lhs());
    Out += ' ';
    Out += binaryOpSpelling(B->op());
    Out += ' ';
    printExpr(Out, B->rhs());
    Out += ')';
    return;
  }
  case ExprKind::Assign: {
    const auto *A = cast<AssignExpr>(E);
    printExpr(Out, A->lhs());
    Out += " = ";
    printExpr(Out, A->rhs());
    return;
  }
  case ExprKind::IncDec: {
    const auto *I = cast<IncDecExpr>(E);
    printExpr(Out, I->base());
    Out += I->isIncrement() ? "++" : "--";
    return;
  }
  case ExprKind::Tuple: {
    const auto *T = cast<TupleExpr>(E);
    Out += '(';
    bool First = true;
    for (const Expr *El : T->elems()) {
      if (!First)
        Out += ", ";
      First = false;
      printExpr(Out, El);
    }
    Out += ')';
    return;
  }
  }
}

void AstPrinter::printStmt(std::string &Out, const Stmt *S, unsigned Indent) {
  switch (S->kind()) {
  case StmtKind::Block: {
    indent(Out, Indent);
    Out += "{\n";
    for (const Stmt *Sub : cast<BlockStmt>(S)->stmts())
      printStmt(Out, Sub, Indent + 1);
    indent(Out, Indent);
    Out += "}\n";
    return;
  }
  case StmtKind::Decl: {
    printDecl(Out, cast<DeclStmt>(S)->decl(), Indent);
    return;
  }
  case StmtKind::Expr: {
    indent(Out, Indent);
    printExpr(Out, cast<ExprStmt>(S)->expr());
    Out += ";\n";
    return;
  }
  case StmtKind::If: {
    const auto *I = cast<IfStmt>(S);
    indent(Out, Indent);
    Out += "if (";
    printExpr(Out, I->cond());
    Out += ")\n";
    printStmt(Out, I->thenStmt(), Indent + 1);
    if (I->elseStmt()) {
      indent(Out, Indent);
      Out += "else\n";
      printStmt(Out, I->elseStmt(), Indent + 1);
    }
    return;
  }
  case StmtKind::While: {
    const auto *W = cast<WhileStmt>(S);
    indent(Out, Indent);
    Out += "while (";
    printExpr(Out, W->cond());
    Out += ")\n";
    printStmt(Out, W->body(), Indent + 1);
    return;
  }
  case StmtKind::Return: {
    const auto *R = cast<ReturnStmt>(S);
    indent(Out, Indent);
    Out += "return";
    if (R->value()) {
      Out += ' ';
      printExpr(Out, R->value());
    }
    Out += ";\n";
    return;
  }
  case StmtKind::Switch: {
    const auto *Sw = cast<SwitchStmt>(S);
    indent(Out, Indent);
    Out += "switch (";
    printExpr(Out, Sw->subject());
    Out += ") {\n";
    for (const SwitchStmt::Case &C : Sw->cases()) {
      indent(Out, Indent);
      if (C.Pattern.IsDefault) {
        Out += "default:\n";
      } else {
        Out += "case '";
        Out += C.Pattern.CtorName;
        if (C.Pattern.HasParens) {
          Out += '(';
          bool First = true;
          for (const std::string &B : C.Pattern.Binders) {
            if (!First)
              Out += ", ";
            First = false;
            Out += B.empty() ? "_" : B;
          }
          Out += ')';
        }
        Out += ":\n";
      }
      for (const Stmt *Sub : C.Body)
        printStmt(Out, Sub, Indent + 1);
    }
    indent(Out, Indent);
    Out += "}\n";
    return;
  }
  case StmtKind::Free: {
    indent(Out, Indent);
    Out += "free(";
    printExpr(Out, cast<FreeStmt>(S)->operand());
    Out += ");\n";
    return;
  }
  case StmtKind::Borrow: {
    const auto *B = cast<BorrowStmt>(S);
    indent(Out, Indent);
    Out += "borrow ";
    Out += B->binderName();
    Out += " = ";
    printExpr(Out, B->source());
    Out += ";\n";
    return;
  }
  case StmtKind::EndBorrow: {
    indent(Out, Indent);
    Out += "endborrow ";
    printExpr(Out, cast<EndBorrowStmt>(S)->operand());
    Out += ";\n";
    return;
  }
  }
}

void AstPrinter::printDecl(std::string &Out, const Decl *D, unsigned Indent) {
  switch (D->kind()) {
  case DeclKind::Stateset: {
    const auto *S = cast<StatesetDecl>(D);
    indent(Out, Indent);
    Out += "stateset ";
    Out += S->name();
    Out += " = [ ";
    bool FirstRank = true;
    for (const auto &Rank : S->ranks()) {
      if (!FirstRank)
        Out += " < ";
      FirstRank = false;
      bool First = true;
      for (const std::string &St : Rank) {
        if (!First)
          Out += ", ";
        First = false;
        Out += St;
      }
    }
    Out += " ];\n";
    return;
  }
  case DeclKind::Key: {
    const auto *K = cast<KeyDecl>(D);
    indent(Out, Indent);
    Out += "key ";
    Out += K->name();
    if (!K->statesetName().empty()) {
      Out += " @ ";
      Out += K->statesetName();
    }
    Out += ";\n";
    return;
  }
  case DeclKind::TypeAlias: {
    const auto *A = cast<TypeAliasDecl>(D);
    indent(Out, Indent);
    Out += "type ";
    Out += A->name();
    printTypeParams(Out, A->params());
    if (A->underlying()) {
      Out += " = ";
      printType(Out, A->underlying());
    }
    Out += ";\n";
    return;
  }
  case DeclKind::Struct: {
    const auto *St = cast<StructDecl>(D);
    indent(Out, Indent);
    Out += "struct ";
    Out += St->name();
    printTypeParams(Out, St->params());
    Out += " {\n";
    for (const StructDecl::Field &F : St->fields()) {
      indent(Out, Indent + 1);
      printType(Out, F.Type);
      Out += ' ';
      Out += F.Name;
      Out += ";\n";
    }
    indent(Out, Indent);
    Out += "}\n";
    return;
  }
  case DeclKind::Variant: {
    const auto *V = cast<VariantDecl>(D);
    indent(Out, Indent);
    Out += "variant ";
    Out += V->name();
    printTypeParams(Out, V->params());
    Out += " [ ";
    bool FirstCtor = true;
    for (const VariantDecl::Ctor &C : V->ctors()) {
      if (!FirstCtor)
        Out += " | ";
      FirstCtor = false;
      Out += '\'';
      Out += C.Name;
      if (!C.Payload.empty()) {
        Out += '(';
        bool First = true;
        for (const TypeExprAst *T : C.Payload) {
          if (!First)
            Out += ", ";
          First = false;
          printType(Out, T);
        }
        Out += ')';
      }
      if (!C.KeyAttachments.empty()) {
        Out += '{';
        bool First = true;
        for (const KeyStateRef &K : C.KeyAttachments) {
          if (!First)
            Out += ", ";
          First = false;
          printKeyStateRef(Out, K);
        }
        Out += '}';
      }
    }
    Out += " ];\n";
    return;
  }
  case DeclKind::Func: {
    const auto *F = cast<FuncDecl>(D);
    indent(Out, Indent);
    printType(Out, F->retType());
    Out += ' ';
    Out += F->name();
    Out += '(';
    bool First = true;
    for (const FuncDecl::Param &P : F->params()) {
      if (!First)
        Out += ", ";
      First = false;
      printType(Out, P.Type);
      if (!P.Name.empty()) {
        Out += ' ';
        Out += P.Name;
      }
    }
    Out += ')';
    printEffect(Out, F->effect());
    if (F->isPrototype()) {
      Out += ";\n";
    } else {
      Out += '\n';
      printStmt(Out, F->body(), Indent);
    }
    return;
  }
  case DeclKind::Var: {
    const auto *V = cast<VarDecl>(D);
    indent(Out, Indent);
    printType(Out, V->typeExpr());
    Out += ' ';
    Out += V->name();
    if (V->init()) {
      Out += " = ";
      printExpr(Out, V->init());
    }
    Out += ";\n";
    return;
  }
  case DeclKind::Interface: {
    const auto *I = cast<InterfaceDecl>(D);
    indent(Out, Indent);
    Out += "interface ";
    Out += I->name();
    Out += " {\n";
    for (const Decl *M : I->members())
      printDecl(Out, M, Indent + 1);
    indent(Out, Indent);
    Out += "}\n";
    return;
  }
  case DeclKind::Module: {
    const auto *M = cast<ModuleDecl>(D);
    indent(Out, Indent);
    Out += "extern module ";
    Out += M->name();
    Out += " : ";
    Out += M->interfaceName();
    Out += ";\n";
    return;
  }
  }
}
