//===- FloppyDriver.cpp ---------------------------------------------------===//

#include "driver/FloppyDriver.h"

#include "driver/PassThroughDriver.h"

#include <cstring>

using namespace vault::drv;
using namespace vault::kern;

namespace {

/// Schedules the queue-processing work item if one is not in flight.
void scheduleWorker(Kernel &K, DeviceObject &D);

/// Transfers one queued IRP against the hardware. Runs at passive
/// level in a work item (the stand-in for the driver's worker thread).
void processOneRequest(Kernel &K, DeviceObject &D, Irp *I) {
  auto *Ext = D.extension<FloppyExtension>();
  IoStackLocation &Loc = I->currentLocation(&D);
  const uint64_t Offset = Loc.Offset;
  const uint32_t Length = Loc.Length;

  if (!Ext->Hw.mediaPresent()) {
    K.completeRequest(I, NtStatus::DeviceNotReady);
    return;
  }
  if (Offset % FloppyHardware::SectorSize != 0 ||
      Length % FloppyHardware::SectorSize != 0) {
    K.completeRequest(I, NtStatus::InvalidParameter);
    return;
  }
  if (Offset >= FloppyHardware::DiskSize) {
    K.completeRequest(I, NtStatus::EndOfFile);
    return;
  }

  Ext->Hw.motorOn();
  uint32_t FirstLba = static_cast<uint32_t>(Offset / FloppyHardware::SectorSize);
  uint32_t Sectors = Length / FloppyHardware::SectorSize;
  uint64_t Done = 0;
  std::vector<uint8_t> &Buf = I->buffer(&D);
  bool Ok = true;
  for (uint32_t Si = 0; Si != Sectors; ++Si) {
    uint32_t Lba = FirstLba + Si;
    if (Lba >= FloppyHardware::TotalSectors)
      break; // Partial transfer at end of media.
    uint8_t *Sector = Buf.data() + static_cast<size_t>(Si) *
                                       FloppyHardware::SectorSize;
    if (I->major() == IrpMajor::Read)
      Ok = Ext->Hw.readSector(Lba, Sector);
    else
      Ok = Ext->Hw.writeSector(Lba, Sector);
    if (!Ok)
      break;
    Done += FloppyHardware::SectorSize;
  }
  I->Information = Done;
  if (I->major() == IrpMajor::Read)
    ++Ext->ReadsServed;
  else
    ++Ext->WritesServed;
  K.completeRequest(I, Ok || Done > 0 ? NtStatus::Success
                                      : NtStatus::Unsuccessful);
}

void scheduleWorker(Kernel &K, DeviceObject &D) {
  auto *Ext = D.extension<FloppyExtension>();
  if (Ext->WorkerScheduled)
    return;
  Ext->WorkerScheduled = true;
  DeviceObject *Dev = &D;
  K.queueWorkItem([Dev](Kernel &Kn) {
    auto *E = Dev->extension<FloppyExtension>();
    E->WorkerScheduled = false;
    // Drain the queue, taking the lock only around queue manipulation
    // (transfers run at PASSIVE_LEVEL so the pager can run).
    for (;;) {
      Irql Old = Kn.acquireSpinLock(E->QueueLock);
      Irp *I = nullptr;
      if (!E->Queue.empty()) {
        I = E->Queue.front();
        E->Queue.pop_front();
      }
      Kn.releaseSpinLock(E->QueueLock, Old);
      if (!I)
        return;
      processOneRequest(Kn, *Dev, I);
    }
  });
}

DriverStatus floppyCreateClose(Kernel &K, DeviceObject &D, Irp &I) {
  auto *Ext = D.extension<FloppyExtension>();
  if (I.major() == IrpMajor::Create)
    ++Ext->OpenCount;
  else if (Ext->OpenCount > 0)
    --Ext->OpenCount;
  return K.completeRequest(&I, NtStatus::Success);
}

DriverStatus floppyReadWrite(Kernel &K, DeviceObject &D, Irp &I) {
  auto *Ext = D.extension<FloppyExtension>();
  if (!Ext->Started || Ext->Removed)
    return K.completeRequest(&I, NtStatus::DeviceNotReady);
  IoStackLocation &Loc = I.currentLocation(&D);
  if (Loc.Length == 0)
    return K.completeRequest(&I, NtStatus::Success);
  if (Loc.Length > I.bufferSize())
    return K.completeRequest(&I, NtStatus::InvalidParameter);
  // Queue the request and return pending: the asynchronous interface
  // of §4 — "a driver's service function is expected to return
  // quickly, regardless of whether the driver has completed the
  // request".
  DriverStatus DS = K.markIrpPending(&I);
  Irql Old = K.acquireSpinLock(Ext->QueueLock);
  Ext->Queue.push_back(&I);
  K.releaseSpinLock(Ext->QueueLock, Old);
  scheduleWorker(K, D);
  return DS;
}

DriverStatus floppyDeviceControl(Kernel &K, DeviceObject &D, Irp &I) {
  auto *Ext = D.extension<FloppyExtension>();
  IoStackLocation &Loc = I.currentLocation(&D);
  switch (static_cast<FloppyIoctl>(Loc.ControlCode)) {
  case FloppyIoctl::GetGeometry: {
    if (I.bufferSize() < sizeof(FloppyGeometry))
      return K.completeRequest(&I, NtStatus::InvalidParameter);
    FloppyGeometry G{FloppyHardware::Cylinders, FloppyHardware::Heads,
                     FloppyHardware::SectorsPerTrack,
                     FloppyHardware::SectorSize};
    std::memcpy(I.buffer(&D).data(), &G, sizeof(G));
    I.Information = sizeof(G);
    return K.completeRequest(&I, NtStatus::Success);
  }
  case FloppyIoctl::FormatMedia:
    if (!Ext->Hw.mediaPresent())
      return K.completeRequest(&I, NtStatus::DeviceNotReady);
    if (Ext->Hw.isWriteProtected())
      return K.completeRequest(&I, NtStatus::Unsuccessful);
    Ext->Hw.motorOn();
    Ext->Hw.format();
    return K.completeRequest(&I, NtStatus::Success);
  case FloppyIoctl::CheckVerify:
    return K.completeRequest(&I, Ext->Hw.mediaPresent()
                                     ? NtStatus::Success
                                     : NtStatus::DeviceNotReady);
  case FloppyIoctl::EjectMedia:
    Ext->Hw.ejectMedia();
    Ext->Hw.motorOff();
    return K.completeRequest(&I, NtStatus::Success);
  }
  return K.completeRequest(&I, NtStatus::InvalidDeviceRequest);
}

/// PnP handler using the paper's Fig. 7 idiom: pass the IRP to the
/// next lower driver, regain ownership via a completion routine and an
/// event, act, then complete.
DriverStatus floppyPnp(Kernel &K, DeviceObject &D, Irp &I) {
  auto *Ext = D.extension<FloppyExtension>();
  PnpMinor Minor = I.currentLocation(&D).Minor;

  KEvent IrpIsBack("floppy-pnp-regain");
  K.initializeEvent(IrpIsBack);
  // RegainIrp: signals the event and keeps the IRP
  // ('MoreProcessingRequired) — footnote 10 of the paper explains why
  // a routine that signals *must* return this disposition.
  K.setCompletionRoutine(&I, &D,
                         [&IrpIsBack](Kernel &Kn, DeviceObject &,
                                      Irp &) -> CompletionDisposition {
                           Kn.setEvent(IrpIsBack);
                           return CompletionDisposition::MoreProcessingRequired;
                         });
  K.callDriver(D.lower(), &I);
  // Ownership is with the lower stack now; wait for it to come back.
  K.waitForEvent(IrpIsBack);

  NtStatus LowerStatus = I.Status;
  switch (Minor) {
  case PnpMinor::StartDevice:
    if (LowerStatus == NtStatus::Success) {
      Ext->Started = true;
      Ext->Hw.motorOn();
    }
    return K.completeRequest(&I, LowerStatus);
  case PnpMinor::QueryRemove:
    // Refuse removal while handles are open.
    return K.completeRequest(&I, Ext->OpenCount == 0
                                     ? NtStatus::Success
                                     : NtStatus::Unsuccessful);
  case PnpMinor::RemoveDevice: {
    Ext->Removed = true;
    Ext->Started = false;
    // Fail everything still queued.
    for (;;) {
      Irql Old = K.acquireSpinLock(Ext->QueueLock);
      Irp *Q = nullptr;
      if (!Ext->Queue.empty()) {
        Q = Ext->Queue.front();
        Ext->Queue.pop_front();
      }
      K.releaseSpinLock(Ext->QueueLock, Old);
      if (!Q)
        break;
      K.completeRequest(Q, NtStatus::NoSuchDevice);
    }
    Ext->Hw.motorOff();
    return K.completeRequest(&I, NtStatus::Success);
  }
  case PnpMinor::None:
    return K.completeRequest(&I, LowerStatus);
  }
  return K.completeRequest(&I, NtStatus::InvalidDeviceRequest);
}

DriverStatus floppyPower(Kernel &K, DeviceObject &D, Irp &I) {
  auto *Ext = D.extension<FloppyExtension>();
  Ext->Hw.motorOff(); // Powering down spins the motor down.
  return K.callDriver(D.lower(), &I);
}

DriverStatus floppyCleanup(Kernel &K, DeviceObject &D, Irp &I) {
  (void)D;
  return K.completeRequest(&I, NtStatus::Success);
}

} // namespace

FloppyExtension *vault::drv::makeFloppyDriver(Kernel &K, DeviceObject *Dev) {
  (void)K;
  auto *Ext = Dev->createExtension<FloppyExtension>();
  Dev->setDispatch(IrpMajor::Create, floppyCreateClose);
  Dev->setDispatch(IrpMajor::Close, floppyCreateClose);
  Dev->setDispatch(IrpMajor::Read, floppyReadWrite);
  Dev->setDispatch(IrpMajor::Write, floppyReadWrite);
  Dev->setDispatch(IrpMajor::DeviceControl, floppyDeviceControl);
  Dev->setDispatch(IrpMajor::Pnp, floppyPnp);
  Dev->setDispatch(IrpMajor::Power, floppyPower);
  Dev->setDispatch(IrpMajor::Cleanup, floppyCleanup);
  return Ext;
}

DeviceObject *vault::drv::buildFloppyStack(Kernel &K,
                                           DeviceObject **OutFloppy) {
  DeviceObject *Bus = K.createDevice("bus");
  makeBusDriver(K, Bus);
  DeviceObject *Floppy = K.createDevice("floppy");
  makeFloppyDriver(K, Floppy);
  K.attach(Floppy, Bus);
  DeviceObject *Storage = K.createDevice("storage-class");
  makePassThroughDriver(K, Storage);
  K.attach(Storage, Floppy);
  DeviceObject *Fs = K.createDevice("filesystem");
  makePassThroughDriver(K, Fs);
  K.attach(Fs, Storage);
  if (OutFloppy)
    *OutFloppy = Floppy;
  return Fs;
}
