//===- PassThroughDriver.h - Filter and bus drivers -------------*- C++ -*-===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generic drivers used to assemble realistic stacks around the
/// floppy driver (paper §4: "in between the kernel and a floppy disk
/// drive would typically sit... a file system driver; a driver for a
/// generic storage device; a floppy disk driver; and a bus driver"):
///
///  * PassThroughDriver — a filter that forwards every IRP down;
///  * BusDriver — the bottom of the stack, completing PnP/Power and
///    failing anything that reaches it unexpectedly;
///  * BuggyDriver — a configurable misbehaving driver used by tests
///    and the detection-rate experiment (forgets IRPs, completes
///    twice, holds locks, touches paged memory at DISPATCH_LEVEL).
///
//===----------------------------------------------------------------------===//

#ifndef VAULT_DRIVER_PASSTHROUGHDRIVER_H
#define VAULT_DRIVER_PASSTHROUGHDRIVER_H

#include "kernel/DriverStack.h"

namespace vault::drv {

/// Installs pass-through dispatch routines for every major function on
/// \p Dev: each IRP is forwarded to the lower device.
void makePassThroughDriver(kern::Kernel &K, kern::DeviceObject *Dev);

/// Installs a bus (bottom-of-stack) driver: PnP and Power requests
/// complete successfully, everything else completes with
/// STATUS_INVALID_DEVICE_REQUEST.
void makeBusDriver(kern::Kernel &K, kern::DeviceObject *Dev);

/// Deliberate misbehaviors for the detection-rate experiment (the
/// kinds of driver bugs the paper's introduction motivates).
enum class DriverBug : uint8_t {
  None,
  ForgetIrp,          ///< Returns without resolving the IRP (leak).
  DoubleComplete,     ///< Completes the same IRP twice.
  CompleteAndForward, ///< Completes, then passes the completed IRP down.
  HoldLock,           ///< Acquires its spin lock and never releases.
  DoubleAcquire,      ///< Acquires its spin lock twice.
  TouchPagedAtDpc,    ///< Reads paged memory while at DISPATCH_LEVEL.
  UseIrpAfterComplete ///< Writes the IRP buffer after completion.
};

/// Installs a filter driver that misbehaves per \p Bug on Read IRPs
/// whose offset is a multiple of \p TriggerEvery sectors (0 = always),
/// and forwards everything else.
void makeBuggyDriver(kern::Kernel &K, kern::DeviceObject *Dev, DriverBug Bug,
                     unsigned TriggerEvery = 0);

} // namespace vault::drv

#endif // VAULT_DRIVER_PASSTHROUGHDRIVER_H
