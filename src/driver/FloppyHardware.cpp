//===- FloppyHardware.cpp -------------------------------------------------===//

#include "driver/FloppyHardware.h"

#include <cstring>

using namespace vault::drv;

void FloppyHardware::motorOn() {
  if (!MotorOn) {
    MotorOn = true;
    ElapsedUs += MotorSpinUpUs;
  }
}

void FloppyHardware::seekTo(uint32_t Lba) {
  uint32_t Cyl = Lba / (Heads * SectorsPerTrack);
  uint32_t Delta = Cyl > Cylinder ? Cyl - Cylinder : Cylinder - Cyl;
  ElapsedUs += static_cast<uint64_t>(Delta) * SeekPerCylinderUs;
  Cylinder = Cyl;
}

bool FloppyHardware::readSector(uint32_t Lba, uint8_t *Out) {
  if (!MotorOn || !HasMedia || Lba >= TotalSectors)
    return false;
  seekTo(Lba);
  ElapsedUs += SectorTransferUs;
  std::memcpy(Out, Data.data() + static_cast<uint64_t>(Lba) * SectorSize,
              SectorSize);
  return true;
}

bool FloppyHardware::writeSector(uint32_t Lba, const uint8_t *In) {
  if (!MotorOn || !HasMedia || WriteProtected || Lba >= TotalSectors)
    return false;
  seekTo(Lba);
  ElapsedUs += SectorTransferUs;
  std::memcpy(Data.data() + static_cast<uint64_t>(Lba) * SectorSize, In,
              SectorSize);
  return true;
}

void FloppyHardware::format() {
  std::memset(Data.data(), 0, Data.size());
}
