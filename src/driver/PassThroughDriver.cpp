//===- PassThroughDriver.cpp ----------------------------------------------===//

#include "driver/PassThroughDriver.h"

using namespace vault::drv;
using namespace vault::kern;

void vault::drv::makePassThroughDriver(Kernel &K, DeviceObject *Dev) {
  (void)K;
  for (unsigned M = 0; M != static_cast<unsigned>(IrpMajor::NumMajors); ++M) {
    Dev->setDispatch(static_cast<IrpMajor>(M),
                     [](Kernel &Kn, DeviceObject &D, Irp &I) {
                       return Kn.callDriver(D.lower(), &I);
                     });
  }
}

void vault::drv::makeBusDriver(Kernel &K, DeviceObject *Dev) {
  (void)K;
  for (unsigned M = 0; M != static_cast<unsigned>(IrpMajor::NumMajors); ++M) {
    Dev->setDispatch(static_cast<IrpMajor>(M),
                     [](Kernel &Kn, DeviceObject &, Irp &I) {
                       return Kn.completeRequest(
                           &I, NtStatus::InvalidDeviceRequest);
                     });
  }
  auto CompleteOk = [](Kernel &Kn, DeviceObject &, Irp &I) {
    return Kn.completeRequest(&I, NtStatus::Success);
  };
  Dev->setDispatch(IrpMajor::Pnp, CompleteOk);
  Dev->setDispatch(IrpMajor::Power, CompleteOk);
  Dev->setDispatch(IrpMajor::Create, CompleteOk);
  Dev->setDispatch(IrpMajor::Close, CompleteOk);
}

namespace {
struct BuggyExtension {
  DriverBug Bug = DriverBug::None;
  unsigned TriggerEvery = 0;
  unsigned Counter = 0;
  SpinLock Lock{"buggy-lock"};
  PagedPool::Handle PagedBlock = 0;

  bool shouldTrigger() {
    ++Counter;
    return TriggerEvery == 0 || Counter % TriggerEvery == 0;
  }
};
} // namespace

void vault::drv::makeBuggyDriver(Kernel &K, DeviceObject *Dev, DriverBug Bug,
                                 unsigned TriggerEvery) {
  makePassThroughDriver(K, Dev);
  auto *Ext = Dev->createExtension<BuggyExtension>();
  Ext->Bug = Bug;
  Ext->TriggerEvery = TriggerEvery;
  Ext->PagedBlock = K.pool().allocate(4096, PoolType::Paged);

  Dev->setDispatch(IrpMajor::Read, [](Kernel &Kn, DeviceObject &D, Irp &I) {
    auto *E = D.extension<BuggyExtension>();
    if (!E->shouldTrigger())
      return Kn.callDriver(D.lower(), &I);

    switch (E->Bug) {
    case DriverBug::None:
      return Kn.callDriver(D.lower(), &I);
    case DriverBug::ForgetIrp:
      // The classic §4.1 error: a code path that neither completes,
      // passes on, nor pends the IRP.
      return DriverStatus::Pending; // Lies: never called IoMarkIrpPending.
    case DriverBug::DoubleComplete: {
      Kn.completeRequest(&I, NtStatus::Success);
      return Kn.completeRequest(&I, NtStatus::Success);
    }
    case DriverBug::CompleteAndForward: {
      Kn.completeRequest(&I, NtStatus::Success);
      return Kn.callDriver(D.lower(), &I); // Uses the IRP after completion.
    }
    case DriverBug::HoldLock: {
      Kn.acquireSpinLock(E->Lock); // Never released.
      return Kn.callDriver(D.lower(), &I);
    }
    case DriverBug::DoubleAcquire: {
      Irql Old = Kn.acquireSpinLock(E->Lock);
      Kn.acquireSpinLock(E->Lock); // Deadlock on a real machine.
      Kn.releaseSpinLock(E->Lock, Old);
      return Kn.callDriver(D.lower(), &I);
    }
    case DriverBug::TouchPagedAtDpc: {
      Irql Old = Kn.acquireSpinLock(E->Lock); // Now at DISPATCH_LEVEL.
      Kn.pool().read(E->PagedBlock, 0);       // Bugcheck if paged out.
      Kn.releaseSpinLock(E->Lock, Old);
      return Kn.callDriver(D.lower(), &I);
    }
    case DriverBug::UseIrpAfterComplete: {
      DriverStatus DS = Kn.completeRequest(&I, NtStatus::Success);
      if (!I.buffer(&D).empty()) // Access without ownership.
        I.buffer(&D)[0] = 0xFF;
      return DS;
    }
    }
    return Kn.callDriver(D.lower(), &I);
  });
}
