//===- FloppyHardware.h - Fake floppy device model --------------*- C++ -*-===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A model of a 3.5" 1.44MB floppy drive: 80 cylinders x 2 heads x 18
/// sectors x 512 bytes, with motor spin-up, head seek and per-sector
/// transfer costs accounted in simulated microseconds. Substitutes for
/// the physical hardware of the paper's case-study driver (§4); the
/// driver/hardware interface is, per the paper, "not often the source
/// of errors", so a functional model suffices.
///
//===----------------------------------------------------------------------===//

#ifndef VAULT_DRIVER_FLOPPYHARDWARE_H
#define VAULT_DRIVER_FLOPPYHARDWARE_H

#include <cstdint>
#include <vector>

namespace vault::drv {

class FloppyHardware {
public:
  static constexpr unsigned Cylinders = 80;
  static constexpr unsigned Heads = 2;
  static constexpr unsigned SectorsPerTrack = 18;
  static constexpr unsigned SectorSize = 512;
  static constexpr unsigned TotalSectors =
      Cylinders * Heads * SectorsPerTrack;
  static constexpr uint64_t DiskSize =
      static_cast<uint64_t>(TotalSectors) * SectorSize;

  // Simulated costs in microseconds.
  static constexpr uint64_t MotorSpinUpUs = 300000;
  static constexpr uint64_t SeekPerCylinderUs = 3000;
  static constexpr uint64_t SectorTransferUs = 180;

  FloppyHardware() : Data(DiskSize, 0) {}

  bool isMotorOn() const { return MotorOn; }
  void motorOn();
  void motorOff() { MotorOn = false; }

  bool mediaPresent() const { return HasMedia; }
  void insertMedia() { HasMedia = true; }
  void ejectMedia() { HasMedia = false; }
  bool isWriteProtected() const { return WriteProtected; }
  void setWriteProtected(bool P) { WriteProtected = P; }

  /// Reads one sector into \p Out (must hold SectorSize bytes).
  /// Returns false if the motor is off, no media, or LBA out of range.
  bool readSector(uint32_t Lba, uint8_t *Out);
  bool writeSector(uint32_t Lba, const uint8_t *In);

  /// Formats (zeroes) the media.
  void format();

  uint64_t elapsedUs() const { return ElapsedUs; }
  uint32_t currentCylinder() const { return Cylinder; }

private:
  void seekTo(uint32_t Lba);

  std::vector<uint8_t> Data;
  bool MotorOn = false;
  bool HasMedia = true;
  bool WriteProtected = false;
  uint32_t Cylinder = 0;
  uint64_t ElapsedUs = 0;
};

} // namespace vault::drv

#endif // VAULT_DRIVER_FLOPPYHARDWARE_H
