//===- FloppyDriver.h - The case-study floppy driver ------------*- C++ -*-===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The C++ twin of the paper's case-study floppy driver (§4): the
/// Vault source lives in corpus/floppy.vlt and is type-checked by the
/// Vault checker; this implementation — a faithful hand-translation,
/// playing the role of the compiled driver — runs against the kernel
/// simulator. It exercises every protocol of §4: IRP ownership with
/// completion on all paths, pending-queue processing from work items,
/// the Fig. 7 regain-ownership idiom for PnP requests, spin-lock
/// protected queues, and IRQL-correct paged-memory use.
///
//===----------------------------------------------------------------------===//

#ifndef VAULT_DRIVER_FLOPPYDRIVER_H
#define VAULT_DRIVER_FLOPPYDRIVER_H

#include "driver/FloppyHardware.h"
#include "kernel/DriverStack.h"

#include <deque>

namespace vault::drv {

/// IOCTL codes understood by the floppy driver.
enum class FloppyIoctl : uint32_t {
  GetGeometry = 0x70000,
  FormatMedia = 0x70001,
  CheckVerify = 0x70002,
  EjectMedia = 0x70003,
};

/// Geometry blob returned by GetGeometry (written into the IRP buffer).
struct FloppyGeometry {
  uint32_t Cylinders;
  uint32_t Heads;
  uint32_t SectorsPerTrack;
  uint32_t SectorSize;
};

/// Per-device state of the floppy driver.
struct FloppyExtension {
  FloppyHardware Hw;
  kern::SpinLock QueueLock{"floppy-queue"};
  std::deque<kern::Irp *> Queue;
  bool Started = false;
  bool Removed = false;
  bool WorkerScheduled = false;
  unsigned OpenCount = 0;
  uint64_t ReadsServed = 0;
  uint64_t WritesServed = 0;
};

/// Installs the floppy driver's dispatch table on \p Dev and returns
/// its extension.
FloppyExtension *makeFloppyDriver(kern::Kernel &K, kern::DeviceObject *Dev);

/// Builds the canonical 4-deep stack of the paper —
/// filesystem -> storage class -> floppy -> bus — returning the top
/// device. \p OutFloppy receives the floppy device.
kern::DeviceObject *buildFloppyStack(kern::Kernel &K,
                                     kern::DeviceObject **OutFloppy = nullptr);

} // namespace vault::drv

#endif // VAULT_DRIVER_FLOPPYDRIVER_H
