//===- Server.cpp ---------------------------------------------------------===//

#include "server/Server.h"

#include "sema/Checker.h"
#include "support/DiagnosticsFormat.h"
#include "support/Json.h"

#include <chrono>
#include <cmath>

using namespace vault;
using namespace vault::server;

//===----------------------------------------------------------------------===//
// Admission
//===----------------------------------------------------------------------===//

Admission::Outcome Admission::run(const std::function<void()> &Fn) {
  {
    std::unique_lock<std::mutex> Lock(Mu);
    if (Busy || Waiting > 0) {
      // The slot is taken (or contended). Either join the bounded
      // queue or bounce.
      if (Waiting >= MaxQueue)
        return Outcome::Saturated;
      ++Waiting;
      bool Got = Cv.wait_for(Lock, std::chrono::milliseconds(TimeoutMs),
                             [&] { return !Busy; });
      --Waiting;
      if (!Got)
        return Outcome::TimedOut;
    }
    Busy = true;
  }
  try {
    Fn();
  } catch (...) {
    {
      std::lock_guard<std::mutex> Lock(Mu);
      Busy = false;
    }
    Cv.notify_one();
    throw;
  }
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Busy = false;
  }
  Cv.notify_one();
  return Outcome::Ran;
}

//===----------------------------------------------------------------------===//
// Response rendering
//===----------------------------------------------------------------------===//

/// The request id, re-rendered for the response. JSON-RPC allows
/// string, number, or null ids; anything else (or an absent id) maps
/// to null so the client can still correlate the error.
static std::string renderId(const json::Value *Id) {
  if (!Id)
    return "null";
  switch (Id->K) {
  case json::Value::Kind::Number:
    return json::num(Id->Num);
  case json::Value::Kind::String:
    return json::str(Id->Str);
  default:
    return "null";
  }
}

std::string Workspace::okResponse(const std::string &Id,
                                  const std::string &ResultBody) {
  return "{\"jsonrpc\": \"2.0\", \"id\": " + Id +
         ", \"result\": " + ResultBody + "}";
}

std::string Workspace::errResponse(const std::string &Id, int Code,
                                   const std::string &Message) {
  ++Errors;
  return "{\"jsonrpc\": \"2.0\", \"id\": " + Id +
         ", \"error\": {\"code\": " + std::to_string(Code) +
         ", \"message\": " + json::str(Message) + "}}";
}

//===----------------------------------------------------------------------===//
// Dispatch
//===----------------------------------------------------------------------===//

std::string Workspace::handleFrame(const FrameReader::Frame &F) {
  if (F.K == FrameReader::Kind::Overflow) {
    ++Requests;
    return errResponse("null", FrameTooLarge,
                       "frame exceeds " + std::to_string(Cfg.MaxFrameBytes) +
                           " bytes (starts \"" + F.Line + "\")");
  }
  return handleLine(F.Line);
}

std::string Workspace::handleLine(const std::string &Line) {
  ++Requests;
  // Soft-fail boundary: whatever happens while serving this request —
  // a malformed frame, a parser crash on a pathological buffer, an
  // out-of-range parameter — the session answers with a structured
  // error and lives on.
  try {
    json::ParseLimits Limits;
    Limits.MaxBytes = Cfg.MaxFrameBytes;
    std::string Err;
    std::optional<json::Value> Req = json::parseJson(Line, &Err, Limits);
    if (!Req)
      return errResponse("null", ParseError, "invalid JSON frame: " + Err);
    return dispatch(*Req);
  } catch (const std::exception &E) {
    return errResponse("null", InternalError,
                       std::string("internal error: ") + E.what());
  } catch (...) {
    return errResponse("null", InternalError, "internal error");
  }
}

std::string Workspace::dispatch(const json::Value &Req) {
  if (!Req.isObject())
    return errResponse("null", InvalidRequest, "request must be an object");
  std::string Id = renderId(Req.find("id"));
  const json::Value *Method = Req.find("method");
  if (!Method || !Method->isString())
    return errResponse(Id, InvalidRequest, "missing string \"method\"");
  const json::Value *Params = Req.find("params");
  if (Params && !Params->isObject())
    return errResponse(Id, InvalidParams, "\"params\" must be an object");

  const std::string &M = Method->Str;
  if (M == "open")
    return handleOpenChange(Params, Id, /*IsChange=*/false);
  if (M == "change")
    return handleOpenChange(Params, Id, /*IsChange=*/true);
  if (M == "close")
    return handleClose(Params, Id);
  if (M == "check")
    return handleCheck(Params, Id);
  if (M == "stats")
    return handleStats(Id);
  if (M == "shutdown") {
    ShutdownFlag = true;
    return okResponse(Id, "{\"shuttingDown\": true}");
  }
  return errResponse(Id, MethodNotFound, "unknown method \"" + M + "\"");
}

size_t Workspace::findBuffer(const std::string &Name) const {
  for (size_t I = 0; I < Buffers.size(); ++I)
    if (Buffers[I].first == Name)
      return I;
  return static_cast<size_t>(-1);
}

std::string Workspace::handleOpenChange(const json::Value *Params,
                                        const std::string &Id, bool IsChange) {
  const json::Value *Name = Params ? Params->find("name") : nullptr;
  const json::Value *Text = Params ? Params->find("text") : nullptr;
  if (!Name || !Name->isString() || Name->Str.empty() || !Text ||
      !Text->isString())
    return errResponse(Id, InvalidParams,
                       "open/change need a non-empty string \"name\" and a "
                       "string \"text\"");
  size_t At = findBuffer(Name->Str);
  if (IsChange) {
    if (At == static_cast<size_t>(-1))
      return errResponse(Id, InvalidParams,
                         "change: no open buffer named \"" + Name->Str + "\"");
    Buffers[At].second = Text->Str;
  } else {
    if (At != static_cast<size_t>(-1))
      return errResponse(Id, InvalidParams,
                         "open: buffer \"" + Name->Str +
                             "\" is already open (use change)");
    Buffers.emplace_back(Name->Str, Text->Str);
  }
  return okResponse(Id, std::string("{\"") + (IsChange ? "changed" : "opened") +
                            "\": " + json::str(Name->Str) +
                            ", \"buffers\": " +
                            std::to_string(Buffers.size()) + "}");
}

std::string Workspace::handleClose(const json::Value *Params,
                                   const std::string &Id) {
  const json::Value *Name = Params ? Params->find("name") : nullptr;
  if (!Name || !Name->isString())
    return errResponse(Id, InvalidParams, "close needs a string \"name\"");
  size_t At = findBuffer(Name->Str);
  if (At == static_cast<size_t>(-1))
    return errResponse(Id, InvalidParams,
                       "close: no open buffer named \"" + Name->Str + "\"");
  Buffers.erase(Buffers.begin() + static_cast<ptrdiff_t>(At));
  return okResponse(Id, "{\"closed\": " + json::str(Name->Str) +
                            ", \"buffers\": " +
                            std::to_string(Buffers.size()) + "}");
}

std::string Workspace::handleCheck(const json::Value *Params,
                                   const std::string &Id) {
  unsigned Jobs = Cfg.Jobs;
  if (Params)
    if (const json::Value *J = Params->find("jobs")) {
      // Same contract as --jobs: a non-negative integer, 0 = hardware
      // concurrency. Reject rather than truncate anything else.
      if (!J->isNumber() || J->Num < 0 || J->Num > 65536 ||
          J->Num != std::floor(J->Num))
        return errResponse(Id, InvalidParams,
                           "\"jobs\" must be an integer in [0, 65536]");
      Jobs = static_cast<unsigned>(J->Num);
    }

  // Snapshot the overlay; edits racing a queued check (impossible on a
  // single connection, cheap insurance anyway) see a consistent set.
  std::vector<std::pair<std::string, std::string>> Snapshot = Buffers;

  struct Outcome {
    bool Ok = false;
    unsigned Errors = 0;
    VaultCompiler::Stats St;
    std::string DiagJson;
    std::string StatsJson;
  } Out;

  auto Work = [&] {
    // One warm compilation per request: parse and elaboration re-run
    // (they are cheap and must, for fingerprinting), while flow checks
    // — the dominant cost — replay from the warm store for every
    // function the edit did not dirty.
    VaultCompiler C;
    C.setJobs(Jobs);
    if (!Cfg.CacheDir.empty())
      C.setCacheDir(Cfg.CacheDir);
    else
      C.setMemoryCache(&Store);
    for (const auto &[Name, Text] : Snapshot)
      C.queueSource(Name, Text);
    Out.Ok = C.check();
    Out.Errors = C.diags().errorCount();
    Out.St = C.stats();
    // Byte-identical reuse of the one-shot renderers: what vaultc
    // --diagnostics-format=json / --stats-json would print.
    Out.DiagJson = renderDiagnosticsJson(C.diags());
    Out.StatsJson = C.renderStatsJson();
  };

  switch (Gate.run(Work)) {
  case Admission::Outcome::Saturated:
    ++Rejected;
    return errResponse(Id, Saturated,
                       "server saturated: " + std::to_string(Cfg.MaxQueue) +
                           " check(s) already queued; retry later");
  case Admission::Outcome::TimedOut:
    ++TimedOutCount;
    return errResponse(Id, TimedOut,
                       "timed out after " +
                           std::to_string(Cfg.RequestTimeoutMs) +
                           " ms waiting for the check slot");
  case Admission::Outcome::Ran:
    break;
  }

  ++Checks;
  HaveLastCheck = true;
  LastFlowChecksRun = Out.St.FlowChecksRun;
  LastCacheHits = Out.St.CacheHits;
  LastFunctionsChecked = Out.St.FunctionsChecked;

  std::string R = "{\"ok\": ";
  R += Out.Ok ? "true" : "false";
  R += ", \"errors\": " + std::to_string(Out.Errors);
  R += ", \"functionsChecked\": " + std::to_string(Out.St.FunctionsChecked);
  R += ", \"flowChecksRun\": " + std::to_string(Out.St.FlowChecksRun);
  R += ", \"cacheHits\": " + std::to_string(Out.St.CacheHits);
  R += ", \"cacheMisses\": " + std::to_string(Out.St.CacheMisses);
  R += ", \"cacheInvalidated\": " + std::to_string(Out.St.CacheInvalidations);
  R += ", \"jobsUsed\": " + std::to_string(Out.St.JobsUsed);
  R += ", \"diagnostics\": " + json::str(Out.DiagJson);
  R += ", \"stats\": " + json::str(Out.StatsJson);
  R += "}";
  return okResponse(Id, R);
}

std::string Workspace::handleStats(const std::string &Id) {
  std::string R = "{\"requests\": " + std::to_string(Requests);
  R += ", \"errors\": " + std::to_string(Errors);
  R += ", \"checks\": " + std::to_string(Checks);
  R += ", \"rejected\": " + std::to_string(Rejected);
  R += ", \"timedOut\": " + std::to_string(TimedOutCount);
  R += ", \"buffersOpen\": " + std::to_string(Buffers.size());
  R += ", \"cacheEntries\": " +
       std::to_string(Cfg.CacheDir.empty() ? Store.entryCount() : 0);
  if (HaveLastCheck) {
    R += ", \"lastCheck\": {\"functionsChecked\": " +
         std::to_string(LastFunctionsChecked) +
         ", \"flowChecksRun\": " + std::to_string(LastFlowChecksRun) +
         ", \"cacheHits\": " + std::to_string(LastCacheHits) + "}";
  } else {
    R += ", \"lastCheck\": null";
  }
  R += "}";
  return okResponse(Id, R);
}
