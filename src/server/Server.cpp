//===- Server.cpp ---------------------------------------------------------===//

#include "server/Server.h"

#include "sema/Checker.h"
#include "support/DiagnosticsFormat.h"
#include "support/Json.h"

#include <chrono>
#include <cmath>

using namespace vault;
using namespace vault::server;

//===----------------------------------------------------------------------===//
// Admission
//===----------------------------------------------------------------------===//

Admission::Outcome Admission::run(const std::function<void()> &Fn,
                                  uint64_t *QueueWaitUs) {
  if (QueueWaitUs)
    *QueueWaitUs = 0;
  {
    std::unique_lock<std::mutex> Lock(Mu);
    if (Busy || Waiting > 0) {
      // The slot is taken (or contended). Either join the bounded
      // queue or bounce.
      if (Waiting >= MaxQueue)
        return Outcome::Saturated;
      ++Waiting;
      PeakWaiting = std::max(PeakWaiting, Waiting);
      auto WaitBegin = std::chrono::steady_clock::now();
      bool Got = Cv.wait_for(Lock, std::chrono::milliseconds(TimeoutMs),
                             [&] { return !Busy; });
      if (QueueWaitUs)
        *QueueWaitUs = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - WaitBegin)
                .count());
      --Waiting;
      if (!Got)
        return Outcome::TimedOut;
    }
    Busy = true;
  }
  try {
    Fn();
  } catch (...) {
    {
      std::lock_guard<std::mutex> Lock(Mu);
      Busy = false;
    }
    Cv.notify_one();
    throw;
  }
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Busy = false;
  }
  Cv.notify_one();
  return Outcome::Ran;
}

size_t Admission::currentWaiters() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Waiting;
}

size_t Admission::peakWaiters() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return PeakWaiting;
}

bool Admission::busy() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Busy;
}

//===----------------------------------------------------------------------===//
// Response rendering
//===----------------------------------------------------------------------===//

/// The request id, re-rendered for the response. JSON-RPC allows
/// string, number, or null ids; anything else (or an absent id) maps
/// to null so the client can still correlate the error.
static std::string renderId(const json::Value *Id) {
  if (!Id)
    return "null";
  switch (Id->K) {
  case json::Value::Kind::Number:
    return json::num(Id->Num);
  case json::Value::Kind::String:
    return json::str(Id->Str);
  default:
    return "null";
  }
}

std::string Workspace::okResponse(const std::string &Id,
                                  const std::string &ResultBody) {
  return "{\"jsonrpc\": \"2.0\", \"id\": " + Id +
         ", \"result\": " + ResultBody + "}";
}

std::string Workspace::errResponse(const std::string &Id, int Code,
                                   const std::string &Message) {
  ++Errors;
  Req.ErrCode = Code;
  return "{\"jsonrpc\": \"2.0\", \"id\": " + Id +
         ", \"error\": {\"code\": " + std::to_string(Code) +
         ", \"message\": " + json::str(Message) + "}}";
}

//===----------------------------------------------------------------------===//
// Telemetry
//===----------------------------------------------------------------------===//

void Workspace::setTelemetry(const Telemetry &T) {
  Tel = T;
  TelemetryAttached = Tel.Log || Tel.Metrics || Tel.Trc;
  if (Tel.Metrics) {
    Sid = Tel.Metrics->nextSessionId();
    Tel.Metrics->sessionOpened();
  }
  if (Tel.Log)
    Tel.Log->write(ServerLog::Event("session")
                       .field("ts_us", eventTimeUs())
                       .field("sid", Sid)
                       .field("phase", "open"));
}

Workspace::~Workspace() {
  if (!TelemetryAttached)
    return;
  if (Tel.Log)
    Tel.Log->write(ServerLog::Event("session")
                       .field("ts_us", eventTimeUs())
                       .field("sid", Sid)
                       .field("phase", "close")
                       .field("requests", Requests)
                       .field("errors", Errors)
                       .field("checks", Checks));
  if (Tel.Metrics)
    Tel.Metrics->sessionClosed();
}

//===----------------------------------------------------------------------===//
// Dispatch
//===----------------------------------------------------------------------===//

std::string Workspace::handleFrame(const FrameReader::Frame &F) {
  // Fast path: no telemetry, no clocks, no per-request bookkeeping
  // beyond the session counters — exactly the pre-observability
  // behavior.
  if (!TelemetryAttached) {
    if (F.K == FrameReader::Kind::Overflow) {
      ++Requests;
      ++FramesRejected;
      BytesDiscarded += F.Discarded;
      return errResponse("null", FrameTooLarge,
                         "frame exceeds " + std::to_string(Cfg.MaxFrameBytes) +
                             " bytes (starts \"" + F.Line + "\")");
    }
    return handleLine(F.Line);
  }

  Req = RequestScratch{};
  CurRid = Tel.Metrics ? Tel.Metrics->nextRequestId() : ++LocalRid;
  auto Begin = std::chrono::steady_clock::now();

  std::string Resp;
  {
    // The request span wraps everything this frame costs the server —
    // dispatch, admission wait, and the check itself (whose compiler
    // pass spans nest inside, on this tracer).
    TraceSpan Span(Tel.Trc, "request");
    if (F.K == FrameReader::Kind::Overflow) {
      ++Requests;
      ++FramesRejected;
      BytesDiscarded += F.Discarded;
      if (Tel.Metrics)
        Tel.Metrics->countFrameOverflow(F.Discarded);
      Resp = errResponse("null", FrameTooLarge,
                         "frame exceeds " + std::to_string(Cfg.MaxFrameBytes) +
                             " bytes (starts \"" + F.Line + "\")");
    } else {
      Resp = handleLine(F.Line);
    }
    Span.arg("sid", Sid);
    Span.arg("rid", CurRid);
    Span.arg("method", Req.Method);
    Span.arg("outcome", Req.ErrCode ? "error" : "ok");
  }

  uint64_t HandleUs = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - Begin)
          .count());
  uint64_t BytesIn = F.Line.size() + F.Discarded;
  uint64_t BytesOut = Resp.size();

  if (Tel.Metrics)
    Tel.Metrics->countRequest(Req.Method, Req.ErrCode, HandleUs,
                              Req.QueueWaitUs, BytesIn, BytesOut);

  if (Tel.Log) {
    ServerLog::Event E("request");
    E.field("ts_us", eventTimeUs())
        .field("sid", Sid)
        .field("rid", CurRid)
        .raw("id", Req.IdJson)
        .field("method", Req.Method)
        .field("outcome", Req.ErrCode ? "error" : "ok");
    if (Req.ErrCode)
      E.field("code", static_cast<int64_t>(Req.ErrCode));
    E.field("queue_wait_us", Req.QueueWaitUs)
        .field("handle_us", HandleUs)
        .field("bytes_in", BytesIn)
        .field("bytes_out", BytesOut);
    if (F.K == FrameReader::Kind::Overflow)
      E.field("discarded_bytes", F.Discarded);
    if (Req.HaveCheckDeltas)
      E.field("flow_checks_run", Req.FlowChecksRun)
          .field("cache_hits", Req.CacheHits)
          .field("cache_misses", Req.CacheMisses)
          .field("cache_invalidated", Req.CacheInvalidated)
          .field("functions_checked", Req.FunctionsChecked);
    Tel.Log->write(std::move(E));

    if (HandleUs / 1000 >= Tel.SlowMs)
      Tel.Log->write(ServerLog::Event("slow_request")
                         .field("ts_us", eventTimeUs())
                         .field("sid", Sid)
                         .field("rid", CurRid)
                         .field("method", Req.Method)
                         .field("handle_us", HandleUs)
                         .field("threshold_ms", Tel.SlowMs));
  }
  return Resp;
}

std::string Workspace::handleLine(const std::string &Line) {
  ++Requests;
  // Soft-fail boundary: whatever happens while serving this request —
  // a malformed frame, a parser crash on a pathological buffer, an
  // out-of-range parameter — the session answers with a structured
  // error and lives on.
  try {
    json::ParseLimits Limits;
    Limits.MaxBytes = Cfg.MaxFrameBytes;
    std::string Err;
    std::optional<json::Value> Req = json::parseJson(Line, &Err, Limits);
    if (!Req)
      return errResponse("null", ParseError, "invalid JSON frame: " + Err);
    return dispatch(*Req);
  } catch (const std::exception &E) {
    return errResponse("null", InternalError,
                       std::string("internal error: ") + E.what());
  } catch (...) {
    return errResponse("null", InternalError, "internal error");
  }
}

std::string Workspace::dispatch(const json::Value &Request) {
  if (!Request.isObject())
    return errResponse("null", InvalidRequest, "request must be an object");
  std::string Id = renderId(Request.find("id"));
  Req.IdJson = Id;
  const json::Value *Method = Request.find("method");
  if (!Method || !Method->isString())
    return errResponse(Id, InvalidRequest, "missing string \"method\"");
  const json::Value *Params = Request.find("params");
  if (Params && !Params->isObject())
    return errResponse(Id, InvalidParams, "\"params\" must be an object");

  const std::string &M = Method->Str;
  Req.Method = M;
  if (M == "open")
    return handleOpenChange(Params, Id, /*IsChange=*/false);
  if (M == "change")
    return handleOpenChange(Params, Id, /*IsChange=*/true);
  if (M == "close")
    return handleClose(Params, Id);
  if (M == "check")
    return handleCheck(Params, Id);
  if (M == "stats")
    return handleStats(Id);
  if (M == "metrics")
    return handleMetrics(Id);
  if (M == "health")
    return handleHealth(Id);
  if (M == "shutdown") {
    ShutdownFlag = true;
    return okResponse(Id, "{\"shuttingDown\": true}");
  }
  return errResponse(Id, MethodNotFound, "unknown method \"" + M + "\"");
}

size_t Workspace::findBuffer(const std::string &Name) const {
  for (size_t I = 0; I < Buffers.size(); ++I)
    if (Buffers[I].first == Name)
      return I;
  return static_cast<size_t>(-1);
}

std::string Workspace::handleOpenChange(const json::Value *Params,
                                        const std::string &Id, bool IsChange) {
  const json::Value *Name = Params ? Params->find("name") : nullptr;
  const json::Value *Text = Params ? Params->find("text") : nullptr;
  if (!Name || !Name->isString() || Name->Str.empty() || !Text ||
      !Text->isString())
    return errResponse(Id, InvalidParams,
                       "open/change need a non-empty string \"name\" and a "
                       "string \"text\"");
  size_t At = findBuffer(Name->Str);
  if (IsChange) {
    if (At == static_cast<size_t>(-1))
      return errResponse(Id, InvalidParams,
                         "change: no open buffer named \"" + Name->Str + "\"");
    Buffers[At].second = Text->Str;
  } else {
    if (At != static_cast<size_t>(-1))
      return errResponse(Id, InvalidParams,
                         "open: buffer \"" + Name->Str +
                             "\" is already open (use change)");
    Buffers.emplace_back(Name->Str, Text->Str);
  }
  return okResponse(Id, std::string("{\"") + (IsChange ? "changed" : "opened") +
                            "\": " + json::str(Name->Str) +
                            ", \"buffers\": " +
                            std::to_string(Buffers.size()) + "}");
}

std::string Workspace::handleClose(const json::Value *Params,
                                   const std::string &Id) {
  const json::Value *Name = Params ? Params->find("name") : nullptr;
  if (!Name || !Name->isString())
    return errResponse(Id, InvalidParams, "close needs a string \"name\"");
  size_t At = findBuffer(Name->Str);
  if (At == static_cast<size_t>(-1))
    return errResponse(Id, InvalidParams,
                       "close: no open buffer named \"" + Name->Str + "\"");
  Buffers.erase(Buffers.begin() + static_cast<ptrdiff_t>(At));
  return okResponse(Id, "{\"closed\": " + json::str(Name->Str) +
                            ", \"buffers\": " +
                            std::to_string(Buffers.size()) + "}");
}

std::string Workspace::handleCheck(const json::Value *Params,
                                   const std::string &Id) {
  unsigned Jobs = Cfg.Jobs;
  if (Params)
    if (const json::Value *J = Params->find("jobs")) {
      // Same contract as --jobs: a non-negative integer, 0 = hardware
      // concurrency. Reject rather than truncate anything else.
      if (!J->isNumber() || J->Num < 0 || J->Num > 65536 ||
          J->Num != std::floor(J->Num))
        return errResponse(Id, InvalidParams,
                           "\"jobs\" must be an integer in [0, 65536]");
      Jobs = static_cast<unsigned>(J->Num);
    }

  // Snapshot the overlay; edits racing a queued check (impossible on a
  // single connection, cheap insurance anyway) see a consistent set.
  std::vector<std::pair<std::string, std::string>> Snapshot = Buffers;

  struct Outcome {
    bool Ok = false;
    unsigned Errors = 0;
    VaultCompiler::Stats St;
    std::string DiagJson;
    std::string StatsJson;
  } Out;

  auto Work = [&] {
    // The check span carries the request tag so the compiler's pass
    // spans (parse, elab, per-function checks) that nest inside it are
    // attributable to this request in the merged trace.
    TraceSpan CheckSpan(Tel.Trc, "check");
    CheckSpan.arg("sid", Sid);
    CheckSpan.arg("rid", CurRid);
    // One warm compilation per request: parse and elaboration re-run
    // (they are cheap and must, for fingerprinting), while flow checks
    // — the dominant cost — replay from the warm store for every
    // function the edit did not dirty.
    VaultCompiler C;
    C.setJobs(Jobs);
    if (Tel.Trc)
      C.setTracer(Tel.Trc);
    if (!Cfg.CacheDir.empty())
      C.setCacheDir(Cfg.CacheDir);
    else
      C.setMemoryCache(&Store);
    for (const auto &[Name, Text] : Snapshot)
      C.queueSource(Name, Text);
    Out.Ok = C.check();
    Out.Errors = C.diags().errorCount();
    Out.St = C.stats();
    // Byte-identical reuse of the one-shot renderers: what vaultc
    // --diagnostics-format=json / --stats-json would print.
    Out.DiagJson = renderDiagnosticsJson(C.diags());
    Out.StatsJson = C.renderStatsJson();
  };

  uint64_t WaitBegin = Tel.Trc ? Tel.Trc->nowUs() : 0;
  uint64_t WaitUs = 0;
  Admission::Outcome Gated = Gate.run(Work, &WaitUs);
  Req.QueueWaitUs = WaitUs;
  if (Tel.Trc && WaitUs > 0)
    Tel.Trc->complete("admission.wait", WaitBegin, WaitBegin + WaitUs,
                      {{"sid", std::to_string(Sid)},
                       {"rid", std::to_string(CurRid)}});
  if (Tel.Metrics)
    Tel.Metrics->recordQueueDepth(Gate.peakWaiters());

  switch (Gated) {
  case Admission::Outcome::Saturated:
    ++Rejected;
    if (Tel.Log)
      Tel.Log->write(ServerLog::Event("admission")
                         .field("ts_us", eventTimeUs())
                         .field("sid", Sid)
                         .field("rid", CurRid)
                         .field("outcome", "saturated")
                         .field("waiters", Gate.currentWaiters())
                         .field("max_queue", Cfg.MaxQueue));
    return errResponse(Id, Saturated,
                       "server saturated: " + std::to_string(Cfg.MaxQueue) +
                           " check(s) already queued; retry later");
  case Admission::Outcome::TimedOut:
    ++TimedOutCount;
    if (Tel.Log)
      Tel.Log->write(ServerLog::Event("admission")
                         .field("ts_us", eventTimeUs())
                         .field("sid", Sid)
                         .field("rid", CurRid)
                         .field("outcome", "timed_out")
                         .field("queue_wait_us", WaitUs)
                         .field("timeout_ms", Cfg.RequestTimeoutMs));
    return errResponse(Id, TimedOut,
                       "timed out after " +
                           std::to_string(Cfg.RequestTimeoutMs) +
                           " ms waiting for the check slot");
  case Admission::Outcome::Ran:
    break;
  }

  ++Checks;
  HaveLastCheck = true;
  LastFlowChecksRun = Out.St.FlowChecksRun;
  LastCacheHits = Out.St.CacheHits;
  LastFunctionsChecked = Out.St.FunctionsChecked;
  TotalFlowChecksRun += Out.St.FlowChecksRun;
  TotalCacheHits += Out.St.CacheHits;
  TotalCacheMisses += Out.St.CacheMisses;
  TotalCacheInvalidated += Out.St.CacheInvalidations;
  TotalFunctionsChecked += Out.St.FunctionsChecked;
  Req.HaveCheckDeltas = true;
  Req.FlowChecksRun = Out.St.FlowChecksRun;
  Req.CacheHits = Out.St.CacheHits;
  Req.CacheMisses = Out.St.CacheMisses;
  Req.CacheInvalidated = Out.St.CacheInvalidations;
  Req.FunctionsChecked = Out.St.FunctionsChecked;

  std::string R = "{\"ok\": ";
  R.reserve(256 + Out.DiagJson.size() + Out.StatsJson.size());
  R += Out.Ok ? "true" : "false";
  R += ", \"errors\": " + std::to_string(Out.Errors);
  R += ", \"functionsChecked\": " + std::to_string(Out.St.FunctionsChecked);
  R += ", \"flowChecksRun\": " + std::to_string(Out.St.FlowChecksRun);
  R += ", \"cacheHits\": " + std::to_string(Out.St.CacheHits);
  R += ", \"cacheMisses\": " + std::to_string(Out.St.CacheMisses);
  R += ", \"cacheInvalidated\": " + std::to_string(Out.St.CacheInvalidations);
  R += ", \"jobsUsed\": " + std::to_string(Out.St.JobsUsed);
  R += ", \"diagnostics\": " + json::str(Out.DiagJson);
  R += ", \"stats\": " + json::str(Out.StatsJson);
  R += "}";
  return okResponse(Id, R);
}

std::string Workspace::handleStats(const std::string &Id) {
  std::string R = "{\"requests\": " + std::to_string(Requests);
  R += ", \"errors\": " + std::to_string(Errors);
  R += ", \"checks\": " + std::to_string(Checks);
  R += ", \"rejected\": " + std::to_string(Rejected);
  R += ", \"timedOut\": " + std::to_string(TimedOutCount);
  R += ", \"framesRejected\": " + std::to_string(FramesRejected);
  R += ", \"bytesDiscarded\": " + std::to_string(BytesDiscarded);
  R += ", \"buffersOpen\": " + std::to_string(Buffers.size());
  R += ", \"cacheEntries\": " +
       std::to_string(Cfg.CacheDir.empty() ? Store.entryCount() : 0);
  R += ", \"totals\": {\"flowChecksRun\": " +
       std::to_string(TotalFlowChecksRun) +
       ", \"cacheHits\": " + std::to_string(TotalCacheHits) +
       ", \"cacheMisses\": " + std::to_string(TotalCacheMisses) +
       ", \"cacheInvalidated\": " + std::to_string(TotalCacheInvalidated) +
       ", \"functionsChecked\": " + std::to_string(TotalFunctionsChecked) +
       "}";
  if (HaveLastCheck) {
    R += ", \"lastCheck\": {\"functionsChecked\": " +
         std::to_string(LastFunctionsChecked) +
         ", \"flowChecksRun\": " + std::to_string(LastFlowChecksRun) +
         ", \"cacheHits\": " + std::to_string(LastCacheHits) + "}";
  } else {
    R += ", \"lastCheck\": null";
  }
  R += "}";
  return okResponse(Id, R);
}

std::string Workspace::handleMetrics(const std::string &Id) {
  if (!Tel.Metrics)
    return errResponse(Id, InternalError,
                       "server metrics are not enabled for this session");
  // Embedded as a string for the same reason check embeds its stats
  // document: the registry renderer's bytes contain newlines, and
  // responses must stay one line.
  return okResponse(Id, "{\"uptimeMs\": " +
                            std::to_string(Tel.Metrics->uptimeMs()) +
                            ", \"metrics\": " +
                            json::str(Tel.Metrics->renderJson()) + "}");
}

std::string Workspace::handleHealth(const std::string &Id) {
  // Health never goes through the admission gate, so it answers even
  // while the check slot is saturated — that is the point.
  size_t Depth = Gate.currentWaiters();
  bool Busy = Gate.busy();
  bool SaturatedNow = Busy && Depth >= Cfg.MaxQueue;
  std::string R = "{\"status\": ";
  R += json::str(SaturatedNow ? "saturated" : "ok");
  R += ", \"uptimeMs\": " +
       std::to_string(Tel.Metrics ? Tel.Metrics->uptimeMs() : 0);
  R += ", \"busy\": ";
  R += Busy ? "true" : "false";
  R += ", \"queueDepth\": " + std::to_string(Depth);
  R += ", \"peakQueueDepth\": " + std::to_string(Gate.peakWaiters());
  R += ", \"maxQueue\": " + std::to_string(Cfg.MaxQueue);
  R += ", \"requestTimeoutMs\": " + std::to_string(Cfg.RequestTimeoutMs);
  R += ", \"sessionsOpen\": " +
       std::to_string(Tel.Metrics ? Tel.Metrics->sessionsOpen() : 0);
  R += ", \"buffersOpen\": " + std::to_string(Buffers.size());
  R += "}";
  return okResponse(Id, R);
}
