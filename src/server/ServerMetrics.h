//===- ServerMetrics.h - Server-wide telemetry aggregation ------*- C++ -*-===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon-lifetime half of the metrics story. The per-check
/// `Metrics` registry (support/Metrics.h) is reset at the start of
/// every check() and describes exactly one compilation; ServerMetrics
/// is the opposite: one instance per daemon process, shared by every
/// session and connection, never reset, accumulating the server-level
/// signals a single check() cannot see — requests and errors by method
/// and code, request latency and admission queue-wait histograms,
/// transport-layer frame rejections, session churn, peak queue depth,
/// and uptime.
///
/// Rendering reuses the Metrics registry, so the `metrics` JSON-RPC
/// method answers with the exact sorted {"counters", "histograms"}
/// document shape `vaultc --stats-json` writes. Every counter and
/// histogram is pre-seeded at construction: the key set of the
/// rendered document is a compile-time constant, never a function of
/// which requests happened to arrive first — tests pin it across job
/// counts and cache temperature.
///
/// Thread safety: every member is safe to call from any session
/// thread; a single mutex guards the registry (server request rates
/// are far below the point where this lock matters, and the render
/// path needs a consistent snapshot anyway).
///
//===----------------------------------------------------------------------===//

#ifndef VAULT_SERVER_SERVERMETRICS_H
#define VAULT_SERVER_SERVERMETRICS_H

#include "support/Metrics.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>

namespace vault::server {

class ServerMetrics {
public:
  ServerMetrics();

  /// Microseconds since the daemon (this aggregator) started; the
  /// timebase of every structured log event's "ts_us" field.
  uint64_t nowUs() const;
  uint64_t uptimeMs() const { return nowUs() / 1000; }

  /// Process-unique ids, 1-based. Session ids tag every event a
  /// session emits; request ids are server-wide so a merged trace or
  /// log from many concurrent connections still orders uniquely.
  uint64_t nextSessionId() { return ++SessionSeq; }
  uint64_t nextRequestId() { return ++RequestSeq; }

  void sessionOpened();
  void sessionClosed();

  /// One completed request. \p Method must be one of the known method
  /// names (anything else is folded into "other"); \p ErrorCode is 0
  /// for a success response, else the JSON-RPC error code sent.
  void countRequest(const std::string &Method, int ErrorCode,
                    uint64_t HandleUs, uint64_t QueueWaitUs, uint64_t BytesIn,
                    uint64_t BytesOut);

  /// One transport-layer frame rejection (FrameReader overflow):
  /// \p DiscardedBytes of the line were dropped unparsed.
  void countFrameOverflow(uint64_t DiscardedBytes);

  /// Largest admission-queue depth observed so far (monotonic).
  void recordQueueDepth(uint64_t Depth);

  /// How many sessions are currently open (opened - closed).
  uint64_t sessionsOpen() const;

  /// Current value of one counter (0 when absent) — test/diagnostic
  /// accessor mirroring Metrics::value.
  uint64_t counter(const std::string &Name) const;

  /// The aggregate registry as the sorted {"counters", "histograms"}
  /// JSON document --stats-json uses. `server.uptime_ms` is stamped at
  /// render time; every other key is pre-seeded, so the key set is
  /// deterministic from the first request to the last.
  std::string renderJson() const;

private:
  /// The pre-seeded counter name for a JSON-RPC error \p Code.
  static const char *errorKindName(int Code);

  const std::chrono::steady_clock::time_point Epoch;
  std::atomic<uint64_t> SessionSeq{0};
  std::atomic<uint64_t> RequestSeq{0};
  mutable std::mutex Mu;
  /// Mutable so renderJson (logically const) can stamp the uptime
  /// counter at render time.
  mutable Metrics Reg;
};

} // namespace vault::server

#endif // VAULT_SERVER_SERVERMETRICS_H
