//===- Frame.h - Newline-delimited frame extraction -------------*- C++ -*-===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// vaultd's wire framing: one request per '\n'-terminated line, one
/// response line back. FrameReader turns an arbitrary byte stream
/// (stdio chunks, socket reads) into complete frames while enforcing a
/// size ceiling — an endless line cannot grow the buffer without
/// bound; once the limit is crossed the rest of the line streams
/// through a constant-size discard path and surfaces as exactly one
/// Overflow frame, so the server can answer with a structured error
/// and keep the session alive.
///
//===----------------------------------------------------------------------===//

#ifndef VAULT_SERVER_FRAME_H
#define VAULT_SERVER_FRAME_H

#include <cstddef>
#include <string>
#include <string_view>

namespace vault::server {

/// Incremental splitter for newline-delimited frames.
///
/// \code
///   FrameReader R(1 << 20);
///   R.feed(Bytes);
///   while (auto F = R.next(); F.K != FrameReader::Kind::None) ...
/// \endcode
class FrameReader {
public:
  enum class Kind {
    None,     ///< No complete frame buffered yet.
    Ok,       ///< A complete line (terminator stripped, CR included).
    Overflow, ///< A line exceeded the byte limit; its bytes were
              ///< discarded and Line holds a short prefix for the
              ///< error message.
  };

  struct Frame {
    Kind K = Kind::None;
    std::string Line;
    /// For Overflow frames: how many bytes of the rejected line were
    /// discarded (everything past the kept prefix), so the server can
    /// account transport-layer data loss per event, not just per
    /// counter.
    uint64_t Discarded = 0;
  };

  explicit FrameReader(size_t MaxFrameBytes) : MaxBytes(MaxFrameBytes) {}

  /// Appends raw bytes from the transport.
  void feed(std::string_view Bytes);

  /// Extracts the next complete frame, or Kind::None when more input
  /// is needed.
  Frame next();

  /// True when no partial line is buffered (a clean EOF point).
  bool idle() const { return Buf.empty() && !Discarding; }

  size_t maxFrameBytes() const { return MaxBytes; }

  /// Lifetime totals of the transport-layer reject path. The old
  /// behavior was to discard oversized/garbage bytes silently; these
  /// feed ServerMetrics (server.frames.*) and the session `stats`
  /// response so a client flooding the daemon with junk is visible.
  uint64_t overflowFrames() const { return OverflowFrames; }
  uint64_t discardedBytes() const { return DiscardedTotal; }

private:
  size_t MaxBytes;
  std::string Buf;
  /// Bytes already scanned for '\n' (avoids rescanning the whole
  /// buffer on every feed of a long line).
  size_t Scanned = 0;
  /// Inside an oversized line: drop bytes until its newline, then
  /// emit one Overflow frame.
  bool Discarding = false;
  std::string OverflowPrefix;
  /// Bytes dropped so far for the oversized line currently being
  /// discarded; stamped into its eventual Overflow frame.
  uint64_t DiscardedRun = 0;
  uint64_t OverflowFrames = 0;
  uint64_t DiscardedTotal = 0;
};

} // namespace vault::server

#endif // VAULT_SERVER_FRAME_H
