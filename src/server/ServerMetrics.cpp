//===- ServerMetrics.cpp --------------------------------------------------===//

#include "server/ServerMetrics.h"

#include <array>

using namespace vault;
using namespace vault::server;

/// Every method the dispatcher knows, plus the "other" fold-in for
/// unknown or unparsable ones. Kept in sync with Workspace::dispatch —
/// the observability test cross-checks that a request for each method
/// bumps its own counter, never "other".
static constexpr std::array<const char *, 9> MethodNames = {
    "open",  "change",  "close",  "check", "stats",
    "metrics", "health", "shutdown", "other"};

/// Error kinds the server can answer with, named for the counter keys.
/// The codes are the wire protocol (JSON-RPC 2.0 plus vaultd's -320xx
/// range), duplicated here so the aggregator does not pull in the
/// whole dispatch header.
static constexpr std::array<std::pair<int, const char *>, 8> ErrorKinds = {{
    {-32700, "parse_error"},
    {-32600, "invalid_request"},
    {-32601, "method_not_found"},
    {-32602, "invalid_params"},
    {-32603, "internal"},
    {-32000, "saturated"},
    {-32001, "timed_out"},
    {-32002, "frame_too_large"},
}};

/// Fixed bucket edges for the latency and queue-wait histograms, in
/// microseconds: 100us / 1ms / 10ms / 100ms / 1s.
static std::vector<double> latencyEdgesUs() {
  return {100, 1000, 10000, 100000, 1000000};
}

const char *ServerMetrics::errorKindName(int Code) {
  for (const auto &[C, Name] : ErrorKinds)
    if (C == Code)
      return Name;
  return "unknown";
}

ServerMetrics::ServerMetrics() : Epoch(std::chrono::steady_clock::now()) {
  // Pre-seed the whole key space so the rendered document's key set is
  // independent of traffic.
  std::lock_guard<std::mutex> Lock(Mu);
  Reg.set("server.requests.total", 0);
  for (const char *M : MethodNames)
    Reg.set(std::string("server.requests.") + M, 0);
  Reg.set("server.errors.total", 0);
  for (const auto &[C, Name] : ErrorKinds) {
    (void)C;
    Reg.set(std::string("server.errors.") + Name, 0);
  }
  Reg.set("server.errors.unknown", 0);
  Reg.set("server.frames.overflow", 0);
  Reg.set("server.frames.discarded_bytes", 0);
  Reg.set("server.sessions.opened", 0);
  Reg.set("server.sessions.closed", 0);
  Reg.set("server.queue.peak_depth", 0);
  Reg.set("server.bytes.in", 0);
  Reg.set("server.bytes.out", 0);
  Reg.set("server.uptime_ms", 0);
  Reg.histogram("server.request_us", latencyEdgesUs());
  Reg.histogram("server.queue_wait_us", latencyEdgesUs());
}

uint64_t ServerMetrics::nowUs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - Epoch)
          .count());
}

void ServerMetrics::sessionOpened() {
  std::lock_guard<std::mutex> Lock(Mu);
  Reg.add("server.sessions.opened");
}

void ServerMetrics::sessionClosed() {
  std::lock_guard<std::mutex> Lock(Mu);
  Reg.add("server.sessions.closed");
}

void ServerMetrics::countRequest(const std::string &Method, int ErrorCode,
                                 uint64_t HandleUs, uint64_t QueueWaitUs,
                                 uint64_t BytesIn, uint64_t BytesOut) {
  std::string MethodKey = "server.requests.other";
  for (const char *M : MethodNames)
    if (Method == M) {
      MethodKey = std::string("server.requests.") + M;
      break;
    }
  std::lock_guard<std::mutex> Lock(Mu);
  Reg.add("server.requests.total");
  Reg.add(MethodKey);
  if (ErrorCode != 0) {
    Reg.add("server.errors.total");
    Reg.add(std::string("server.errors.") + errorKindName(ErrorCode));
  }
  Reg.add("server.bytes.in", BytesIn);
  Reg.add("server.bytes.out", BytesOut);
  Reg.histogram("server.request_us", latencyEdgesUs())
      .record(static_cast<double>(HandleUs));
  Reg.histogram("server.queue_wait_us", latencyEdgesUs())
      .record(static_cast<double>(QueueWaitUs));
}

void ServerMetrics::countFrameOverflow(uint64_t DiscardedBytes) {
  std::lock_guard<std::mutex> Lock(Mu);
  Reg.add("server.frames.overflow");
  Reg.add("server.frames.discarded_bytes", DiscardedBytes);
}

void ServerMetrics::recordQueueDepth(uint64_t Depth) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Depth > Reg.value("server.queue.peak_depth"))
    Reg.set("server.queue.peak_depth", Depth);
}

uint64_t ServerMetrics::sessionsOpen() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Reg.value("server.sessions.opened") -
         Reg.value("server.sessions.closed");
}

uint64_t ServerMetrics::counter(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Reg.value(Name);
}

std::string ServerMetrics::renderJson() const {
  std::lock_guard<std::mutex> Lock(Mu);
  // Stamped here rather than on a timer: the value is only observable
  // through a render, so rendering is the one place it can go stale.
  Reg.set("server.uptime_ms", uptimeMs());
  return Reg.renderJson();
}
