//===- ServerLog.h - Structured JSONL request logging -----------*- C++ -*-===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// vaultd's structured event log (`--log-json <path|->`): one JSON
/// object per line, schema-versioned, flushed after every event so a
/// crashed daemon never leaves a torn line behind the one being
/// written. "-" routes the stream to stderr — safe by construction,
/// because the wire protocol owns stdout and everything on stderr is
/// advisory.
///
/// Event kinds (the "event" field):
///   request      one per answered frame: method, outcome, latency,
///                queue wait, frame bytes in/out, and — for checks —
///                the per-check counter deltas (flow checks run, cache
///                hits/misses/invalidated)
///   session      a connection's workspace opened or closed
///   admission    a check bounced off the gate (saturated/timed_out)
///   slow_request a request crossed the --slow-ms threshold
///
/// Every event carries "v" (schema version), "ts_us" (microseconds on
/// the emitting clock) and "sid" (session id). The strict
/// support/JsonParse parser accepts every emitted line; the
/// observability test enforces that plus the per-kind required keys.
///
//===----------------------------------------------------------------------===//

#ifndef VAULT_SERVER_SERVERLOG_H
#define VAULT_SERVER_SERVERLOG_H

#include "support/Json.h"

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace vault::server {

class ServerLog {
public:
  /// The "v" field of every event this build emits. Bump when a field
  /// is renamed or its meaning changes; adding fields is backward
  /// compatible and does not.
  static constexpr unsigned SchemaVersion = 1;

  /// Opens \p PathOrDash for appending ("-" = stderr). Returns null
  /// and sets \p Err on failure.
  static std::unique_ptr<ServerLog> open(const std::string &PathOrDash,
                                         std::string *Err);

  /// Wraps an already-open stream; closes it at destruction iff
  /// \p Owned (tests hand in tmpfile() handles they keep reading).
  ServerLog(std::FILE *Stream, bool Owned) : Stream(Stream), Owned(Owned) {}
  ServerLog(const ServerLog &) = delete;
  ServerLog &operator=(const ServerLog &) = delete;
  ~ServerLog();

  /// One event under construction. Fields render in insertion order;
  /// the constructor pins "v" and "event" first so every line leads
  /// with its schema tag.
  class Event {
  public:
    explicit Event(const char *Kind) {
      Body = "{\"v\": " + std::to_string(SchemaVersion) +
             ", \"event\": " + json::str(Kind);
    }
    Event &field(const char *Key, uint64_t V) {
      Body += ", \"" + std::string(Key) + "\": " + std::to_string(V);
      return *this;
    }
    Event &field(const char *Key, int64_t V) {
      Body += ", \"" + std::string(Key) + "\": " + std::to_string(V);
      return *this;
    }
    Event &field(const char *Key, std::string_view V) {
      Body += ", \"" + std::string(Key) + "\": " + json::str(V);
      return *this;
    }
    /// \p RawJson must already be a valid JSON value (e.g. a re-rendered
    /// request id, which may be a number, string, or null).
    Event &raw(const char *Key, std::string_view RawJson) {
      Body += ", \"" + std::string(Key) + "\": " + std::string(RawJson);
      return *this;
    }
    std::string finish() && { return std::move(Body) + "}"; }

  private:
    std::string Body;
  };

  /// Appends one complete event line, atomically with respect to other
  /// sessions' events, and flushes. By value so a builder chain (which
  /// yields an lvalue reference) can be passed directly.
  void write(Event E);

  /// Number of events written so far.
  uint64_t eventCount() const;

private:
  std::FILE *Stream;
  bool Owned;
  mutable std::mutex Mu;
  uint64_t Events = 0;
};

} // namespace vault::server

#endif // VAULT_SERVER_SERVERLOG_H
