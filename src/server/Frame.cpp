//===- Frame.cpp ----------------------------------------------------------===//

#include "server/Frame.h"

#include <algorithm>

using namespace vault::server;

/// How much of an oversized line survives into the Overflow frame, for
/// the error message.
static constexpr size_t PrefixBytes = 48;

void FrameReader::feed(std::string_view Bytes) {
  if (Discarding) {
    // Constant-space path: an oversized line's bytes are dropped as
    // they stream in; only its eventual '\n' (and whatever follows it)
    // is kept for next() to close the Overflow frame against.
    size_t Nl = Bytes.find('\n');
    if (Nl == std::string_view::npos) {
      DiscardedRun += Bytes.size();
      return;
    }
    DiscardedRun += Nl;
    Buf.append(Bytes.substr(Nl));
    return;
  }
  Buf.append(Bytes);
}

FrameReader::Frame FrameReader::next() {
  for (;;) {
    if (Discarding) {
      size_t Nl = Buf.find('\n');
      if (Nl == std::string::npos) {
        // Still inside the oversized line; everything buffered is part
        // of it, so drop it all.
        DiscardedRun += Buf.size();
        Buf.clear();
        Scanned = 0;
        return Frame{};
      }
      DiscardedRun += Nl; // Tail of the line that reached Buf unseen.
      Buf.erase(0, Nl + 1);
      Scanned = 0;
      Discarding = false;
      Frame F;
      F.K = Kind::Overflow;
      F.Line = std::move(OverflowPrefix);
      F.Discarded = DiscardedRun;
      ++OverflowFrames;
      DiscardedTotal += DiscardedRun;
      DiscardedRun = 0;
      OverflowPrefix.clear();
      return F;
    }

    size_t Nl = Buf.find('\n', Scanned);
    if (Nl == std::string::npos) {
      Scanned = Buf.size();
      if (Buf.size() > MaxBytes) {
        // The line has already outgrown the limit with no terminator
        // in sight. Remember a prefix for the error, drop the rest,
        // and stay in discard mode until its '\n' shows up.
        OverflowPrefix = Buf.substr(0, PrefixBytes);
        DiscardedRun = Buf.size() - OverflowPrefix.size();
        Buf.clear();
        Scanned = 0;
        Discarding = true;
        continue;
      }
      return Frame{};
    }

    if (Nl > MaxBytes) {
      // Complete but oversized line. The prefix must stop at the
      // line's own terminator — running past it would leak the next
      // request's bytes (and a raw '\n') into the error message.
      Frame F;
      F.K = Kind::Overflow;
      F.Line = Buf.substr(0, std::min(PrefixBytes, Nl));
      F.Discarded = Nl - F.Line.size();
      ++OverflowFrames;
      DiscardedTotal += F.Discarded;
      Buf.erase(0, Nl + 1);
      Scanned = 0;
      return F;
    }

    Frame F;
    F.K = Kind::Ok;
    F.Line = Buf.substr(0, Nl);
    Buf.erase(0, Nl + 1);
    Scanned = 0;
    return F;
  }
}
