//===- ServerLog.cpp ------------------------------------------------------===//

#include "server/ServerLog.h"

using namespace vault;
using namespace vault::server;

std::unique_ptr<ServerLog> ServerLog::open(const std::string &PathOrDash,
                                           std::string *Err) {
  if (PathOrDash == "-")
    return std::make_unique<ServerLog>(stderr, /*Owned=*/false);
  std::FILE *F = std::fopen(PathOrDash.c_str(), "ab");
  if (!F) {
    if (Err)
      *Err = "cannot open log file '" + PathOrDash + "'";
    return nullptr;
  }
  return std::make_unique<ServerLog>(F, /*Owned=*/true);
}

ServerLog::~ServerLog() {
  if (Owned && Stream)
    std::fclose(Stream);
}

void ServerLog::write(Event E) {
  std::string Line = std::move(E).finish();
  Line += '\n';
  std::lock_guard<std::mutex> Lock(Mu);
  // One fwrite per line so concurrent sessions' events interleave at
  // line granularity even through a shared stderr.
  std::fwrite(Line.data(), 1, Line.size(), Stream);
  std::fflush(Stream);
  ++Events;
}

uint64_t ServerLog::eventCount() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Events;
}
