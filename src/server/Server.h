//===- Server.h - vaultd session state and dispatch -------------*- C++ -*-===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The check server behind tools/vaultd.cpp: a long-lived process that
/// keeps the fingerprint-keyed result cache warm so each edit
/// re-checks only the functions it actually dirtied.
///
/// Layering:
///
/// - FrameReader (Frame.h) splits the transport's byte stream into
///   newline-delimited frames.
/// - Workspace owns one session: the in-memory overlay of open buffers
///   plus a borrowed CheckMemoryStore, and turns each request frame
///   into exactly one response line. It soft-fails per request — a
///   malformed frame, bad params, or an exception out of the checker
///   becomes a structured JSON-RPC error response, never a dead
///   daemon.
/// - Admission is the server-wide gate in front of check requests:
///   one check runs at a time (the compiler parallelizes internally
///   via jobs), a bounded number may wait, and beyond that requests
///   are rejected immediately with a "saturated" error. Waiting is
///   also bounded by a per-request timeout.
///
/// The protocol is newline-delimited JSON-RPC 2.0 (a strict subset):
/// requests `{"jsonrpc": "2.0", "id": N, "method": M, "params": {...}}`
/// with methods open/change/close/check/stats/shutdown; responses
/// carry either "result" or "error" {code, message}. A check result
/// embeds the `--diagnostics-format=json` and `--stats-json` renderers'
/// output byte-for-byte (as JSON strings), so a client sees exactly
/// what a one-shot `vaultc` run would have printed.
///
//===----------------------------------------------------------------------===//

#ifndef VAULT_SERVER_SERVER_H
#define VAULT_SERVER_SERVER_H

#include "sema/CheckCache.h"
#include "server/Frame.h"
#include "support/JsonParse.h"

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace vault::server {

/// JSON-RPC error codes the server emits. Standard codes per the spec;
/// -320xx are vaultd's server-defined range.
enum ErrorCode : int {
  ParseError = -32700,     ///< Frame is not a valid JSON document.
  InvalidRequest = -32600, ///< Valid JSON, but not a request object.
  MethodNotFound = -32601,
  InvalidParams = -32602,
  InternalError = -32603, ///< The handler threw; the session survives.
  Saturated = -32000,     ///< Admission queue full; retry later.
  TimedOut = -32001,      ///< Gave up waiting for the check slot.
  FrameTooLarge = -32002, ///< Line exceeded the frame byte limit.
};

/// Server-wide tunables, fixed at startup.
struct Config {
  /// Worker threads per check (the compiler's --jobs); 0 = hardware
  /// concurrency.
  unsigned Jobs = 1;
  /// Non-empty routes the cache to this shared on-disk directory
  /// instead of the process-local memory store. The directory may be
  /// shared with concurrent vaultc runs — see the CheckCache
  /// concurrency contract.
  std::string CacheDir;
  /// Longest accepted request line, and the JSON parser's byte limit.
  size_t MaxFrameBytes = 8u << 20;
  /// Check requests allowed to wait for the check slot before new
  /// ones are rejected outright.
  size_t MaxQueue = 8;
  /// Longest a check request waits for the slot before failing with
  /// TimedOut. The check itself, once started, runs to completion.
  uint64_t RequestTimeoutMs = 30000;
};

/// Bounded single-slot execution gate: at most one body runs at a
/// time, at most MaxQueue callers wait, each for at most Timeout.
class Admission {
public:
  Admission(size_t MaxQueue, uint64_t TimeoutMs)
      : MaxQueue(MaxQueue), TimeoutMs(TimeoutMs) {}

  enum class Outcome { Ran, Saturated, TimedOut };

  /// Runs \p Fn under the gate. Exceptions from Fn propagate after the
  /// slot is released.
  Outcome run(const std::function<void()> &Fn);

private:
  std::mutex Mu;
  std::condition_variable Cv;
  size_t MaxQueue;
  uint64_t TimeoutMs;
  bool Busy = false;
  size_t Waiting = 0;
};

/// One client session: the buffer overlay plus dispatch. Not
/// thread-safe — each connection drives its own Workspace; only the
/// Admission gate and the CheckMemoryStore are shared.
class Workspace {
public:
  /// \p Store is the warm result cache, typically shared by every
  /// session of the daemon; it must outlive the workspace. When
  /// Cfg.CacheDir is non-empty the store is bypassed in favor of the
  /// on-disk cache.
  Workspace(const Config &Cfg, Admission &Gate, CheckMemoryStore &Store)
      : Cfg(Cfg), Gate(Gate), Store(Store) {}

  /// Turns one frame into one response line (no trailing newline;
  /// responses never contain raw newlines). Never throws.
  std::string handleFrame(const FrameReader::Frame &F);

  /// Convenience for tests and the stdio loop: a complete, in-limit
  /// request line.
  std::string handleLine(const std::string &Line);

  /// True once a shutdown request was answered; the transport loop
  /// should stop reading.
  bool shutdownRequested() const { return ShutdownFlag; }

  /// Open buffers, in open order (the order they are fed to the
  /// compiler — the protocol equivalent of vaultc's argument order).
  const std::vector<std::pair<std::string, std::string>> &buffers() const {
    return Buffers;
  }

private:
  std::string dispatch(const json::Value &Req);
  std::string handleOpenChange(const json::Value *Params, const std::string &Id,
                               bool IsChange);
  std::string handleClose(const json::Value *Params, const std::string &Id);
  std::string handleCheck(const json::Value *Params, const std::string &Id);
  std::string handleStats(const std::string &Id);

  std::string okResponse(const std::string &Id, const std::string &ResultBody);
  std::string errResponse(const std::string &Id, int Code,
                          const std::string &Message);

  /// Index of the named buffer in Buffers, or npos.
  size_t findBuffer(const std::string &Name) const;

  Config Cfg;
  Admission &Gate;
  CheckMemoryStore &Store;
  std::vector<std::pair<std::string, std::string>> Buffers;
  bool ShutdownFlag = false;

  // Session counters, surfaced by the stats method.
  uint64_t Requests = 0;
  uint64_t Errors = 0;
  uint64_t Checks = 0;
  uint64_t Rejected = 0;
  uint64_t TimedOutCount = 0;
  /// Snapshot of the last completed check, for stats.
  bool HaveLastCheck = false;
  unsigned LastFlowChecksRun = 0;
  unsigned LastCacheHits = 0;
  unsigned LastFunctionsChecked = 0;
};

} // namespace vault::server

#endif // VAULT_SERVER_SERVER_H
