//===- Server.h - vaultd session state and dispatch -------------*- C++ -*-===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The check server behind tools/vaultd.cpp: a long-lived process that
/// keeps the fingerprint-keyed result cache warm so each edit
/// re-checks only the functions it actually dirtied.
///
/// Layering:
///
/// - FrameReader (Frame.h) splits the transport's byte stream into
///   newline-delimited frames.
/// - Workspace owns one session: the in-memory overlay of open buffers
///   plus a borrowed CheckMemoryStore, and turns each request frame
///   into exactly one response line. It soft-fails per request — a
///   malformed frame, bad params, or an exception out of the checker
///   becomes a structured JSON-RPC error response, never a dead
///   daemon.
/// - Admission is the server-wide gate in front of check requests:
///   one check runs at a time (the compiler parallelizes internally
///   via jobs), a bounded number may wait, and beyond that requests
///   are rejected immediately with a "saturated" error. Waiting is
///   also bounded by a per-request timeout. The gate exposes its
///   current and peak waiter counts so a saturating daemon is
///   diagnosable (through the `health` method) before clients see
///   -32000.
/// - Telemetry (ServerLog + ServerMetrics + Tracer) is strictly
///   additive: with all three sinks null the per-request cost is a
///   handful of branches, and with them live the response bytes are
///   identical — events go to the log file or stderr, aggregates to
///   the `metrics`/`health` methods, spans to the trace file.
///
/// The protocol is newline-delimited JSON-RPC 2.0 (a strict subset):
/// requests `{"jsonrpc": "2.0", "id": N, "method": M, "params": {...}}`
/// with methods open/change/close/check/stats/metrics/health/shutdown;
/// responses carry either "result" or "error" {code, message}. A check
/// result embeds the `--diagnostics-format=json` and `--stats-json`
/// renderers' output byte-for-byte (as JSON strings), so a client sees
/// exactly what a one-shot `vaultc` run would have printed. The
/// `metrics` result embeds the server-wide ServerMetrics registry in
/// the same document shape.
///
//===----------------------------------------------------------------------===//

#ifndef VAULT_SERVER_SERVER_H
#define VAULT_SERVER_SERVER_H

#include "sema/CheckCache.h"
#include "server/Frame.h"
#include "server/ServerLog.h"
#include "server/ServerMetrics.h"
#include "support/JsonParse.h"
#include "support/Trace.h"

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace vault::server {

/// JSON-RPC error codes the server emits. Standard codes per the spec;
/// -320xx are vaultd's server-defined range.
enum ErrorCode : int {
  ParseError = -32700,     ///< Frame is not a valid JSON document.
  InvalidRequest = -32600, ///< Valid JSON, but not a request object.
  MethodNotFound = -32601,
  InvalidParams = -32602,
  InternalError = -32603, ///< The handler threw; the session survives.
  Saturated = -32000,     ///< Admission queue full; retry later.
  TimedOut = -32001,      ///< Gave up waiting for the check slot.
  FrameTooLarge = -32002, ///< Line exceeded the frame byte limit.
};

/// Server-wide tunables, fixed at startup.
struct Config {
  /// Worker threads per check (the compiler's --jobs); 0 = hardware
  /// concurrency.
  unsigned Jobs = 1;
  /// Non-empty routes the cache to this shared on-disk directory
  /// instead of the process-local memory store. The directory may be
  /// shared with concurrent vaultc runs — see the CheckCache
  /// concurrency contract.
  std::string CacheDir;
  /// Longest accepted request line, and the JSON parser's byte limit.
  size_t MaxFrameBytes = 8u << 20;
  /// Check requests allowed to wait for the check slot before new
  /// ones are rejected outright.
  size_t MaxQueue = 8;
  /// Longest a check request waits for the slot before failing with
  /// TimedOut. The check itself, once started, runs to completion.
  uint64_t RequestTimeoutMs = 30000;
};

/// The observability sinks a session reports into; every member is
/// optional and null members cost one branch per instrumentation
/// site. All three sinks are shared daemon-wide (they are internally
/// synchronized); the Workspace only borrows them.
struct Telemetry {
  ServerLog *Log = nullptr;         ///< --log-json: JSONL event stream.
  ServerMetrics *Metrics = nullptr; ///< metrics/health aggregation.
  vault::Tracer *Trc = nullptr;     ///< --trace-json: request spans.
  /// Requests handled in >= this many milliseconds also emit a
  /// slow_request event; UINT64_MAX disables the threshold.
  uint64_t SlowMs = UINT64_MAX;
};

/// Bounded single-slot execution gate: at most one body runs at a
/// time, at most MaxQueue callers wait, each for at most Timeout.
class Admission {
public:
  Admission(size_t MaxQueue, uint64_t TimeoutMs)
      : MaxQueue(MaxQueue), TimeoutMs(TimeoutMs) {}

  enum class Outcome { Ran, Saturated, TimedOut };

  /// Runs \p Fn under the gate. Exceptions from Fn propagate after the
  /// slot is released. When \p QueueWaitUs is non-null it receives the
  /// microseconds spent waiting for the slot — 0 when the gate was
  /// free (or the request bounced without queueing), the full wait on
  /// Ran-after-queueing and TimedOut.
  Outcome run(const std::function<void()> &Fn,
              uint64_t *QueueWaitUs = nullptr);

  /// Requests currently queued for the slot (excludes the one
  /// running).
  size_t currentWaiters() const;
  /// Largest simultaneous waiter count ever observed (monotonic).
  size_t peakWaiters() const;
  /// True while a body holds the slot.
  bool busy() const;
  size_t maxQueue() const { return MaxQueue; }

private:
  mutable std::mutex Mu;
  std::condition_variable Cv;
  size_t MaxQueue;
  uint64_t TimeoutMs;
  bool Busy = false;
  size_t Waiting = 0;
  size_t PeakWaiting = 0;
};

/// One client session: the buffer overlay plus dispatch. Not
/// thread-safe — each connection drives its own Workspace; only the
/// Admission gate, the CheckMemoryStore and the Telemetry sinks are
/// shared.
class Workspace {
public:
  /// \p Store is the warm result cache, typically shared by every
  /// session of the daemon; it must outlive the workspace. When
  /// Cfg.CacheDir is non-empty the store is bypassed in favor of the
  /// on-disk cache.
  Workspace(const Config &Cfg, Admission &Gate, CheckMemoryStore &Store)
      : Cfg(Cfg), Gate(Gate), Store(Store) {}
  ~Workspace();

  /// Attaches the daemon's telemetry sinks. Assigns this session its
  /// id and emits the session-open event; the destructor emits the
  /// matching close event with the session's request totals. Call at
  /// most once, before the first frame.
  void setTelemetry(const Telemetry &T);

  /// Turns one frame into one response line (no trailing newline;
  /// responses never contain raw newlines). Never throws. With
  /// telemetry attached this is also the observation point: one
  /// structured log event, one latency sample, and one request span
  /// per call.
  std::string handleFrame(const FrameReader::Frame &F);

  /// Convenience for tests and the stdio loop: a complete, in-limit
  /// request line.
  std::string handleLine(const std::string &Line);

  /// True once a shutdown request was answered; the transport loop
  /// should stop reading.
  bool shutdownRequested() const { return ShutdownFlag; }

  /// Open buffers, in open order (the order they are fed to the
  /// compiler — the protocol equivalent of vaultc's argument order).
  const std::vector<std::pair<std::string, std::string>> &buffers() const {
    return Buffers;
  }

  /// This session's id (0 until telemetry with a ServerMetrics is
  /// attached).
  uint64_t sessionId() const { return Sid; }

private:
  std::string dispatch(const json::Value &Req);
  std::string handleOpenChange(const json::Value *Params, const std::string &Id,
                               bool IsChange);
  std::string handleClose(const json::Value *Params, const std::string &Id);
  std::string handleCheck(const json::Value *Params, const std::string &Id);
  std::string handleStats(const std::string &Id);
  std::string handleMetrics(const std::string &Id);
  std::string handleHealth(const std::string &Id);

  std::string okResponse(const std::string &Id, const std::string &ResultBody);
  std::string errResponse(const std::string &Id, int Code,
                          const std::string &Message);

  /// Index of the named buffer in Buffers, or npos.
  size_t findBuffer(const std::string &Name) const;

  /// ts_us for log events: the daemon clock when aggregation is on,
  /// else 0 (events are still well-formed, just untimed).
  uint64_t eventTimeUs() const {
    return Tel.Metrics ? Tel.Metrics->nowUs() : 0;
  }

  Config Cfg;
  Admission &Gate;
  CheckMemoryStore &Store;
  Telemetry Tel;
  uint64_t Sid = 0;
  bool TelemetryAttached = false;
  std::vector<std::pair<std::string, std::string>> Buffers;
  bool ShutdownFlag = false;

  /// What the current request turned out to be, captured during
  /// dispatch for the post-response log event / metrics sample.
  /// Valid only within one handleFrame call.
  struct RequestScratch {
    std::string Method = "other";
    std::string IdJson = "null";
    int ErrCode = 0; ///< 0 = success response.
    uint64_t QueueWaitUs = 0;
    bool HaveCheckDeltas = false;
    uint64_t FlowChecksRun = 0;
    uint64_t CacheHits = 0;
    uint64_t CacheMisses = 0;
    uint64_t CacheInvalidated = 0;
    uint64_t FunctionsChecked = 0;
  };
  RequestScratch Req;
  uint64_t CurRid = 0;   ///< Request id of the frame being handled.
  uint64_t LocalRid = 0; ///< Fallback id source without ServerMetrics.

  // Session counters, surfaced by the stats method.
  uint64_t Requests = 0;
  uint64_t Errors = 0;
  uint64_t Checks = 0;
  uint64_t Rejected = 0;
  uint64_t TimedOutCount = 0;
  /// Transport-layer rejections this session (oversized frames and
  /// the bytes they cost).
  uint64_t FramesRejected = 0;
  uint64_t BytesDiscarded = 0;
  /// Session-lifetime sums of the per-check counters; the structured
  /// log's per-request deltas sum to exactly these.
  uint64_t TotalFlowChecksRun = 0;
  uint64_t TotalCacheHits = 0;
  uint64_t TotalCacheMisses = 0;
  uint64_t TotalCacheInvalidated = 0;
  uint64_t TotalFunctionsChecked = 0;
  /// Snapshot of the last completed check, for stats.
  bool HaveLastCheck = false;
  unsigned LastFlowChecksRun = 0;
  unsigned LastCacheHits = 0;
  unsigned LastFunctionsChecked = 0;
};

} // namespace vault::server

#endif // VAULT_SERVER_SERVER_H
