//===- DriverStack.cpp ----------------------------------------------------===//

#include "kernel/DriverStack.h"

using namespace vault::kern;

DeviceObject *Kernel::createDevice(std::string Name) {
  Devices.push_back(std::make_unique<DeviceObject>(std::move(Name), 0));
  return Devices.back().get();
}

void Kernel::attach(DeviceObject *Upper, DeviceObject *LowerDev) {
  Upper->Lower = LowerDev;
  Upper->StackLevel = LowerDev->StackLevel + 1;
}

size_t Kernel::stackDepth(const DeviceObject *Top) const {
  size_t N = 0;
  for (const DeviceObject *D = Top; D; D = D->lower())
    ++N;
  return N;
}

Irp *Kernel::allocateIrp(IrpMajor Major, const DeviceObject *Top,
                         size_t BufferSize) {
  ++S.IrpsAllocated;
  Irps.push_back(std::make_unique<Irp>(NextIrpId++, Major,
                                       stackDepth(Top), BufferSize, O));
  return Irps.back().get();
}

DriverStatus Kernel::dispatchTo(DeviceObject *Dev, Irp *I) {
  ++S.Dispatches;
  I->Owner = Irp::OwnerKind::DriverOwned;
  I->OwnerTag = Dev;
  I->Resolved = Irp::Resolution::None;

  const DispatchFn &Fn = Dev->dispatch(I->major());
  DriverStatus DS;
  if (!Fn) {
    // No handler: a well-behaved driver completes with
    // STATUS_INVALID_DEVICE_REQUEST.
    DS = completeRequest(I, NtStatus::InvalidDeviceRequest);
  } else {
    DS = Fn(*this, *Dev, *I);
  }

  // §4.1: every path must complete, pass down, or pend the IRP. The
  // oracle detects the executed path's failure to do so.
  if (I->Resolved == Irp::Resolution::None)
    O.record(Violation::IrpLeak,
             "dispatch of " + std::string(irpMajorName(I->major())) +
                 " IRP #" + std::to_string(I->id()) + " by '" + Dev->name() +
                 "' neither completed, passed down, nor pended it");
  return DS;
}

NtStatus Kernel::sendRequest(DeviceObject *Top, Irp *I) {
  dispatchTo(Top, I);
  while (!I->isCompleted() && runOneWorkItem())
    ;
  if (!I->isCompleted())
    return NtStatus::Pending;
  return I->Status;
}

DriverStatus Kernel::callDriver(DeviceObject *Below, Irp *I) {
  if (!Below) {
    O.record(Violation::UseAfterFree,
             "IoCallDriver with no lower device for IRP #" +
                 std::to_string(I->id()));
    return completeRequest(I, NtStatus::NoSuchDevice);
  }
  // The caller relinquishes ownership.
  Irp::Resolution &R = I->Resolved;
  R = Irp::Resolution::PassedDown;
  // Copy the relevant parameters into the next stack slot
  // (IoCopyCurrentIrpStackLocationToNext) and advance.
  size_t Slot = I->CurrentSlot;
  if (Slot + 1 < I->Stack.size()) {
    IoStackLocation Saved = I->Stack[Slot + 1];
    I->Stack[Slot + 1] = I->Stack[Slot];
    // Preserve a completion routine the *caller* installed for the
    // next level.
    I->Stack[Slot + 1].Completion = Saved.Completion;
    I->Stack[Slot + 1].CompletionDevice = Saved.CompletionDevice;
    ++I->CurrentSlot;
  }
  DriverStatus DS = dispatchTo(Below, I);
  // After the call, the upper driver no longer owns the IRP; record
  // its own resolution as PassedDown regardless of what the lower
  // driver did.
  I->Resolved = Irp::Resolution::PassedDown;
  return DS;
}

DriverStatus Kernel::completeRequest(Irp *I, NtStatus Status) {
  if (I->Owner == Irp::OwnerKind::Completed || I->Finalized) {
    O.record(Violation::IrpDoubleComplete,
             "IRP #" + std::to_string(I->id()) + " completed twice");
    return DriverStatus::Complete;
  }
  I->Status = Status;
  I->Resolved = Irp::Resolution::Completed;

  // Run completion routines from the current slot upwards.
  while (true) {
    IoStackLocation &Loc = I->Stack[I->CurrentSlot];
    CompletionRoutine R = std::move(Loc.Completion);
    DeviceObject *Dev = Loc.CompletionDevice;
    Loc.Completion = nullptr;
    Loc.CompletionDevice = nullptr;
    if (R && Dev) {
      ++S.CompletionRoutinesRun;
      // The kernel owns the IRP while the routine runs; the routine's
      // driver may reclaim it.
      I->Owner = Irp::OwnerKind::DriverOwned;
      I->OwnerTag = Dev;
      CompletionDisposition D = R(*this, *Dev, *I);
      if (D == CompletionDisposition::MoreProcessingRequired) {
        // Ownership reclaimed by Dev (paper Fig. 7); completion stops.
        I->Resolved = Irp::Resolution::Pended;
        return DriverStatus::Complete;
      }
    }
    if (I->CurrentSlot == 0)
      break;
    --I->CurrentSlot;
  }
  I->Owner = Irp::OwnerKind::Completed;
  I->OwnerTag = nullptr;
  I->Finalized = true;
  ++S.IrpsCompleted;
  return DriverStatus::Complete;
}

DriverStatus Kernel::markIrpPending(Irp *I) {
  I->PendingReturned = true;
  I->Resolved = Irp::Resolution::Pended;
  return DriverStatus::Pending;
}

void Kernel::setCompletionRoutine(Irp *I, DeviceObject *Dev,
                                  CompletionRoutine R) {
  I->checkAccess(Dev, "completion routine");
  IoStackLocation &Loc = I->Stack[I->CurrentSlot];
  Loc.Completion = std::move(R);
  Loc.CompletionDevice = Dev;
}

bool Kernel::waitForEvent(KEvent &E) {
  while (!E.Signaled) {
    if (!runOneWorkItem()) {
      O.record(Violation::EventDeadlock,
               "wait on event '" + E.name() +
                   "' with no runnable work to signal it");
      return false;
    }
  }
  return true;
}

bool Kernel::runOneWorkItem() {
  if (WorkQueue.empty())
    return false;
  auto Fn = std::move(WorkQueue.front());
  WorkQueue.pop_front();
  ++S.WorkItemsRun;
  Fn(*this);
  return true;
}

size_t Kernel::runAllWork() {
  size_t N = 0;
  while (runOneWorkItem())
    ++N;
  return N;
}

unsigned Kernel::reportIrpLeaks() {
  unsigned N = 0;
  for (const auto &I : Irps) {
    if (I->isCompleted() || I->Owner == Irp::OwnerKind::Freed)
      continue;
    ++N;
    O.record(Violation::IrpLeak, "IRP #" + std::to_string(I->id()) +
                                     " still outstanding at teardown");
  }
  return N;
}
