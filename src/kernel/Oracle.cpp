//===- Oracle.cpp ---------------------------------------------------------===//

#include "kernel/Oracle.h"

#include <sstream>

using namespace vault::kern;

const char *vault::kern::violationName(Violation V) {
  switch (V) {
  case Violation::IrpAccessWithoutOwnership:
    return "irp-access-without-ownership";
  case Violation::IrpDoubleComplete:
    return "irp-double-complete";
  case Violation::IrpLeak:
    return "irp-leak";
  case Violation::LockDoubleAcquire:
    return "lock-double-acquire";
  case Violation::LockReleaseNotHeld:
    return "lock-release-not-held";
  case Violation::LockLeak:
    return "lock-leak";
  case Violation::IrqlTooHigh:
    return "irql-too-high";
  case Violation::IrqlInvalidTransition:
    return "irql-invalid-transition";
  case Violation::PagedAccessAtDispatch:
    return "paged-access-at-dispatch";
  case Violation::EventDeadlock:
    return "event-deadlock";
  case Violation::UseAfterFree:
    return "use-after-free";
  case Violation::NumViolations:
    break;
  }
  return "unknown";
}

std::string Oracle::report() const {
  std::ostringstream OS;
  OS << "protocol violations: " << total() << "\n";
  for (const Entry &E : Entries)
    OS << "  [" << violationName(E.V) << "] " << E.Detail << "\n";
  return OS.str();
}
