//===- PagedMemory.h - Paged vs non-paged kernel pool -----------*- C++ -*-===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's §4.4 paged-memory hazard: "a pointer to a block of
/// paged memory can only be accessed if the particular page is known
/// to be resident or if the current interrupt level is such that the
/// virtual memory system can handle a page fault... otherwise the
/// entire operating system deadlocks". This pool simulates exactly
/// that: accesses to non-resident paged allocations at IRQL above
/// APC_LEVEL are recorded as bugchecks; at or below APC_LEVEL the
/// fault is serviced by paging the block back in. Memory pressure
/// (evictAll) makes the bug timing-dependent, reproducing why such
/// errors are "very difficult to reproduce and correct" by testing.
///
//===----------------------------------------------------------------------===//

#ifndef VAULT_KERNEL_PAGEDMEMORY_H
#define VAULT_KERNEL_PAGEDMEMORY_H

#include "kernel/Irql.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace vault::kern {

enum class PoolType : uint8_t { Paged, NonPaged };

class PagedPool {
public:
  using Handle = uint64_t;

  PagedPool(IrqlController &Irqls, Oracle &O) : Irqls(Irqls), O(O) {}

  /// Allocates \p Size bytes from the given pool.
  Handle allocate(size_t Size, PoolType Pool);

  void free(Handle H);

  /// Reads a byte; services or reports the page fault as appropriate.
  /// Returns 0 after a bugcheck.
  uint8_t read(Handle H, size_t Offset);
  void write(Handle H, size_t Offset, uint8_t Value);

  /// Simulated memory pressure: pages out every paged allocation.
  void evictAll();
  /// Pages a block out (no-op for non-paged blocks).
  void evict(Handle H);
  /// Explicitly pages a block in (MmLockPagableDataSection analogue).
  void pageIn(Handle H);

  bool isResident(Handle H) const;
  bool isLive(Handle H) const;
  /// True once any access has bugchecked the simulated machine.
  bool bugchecked() const { return Bugchecked; }

private:
  struct Block {
    std::vector<uint8_t> Data;
    PoolType Pool = PoolType::NonPaged;
    bool Resident = true;
    bool Live = false;
  };
  Block *access(Handle H, const char *What);

  IrqlController &Irqls;
  Oracle &O;
  std::vector<Block> Blocks;
  bool Bugchecked = false;
};

} // namespace vault::kern

#endif // VAULT_KERNEL_PAGEDMEMORY_H
