//===- Irql.cpp -----------------------------------------------------------===//

#include "kernel/Irql.h"

using namespace vault::kern;

const char *vault::kern::irqlName(Irql L) {
  switch (L) {
  case Irql::Passive:
    return "PASSIVE_LEVEL";
  case Irql::Apc:
    return "APC_LEVEL";
  case Irql::Dispatch:
    return "DISPATCH_LEVEL";
  case Irql::Dirql:
    return "DIRQL";
  }
  return "?";
}
