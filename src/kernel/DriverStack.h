//===- DriverStack.h - The simulated kernel and driver stacks ---*- C++ -*-===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The central simulated Windows-2000-style kernel (paper §4): device
/// objects stacked into driver stacks, IRP dispatch with
/// IoCallDriver / IoCompleteRequest / IoMarkIrpPending, completion
/// routines that can reclaim ownership, kernel events, spin locks, the
/// IRQL controller and the paged pool — all deterministic and
/// single-threaded, with a deferred-work queue standing in for DPCs
/// and worker threads.
///
/// Every protocol rule the Vault checker enforces statically is also
/// checked dynamically here through the Oracle, so experiments can
/// compare compile-time and run-time detection.
///
//===----------------------------------------------------------------------===//

#ifndef VAULT_KERNEL_DRIVERSTACK_H
#define VAULT_KERNEL_DRIVERSTACK_H

#include "kernel/Event.h"
#include "kernel/Irp.h"
#include "kernel/Irql.h"
#include "kernel/PagedMemory.h"
#include "kernel/SpinLock.h"

#include <array>
#include <deque>
#include <memory>

namespace vault::kern {

/// What a dispatch routine reports back — the run-time analogue of the
/// paper's abstract DSTATUS<I>: the routine *must* have completed,
/// passed down, or pended the IRP to produce one.
enum class DriverStatus : uint8_t {
  Complete,   ///< IoCompleteRequest was called.
  PassedDown, ///< IoCallDriver was called.
  Pending,    ///< IoMarkIrpPending was called.
};

class DeviceObject;
using DispatchFn =
    std::function<DriverStatus(Kernel &, DeviceObject &, Irp &)>;

class DeviceObject {
public:
  DeviceObject(std::string Name, unsigned StackLevel)
      : Name(std::move(Name)), StackLevel(StackLevel) {}

  const std::string &name() const { return Name; }
  DeviceObject *lower() const { return Lower; }
  unsigned stackLevel() const { return StackLevel; }

  void setDispatch(IrpMajor M, DispatchFn F) {
    Dispatch[static_cast<size_t>(M)] = std::move(F);
  }
  const DispatchFn &dispatch(IrpMajor M) const {
    return Dispatch[static_cast<size_t>(M)];
  }

  /// Per-driver device extension.
  template <typename T, typename... Args> T *createExtension(Args &&...As) {
    auto P = std::make_shared<T>(std::forward<Args>(As)...);
    T *Raw = P.get();
    Extension = std::move(P);
    return Raw;
  }
  template <typename T> T *extension() const {
    return static_cast<T *>(Extension.get());
  }

private:
  friend class Kernel;
  std::string Name;
  unsigned StackLevel;
  DeviceObject *Lower = nullptr;
  std::array<DispatchFn, static_cast<size_t>(IrpMajor::NumMajors)> Dispatch;
  std::shared_ptr<void> Extension;
};

class Kernel {
public:
  Kernel() : Irqls(O), Pool(Irqls, O) {}

  Oracle &oracle() { return O; }
  IrqlController &irql() { return Irqls; }
  PagedPool &pool() { return Pool; }

  //===--------------------------------------------------------------------===//
  // Device and stack management.
  //===--------------------------------------------------------------------===//

  /// Creates a standalone device object.
  DeviceObject *createDevice(std::string Name);

  /// Attaches \p Upper on top of \p LowerDev (IoAttachDeviceToDeviceStack).
  void attach(DeviceObject *Upper, DeviceObject *LowerDev);

  /// Number of devices below \p Top, plus one (IRP stack size needed).
  size_t stackDepth(const DeviceObject *Top) const;

  //===--------------------------------------------------------------------===//
  // IRP lifecycle.
  //===--------------------------------------------------------------------===//

  Irp *allocateIrp(IrpMajor Major, const DeviceObject *Top,
                   size_t BufferSize = 0);

  /// Sends \p I to the top of the stack and runs deferred work until
  /// the IRP completes or the machine is idle. Returns the final
  /// status (Pending if the IRP is still outstanding).
  NtStatus sendRequest(DeviceObject *Top, Irp *I);

  /// IoCallDriver: transfers ownership of \p I to \p Below and invokes
  /// its dispatch routine.
  DriverStatus callDriver(DeviceObject *Below, Irp *I);

  /// IoCompleteRequest: completes \p I with \p Status, running the
  /// attached completion routines bottom-up; a routine returning
  /// MoreProcessingRequired reclaims ownership for its driver.
  DriverStatus completeRequest(Irp *I, NtStatus Status);

  /// IoMarkIrpPending: the driver keeps ownership and will complete
  /// the IRP later from a work item.
  DriverStatus markIrpPending(Irp *I);

  /// IoSetCompletionRoutine on the *current* driver's behalf.
  void setCompletionRoutine(Irp *I, DeviceObject *Dev, CompletionRoutine R);

  //===--------------------------------------------------------------------===//
  // Events and deferred work (DPC / worker-thread stand-in).
  //===--------------------------------------------------------------------===//

  void initializeEvent(KEvent &E) { E.Signaled = false; }
  void setEvent(KEvent &E) { E.Signaled = true; }
  /// Drains work until \p E is signaled; records EventDeadlock and
  /// returns false if the queue runs dry first.
  bool waitForEvent(KEvent &E);

  void queueWorkItem(std::function<void(Kernel &)> Fn) {
    WorkQueue.push_back(std::move(Fn));
  }
  bool runOneWorkItem();
  size_t runAllWork();
  size_t pendingWork() const { return WorkQueue.size(); }

  //===--------------------------------------------------------------------===//
  // Spin locks (forwarders that keep call sites uniform).
  //===--------------------------------------------------------------------===//

  Irql acquireSpinLock(SpinLock &L) { return L.acquire(Irqls, O); }
  void releaseSpinLock(SpinLock &L, Irql Old) { L.release(Irqls, O, Old); }

  //===--------------------------------------------------------------------===//
  // Statistics and teardown.
  //===--------------------------------------------------------------------===//

  struct Stats {
    uint64_t IrpsAllocated = 0;
    uint64_t IrpsCompleted = 0;
    uint64_t Dispatches = 0;
    uint64_t CompletionRoutinesRun = 0;
    uint64_t WorkItemsRun = 0;
  };
  const Stats &stats() const { return S; }

  /// Records an IrpLeak violation for every live, un-completed IRP.
  unsigned reportIrpLeaks();

private:
  /// Invokes a device's dispatch routine with ownership transfer and
  /// resolution checking.
  DriverStatus dispatchTo(DeviceObject *Dev, Irp *I);

  Oracle O;
  IrqlController Irqls;
  PagedPool Pool;
  std::vector<std::unique_ptr<DeviceObject>> Devices;
  std::vector<std::unique_ptr<Irp>> Irps;
  std::deque<std::function<void(Kernel &)>> WorkQueue;
  Stats S;
  uint64_t NextIrpId = 1;
};

} // namespace vault::kern

#endif // VAULT_KERNEL_DRIVERSTACK_H
