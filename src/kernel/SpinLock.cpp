//===- SpinLock.cpp -------------------------------------------------------===//

#include "kernel/SpinLock.h"

// SpinLock is header-only; this TU anchors the object file.
