//===- PagedMemory.cpp ----------------------------------------------------===//

#include "kernel/PagedMemory.h"

using namespace vault::kern;

PagedPool::Handle PagedPool::allocate(size_t Size, PoolType Pool) {
  Block B;
  B.Data.assign(Size, 0);
  B.Pool = Pool;
  B.Resident = true;
  B.Live = true;
  Blocks.push_back(std::move(B));
  return Blocks.size();
}

PagedPool::Block *PagedPool::access(Handle H, const char *What) {
  if (H < 1 || H > Blocks.size() || !Blocks[H - 1].Live) {
    O.record(Violation::UseAfterFree,
             std::string(What) + " of dead pool block #" + std::to_string(H));
    return nullptr;
  }
  Block &B = Blocks[H - 1];
  if (!B.Resident) {
    // Page fault. Above APC_LEVEL the VM system cannot run: bugcheck
    // IRQL_NOT_LESS_OR_EQUAL.
    if (Irqls.current() > Irql::Apc) {
      O.record(Violation::PagedAccessAtDispatch,
               std::string(What) + " of non-resident paged block #" +
                   std::to_string(H) + " at " + irqlName(Irqls.current()));
      Bugchecked = true;
      return nullptr;
    }
    B.Resident = true; // Fault serviced.
  }
  return &B;
}

void PagedPool::free(Handle H) {
  if (H < 1 || H > Blocks.size() || !Blocks[H - 1].Live) {
    O.record(Violation::UseAfterFree,
             "free of dead pool block #" + std::to_string(H));
    return;
  }
  Blocks[H - 1].Live = false;
  Blocks[H - 1].Data.clear();
}

uint8_t PagedPool::read(Handle H, size_t Offset) {
  Block *B = access(H, "read");
  if (!B || Offset >= B->Data.size())
    return 0;
  return B->Data[Offset];
}

void PagedPool::write(Handle H, size_t Offset, uint8_t Value) {
  Block *B = access(H, "write");
  if (!B || Offset >= B->Data.size())
    return;
  B->Data[Offset] = Value;
}

void PagedPool::evictAll() {
  for (Block &B : Blocks)
    if (B.Live && B.Pool == PoolType::Paged)
      B.Resident = false;
}

void PagedPool::evict(Handle H) {
  if (H >= 1 && H <= Blocks.size() && Blocks[H - 1].Live &&
      Blocks[H - 1].Pool == PoolType::Paged)
    Blocks[H - 1].Resident = false;
}

void PagedPool::pageIn(Handle H) {
  if (H >= 1 && H <= Blocks.size() && Blocks[H - 1].Live)
    Blocks[H - 1].Resident = true;
}

bool PagedPool::isResident(Handle H) const {
  return H >= 1 && H <= Blocks.size() && Blocks[H - 1].Live &&
         Blocks[H - 1].Resident;
}

bool PagedPool::isLive(Handle H) const {
  return H >= 1 && H <= Blocks.size() && Blocks[H - 1].Live;
}
