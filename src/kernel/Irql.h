//===- Irql.h - Interrupt request levels ------------------------*- C++ -*-===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulated processor interrupt request level (paper §4.4):
///
///   stateset IRQ_LEVEL = [ PASSIVE_LEVEL < APC_LEVEL
///                          < DISPATCH_LEVEL < DIRQL ];
///
/// Raising/lowering follows the Windows rules; the oracle records
/// invalid transitions and calls made above a function's maximum
/// level.
///
//===----------------------------------------------------------------------===//

#ifndef VAULT_KERNEL_IRQL_H
#define VAULT_KERNEL_IRQL_H

#include "kernel/Oracle.h"

namespace vault::kern {

enum class Irql : uint8_t {
  Passive = 0,
  Apc = 1,
  Dispatch = 2,
  Dirql = 3,
};

const char *irqlName(Irql L);

/// The (single simulated CPU's) current interrupt level.
class IrqlController {
public:
  explicit IrqlController(Oracle &O) : O(O) {}

  Irql current() const { return Current; }

  /// KeRaiseIrql: must not lower. Returns the previous level.
  Irql raise(Irql To) {
    Irql Old = Current;
    if (To < Current)
      O.record(Violation::IrqlInvalidTransition,
               std::string("KeRaiseIrql from ") + irqlName(Current) + " to " +
                   irqlName(To));
    else
      Current = To;
    return Old;
  }

  /// KeLowerIrql: must not raise.
  void lower(Irql To) {
    if (To > Current) {
      O.record(Violation::IrqlInvalidTransition,
               std::string("KeLowerIrql from ") + irqlName(Current) + " to " +
                   irqlName(To));
      return;
    }
    Current = To;
  }

  /// Records a violation if the current level exceeds \p Max (the
  /// dynamic analogue of the paper's `[IRQL @ (level <= Max)]`
  /// precondition).
  bool require(Irql Max, const char *Caller) {
    if (Current <= Max)
      return true;
    O.record(Violation::IrqlTooHigh,
             std::string(Caller) + " called at " + irqlName(Current) +
                 " (max " + irqlName(Max) + ")");
    return false;
  }

private:
  Oracle &O;
  Irql Current = Irql::Passive;
};

} // namespace vault::kern

#endif // VAULT_KERNEL_IRQL_H
