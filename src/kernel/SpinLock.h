//===- SpinLock.h - Kernel spin locks ---------------------------*- C++ -*-===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// KSPIN_LOCK (paper §4.2): acquiring raises IRQL to DISPATCH_LEVEL
/// and returns the previous level; releasing restores it. On the
/// single simulated CPU, acquiring a lock that is already held is an
/// immediate deadlock — exactly the error class Vault rules out
/// because "a key cannot appear in the held-key set multiple times".
///
//===----------------------------------------------------------------------===//

#ifndef VAULT_KERNEL_SPINLOCK_H
#define VAULT_KERNEL_SPINLOCK_H

#include "kernel/Irql.h"

#include <string>

namespace vault::kern {

class SpinLock {
public:
  explicit SpinLock(std::string Name = "lock") : Name(std::move(Name)) {}

  /// KeAcquireSpinLock: raises IRQL to DISPATCH_LEVEL, returns the old
  /// level. Records a deadlock if the lock is already held.
  Irql acquire(IrqlController &Irqls, Oracle &O) {
    if (Held) {
      O.record(Violation::LockDoubleAcquire,
               "spin lock '" + Name + "' acquired while already held");
      return Irqls.current();
    }
    Irql Old = Irqls.raise(Irql::Dispatch);
    Held = true;
    Saved = Old;
    return Old;
  }

  /// KeReleaseSpinLock: restores the IRQL captured at acquire.
  void release(IrqlController &Irqls, Oracle &O, Irql OldLevel) {
    if (!Held) {
      O.record(Violation::LockReleaseNotHeld,
               "spin lock '" + Name + "' released while not held");
      return;
    }
    Held = false;
    Irqls.lower(OldLevel);
  }

  /// Convenience overload restoring the level saved at acquire.
  void release(IrqlController &Irqls, Oracle &O) {
    release(Irqls, O, Saved);
  }

  bool isHeld() const { return Held; }
  const std::string &name() const { return Name; }

private:
  std::string Name;
  bool Held = false;
  Irql Saved = Irql::Passive;
};

} // namespace vault::kern

#endif // VAULT_KERNEL_SPINLOCK_H
