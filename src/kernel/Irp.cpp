//===- Irp.cpp ------------------------------------------------------------===//

#include "kernel/Irp.h"

using namespace vault::kern;

const char *vault::kern::irpMajorName(IrpMajor M) {
  switch (M) {
  case IrpMajor::Create:
    return "IRP_MJ_CREATE";
  case IrpMajor::Close:
    return "IRP_MJ_CLOSE";
  case IrpMajor::Read:
    return "IRP_MJ_READ";
  case IrpMajor::Write:
    return "IRP_MJ_WRITE";
  case IrpMajor::DeviceControl:
    return "IRP_MJ_DEVICE_CONTROL";
  case IrpMajor::Pnp:
    return "IRP_MJ_PNP";
  case IrpMajor::Power:
    return "IRP_MJ_POWER";
  case IrpMajor::Cleanup:
    return "IRP_MJ_CLEANUP";
  case IrpMajor::NumMajors:
    break;
  }
  return "?";
}

const char *vault::kern::ntStatusName(NtStatus S) {
  switch (S) {
  case NtStatus::Success:
    return "STATUS_SUCCESS";
  case NtStatus::Pending:
    return "STATUS_PENDING";
  case NtStatus::EndOfFile:
    return "STATUS_END_OF_FILE";
  case NtStatus::InvalidParameter:
    return "STATUS_INVALID_PARAMETER";
  case NtStatus::DeviceNotReady:
    return "STATUS_DEVICE_NOT_READY";
  case NtStatus::InvalidDeviceRequest:
    return "STATUS_INVALID_DEVICE_REQUEST";
  case NtStatus::Unsuccessful:
    return "STATUS_UNSUCCESSFUL";
  case NtStatus::NoSuchDevice:
    return "STATUS_NO_SUCH_DEVICE";
  }
  return "?";
}
