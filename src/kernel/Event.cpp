//===- Event.cpp ----------------------------------------------------------===//

#include "kernel/Event.h"

// KEvent is header-only; this TU anchors the object file.
