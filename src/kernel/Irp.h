//===- Irp.h - I/O request packets ------------------------------*- C++ -*-===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// I/O Request Packets (paper §4.1): the asynchronous unit of work
/// between the simulated kernel and its drivers. The Windows 2000
/// documentation describes an *ownership* model — an IRP belongs to
/// the kernel until a service routine is invoked; the driver must then
/// complete it, pass it down the stack, or mark it pending. This class
/// tracks that ownership dynamically so the oracle can flag accesses
/// without ownership, double completion, and IRPs that leak.
///
//===----------------------------------------------------------------------===//

#ifndef VAULT_KERNEL_IRP_H
#define VAULT_KERNEL_IRP_H

#include "kernel/Oracle.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace vault::kern {

class Kernel;
class DeviceObject;
class Irp;

enum class IrpMajor : uint8_t {
  Create,
  Close,
  Read,
  Write,
  DeviceControl,
  Pnp,
  Power,
  Cleanup,
  NumMajors
};

const char *irpMajorName(IrpMajor M);

enum class PnpMinor : uint8_t {
  None,
  StartDevice,
  QueryRemove,
  RemoveDevice,
};

enum class NtStatus : int32_t {
  Success = 0,
  Pending = 0x103,
  EndOfFile = -1,
  InvalidParameter = -2,
  DeviceNotReady = -3,
  InvalidDeviceRequest = -4,
  Unsuccessful = -5,
  NoSuchDevice = -6,
};

const char *ntStatusName(NtStatus S);

/// What a completion routine tells the kernel (paper §4.3's
/// COMPLETION_RESULT): continue completing up the stack, or stop —
/// the driver has reclaimed ownership.
enum class CompletionDisposition : uint8_t {
  Continue,
  MoreProcessingRequired,
};

using CompletionRoutine =
    std::function<CompletionDisposition(Kernel &, DeviceObject &, Irp &)>;

/// Per-driver parameter area of an IRP (one slot per stack level).
struct IoStackLocation {
  IrpMajor Major = IrpMajor::Read;
  PnpMinor Minor = PnpMinor::None;
  uint64_t Offset = 0;
  uint32_t Length = 0;
  uint32_t ControlCode = 0;
  DeviceObject *CompletionDevice = nullptr;
  CompletionRoutine Completion;
};

class Irp {
public:
  enum class OwnerKind : uint8_t { KernelOwned, DriverOwned, Completed, Freed };
  /// How the current dispatch resolved the IRP (§4.1: completed,
  /// passed on, or pended — anything else is a leak).
  enum class Resolution : uint8_t { None, Completed, PassedDown, Pended };

  Irp(uint64_t Id, IrpMajor Major, size_t StackSlots, size_t BufferSize,
      Oracle &O)
      : Id(Id), Major(Major), O(O) {
    Stack.resize(StackSlots ? StackSlots : 1);
    for (IoStackLocation &L : Stack)
      L.Major = Major;
    Buffer.assign(BufferSize, 0);
  }

  uint64_t id() const { return Id; }
  IrpMajor major() const { return Major; }

  NtStatus Status = NtStatus::Success;
  uint64_t Information = 0;
  bool PendingReturned = false;

  /// The system buffer, accessed only with ownership.
  std::vector<uint8_t> &buffer(const void *Owner) {
    checkAccess(Owner, "buffer");
    return Buffer;
  }
  size_t bufferSize() const { return Buffer.size(); }

  IoStackLocation &currentLocation(const void *Owner) {
    checkAccess(Owner, "stack location");
    return Stack[CurrentSlot];
  }
  /// The next-lower driver's stack location (IoGetNextIrpStackLocation).
  IoStackLocation &nextLocation(const void *Owner) {
    checkAccess(Owner, "next stack location");
    size_t Next = CurrentSlot + 1 < Stack.size() ? CurrentSlot + 1
                                                 : Stack.size() - 1;
    return Stack[Next];
  }
  size_t stackDepth() const { return Stack.size(); }
  size_t currentSlot() const { return CurrentSlot; }

  OwnerKind owner() const { return Owner; }
  const void *ownerTag() const { return OwnerTag; }
  Resolution resolution() const { return Resolved; }
  bool isCompleted() const { return Owner == OwnerKind::Completed; }

  /// Records an oracle violation if \p Accessor does not own the IRP.
  void checkAccess(const void *Accessor, const char *What) {
    if (Owner == OwnerKind::DriverOwned && OwnerTag == Accessor)
      return;
    // The kernel (accessor == nullptr) owns fresh and completed IRPs.
    if ((Owner == OwnerKind::KernelOwned || Owner == OwnerKind::Completed) &&
        Accessor == nullptr)
      return;
    O.record(Violation::IrpAccessWithoutOwnership,
             std::string("access to ") + What + " of IRP #" +
                 std::to_string(Id) + " without ownership");
  }

private:
  friend class Kernel;

  uint64_t Id;
  IrpMajor Major;
  Oracle &O;
  std::vector<IoStackLocation> Stack;
  size_t CurrentSlot = 0;
  std::vector<uint8_t> Buffer;
  OwnerKind Owner = OwnerKind::KernelOwned;
  const void *OwnerTag = nullptr;
  Resolution Resolved = Resolution::None;
  /// True once a completion walk reached the top of the stack (not
  /// reset by later dispatches — used to detect double completion
  /// even when a buggy driver forwards a completed IRP).
  bool Finalized = false;
};

} // namespace vault::kern

#endif // VAULT_KERNEL_IRP_H
