//===- Oracle.h - Dynamic protocol-violation oracle -------------*- C++ -*-===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Records run-time violations of the kernel/driver protocols that the
/// Vault checker enforces statically (§4). This is the stand-in for
/// the paper's "testing" baseline: every rule the type system proves
/// is also checked dynamically here, so experiments can compare what
/// static checking catches at compile time against what a test
/// workload happens to trigger at run time.
///
//===----------------------------------------------------------------------===//

#ifndef VAULT_KERNEL_ORACLE_H
#define VAULT_KERNEL_ORACLE_H

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace vault::kern {

enum class Violation : uint8_t {
  IrpAccessWithoutOwnership, ///< Driver touched an IRP it does not own.
  IrpDoubleComplete,         ///< IoCompleteRequest on a completed IRP.
  IrpLeak,                   ///< IRP neither completed, passed, nor pended.
  LockDoubleAcquire,         ///< Spin lock acquired while held (deadlock).
  LockReleaseNotHeld,        ///< Spin lock released while not held.
  LockLeak,                  ///< Spin lock still held at teardown.
  IrqlTooHigh,               ///< Call at an IRQL above its maximum.
  IrqlInvalidTransition,     ///< Lowering above current level, etc.
  PagedAccessAtDispatch,     ///< Page fault at >= DISPATCH_LEVEL: bugcheck.
  EventDeadlock,             ///< Wait with no runnable work to signal it.
  UseAfterFree,              ///< Access to a freed kernel object.
  NumViolations
};

const char *violationName(Violation V);

/// Collects violations; cleared per experiment run.
class Oracle {
public:
  void record(Violation V, std::string Detail) {
    ++Counts[static_cast<size_t>(V)];
    Entries.push_back({V, std::move(Detail)});
  }

  unsigned count(Violation V) const {
    return Counts[static_cast<size_t>(V)];
  }
  unsigned total() const {
    unsigned N = 0;
    for (unsigned C : Counts)
      N += C;
    return N;
  }
  bool clean() const { return total() == 0; }

  struct Entry {
    Violation V;
    std::string Detail;
  };
  const std::vector<Entry> &entries() const { return Entries; }

  void clear() {
    Counts.fill(0);
    Entries.clear();
  }

  /// Human-readable report.
  std::string report() const;

private:
  std::array<unsigned, static_cast<size_t>(Violation::NumViolations)> Counts{};
  std::vector<Entry> Entries;
};

} // namespace vault::kern

#endif // VAULT_KERNEL_ORACLE_H
