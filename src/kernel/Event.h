//===- Event.h - Kernel events ----------------------------------*- C++ -*-===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// KEVENT (paper §4.2): "an event allows one thread to block until
/// another thread takes some action". In the deterministic
/// single-threaded simulation, waiting drains the kernel's work queue
/// until the event is signaled; an empty queue with the event still
/// unsignaled is the dynamic analogue of a deadlock.
///
//===----------------------------------------------------------------------===//

#ifndef VAULT_KERNEL_EVENT_H
#define VAULT_KERNEL_EVENT_H

#include <string>

namespace vault::kern {

class Kernel;

class KEvent {
public:
  explicit KEvent(std::string Name = "event") : Name(std::move(Name)) {}

  bool isSignaled() const { return Signaled; }
  const std::string &name() const { return Name; }

private:
  friend class Kernel;
  std::string Name;
  bool Signaled = false;
};

} // namespace vault::kern

#endif // VAULT_KERNEL_EVENT_H
