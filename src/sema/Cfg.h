//===- Cfg.h - Control-flow graphs ------------------------------*- C++ -*-===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Control-flow graphs over function bodies. The paper's checker
/// "forms a control flow graph for each function and computes the
/// held-key set before and after each node"; our flow checker walks
/// the structured AST directly (equivalent for Vault's goto-free
/// statement language), and this module provides the explicit graph
/// for analyses, statistics and the dataflow benchmarks.
///
//===----------------------------------------------------------------------===//

#ifndef VAULT_SEMA_CFG_H
#define VAULT_SEMA_CFG_H

#include "ast/Ast.h"

#include <vector>

namespace vault {

struct CfgNode {
  unsigned Id = 0;
  /// Straight-line statements and the controlling expressions.
  std::vector<const Stmt *> Stmts;
  const Expr *Terminator = nullptr; ///< Branch condition, if any.
  std::vector<unsigned> Succs;
};

/// A per-function control-flow graph with unique entry and exit nodes.
class Cfg {
public:
  /// Builds the CFG of \p F's body. \p F must have a body.
  static Cfg build(const FuncDecl *F);

  const std::vector<CfgNode> &nodes() const { return Nodes; }
  unsigned entry() const { return Entry; }
  unsigned exit() const { return Exit; }

  size_t numNodes() const { return Nodes.size(); }
  size_t numEdges() const;

  /// Node ids unreachable from the entry (dead code).
  std::vector<unsigned> unreachableNodes() const;

  /// Renders a Graphviz dot description (block ids and edge structure).
  std::string dot() const;

private:
  unsigned newNode();
  void addEdge(unsigned From, unsigned To);
  /// Lowers \p S appending to block \p Cur; returns the block open
  /// after S (or ~0u if control never falls through).
  unsigned lowerStmt(const Stmt *S, unsigned Cur);

  static constexpr unsigned None = ~0u;
  std::vector<CfgNode> Nodes;
  unsigned Entry = 0;
  unsigned Exit = 0;
};

} // namespace vault

#endif // VAULT_SEMA_CFG_H
