//===- Symbols.h - Global and lexical symbol tables -------------*- C++ -*-===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Name resolution structures: the flat global namespace (types,
/// variants, constructors, functions, interfaces, modules, statesets,
/// global keys) and the lexical scopes used while elaborating types
/// and checking function bodies (value names, key names, state
/// variables, and type-level parameter bindings).
///
//===----------------------------------------------------------------------===//

#ifndef VAULT_SEMA_SYMBOLS_H
#define VAULT_SEMA_SYMBOLS_H

#include "ast/Ast.h"
#include "types/Substitution.h"
#include "types/Type.h"
#include "types/TypeContext.h"

#include <map>
#include <string>

namespace vault {

/// The program-wide namespace. Interface members are registered flat
/// (usable unqualified); `extern module M : I;` additionally lets
/// `M.member` resolve to the same entities.
struct GlobalSymbols {
  /// Type names: TypeAliasDecl, StructDecl, or VariantDecl.
  std::map<std::string, const Decl *> TypeNames;
  /// Constructor name -> owning variant (constructors are global).
  std::map<std::string, const VariantDecl *> Ctors;
  /// Function name -> elaborated signature.
  std::map<std::string, FuncSig *> Functions;
  std::map<std::string, const InterfaceDecl *> Interfaces;
  /// Module name -> interface it implements.
  std::map<std::string, const InterfaceDecl *> Modules;
  /// Statically declared keys (`key IRQL @ IRQ_LEVEL;`).
  std::map<std::string, KeySym> GlobalKeys;

  const Decl *findType(const std::string &Name) const {
    auto It = TypeNames.find(Name);
    return It != TypeNames.end() ? It->second : nullptr;
  }
  const VariantDecl *findCtor(const std::string &Name) const {
    auto It = Ctors.find(Name);
    return It != Ctors.end() ? It->second : nullptr;
  }
  FuncSig *findFunction(const std::string &Name) const {
    auto It = Functions.find(Name);
    return It != Functions.end() ? It->second : nullptr;
  }
  KeySym findGlobalKey(const std::string &Name) const {
    auto It = GlobalKeys.find(Name);
    return It != GlobalKeys.end() ? It->second : InvalidKey;
  }
};

/// A lexical scope used during elaboration and flow checking. Chains
/// to a parent; nested functions chain to their enclosing function's
/// scope (the paper binds key names with "the same scope as a program
/// variable bound at that point").
class ElabScope {
public:
  explicit ElabScope(ElabScope *Parent = nullptr) : Parent(Parent) {}

  // -- Type-level parameter bindings (`type T` / `key K` / `state S`
  //    parameters of generic declarations, bound to concrete args). --
  void bindGenArg(const std::string &Name, GenArg A) { GenArgs[Name] = A; }
  const GenArg *findGenArg(const std::string &Name) const {
    auto It = GenArgs.find(Name);
    if (It != GenArgs.end())
      return &It->second;
    return Parent ? Parent->findGenArg(Name) : nullptr;
  }

  // -- Value-level key names (from `tracked(K)` binders). --
  void bindKey(const std::string &Name, KeySym K) { Keys[Name] = K; }
  KeySym findKey(const std::string &Name) const {
    if (const GenArg *A = findGenArg(Name); A && A->K == Kind::Key)
      return A->Key;
    auto It = Keys.find(Name);
    if (It != Keys.end())
      return It->second;
    return Parent ? Parent->findKey(Name) : InvalidKey;
  }
  /// Rebinds a key name in the innermost scope where it is bound, or
  /// binds locally. Used when a tracked variable is re-declared.
  void rebindKey(const std::string &Name, KeySym K) { Keys[Name] = K; }

  // -- State variables of the signature being elaborated (stored as
  //    the full Var StateRef, carrying the bound). --
  void bindStateVar(const std::string &Name, StateRef Var) {
    StateVars[Name] = std::move(Var);
  }
  const StateRef *findStateVar(const std::string &Name) const {
    auto It = StateVars.find(Name);
    if (It != StateVars.end())
      return &It->second;
    return Parent ? Parent->findStateVar(Name) : nullptr;
  }

  // -- Value names (variables, parameters, nested functions). --
  struct ValueInfo {
    /// Identity used as the key into FlowState::Vars: the VarDecl, the
    /// FuncDecl::Param, or the pattern binder's storage.
    const void *Id = nullptr;
    /// Declaring node when one exists (VarDecl / FuncDecl).
    const Decl *D = nullptr;
    /// Non-null when the name denotes a function value.
    const FuncSig *Func = nullptr;
    /// The type as declared; the flow-sensitive current type lives in
    /// FlowState::Vars.
    const Type *DeclaredType = nullptr;
    SourceLoc Loc;
  };
  void bindValue(const std::string &Name, ValueInfo V) { Values[Name] = V; }
  const ValueInfo *findValue(const std::string &Name) const {
    auto It = Values.find(Name);
    if (It != Values.end())
      return &It->second;
    return Parent ? Parent->findValue(Name) : nullptr;
  }
  /// Lookup restricted to this scope (no parent chain); used to detect
  /// redefinitions.
  bool definesValueLocally(const std::string &Name) const {
    return Values.count(Name) != 0;
  }

  ElabScope *parent() const { return Parent; }

private:
  ElabScope *Parent;
  std::map<std::string, GenArg> GenArgs;
  std::map<std::string, KeySym> Keys;
  std::map<std::string, StateRef> StateVars;
  std::map<std::string, ValueInfo> Values;
};

} // namespace vault

#endif // VAULT_SEMA_SYMBOLS_H
