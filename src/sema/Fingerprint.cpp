//===- Fingerprint.cpp ----------------------------------------------------===//

#include "sema/Fingerprint.h"

#include "lexer/Lexer.h"
#include "support/Diagnostics.h"

#include <algorithm>

using namespace vault;

namespace {

/// One top-level declaration's token range within a buffer, delimited
/// by re-lexing: a chunk ends at a ';' or '}' at bracket depth zero.
struct Chunk {
  size_t FirstTok = 0, EndTok = 0; ///< Token index range (end exclusive).
  uint32_t ByteBegin = 0;          ///< Offset of the first token.
  uint32_t ByteEnd = 0;            ///< Next chunk's first token / buffer end.
};

struct BufferChunks {
  std::vector<Token> Tokens; ///< Without the trailing Eof.
  std::vector<Chunk> Chunks;
};

BufferChunks chunkBuffer(const SourceManager &SM, uint32_t BufferId) {
  BufferChunks Out;
  // Re-lex with a throwaway diagnostic engine: any lex errors were
  // already reported when the buffer was parsed.
  DiagnosticEngine Scratch(SM);
  Lexer L(SM, BufferId, Scratch);
  Out.Tokens = L.lexAll();
  Out.Tokens.pop_back(); // Drop Eof.

  size_t ChunkStart = 0;
  int Depth = 0;
  for (size_t I = 0; I < Out.Tokens.size(); ++I) {
    switch (Out.Tokens[I].Kind) {
    case TokKind::LParen:
    case TokKind::LBrace:
    case TokKind::LBracket:
      ++Depth;
      break;
    case TokKind::RParen:
    case TokKind::RBrace:
    case TokKind::RBracket:
      Depth = std::max(0, Depth - 1);
      break;
    default:
      break;
    }
    bool Boundary = Depth == 0 && (Out.Tokens[I].is(TokKind::Semi) ||
                                   Out.Tokens[I].is(TokKind::RBrace));
    if (Boundary) {
      Out.Chunks.push_back(Chunk{ChunkStart, I + 1,
                                 Out.Tokens[ChunkStart].Loc.Offset, 0});
      ChunkStart = I + 1;
    }
  }
  if (ChunkStart < Out.Tokens.size())
    Out.Chunks.push_back(Chunk{ChunkStart, Out.Tokens.size(),
                               Out.Tokens[ChunkStart].Loc.Offset, 0});
  uint32_t BufEnd = static_cast<uint32_t>(SM.bufferText(BufferId).size());
  for (size_t I = 0; I < Out.Chunks.size(); ++I)
    Out.Chunks[I].ByteEnd =
        I + 1 < Out.Chunks.size() ? Out.Chunks[I + 1].ByteBegin : BufEnd;
  return Out;
}

/// Per-declaration fingerprint data for the dependency closure.
struct DeclNode {
  const Decl *D = nullptr;
  uint32_t BufferId = 0;
  const Chunk *C = nullptr;
  /// Contribution when some function depends on this declaration: for
  /// functions, the signature tokens plus the elaborated signature
  /// (bodies excluded — callers see only the interface); for
  /// everything else, the full token stream.
  Fingerprint Contrib;
  /// Declarations referenced from the "interface" token range (for
  /// functions: the tokens before the body), for closure traversal.
  std::vector<const DeclNode *> InterfaceDeps;
  /// Declarations referenced from anywhere in the chunk (function
  /// bodies included) — the dependency roots of this declaration.
  std::vector<const DeclNode *> FullDeps;
};

} // namespace

bool FingerprintMap::build(const SourceManager &SM, const Program &Prog,
                           const std::map<const FuncDecl *, FuncSig *> &Sigs,
                           const KeyTable &KeyTab, const GlobalContext &Ctx) {
  Keys.clear();

  // Re-lex and chunk every buffer that holds top-level declarations.
  std::vector<uint32_t> BufferIds;
  for (const Decl *D : Prog.Decls)
    if (D->loc().isValid() &&
        !std::count(BufferIds.begin(), BufferIds.end(), D->loc().BufferId))
      BufferIds.push_back(D->loc().BufferId);
  std::map<uint32_t, BufferChunks> ByBuffer;
  for (uint32_t Id : BufferIds)
    ByBuffer.emplace(Id, chunkBuffer(SM, Id));

  // Associate each top-level declaration with the chunk containing its
  // location. Chunking has failed (and the cache must stay off) if a
  // declaration matches no chunk or two declarations share one.
  std::vector<DeclNode> Nodes(Prog.Decls.size());
  std::map<const Chunk *, const Decl *> ChunkOwner;
  for (size_t I = 0; I < Prog.Decls.size(); ++I) {
    const Decl *D = Prog.Decls[I];
    if (!D->loc().isValid())
      return false;
    auto BIt = ByBuffer.find(D->loc().BufferId);
    if (BIt == ByBuffer.end())
      return false;
    std::vector<Chunk> &Chunks = BIt->second.Chunks;
    uint32_t Off = D->loc().Offset;
    auto CIt = std::upper_bound(
        Chunks.begin(), Chunks.end(), Off,
        [](uint32_t O, const Chunk &C) { return O < C.ByteBegin; });
    if (CIt == Chunks.begin())
      return false;
    --CIt;
    if (Off < CIt->ByteBegin || Off >= CIt->ByteEnd)
      return false;
    if (!ChunkOwner.emplace(&*CIt, D).second)
      return false;
    Nodes[I] = DeclNode{D, D->loc().BufferId, &*CIt, Fingerprint{}, {}, {}};
  }

  // Name resolution for dependency edges: every name a source token
  // could use to reach a declaration — the declaration's own name,
  // variant constructor names, and interface member names (mapped to
  // the whole interface).
  std::map<std::string, std::vector<const DeclNode *>> ByName;
  for (DeclNode &N : Nodes) {
    ByName[N.D->name()].push_back(&N);
    if (const auto *V = dyn_cast<VariantDecl>(N.D))
      for (const VariantDecl::Ctor &C : V->ctors())
        ByName[C.Name].push_back(&N);
    if (const auto *I = dyn_cast<InterfaceDecl>(N.D))
      for (const Decl *M : I->members())
        ByName[M->name()].push_back(&N);
  }

  // Per-declaration contribution hashes and dependency edges.
  auto CollectDeps = [&](const std::vector<Token> &Toks, const Chunk &C,
                         size_t EndTok, std::vector<const DeclNode *> &Out) {
    for (size_t T = C.FirstTok; T < EndTok; ++T) {
      const Token &Tok = Toks[T];
      if (!Tok.is(TokKind::Identifier) && !Tok.is(TokKind::TickIdentifier))
        continue;
      auto It = ByName.find(Tok.Text);
      if (It == ByName.end())
        continue;
      for (const DeclNode *Dep : It->second)
        if (!std::count(Out.begin(), Out.end(), Dep))
          Out.push_back(Dep);
    }
  };
  for (DeclNode &N : Nodes) {
    const std::vector<Token> &Toks = ByBuffer[N.BufferId].Tokens;
    // For functions the interface stops at the '{' that opens the
    // body; prototypes and every other declaration expose all tokens.
    size_t IfaceEnd = N.C->EndTok;
    if (const auto *F = dyn_cast<FuncDecl>(N.D); F && F->body()) {
      int Depth = 0;
      for (size_t T = N.C->FirstTok; T < N.C->EndTok; ++T) {
        if (Toks[T].is(TokKind::LBrace) && Depth == 0) {
          IfaceEnd = T;
          break;
        }
        if (Toks[T].isOneOf({TokKind::LParen, TokKind::LBracket}))
          ++Depth;
        else if (Toks[T].isOneOf({TokKind::RParen, TokKind::RBracket}))
          --Depth;
      }
    }
    Hasher H;
    hashTokenRange(Toks.data() + N.C->FirstTok, Toks.data() + IfaceEnd, H);
    if (const auto *F = dyn_cast<FuncDecl>(N.D)) {
      auto SIt = Sigs.find(F);
      H.u8(SIt != Sigs.end());
      if (SIt != Sigs.end())
        hashSignature(SIt->second, KeyTab, H);
    }
    N.Contrib = H.finish();
    CollectDeps(Toks, *N.C, IfaceEnd, N.InterfaceDeps);
    CollectDeps(Toks, *N.C, N.C->EndTok, N.FullDeps);
  }

  // Fingerprint every function with a body: global context, the
  // chunk's raw source and position, the elaborated signature, and the
  // dependency closure in deterministic (name, kind, location) order.
  for (DeclNode &N : Nodes) {
    const auto *F = dyn_cast<FuncDecl>(N.D);
    if (!F || !F->body())
      continue;
    auto SIt = Sigs.find(F);

    Hasher H;
    H.str(Ctx.CheckerVersion);
    H.u32(Ctx.KeyDisplayBase);
    H.u32(Ctx.StateVarBase);

    // Position and raw text: everything rendered output can show.
    std::string_view Text = SM.bufferText(N.BufferId);
    H.str(SM.bufferName(N.BufferId));
    PresumedLoc P = SM.presumed(SourceLoc{N.BufferId, N.C->ByteBegin});
    H.u32(P.Line);
    H.u32(P.Column);
    // The partial line before the chunk and after it: carets render
    // whole lines, which can start in the previous declaration or
    // continue into the next.
    H.str(Text.substr(N.C->ByteBegin - (P.Column - 1), P.Column - 1));
    H.str(Text.substr(N.C->ByteBegin, N.C->ByteEnd - N.C->ByteBegin));
    size_t SuffixEnd = Text.find_first_of("\r\n", N.C->ByteEnd);
    if (SuffixEnd == std::string_view::npos)
      SuffixEnd = Text.size();
    H.str(Text.substr(N.C->ByteEnd, SuffixEnd - N.C->ByteEnd));

    H.u8(SIt != Sigs.end());
    if (SIt != Sigs.end())
      hashSignature(SIt->second, KeyTab, H);

    // Dependency closure: breadth-first from the full-chunk references,
    // expanding through declaration interfaces only.
    std::vector<const DeclNode *> Closure;
    std::vector<const DeclNode *> Work(N.FullDeps.begin(), N.FullDeps.end());
    auto Push = [&](const DeclNode *Dep) {
      if (Dep != &N && !std::count(Closure.begin(), Closure.end(), Dep)) {
        Closure.push_back(Dep);
        Work.push_back(Dep);
      }
    };
    std::vector<const DeclNode *> Roots = std::move(Work);
    Work.clear();
    for (const DeclNode *R : Roots)
      Push(R);
    while (!Work.empty()) {
      const DeclNode *Cur = Work.back();
      Work.pop_back();
      for (const DeclNode *Dep : Cur->InterfaceDeps)
        Push(Dep);
    }
    std::sort(Closure.begin(), Closure.end(),
              [](const DeclNode *A, const DeclNode *B) {
                if (A->D->name() != B->D->name())
                  return A->D->name() < B->D->name();
                if (A->BufferId != B->BufferId)
                  return A->BufferId < B->BufferId;
                return A->C->ByteBegin < B->C->ByteBegin;
              });
    H.u64(Closure.size());
    for (const DeclNode *Dep : Closure) {
      H.str(Dep->D->name());
      H.u8(static_cast<uint8_t>(Dep->D->kind()));
      H.fingerprint(Dep->Contrib);
    }

    Keys.emplace(F, FuncCacheKey{H.finish(), N.BufferId, N.C->ByteBegin,
                                 N.C->ByteEnd});
  }
  return true;
}
