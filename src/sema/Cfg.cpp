//===- Cfg.cpp ------------------------------------------------------------===//

#include "sema/Cfg.h"

#include <deque>
#include <sstream>

using namespace vault;

unsigned Cfg::newNode() {
  CfgNode N;
  N.Id = static_cast<unsigned>(Nodes.size());
  Nodes.push_back(std::move(N));
  return Nodes.back().Id;
}

void Cfg::addEdge(unsigned From, unsigned To) {
  if (From == None || To == None)
    return;
  Nodes[From].Succs.push_back(To);
}

unsigned Cfg::lowerStmt(const Stmt *S, unsigned Cur) {
  if (Cur == None)
    return None; // Unreachable code is not lowered.
  switch (S->kind()) {
  case StmtKind::Block: {
    unsigned B = Cur;
    for (const Stmt *Sub : cast<BlockStmt>(S)->stmts()) {
      B = lowerStmt(Sub, B);
      if (B == None)
        break;
    }
    return B;
  }
  case StmtKind::Decl:
  case StmtKind::Expr:
  case StmtKind::Free:
  case StmtKind::Borrow:
  case StmtKind::EndBorrow:
    Nodes[Cur].Stmts.push_back(S);
    return Cur;
  case StmtKind::Return:
    Nodes[Cur].Stmts.push_back(S);
    addEdge(Cur, Exit);
    return None;
  case StmtKind::If: {
    const auto *I = cast<IfStmt>(S);
    Nodes[Cur].Terminator = I->cond();
    unsigned ThenB = newNode();
    addEdge(Cur, ThenB);
    unsigned ThenOut = lowerStmt(I->thenStmt(), ThenB);
    unsigned ElseOut;
    if (I->elseStmt()) {
      unsigned ElseB = newNode();
      addEdge(Cur, ElseB);
      ElseOut = lowerStmt(I->elseStmt(), ElseB);
    } else {
      ElseOut = Cur; // Fall-through edge from the condition.
    }
    if (ThenOut == None && ElseOut == None)
      return None;
    unsigned Join = newNode();
    if (ThenOut != None)
      addEdge(ThenOut, Join);
    if (ElseOut != None)
      addEdge(ElseOut, Join);
    return Join;
  }
  case StmtKind::While: {
    const auto *W = cast<WhileStmt>(S);
    unsigned Head = newNode();
    addEdge(Cur, Head);
    Nodes[Head].Terminator = W->cond();
    unsigned BodyB = newNode();
    addEdge(Head, BodyB);
    unsigned BodyOut = lowerStmt(W->body(), BodyB);
    if (BodyOut != None)
      addEdge(BodyOut, Head); // Back edge.
    unsigned After = newNode();
    addEdge(Head, After);
    return After;
  }
  case StmtKind::Switch: {
    const auto *Sw = cast<SwitchStmt>(S);
    Nodes[Cur].Terminator = Sw->subject();
    unsigned Join = newNode();
    bool AnyFallthrough = false;
    for (const SwitchStmt::Case &C : Sw->cases()) {
      unsigned ArmB = newNode();
      addEdge(Cur, ArmB);
      unsigned ArmOut = ArmB;
      for (const Stmt *Sub : C.Body) {
        ArmOut = lowerStmt(Sub, ArmOut);
        if (ArmOut == None)
          break;
      }
      if (ArmOut != None) {
        addEdge(ArmOut, Join);
        AnyFallthrough = true;
      }
    }
    if (Sw->cases().empty()) {
      addEdge(Cur, Join);
      AnyFallthrough = true;
    }
    return AnyFallthrough ? Join : None;
  }
  }
  return Cur;
}

Cfg Cfg::build(const FuncDecl *F) {
  assert(F->body() && "CFG of a prototype");
  Cfg G;
  G.Entry = G.newNode();
  G.Exit = G.newNode();
  unsigned Out = G.lowerStmt(F->body(), G.Entry);
  if (Out != None)
    G.addEdge(Out, G.Exit);
  return G;
}

size_t Cfg::numEdges() const {
  size_t N = 0;
  for (const CfgNode &Node : Nodes)
    N += Node.Succs.size();
  return N;
}

std::vector<unsigned> Cfg::unreachableNodes() const {
  std::vector<bool> Seen(Nodes.size(), false);
  std::deque<unsigned> Work{Entry};
  Seen[Entry] = true;
  while (!Work.empty()) {
    unsigned N = Work.front();
    Work.pop_front();
    for (unsigned S : Nodes[N].Succs)
      if (!Seen[S]) {
        Seen[S] = true;
        Work.push_back(S);
      }
  }
  std::vector<unsigned> Result;
  for (unsigned I = 0; I != Nodes.size(); ++I)
    if (!Seen[I])
      Result.push_back(I);
  return Result;
}

std::string Cfg::dot() const {
  std::ostringstream OS;
  OS << "digraph cfg {\n";
  for (const CfgNode &N : Nodes) {
    OS << "  n" << N.Id << " [label=\"B" << N.Id;
    if (N.Id == Entry)
      OS << " (entry)";
    if (N.Id == Exit)
      OS << " (exit)";
    OS << "\\n" << N.Stmts.size() << " stmt(s)\"];\n";
    for (unsigned S : N.Succs)
      OS << "  n" << N.Id << " -> n" << S << ";\n";
  }
  OS << "}\n";
  return OS.str();
}
