//===- Elaborator.h - Surface types to internal types -----------*- C++ -*-===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Translates surface type expressions, effect clauses and function
/// declarations into the internal type language (paper §3): guarded
/// types, singleton (tracked) types, existentials, and polymorphic
/// signatures with pre/post key sets. Also provides the unifier used
/// to instantiate signatures at call sites.
///
//===----------------------------------------------------------------------===//

#ifndef VAULT_SEMA_ELABORATOR_H
#define VAULT_SEMA_ELABORATOR_H

#include "sema/Symbols.h"
#include "support/Diagnostics.h"

namespace vault {

class Elaborator {
public:
  /// Where a type expression appears; controls how unknown key names
  /// are treated.
  enum class TypeCtx {
    Signature, ///< Unknown keys bind fresh signature keys.
    Local,     ///< Unknown top-level tracked binder deferred to caller;
               ///< other unknown keys are errors.
    AliasBody, ///< Unknown tracked keys bind existential placeholders.
  };

  Elaborator(TypeContext &TC, GlobalSymbols &Globals, DiagnosticEngine &Diags)
      : TC(TC), Globals(Globals), Diags(Diags) {}

  /// Elaborates a type expression. \p Sig must be non-null in
  /// Signature context. Never returns null (returns the error type on
  /// failure, after reporting).
  const Type *elabType(const TypeExprAst *T, ElabScope &Scope, TypeCtx Ctx,
                       FuncSig *Sig);

  /// In Local context, a top-level `tracked(K) T` with unbound K
  /// produces AnonTracked and records K here for the declaration
  /// checker to bind against the initializer's key.
  std::string takePendingBinder() {
    std::string S = std::move(PendingBinder);
    PendingBinder.clear();
    return S;
  }

  /// Elaborates a function declaration (top-level, interface member,
  /// or nested) into a polymorphic signature. \p Enclosing is the
  /// lexical scope the signature is elaborated in; for nested
  /// functions, already-bound key names resolve monomorphically to the
  /// enclosing keys.
  FuncSig *elabSignature(const FuncDecl *F, ElabScope *Enclosing,
                         bool IsLocal);

  /// Elaborates a state expression; \p Order is the stateset the state
  /// should belong to (may be null for free-form states).
  StateRef elabStateExpr(const StateExprAst &S, ElabScope &Scope, TypeCtx Ctx,
                         FuncSig *Sig, const Stateset *Order);

  /// The instantiated shape of one variant constructor at a particular
  /// variant type application.
  struct CtorShape {
    std::vector<const Type *> Payload;
    /// Keys attached to the constructor with the states they carry.
    std::vector<GuardedType::Guard> Attachments;
  };

  /// Instantiates constructor \p C of the applied variant \p VT.
  /// Returns false (after reporting at \p Loc) on arity errors.
  bool instantiateCtor(const VariantType *VT, const VariantDecl::Ctor &C,
                       SourceLoc Loc, CtorShape &Out);

  /// Type of field \p Name of \p ST, instantiated with ST's arguments;
  /// null if no such field (caller reports).
  const Type *fieldType(const StructType *ST, const std::string &Name);

  //===--------------------------------------------------------------------===//
  // Unification (call-site instantiation).
  //===--------------------------------------------------------------------===//

  /// Unifies parameter type \p Param against argument type \p Arg,
  /// extending \p S. Keys in \p Callee->SigKeys, the callee's state
  /// variables, and type variables are bindable; everything else must
  /// match exactly. \p Callee may be null (nothing bindable).
  bool unify(const Type *Param, const Type *Arg, Subst &S,
             const FuncSig *Callee);

  /// Structural compatibility of a function value's signature with an
  /// expected signature (for passing functions as values, e.g.
  /// completion routines).
  bool sigCompatible(const FuncSig *Expected, const FuncSig *Actual);

  /// Resolves a key name: scope bindings, then global keys.
  KeySym resolveKey(const std::string &Name, ElabScope &Scope) const {
    if (KeySym K = Scope.findKey(Name))
      return K;
    return Globals.findGlobalKey(Name);
  }

  /// Replaces every Existential placeholder key in \p T with a fresh
  /// Local key, recording the mapping in \p FreshKeys (placeholder ->
  /// fresh). Used when unpacking values whose types carry internal
  /// existential bindings.
  const Type *instantiateExistentials(const Type *T, SourceLoc Loc,
                                      std::map<KeySym, KeySym> &FreshKeys);

  TypeContext &typeContext() { return TC; }
  GlobalSymbols &globals() { return Globals; }
  DiagnosticEngine &diags() { return Diags; }

  /// Current state-variable counter (see nextStateVar).
  uint32_t stateVarCounter() const { return FreeVarCounter; }

  /// Seeds the state-variable counter. Pass 3 gives every function its
  /// own elaborator seeded to the same post-signature base: ids stay
  /// unique within a function (one counter per function, and no two
  /// functions' signatures are ever unified against each other), and
  /// any id rendered into a diagnostic is independent of how many
  /// functions were checked before this one — a prerequisite for
  /// deterministic output under concurrent checking.
  void seedStateVarCounter(uint32_t V) { FreeVarCounter = V; }

private:
  const Type *elabNamedType(const NamedTypeExpr *N, ElabScope &Scope,
                            TypeCtx Ctx, FuncSig *Sig);
  const Type *elabTrackedType(const TrackedTypeExpr *T, ElabScope &Scope,
                              TypeCtx Ctx, FuncSig *Sig);
  const Type *elabGuardedType(const GuardedTypeExpr *G, ElabScope &Scope,
                              TypeCtx Ctx, FuncSig *Sig);
  /// Elaborates a type alias application by expanding its body in a
  /// scope that binds the alias parameters to \p Args.
  const Type *expandAlias(const TypeAliasDecl *A, std::vector<GenArg> Args,
                          SourceLoc Loc);
  bool elabGenArgs(const NamedTypeExpr *N,
                   const std::vector<TypeParamAst> &Params, ElabScope &Scope,
                   TypeCtx Ctx, FuncSig *Sig, std::vector<GenArg> &Out);
  /// Builds a FuncSig from a FuncTypeExpr in an alias body (completion
  /// routine types).
  FuncSig *elabFuncTypeExpr(const FuncTypeExpr *F, ElabScope &Scope);
  void elabEffects(const EffectClauseAst &E, ElabScope &Scope, FuncSig *Sig);
  void addImplicitParamEffects(FuncSig *Sig);
  const Type *elabReturnType(const TypeExprAst *T, ElabScope &Scope,
                             FuncSig *Sig);
  /// State variable ids are globally unique: distinct signatures must
  /// never share an id, or a caller's symbolic state would spuriously
  /// satisfy a callee's bound via the same-variable rule.
  StateVarId nextStateVar(FuncSig *Sig) {
    if (Sig)
      ++Sig->NumStateVars;
    return ++FreeVarCounter;
  }
  KeySym bindNewSigKey(const std::string &Name, ElabScope &Scope, FuncSig *Sig,
                       SourceLoc Loc, bool Fresh);
  bool unifyKey(KeySym ParamKey, KeySym ArgKey, Subst &S,
                const FuncSig *Callee);
  bool unifyState(const StateRef &Param, const StateRef &Arg, Subst &S,
                  const FuncSig *Callee);
  bool unifyGenArgs(const std::vector<GenArg> &P, const std::vector<GenArg> &A,
                    Subst &S, const FuncSig *Callee);
  bool funcTypeMatch(const FuncSig *Expected, const FuncSig *Actual, Subst &S,
                     const FuncSig *OuterCallee);

  const Type *error(DiagId Id, SourceLoc Loc, const std::string &Msg) {
    Diags.report(Id, Loc, Msg);
    return TC.errorType();
  }

  TypeContext &TC;
  GlobalSymbols &Globals;
  DiagnosticEngine &Diags;
  std::string PendingBinder;
  uint32_t FreeVarCounter = 0;
};

} // namespace vault

#endif // VAULT_SEMA_ELABORATOR_H
