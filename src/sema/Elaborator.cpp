//===- Elaborator.cpp -----------------------------------------------------===//

#include "sema/Elaborator.h"

using namespace vault;

//===----------------------------------------------------------------------===//
// State expressions
//===----------------------------------------------------------------------===//

StateRef Elaborator::elabStateExpr(const StateExprAst &S, ElabScope &Scope,
                                   TypeCtx Ctx, FuncSig *Sig,
                                   const Stateset *Order) {
  if (S.K == StateExprAst::Kind::Name) {
    if (const StateRef *V = Scope.findStateVar(S.Name))
      return *V;
    if (const GenArg *A = Scope.findGenArg(S.Name); A && A->K == Kind::State)
      return A->State;
    if (Order && !Order->contains(S.Name)) {
      Diags.report(DiagId::SemaUnknownState, S.Loc,
                   "state '" + S.Name + "' is not a member of stateset '" +
                       Order->name() + "'");
      return StateRef::top();
    }
    return StateRef::name(S.Name);
  }
  // Bounded state variable `(var <= Bound)`.
  if (const StateRef *V = Scope.findStateVar(S.Name))
    return *V;
  if (Order && !Order->contains(S.Bound))
    Diags.report(DiagId::SemaUnknownState, S.Loc,
                 "bound '" + S.Bound + "' is not a member of stateset '" +
                     Order->name() + "'");
  StateRef V = StateRef::var(nextStateVar(Sig), S.Bound, S.Strict);
  Scope.bindStateVar(S.Name, V);
  if (Sig)
    Sig->StateVarNames.emplace_back(S.Name, V);
  (void)Ctx;
  return V;
}

//===----------------------------------------------------------------------===//
// Keys
//===----------------------------------------------------------------------===//

KeySym Elaborator::bindNewSigKey(const std::string &Name, ElabScope &Scope,
                                 FuncSig *Sig, SourceLoc Loc, bool Fresh) {
  assert(Sig && "signature keys need a signature");
  KeySym K = TC.keys().create(Name, KeyTable::Origin::Signature, Loc);
  Scope.bindKey(Name, K);
  Sig->SigKeys.push_back(K);
  if (Fresh)
    Sig->FreshKeys.push_back(K);
  return K;
}

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

bool Elaborator::elabGenArgs(const NamedTypeExpr *N,
                             const std::vector<TypeParamAst> &Params,
                             ElabScope &Scope, TypeCtx Ctx, FuncSig *Sig,
                             std::vector<GenArg> &Out) {
  if (N->args().size() != Params.size()) {
    Diags.report(DiagId::SemaArity, N->loc(),
                 "'" + N->name() + "' expects " +
                     std::to_string(Params.size()) + " argument(s), got " +
                     std::to_string(N->args().size()));
    return false;
  }
  for (size_t I = 0; I != Params.size(); ++I) {
    const TypeExprAst *Arg = N->args()[I];
    switch (Params[I].K) {
    case TypeParamAst::Kind::Type:
      Out.push_back(GenArg::type(elabType(Arg, Scope, Ctx, Sig)));
      break;
    case TypeParamAst::Kind::Key: {
      const auto *Named = dyn_cast<NamedTypeExpr>(Arg);
      if (!Named || !Named->args().empty()) {
        Diags.report(DiagId::SemaKindMismatch, Arg->loc(),
                     "expected a key name for parameter '" + Params[I].Name +
                         "'");
        return false;
      }
      KeySym K = resolveKey(Named->name(), Scope);
      if (K == InvalidKey) {
        if (Ctx == TypeCtx::Signature) {
          K = bindNewSigKey(Named->name(), Scope, Sig, Arg->loc(),
                            /*Fresh=*/false);
        } else if (Ctx == TypeCtx::AliasBody) {
          K = TC.keys().create(Named->name(), KeyTable::Origin::Existential,
                               Arg->loc());
          Scope.bindKey(Named->name(), K);
        } else {
          Diags.report(DiagId::SemaUnknownKey, Arg->loc(),
                       "unknown key '" + Named->name() + "'");
          return false;
        }
      }
      Out.push_back(GenArg::key(K));
      break;
    }
    case TypeParamAst::Kind::State: {
      const auto *Named = dyn_cast<NamedTypeExpr>(Arg);
      if (!Named || !Named->args().empty()) {
        Diags.report(DiagId::SemaKindMismatch, Arg->loc(),
                     "expected a state name for parameter '" + Params[I].Name +
                         "'");
        return false;
      }
      const std::string &Name = Named->name();
      if (const StateRef *V = Scope.findStateVar(Name)) {
        Out.push_back(GenArg::state(*V));
      } else if (const GenArg *A = Scope.findGenArg(Name);
                 A && A->K == Kind::State) {
        Out.push_back(*A);
      } else if (TC.isKnownStateName(Name)) {
        Out.push_back(GenArg::state(StateRef::name(Name)));
      } else if (Ctx == TypeCtx::Signature) {
        // Introduce a state variable (e.g. `KIRQL<level>` where `level`
        // is first mentioned in the type).
        StateRef V = StateRef::var(nextStateVar(Sig));
        Scope.bindStateVar(Name, V);
        Sig->StateVarNames.emplace_back(Name, V);
        Out.push_back(GenArg::state(V));
      } else if (Ctx == TypeCtx::Local) {
        // A local declaration like `KIRQL<old> saved = ...`: `old`
        // becomes a local state variable bound by the initializer.
        StateRef V = StateRef::var(nextStateVar(nullptr));
        Scope.bindStateVar(Name, V);
        Out.push_back(GenArg::state(V));
      } else {
        Out.push_back(GenArg::state(StateRef::name(Name)));
      }
      break;
    }
    }
  }
  return true;
}

const Type *Elaborator::expandAlias(const TypeAliasDecl *A,
                                    std::vector<GenArg> Args, SourceLoc Loc) {
  static thread_local unsigned Depth = 0;
  if (Depth > 64)
    return error(DiagId::SemaUnknownType, Loc,
                 "type alias expansion too deep (cyclic alias '" + A->name() +
                     "'?)");
  ++Depth;
  ElabScope AliasScope(nullptr);
  for (size_t I = 0; I != A->params().size(); ++I)
    AliasScope.bindGenArg(A->params()[I].Name, Args[I]);
  const Type *Result;
  if (const auto *F = dyn_cast<FuncTypeExpr>(A->underlying()))
    Result = TC.make<FuncType>(elabFuncTypeExpr(F, AliasScope));
  else
    Result = elabType(A->underlying(), AliasScope, TypeCtx::AliasBody, nullptr);
  --Depth;
  return Result;
}

const Type *Elaborator::elabNamedType(const NamedTypeExpr *N, ElabScope &Scope,
                                      TypeCtx Ctx, FuncSig *Sig) {
  if (const GenArg *A = Scope.findGenArg(N->name())) {
    if (A->K == Kind::Type) {
      if (!N->args().empty())
        return error(DiagId::SemaArity, N->loc(),
                     "type parameter '" + N->name() + "' takes no arguments");
      return A->T;
    }
    return error(DiagId::SemaKindMismatch, N->loc(),
                 "'" + N->name() + "' is a " +
                     (A->K == Kind::Key ? "key" : "state") +
                     ", not a type");
  }

  const Decl *D = Globals.findType(N->name());
  if (!D)
    return error(DiagId::SemaUnknownType, N->loc(),
                 "unknown type '" + N->name() + "'");

  const std::vector<TypeParamAst> *Params = nullptr;
  if (const auto *Alias = dyn_cast<TypeAliasDecl>(D))
    Params = &Alias->params();
  else if (const auto *St = dyn_cast<StructDecl>(D))
    Params = &St->params();
  else if (const auto *V = dyn_cast<VariantDecl>(D))
    Params = &V->params();
  else
    return error(DiagId::SemaUnknownType, N->loc(),
                 "'" + N->name() + "' does not name a type");

  std::vector<GenArg> Args;
  if (!elabGenArgs(N, *Params, Scope, Ctx, Sig, Args))
    return TC.errorType();

  if (const auto *Alias = dyn_cast<TypeAliasDecl>(D)) {
    if (Alias->isAbstract())
      return TC.make<AbstractType>(Alias, std::move(Args));
    return expandAlias(Alias, std::move(Args), N->loc());
  }
  if (const auto *St = dyn_cast<StructDecl>(D))
    return TC.make<StructType>(St, std::move(Args));
  return TC.make<VariantType>(cast<VariantDecl>(D), std::move(Args));
}

const Type *Elaborator::elabTrackedType(const TrackedTypeExpr *T,
                                        ElabScope &Scope, TypeCtx Ctx,
                                        FuncSig *Sig) {
  const Type *Inner = elabType(T->inner(), Scope, Ctx, Sig);
  if (T->keyName()) {
    KeySym K = resolveKey(*T->keyName(), Scope);
    if (K != InvalidKey)
      return TC.make<TrackedType>(Inner, K);
    switch (Ctx) {
    case TypeCtx::Signature:
      K = bindNewSigKey(*T->keyName(), Scope, Sig, T->loc(), /*Fresh=*/false);
      return TC.make<TrackedType>(Inner, K);
    case TypeCtx::AliasBody:
      K = TC.keys().create(*T->keyName(), KeyTable::Origin::Existential,
                           T->loc());
      Scope.bindKey(*T->keyName(), K);
      return TC.make<TrackedType>(Inner, K);
    case TypeCtx::Local:
      // The declaration checker binds the name against the
      // initializer's key.
      if (!PendingBinder.empty()) {
        Diags.report(DiagId::SemaUnknownKey, T->loc(),
                     "only one tracked key binder per declaration");
        return TC.errorType();
      }
      PendingBinder = *T->keyName();
      return TC.make<AnonTrackedType>(Inner, StateRef::top());
    }
  }
  StateRef State = StateRef::top();
  if (T->initialState())
    State = elabStateExpr(*T->initialState(), Scope, Ctx, Sig, nullptr);
  return TC.make<AnonTrackedType>(Inner, State);
}

const Type *Elaborator::elabGuardedType(const GuardedTypeExpr *G,
                                        ElabScope &Scope, TypeCtx Ctx,
                                        FuncSig *Sig) {
  std::vector<GuardedType::Guard> Guards;
  for (const KeyStateRef &Ref : G->guards()) {
    KeySym K = resolveKey(Ref.KeyName, Scope);
    if (K == InvalidKey) {
      if (Ctx == TypeCtx::Signature) {
        K = bindNewSigKey(Ref.KeyName, Scope, Sig, Ref.Loc, /*Fresh=*/false);
      } else {
        return error(DiagId::SemaUnknownKey, Ref.Loc,
                     "unknown guard key '" + Ref.KeyName + "'");
      }
    }
    StateRef Required = StateRef::top();
    if (Ref.State)
      Required =
          elabStateExpr(*Ref.State, Scope, Ctx, Sig, TC.keys().order(K));
    Guards.push_back(GuardedType::Guard{K, std::move(Required)});
  }
  const Type *Inner = elabType(G->inner(), Scope, Ctx, Sig);
  return TC.make<GuardedType>(std::move(Guards), Inner);
}

const Type *Elaborator::elabType(const TypeExprAst *T, ElabScope &Scope,
                                 TypeCtx Ctx, FuncSig *Sig) {
  switch (T->kind()) {
  case TypeExprKind::Prim:
    return TC.primType(cast<PrimTypeExpr>(T)->prim());
  case TypeExprKind::Named:
    return elabNamedType(cast<NamedTypeExpr>(T), Scope, Ctx, Sig);
  case TypeExprKind::Tracked:
    return elabTrackedType(cast<TrackedTypeExpr>(T), Scope, Ctx, Sig);
  case TypeExprKind::Guarded:
    return elabGuardedType(cast<GuardedTypeExpr>(T), Scope, Ctx, Sig);
  case TypeExprKind::Tuple: {
    std::vector<const Type *> Elems;
    for (const TypeExprAst *E : cast<TupleTypeExpr>(T)->elems())
      Elems.push_back(elabType(E, Scope, Ctx, Sig));
    return TC.make<TupleType>(std::move(Elems));
  }
  case TypeExprKind::Array:
    return TC.make<ArrayType>(
        elabType(cast<ArrayTypeExpr>(T)->elem(), Scope, Ctx, Sig));
  case TypeExprKind::Func:
    return TC.make<FuncType>(
        elabFuncTypeExpr(cast<FuncTypeExpr>(T), Scope));
  }
  return TC.errorType();
}

//===----------------------------------------------------------------------===//
// Signatures
//===----------------------------------------------------------------------===//

void Elaborator::elabEffects(const EffectClauseAst &E, ElabScope &Scope,
                             FuncSig *Sig) {
  for (const EffectItemAst &Item : E.Items) {
    EffectItem EI;
    EI.Loc = Item.Loc;
    switch (Item.M) {
    case EffectItemAst::Mode::Keep:
      EI.M = EffectItem::Mode::Keep;
      break;
    case EffectItemAst::Mode::Consume:
      EI.M = EffectItem::Mode::Consume;
      break;
    case EffectItemAst::Mode::Produce:
      EI.M = EffectItem::Mode::Produce;
      break;
    case EffectItemAst::Mode::Fresh:
      EI.M = EffectItem::Mode::Fresh;
      break;
    }

    KeySym K = resolveKey(Item.KeyName, Scope);
    if (EI.M == EffectItem::Mode::Fresh) {
      if (K != InvalidKey) {
        Diags.report(DiagId::SemaRedefinition, Item.Loc,
                     "fresh key '" + Item.KeyName + "' is already bound");
      } else {
        K = bindNewSigKey(Item.KeyName, Scope, Sig, Item.Loc, /*Fresh=*/true);
      }
    } else if (K == InvalidKey) {
      K = bindNewSigKey(Item.KeyName, Scope, Sig, Item.Loc, /*Fresh=*/false);
    }
    EI.Key = K;
    const Stateset *Order = K != InvalidKey ? TC.keys().order(K) : nullptr;

    // Precondition state.
    if (EI.M == EffectItem::Mode::Keep || EI.M == EffectItem::Mode::Consume) {
      if (Item.Pre) {
        EI.Pre = elabStateExpr(*Item.Pre, Scope, TypeCtx::Signature, Sig,
                               Order);
      } else {
        // `[K]` / `[-K]`: polymorphic in the key's state.
        EI.Pre = StateRef::var(nextStateVar(Sig));
      }
    } else {
      EI.Pre = StateRef::top();
    }

    // Postcondition state.
    if (EI.M == EffectItem::Mode::Consume) {
      EI.Post = std::nullopt;
    } else if (Item.Post) {
      if (const StateRef *V = Scope.findStateVar(*Item.Post)) {
        EI.Post = *V;
      } else {
        if (Order && !Order->contains(*Item.Post))
          Diags.report(DiagId::SemaUnknownState, Item.Loc,
                       "state '" + *Item.Post +
                           "' is not a member of stateset '" + Order->name() +
                           "'");
        EI.Post = StateRef::name(*Item.Post);
      }
    } else if (EI.M == EffectItem::Mode::Keep) {
      EI.Post = EI.Pre; // Unchanged.
    } else {
      EI.Post = StateRef::top();
    }
    Sig->Effects.push_back(std::move(EI));
  }
}

const Type *Elaborator::elabReturnType(const TypeExprAst *T, ElabScope &Scope,
                                       FuncSig *Sig) {
  const auto *Tr = dyn_cast<TrackedTypeExpr>(T);
  if (!Tr)
    return elabType(T, Scope, TypeCtx::Signature, Sig);

  const Type *Inner = elabType(Tr->inner(), Scope, TypeCtx::Signature, Sig);
  if (Tr->keyName()) {
    KeySym K = resolveKey(*Tr->keyName(), Scope);
    if (K == InvalidKey) {
      // `tracked(N) sock accept(...)` without a `new N` effect: the
      // returned key is implicitly fresh.
      K = bindNewSigKey(*Tr->keyName(), Scope, Sig, Tr->loc(), /*Fresh=*/true);
      EffectItem EI;
      EI.M = EffectItem::Mode::Fresh;
      EI.Key = K;
      EI.Pre = StateRef::top();
      EI.Post = StateRef::top();
      EI.Loc = Tr->loc();
      Sig->Effects.push_back(EI);
    }
    return TC.make<TrackedType>(Inner, K);
  }
  if (Tr->initialState()) {
    // `tracked(@raw) sock socket(...)`: fresh key in the given state.
    StateRef State = elabStateExpr(*Tr->initialState(), Scope,
                                   TypeCtx::Signature, Sig, nullptr);
    KeySym K = bindNewSigKey("$" + Sig->Name + ".ret", Scope, Sig, Tr->loc(),
                             /*Fresh=*/true);
    EffectItem EI;
    EI.M = EffectItem::Mode::Fresh;
    EI.Key = K;
    EI.Pre = StateRef::top();
    EI.Post = State;
    EI.Loc = Tr->loc();
    Sig->Effects.push_back(EI);
    return TC.make<TrackedType>(Inner, K);
  }
  // Bare `tracked T`: the caller receives a packed (anonymous) value.
  return TC.make<AnonTrackedType>(Inner, StateRef::top());
}

FuncSig *Elaborator::elabSignature(const FuncDecl *F, ElabScope *Enclosing,
                                   bool IsLocal) {
  FuncSig *Sig = TC.makeSig();
  Sig->Decl = F;
  Sig->Name = F->name();
  Sig->Loc = F->loc();
  Sig->IsLocal = IsLocal;

  ElabScope SigScope(Enclosing);
  for (const FuncDecl::Param &P : F->params()) {
    Sig->ParamTypes.push_back(
        elabType(P.Type, SigScope, TypeCtx::Signature, Sig));
    Sig->ParamNames.push_back(P.Name);
  }
  elabEffects(F->effect(), SigScope, Sig);
  Sig->RetType = elabReturnType(F->retType(), SigScope, Sig);
  addImplicitParamEffects(Sig);
  return Sig;
}

/// True if key \p K occurs in tracked (singleton) position in \p T.
static bool keyInTrackedPosition(const Type *T, KeySym K) {
  if (!T)
    return false;
  switch (T->kind()) {
  case TyKind::Tracked: {
    const auto *Tr = cast<TrackedType>(T);
    return Tr->key() == K || keyInTrackedPosition(Tr->inner(), K);
  }
  case TyKind::Guarded:
    return keyInTrackedPosition(cast<GuardedType>(T)->inner(), K);
  case TyKind::AnonTracked:
    return keyInTrackedPosition(cast<AnonTrackedType>(T)->inner(), K);
  case TyKind::Tuple:
    for (const Type *E : cast<TupleType>(T)->elems())
      if (keyInTrackedPosition(E, K))
        return true;
    return false;
  default:
    return false;
  }
}

void Elaborator::addImplicitParamEffects(FuncSig *Sig) {
  // A tracked parameter whose key is not mentioned in the effect
  // clause is implicitly kept unchanged: "because this function has no
  // explicit effect clause, it promises that the pre and post key set
  // will be the same" (paper §2.2).
  for (KeySym K : Sig->SigKeys) {
    if (Sig->isFreshKey(K))
      continue;
    bool Mentioned = false;
    for (const EffectItem &EI : Sig->Effects)
      if (EI.Key == K)
        Mentioned = true;
    if (Mentioned)
      continue;
    bool Tracked = false;
    for (const Type *PT : Sig->ParamTypes)
      if (keyInTrackedPosition(PT, K))
        Tracked = true;
    if (!Tracked)
      continue;
    EffectItem EI;
    EI.M = EffectItem::Mode::Keep;
    EI.Key = K;
    EI.Pre = StateRef::var(nextStateVar(Sig));
    EI.Post = EI.Pre;
    EI.Loc = Sig->Loc;
    Sig->Effects.push_back(std::move(EI));
  }
}

FuncSig *Elaborator::elabFuncTypeExpr(const FuncTypeExpr *F,
                                      ElabScope &Scope) {
  FuncSig *Sig = TC.makeSig();
  Sig->Name = "<fn-type>";
  Sig->Loc = F->loc();
  ElabScope SigScope(&Scope);
  for (const FuncTypeExpr::Param &P : F->params()) {
    Sig->ParamTypes.push_back(
        elabType(P.Type, SigScope, TypeCtx::Signature, Sig));
    Sig->ParamNames.push_back(P.Name);
  }
  elabEffects(F->effect(), SigScope, Sig);
  Sig->RetType = elabReturnType(F->ret(), SigScope, Sig);
  addImplicitParamEffects(Sig);
  return Sig;
}

//===----------------------------------------------------------------------===//
// Variant constructor instantiation and struct fields
//===----------------------------------------------------------------------===//

bool Elaborator::instantiateCtor(const VariantType *VT,
                                 const VariantDecl::Ctor &C, SourceLoc Loc,
                                 Elaborator::CtorShape &Out) {
  const VariantDecl *D = VT->decl();
  if (D->params().size() != VT->args().size()) {
    Diags.report(DiagId::SemaArity, Loc,
                 "variant '" + D->name() + "' applied to wrong arity");
    return false;
  }
  ElabScope Scope(nullptr);
  for (size_t I = 0; I != D->params().size(); ++I)
    Scope.bindGenArg(D->params()[I].Name, VT->args()[I]);

  for (const TypeExprAst *P : C.Payload)
    Out.Payload.push_back(elabType(P, Scope, TypeCtx::AliasBody, nullptr));

  for (const KeyStateRef &Att : C.KeyAttachments) {
    KeySym K = resolveKey(Att.KeyName, Scope);
    if (K == InvalidKey) {
      Diags.report(DiagId::SemaUnknownKey, Att.Loc,
                   "unknown key '" + Att.KeyName +
                       "' attached to constructor '" + C.Name + "'");
      return false;
    }
    StateRef State = StateRef::top();
    if (Att.State)
      State = elabStateExpr(*Att.State, Scope, TypeCtx::AliasBody, nullptr,
                            TC.keys().order(K));
    Out.Attachments.push_back(GuardedType::Guard{K, std::move(State)});
  }
  return true;
}

const Type *Elaborator::fieldType(const StructType *ST,
                                  const std::string &Name) {
  const StructDecl *D = ST->decl();
  for (const StructDecl::Field &F : D->fields()) {
    if (F.Name != Name)
      continue;
    ElabScope Scope(nullptr);
    for (size_t I = 0; I != D->params().size() && I < ST->args().size(); ++I)
      Scope.bindGenArg(D->params()[I].Name, ST->args()[I]);
    return elabType(F.Type, Scope, TypeCtx::AliasBody, nullptr);
  }
  return nullptr;
}

const Type *
Elaborator::instantiateExistentials(const Type *T, SourceLoc Loc,
                                    std::map<KeySym, KeySym> &FreshKeys) {
  std::vector<KeySym> Mentioned;
  collectKeys(T, Mentioned);
  Subst S;
  for (KeySym K : Mentioned) {
    if (TC.keys().origin(K) != KeyTable::Origin::Existential)
      continue;
    auto It = FreshKeys.find(K);
    if (It == FreshKeys.end()) {
      KeySym Fresh = TC.keys().create(TC.keys().name(K),
                                      KeyTable::Origin::Local, Loc,
                                      TC.keys().order(K));
      It = FreshKeys.emplace(K, Fresh).first;
    }
    S.Keys[K] = It->second;
  }
  return S.Keys.empty() ? T : substType(TC, T, S);
}

//===----------------------------------------------------------------------===//
// Unification
//===----------------------------------------------------------------------===//

bool Elaborator::unifyKey(KeySym ParamKey, KeySym ArgKey, Subst &S,
                          const FuncSig *Callee) {
  KeySym Mapped = S.mapKey(ParamKey);
  if (Mapped != ParamKey)
    return Mapped == ArgKey;
  if (ParamKey == ArgKey)
    return true;
  if (Callee && Callee->isSigKey(ParamKey)) {
    S.Keys[ParamKey] = ArgKey;
    return true;
  }
  // Existential placeholders (internal bindings of alias bodies, e.g.
  // the correlated pair `(tracked(R) region, R:point)`) unify with any
  // key; the binding records the correlation.
  if (TC.keys().origin(ParamKey) == KeyTable::Origin::Existential) {
    S.Keys[ParamKey] = ArgKey;
    return true;
  }
  return false;
}

bool Elaborator::unifyState(const StateRef &Param, const StateRef &Arg,
                            Subst &S, const FuncSig *Callee) {
  StateRef P = substState(Param, S);
  if (P == Arg)
    return true;
  if (P.isVar() && Callee) {
    S.StateVars[P.varId()] = Arg;
    return true;
  }
  return false;
}

bool Elaborator::unifyGenArgs(const std::vector<GenArg> &P,
                              const std::vector<GenArg> &A, Subst &S,
                              const FuncSig *Callee) {
  if (P.size() != A.size())
    return false;
  for (size_t I = 0; I != P.size(); ++I) {
    if (P[I].K != A[I].K)
      return false;
    switch (P[I].K) {
    case Kind::Type:
      if (!unify(P[I].T, A[I].T, S, Callee))
        return false;
      break;
    case Kind::Key:
      if (!unifyKey(P[I].Key, A[I].Key, S, Callee))
        return false;
      break;
    case Kind::State:
      if (!unifyState(P[I].State, A[I].State, S, Callee))
        return false;
      break;
    case Kind::KeySet:
      return false;
    }
  }
  return true;
}

bool Elaborator::unify(const Type *Param, const Type *Arg, Subst &S,
                       const FuncSig *Callee) {
  if (!Param || !Arg)
    return false;
  if (Param->kind() == TyKind::Error || Arg->kind() == TyKind::Error)
    return true;

  if (const auto *TV = dyn_cast<TypeVarType>(Param)) {
    auto It = S.TypeVars.find(TV->param());
    if (It != S.TypeVars.end())
      return typeEquals(It->second, Arg);
    S.TypeVars[TV->param()] = Arg;
    return true;
  }

  // An anonymous-tracked parameter accepts a named tracked argument
  // (the call packs the key; consumption is handled by the caller's
  // flow checker).
  if (const auto *AT = dyn_cast<AnonTrackedType>(Param)) {
    if (const auto *ArgT = dyn_cast<TrackedType>(Arg))
      return unify(AT->inner(), ArgT->inner(), S, Callee);
    if (const auto *ArgA = dyn_cast<AnonTrackedType>(Arg))
      return unify(AT->inner(), ArgA->inner(), S, Callee);
    // A compound rvalue (e.g. a tuple with tracked elements) packed
    // into an anonymous slot: unify against the inner shape.
    return unify(AT->inner(), Arg, S, Callee);
  }

  if (Param->kind() != Arg->kind())
    return false;

  switch (Param->kind()) {
  case TyKind::Prim:
    return cast<PrimType>(Param)->prim() == cast<PrimType>(Arg)->prim();
  case TyKind::Struct: {
    const auto *P = cast<StructType>(Param), *A = cast<StructType>(Arg);
    return P->decl() == A->decl() && unifyGenArgs(P->args(), A->args(), S,
                                                  Callee);
  }
  case TyKind::Abstract: {
    const auto *P = cast<AbstractType>(Param), *A = cast<AbstractType>(Arg);
    return P->decl() == A->decl() && unifyGenArgs(P->args(), A->args(), S,
                                                  Callee);
  }
  case TyKind::Variant: {
    const auto *P = cast<VariantType>(Param), *A = cast<VariantType>(Arg);
    return P->decl() == A->decl() && unifyGenArgs(P->args(), A->args(), S,
                                                  Callee);
  }
  case TyKind::Tracked: {
    const auto *P = cast<TrackedType>(Param), *A = cast<TrackedType>(Arg);
    return unifyKey(P->key(), A->key(), S, Callee) &&
           unify(P->inner(), A->inner(), S, Callee);
  }
  case TyKind::Guarded: {
    const auto *P = cast<GuardedType>(Param), *A = cast<GuardedType>(Arg);
    if (P->guards().size() != A->guards().size())
      return false;
    for (size_t I = 0; I != P->guards().size(); ++I) {
      if (!unifyKey(P->guards()[I].Key, A->guards()[I].Key, S, Callee))
        return false;
      if (!unifyState(P->guards()[I].Required, A->guards()[I].Required, S,
                      Callee))
        return false;
    }
    return unify(P->inner(), A->inner(), S, Callee);
  }
  case TyKind::Tuple: {
    const auto *P = cast<TupleType>(Param), *A = cast<TupleType>(Arg);
    if (P->elems().size() != A->elems().size())
      return false;
    for (size_t I = 0; I != P->elems().size(); ++I)
      if (!unify(P->elems()[I], A->elems()[I], S, Callee))
        return false;
    return true;
  }
  case TyKind::Array:
    return unify(cast<ArrayType>(Param)->elem(), cast<ArrayType>(Arg)->elem(),
                 S, Callee);
  case TyKind::Func:
    return funcTypeMatch(cast<FuncType>(Param)->sig(),
                         cast<FuncType>(Arg)->sig(), S, Callee);
  case TyKind::AnonTracked:
  case TyKind::TypeVar:
  case TyKind::Error:
    return true; // Handled above.
  }
  return false;
}

/// Structural equivalence of two states under \p S (applied to the
/// first): same shape after mapping.
static bool stateEquiv(const StateRef &A, const StateRef &B, const Subst &S) {
  StateRef MA = substState(A, S);
  if (MA.kind() != B.kind())
    // A mapped variable may have become the other side's variable.
    return MA == B;
  switch (MA.kind()) {
  case StateRef::Kind::Top:
    return true;
  case StateRef::Kind::Name:
    return MA.nameOrBound() == B.nameOrBound();
  case StateRef::Kind::Var:
    // Two variables are equivalent if their bounds coincide.
    return MA.nameOrBound() == B.nameOrBound() &&
           MA.strictBound() == B.strictBound();
  }
  return false;
}

bool Elaborator::funcTypeMatch(const FuncSig *Expected, const FuncSig *Actual,
                               Subst &S, const FuncSig *OuterCallee) {
  if (Expected == Actual)
    return true;
  if (!Expected || !Actual)
    return false;
  if (Expected->ParamTypes.size() != Actual->ParamTypes.size())
    return false;
  if (Expected->Effects.size() != Actual->Effects.size())
    return false;
  // Keys bindable while matching: the enclosing call's signature keys
  // plus the expected function type's own polymorphic keys.
  FuncSig Combined;
  if (OuterCallee)
    Combined.SigKeys = OuterCallee->SigKeys;
  Combined.SigKeys.insert(Combined.SigKeys.end(), Expected->SigKeys.begin(),
                          Expected->SigKeys.end());
  Combined.NumStateVars = 1; // Non-zero: state variables bindable.

  for (size_t I = 0; I != Expected->ParamTypes.size(); ++I)
    if (!unify(Expected->ParamTypes[I], Actual->ParamTypes[I], S, &Combined))
      return false;
  if (!unify(Expected->RetType, Actual->RetType, S, &Combined))
    return false;
  for (size_t I = 0; I != Expected->Effects.size(); ++I) {
    const EffectItem &EA = Actual->Effects[I];
    const EffectItem &EE = Expected->Effects[I];
    if (EA.M != EE.M)
      return false;
    if (S.mapKey(EE.Key) != EA.Key)
      return false;
    if (!stateEquiv(EE.Pre, EA.Pre, S))
      return false;
    if (EA.Post.has_value() != EE.Post.has_value())
      return false;
    if (EE.Post && !stateEquiv(*EE.Post, *EA.Post, S))
      return false;
  }
  return true;
}

bool Elaborator::sigCompatible(const FuncSig *Expected, const FuncSig *Actual) {
  Subst S;
  return funcTypeMatch(Expected, Actual, S, nullptr);
}
