//===- Checker.cpp --------------------------------------------------------===//

#include "sema/Checker.h"

#include "parser/Parser.h"
#include "sema/CheckCache.h"
#include "sema/Fingerprint.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

using namespace vault;

/// Version tag folded into every fingerprint. Bump whenever the
/// checker's diagnostics or semantics change, so stale cache entries
/// from older builds can never replay.
static constexpr const char *CheckerVersion = "vault-checker 1";

namespace {
/// Runs \p Body on \p NJobs threads; inline on the calling thread when
/// NJobs <= 1. Bodies pull work from a shared atomic counter, so the
/// helper is just the spawn/join boilerplate every phase shares.
template <typename Fn> void runOnWorkers(unsigned NJobs, Fn &&Body) {
  if (NJobs <= 1) {
    Body();
    return;
  }
  std::vector<std::thread> Workers;
  Workers.reserve(NJobs);
  for (unsigned T = 0; T < NJobs; ++T)
    Workers.emplace_back(Body);
  for (std::thread &W : Workers)
    W.join();
}
} // namespace

unsigned VaultCompiler::effectiveJobs(size_t TaskCount, size_t Grain) const {
  unsigned N = Jobs ? Jobs : std::thread::hardware_concurrency();
  // Never more workers than tasks, and for phases whose tasks are tiny
  // (Grain > 1) never fewer than Grain tasks per worker: spawning a
  // thread costs tens of microseconds, which swamps e.g. a one-line
  // signature's elaboration. The choice only affects scheduling —
  // every phase produces byte-identical output at any worker count.
  size_t ByGrain = std::max<size_t>(TaskCount / std::max<size_t>(Grain, 1), 1);
  return static_cast<unsigned>(
      std::min<size_t>(std::max(N, 1u), std::min(std::max<size_t>(TaskCount, 1), ByGrain)));
}

VaultCompiler::VaultCompiler() {
  Diags = std::make_unique<DiagnosticEngine>(SM);
  Elab = std::make_unique<Elaborator>(TC, Globals, *Diags);
}

bool VaultCompiler::addSource(const std::string &Name,
                              const std::string &Text) {
  // One "parse" span covers lexing too: the lexer is pulled through
  // the parser, never run standalone.
  TraceSpan Span(Trc, "parse");
  Span.arg("source", Name);
  if (!Parser::parseString(Ast, SM, *Diags, Name, Text)) {
    ParseFailed = true;
    return false;
  }
  return true;
}

void VaultCompiler::queueSource(const std::string &Name,
                                const std::string &Text) {
  // The buffer is registered now (buffer numbering is input order,
  // diagnostics depend on it); only the parse itself is deferred.
  PendingParses.push_back(PendingParse{Name, SM.addBuffer(Name, Text)});
}

void VaultCompiler::flushPendingParses() {
  if (PendingParses.empty())
    return;
  std::vector<PendingParse> Queue;
  Queue.swap(PendingParses);

  // Each buffer parses into a private AST arena and diagnostics
  // buffer; the source manager is only read. Results merge in input
  // order below, so the program is identical at any job count.
  struct ParseOutcome {
    AstContext Ctx;
    std::vector<Diagnostic> Diags;
    bool Ok = true;
  };
  std::vector<ParseOutcome> Outcomes(Queue.size());
  std::atomic<size_t> Next{0};
  auto Worker = [&] {
    for (;;) {
      size_t I = Next.fetch_add(1, std::memory_order_relaxed);
      if (I >= Queue.size())
        break;
      ParseOutcome &Out = Outcomes[I];
      // Same span as addSource: one "parse" per buffer, lexing
      // included.
      TraceSpan Span(Trc, "parse");
      Span.arg("source", Queue[I].Name);
      DiagnosticEngine ParseDiags(SM);
      Parser P(Out.Ctx, SM, Queue[I].BufferId, ParseDiags);
      Out.Ok = P.parseProgram();
      Out.Diags = ParseDiags.take();
    }
  };
  unsigned NJobs = effectiveJobs(Queue.size());
  {
    TraceSpan Span(Trc, "parse-sources");
    Span.arg("buffers", uint64_t(Queue.size()));
    Span.arg("jobs", uint64_t(NJobs));
    runOnWorkers(NJobs, Worker);
  }
  for (ParseOutcome &Out : Outcomes) {
    if (!Out.Ok)
      ParseFailed = true;
    for (Diagnostic &D : Out.Diags)
      Diags->append(std::move(D));
    Ast.adopt(std::move(Out.Ctx));
  }
}

bool VaultCompiler::addFile(const std::string &Path) {
  TraceSpan Span(Trc, "parse");
  Span.arg("source", Path);
  std::optional<uint32_t> Id = SM.addFile(Path);
  if (!Id) {
    Diags->report(DiagId::RunError, SourceLoc{},
                  "cannot read file '" + Path + "'");
    ParseFailed = true;
    return false;
  }
  Parser P(Ast, SM, *Id, *Diags);
  if (!P.parseProgram()) {
    ParseFailed = true;
    return false;
  }
  return true;
}

void VaultCompiler::registerDecl(const Decl *D) {
  ++LastStats.DeclsRegistered;
  switch (D->kind()) {
  case DeclKind::Stateset: {
    const auto *S = cast<StatesetDecl>(D);
    std::vector<std::vector<std::string>> Ranks(S->ranks().begin(),
                                                S->ranks().end());
    if (!TC.addStateset(S->name(), std::move(Ranks)))
      Diags->report(DiagId::SemaRedefinition, D->loc(),
                    "redefinition of stateset '" + S->name() + "'");
    return;
  }
  case DeclKind::Key: {
    const auto *K = cast<KeyDecl>(D);
    if (Globals.GlobalKeys.count(K->name())) {
      Diags->report(DiagId::SemaRedefinition, D->loc(),
                    "redefinition of key '" + K->name() + "'");
      return;
    }
    const Stateset *Order = nullptr;
    if (!K->statesetName().empty()) {
      Order = TC.findStateset(K->statesetName());
      if (!Order)
        Diags->report(DiagId::SemaUnknownState, D->loc(),
                      "unknown stateset '" + K->statesetName() + "'");
    }
    KeySym Sym =
        TC.keys().create(K->name(), KeyTable::Origin::Global, D->loc(), Order);
    Globals.GlobalKeys.emplace(K->name(), Sym);
    return;
  }
  case DeclKind::TypeAlias:
  case DeclKind::Struct: {
    if (!Globals.TypeNames.emplace(D->name(), D).second)
      Diags->report(DiagId::SemaRedefinition, D->loc(),
                    "redefinition of type '" + D->name() + "'");
    return;
  }
  case DeclKind::Variant: {
    const auto *V = cast<VariantDecl>(D);
    if (!Globals.TypeNames.emplace(V->name(), V).second)
      Diags->report(DiagId::SemaRedefinition, D->loc(),
                    "redefinition of type '" + V->name() + "'");
    for (const VariantDecl::Ctor &C : V->ctors())
      if (!Globals.Ctors.emplace(C.Name, V).second)
        Diags->report(DiagId::SemaRedefinition, C.Loc,
                      "constructor '" + C.Name +
                          "' is already defined by another variant");
    return;
  }
  case DeclKind::Func: {
    // Signatures are elaborated in a later pass, once all type names
    // are known; here we only reserve the name.
    const auto *F = cast<FuncDecl>(D);
    auto It = FuncDeclByName.find(F->name());
    if (It != FuncDeclByName.end()) {
      // A definition may complete an earlier prototype, but two bodies
      // collide. Prototype/definition (and prototype/prototype) pairs
      // must agree in signature; pass 2 verifies that.
      if (It->second->body() && F->body()) {
        Diags->report(DiagId::SemaRedefinition, D->loc(),
                      "redefinition of function '" + F->name() + "'");
        return;
      }
      Redecls.emplace_back(It->second, F);
      if (!F->body())
        return; // Keep the existing (defining or first) declaration.
      // The new definition supersedes the prototype.
      It->second = F;
      for (const FuncDecl *&P : PendingFuncs)
        if (P->name() == F->name())
          P = F;
      return;
    }
    FuncDeclByName[F->name()] = F;
    Globals.Functions[F->name()] = nullptr;
    PendingFuncs.push_back(F);
    return;
  }
  case DeclKind::Interface: {
    const auto *I = cast<InterfaceDecl>(D);
    if (!Globals.Interfaces.emplace(I->name(), I).second)
      Diags->report(DiagId::SemaRedefinition, D->loc(),
                    "redefinition of interface '" + I->name() + "'");
    for (const Decl *M : I->members())
      registerDecl(M);
    return;
  }
  case DeclKind::Module: {
    const auto *M = cast<ModuleDecl>(D);
    auto It = Globals.Interfaces.find(M->interfaceName());
    if (It == Globals.Interfaces.end()) {
      Diags->report(DiagId::SemaBadModule, D->loc(),
                    "module '" + M->name() + "' implements unknown interface '" +
                        M->interfaceName() + "'");
      return;
    }
    if (!Globals.Modules.emplace(M->name(), It->second).second)
      Diags->report(DiagId::SemaRedefinition, D->loc(),
                    "redefinition of module '" + M->name() + "'");
    return;
  }
  case DeclKind::Var:
    Diags->report(DiagId::SemaRedefinition, D->loc(),
                  "global variables are not supported");
    return;
  }
}

void VaultCompiler::elabSignaturesParallel(unsigned NJobs) {
  const size_t N = PendingFuncs.size();
  const uint32_t StateVarBase0 = Elab->stateVarCounter();

  // Discovery: elaborate every signature against scratch resources to
  // learn how many keys and state variables it allocates. Shared state
  // (globals, statesets, the key table) is only read; everything the
  // discovery run produces — types, diagnostics, scratch keys — is
  // discarded. This doubles the elaboration work, but both halves are
  // embarrassingly parallel, where the serial pass was a strict
  // bottleneck between parsing and flow checking.
  struct SigPlan {
    uint32_t Keys = 0;
    uint32_t StateVars = 0;
    KeySym KeyBase = InvalidKey;
    uint32_t StateVarBase = 0;
  };
  std::vector<SigPlan> Plans(N);
  {
    std::atomic<size_t> Next{0};
    runOnWorkers(NJobs, [&] {
      for (;;) {
        size_t I = Next.fetch_add(1, std::memory_order_relaxed);
        if (I >= N)
          break;
        TypeArena Scratch;
        TypeContext::ArenaScope Arena(Scratch);
        KeyTable::ScratchScope ScratchKeys(TC.keys());
        DiagnosticEngine Discard(SM);
        Elaborator E(TC, Globals, Discard);
        E.seedStateVarCounter(StateVarBase0);
        E.elabSignature(PendingFuncs[I], nullptr, /*IsLocal=*/false);
        Plans[I].Keys = static_cast<uint32_t>(ScratchKeys.created());
        Plans[I].StateVars = E.stateVarCounter() - StateVarBase0;
      }
    });
  }

  // Reserve: prefix sums assign every signature the key window and
  // state-variable range the serial pass would have given it, so the
  // numbering — which reaches diagnostics and cache fingerprints — is
  // byte-identical to serial elaboration.
  size_t TotalKeys = 0;
  uint32_t TotalVars = 0;
  for (SigPlan &P : Plans) {
    P.StateVarBase = StateVarBase0 + TotalVars;
    TotalVars += P.StateVars;
    TotalKeys += P.Keys;
  }
  KeySym NextKey = TC.keys().reserve(TotalKeys);
  for (SigPlan &P : Plans) {
    P.KeyBase = NextKey;
    NextKey += P.Keys;
  }

  // Real elaboration: concurrent, each signature filling its reserved
  // key window lock-free. No DisplayScope is installed — the serial
  // pass has none either, so display ids are the raw syms both ways.
  struct SigOutcome {
    FuncSig *Sig = nullptr;
    std::vector<Diagnostic> Diags;
    TypeArena Arena;
  };
  std::vector<SigOutcome> Outcomes(N);
  {
    std::atomic<size_t> Next{0};
    runOnWorkers(NJobs, [&] {
      for (;;) {
        size_t I = Next.fetch_add(1, std::memory_order_relaxed);
        if (I >= N)
          break;
        SigOutcome &Out = Outcomes[I];
        TraceSpan Span(Trc, std::string("elab ") += PendingFuncs[I]->name());
        TypeContext::ArenaScope Arena(Out.Arena);
        KeyTable::WindowScope Window(TC.keys(), Plans[I].KeyBase,
                                     Plans[I].Keys);
        DiagnosticEngine SigDiags(SM);
        Elaborator E(TC, Globals, SigDiags);
        E.seedStateVarCounter(Plans[I].StateVarBase);
        Out.Sig = E.elabSignature(PendingFuncs[I], nullptr, /*IsLocal=*/false);
        Out.Diags = SigDiags.take();
      }
    });
  }

  // Merge, in source order — same writes the serial loop makes.
  for (size_t I = 0; I < N; ++I) {
    SigOutcome &Out = Outcomes[I];
    Globals.Functions[PendingFuncs[I]->name()] = Out.Sig;
    SigOf[PendingFuncs[I]] = Out.Sig;
    for (Diagnostic &D : Out.Diags)
      Diags->append(std::move(D));
    TC.adopt(std::move(Out.Arena));
  }
  // Leave the main elaborator exactly where serial elaboration would
  // have: the redeclaration checks and Pass 3 allocate after it.
  Elab->seedStateVarCounter(StateVarBase0 + TotalVars);
}

bool VaultCompiler::check() {
  // check() is idempotent: every run re-registers all declarations, so
  // the semantic state of the previous run — global symbols, types,
  // keys, signatures, and the diagnostics it reported — is discarded
  // first. Parse diagnostics (outside [CheckDiagBegin, CheckDiagEnd))
  // are kept.
  if (HasChecked) {
    Diags->eraseRange(CheckDiagBegin, CheckDiagEnd);
    Globals = GlobalSymbols{};
    TC.reset();
    Elab = std::make_unique<Elaborator>(TC, Globals, *Diags);
  }
  // Queued sources parse before CheckDiagBegin is fixed: their
  // diagnostics are parse diagnostics and must survive a re-check,
  // exactly like addSource's.
  flushPendingParses();
  CheckDiagBegin = Diags->size();
  LastStats = Stats{};
  Reg.reset();
  KeyTrace.clear();
  PendingFuncs.clear();
  FuncDeclByName.clear();
  SigOf.clear();
  Redecls.clear();

  // Pass 1: register every top-level name.
  {
    TraceSpan Span(Trc, "register-decls");
    for (const Decl *D : Ast.program().Decls)
      registerDecl(D);
    Span.arg("declarations", LastStats.DeclsRegistered);
  }

  // Pass 2: elaborate all signatures (prototypes included). At jobs >
  // 1 the signatures elaborate concurrently (discovery + reserved key
  // windows, see elabSignaturesParallel); the serial path below is the
  // reference behavior the parallel one must reproduce byte-for-byte.
  const uint64_t ElabBegin = Trc ? Trc->nowUs() : 0;
  const unsigned ElabJobs = effectiveJobs(PendingFuncs.size(), /*Grain=*/8);
  if (ElabJobs > 1 && PendingFuncs.size() > 1) {
    elabSignaturesParallel(ElabJobs);
  } else {
    for (const FuncDecl *F : PendingFuncs) {
      TraceSpan Span(Trc, std::string("elab ") += F->name());
      FuncSig *Sig = Elab->elabSignature(F, nullptr, /*IsLocal=*/false);
      Globals.Functions[F->name()] = Sig;
      SigOf[F] = Sig;
    }
  }

  // A superseded (or repeated) prototype must agree with the kept
  // declaration: same parameters, return type and effect clause. The
  // shadowed signature is elaborated here only for the comparison.
  for (const auto &[First, Second] : Redecls) {
    const FuncDecl *Kept = FuncDeclByName[First->name()];
    const FuncDecl *Shadowed = First == Kept ? Second : First;
    FuncSig *KeptSig = Globals.Functions[First->name()];
    FuncSig *ShadowedSig =
        Elab->elabSignature(Shadowed, nullptr, /*IsLocal=*/false);
    if (!Elab->sigCompatible(ShadowedSig, KeptSig) ||
        !Elab->sigCompatible(KeptSig, ShadowedSig)) {
      Diags->report(DiagId::SemaProtoMismatch, Second->loc(),
                    "signature of function '" + First->name() +
                        "' disagrees with its earlier declaration "
                        "(parameters, return type and effect clause "
                        "must match)");
      Diags->note(First->loc(), "earlier declaration is here");
    }
  }
  if (Trc)
    Trc->complete("elab-signatures", ElabBegin, Trc->nowUs());

  // Pass 3: flow-check every body. Each function is checked in full
  // isolation — its own diagnostics buffer, elaborator (state-variable
  // counter seeded to the common post-signature base), type arena, and
  // key display scope — so bodies can be distributed over worker
  // threads. Results are merged in source order below, making the
  // output byte-identical at any job count.
  struct FuncTask {
    const FuncDecl *F;
    FuncSig *Sig;
    const FuncCacheKey *Key = nullptr;
    /// Set when the cache already holds this function's result; the
    /// workers skip the task and the merge replays the diagnostics.
    std::optional<CheckCache::CachedResult> Cached;
    /// Per-function cache status for trace span args; null when the
    /// cache is off for the run.
    const char *CacheStatus = nullptr;
  };
  struct FuncOutcome {
    std::vector<Diagnostic> Diags;
    std::vector<KeyTraceEntry> Trace;
    TypeArena Arena;
    double WallMs = 0;
    unsigned MaxHeldKeys = 0;
    unsigned FixpointIters = 0;
    unsigned KeysetOps = 0;
    unsigned Joins = 0;
    unsigned JoinRenames = 0;
    size_t ArenaBytes = 0;
  };
  std::vector<FuncTask> Tasks;
  for (const FuncDecl *F : PendingFuncs)
    if (F->body())
      Tasks.push_back(FuncTask{F, SigOf[F]});
  LastStats.FunctionsWithBodies = static_cast<unsigned>(Tasks.size());

  std::vector<FuncOutcome> Outcomes(Tasks.size());
  const uint32_t StateVarBase = Elab->stateVarCounter();
  const uint32_t KeyDisplayBase = static_cast<uint32_t>(TC.keys().size());

  // Incremental checking: fingerprint every function and replay cached
  // results. Key tracing bypasses the cache (traces are not stored);
  // --explain bypasses it too (provenance notes are not cached, and
  // fingerprints must not depend on observability flags); parse
  // failures bypass it because the token streams the fingerprints are
  // built from would not match the recovered AST.
  std::unique_ptr<CheckCache> Cache;
  FingerprintMap FPMap;
  if ((MemCache || !CacheDir.empty()) && !TraceEnabled && !ExplainEnabled &&
      !ParseFailed) {
    FingerprintMap::GlobalContext Ctx;
    Ctx.CheckerVersion = CheckerVersion;
    Ctx.KeyDisplayBase = KeyDisplayBase;
    Ctx.StateVarBase = StateVarBase;
    bool Fingerprinted;
    {
      TraceSpan Span(Trc, "fingerprint");
      Fingerprinted = FPMap.build(SM, Ast.program(), SigOf, TC.keys(), Ctx);
    }
    if (Fingerprinted) {
      std::string Unit;
      for (unsigned B = 1; B <= SM.numBuffers(); ++B) {
        if (!Unit.empty())
          Unit += ";";
        Unit += SM.bufferName(B);
      }
      Cache = MemCache ? std::make_unique<CheckCache>(*MemCache, Unit, Trc)
                       : std::make_unique<CheckCache>(CacheDir, Unit, Trc);
      if (!Cache->usable())
        Cache.reset();
    }
  }
  if (Cache)
    for (FuncTask &T : Tasks)
      if ((T.Key = FPMap.find(T.F))) {
        bool Invalidated = false;
        T.Cached = Cache->lookup(T.F->name(), *T.Key, &Invalidated);
        T.CacheStatus = T.Cached ? "hit" : (Invalidated ? "invalidated"
                                                        : "miss");
      }

  std::atomic<size_t> NextTask{0};
  auto RunWorker = [&] {
    for (;;) {
      size_t I = NextTask.fetch_add(1, std::memory_order_relaxed);
      if (I >= Tasks.size())
        break;
      if (Tasks[I].Cached)
        continue;
      FuncOutcome &Out = Outcomes[I];
      TraceSpan Span(Trc, std::string("check ") += Tasks[I].F->name());
      TypeContext::ArenaScope Arena(Out.Arena);
      KeyTable::DisplayScope Display(TC.keys(), KeyDisplayBase);
      DiagnosticEngine FnDiags(SM);
      Elaborator FnElab(TC, Globals, FnDiags);
      FnElab.seedStateVarCounter(StateVarBase);
      FlowChecker FC(FnElab, FnDiags);
      if (TraceEnabled)
        FC.setTraceSink(&Out.Trace);
      FC.setExplain(ExplainEnabled);
      auto Start = std::chrono::steady_clock::now();
      FC.checkFunction(Tasks[I].Sig, nullptr);
      Out.WallMs = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - Start)
                       .count();
      Out.MaxHeldKeys = FC.maxHeldKeys();
      Out.FixpointIters = FC.fixpointIterations();
      Out.KeysetOps = FC.keysetOps();
      Out.Joins = FC.joins();
      Out.JoinRenames = FC.joinRenamedKeys();
      Out.ArenaBytes = Out.Arena.bytes();
      Out.Diags = FnDiags.take();
      Span.arg("cache-status",
               std::string(Tasks[I].CacheStatus ? Tasks[I].CacheStatus
                                                : "off"));
      Span.arg("fixpoint-iterations", uint64_t(Out.FixpointIters));
      Span.arg("peak-held-keys", uint64_t(Out.MaxHeldKeys));
    }
  };

  size_t Uncached = 0;
  for (const FuncTask &T : Tasks)
    Uncached += !T.Cached;
  unsigned NJobs = effectiveJobs(Uncached);
  LastStats.JobsUsed = NJobs;
  {
    TraceSpan Span(Trc, "flow-check");
    Span.arg("jobs", uint64_t(NJobs));
    Span.arg("functions", uint64_t(Uncached));
    runOnWorkers(NJobs, RunWorker);
  }

  // Deterministic merge, in source order. Cached tasks replay their
  // stored diagnostics; fresh results are stored for the next run.
  // Cached functions still get a "check <fn>" span (zero-length,
  // tagged "hit") so the trace's span inventory is identical cold and
  // warm.
  unsigned Stores = 0;
  {
    TraceSpan MergeSpan(Trc, "merge");
    for (size_t I = 0; I < Tasks.size(); ++I) {
      FuncTask &T = Tasks[I];
      if (T.Cached) {
        if (Trc) {
          uint64_t Now = Trc->nowUs();
          Trc->complete(std::string("check ") += T.F->name(), Now, Now,
                        {{"cache-status", "hit"},
                         {"fixpoint-iterations", "0"},
                         {"peak-held-keys",
                          std::to_string(T.Cached->MaxHeldKeys)}});
        }
        for (Diagnostic &D : T.Cached->Diags)
          Diags->append(std::move(D));
        LastStats.PerFunction.push_back(
            Stats::FuncStat{T.F->name(), 0.0, T.Cached->MaxHeldKeys});
        ++LastStats.FunctionsChecked;
        continue;
      }
      FuncOutcome &Out = Outcomes[I];
      if (Cache && T.Key) {
        Cache->store(T.F->name(), *T.Key, Out.MaxHeldKeys, Out.Diags);
        ++Stores;
      }
      for (Diagnostic &D : Out.Diags)
        Diags->append(std::move(D));
      KeyTrace.insert(KeyTrace.end(),
                      std::make_move_iterator(Out.Trace.begin()),
                      std::make_move_iterator(Out.Trace.end()));
      TC.adopt(std::move(Out.Arena));
      LastStats.PerFunction.push_back(
          Stats::FuncStat{Tasks[I].F->name(), Out.WallMs, Out.MaxHeldKeys});
      ++LastStats.FunctionsChecked;
      ++LastStats.FlowChecksRun;
      Reg.add("flow.fixpoint_iterations", Out.FixpointIters);
      Reg.add("flow.keyset_ops", Out.KeysetOps);
      Reg.add("flow.joins", Out.Joins);
      Reg.add("flow.join_renamed_keys", Out.JoinRenames);
      Reg.add("types.arena_bytes", Out.ArenaBytes);
    }
  }
  if (Cache) {
    // One aggregate write-back event: stores happen inline during the
    // merge, so this records the count, not a wall-clock phase.
    if (Trc) {
      uint64_t Now = Trc->nowUs();
      Trc->complete("cache-write-back", Now, Now,
                    {{"stores", std::to_string(Stores)}});
    }
    Cache->finalizeRun();
    LastStats.CacheEnabled = true;
    LastStats.CacheHits = Cache->hits();
    LastStats.CacheMisses = Cache->misses();
    LastStats.CacheInvalidations = Cache->invalidations();
  }

  // Populate the metrics registry. Histograms take every checked
  // function (cache replays included, at 0 ms) so --stats matches the
  // per-function table; flow.* counters above cover fresh checks only
  // (a replay re-runs no fixpoint).
  Reg.set("check.functions_checked", LastStats.FunctionsChecked);
  Reg.set("check.functions_with_bodies", LastStats.FunctionsWithBodies);
  Reg.set("check.declarations", LastStats.DeclsRegistered);
  Reg.set("check.flow_checks_run", LastStats.FlowChecksRun);
  Reg.set("check.jobs_used", LastStats.JobsUsed);
  Reg.set("keys.allocated", TC.keys().size());
  if (LastStats.CacheEnabled) {
    Reg.set("cache.enabled", 1);
    Reg.set("cache.hits", LastStats.CacheHits);
    Reg.set("cache.misses", LastStats.CacheMisses);
    Reg.set("cache.invalidated", LastStats.CacheInvalidations);
  }
  uint64_t PeakHeld = 0;
  Metrics::Histogram &WallH =
      Reg.histogram("flow.wall_ms", {0.01, 0.1, 1.0, 10.0});
  Metrics::Histogram &HeldH =
      Reg.histogram("flow.peak_held_keys", {1, 2, 3, 5, 9});
  for (const Stats::FuncStat &FS : LastStats.PerFunction) {
    WallH.record(FS.WallMs);
    HeldH.record(FS.MaxHeldKeys);
    PeakHeld = std::max<uint64_t>(PeakHeld, FS.MaxHeldKeys);
  }
  Reg.set("flow.peak_held_keys", PeakHeld);

  CheckDiagEnd = Diags->size();
  HasChecked = true;
  return !ParseFailed && !Diags->hasErrors();
}

std::string VaultCompiler::renderStatsText() const {
  const Stats &S = LastStats;
  std::string Out;
  char Buf[128];
  auto Line = [&](auto... A) {
    std::snprintf(Buf, sizeof(Buf), A...);
    Out += Buf;
  };

  Line("functions checked: %u\n", S.FunctionsChecked);
  Line("flow checks run:   %u\n", S.FlowChecksRun);
  Line("declarations:      %u\n", S.DeclsRegistered);
  Line("keys allocated:    %zu\n", TC.keys().size());
  Line("jobs used:         %u\n", S.JobsUsed);
  if (S.CacheEnabled) {
    Line("cache hits:        %u\n", S.CacheHits);
    Line("cache misses:      %u\n", S.CacheMisses);
    Line("cache invalidated: %u\n", S.CacheInvalidations);
  }

  // Per-function wall-time histogram (log buckets).
  static const double MsEdges[] = {0.01, 0.1, 1.0, 10.0};
  unsigned MsBuckets[5] = {};
  double TotalMs = 0;
  for (const auto &F : S.PerFunction) {
    TotalMs += F.WallMs;
    size_t B = 0;
    while (B < 4 && F.WallMs >= MsEdges[B])
      ++B;
    ++MsBuckets[B];
  }
  Line("flow-check time:   %.3f ms total\n", TotalMs);
  static const char *MsLabels[] = {"     <0.01ms", " 0.01-0.10ms",
                                   " 0.10-1.00ms", " 1.00-10.0ms",
                                   "     >=10ms "};
  Out += "wall-time histogram:\n";
  for (size_t B = 0; B < 5; ++B)
    Line("  %s  %u\n", MsLabels[B], MsBuckets[B]);

  // Held-key-set size histogram (peak per function).
  static const unsigned HeldEdges[] = {1, 2, 3, 5, 9};
  unsigned HeldBuckets[6] = {};
  for (const auto &F : S.PerFunction) {
    size_t B = 0;
    while (B < 5 && F.MaxHeldKeys >= HeldEdges[B])
      ++B;
    ++HeldBuckets[B];
  }
  static const char *HeldLabels[] = {"   0", "   1", "   2",
                                     " 3-4", " 5-8", " >=9"};
  Out += "peak held-key-set size histogram:\n";
  for (size_t B = 0; B < 6; ++B)
    Line("  %s keys  %u\n", HeldLabels[B], HeldBuckets[B]);

  // The slowest functions, for profiling batch checks.
  std::vector<Stats::FuncStat> Sorted = S.PerFunction;
  std::stable_sort(
      Sorted.begin(), Sorted.end(),
      [](const auto &A, const auto &B) { return A.WallMs > B.WallMs; });
  size_t Top = std::min<size_t>(Sorted.size(), 5);
  if (Top) {
    Out += "slowest functions:\n";
    for (size_t I = 0; I < Top; ++I)
      Line("  %-24s %8.3f ms  (peak %u key(s))\n", Sorted[I].Name.c_str(),
           Sorted[I].WallMs, Sorted[I].MaxHeldKeys);
  }

  // The raw registry, sorted by name, for everything the classic block
  // doesn't break out.
  if (!Reg.empty()) {
    Out += "metrics registry:\n";
    Out += Reg.renderText();
  }
  return Out;
}

std::unique_ptr<VaultCompiler> vault::checkVaultSource(const std::string &Name,
                                                       const std::string &Text) {
  auto C = std::make_unique<VaultCompiler>();
  C->addSource(Name, Text);
  C->check();
  return C;
}
