//===- Checker.cpp --------------------------------------------------------===//

#include "sema/Checker.h"

#include "parser/Parser.h"

using namespace vault;

VaultCompiler::VaultCompiler() {
  Diags = std::make_unique<DiagnosticEngine>(SM);
  Elab = std::make_unique<Elaborator>(TC, Globals, *Diags);
}

bool VaultCompiler::addSource(const std::string &Name,
                              const std::string &Text) {
  if (!Parser::parseString(Ast, SM, *Diags, Name, Text)) {
    ParseFailed = true;
    return false;
  }
  return true;
}

bool VaultCompiler::addFile(const std::string &Path) {
  std::optional<uint32_t> Id = SM.addFile(Path);
  if (!Id) {
    Diags->report(DiagId::RunError, SourceLoc{},
                  "cannot read file '" + Path + "'");
    ParseFailed = true;
    return false;
  }
  Parser P(Ast, SM, *Id, *Diags);
  if (!P.parseProgram()) {
    ParseFailed = true;
    return false;
  }
  return true;
}

void VaultCompiler::registerDecl(const Decl *D) {
  ++LastStats.DeclsRegistered;
  switch (D->kind()) {
  case DeclKind::Stateset: {
    const auto *S = cast<StatesetDecl>(D);
    std::vector<std::vector<std::string>> Ranks(S->ranks().begin(),
                                                S->ranks().end());
    if (!TC.addStateset(S->name(), std::move(Ranks)))
      Diags->report(DiagId::SemaRedefinition, D->loc(),
                    "redefinition of stateset '" + S->name() + "'");
    return;
  }
  case DeclKind::Key: {
    const auto *K = cast<KeyDecl>(D);
    if (Globals.GlobalKeys.count(K->name())) {
      Diags->report(DiagId::SemaRedefinition, D->loc(),
                    "redefinition of key '" + K->name() + "'");
      return;
    }
    const Stateset *Order = nullptr;
    if (!K->statesetName().empty()) {
      Order = TC.findStateset(K->statesetName());
      if (!Order)
        Diags->report(DiagId::SemaUnknownState, D->loc(),
                      "unknown stateset '" + K->statesetName() + "'");
    }
    KeySym Sym =
        TC.keys().create(K->name(), KeyTable::Origin::Global, D->loc(), Order);
    Globals.GlobalKeys.emplace(K->name(), Sym);
    return;
  }
  case DeclKind::TypeAlias:
  case DeclKind::Struct: {
    if (!Globals.TypeNames.emplace(D->name(), D).second)
      Diags->report(DiagId::SemaRedefinition, D->loc(),
                    "redefinition of type '" + D->name() + "'");
    return;
  }
  case DeclKind::Variant: {
    const auto *V = cast<VariantDecl>(D);
    if (!Globals.TypeNames.emplace(V->name(), V).second)
      Diags->report(DiagId::SemaRedefinition, D->loc(),
                    "redefinition of type '" + V->name() + "'");
    for (const VariantDecl::Ctor &C : V->ctors())
      if (!Globals.Ctors.emplace(C.Name, V).second)
        Diags->report(DiagId::SemaRedefinition, C.Loc,
                      "constructor '" + C.Name +
                          "' is already defined by another variant");
    return;
  }
  case DeclKind::Func: {
    // Signatures are elaborated in a later pass, once all type names
    // are known; here we only reserve the name.
    const auto *F = cast<FuncDecl>(D);
    auto It = FuncDeclByName.find(F->name());
    if (It != FuncDeclByName.end()) {
      // A definition may complete an earlier prototype, but two bodies
      // (or two prototypes) collide.
      if (It->second->body() && F->body()) {
        Diags->report(DiagId::SemaRedefinition, D->loc(),
                      "redefinition of function '" + F->name() + "'");
        return;
      }
      if (!F->body())
        return; // Keep the existing (defining or first) declaration.
      // The new definition supersedes the prototype.
      It->second = F;
      for (const FuncDecl *&P : PendingFuncs)
        if (P->name() == F->name())
          P = F;
      return;
    }
    FuncDeclByName[F->name()] = F;
    Globals.Functions[F->name()] = nullptr;
    PendingFuncs.push_back(F);
    return;
  }
  case DeclKind::Interface: {
    const auto *I = cast<InterfaceDecl>(D);
    if (!Globals.Interfaces.emplace(I->name(), I).second)
      Diags->report(DiagId::SemaRedefinition, D->loc(),
                    "redefinition of interface '" + I->name() + "'");
    for (const Decl *M : I->members())
      registerDecl(M);
    return;
  }
  case DeclKind::Module: {
    const auto *M = cast<ModuleDecl>(D);
    auto It = Globals.Interfaces.find(M->interfaceName());
    if (It == Globals.Interfaces.end()) {
      Diags->report(DiagId::SemaBadModule, D->loc(),
                    "module '" + M->name() + "' implements unknown interface '" +
                        M->interfaceName() + "'");
      return;
    }
    if (!Globals.Modules.emplace(M->name(), It->second).second)
      Diags->report(DiagId::SemaRedefinition, D->loc(),
                    "redefinition of module '" + M->name() + "'");
    return;
  }
  case DeclKind::Var:
    Diags->report(DiagId::SemaRedefinition, D->loc(),
                  "global variables are not supported");
    return;
  }
}

bool VaultCompiler::check() {
  LastStats = Stats{};
  KeyTrace.clear();
  PendingFuncs.clear();
  FuncDeclByName.clear();
  SigOf.clear();

  // Pass 1: register every top-level name.
  for (const Decl *D : Ast.program().Decls)
    registerDecl(D);

  // Pass 2: elaborate all signatures (prototypes included).
  for (const FuncDecl *F : PendingFuncs) {
    FuncSig *Sig = Elab->elabSignature(F, nullptr, /*IsLocal=*/false);
    Globals.Functions[F->name()] = Sig;
    SigOf[F] = Sig;
  }

  // Pass 3: flow-check every body.
  for (const FuncDecl *F : PendingFuncs) {
    if (!F->body())
      continue;
    ++LastStats.FunctionsWithBodies;
    FlowChecker FC(*Elab, *Diags);
    if (TraceEnabled)
      FC.setTraceSink(&KeyTrace);
    FC.checkFunction(SigOf[F], nullptr);
    ++LastStats.FunctionsChecked;
  }

  return !ParseFailed && !Diags->hasErrors();
}

std::unique_ptr<VaultCompiler> vault::checkVaultSource(const std::string &Name,
                                                       const std::string &Text) {
  auto C = std::make_unique<VaultCompiler>();
  C->addSource(Name, Text);
  C->check();
  return C;
}
