//===- Symbols.cpp --------------------------------------------------------===//

#include "sema/Symbols.h"

// Symbols.h is header-only today; this TU anchors the library and is
// the natural home for future out-of-line definitions.
