//===- Checker.h - Whole-program driver -------------------------*- C++ -*-===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The top-level Vault compiler front end: owns all per-compilation
/// state (sources, AST, types, diagnostics, global symbols), parses
/// Vault sources, registers declarations, elaborates signatures and
/// flow-checks every function body — concurrently when jobs > 1, with
/// output merged in source order so it is identical at any job count.
///
//===----------------------------------------------------------------------===//

#ifndef VAULT_SEMA_CHECKER_H
#define VAULT_SEMA_CHECKER_H

#include "sema/Elaborator.h"
#include "sema/FlowChecker.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <memory>

namespace vault {

class CheckMemoryStore;

/// One Vault compilation: sources in, diagnostics out.
///
/// Typical use:
/// \code
///   VaultCompiler C;
///   C.addSource("demo.vlt", Text);
///   bool Ok = C.check();
///   if (!Ok) puts(C.diags().render().c_str());
/// \endcode
class VaultCompiler {
public:
  VaultCompiler();

  /// Parses \p Text as a Vault compilation unit named \p Name.
  /// Returns false on syntax errors (which are also recorded in the
  /// diagnostics).
  bool addSource(const std::string &Name, const std::string &Text);

  /// Registers \p Text (a buffer named \p Name) for parsing at the
  /// start of the next check(). Unlike addSource(), which parses
  /// inline on the calling thread, queued sources are parsed by the
  /// check() worker pool (setJobs) — each buffer into a private AST
  /// arena and diagnostics buffer, merged in input order, so the
  /// combined program and diagnostics are byte-identical to serial
  /// parsing at any job count. Buffers are numbered at queue time;
  /// queueSource and addSource/addFile calls may be mixed, but inline
  /// sources parse immediately while queued ones parse at check(), so
  /// the combined program is every inline source (in call order)
  /// followed by every queued source (in queue order).
  void queueSource(const std::string &Name, const std::string &Text);

  /// Reads and parses a file. Returns false if unreadable or invalid.
  bool addFile(const std::string &Path);

  /// Runs declaration collection, signature elaboration, and the flow
  /// checker over every function with a body. Returns true iff no
  /// errors were reported (including earlier parse errors).
  ///
  /// Idempotent: calling check() again re-runs the full pipeline from
  /// the parsed program and produces the same diagnostics.
  bool check();

  /// Number of worker threads the pipeline may use — queued-source
  /// parsing, signature elaboration, and Pass 3 (per-function flow
  /// checking) all share the setting. 1 (the default) runs inline on
  /// the calling thread; 0 means "use the hardware concurrency". Any
  /// job count produces byte-identical diagnostics, key traces and
  /// verdicts: every unit of work runs in isolation and the results
  /// are merged in source order.
  void setJobs(unsigned N) { Jobs = N; }
  unsigned jobs() const { return Jobs; }

  SourceManager &sources() { return SM; }
  DiagnosticEngine &diags() { return *Diags; }
  AstContext &ast() { return Ast; }
  TypeContext &types() { return TC; }
  GlobalSymbols &globals() { return Globals; }
  Elaborator &elaborator() { return *Elab; }

  /// Signature of a function checked in this compilation (null if
  /// unknown).
  const FuncSig *signatureOf(const std::string &Name) const {
    return Globals.findFunction(Name);
  }

  /// Enables held-key-set tracing: check() fills keyTrace() with one
  /// entry per checked statement.
  void enableKeyTrace() { TraceEnabled = true; }
  const std::vector<KeyTraceEntry> &keyTrace() const { return KeyTrace; }

  /// Wires a span tracer (--trace-json) through every pass: parsing,
  /// declaration registration, signature elaboration, fingerprinting,
  /// per-function flow checks (tagged with worker thread, fixpoint
  /// iteration count and cache status), cache I/O, and the merge.
  /// Null (the default) disables tracing; instrumentation sites then
  /// cost one branch each. Does not perturb cache fingerprints.
  void setTracer(Tracer *T) { Trc = T; }
  Tracer *tracer() const { return Trc; }

  /// Enables provenance recording (--explain): key-related diagnostics
  /// get notes explaining how the key got into (or left) the held set.
  /// Bypasses the result cache for the run — cached entries never
  /// contain provenance notes, and fingerprints stay untouched.
  void enableExplain() { ExplainEnabled = true; }
  bool explainEnabled() const { return ExplainEnabled; }

  /// The metrics registry populated by the last check() run: counters
  /// (check.*, cache.*, flow.*, keys.*, types.*) and histograms
  /// (flow.wall_ms, flow.peak_held_keys). Reset at the start of every
  /// check().
  const Metrics &metrics() const { return Reg; }

  /// Human-readable statistics dump (--stats): the classic counter
  /// block, histograms and slowest functions, then the sorted metrics
  /// registry. Stable-ordered; never depends on job count.
  std::string renderStatsText() const;

  /// Metrics registry as JSON (--stats-json).
  std::string renderStatsJson() const { return Reg.renderJson(); }

  /// Enables the incremental-check cache rooted at \p Dir (created on
  /// demand). check() then skips flow-checking any function whose
  /// fingerprint has a cached result, replaying its stored diagnostics
  /// instead — byte-identically, at any job count. Tracing disables
  /// the cache for the run (key traces are not cached).
  void setCacheDir(std::string Dir) { CacheDir = std::move(Dir); }
  const std::string &cacheDir() const { return CacheDir; }

  /// Backs the incremental-check cache with \p Store (the check
  /// server's warm in-memory cache) instead of a directory. The store
  /// must outlive the compiler; it persists across compilations, so a
  /// later VaultCompiler wired to the same store replays unchanged
  /// functions without re-checking them. Takes precedence over
  /// setCacheDir; null turns the memory backend off again.
  void setMemoryCache(CheckMemoryStore *Store) { MemCache = Store; }
  CheckMemoryStore *memoryCache() const { return MemCache; }

  /// Statistics of the last check() run.
  struct Stats {
    unsigned FunctionsChecked = 0;
    unsigned FunctionsWithBodies = 0;
    unsigned DeclsRegistered = 0;
    /// Functions whose bodies were actually flow-checked this run;
    /// FunctionsChecked minus cache replays.
    unsigned FlowChecksRun = 0;
    /// True when a cache directory was set and usable this run.
    bool CacheEnabled = false;
    unsigned CacheHits = 0;
    unsigned CacheMisses = 0;
    /// Cache misses whose function was previously cached under a
    /// different fingerprint — re-checks forced by an edit.
    unsigned CacheInvalidations = 0;
    /// Worker threads Pass 3 actually used.
    unsigned JobsUsed = 1;
    /// Per-function observability (source order), behind --stats.
    struct FuncStat {
      std::string Name;
      double WallMs = 0;        ///< Flow-check wall time.
      unsigned MaxHeldKeys = 0; ///< Peak held-key-set size.
    };
    std::vector<FuncStat> PerFunction;
  };
  const Stats &stats() const { return LastStats; }

private:
  void registerDecl(const Decl *D);
  /// Parses every queueSource'd buffer (concurrently at jobs > 1) and
  /// merges the results in input order. Runs at the start of check().
  void flushPendingParses();
  /// Pass 2 at jobs > 1: a parallel discovery pass counts each
  /// signature's key/state-variable allocations against scratch
  /// resources, slots are reserved by prefix sum, and the real
  /// elaboration then runs concurrently with every signature writing
  /// its pre-assigned key window — reproducing the serial numbering
  /// exactly. Results merge in source order.
  void elabSignaturesParallel(unsigned NJobs);
  /// Worker count for a phase with \p TaskCount independent tasks.
  /// Worker count for a phase with \p TaskCount tasks: the --jobs
  /// setting (0 = hardware concurrency) capped so no worker gets
  /// fewer than \p Grain tasks — phases with tiny per-task work pass
  /// a larger grain so thread spawn cost stays amortized.
  unsigned effectiveJobs(size_t TaskCount, size_t Grain = 1) const;

  struct PendingParse {
    std::string Name;
    uint32_t BufferId;
  };
  std::vector<PendingParse> PendingParses;

  std::vector<const FuncDecl *> PendingFuncs;
  std::map<const FuncDecl *, FuncSig *> SigOf;
  std::map<std::string, const FuncDecl *> FuncDeclByName;
  /// Re-declarations of one function name, in registration order:
  /// First was registered before Second, and exactly one of each pair
  /// is the kept (canonical) declaration. Pass 2 verifies the two
  /// signatures agree.
  std::vector<std::pair<const FuncDecl *, const FuncDecl *>> Redecls;

  SourceManager SM;
  std::unique_ptr<DiagnosticEngine> Diags;
  AstContext Ast;
  TypeContext TC;
  GlobalSymbols Globals;
  std::unique_ptr<Elaborator> Elab;
  Stats LastStats;
  Metrics Reg;
  Tracer *Trc = nullptr;
  unsigned Jobs = 1;
  bool ParseFailed = false;
  bool TraceEnabled = false;
  bool ExplainEnabled = false;
  /// Root of the incremental-check cache; empty = caching off.
  std::string CacheDir;
  /// In-memory cache backend; non-null wins over CacheDir.
  CheckMemoryStore *MemCache = nullptr;
  std::vector<KeyTraceEntry> KeyTrace;
  /// Range of Diags occupied by the previous check() run, erased on
  /// re-check so diagnostics are not duplicated.
  bool HasChecked = false;
  size_t CheckDiagBegin = 0;
  size_t CheckDiagEnd = 0;
};

/// Convenience: parse + check one source string; returns the compiler
/// for inspection.
std::unique_ptr<VaultCompiler> checkVaultSource(const std::string &Name,
                                                const std::string &Text);

} // namespace vault

#endif // VAULT_SEMA_CHECKER_H
