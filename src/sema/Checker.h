//===- Checker.h - Whole-program driver -------------------------*- C++ -*-===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The top-level Vault compiler front end: owns all per-compilation
/// state (sources, AST, types, diagnostics, global symbols), parses
/// Vault sources, registers declarations, elaborates signatures and
/// flow-checks every function body.
///
//===----------------------------------------------------------------------===//

#ifndef VAULT_SEMA_CHECKER_H
#define VAULT_SEMA_CHECKER_H

#include "sema/Elaborator.h"
#include "sema/FlowChecker.h"

#include <memory>

namespace vault {

/// One Vault compilation: sources in, diagnostics out.
///
/// Typical use:
/// \code
///   VaultCompiler C;
///   C.addSource("demo.vlt", Text);
///   bool Ok = C.check();
///   if (!Ok) puts(C.diags().render().c_str());
/// \endcode
class VaultCompiler {
public:
  VaultCompiler();

  /// Parses \p Text as a Vault compilation unit named \p Name.
  /// Returns false on syntax errors (which are also recorded in the
  /// diagnostics).
  bool addSource(const std::string &Name, const std::string &Text);

  /// Reads and parses a file. Returns false if unreadable or invalid.
  bool addFile(const std::string &Path);

  /// Runs declaration collection, signature elaboration, and the flow
  /// checker over every function with a body. Returns true iff no
  /// errors were reported (including earlier parse errors).
  bool check();

  SourceManager &sources() { return SM; }
  DiagnosticEngine &diags() { return *Diags; }
  AstContext &ast() { return Ast; }
  TypeContext &types() { return TC; }
  GlobalSymbols &globals() { return Globals; }
  Elaborator &elaborator() { return *Elab; }

  /// Signature of a function checked in this compilation (null if
  /// unknown).
  const FuncSig *signatureOf(const std::string &Name) const {
    return Globals.findFunction(Name);
  }

  /// Enables held-key-set tracing: check() fills keyTrace() with one
  /// entry per checked statement.
  void enableKeyTrace() { TraceEnabled = true; }
  const std::vector<KeyTraceEntry> &keyTrace() const { return KeyTrace; }

  /// Statistics of the last check() run.
  struct Stats {
    unsigned FunctionsChecked = 0;
    unsigned FunctionsWithBodies = 0;
    unsigned DeclsRegistered = 0;
  };
  const Stats &stats() const { return LastStats; }

private:
  void registerDecl(const Decl *D);

  std::vector<const FuncDecl *> PendingFuncs;
  std::map<const FuncDecl *, FuncSig *> SigOf;
  std::map<std::string, const FuncDecl *> FuncDeclByName;

  SourceManager SM;
  std::unique_ptr<DiagnosticEngine> Diags;
  AstContext Ast;
  TypeContext TC;
  GlobalSymbols Globals;
  std::unique_ptr<Elaborator> Elab;
  Stats LastStats;
  bool ParseFailed = false;
  bool TraceEnabled = false;
  std::vector<KeyTraceEntry> KeyTrace;
};

/// Convenience: parse + check one source string; returns the compiler
/// for inspection.
std::unique_ptr<VaultCompiler> checkVaultSource(const std::string &Name,
                                                const std::string &Text);

} // namespace vault

#endif // VAULT_SEMA_CHECKER_H
