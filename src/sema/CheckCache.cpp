//===- CheckCache.cpp -----------------------------------------------------===//

#include "sema/CheckCache.h"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#ifdef _WIN32
#include <process.h>
#define VAULT_GETPID _getpid
#else
#include <unistd.h>
#define VAULT_GETPID getpid
#endif

using namespace vault;

namespace fs = std::filesystem;

static constexpr const char *EntryMagic = "VFC 1";

void CheckCache::loadIndexFile(const std::string &Path, IndexMap &Out) {
  std::ifstream In(Path);
  std::string Line;
  while (std::getline(In, Line)) {
    size_t T1 = Line.find('\t');
    size_t T2 = T1 == std::string::npos ? T1 : Line.find('\t', T1 + 1);
    if (T2 == std::string::npos)
      continue;
    Fingerprint FP;
    if (!Fingerprint::fromHex(std::string_view(Line).substr(T2 + 1), FP))
      continue;
    Out[{Line.substr(0, T1), Line.substr(T1 + 1, T2 - T1 - 1)}] = FP;
  }
}

CheckCache::CheckCache(std::string Dir, std::string Unit, Tracer *Trc)
    : Dir(std::move(Dir)), Unit(std::move(Unit)), Trc(Trc) {
  TraceSpan Span(Trc, "cache-open");
  std::error_code EC;
  fs::create_directories(this->Dir, EC);
  if (EC || !fs::is_directory(this->Dir, EC))
    return;
  Usable = true;

  // Load the index; a missing file is a cold cache, a malformed row is
  // skipped (it only costs a spurious re-check). A concurrent writer
  // renaming a fresh index underneath this read is fine too: rename is
  // atomic, so either complete version may be seen.
  loadIndexFile(this->Dir + "/index.tsv", OldIndex);
}

CheckCache::CheckCache(CheckMemoryStore &Store, std::string Unit, Tracer *Trc)
    : Mem(&Store), Unit(std::move(Unit)), Trc(Trc) {
  TraceSpan Span(Trc, "cache-open");
  Usable = true;
  std::lock_guard<std::mutex> Lock(Store.Mu);
  OldIndex = Store.Index;
}

std::string CheckCache::entryPath(const Fingerprint &FP) const {
  return Dir + "/" + FP.hex() + ".vfc";
}

/// Writes \p Text to \p Path atomically (temp file + rename). The temp
/// name is unique per process and call — two writers racing on the
/// same entry (or the index) each stage their own whole file and the
/// renames land atomically in some order, so a reader never sees a
/// torn file. (A shared ".tmp" suffix would let writer A rename writer
/// B's half-written bytes into place.) Returns false on any filesystem
/// error.
static bool atomicWrite(const std::string &Path, const std::string &Text) {
  static std::atomic<uint64_t> Serial{0};
  std::string Tmp = Path + ".tmp." +
                    std::to_string(static_cast<long>(VAULT_GETPID())) + "." +
                    std::to_string(Serial.fetch_add(1));
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out)
      return false;
    Out << Text;
    if (!Out.flush())
      return false;
  }
  std::error_code EC;
  fs::rename(Tmp, Path, EC);
  if (EC) {
    fs::remove(Tmp, EC);
    return false;
  }
  return true;
}

std::optional<std::string> CheckCache::readEntry(const Fingerprint &FP) const {
  if (Mem) {
    std::lock_guard<std::mutex> Lock(Mem->Mu);
    auto It = Mem->Entries.find(FP.hex());
    if (It == Mem->Entries.end())
      return std::nullopt;
    return It->second;
  }
  std::ifstream In(entryPath(FP), std::ios::binary);
  if (!In)
    return std::nullopt;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

bool CheckCache::writeEntry(const Fingerprint &FP, const std::string &Text) {
  if (Mem) {
    std::lock_guard<std::mutex> Lock(Mem->Mu);
    Mem->Entries[FP.hex()] = Text;
    return true;
  }
  return atomicWrite(entryPath(FP), Text);
}

std::optional<CheckCache::CachedResult>
CheckCache::lookup(const std::string &FuncName, const FuncCacheKey &Key,
                   bool *Invalidated) {
  if (Invalidated)
    *Invalidated = false;
  if (!Usable)
    return std::nullopt;
  TraceSpan Span(Trc, "cache-read");
  Span.arg("function", FuncName);
  auto Miss = [&]() -> std::optional<CachedResult> {
    ++Misses;
    auto It = OldIndex.find({Unit, FuncName});
    if (It != OldIndex.end() && It->second != Key.FP) {
      ++Invalidations;
      if (Invalidated)
        *Invalidated = true;
    }
    return std::nullopt;
  };

  std::optional<std::string> Entry = readEntry(Key.FP);
  if (!Entry)
    return Miss();
  const std::string &Text = *Entry;

  // Header: magic line, then "max-held N".
  size_t Eol = Text.find('\n');
  if (Eol == std::string::npos || Text.substr(0, Eol) != EntryMagic)
    return Miss();
  size_t H2 = Text.find('\n', Eol + 1);
  if (H2 == std::string::npos)
    return Miss();
  std::string_view MaxLine(Text.data() + Eol + 1, H2 - Eol - 1);
  if (MaxLine.substr(0, 9) != "max-held ")
    return Miss();
  unsigned MaxHeld = 0;
  for (char C : MaxLine.substr(9)) {
    if (C < '0' || C > '9' || MaxHeld > 100000000)
      return Miss();
    MaxHeld = MaxHeld * 10 + static_cast<unsigned>(C - '0');
  }

  std::optional<std::vector<Diagnostic>> Diags = deserializeDiagnostics(
      std::string_view(Text).substr(H2 + 1), Key.BufferId, Key.ChunkBegin);
  if (!Diags)
    return Miss();

  ++Hits;
  NewRows[FuncName] = Key.FP;
  return CachedResult{std::move(*Diags), MaxHeld};
}

void CheckCache::store(const std::string &FuncName, const FuncCacheKey &Key,
                       unsigned MaxHeldKeys,
                       const std::vector<Diagnostic> &Diags) {
  if (!Usable)
    return;
  // Every valid location must sit inside the function's own chunk —
  // that is all that replay can rebase. Diagnostics pointing elsewhere
  // (possible in principle, not produced by the current checker) make
  // the result uncacheable, never wrong.
  auto InChunk = [&](SourceLoc L) {
    return !L.isValid() ||
           (L.BufferId == Key.BufferId && L.Offset >= Key.ChunkBegin &&
            L.Offset < Key.ChunkEnd);
  };
  for (const Diagnostic &D : Diags) {
    if (!InChunk(D.Loc))
      return;
    for (const auto &N : D.Notes)
      if (!InChunk(N.first))
        return;
  }

  std::string Text = EntryMagic;
  Text += "\nmax-held " + std::to_string(MaxHeldKeys) + "\n";
  Text += serializeDiagnostics(Diags, Key.ChunkBegin);
  if (writeEntry(Key.FP, Text))
    NewRows[FuncName] = Key.FP;
}

void CheckCache::finalizeRun() {
  if (!Usable)
    return;
  TraceSpan Span(Trc, "cache-finalize");

  if (Mem) {
    // The in-memory backend finalizes under one lock: replace this
    // unit's rows, then prune entries no row references. No other
    // writer can interleave, so this is exact.
    std::lock_guard<std::mutex> Lock(Mem->Mu);
    for (auto It = Mem->Index.begin(); It != Mem->Index.end();)
      It = It->first.first == Unit ? Mem->Index.erase(It) : std::next(It);
    for (const auto &[Func, FP] : NewRows)
      Mem->Index[{Unit, Func}] = FP;
    std::set<std::string> Live;
    for (const auto &[K, FP] : Mem->Index)
      Live.insert(FP.hex());
    for (auto It = Mem->Entries.begin(); It != Mem->Entries.end();)
      It = Live.count(It->first) ? std::next(It) : Mem->Entries.erase(It);
    return;
  }

  // Re-read the index rather than merging against the open-time
  // snapshot: a concurrent run (another CLI, another daemon request)
  // may have rewritten it since, and its rows for other units must
  // survive our rewrite. This narrows the lost-update window to the
  // read-merge-rename race below, which two same-unit writers settle
  // last-writer-wins — the loser's rows degrade to cache misses on the
  // next run, never to wrong replays (entries are content-addressed,
  // so an index row can direct a lookup at worst to a miss).
  IndexMap Fresh;
  loadIndexFile(Dir + "/index.tsv", Fresh);

  // Merge: keep other units' freshest rows, replace this unit's.
  IndexMap Merged;
  for (const auto &[K, FP] : Fresh)
    if (K.first != Unit)
      Merged[K] = FP;
  for (const auto &[Func, FP] : NewRows)
    Merged[{Unit, Func}] = FP;

  std::string Text;
  for (const auto &[K, FP] : Merged)
    Text += K.first + "\t" + K.second + "\t" + FP.hex() + "\n";
  if (!atomicWrite(Dir + "/index.tsv", Text))
    return;

  // Prune entry files this unit used to reference and nothing
  // references anymore — per the open-time *and* the just-read index,
  // so an entry a concurrent writer started referencing since we
  // opened is left alone.
  std::set<std::string> Live;
  for (const auto &[K, FP] : Merged)
    Live.insert(FP.hex());
  for (const auto &[K, FP] : Fresh)
    Live.insert(FP.hex());
  for (const auto &[K, FP] : OldIndex) {
    if (K.first != Unit || Live.count(FP.hex()))
      continue;
    std::error_code EC;
    fs::remove(entryPath(FP), EC);
  }
}
