//===- CheckCache.cpp -----------------------------------------------------===//

#include "sema/CheckCache.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

using namespace vault;

namespace fs = std::filesystem;

static constexpr const char *EntryMagic = "VFC 1";

CheckCache::CheckCache(std::string Dir, std::string Unit, Tracer *Trc)
    : Dir(std::move(Dir)), Unit(std::move(Unit)), Trc(Trc) {
  TraceSpan Span(Trc, "cache-open");
  std::error_code EC;
  fs::create_directories(this->Dir, EC);
  if (EC || !fs::is_directory(this->Dir, EC))
    return;
  Usable = true;

  // Load the index; a missing file is a cold cache, a malformed row is
  // skipped (it only costs a spurious re-check).
  std::ifstream In(this->Dir + "/index.tsv");
  std::string Line;
  while (std::getline(In, Line)) {
    size_t T1 = Line.find('\t');
    size_t T2 = T1 == std::string::npos ? T1 : Line.find('\t', T1 + 1);
    if (T2 == std::string::npos)
      continue;
    Fingerprint FP;
    if (!Fingerprint::fromHex(std::string_view(Line).substr(T2 + 1), FP))
      continue;
    OldIndex[{Line.substr(0, T1), Line.substr(T1 + 1, T2 - T1 - 1)}] = FP;
  }
}

std::string CheckCache::entryPath(const Fingerprint &FP) const {
  return Dir + "/" + FP.hex() + ".vfc";
}

/// Writes \p Text to \p Path atomically (temp file + rename). Returns
/// false on any filesystem error.
static bool atomicWrite(const std::string &Path, const std::string &Text) {
  std::string Tmp = Path + ".tmp";
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out)
      return false;
    Out << Text;
    if (!Out.flush())
      return false;
  }
  std::error_code EC;
  fs::rename(Tmp, Path, EC);
  if (EC) {
    fs::remove(Tmp, EC);
    return false;
  }
  return true;
}

std::optional<CheckCache::CachedResult>
CheckCache::lookup(const std::string &FuncName, const FuncCacheKey &Key,
                   bool *Invalidated) {
  if (Invalidated)
    *Invalidated = false;
  if (!Usable)
    return std::nullopt;
  TraceSpan Span(Trc, "cache-read");
  Span.arg("function", FuncName);
  auto Miss = [&]() -> std::optional<CachedResult> {
    ++Misses;
    auto It = OldIndex.find({Unit, FuncName});
    if (It != OldIndex.end() && It->second != Key.FP) {
      ++Invalidations;
      if (Invalidated)
        *Invalidated = true;
    }
    return std::nullopt;
  };

  std::ifstream In(entryPath(Key.FP), std::ios::binary);
  if (!In)
    return Miss();
  std::ostringstream Buf;
  Buf << In.rdbuf();
  std::string Text = Buf.str();

  // Header: magic line, then "max-held N".
  size_t Eol = Text.find('\n');
  if (Eol == std::string::npos || Text.substr(0, Eol) != EntryMagic)
    return Miss();
  size_t H2 = Text.find('\n', Eol + 1);
  if (H2 == std::string::npos)
    return Miss();
  std::string_view MaxLine(Text.data() + Eol + 1, H2 - Eol - 1);
  if (MaxLine.substr(0, 9) != "max-held ")
    return Miss();
  unsigned MaxHeld = 0;
  for (char C : MaxLine.substr(9)) {
    if (C < '0' || C > '9' || MaxHeld > 100000000)
      return Miss();
    MaxHeld = MaxHeld * 10 + static_cast<unsigned>(C - '0');
  }

  std::optional<std::vector<Diagnostic>> Diags = deserializeDiagnostics(
      std::string_view(Text).substr(H2 + 1), Key.BufferId, Key.ChunkBegin);
  if (!Diags)
    return Miss();

  ++Hits;
  NewRows[FuncName] = Key.FP;
  return CachedResult{std::move(*Diags), MaxHeld};
}

void CheckCache::store(const std::string &FuncName, const FuncCacheKey &Key,
                       unsigned MaxHeldKeys,
                       const std::vector<Diagnostic> &Diags) {
  if (!Usable)
    return;
  // Every valid location must sit inside the function's own chunk —
  // that is all that replay can rebase. Diagnostics pointing elsewhere
  // (possible in principle, not produced by the current checker) make
  // the result uncacheable, never wrong.
  auto InChunk = [&](SourceLoc L) {
    return !L.isValid() ||
           (L.BufferId == Key.BufferId && L.Offset >= Key.ChunkBegin &&
            L.Offset < Key.ChunkEnd);
  };
  for (const Diagnostic &D : Diags) {
    if (!InChunk(D.Loc))
      return;
    for (const auto &N : D.Notes)
      if (!InChunk(N.first))
        return;
  }

  std::string Text = EntryMagic;
  Text += "\nmax-held " + std::to_string(MaxHeldKeys) + "\n";
  Text += serializeDiagnostics(Diags, Key.ChunkBegin);
  if (atomicWrite(entryPath(Key.FP), Text))
    NewRows[FuncName] = Key.FP;
}

void CheckCache::finalizeRun() {
  if (!Usable)
    return;
  TraceSpan Span(Trc, "cache-finalize");

  // Merge: keep other units' rows, replace this unit's.
  std::map<std::pair<std::string, std::string>, Fingerprint> Merged;
  for (const auto &[K, FP] : OldIndex)
    if (K.first != Unit)
      Merged[K] = FP;
  for (const auto &[Func, FP] : NewRows)
    Merged[{Unit, Func}] = FP;

  std::string Text;
  for (const auto &[K, FP] : Merged)
    Text += K.first + "\t" + K.second + "\t" + FP.hex() + "\n";
  if (!atomicWrite(Dir + "/index.tsv", Text))
    return;

  // Prune entry files this unit used to reference and nothing
  // references anymore.
  std::set<std::string> Live;
  for (const auto &[K, FP] : Merged)
    Live.insert(FP.hex());
  for (const auto &[K, FP] : OldIndex) {
    if (K.first != Unit || Live.count(FP.hex()))
      continue;
    std::error_code EC;
    fs::remove(entryPath(FP), EC);
  }
}
