//===- CheckCache.h - On-disk per-function result cache ---------*- C++ -*-===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The incremental checker's on-disk cache. Entries are
/// content-addressed: `<dir>/<fingerprint>.vfc` holds the flow-check
/// result (diagnostics with chunk-relative locations, peak held-key
/// count) of any function whose FuncCacheKey hashes to that
/// fingerprint. A sidecar `index.tsv` maps (compilation unit, function
/// name) to the fingerprint of the last run, which is what makes
/// invalidation observable: a function whose name is indexed under a
/// different fingerprint was edited (or something it depends on was).
///
/// Different compilation units (vaultc input sets) may share one cache
/// directory; entry files are shared by content, index rows are scoped
/// by unit so runs on different programs never invalidate each other.
///
/// All writes go through a temp file + rename, so a crashed or
/// concurrent run leaves whole files, never torn ones.
///
//===----------------------------------------------------------------------===//

#ifndef VAULT_SEMA_CHECKCACHE_H
#define VAULT_SEMA_CHECKCACHE_H

#include "sema/Fingerprint.h"
#include "support/Diagnostics.h"
#include "support/Trace.h"

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace vault {

class CheckCache {
public:
  /// A replayable flow-check result.
  struct CachedResult {
    std::vector<Diagnostic> Diags; ///< Locations already rebased.
    unsigned MaxHeldKeys = 0;
  };

  /// Opens the cache at \p Dir, creating the directory if needed, and
  /// loads the index. \p Unit identifies the current compilation's
  /// input set; index rows are scoped to it. On any filesystem error
  /// the cache degrades to unusable (and the checker runs uncached).
  /// \p Trc, when non-null, receives "cache-open" / "cache-read" /
  /// "cache-finalize" spans for --trace-json.
  CheckCache(std::string Dir, std::string Unit, Tracer *Trc = nullptr);

  bool usable() const { return Usable; }

  /// Looks up \p Key's fingerprint; on a hit, returns the stored
  /// result with diagnostic locations rebased onto the function's
  /// current chunk position. A corrupt or unreadable entry is a miss.
  /// \p Invalidated, when non-null, is set to true iff this lookup was
  /// a miss for a function the index knew under a different fingerprint
  /// (the per-function "invalidated" trace tag).
  std::optional<CachedResult> lookup(const std::string &FuncName,
                                     const FuncCacheKey &Key,
                                     bool *Invalidated = nullptr);

  /// Stores a freshly computed result under \p Key's fingerprint.
  /// Quietly declines when a diagnostic points outside the function's
  /// own chunk (replay could not rebase it) or on filesystem errors.
  void store(const std::string &FuncName, const FuncCacheKey &Key,
             unsigned MaxHeldKeys, const std::vector<Diagnostic> &Diags);

  /// Rewrites the index with this run's rows (other units' rows are
  /// kept) and deletes entry files that no index row references
  /// anymore. Call once, after all lookups and stores.
  void finalizeRun();

  unsigned hits() const { return Hits; }
  unsigned misses() const { return Misses; }
  /// Misses for functions the index knew under a different
  /// fingerprint — i.e. re-checks forced by an edit.
  unsigned invalidations() const { return Invalidations; }

private:
  std::string entryPath(const Fingerprint &FP) const;

  std::string Dir;
  std::string Unit;
  Tracer *Trc = nullptr;
  bool Usable = false;

  /// index.tsv rows: (unit, function) -> fingerprint.
  std::map<std::pair<std::string, std::string>, Fingerprint> OldIndex;
  /// Rows this run produced (always for Unit).
  std::map<std::string, Fingerprint> NewRows;

  unsigned Hits = 0, Misses = 0, Invalidations = 0;
};

} // namespace vault

#endif // VAULT_SEMA_CHECKCACHE_H
