//===- CheckCache.h - Per-function result cache -----------------*- C++ -*-===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The incremental checker's result cache. Entries are
/// content-addressed: `<fingerprint>.vfc` holds the flow-check result
/// (diagnostics with chunk-relative locations, peak held-key count) of
/// any function whose FuncCacheKey hashes to that fingerprint. A
/// sidecar index maps (compilation unit, function name) to the
/// fingerprint of the last run, which is what makes invalidation
/// observable: a function whose name is indexed under a different
/// fingerprint was edited (or something it depends on was).
///
/// Two storage backends share the entry format byte for byte:
///
/// - On disk (`--cache-dir`): `<dir>/<fingerprint>.vfc` plus
///   `index.tsv`. Different compilation units (vaultc input sets) may
///   share one cache directory; entry files are shared by content,
///   index rows are scoped by unit so runs on different programs never
///   invalidate each other.
/// - In memory (CheckMemoryStore): the same entries and index rows in
///   a mutex-guarded map. This is the check server's warm cache — it
///   outlives individual VaultCompiler runs and may be shared by many
///   sessions.
///
/// Concurrency contract for a shared cache directory (daemon + CLI, or
/// several daemon requests): all writes go through a uniquely-named
/// temp file + rename, so another process only ever observes whole
/// files; the index is reloaded at finalize so concurrent writers'
/// rows for other units survive; and any torn or stale observation
/// degrades to a cache miss (a spurious re-check), never to a crash or
/// a wrong replay.
///
//===----------------------------------------------------------------------===//

#ifndef VAULT_SEMA_CHECKCACHE_H
#define VAULT_SEMA_CHECKCACHE_H

#include "sema/Fingerprint.h"
#include "support/Diagnostics.h"
#include "support/Trace.h"

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace vault {

/// Process-lifetime storage for CheckCache entries: the daemon's warm
/// cache. Thread-safe; a CheckCache borrows it for one check() run,
/// and many runs (or sessions) may share one store. Entries use
/// exactly the on-disk byte format, so replay semantics — including
/// byte-identical diagnostics — are the same warm-from-memory as
/// warm-from-disk.
class CheckMemoryStore {
public:
  /// Number of distinct cached results currently held.
  size_t entryCount() const {
    std::lock_guard<std::mutex> Lock(Mu);
    return Entries.size();
  }
  /// Drops every entry and index row.
  void clear() {
    std::lock_guard<std::mutex> Lock(Mu);
    Entries.clear();
    Index.clear();
  }

private:
  friend class CheckCache;
  mutable std::mutex Mu;
  /// Fingerprint hex -> serialized entry (the .vfc byte format).
  std::map<std::string, std::string> Entries;
  /// (unit, function) -> fingerprint of the last stored result.
  std::map<std::pair<std::string, std::string>, Fingerprint> Index;
};

class CheckCache {
public:
  /// A replayable flow-check result.
  struct CachedResult {
    std::vector<Diagnostic> Diags; ///< Locations already rebased.
    unsigned MaxHeldKeys = 0;
  };

  /// Opens the on-disk cache at \p Dir, creating the directory if
  /// needed, and loads the index. \p Unit identifies the current
  /// compilation's input set; index rows are scoped to it. On any
  /// filesystem error the cache degrades to unusable (and the checker
  /// runs uncached). \p Trc, when non-null, receives "cache-open" /
  /// "cache-read" / "cache-finalize" spans for --trace-json.
  CheckCache(std::string Dir, std::string Unit, Tracer *Trc = nullptr);

  /// Opens a cache over \p Store instead of a directory. Always
  /// usable; entries persist for the store's lifetime.
  CheckCache(CheckMemoryStore &Store, std::string Unit, Tracer *Trc = nullptr);

  bool usable() const { return Usable; }

  /// Looks up \p Key's fingerprint; on a hit, returns the stored
  /// result with diagnostic locations rebased onto the function's
  /// current chunk position. A corrupt or unreadable entry is a miss.
  /// \p Invalidated, when non-null, is set to true iff this lookup was
  /// a miss for a function the index knew under a different fingerprint
  /// (the per-function "invalidated" trace tag).
  std::optional<CachedResult> lookup(const std::string &FuncName,
                                     const FuncCacheKey &Key,
                                     bool *Invalidated = nullptr);

  /// Stores a freshly computed result under \p Key's fingerprint.
  /// Quietly declines when a diagnostic points outside the function's
  /// own chunk (replay could not rebase it) or on filesystem errors.
  void store(const std::string &FuncName, const FuncCacheKey &Key,
             unsigned MaxHeldKeys, const std::vector<Diagnostic> &Diags);

  /// Rewrites the index with this run's rows (other units' rows are
  /// kept — re-read from disk at this point, so rows a concurrent
  /// writer added since the cache was opened survive) and deletes
  /// entry files that no index row references anymore. Call once,
  /// after all lookups and stores.
  void finalizeRun();

  unsigned hits() const { return Hits; }
  unsigned misses() const { return Misses; }
  /// Misses for functions the index knew under a different
  /// fingerprint — i.e. re-checks forced by an edit.
  unsigned invalidations() const { return Invalidations; }

private:
  using IndexMap = std::map<std::pair<std::string, std::string>, Fingerprint>;

  std::string entryPath(const Fingerprint &FP) const;
  /// Fetches the serialized entry for \p FP from whichever backend is
  /// active; nullopt when absent.
  std::optional<std::string> readEntry(const Fingerprint &FP) const;
  /// Writes the serialized entry; returns false on failure.
  bool writeEntry(const Fingerprint &FP, const std::string &Text);
  /// Parses index.tsv rows from \p Path into \p Out (malformed rows
  /// skipped — they only cost a spurious re-check).
  static void loadIndexFile(const std::string &Path, IndexMap &Out);

  std::string Dir;
  CheckMemoryStore *Mem = nullptr;
  std::string Unit;
  Tracer *Trc = nullptr;
  bool Usable = false;

  /// Index rows as of open time: (unit, function) -> fingerprint.
  IndexMap OldIndex;
  /// Rows this run produced (always for Unit).
  std::map<std::string, Fingerprint> NewRows;

  unsigned Hits = 0, Misses = 0, Invalidations = 0;
};

} // namespace vault

#endif // VAULT_SEMA_CHECKCACHE_H
