//===- FlowChecker.cpp ----------------------------------------------------===//

#include "sema/FlowChecker.h"

using namespace vault;

//===----------------------------------------------------------------------===//
// Infrastructure
//===----------------------------------------------------------------------===//

void FlowChecker::report(DiagId Id, SourceLoc Loc, const std::string &Msg) {
  Diags.report(Id, Loc, Msg);
}

void FlowChecker::note(SourceLoc Loc, const std::string &Msg) {
  Diags.note(Loc, Msg);
}

void FlowChecker::provStep(FlowState &St, KeySym K, SourceLoc Loc,
                           const std::string &Desc) {
  if (Explain)
    St.Prov[K].push_back(ProvStep{Loc, Desc});
}

void FlowChecker::explainKey(const FlowState &St, KeySym K) {
  if (!Explain || Diags.isSuppressed())
    return;
  auto It = St.Prov.find(K);
  if (It == St.Prov.end())
    return;
  for (const ProvStep &P : It->second)
    note(P.Loc, "key " + keyDesc(K) + " " + P.Desc);
}

void FlowChecker::pushScope() {
  ElabScope *Parent = Scopes.empty() ? nullptr : Scopes.back().Scope.get();
  ScopeFrame F;
  F.Scope = std::make_unique<ElabScope>(Parent);
  Scopes.push_back(std::move(F));
}

void FlowChecker::popScope(FlowState &St) {
  assert(!Scopes.empty() && "scope underflow");
  for (const void *Id : Scopes.back().DeclaredIds)
    St.Vars.erase(Id);
  Scopes.pop_back();
}

void FlowChecker::bindLocal(const std::string &Name,
                            ElabScope::ValueInfo Info) {
  scope().bindValue(Name, Info);
  Scopes.back().DeclaredIds.push_back(Info.Id);
  LocalIds.insert(Info.Id);
}

//===----------------------------------------------------------------------===//
// Access checking (type guards)
//===----------------------------------------------------------------------===//

const Type *FlowChecker::peelGuards(const Type *T, SourceLoc Loc,
                                    FlowState &St,
                                    std::vector<GuardedType::Guard> *Collect) {
  while (const auto *G = dyn_cast<GuardedType>(T)) {
    for (const GuardedType::Guard &Gu : G->guards()) {
      if (Collect)
        Collect->push_back(Gu);
      if (!St.Held.contains(Gu.Key)) {
        report(DiagId::FlowGuardNotHeld, Loc,
               "cannot access data guarded by key " + keyDesc(Gu.Key) +
                   ": the key is not in the held-key set");
        explainKey(St, Gu.Key);
        continue;
      }
      const StateRef &Held = St.Held.stateOf(Gu.Key);
      if (!stateSatisfies(Held, Gu.Required, TC.keys().order(Gu.Key))) {
        report(DiagId::FlowGuardWrongState, Loc,
               "key " + keyDesc(Gu.Key) + " is held in state '" + Held.str() +
                   "' but the guard requires '" + Gu.Required.str() + "'");
        explainKey(St, Gu.Key);
      }
    }
    T = G->inner();
  }
  return T;
}

void FlowChecker::checkBorrowGuards(KeySym K, const StateRef *NewState,
                                    SourceLoc Loc, FlowState &St) {
  for (const auto &[B, Info] : St.Borrows) {
    if (!St.Held.contains(B))
      continue;
    for (const GuardedType::Guard &Gu : Info.Guards) {
      if (Gu.Key != K)
        continue;
      if (NewState && stateSatisfies(*NewState, Gu.Required,
                                     TC.keys().order(K)))
        continue; // Transition keeps the guard satisfied.
      report(DiagId::FlowGuardedBorrowLive, Loc,
             NewState ? "cannot move guard key " + keyDesc(K) +
                            " out of state '" + Gu.Required.str() +
                            "' while borrow " + keyDesc(B) +
                            " guarded by it is still live"
                      : "cannot give up guard key " + keyDesc(K) +
                            " while borrow " + keyDesc(B) +
                            " guarded by it is still live");
      explainKey(St, B);
    }
  }
}

const Type *FlowChecker::requireAccess(const Type *T, SourceLoc Loc,
                                       FlowState &St) {
  for (;;) {
    if (isa<GuardedType>(T)) {
      T = peelGuards(T, Loc, St);
      continue;
    }
    if (const auto *Tr = dyn_cast<TrackedType>(T)) {
      if (!St.Held.contains(Tr->key())) {
        report(DiagId::FlowKeyNotHeld, Loc,
               "cannot access tracked object: its key " +
                   keyDesc(Tr->key()) + " is not in the held-key set");
        explainKey(St, Tr->key());
      }
      T = Tr->inner();
      continue;
    }
    return T;
  }
}

//===----------------------------------------------------------------------===//
// Packing and unpacking
//===----------------------------------------------------------------------===//

void FlowChecker::packValue(const Type *ParamT, const Type *ArgT,
                            SourceLoc Loc, FlowState &St, const Subst &S) {
  if (!ParamT || !ArgT)
    return;
  if (const auto *Anon = dyn_cast<AnonTrackedType>(ParamT)) {
    if (const auto *ArgTr = dyn_cast<TrackedType>(ArgT)) {
      KeySym K = ArgTr->key();
      if (!St.Held.contains(K)) {
        report(DiagId::FlowKeyNotHeld, Loc,
               "cannot give up key " + keyDesc(K) +
                   ": it is not in the held-key set");
        explainKey(St, K);
        return;
      }
      const StateRef Req = substState(Anon->state(), S);
      if (!stateSatisfies(St.Held.stateOf(K), Req, TC.keys().order(K))) {
        report(DiagId::FlowKeyWrongState, Loc,
               "key " + keyDesc(K) + " is in state '" +
                   St.Held.stateOf(K).str() + "' but must be in '" +
                   Req.str() + "' to be packed here");
        explainKey(St, K);
      }
      checkBorrowGuards(K, nullptr, Loc, St);
      St.Held.remove(K);
      ++KeysetOps;
      provStep(St, K, Loc, "was given up (packed into an existential) here");
      return;
    }
    if (isa<AnonTrackedType>(ArgT))
      return; // Already packed.
    // Packing a compound rvalue (e.g. a tuple with tracked elements):
    // consume the keys bound into its existential positions.
    packValue(Anon->inner(), ArgT, Loc, St, S);
    return;
  }
  if (const auto *Tr = dyn_cast<TrackedType>(ParamT)) {
    // A named tracked position whose key is an existential placeholder
    // packs (consumes) the argument's key; a signature key borrows it.
    if (TC.keys().origin(Tr->key()) == KeyTable::Origin::Existential) {
      KeySym K = S.mapKey(Tr->key());
      if (K != Tr->key()) {
        if (!St.Held.contains(K)) {
          report(DiagId::FlowKeyNotHeld, Loc,
                 "cannot give up key " + keyDesc(K) +
                     ": it is not in the held-key set");
          explainKey(St, K);
        } else {
          checkBorrowGuards(K, nullptr, Loc, St);
          St.Held.remove(K);
          ++KeysetOps;
          provStep(St, K, Loc,
                   "was given up (packed into a tracked position) here");
        }
      }
    }
    return;
  }
  if (const auto *Tu = dyn_cast<TupleType>(ParamT)) {
    const auto *ArgTu = dyn_cast<TupleType>(ArgT);
    if (!ArgTu || ArgTu->elems().size() != Tu->elems().size())
      return;
    for (size_t I = 0; I != Tu->elems().size(); ++I)
      packValue(Tu->elems()[I], ArgTu->elems()[I], Loc, St, S);
    return;
  }
  if (const auto *G = dyn_cast<GuardedType>(ParamT)) {
    if (const auto *ArgG = dyn_cast<GuardedType>(ArgT))
      packValue(G->inner(), ArgG->inner(), Loc, St, S);
    return;
  }
}

const Type *FlowChecker::unpackValue(const AnonTrackedType *Anon,
                                     SourceLoc Loc, FlowState &St,
                                     const std::string &KeyName,
                                     std::map<KeySym, KeySym> *SharedFresh) {
  std::map<KeySym, KeySym> LocalFresh;
  std::map<KeySym, KeySym> &Fresh = SharedFresh ? *SharedFresh : LocalFresh;
  const Type *Inner = Elab.instantiateExistentials(Anon->inner(), Loc, Fresh);
  // Keys instantiated from internal existentials become held.
  for (const auto &[Old, New] : Fresh) {
    (void)Old;
    if (!St.Held.contains(New)) {
      St.Held.add(New, StateRef::top());
      ++KeysetOps;
      provStep(St, New, Loc,
               "was acquired by instantiating an existential here");
    }
  }
  KeySym K = TC.keys().create(KeyName.empty() ? "unpacked" : KeyName,
                              KeyTable::Origin::Local, Loc);
  if (!St.Held.add(K, Anon->state().isVar() ? StateRef::top() : Anon->state()))
    report(DiagId::FlowKeyAlreadyHeld, Loc, "internal: fresh key collision");
  ++KeysetOps;
  provStep(St, K, Loc, "was acquired by unpacking a tracked value here");
  return TC.make<TrackedType>(Inner, K);
}

//===----------------------------------------------------------------------===//
// Initialization / assignment coercion
//===----------------------------------------------------------------------===//

const Type *FlowChecker::coerceInit(const Type *DeclType, ExprResult From,
                                    SourceLoc Loc, FlowState &St,
                                    const std::string &BinderName) {
  const Type *FromT = From.Ty;
  if (!DeclType || !FromT)
    return ErrTy();
  if (DeclType->kind() == TyKind::Error || FromT->kind() == TyKind::Error)
    return ErrTy();

  if (const auto *Anon = dyn_cast<AnonTrackedType>(DeclType)) {
    if (const auto *Tr = dyn_cast<TrackedType>(FromT)) {
      // Named tracked value bound to a tracked variable: the variable
      // shares the singleton type (alias of the same resource).
      Subst S;
      if (!Elab.unify(Anon->inner(), Tr->inner(), S, nullptr) &&
          !typeEquals(Anon->inner(), Tr->inner())) {
        report(DiagId::SemaTypeMismatch, Loc,
               "cannot initialize variable of type '" +
                   typeStr(DeclType, TC.keys()) + "' from '" +
                   typeStr(FromT, TC.keys()) + "'");
        return ErrTy();
      }
      if (!BinderName.empty())
        scope().rebindKey(BinderName, Tr->key());
      return FromT;
    }
    if (const auto *FA = dyn_cast<AnonTrackedType>(FromT)) {
      Subst S;
      if (!Elab.unify(Anon->inner(), FA->inner(), S, nullptr)) {
        report(DiagId::SemaTypeMismatch, Loc,
               "cannot initialize variable of type '" +
                   typeStr(DeclType, TC.keys()) + "' from '" +
                   typeStr(FromT, TC.keys()) + "'");
        return ErrTy();
      }
      // Packed rvalue: unpack into the variable (fresh key).
      const Type *T = unpackValue(FA, Loc, St, BinderName);
      if (!BinderName.empty())
        scope().rebindKey(BinderName, cast<TrackedType>(T)->key());
      return T;
    }
    report(DiagId::SemaTypeMismatch, Loc,
           "tracked variable requires a tracked initializer, got '" +
               typeStr(FromT, TC.keys()) + "'");
    return ErrTy();
  }

  // Guarded-to-guarded with matching guard sets recurses on the inner
  // types, so a packed guarded rvalue (e.g. a `guarded<M> tracked T`
  // return value) unpacks into a guarded location — generating the
  // fresh key and binding the declared binder — while keeping the
  // guards on the location's flow type.
  if (const auto *GD = dyn_cast<GuardedType>(DeclType)) {
    if (const auto *GF = dyn_cast<GuardedType>(FromT);
        GF && GD->guards().size() == GF->guards().size()) {
      bool SameGuards = true;
      for (size_t I = 0; I != GD->guards().size(); ++I)
        if (GD->guards()[I].Key != GF->guards()[I].Key ||
            !(GD->guards()[I].Required == GF->guards()[I].Required))
          SameGuards = false;
      if (SameGuards) {
        ExprResult InnerFrom = From;
        InnerFrom.Ty = GF->inner();
        const Type *InnerT =
            coerceInit(GD->inner(), InnerFrom, Loc, St, BinderName);
        if (!InnerT || InnerT->kind() == TyKind::Error)
          return ErrTy();
        std::vector<GuardedType::Guard> Gs(GD->guards().begin(),
                                           GD->guards().end());
        return TC.make<GuardedType>(std::move(Gs), InnerT);
      }
    }
  }

  if (typeEquals(DeclType, FromT))
    return FromT;

  // A declared type may contain local state variables bound by the
  // initializer (`KIRQL<old> saved = KeAcquireSpinLock(lock);`).
  {
    FuncSig StateBindView;
    StateBindView.NumStateVars = 1;
    Subst S;
    if (Elab.unify(DeclType, FromT, S, &StateBindView) &&
        !S.StateVars.empty())
      return substType(TC, DeclType, S);
  }

  // Reading a guarded value into an unguarded location is an access.
  if (const auto *G = dyn_cast<GuardedType>(FromT)) {
    if (typeEquals(DeclType, G->inner())) {
      requireAccess(FromT, Loc, St);
      return DeclType;
    }
  }
  // Storing an unguarded value into a guarded location is fine — the
  // guard describes when the location is accessible.
  if (const auto *G = dyn_cast<GuardedType>(DeclType)) {
    if (typeEquals(G->inner(), FromT))
      return DeclType;
  }

  report(DiagId::SemaTypeMismatch, Loc,
         "cannot initialize variable of type '" +
             typeStr(DeclType, TC.keys()) + "' from '" +
             typeStr(FromT, TC.keys()) + "'");
  return ErrTy();
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

FlowChecker::ExprResult FlowChecker::checkName(const NameExpr *E,
                                               FlowState &St) {
  const ElabScope::ValueInfo *V = scope().findValue(E->name());
  if (V) {
    if (V->Func)
      return ExprResult{TC.make<FuncType>(V->Func), false, V->Id};
    auto It = St.Vars.find(V->Id);
    if (It != St.Vars.end()) {
      if (!It->second) {
        report(DiagId::FlowUninitialized, E->loc(),
               "variable '" + E->name() + "' may be used uninitialized");
        return ExprResult{ErrTy(), true, V->Id};
      }
      return ExprResult{It->second, true, V->Id};
    }
    // Captured from an enclosing function.
    if (!V->DeclaredType)
      return ExprResult{ErrTy(), false, V->Id};
    if (typeCarriesKeys(V->DeclaredType) ||
        V->DeclaredType->kind() == TyKind::Guarded) {
      report(DiagId::FlowCaptureTracked, E->loc(),
             "nested function cannot capture '" + E->name() +
                 "': its type carries keys");
      return ExprResult{ErrTy(), false, V->Id};
    }
    return ExprResult{V->DeclaredType, false, V->Id};
  }
  if (FuncSig *F = Elab.globals().findFunction(E->name()))
    return ExprResult{TC.make<FuncType>(F), false, nullptr};
  report(DiagId::SemaUnknownName, E->loc(),
         "unknown name '" + E->name() + "'");
  return ExprResult{ErrTy(), false, nullptr};
}

FlowChecker::ExprResult
FlowChecker::checkCall(const FuncSig *CalleeSig,
                       const std::vector<Expr *> &Args, SourceLoc Loc,
                       FlowState &St) {
  if (!CalleeSig)
    return ExprResult{ErrTy(), false, nullptr};
  if (Args.size() != CalleeSig->ParamTypes.size()) {
    report(DiagId::SemaArity, Loc,
           "'" + CalleeSig->Name + "' expects " +
               std::to_string(CalleeSig->ParamTypes.size()) +
               " argument(s), got " + std::to_string(Args.size()));
    return ExprResult{ErrTy(), false, nullptr};
  }

  Subst S;
  std::vector<const Type *> ArgTypes(Args.size());
  for (size_t I = 0; I != Args.size(); ++I) {
    const Type *ParamT = CalleeSig->ParamTypes[I];
    ExprResult R = checkExpr(Args[I], St, substType(TC, ParamT, S));
    ArgTypes[I] = R.Ty;
    if (!R.Ty)
      continue;
    if (Elab.unify(ParamT, R.Ty, S, CalleeSig)) {
      packValue(substType(TC, ParamT, S), R.Ty, Args[I]->loc(), St, S);
      continue;
    }
    // Reading a guarded argument into an unguarded parameter is an
    // access.
    if (const auto *G = dyn_cast<GuardedType>(R.Ty)) {
      const Type *Peeled = requireAccess(R.Ty, Args[I]->loc(), St);
      (void)G;
      if (Elab.unify(ParamT, Peeled, S, CalleeSig))
        continue;
    }
    report(DiagId::SemaTypeMismatch, Args[I]->loc(),
           "argument " + std::to_string(I + 1) + " of '" + CalleeSig->Name +
               "': cannot pass '" + typeStr(R.Ty, TC.keys()) +
               "' where '" + typeStr(ParamT, TC.keys()) + "' is expected");
  }

  // Distinct signature keys denote distinct resources: the key
  // instantiation must be injective.
  {
    std::map<KeySym, KeySym> Seen;
    for (const auto &[SigKey, ActualKey] : S.Keys) {
      auto [It, Inserted] = Seen.emplace(ActualKey, SigKey);
      if (!Inserted)
        report(DiagId::SemaTypeMismatch, Loc,
               "call to '" + CalleeSig->Name +
                   "' instantiates two distinct keys (" + keyDesc(SigKey) +
                   ", " + keyDesc(It->second) + ") with the same resource");
    }
  }

  // Apply the effect clause.
  for (const EffectItem &EI : CalleeSig->Effects) {
    switch (EI.M) {
    case EffectItem::Mode::Keep:
    case EffectItem::Mode::Consume: {
      KeySym K = S.mapKey(EI.Key);
      if (CalleeSig->isSigKey(K)) {
        report(DiagId::FlowKeyNotHeld, Loc,
               "cannot determine which key instantiates " + keyDesc(EI.Key) +
                   " in the effect of '" + CalleeSig->Name + "'");
        break;
      }
      if (!St.Held.contains(K)) {
        report(DiagId::FlowKeyNotHeld, Loc,
               "calling '" + CalleeSig->Name + "' requires key " +
                   keyDesc(K) + ", which is not in the held-key set");
        explainKey(St, K);
        break;
      }
      const StateRef Held = St.Held.stateOf(K);
      StateRef Req = substState(EI.Pre, S);
      if (Req.isVar()) {
        // Unbound callee state variable: bind it to the held state if
        // the bound allows, else report.
        if (!stateSatisfies(Held, Req, TC.keys().order(K))) {
          report(DiagId::FlowKeyWrongState, Loc,
                 "calling '" + CalleeSig->Name + "' requires key " +
                     keyDesc(K) + " in a state satisfying '" + Req.str() +
                     "', but it is held in state '" + Held.str() + "'");
          explainKey(St, K);
          break;
        }
        S.StateVars[Req.varId()] = Held;
      } else if (!stateSatisfies(Held, Req, TC.keys().order(K))) {
        report(DiagId::FlowKeyWrongState, Loc,
               "calling '" + CalleeSig->Name + "' requires key " +
                   keyDesc(K) + " in state '" + Req.str() +
                   "', but it is held in state '" + Held.str() + "'");
        explainKey(St, K);
        break;
      }
      if (EI.M == EffectItem::Mode::Consume) {
        checkBorrowGuards(K, nullptr, Loc, St);
        St.Held.remove(K);
        ++KeysetOps;
        provStep(St, K, Loc,
                 "was consumed by the call to '" + CalleeSig->Name +
                     "' (effect [-" + TC.keys().name(EI.Key) + "])");
      } else if (EI.Post) {
        StateRef Post = substState(*EI.Post, S);
        checkBorrowGuards(K, &Post, Loc, St);
        St.Held.transition(K, Post);
        ++KeysetOps;
        provStep(St, K, Loc,
                 "transitioned to state '" + Post.str() +
                     "' by the call to '" + CalleeSig->Name + "'");
      }
      break;
    }
    case EffectItem::Mode::Produce: {
      KeySym K = S.mapKey(EI.Key);
      if (CalleeSig->isSigKey(K)) {
        report(DiagId::FlowKeyNotHeld, Loc,
               "cannot determine which key instantiates " + keyDesc(EI.Key) +
                   " in the effect of '" + CalleeSig->Name + "'");
        break;
      }
      StateRef Post = EI.Post ? substState(*EI.Post, S) : StateRef::top();
      if (!St.Held.add(K, Post)) {
        report(DiagId::FlowKeyAlreadyHeld, Loc,
               "calling '" + CalleeSig->Name + "' would acquire key " +
                   keyDesc(K) + " which is already in the held-key set");
        explainKey(St, K);
      } else {
        ++KeysetOps;
        provStep(St, K, Loc,
                 "was acquired by the call to '" + CalleeSig->Name +
                     "' (effect [+" + TC.keys().name(EI.Key) + "])");
      }
      break;
    }
    case EffectItem::Mode::Fresh: {
      KeySym Fresh = TC.keys().create(TC.keys().name(EI.Key),
                                      KeyTable::Origin::Local, Loc);
      S.Keys[EI.Key] = Fresh;
      StateRef Post = EI.Post ? substState(*EI.Post, S) : StateRef::top();
      St.Held.add(Fresh, Post);
      ++KeysetOps;
      provStep(St, Fresh, Loc,
               "was created by the call to '" + CalleeSig->Name +
                   "' (effect [new " + TC.keys().name(EI.Key) + "])");
      break;
    }
    }
  }

  const Type *Ret = substType(TC, CalleeSig->RetType, S);
  return ExprResult{Ret, false, nullptr};
}

FlowChecker::ExprResult FlowChecker::checkCallExpr(const CallExpr *E,
                                                   FlowState &St) {
  // Direct call through a plain name.
  if (const auto *N = dyn_cast<NameExpr>(E->callee())) {
    if (const ElabScope::ValueInfo *V = scope().findValue(N->name())) {
      if (V->Func)
        return checkCall(V->Func, E->args(), E->loc(), St);
      // A variable of function type.
      ExprResult R = checkName(N, St);
      if (const auto *FT = dyn_cast<FuncType>(R.Ty ? R.Ty : ErrTy()))
        return checkCall(FT->sig(), E->args(), E->loc(), St);
      report(DiagId::SemaNotAFunction, E->loc(),
             "'" + N->name() + "' is not a function");
      return ExprResult{ErrTy(), false, nullptr};
    }
    if (FuncSig *F = Elab.globals().findFunction(N->name()))
      return checkCall(F, E->args(), E->loc(), St);
    report(DiagId::SemaUnknownName, E->loc(),
           "unknown function '" + N->name() + "'");
    return ExprResult{ErrTy(), false, nullptr};
  }
  // Module-qualified call: Region.create(...).
  if (const auto *F = dyn_cast<FieldExpr>(E->callee())) {
    if (const auto *Base = dyn_cast<NameExpr>(F->base())) {
      auto ModIt = Elab.globals().Modules.find(Base->name());
      if (ModIt != Elab.globals().Modules.end() &&
          !scope().findValue(Base->name())) {
        const InterfaceDecl *Iface = ModIt->second;
        bool Member = false;
        for (const Decl *M : Iface->members())
          if (isa<FuncDecl>(M) && M->name() == F->field())
            Member = true;
        if (!Member) {
          report(DiagId::SemaBadModule, E->loc(),
                 "interface '" + Iface->name() + "' has no function '" +
                     F->field() + "'");
          return ExprResult{ErrTy(), false, nullptr};
        }
        if (FuncSig *Sig2 = Elab.globals().findFunction(F->field()))
          return checkCall(Sig2, E->args(), E->loc(), St);
        return ExprResult{ErrTy(), false, nullptr};
      }
    }
  }
  // Indirect call through an arbitrary expression of function type.
  ExprResult Callee = checkExpr(E->callee(), St);
  if (const auto *FT = dyn_cast<FuncType>(Callee.Ty ? Callee.Ty : ErrTy()))
    return checkCall(FT->sig(), E->args(), E->loc(), St);
  report(DiagId::SemaNotAFunction, E->loc(), "called value is not a function");
  return ExprResult{ErrTy(), false, nullptr};
}

FlowChecker::ExprResult FlowChecker::checkCtor(const CtorExpr *E,
                                               FlowState &St,
                                               const Type *Expected) {
  const VariantDecl *VD = Elab.globals().findCtor(E->name());
  if (!VD) {
    report(DiagId::SemaUnknownCtor, E->loc(),
           "unknown constructor '" + E->name() + "'");
    return ExprResult{ErrTy(), false, nullptr};
  }
  const VariantDecl::Ctor *C = VD->findCtor(E->name());
  assert(C && "ctor registered but missing");

  // Determine the variant's type arguments: from the expected type,
  // then explicit key braces.
  std::vector<GenArg> VArgs(VD->params().size());
  std::vector<bool> Have(VD->params().size(), false);

  if (Expected) {
    const Type *Exp = Expected;
    if (const auto *A = dyn_cast<AnonTrackedType>(Exp))
      Exp = A->inner();
    if (const auto *VT = dyn_cast<VariantType>(Exp);
        VT && VT->decl() == VD && VT->args().size() == VArgs.size()) {
      for (size_t I = 0; I != VArgs.size(); ++I) {
        VArgs[I] = VT->args()[I];
        Have[I] = true;
      }
    }
  }
  if (!E->keyArgs().empty()) {
    // Explicit braces fill the *key* parameters positionally.
    size_t KeyIdx = 0;
    for (size_t I = 0; I != VD->params().size(); ++I) {
      if (VD->params()[I].K != TypeParamAst::Kind::Key)
        continue;
      if (KeyIdx >= E->keyArgs().size())
        break;
      const KeyStateRef &Ref = E->keyArgs()[KeyIdx++];
      KeySym K = Elab.resolveKey(Ref.KeyName, scope());
      if (K == InvalidKey) {
        report(DiagId::SemaUnknownKey, Ref.Loc,
               "unknown key '" + Ref.KeyName + "'");
        return ExprResult{ErrTy(), false, nullptr};
      }
      // Explicit braces override an expected instantiation that is
      // still polymorphic (an uninstantiated signature key); a
      // concrete expected key must agree.
      if (Have[I] && VArgs[I].K == Kind::Key && VArgs[I].Key != K &&
          TC.keys().origin(VArgs[I].Key) != KeyTable::Origin::Signature &&
          TC.keys().origin(VArgs[I].Key) != KeyTable::Origin::Existential)
        report(DiagId::SemaTypeMismatch, Ref.Loc,
               "explicit key '" + Ref.KeyName +
                   "' conflicts with the expected variant instantiation");
      VArgs[I] = GenArg::key(K);
      Have[I] = true;
    }
  }
  for (size_t I = 0; I != VArgs.size(); ++I) {
    if (!Have[I]) {
      report(DiagId::SemaArity, E->loc(),
             "cannot infer argument '" + VD->params()[I].Name +
                 "' of variant '" + VD->name() +
                 "'; annotate the constructor or the target");
      return ExprResult{ErrTy(), false, nullptr};
    }
  }

  const auto *VT = cast<VariantType>(TC.make<VariantType>(VD, VArgs));
  Elaborator::CtorShape Shape;
  if (!Elab.instantiateCtor(VT, *C, E->loc(), Shape))
    return ExprResult{ErrTy(), false, nullptr};

  // Payload arguments.
  if (E->args().size() != Shape.Payload.size()) {
    report(DiagId::SemaArity, E->loc(),
           "constructor '" + E->name() + "' takes " +
               std::to_string(Shape.Payload.size()) + " argument(s), got " +
               std::to_string(E->args().size()));
    return ExprResult{ErrTy(), false, nullptr};
  }
  for (size_t I = 0; I != E->args().size(); ++I) {
    const Type *PayT = Shape.Payload[I];
    ExprResult R = checkExpr(E->args()[I], St, PayT);
    if (!R.Ty || R.Ty->kind() == TyKind::Error)
      continue;
    Subst S;
    if (!Elab.unify(PayT, R.Ty, S, nullptr)) {
      report(DiagId::SemaTypeMismatch, E->args()[I]->loc(),
             "payload " + std::to_string(I + 1) + " of '" + E->name() +
                 "': cannot pass '" + typeStr(R.Ty, TC.keys()) +
                 "' where '" + typeStr(PayT, TC.keys()) + "' is expected");
      continue;
    }
    packValue(PayT, R.Ty, E->args()[I]->loc(), St, S);
  }

  // Key attachments: constructing the value consumes the keys in the
  // required states (paper §2.1: "creating the value 'SomeKey{F}
  // removes key F from the held-key set").
  for (const GuardedType::Guard &Att : Shape.Attachments) {
    if (!St.Held.contains(Att.Key)) {
      report(DiagId::FlowKeyNotHeld, E->loc(),
             "constructing '" + E->name() + "' requires key " +
                 keyDesc(Att.Key) + ", which is not in the held-key set");
      explainKey(St, Att.Key);
      continue;
    }
    const StateRef &Held = St.Held.stateOf(Att.Key);
    if (!stateSatisfies(Held, Att.Required, TC.keys().order(Att.Key))) {
      report(DiagId::FlowKeyWrongState, E->loc(),
             "constructing '" + E->name() + "' requires key " +
                 keyDesc(Att.Key) + " in state '" + Att.Required.str() +
                 "', but it is held in state '" + Held.str() + "'");
      explainKey(St, Att.Key);
    }
    checkBorrowGuards(Att.Key, nullptr, E->loc(), St);
    St.Held.remove(Att.Key);
    ++KeysetOps;
    provStep(St, Att.Key, E->loc(),
             "was consumed by constructing '" + E->name() + "' here");
  }

  const Type *Result =
      typeCarriesKeys(VT)
          ? static_cast<const Type *>(
                TC.make<AnonTrackedType>(VT, StateRef::top()))
          : static_cast<const Type *>(VT);
  return ExprResult{Result, false, nullptr};
}

FlowChecker::ExprResult FlowChecker::checkNew(const NewExpr *E, FlowState &St) {
  const Type *T = Elab.elabType(E->typeExpr(), scope(),
                                Elaborator::TypeCtx::Local, nullptr);
  // Field initializers.
  if (const auto *ST = dyn_cast<StructType>(T)) {
    for (const NewExpr::FieldInit &FI : E->inits()) {
      const Type *FT = Elab.fieldType(ST, FI.Field);
      if (!FT) {
        report(DiagId::SemaUnknownField, FI.Loc,
               "struct '" + ST->decl()->name() + "' has no field '" +
                   FI.Field + "'");
        continue;
      }
      ExprResult R = checkExpr(FI.Init, St, FT);
      Subst S;
      if (R.Ty && !Elab.unify(FT, R.Ty, S, nullptr))
        report(DiagId::SemaTypeMismatch, FI.Loc,
               "field '" + FI.Field + "' has type '" +
                   typeStr(FT, TC.keys()) + "', initializer has type '" +
                   typeStr(R.Ty, TC.keys()) + "'");
    }
  } else if (!E->inits().empty() && T->kind() != TyKind::Error) {
    report(DiagId::SemaNotARecord, E->loc(),
           "'" + typeStr(T, TC.keys()) + "' has no fields to initialize");
  }

  if (E->isTracked()) {
    KeySym K = TC.keys().create("heap", KeyTable::Origin::Local, E->loc());
    St.Held.add(K, StateRef::top());
    ++KeysetOps;
    provStep(St, K, E->loc(), "was acquired by this tracked allocation");
    return ExprResult{TC.make<TrackedType>(T, K), false, nullptr};
  }
  if (E->region()) {
    ExprResult R = checkExpr(E->region(), St);
    const auto *Tr = dyn_cast<TrackedType>(R.Ty ? R.Ty : ErrTy());
    if (!Tr) {
      if (R.Ty && R.Ty->kind() != TyKind::Error)
        report(DiagId::SemaNotTracked, E->loc(),
               "allocation region must be a tracked value");
      return ExprResult{ErrTy(), false, nullptr};
    }
    KeySym RK = Tr->key();
    if (!St.Held.contains(RK)) {
      report(DiagId::FlowKeyNotHeld, E->loc(),
             "cannot allocate from region: its key " + keyDesc(RK) +
                 " is not in the held-key set");
      explainKey(St, RK);
    }
    std::vector<GuardedType::Guard> Guards{
        GuardedType::Guard{RK, StateRef::top()}};
    return ExprResult{TC.make<GuardedType>(std::move(Guards), T), false,
                      nullptr};
  }
  // Plain record construction.
  return ExprResult{T, false, nullptr};
}

FlowChecker::ExprResult FlowChecker::checkField(const FieldExpr *E,
                                                FlowState &St) {
  ExprResult Base = checkExpr(E->base(), St);
  if (!Base.Ty || Base.Ty->kind() == TyKind::Error)
    return ExprResult{ErrTy(), Base.IsLValue, nullptr};
  const Type *T = requireAccess(Base.Ty, E->loc(), St);
  if (const auto *ST = dyn_cast<StructType>(T)) {
    const Type *FT = Elab.fieldType(ST, E->field());
    if (!FT) {
      report(DiagId::SemaUnknownField, E->loc(),
             "struct '" + ST->decl()->name() + "' has no field '" +
                 E->field() + "'");
      return ExprResult{ErrTy(), Base.IsLValue, nullptr};
    }
    return ExprResult{FT, Base.IsLValue, nullptr};
  }
  report(DiagId::SemaNotARecord, E->loc(),
         "'" + typeStr(T, TC.keys()) + "' has no field '" + E->field() + "'");
  return ExprResult{ErrTy(), false, nullptr};
}

FlowChecker::ExprResult FlowChecker::checkIndex(const IndexExpr *E,
                                                FlowState &St) {
  ExprResult Base = checkExpr(E->base(), St);
  ExprResult Idx = checkExpr(E->index(), St);
  if (Idx.Ty && Idx.Ty->kind() == TyKind::Prim &&
      cast<PrimType>(Idx.Ty)->prim() != PrimKind::Int)
    report(DiagId::SemaTypeMismatch, E->index()->loc(),
           "array index must be an int");
  if (!Base.Ty || Base.Ty->kind() == TyKind::Error)
    return ExprResult{ErrTy(), Base.IsLValue, nullptr};
  const Type *T = requireAccess(Base.Ty, E->loc(), St);
  if (const auto *A = dyn_cast<ArrayType>(T))
    return ExprResult{A->elem(), Base.IsLValue, nullptr};
  if (const auto *Tu = dyn_cast<TupleType>(T)) {
    if (const auto *I = dyn_cast<IntLiteralExpr>(E->index());
        I && I->value() >= 0 &&
        static_cast<size_t>(I->value()) < Tu->elems().size())
      return ExprResult{Tu->elems()[I->value()], Base.IsLValue, nullptr};
    report(DiagId::SemaTypeMismatch, E->loc(),
           "tuple index must be a constant within bounds");
    return ExprResult{ErrTy(), false, nullptr};
  }
  report(DiagId::SemaTypeMismatch, E->loc(),
         "'" + typeStr(T, TC.keys()) + "' cannot be indexed");
  return ExprResult{ErrTy(), false, nullptr};
}

FlowChecker::ExprResult FlowChecker::checkAssign(const AssignExpr *E,
                                                 FlowState &St) {
  // Assignment to a simple variable rebinds its flow type.
  if (const auto *N = dyn_cast<NameExpr>(E->lhs())) {
    const ElabScope::ValueInfo *V = scope().findValue(N->name());
    if (!V) {
      report(DiagId::SemaUnknownName, E->loc(),
             "unknown variable '" + N->name() + "'");
      checkExpr(E->rhs(), St);
      return ExprResult{ErrTy(), false, nullptr};
    }
    if (!St.Vars.count(V->Id)) {
      report(DiagId::FlowCaptureTracked, E->loc(),
             "cannot assign to captured variable '" + N->name() + "'");
      checkExpr(E->rhs(), St);
      return ExprResult{ErrTy(), false, nullptr};
    }
    ExprResult R = checkExpr(E->rhs(), St, V->DeclaredType);
    std::string Binder;
    if (auto It = PendingBinders.find(V->Id); It != PendingBinders.end())
      Binder = It->second;
    const Type *NewT =
        coerceInit(V->DeclaredType ? V->DeclaredType : R.Ty, R, E->loc(), St,
                   Binder);
    St.Vars[V->Id] = NewT;
    return ExprResult{TC.voidType(), false, nullptr};
  }
  // Assignment through a field/index lvalue.
  ExprResult L = checkExpr(E->lhs(), St);
  if (!L.IsLValue && L.Ty && L.Ty->kind() != TyKind::Error)
    report(DiagId::SemaTypeMismatch, E->loc(),
           "left-hand side of assignment is not assignable");
  ExprResult R = checkExpr(E->rhs(), St, L.Ty);
  if (L.Ty && R.Ty) {
    Subst S;
    const Type *Target = L.Ty;
    if (const auto *G = dyn_cast<GuardedType>(Target)) {
      requireAccess(Target, E->loc(), St);
      Target = G->inner();
      while (const auto *G2 = dyn_cast<GuardedType>(Target))
        Target = G2->inner();
    }
    if (!Elab.unify(Target, R.Ty, S, nullptr)) {
      // Guarded rvalue being read into the slot.
      if (const auto *GR = dyn_cast<GuardedType>(R.Ty);
          GR && Elab.unify(Target, GR->inner(), S, nullptr)) {
        requireAccess(R.Ty, E->loc(), St);
      } else {
        report(DiagId::SemaTypeMismatch, E->loc(),
               "cannot assign '" + typeStr(R.Ty, TC.keys()) + "' to '" +
                   typeStr(L.Ty, TC.keys()) + "'");
      }
    } else {
      packValue(Target, R.Ty, E->loc(), St, S);
    }
  }
  return ExprResult{TC.voidType(), false, nullptr};
}

FlowChecker::ExprResult FlowChecker::checkExpr(const Expr *E, FlowState &St,
                                               const Type *Expected) {
  switch (E->kind()) {
  case ExprKind::IntLiteral:
    return ExprResult{TC.intType(), false, nullptr};
  case ExprKind::BoolLiteral:
    return ExprResult{TC.boolType(), false, nullptr};
  case ExprKind::StringLiteral:
    return ExprResult{TC.stringType(), false, nullptr};
  case ExprKind::Name:
    return checkName(cast<NameExpr>(E), St);
  case ExprKind::Call:
    return checkCallExpr(cast<CallExpr>(E), St);
  case ExprKind::Ctor:
    return checkCtor(cast<CtorExpr>(E), St, Expected);
  case ExprKind::New:
    return checkNew(cast<NewExpr>(E), St);
  case ExprKind::Field:
    return checkField(cast<FieldExpr>(E), St);
  case ExprKind::Index:
    return checkIndex(cast<IndexExpr>(E), St);
  case ExprKind::Assign:
    return checkAssign(cast<AssignExpr>(E), St);
  case ExprKind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    ExprResult R = checkExpr(U->operand(), St);
    const Type *T = R.Ty ? requireAccess(R.Ty, E->loc(), St) : ErrTy();
    if (U->op() == UnaryOp::Not) {
      if (T->kind() == TyKind::Prim &&
          cast<PrimType>(T)->prim() != PrimKind::Bool)
        report(DiagId::SemaTypeMismatch, E->loc(), "'!' requires a bool");
      return ExprResult{TC.boolType(), false, nullptr};
    }
    if (T->kind() == TyKind::Prim &&
        cast<PrimType>(T)->prim() != PrimKind::Int)
      report(DiagId::SemaTypeMismatch, E->loc(), "unary '-' requires an int");
    return ExprResult{TC.intType(), false, nullptr};
  }
  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    ExprResult LR = checkExpr(B->lhs(), St);
    ExprResult RR = checkExpr(B->rhs(), St);
    const Type *L = LR.Ty ? requireAccess(LR.Ty, B->lhs()->loc(), St) : ErrTy();
    const Type *R = RR.Ty ? requireAccess(RR.Ty, B->rhs()->loc(), St) : ErrTy();
    auto isPrim = [](const Type *T, PrimKind K) {
      const auto *P = dyn_cast<PrimType>(T);
      return P && P->prim() == K;
    };
    switch (B->op()) {
    case BinaryOp::And:
    case BinaryOp::Or:
      if ((!isPrim(L, PrimKind::Bool) && L->kind() != TyKind::Error) ||
          (!isPrim(R, PrimKind::Bool) && R->kind() != TyKind::Error))
        report(DiagId::SemaTypeMismatch, E->loc(),
               "logical operator requires bool operands");
      return ExprResult{TC.boolType(), false, nullptr};
    case BinaryOp::Eq:
    case BinaryOp::Ne:
      if (!typeEquals(L, R))
        report(DiagId::SemaTypeMismatch, E->loc(),
               "cannot compare '" + typeStr(L, TC.keys()) + "' with '" +
                   typeStr(R, TC.keys()) + "'");
      return ExprResult{TC.boolType(), false, nullptr};
    case BinaryOp::Lt:
    case BinaryOp::Le:
    case BinaryOp::Gt:
    case BinaryOp::Ge:
      if ((!isPrim(L, PrimKind::Int) && !isPrim(L, PrimKind::Byte) &&
           L->kind() != TyKind::Error) ||
          (!isPrim(R, PrimKind::Int) && !isPrim(R, PrimKind::Byte) &&
           R->kind() != TyKind::Error))
        report(DiagId::SemaTypeMismatch, E->loc(),
               "comparison requires numeric operands");
      return ExprResult{TC.boolType(), false, nullptr};
    default:
      if ((!isPrim(L, PrimKind::Int) && !isPrim(L, PrimKind::Byte) &&
           L->kind() != TyKind::Error) ||
          (!isPrim(R, PrimKind::Int) && !isPrim(R, PrimKind::Byte) &&
           R->kind() != TyKind::Error))
        report(DiagId::SemaTypeMismatch, E->loc(),
               "arithmetic requires numeric operands");
      return ExprResult{TC.intType(), false, nullptr};
    }
  }
  case ExprKind::IncDec: {
    const auto *I = cast<IncDecExpr>(E);
    ExprResult R = checkExpr(I->base(), St);
    if (!R.IsLValue && R.Ty && R.Ty->kind() != TyKind::Error)
      report(DiagId::SemaTypeMismatch, E->loc(),
             "'++'/'--' requires an assignable location");
    const Type *T = R.Ty ? requireAccess(R.Ty, E->loc(), St) : ErrTy();
    if (T->kind() == TyKind::Prim &&
        cast<PrimType>(T)->prim() != PrimKind::Int &&
        cast<PrimType>(T)->prim() != PrimKind::Byte)
      report(DiagId::SemaTypeMismatch, E->loc(),
             "'++'/'--' requires a numeric location");
    return ExprResult{TC.intType(), false, nullptr};
  }
  case ExprKind::Tuple: {
    const auto *T = cast<TupleExpr>(E);
    std::vector<const Type *> Elems;
    const TupleType *ExpT = nullptr;
    if (Expected) {
      const Type *Exp = Expected;
      while (const auto *A = dyn_cast<AnonTrackedType>(Exp))
        Exp = A->inner();
      ExpT = dyn_cast<TupleType>(Exp);
    }
    for (size_t I = 0; I != T->elems().size(); ++I) {
      const Type *ElemExp =
          ExpT && I < ExpT->elems().size() ? ExpT->elems()[I] : nullptr;
      Elems.push_back(checkExpr(T->elems()[I], St, ElemExp).Ty);
    }
    return ExprResult{TC.make<TupleType>(std::move(Elems)), false, nullptr};
  }
  }
  return ExprResult{ErrTy(), false, nullptr};
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

void FlowChecker::checkVarDecl(const VarDecl *D, FlowState &St) {
  if (scope().definesValueLocally(D->name()))
    report(DiagId::SemaRedefinition, D->loc(),
           "redefinition of '" + D->name() + "'");

  const Type *DeclType = Elab.elabType(D->typeExpr(), scope(),
                                       Elaborator::TypeCtx::Local, nullptr);
  std::string Binder = Elab.takePendingBinder();

  ElabScope::ValueInfo Info;
  Info.Id = D;
  Info.D = D;
  Info.DeclaredType = DeclType;
  Info.Loc = D->loc();
  bindLocal(D->name(), Info);
  if (!Binder.empty()) {
    PendingBinders[D] = Binder;
    // Reserve the key name now so guards can refer to it after init.
    scope().bindKey(Binder, InvalidKey);
  }

  if (D->init()) {
    ExprResult R = checkExpr(D->init(), St, DeclType);
    St.Vars[D] = coerceInit(DeclType, R, D->loc(), St, Binder);
    return;
  }
  // Uninitialized: key-carrying variables must be assigned before use;
  // plain values are usable immediately (C-style default init).
  if (typeCarriesKeys(DeclType))
    St.Vars[D] = nullptr;
  else
    St.Vars[D] = DeclType;
}

void FlowChecker::checkNestedFunc(const FuncDecl *F, FlowState &St,
                                  SourceLoc Loc) {
  FuncSig *NestedSig = Elab.elabSignature(F, &scope(), /*IsLocal=*/true);
  ElabScope::ValueInfo Info;
  Info.Id = F;
  Info.D = F;
  Info.Func = NestedSig;
  Info.DeclaredType = TC.make<FuncType>(NestedSig);
  Info.Loc = Loc;
  bindLocal(F->name(), Info);
  St.Vars[F] = Info.DeclaredType;

  if (F->body()) {
    FlowChecker Nested(Elab, Diags);
    Nested.Explain = Explain;
    Nested.checkFunction(NestedSig, &scope());
    MaxHeld = std::max(MaxHeld, Nested.MaxHeld);
    FixpointIters += Nested.FixpointIters;
    KeysetOps += Nested.KeysetOps;
    Joins += Nested.Joins;
    JoinRenamedKeys += Nested.JoinRenamedKeys;
  }
}

void FlowChecker::checkBlock(const BlockStmt *B, FlowState &St) {
  pushScope();
  for (const Stmt *S : B->stmts()) {
    if (!St.Reachable)
      break;
    checkStmt(S, St);
  }
  popScope(St);
}

void FlowChecker::joinInto(FlowState &Into, const FlowState &Other,
                           SourceLoc Loc) {
  JoinResult J = joinStates(TC, Into, Other);
  ++Joins;
  JoinRenamedKeys += J.RenamedKeys;
  if (!J.Ok)
    report(DiagId::FlowJoinMismatch, Loc,
           "held-key sets disagree at this join point: " + J.Mismatch);
  if (Explain)
    for (const auto &[From, To] : J.Renamed)
      if (J.State.Held.contains(To))
        J.State.Prov[To].push_back(
            ProvStep{Loc, "absorbed key '" + TC.keys().name(From) +
                              "' at this branch join"});
  Into = std::move(J.State);
}

void FlowChecker::checkCondition(const Expr *Cond, FlowState &St) {
  ExprResult R = checkExpr(Cond, St);
  if (!R.Ty)
    return;
  const Type *T = requireAccess(R.Ty, Cond->loc(), St);
  if (T->kind() == TyKind::Error)
    return;
  const auto *P = dyn_cast<PrimType>(T);
  if (!P || P->prim() != PrimKind::Bool)
    report(DiagId::SemaTypeMismatch, Cond->loc(),
           "condition must be a bool, got '" + typeStr(T, TC.keys()) + "'");
}

void FlowChecker::checkIf(const IfStmt *S, FlowState &St) {
  checkCondition(S->cond(), St);
  FlowState ThenSt = St;
  checkStmt(S->thenStmt(), ThenSt);
  FlowState ElseSt = St;
  if (S->elseStmt())
    checkStmt(S->elseStmt(), ElseSt);
  joinInto(ThenSt, ElseSt, S->loc());
  St = std::move(ThenSt);
}

void FlowChecker::checkWhile(const WhileStmt *S, FlowState &St) {
  // Infer the loop invariant by bounded fixpoint iteration (paper §3:
  // "imperative loops may require declared loop invariants, unless the
  // invariant can be inferred in a fixed number of iterations").
  FlowState Inv = St;
  bool Converged = false;
  {
    DiagnosticEngine::SuppressionScope Quiet(Diags);
    for (unsigned Iter = 0; Iter != MaxLoopIterations; ++Iter) {
      ++FixpointIters;
      FlowState CondSt = Inv;
      checkCondition(S->cond(), CondSt);
      FlowState BodySt = CondSt;
      checkStmt(S->body(), BodySt);
      JoinResult J = joinStates(TC, Inv, BodySt);
      ++Joins;
      JoinRenamedKeys += J.RenamedKeys;
      if (!J.Ok) {
        // Will be reported by the loud pass below via the same join.
        break;
      }
      if (J.State == Inv) {
        Converged = true;
        break;
      }
      Inv = std::move(J.State);
    }
  }
  if (!Converged) {
    // One more quiet probe to distinguish "join error" from "no
    // fixpoint"; then report loudly.
    FlowState CondSt = Inv;
    {
      DiagnosticEngine::SuppressionScope Quiet(Diags);
      checkCondition(S->cond(), CondSt);
      FlowState BodySt = CondSt;
      checkStmt(S->body(), BodySt);
      JoinResult J = joinStates(TC, Inv, BodySt);
      ++Joins;
      JoinRenamedKeys += J.RenamedKeys;
      if (!J.Ok) {
        Diags.unsuppress();
        report(DiagId::FlowJoinMismatch, S->loc(),
               "loop body changes the held-key set: " + J.Mismatch);
        Diags.suppress();
      } else {
        Diags.unsuppress();
        report(DiagId::FlowLoopNoFixpoint, S->loc(),
               "could not infer a loop invariant for the held-key set");
        Diags.suppress();
      }
    }
  }
  // Final loud pass over the converged invariant.
  FlowState CondSt = Inv;
  checkCondition(S->cond(), CondSt);
  FlowState BodySt = CondSt;
  checkStmt(S->body(), BodySt);
  // Loop exit: the condition was evaluated and found false.
  St = std::move(CondSt);
}

void FlowChecker::checkFree(const FreeStmt *S, FlowState &St) {
  ExprResult R = checkExpr(S->operand(), St);
  if (!R.Ty || R.Ty->kind() == TyKind::Error)
    return;
  // Freeing a guarded value is a guarded access: the guard keys must be
  // held in their required states at the free site.
  const Type *T = R.Ty;
  if (isa<GuardedType>(T))
    T = peelGuards(T, S->loc(), St);
  if (const auto *Tr = dyn_cast<TrackedType>(T)) {
    checkBorrowGuards(Tr->key(), nullptr, S->loc(), St);
    if (St.Held.remove(Tr->key())) {
      ++KeysetOps;
      provStep(St, Tr->key(), S->loc(), "was released by this free");
    } else {
      report(DiagId::FlowKeyNotHeld, S->loc(),
             "cannot free: key " + keyDesc(Tr->key()) +
                 " is not in the held-key set (double free?)");
      explainKey(St, Tr->key());
    }
    return;
  }
  if (isa<AnonTrackedType>(T))
    return; // A packed rvalue owns its key; freeing it is balanced.
  report(DiagId::SemaNotTracked, S->loc(),
         "free() requires a tracked value, got '" +
             typeStr(R.Ty, TC.keys()) + "'");
}

void FlowChecker::checkBorrow(const BorrowStmt *S, FlowState &St) {
  if (scope().definesValueLocally(S->binderName()))
    report(DiagId::SemaRedefinition, S->loc(),
           "redefinition of '" + S->binderName() + "'");

  ExprResult R = checkExpr(S->source(), St);
  const Type *BT = ErrTy();
  std::vector<GuardedType::Guard> Guards;
  if (R.Ty && R.Ty->kind() != TyKind::Error) {
    // Borrowing a guarded value is itself a guarded access, and the
    // peeled guards become the borrow's revocation dependencies.
    const Type *T = peelGuards(R.Ty, S->loc(), St, &Guards);
    if (const auto *Tr = dyn_cast<TrackedType>(T)) {
      KeySym K = Tr->key();
      if (!St.Held.contains(K)) {
        report(DiagId::FlowKeyNotHeld, S->loc(),
               "cannot borrow: key " + keyDesc(K) +
                   " is not in the held-key set");
        explainKey(St, K);
      } else {
        // Split: the parent key leaves the held set (its owner is
        // frozen) and a fresh alias key takes over its state.
        StateRef Cur = St.Held.stateOf(K);
        St.Held.remove(K);
        KeySym B = TC.keys().create(S->binderName(), KeyTable::Origin::Local,
                                    S->loc());
        St.Held.add(B, Cur);
        KeysetOps += 2;
        provStep(St, B, S->loc(),
                 "was split from key " + keyDesc(K) + " by this borrow");
        BorrowInfo Info;
        Info.Parent = K;
        Info.Guards = Guards;
        St.Borrows[B] = std::move(Info);
        const Type *Inner = TC.make<TrackedType>(Tr->inner(), B);
        BT = Guards.empty()
                 ? Inner
                 : TC.make<GuardedType>(
                       std::vector<GuardedType::Guard>(Guards), Inner);
      }
    } else if (T->kind() != TyKind::Error) {
      report(DiagId::SemaNotTracked, S->loc(),
             "borrow requires a tracked value, got '" +
                 typeStr(R.Ty, TC.keys()) + "'");
    }
  }

  ElabScope::ValueInfo Info;
  Info.Id = S;
  Info.DeclaredType = BT;
  Info.Loc = S->loc();
  bindLocal(S->binderName(), Info);
  St.Vars[S] = BT;
}

void FlowChecker::checkEndBorrow(const EndBorrowStmt *S, FlowState &St) {
  ExprResult R = checkExpr(S->operand(), St);
  if (!R.Ty || R.Ty->kind() == TyKind::Error)
    return;
  const Type *T = R.Ty;
  while (const auto *G = dyn_cast<GuardedType>(T))
    T = G->inner(); // Revocation is not an access: peel silently.
  const auto *Tr = dyn_cast<TrackedType>(T);
  if (!Tr) {
    report(DiagId::FlowBorrowNotLive, S->loc(),
           "endborrow requires a borrowed tracked value, got '" +
               typeStr(R.Ty, TC.keys()) + "'");
    return;
  }
  KeySym B = Tr->key();
  auto It = St.Borrows.find(B);
  if (It == St.Borrows.end()) {
    report(DiagId::FlowBorrowNotLive, S->loc(),
           "key " + keyDesc(B) + " is not a live borrow at this endborrow");
    explainKey(St, B);
    return;
  }
  KeySym Parent = It->second.Parent;
  if (!St.Held.contains(B)) {
    report(DiagId::FlowBorrowNotLive, S->loc(),
           "borrow " + keyDesc(B) +
               " was already given up before this endborrow");
    explainKey(St, B);
    St.Held.add(Parent, StateRef::top());
    St.Borrows.erase(It);
    return;
  }
  // Revoke: the alias key dies; its current state flows back to the
  // parent, so transitions made through the borrow survive.
  StateRef Cur = St.Held.stateOf(B);
  St.Held.remove(B);
  St.Held.add(Parent, Cur);
  KeysetOps += 2;
  provStep(St, Parent, S->loc(),
           "was restored by revoking borrow " + keyDesc(B) + " here");
  St.Borrows.erase(It);
}

void FlowChecker::checkSwitch(const SwitchStmt *S, FlowState &St) {
  ExprResult Subj = checkExpr(S->subject(), St);
  if (!Subj.Ty)
    return;

  const VariantType *VT = nullptr;
  if (const auto *Tr = dyn_cast<TrackedType>(Subj.Ty)) {
    // Switching on a tracked variant consumes the variant's own key
    // (the paper's `flag` idiom, §2.1).
    VT = dyn_cast<VariantType>(Tr->inner());
    if (VT) {
      checkBorrowGuards(Tr->key(), nullptr, S->loc(), St);
      if (St.Held.remove(Tr->key())) {
        ++KeysetOps;
        provStep(St, Tr->key(), S->loc(),
                 "was consumed by switching on the tracked value here");
      } else {
        report(DiagId::FlowKeyNotHeld, S->loc(),
               "cannot switch on tracked value: its key " +
                   keyDesc(Tr->key()) +
                   " is not in the held-key set (already tested?)");
        explainKey(St, Tr->key());
      }
    }
  } else if (const auto *Anon = dyn_cast<AnonTrackedType>(Subj.Ty)) {
    // A packed rvalue: testing it immediately releases its contents.
    VT = dyn_cast<VariantType>(Anon->inner());
  } else {
    const Type *T = requireAccess(Subj.Ty, S->loc(), St);
    VT = dyn_cast<VariantType>(T);
  }
  if (!VT) {
    if (Subj.Ty->kind() != TyKind::Error)
      report(DiagId::SemaNotAVariant, S->loc(),
             "switch subject must be a variant, got '" +
                 typeStr(Subj.Ty, TC.keys()) + "'");
    return;
  }

  FlowState Base = St;
  FlowState Joined;
  Joined.Reachable = false;
  bool SawDefault = false;
  std::set<std::string> Seen;

  for (const SwitchStmt::Case &C : S->cases()) {
    FlowState ArmSt = Base;
    pushScope();
    if (C.Pattern.IsDefault) {
      SawDefault = true;
    } else {
      const VariantDecl::Ctor *Ctor = VT->decl()->findCtor(C.Pattern.CtorName);
      if (!Ctor) {
        report(DiagId::SemaUnknownCtor, C.Pattern.Loc,
               "variant '" + VT->decl()->name() + "' has no constructor '" +
                   C.Pattern.CtorName + "'");
        popScope(ArmSt);
        continue;
      }
      if (!Seen.insert(C.Pattern.CtorName).second)
        report(DiagId::SemaDuplicateCase, C.Pattern.Loc,
               "duplicate case '" + C.Pattern.CtorName + "'");

      Elaborator::CtorShape Shape;
      if (Elab.instantiateCtor(VT, *Ctor, C.Pattern.Loc, Shape)) {
        // Pattern matching restores the constructor's attached keys
        // (paper §2.1) ...
        for (const GuardedType::Guard &Att : Shape.Attachments) {
          if (ArmSt.Held.add(Att.Key, Att.Required)) {
            ++KeysetOps;
            provStep(ArmSt, Att.Key, C.Pattern.Loc,
                     "was restored by matching '" + C.Pattern.CtorName +
                         "' here");
          } else {
            report(DiagId::FlowKeyAlreadyHeld, C.Pattern.Loc,
                   "matching '" + C.Pattern.CtorName + "' would restore key " +
                       keyDesc(Att.Key) + ", which is already held");
            explainKey(ArmSt, Att.Key);
          }
        }
        // ... and unpacks anonymous payloads under fresh keys (§2.4:
        // the keys are "anonymous" — fresh, unrelated to the ones
        // packed in).
        if (C.Pattern.HasParens &&
            C.Pattern.Binders.size() != Shape.Payload.size()) {
          report(DiagId::ParseBadPattern, C.Pattern.Loc,
                 "pattern for '" + C.Pattern.CtorName + "' binds " +
                     std::to_string(C.Pattern.Binders.size()) +
                     " value(s), constructor carries " +
                     std::to_string(Shape.Payload.size()));
        }
        std::map<KeySym, KeySym> SharedFresh;
        for (size_t I = 0;
             I < C.Pattern.Binders.size() && I < Shape.Payload.size(); ++I) {
          const std::string &Name = C.Pattern.Binders[I];
          if (Name.empty())
            continue; // Wildcard: value (and any packed keys) discarded.
          const Type *PayT = Shape.Payload[I];
          const Type *BindT;
          if (const auto *Anon = dyn_cast<AnonTrackedType>(PayT))
            BindT = unpackValue(Anon, C.Pattern.Loc, ArmSt, Name, &SharedFresh);
          else
            BindT = Elab.instantiateExistentials(PayT, C.Pattern.Loc,
                                                 SharedFresh);
          ElabScope::ValueInfo Info;
          Info.Id = &C.Pattern.Binders[I];
          Info.DeclaredType = BindT;
          Info.Loc = C.Pattern.Loc;
          bindLocal(Name, Info);
          ArmSt.Vars[Info.Id] = BindT;
        }
        // Keys instantiated for non-anonymous existential payload
        // positions become held too.
        for (const auto &[Old, New] : SharedFresh) {
          (void)Old;
          if (!ArmSt.Held.contains(New)) {
            ArmSt.Held.add(New, StateRef::top());
            ++KeysetOps;
            provStep(ArmSt, New, C.Pattern.Loc,
                     "was acquired by pattern unpacking here");
          }
        }
      }
    }
    for (const Stmt *Sub : C.Body) {
      if (!ArmSt.Reachable)
        break;
      checkStmt(Sub, ArmSt);
    }
    popScope(ArmSt);
    if (!Joined.Reachable)
      Joined = std::move(ArmSt);
    else
      joinInto(Joined, ArmSt, C.Loc);
  }

  if (!SawDefault && Seen.size() < VT->decl()->ctors().size())
    Diags.report(DiagId::SemaNonExhaustiveSwitch, S->loc(),
                 "switch does not cover every constructor of '" +
                     VT->decl()->name() + "'; missing arms are assumed "
                     "unreachable",
                 DiagSeverity::Warning);

  if (Joined.Reachable)
    St = std::move(Joined);
  else if (!S->cases().empty())
    St.Reachable = false;
}

void FlowChecker::checkReturn(const ReturnStmt *S, FlowState &St) {
  Subst RetS;
  const Type *DeclRet = Sig->RetType;
  bool IsVoid = DeclRet->kind() == TyKind::Prim &&
                cast<PrimType>(DeclRet)->prim() == PrimKind::Void;
  if (S->value()) {
    if (IsVoid)
      report(DiagId::FlowReturnValue, S->loc(),
             "void function returns a value");
    ExprResult R = checkExpr(S->value(), St, DeclRet);
    if (!IsVoid && R.Ty && R.Ty->kind() != TyKind::Error) {
      // Only the signature's *fresh* keys and state variables may bind
      // to the returned value; everything else is rigid.
      FuncSig FreshView;
      FreshView.SigKeys = Sig->FreshKeys;
      FreshView.NumStateVars = Sig->NumStateVars;
      if (!Elab.unify(DeclRet, R.Ty, RetS, &FreshView)) {
        // A guarded value may be read out for an unguarded return.
        bool Coerced = false;
        if (const auto *G = dyn_cast<GuardedType>(R.Ty)) {
          const Type *Peeled = requireAccess(R.Ty, S->loc(), St);
          (void)G;
          Coerced = Elab.unify(DeclRet, Peeled, RetS, &FreshView);
        }
        if (!Coerced)
          report(DiagId::FlowReturnValue, S->loc(),
                 "cannot return '" + typeStr(R.Ty, TC.keys()) +
                     "' from a function declared to return '" +
                     typeStr(DeclRet, TC.keys()) + "'");
      } else {
        // Returning a packed value consumes the keys being packed.
        packValue(substType(TC, DeclRet, RetS), R.Ty, S->loc(), St, RetS);
      }
    }
  } else if (!IsVoid) {
    report(DiagId::FlowReturnValue, S->loc(),
           "non-void function returns without a value");
  }
  checkExit(St, RetS, S->loc());
  St.Reachable = false;
}

void FlowChecker::checkStmt(const Stmt *S, FlowState &St) {
  checkStmtInner(S, St);
  if (St.Held.size() > MaxHeld)
    MaxHeld = static_cast<unsigned>(St.Held.size());
  if (Trace && !Diags.isSuppressed())
    Trace->push_back(
        KeyTraceEntry{Sig->Name, S->loc(), St.Held.str(TC.keys())});
}

void FlowChecker::checkStmtInner(const Stmt *S, FlowState &St) {
  switch (S->kind()) {
  case StmtKind::Block:
    checkBlock(cast<BlockStmt>(S), St);
    return;
  case StmtKind::Decl: {
    const Decl *D = cast<DeclStmt>(S)->decl();
    if (const auto *V = dyn_cast<VarDecl>(D))
      checkVarDecl(V, St);
    else if (const auto *F = dyn_cast<FuncDecl>(D))
      checkNestedFunc(F, St, S->loc());
    return;
  }
  case StmtKind::Expr:
    checkExpr(cast<ExprStmt>(S)->expr(), St);
    return;
  case StmtKind::If:
    checkIf(cast<IfStmt>(S), St);
    return;
  case StmtKind::While:
    checkWhile(cast<WhileStmt>(S), St);
    return;
  case StmtKind::Return:
    checkReturn(cast<ReturnStmt>(S), St);
    return;
  case StmtKind::Switch:
    checkSwitch(cast<SwitchStmt>(S), St);
    return;
  case StmtKind::Free:
    checkFree(cast<FreeStmt>(S), St);
    return;
  case StmtKind::Borrow:
    checkBorrow(cast<BorrowStmt>(S), St);
    return;
  case StmtKind::EndBorrow:
    checkEndBorrow(cast<EndBorrowStmt>(S), St);
    return;
  }
}

//===----------------------------------------------------------------------===//
// Function entry / exit
//===----------------------------------------------------------------------===//

void FlowChecker::checkExit(FlowState &St, Subst &RetSubst, SourceLoc Loc) {
  // Live borrows must be revoked before exit. Report each one, then
  // collapse it (alias dies, parent restored) so the leak/post-set
  // checks below reason about the parent key instead of cascading on
  // the alias.
  while (!St.Borrows.empty()) {
    auto It = St.Borrows.begin();
    KeySym B = It->first;
    KeySym Parent = It->second.Parent;
    report(DiagId::FlowBorrowLiveAtExit, Loc,
           "borrow " + keyDesc(B) +
               " is still live at function exit; revoke it with 'endborrow'");
    explainKey(St, B);
    if (St.Held.contains(B)) {
      StateRef Cur = St.Held.stateOf(B);
      St.Held.remove(B);
      St.Held.add(Parent, Cur);
      ++KeysetOps;
    }
    St.Borrows.erase(It);
  }

  // Expected post key set.
  std::map<KeySym, StateRef> Expected;
  std::vector<const EffectItem *> UnboundFresh;
  for (const EffectItem &EI : Sig->Effects) {
    switch (EI.M) {
    case EffectItem::Mode::Keep:
    case EffectItem::Mode::Produce:
      Expected[RetSubst.mapKey(EI.Key)] =
          EI.Post ? substState(*EI.Post, RetSubst) : StateRef::top();
      break;
    case EffectItem::Mode::Consume:
      break;
    case EffectItem::Mode::Fresh: {
      KeySym K = RetSubst.mapKey(EI.Key);
      if (K == EI.Key)
        UnboundFresh.push_back(&EI);
      else
        Expected[K] = EI.Post ? substState(*EI.Post, RetSubst)
                              : StateRef::top();
      break;
    }
    }
  }
  // A fresh key that the return value did not pin down: match it to
  // the unique leftover local key if there is exactly one candidate.
  for (const EffectItem *EI : UnboundFresh) {
    std::vector<KeySym> Candidates;
    for (const auto &[K, State] : St.Held) {
      (void)State;
      if (TC.keys().origin(K) == KeyTable::Origin::Local && !Expected.count(K))
        Candidates.push_back(K);
    }
    if (Candidates.size() == 1) {
      RetSubst.Keys[EI->Key] = Candidates.front();
      Expected[Candidates.front()] =
          EI->Post ? substState(*EI->Post, RetSubst) : StateRef::top();
    } else {
      report(DiagId::FlowMissingAtExit, Loc,
             "function promises a fresh key " + keyDesc(EI->Key) +
                 " but none can be identified at this exit");
    }
  }

  for (const auto &[K, ExpState] : Expected) {
    if (!St.Held.contains(K)) {
      report(DiagId::FlowMissingAtExit, Loc,
             "function exits without key " + keyDesc(K) +
                 ", which its effect clause promises to hold");
      explainKey(St, K);
      continue;
    }
    const StateRef &Held = St.Held.stateOf(K);
    if (!stateSatisfies(Held, ExpState, TC.keys().order(K)) &&
        !(Held == ExpState)) {
      report(DiagId::FlowMissingAtExit, Loc,
             "function exits with key " + keyDesc(K) + " in state '" +
                 Held.str() + "' but promises state '" + ExpState.str() +
                 "'");
      explainKey(St, K);
    }
  }
  for (const auto &[K, State] : St.Held) {
    (void)State;
    if (Expected.count(K))
      continue;
    report(DiagId::FlowKeyLeaked, Loc,
           "key " + keyDesc(K) +
               " is still held at function exit but is not in the "
               "declared post key set (resource leak)");
    note(TC.keys().loc(K), "key " + keyDesc(K) + " originates here");
    explainKey(St, K);
  }
}

void FlowChecker::checkFunction(const FuncSig *FSig, ElabScope *Enclosing) {
  Sig = FSig;
  const FuncDecl *F = Sig->Decl;
  assert(F && F->body() && "checkFunction requires a body");

  Scopes.clear();
  LocalIds.clear();
  PendingBinders.clear();
  {
    ScopeFrame Root;
    Root.Scope = std::make_unique<ElabScope>(Enclosing);
    Scopes.push_back(std::move(Root));
  }

  // Signature keys and state variables are in scope throughout.
  for (KeySym K : Sig->SigKeys)
    scope().bindKey(TC.keys().name(K), K);
  for (const auto &[Name, Var] : Sig->StateVarNames)
    scope().bindStateVar(Name, Var);

  // Entry state: the declared precondition key set.
  FlowState St;
  for (const EffectItem &EI : Sig->Effects) {
    if (EI.M == EffectItem::Mode::Keep || EI.M == EffectItem::Mode::Consume) {
      if (St.Held.add(EI.Key, EI.Pre)) {
        ++KeysetOps;
        provStep(St, EI.Key, EI.Loc,
                 "is held on entry (declared in the effect clause)");
      } else {
        report(DiagId::FlowKeyAlreadyHeld, EI.Loc,
               "key " + keyDesc(EI.Key) +
                   " appears twice in the precondition");
      }
    }
  }
  // Parameters: bound, unpacked (paper §3.3: "function parameters are
  // unpacked on entry").
  for (size_t I = 0; I != Sig->ParamTypes.size(); ++I) {
    const std::string &Name = Sig->ParamNames[I];
    if (Name.empty())
      continue;
    const void *Id = &F->params()[I];
    const Type *PT = Sig->ParamTypes[I];
    if (const auto *Anon = dyn_cast<AnonTrackedType>(PT))
      PT = unpackValue(Anon, F->params()[I].Loc, St, Name);
    ElabScope::ValueInfo Info;
    Info.Id = Id;
    Info.DeclaredType = PT;
    Info.Loc = F->params()[I].Loc;
    bindLocal(Name, Info);
    St.Vars[Id] = PT;
  }

  if (St.Held.size() > MaxHeld)
    MaxHeld = static_cast<unsigned>(St.Held.size());

  checkBlock(F->body(), St);

  if (St.Reachable) {
    bool IsVoid = Sig->RetType->kind() == TyKind::Prim &&
                  cast<PrimType>(Sig->RetType)->prim() == PrimKind::Void;
    if (!IsVoid && Sig->RetType->kind() != TyKind::Error) {
      report(DiagId::FlowReturnValue, F->loc(),
             "non-void function '" + Sig->Name +
                 "' can fall off the end without returning");
    }
    Subst Empty;
    checkExit(St, Empty, F->loc());
  }
}
