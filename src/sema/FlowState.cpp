//===- FlowState.cpp ------------------------------------------------------===//

#include "sema/FlowState.h"

using namespace vault;

FlowState vault::renameState(TypeContext &TC, const FlowState &S,
                             const KeyRename &Rename) {
  if (Rename.empty())
    return S;
  FlowState Out;
  Out.Reachable = S.Reachable;
  Out.Held = S.Held;
  bool Ok = Out.Held.renameKeys(Rename);
  // joinStates rejects every colliding shape before renaming; a
  // collision here would mean the canonicalization silently merged two
  // live keys.
  assert(Ok && "join canonicalization produced a colliding rename");
  (void)Ok;
  Subst Sub;
  Sub.FlatKeys = &Rename;
  for (const auto &[D, T] : S.Vars)
    Out.Vars.emplace(D, T ? substType(TC, T, Sub) : nullptr);
  // Provenance chains follow their key through the (simultaneous)
  // renaming; the injectivity checks in joinStates guarantee no two
  // chains land on the same key.
  for (const auto &[K, Steps] : S.Prov)
    Out.Prov.emplace(Rename.map(K), Steps);
  // Borrows follow their alias key, parent, and guard keys through the
  // same simultaneous renaming.
  for (const auto &[B, Info] : S.Borrows) {
    BorrowInfo NI;
    NI.Parent = Rename.map(Info.Parent);
    NI.Guards = Info.Guards;
    for (GuardedType::Guard &Gu : NI.Guards)
      Gu.Key = Rename.map(Gu.Key);
    Out.Borrows.emplace(Rename.map(B), std::move(NI));
  }
  return Out;
}

JoinResult vault::joinStates(TypeContext &TC, const FlowState &A,
                             const FlowState &B) {
  JoinResult R;
  // On mismatch we continue checking with the side holding more keys,
  // which suppresses cascades of "key not held" follow-on errors.
  auto pickRicher = [&]() -> const FlowState & {
    return B.Held.size() > A.Held.size() ? B : A;
  };
  if (!A.Reachable) {
    R.State = B;
    return R;
  }
  if (!B.Reachable) {
    R.State = A;
    return R;
  }

  const KeyTable &Keys = TC.keys();

  // Build the canonicalizing renaming of B's local keys onto A's,
  // driven by the common variables' key bindings.
  KeyRename Rename;    // B key -> A key.
  KeyRename RenameInv; // A key -> B key (injectivity).
  for (const auto &[D, TA] : A.Vars) {
    auto It = B.Vars.find(D);
    if (It == B.Vars.end())
      continue;
    const Type *TB = It->second;
    if (!TA || !TB)
      continue;
    std::vector<KeySym> KA, KB;
    collectKeys(TA, KA);
    collectKeys(TB, KB);
    if (KA.size() != KB.size())
      continue; // Structural disagreement; resolved below.
    for (size_t I = 0; I != KA.size(); ++I) {
      KeySym Ka = KA[I], Kb = KB[I];
      if (Ka == Kb)
        continue;
      if (Keys.origin(Ka) != KeyTable::Origin::Local ||
          Keys.origin(Kb) != KeyTable::Origin::Local) {
        R.Ok = false;
        R.Mismatch = "a variable is bound to different non-local keys on "
                     "the incoming paths";
        R.State = pickRicher();
        return R;
      }
      KeySym Bound = Rename.lookup(Kb);
      if (Bound != InvalidKey) {
        if (Bound != Ka) {
          R.Ok = false;
          R.Mismatch = "key '" + Keys.name(Kb) +
                       "' would need to unify with two different keys at "
                       "this join";
          R.State = pickRicher();
          return R;
        }
        continue; // Same pair seen through another variable.
      }
      KeySym BoundInv = RenameInv.lookup(Ka);
      if (BoundInv != InvalidKey && BoundInv != Kb) {
        R.Ok = false;
        R.Mismatch = "two distinct keys alias the same variable at this "
                     "join";
        R.State = pickRicher();
        return R;
      }
      Rename.add(Kb, Ka);
      if (BoundInv == InvalidKey)
        RenameInv.add(Ka, Kb);
    }
  }

  // A rename target that is itself still live in B (and not renamed
  // away) would silently merge two keys.
  //
  // Audited for soundness against chain renames (two locals renamed
  // through each other, e.g. a swap `{k1->k2, k2->k1}` or a chain
  // `{k1->k2, k2->k3}`): testing `B.Held` *before* the rename is
  // deliberate, and the `!Rename.contains(Ka)` exemption is valid,
  // because renameKeys applies the whole map simultaneously — a target
  // that is itself renamed away vacates its slot in the same step, so
  // swaps and chains of live keys cannot collide. A collision is then
  // only possible when two B-keys land on one A-key, and every such
  // shape is rejected: two *renamed* keys sharing a target fail the
  // RenameInv injectivity check above, and a renamed key landing on an
  // *unrenamed* live key fails here. Note this check also fires when
  // Ka is live in B but dead in A (a dead B-binding joined against a
  // live A-binding); that rejection is load-bearing too, since
  // accepting would let a dangling variable alias a live key after the
  // join. Pinned by JoinPointTests.{SwapRenameAtJoinAccepted,
  // RenameOntoLiveKeyRejected, DeadBindingOntoLiveKeyRejected}; the
  // simultaneous-rename semantics itself (collisions rejected rather
  // than keys silently dropped) is pinned by the KeySetTest rename
  // suite.
  for (const auto &[Kb, Ka] : Rename) {
    (void)Kb;
    if (B.Held.contains(Ka) && !Rename.contains(Ka)) {
      R.Ok = false;
      R.Mismatch = "renaming key '" + Keys.name(Ka) +
                   "' would merge two live keys at this join";
      R.State = pickRicher();
      return R;
    }
  }

  // Canonicalize B only when something actually renames: the common
  // case (straight-line code rejoining, no fresh keys on either side)
  // used to copy the whole of B here just to compare it.
  R.RenamedKeys = static_cast<unsigned>(Rename.size());
  FlowState BRStorage;
  if (!Rename.empty())
    BRStorage = renameState(TC, B, Rename);
  const FlowState &BR = Rename.empty() ? B : BRStorage;
  // Filled in before the agreement checks below: a failed join still
  // reports which keys were canonicalized (--explain provenance).
  R.Renamed = std::move(Rename);

  // Held-key sets must agree exactly (same keys, same states). This is
  // the check that rejects the paper's Fig. 5.
  for (const auto &[K, SA] : A.Held) {
    if (!BR.Held.contains(K)) {
      R.Ok = false;
      R.Mismatch = "key '" + Keys.name(K) +
                   "' is held on one incoming path but not the other";
      R.State = pickRicher();
      return R;
    }
    if (!(BR.Held.stateOf(K) == SA)) {
      R.Ok = false;
      R.Mismatch = "key '" + Keys.name(K) + "' is held in state '" +
                   SA.str() + "' on one path and '" +
                   BR.Held.stateOf(K).str() + "' on the other";
      R.State = pickRicher();
      return R;
    }
  }
  for (const auto &[K, SB] : BR.Held) {
    (void)SB;
    if (!A.Held.contains(K)) {
      R.Ok = false;
      R.Mismatch = "key '" + Keys.name(K) +
                   "' is held on one incoming path but not the other";
      R.State = pickRicher();
      return R;
    }
  }

  // Borrow liveness must agree as well: an alias key that is a borrow
  // on one incoming path only could not be revoked consistently after
  // the join. (Held-set agreement usually catches this first; this
  // check closes the cases where the canonicalizing rename makes the
  // held sets coincide.)
  for (const auto &[B, Info] : A.Borrows) {
    auto It = BR.Borrows.find(B);
    if (It == BR.Borrows.end() || It->second.Parent != Info.Parent) {
      R.Ok = false;
      R.Mismatch = "borrow '" + Keys.name(B) +
                   "' is live on one incoming path but not the other";
      R.State = pickRicher();
      return R;
    }
  }
  for (const auto &[B, Info] : BR.Borrows) {
    (void)Info;
    if (!A.Borrows.count(B)) {
      R.Ok = false;
      R.Mismatch = "borrow '" + Keys.name(B) +
                   "' is live on one incoming path but not the other";
      R.State = pickRicher();
      return R;
    }
  }

  // Merge variable types; where they still disagree (e.g. a variable
  // initialized on only one path), the variable becomes uninitialized.
  R.State.Reachable = true;
  R.State.Held = A.Held;
  R.State.Borrows = A.Borrows;
  // Keep A's provenance for keys both sides hold (the sets agree here,
  // so picking one side keeps chains deterministic at any --jobs).
  R.State.Prov = A.Prov;
  for (const auto &[K, Steps] : BR.Prov)
    R.State.Prov.emplace(K, Steps);
  for (const auto &[D, TA] : A.Vars) {
    auto It = BR.Vars.find(D);
    if (It == BR.Vars.end())
      continue; // Declared in one branch only: out of scope after.
    const Type *TB = It->second;
    if (TA && TB && typeEquals(TA, TB))
      R.State.Vars.emplace(D, TA);
    else
      R.State.Vars.emplace(D, nullptr);
  }
  return R;
}
