//===- FlowChecker.h - Held-key-set flow checking ---------------*- C++ -*-===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The flow-sensitive protocol checker (paper §3): walks a function
/// body tracking the held-key set, enforcing type guards at accesses,
/// instantiating polymorphic signatures at call sites and applying
/// their effects, packing/unpacking existentials at keyed-variant
/// construction and pattern matching, canonicalizing local keys at
/// join points, inferring loop invariants by bounded fixpoint
/// iteration, and checking the declared effect clause at every exit.
///
//===----------------------------------------------------------------------===//

#ifndef VAULT_SEMA_FLOWCHECKER_H
#define VAULT_SEMA_FLOWCHECKER_H

#include "sema/Elaborator.h"
#include "sema/FlowState.h"

#include <set>

namespace vault {

/// One observation of the held-key set at a program point, recorded
/// when key tracing is enabled — the tooling view of the checker's
/// reasoning ("which keys do I hold on this line?").
struct KeyTraceEntry {
  std::string Function;
  SourceLoc Loc;
  /// Rendered held-key set, e.g. "{R@T, S@named}".
  std::string Held;
};

class FlowChecker {
public:
  /// Bounded loop-invariant inference: iterations before giving up.
  static constexpr unsigned MaxLoopIterations = 16;

  FlowChecker(Elaborator &Elab, DiagnosticEngine &Diags)
      : Elab(Elab), TC(Elab.typeContext()), Diags(Diags) {}

  /// Checks the body of \p Sig's function. \p Enclosing is the lexical
  /// scope for nested functions (null for top-level ones).
  void checkFunction(const FuncSig *Sig, ElabScope *Enclosing);

  /// Records the held-key set after every statement into \p Sink.
  void setTraceSink(std::vector<KeyTraceEntry> *Sink) { Trace = Sink; }

  /// When enabled, the checker records a provenance chain per held key
  /// (acquire, state transitions, joins, effect applications) and
  /// attaches it as notes to key-related diagnostics (--explain).
  void setExplain(bool On) { Explain = On; }

  /// Largest held-key set observed while checking (nested functions
  /// included); feeds the --stats histograms.
  unsigned maxHeldKeys() const { return MaxHeld; }

  /// Observability counters, accumulated across nested functions.
  /// Feed the flow.* metrics.
  unsigned fixpointIterations() const { return FixpointIters; }
  unsigned keysetOps() const { return KeysetOps; }
  unsigned joins() const { return Joins; }
  unsigned joinRenamedKeys() const { return JoinRenamedKeys; }

private:
  struct ExprResult {
    const Type *Ty = nullptr;
    bool IsLValue = false;
    const void *VarId = nullptr; ///< Identity when the expr names a local.
  };

  // Statements.
  void checkStmt(const Stmt *S, FlowState &St);
  void checkStmtInner(const Stmt *S, FlowState &St);
  void checkBlock(const BlockStmt *B, FlowState &St);
  void checkVarDecl(const VarDecl *D, FlowState &St);
  void checkNestedFunc(const FuncDecl *F, FlowState &St, SourceLoc Loc);
  void checkCondition(const Expr *Cond, FlowState &St);
  void checkIf(const IfStmt *S, FlowState &St);
  void checkWhile(const WhileStmt *S, FlowState &St);
  void checkReturn(const ReturnStmt *S, FlowState &St);
  void checkSwitch(const SwitchStmt *S, FlowState &St);
  void checkFree(const FreeStmt *S, FlowState &St);
  void checkBorrow(const BorrowStmt *S, FlowState &St);
  void checkEndBorrow(const EndBorrowStmt *S, FlowState &St);

  // Expressions.
  ExprResult checkExpr(const Expr *E, FlowState &St,
                       const Type *Expected = nullptr);
  ExprResult checkName(const NameExpr *E, FlowState &St);
  ExprResult checkCallExpr(const CallExpr *E, FlowState &St);
  ExprResult checkCall(const FuncSig *Sig, const std::vector<Expr *> &Args,
                       SourceLoc Loc, FlowState &St);
  ExprResult checkCtor(const CtorExpr *E, FlowState &St, const Type *Expected);
  ExprResult checkNew(const NewExpr *E, FlowState &St);
  ExprResult checkField(const FieldExpr *E, FlowState &St);
  ExprResult checkIndex(const IndexExpr *E, FlowState &St);
  ExprResult checkAssign(const AssignExpr *E, FlowState &St);

  /// Peels guards (checking the guard keys) and tracked wrappers
  /// (checking the key is held) to reach the accessible value type.
  const Type *requireAccess(const Type *T, SourceLoc Loc, FlowState &St);

  /// Peels only the leading guard layers of \p T, checking each guard
  /// key is held in a satisfying state. When \p Collect is non-null the
  /// peeled guards are appended to it (borrow bookkeeping).
  const Type *peelGuards(const Type *T, SourceLoc Loc, FlowState &St,
                         std::vector<GuardedType::Guard> *Collect = nullptr);

  /// Reports FlowGuardedBorrowLive for every live borrow whose guard
  /// set contains \p K. \p NewState null means the key is about to be
  /// consumed; non-null means it is about to transition there (no
  /// report if the new state still satisfies the guard). Call before
  /// any held-set removal or transition of a potentially-guarding key.
  void checkBorrowGuards(KeySym K, const StateRef *NewState, SourceLoc Loc,
                         FlowState &St);

  /// Checks that \p From can initialize / be assigned into a location
  /// declared as \p DeclType; performs packing/unpacking. Returns the
  /// flow type the location holds afterwards (null on error, after
  /// reporting). \p BinderName non-empty binds the unpacked key name.
  const Type *coerceInit(const Type *DeclType, ExprResult From, SourceLoc Loc,
                         FlowState &St, const std::string &BinderName);

  /// Packs argument \p Arg into existential position \p ParamT:
  /// consumes keys of tracked arguments bound into anonymous/
  /// existential slots. Recurses through tuples.
  void packValue(const Type *ParamT, const Type *ArgT, SourceLoc Loc,
                 FlowState &St, const Subst &S);

  /// Unpacks a packed value of type \p Anon into a variable/binder:
  /// generates the fresh key, instantiates internal existentials, adds
  /// all of them to the held set, and returns the tracked type.
  const Type *unpackValue(const AnonTrackedType *Anon, SourceLoc Loc,
                          FlowState &St, const std::string &KeyName,
                          std::map<KeySym, KeySym> *SharedFresh = nullptr);

  /// Verifies the held-key set against the signature's declared post
  /// key set at an exit point. \p RetSubst carries bindings of fresh
  /// keys / state variables established by return-value unification.
  void checkExit(FlowState &St, Subst &RetSubst, SourceLoc Loc);

  void joinInto(FlowState &Into, const FlowState &Other, SourceLoc Loc);

  // Scope management.
  ElabScope &scope() { return *Scopes.back().Scope; }
  void pushScope();
  void popScope(FlowState &St);
  void bindLocal(const std::string &Name, ElabScope::ValueInfo Info);

  void report(DiagId Id, SourceLoc Loc, const std::string &Msg);
  void note(SourceLoc Loc, const std::string &Msg);

  /// Appends one provenance step for \p K to \p St (no-op unless
  /// --explain is on). Call at every held-set mutation site.
  void provStep(FlowState &St, KeySym K, SourceLoc Loc,
                const std::string &Desc);
  /// Attaches \p K's provenance chain (if any) to the diagnostic just
  /// reported, oldest step first. Call right after report().
  void explainKey(const FlowState &St, KeySym K);

  std::string keyDesc(KeySym K) const {
    return "'" + TC.keys().name(K) + "'";
  }

  Elaborator &Elab;
  TypeContext &TC;
  DiagnosticEngine &Diags;

  const FuncSig *Sig = nullptr;
  const Type *ErrTy() { return TC.errorType(); }

  struct ScopeFrame {
    std::unique_ptr<ElabScope> Scope;
    std::vector<const void *> DeclaredIds;
  };
  std::vector<ScopeFrame> Scopes;
  /// Identities bound by *this* function (as opposed to captured ones).
  std::set<const void *> LocalIds;
  /// Remembered `tracked(K)` binder names for variables declared
  /// without an initializer.
  std::map<const void *, std::string> PendingBinders;
  /// >0 suppresses diagnostics (loop fixpoint iterations).
  int Quiet = 0;
  /// See maxHeldKeys().
  unsigned MaxHeld = 0;
  /// See setExplain().
  bool Explain = false;
  /// See the accessors above.
  unsigned FixpointIters = 0;
  unsigned KeysetOps = 0;
  unsigned Joins = 0;
  unsigned JoinRenamedKeys = 0;
  /// Optional key-trace sink (see setTraceSink).
  std::vector<KeyTraceEntry> *Trace = nullptr;
};

} // namespace vault

#endif // VAULT_SEMA_FLOWCHECKER_H
