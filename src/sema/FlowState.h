//===- FlowState.h - The checker's flow fact --------------------*- C++ -*-===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The flow-sensitive state the Vault checker computes at every
/// program point: the held-key set plus the (key-referencing) types of
/// the live local variables. Joins canonicalize function-local key
/// names through the variable bindings, exactly as the paper describes
/// (§3: "on control-flow join points, we abstract over the actual
/// names of local keys in incoming key sets so as to analyze the
/// remainder of the control-flow graph only for distinct alias
/// relationships of local variables"). States that disagree at a join
/// — e.g. the paper's Fig. 5 — are reported as errors.
///
//===----------------------------------------------------------------------===//

#ifndef VAULT_SEMA_FLOWSTATE_H
#define VAULT_SEMA_FLOWSTATE_H

#include "support/SmallVector.h"
#include "support/SourceManager.h"
#include "types/Substitution.h"
#include "types/TypeContext.h"

#include <algorithm>
#include <map>
#include <vector>

namespace vault {

/// One step of a held key's provenance chain, recorded under --explain:
/// where the key was acquired, changed state, survived a join, or was
/// affected by an effect clause.
struct ProvStep {
  SourceLoc Loc;
  std::string Desc;
};

/// Flat sorted map from binding identity to flow-sensitive type — the
/// std::map subset FlowState needs, over a small-vector so the
/// branch/join snapshot copies the checker makes at every `if` are a
/// single allocation (or none: inline capacity covers most functions'
/// live-variable counts). Sorted by pointer; that order never reaches
/// any output (pinned by the jobs/cache determinism suites, which
/// compare runs with different heap layouts).
class VarMap {
public:
  struct Entry {
    const void *first;
    const Type *second;
  };
  using iterator = Entry *;
  using const_iterator = const Entry *;

  iterator begin() { return Entries.begin(); }
  iterator end() { return Entries.end(); }
  const_iterator begin() const { return Entries.begin(); }
  const_iterator end() const { return Entries.end(); }
  size_t size() const { return Entries.size(); }
  bool empty() const { return Entries.empty(); }

  iterator find(const void *D) {
    auto It = lowerBound(D);
    return It != end() && It->first == D ? It : end();
  }
  const_iterator find(const void *D) const {
    auto It = lowerBound(D);
    return It != end() && It->first == D ? It : end();
  }
  size_t count(const void *D) const { return find(D) != end() ? 1 : 0; }

  /// Inserts or updates; returns the slot's type reference.
  const Type *&operator[](const void *D) {
    auto It = lowerBound(D);
    if (It == end() || It->first != D)
      It = Entries.insert(It, Entry{D, nullptr});
    return It->second;
  }

  /// Inserts only if absent (std::map::emplace semantics).
  void emplace(const void *D, const Type *T) {
    auto It = lowerBound(D);
    if (It == end() || It->first != D)
      Entries.insert(It, Entry{D, T});
  }

  size_t erase(const void *D) {
    auto It = find(D);
    if (It == end())
      return 0;
    Entries.erase(It);
    return 1;
  }

private:
  iterator lowerBound(const void *D) {
    return std::lower_bound(
        Entries.begin(), Entries.end(), D,
        [](const Entry &E, const void *P) { return E.first < P; });
  }
  const_iterator lowerBound(const void *D) const {
    return std::lower_bound(
        Entries.begin(), Entries.end(), D,
        [](const Entry &E, const void *P) { return E.first < P; });
  }

  SmallVector<Entry, 8> Entries;
};

/// A live revocable borrow: the parent key the alias was split from,
/// plus the guard keys the borrowed value's accesses depend on.
/// The parent's state is not stored — `endborrow` propagates the
/// borrow key's *current* state back to the parent, so transitions
/// made through the alias survive revocation.
struct BorrowInfo {
  KeySym Parent = InvalidKey;
  /// Guards peeled from the borrowed value's type. Consuming one of
  /// these keys (or transitioning it out of the required state) while
  /// the borrow is live would revoke access out from under the alias;
  /// the checker reports FlowGuardedBorrowLive.
  std::vector<GuardedType::Guard> Guards;
};

class FlowState {
public:
  HeldKeySet Held;
  /// Live borrows, keyed by the borrow (alias) key. Threaded through
  /// joins and renames exactly like Held: a borrow live on one
  /// incoming path but not the other is a join mismatch (the Fig. 5
  /// conservatism extended to the revocation lattice).
  std::map<KeySym, BorrowInfo> Borrows;
  /// Provenance chains for held keys, populated only when the checker
  /// runs with --explain. Deliberately excluded from operator==: chains
  /// grow monotonically while a loop body is re-analyzed, so comparing
  /// them would keep the fixpoint iteration from ever converging.
  std::map<KeySym, std::vector<ProvStep>> Prov;
  /// Flow-sensitive types of local variables and parameters; a null
  /// type means "declared but not yet initialized". Keyed by the
  /// binding's identity (VarDecl, FuncDecl::Param, or pattern binder
  /// storage — see ElabScope::ValueInfo::Id).
  VarMap Vars;
  bool Reachable = true;

  bool operator==(const FlowState &O) const {
    if (Reachable != O.Reachable)
      return false;
    if (!Reachable)
      return true;
    if (!(Held == O.Held))
      return false;
    if (Borrows.size() != O.Borrows.size())
      return false;
    {
      auto BIt = O.Borrows.begin();
      for (const auto &[B, Info] : Borrows) {
        if (BIt->first != B || BIt->second.Parent != Info.Parent ||
            BIt->second.Guards.size() != Info.Guards.size())
          return false;
        for (size_t I = 0; I != Info.Guards.size(); ++I)
          if (Info.Guards[I].Key != BIt->second.Guards[I].Key ||
              !(Info.Guards[I].Required == BIt->second.Guards[I].Required))
            return false;
        ++BIt;
      }
    }
    if (Vars.size() != O.Vars.size())
      return false;
    auto It = O.Vars.begin();
    for (const auto &[D, T] : Vars) {
      if (It->first != D || !typeEquals(T, It->second))
        return false;
      ++It;
    }
    return true;
  }
};

/// Outcome of joining two flow states.
struct JoinResult {
  FlowState State;
  bool Ok = true;
  /// Human-readable explanation when Ok is false (which key/variable
  /// disagreed).
  std::string Mismatch;
  /// How many local keys were canonicalized (renamed) to make the two
  /// sides agree. Feeds the flow.join_renamed_keys metric.
  unsigned RenamedKeys = 0;
  /// The canonicalizing renaming itself (B key -> A key), for --explain
  /// provenance ("absorbed key ... at this branch join").
  KeyRename Renamed;
};

/// Joins the states flowing out of two branches. Local keys are
/// renamed through the common variables' bindings; held-key sets must
/// then agree exactly.
JoinResult joinStates(TypeContext &TC, const FlowState &A, const FlowState &B);

/// Applies a key renaming to every component of a state.
FlowState renameState(TypeContext &TC, const FlowState &S,
                      const KeyRename &Rename);

} // namespace vault

#endif // VAULT_SEMA_FLOWSTATE_H
