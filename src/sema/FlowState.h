//===- FlowState.h - The checker's flow fact --------------------*- C++ -*-===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The flow-sensitive state the Vault checker computes at every
/// program point: the held-key set plus the (key-referencing) types of
/// the live local variables. Joins canonicalize function-local key
/// names through the variable bindings, exactly as the paper describes
/// (§3: "on control-flow join points, we abstract over the actual
/// names of local keys in incoming key sets so as to analyze the
/// remainder of the control-flow graph only for distinct alias
/// relationships of local variables"). States that disagree at a join
/// — e.g. the paper's Fig. 5 — are reported as errors.
///
//===----------------------------------------------------------------------===//

#ifndef VAULT_SEMA_FLOWSTATE_H
#define VAULT_SEMA_FLOWSTATE_H

#include "support/SourceManager.h"
#include "types/Substitution.h"
#include "types/TypeContext.h"

#include <map>
#include <vector>

namespace vault {

/// One step of a held key's provenance chain, recorded under --explain:
/// where the key was acquired, changed state, survived a join, or was
/// affected by an effect clause.
struct ProvStep {
  SourceLoc Loc;
  std::string Desc;
};

class FlowState {
public:
  HeldKeySet Held;
  /// Provenance chains for held keys, populated only when the checker
  /// runs with --explain. Deliberately excluded from operator==: chains
  /// grow monotonically while a loop body is re-analyzed, so comparing
  /// them would keep the fixpoint iteration from ever converging.
  std::map<KeySym, std::vector<ProvStep>> Prov;
  /// Flow-sensitive types of local variables and parameters; a null
  /// type means "declared but not yet initialized". Keyed by the
  /// binding's identity (VarDecl, FuncDecl::Param, or pattern binder
  /// storage — see ElabScope::ValueInfo::Id).
  std::map<const void *, const Type *> Vars;
  bool Reachable = true;

  bool operator==(const FlowState &O) const {
    if (Reachable != O.Reachable)
      return false;
    if (!Reachable)
      return true;
    if (!(Held == O.Held))
      return false;
    if (Vars.size() != O.Vars.size())
      return false;
    auto It = O.Vars.begin();
    for (const auto &[D, T] : Vars) {
      if (It->first != D || !typeEquals(T, It->second))
        return false;
      ++It;
    }
    return true;
  }
};

/// Outcome of joining two flow states.
struct JoinResult {
  FlowState State;
  bool Ok = true;
  /// Human-readable explanation when Ok is false (which key/variable
  /// disagreed).
  std::string Mismatch;
  /// How many local keys were canonicalized (renamed) to make the two
  /// sides agree. Feeds the flow.join_renamed_keys metric.
  unsigned RenamedKeys = 0;
  /// The canonicalizing renaming itself (B key -> A key), for --explain
  /// provenance ("absorbed key ... at this branch join").
  std::map<KeySym, KeySym> Renamed;
};

/// Joins the states flowing out of two branches. Local keys are
/// renamed through the common variables' bindings; held-key sets must
/// then agree exactly.
JoinResult joinStates(TypeContext &TC, const FlowState &A, const FlowState &B);

/// Applies a key renaming to every component of a state.
FlowState renameState(TypeContext &TC, const FlowState &S,
                      const std::map<KeySym, KeySym> &Rename);

} // namespace vault

#endif // VAULT_SEMA_FLOWSTATE_H
