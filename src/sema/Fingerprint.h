//===- Fingerprint.h - Per-function incremental-check keys ------*- C++ -*-===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Computes, for every top-level function with a body, a stable
/// fingerprint of everything that can influence its flow-check outcome
/// *and* the bytes of its rendered diagnostics:
///
///   * the raw source of the function's declaration "chunk" (layout
///     included — carets and columns render from it), plus the
///     surrounding partial lines and the chunk's absolute position;
///   * the token streams of every declaration the function can
///     observe, transitively: callee *signatures* (never bodies),
///     stateset/variant/typedef/struct/key/interface definitions;
///   * the elaborated signatures involved (types, key sets, state
///     variables — via the stable hashing in types/);
///   * compilation-wide counters that leak into rendered text (key
///     display base, state-variable base) and the checker version.
///
/// Equal fingerprints imply byte-identical flow-check diagnostics, so
/// a cached result can be replayed instead of re-checking. The
/// converse is deliberately conservative: layout edits inside a
/// function, or declaration insertions that shift global counters,
/// re-check more than strictly necessary but never less.
///
//===----------------------------------------------------------------------===//

#ifndef VAULT_SEMA_FINGERPRINT_H
#define VAULT_SEMA_FINGERPRINT_H

#include "ast/Ast.h"
#include "support/Hash.h"
#include "types/Type.h"

#include <map>
#include <string>

namespace vault {

class SourceManager;

/// Fingerprint plus the replay anchor of one function: where its
/// declaration chunk sits now, so cached diagnostics (stored with
/// chunk-relative offsets) can be rebased.
struct FuncCacheKey {
  Fingerprint FP;
  uint32_t BufferId = 0;
  /// Byte offset of the chunk's first token.
  uint32_t ChunkBegin = 0;
  /// One past the chunk's last byte (the next chunk's first token, or
  /// end of buffer).
  uint32_t ChunkEnd = 0;
};

/// Builder/owner of the per-function cache keys of one compilation.
class FingerprintMap {
public:
  /// Compilation-global context folded into every fingerprint.
  struct GlobalContext {
    std::string CheckerVersion;
    /// Key-display numbering base of Pass 3 (== number of keys that
    /// exist after signature elaboration); local keys render as
    /// Base+1, Base+2, ... in messages.
    uint32_t KeyDisplayBase = 0;
    /// Elaborator state-variable counter after Pass 2; body-local
    /// state variables are numbered from it and render as "$N".
    uint32_t StateVarBase = 0;
  };

  /// Computes cache keys for every function in \p Sigs that has a
  /// body. \p Sigs maps each kept declaration to its elaborated
  /// signature (Checker::SigOf). Returns false — and leaves the map
  /// empty — when the surface form defeats per-declaration chunking
  /// (e.g. a declaration whose location cannot be matched to a token
  /// chunk); callers must then check everything.
  bool build(const SourceManager &SM, const Program &Prog,
             const std::map<const FuncDecl *, FuncSig *> &Sigs,
             const KeyTable &Keys, const GlobalContext &Ctx);

  /// Cache key of \p F, or null if \p F was not fingerprinted.
  const FuncCacheKey *find(const FuncDecl *F) const {
    auto It = Keys.find(F);
    return It == Keys.end() ? nullptr : &It->second;
  }

private:
  std::map<const FuncDecl *, FuncCacheKey> Keys;
};

} // namespace vault

#endif // VAULT_SEMA_FINGERPRINT_H
