//===- Gdi.h - Graphics device-context substrate ----------------*- C++ -*-===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's §6 names "graphic interfaces" as the next domain to
/// validate Vault's resource features on. This substrate implements a
/// Windows-GDI-style paint protocol:
///
///   BeginPaint -> (SelectPen -> draw* -> RestorePen)* -> EndPaint
///
/// with the classic GDI rules the Vault interface (corpus/include/
/// gdi.vlt) enforces statically: a device context must be released by
/// EndPaint exactly once, drawing requires a live DC, the original pen
/// must be restored before release (otherwise the selected object
/// leaks), and created pens must be deleted. As with the other
/// substrates, every rule is also checked dynamically so the oracle
/// can play the "testing" baseline.
///
//===----------------------------------------------------------------------===//

#ifndef VAULT_GDI_GDI_H
#define VAULT_GDI_GDI_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace vault::gdi {

enum class GdiError : uint8_t {
  Ok,
  BadHandle,      ///< Unknown or released handle.
  WrongState,     ///< Operation in the wrong protocol state.
  PenStillCustom, ///< EndPaint while a custom pen is selected.
  NotSelected,    ///< Restore with no custom pen selected.
};

const char *gdiErrorName(GdiError E);

/// The simulated graphics world: windows, device contexts, pens, and
/// a recorded display list (so tests can assert on what was drawn).
class GdiWorld {
public:
  using Handle = uint64_t;

  struct DrawCommand {
    Handle Dc;
    Handle Pen; ///< 0 = stock pen.
    int X0, Y0, X1, Y1;
  };

  Handle createWindow(std::string Title);

  /// Opens a paint session on a window, returning a fresh DC with the
  /// stock pen selected.
  GdiError beginPaint(Handle Window, Handle &OutDc);

  /// Closes a paint session. PenStillCustom if a custom pen is still
  /// selected (the GDI object would leak); WrongState on double end.
  GdiError endPaint(Handle Window, Handle Dc);

  Handle createPen(int Width, uint32_t Color);
  GdiError deletePen(Handle Pen);

  /// Selects \p Pen into \p Dc, returning the previously selected pen
  /// through \p OutOld. The DC moves to the "custom" state.
  GdiError selectPen(Handle Dc, Handle Pen, Handle &OutOld);

  /// Restores \p Old (as returned by selectPen); DC back to "plain".
  GdiError restorePen(Handle Dc, Handle Old);

  GdiError moveTo(Handle Dc, int X, int Y);
  GdiError lineTo(Handle Dc, int X, int Y);

  const std::vector<DrawCommand> &displayList() const { return Drawn; }

  bool isDcLive(Handle Dc) const;
  size_t liveDcCount() const;
  std::vector<Handle> leakedDcs() const;
  size_t livePenCount() const;

  unsigned violationCount() const { return Violations; }
  const std::vector<std::string> &violationLog() const { return Log; }

private:
  struct Window {
    std::string Title;
    Handle ActiveDc = 0;
  };
  struct Dc {
    Handle Window = 0;
    bool Live = false;
    Handle SelectedPen = 0; ///< 0 = stock pen ("plain" state).
    int CurX = 0, CurY = 0;
  };
  struct Pen {
    int Width = 1;
    uint32_t Color = 0;
    bool Live = false;
  };

  Dc *dc(Handle H);
  void violation(GdiError E, const std::string &What);

  std::vector<Window> Windows;
  std::vector<Dc> Dcs;
  std::vector<Pen> Pens;
  std::vector<DrawCommand> Drawn;
  unsigned Violations = 0;
  std::vector<std::string> Log;
};

} // namespace vault::gdi

#endif // VAULT_GDI_GDI_H
