//===- Gdi.cpp ------------------------------------------------------------===//

#include "gdi/Gdi.h"

using namespace vault::gdi;

const char *vault::gdi::gdiErrorName(GdiError E) {
  switch (E) {
  case GdiError::Ok:
    return "ok";
  case GdiError::BadHandle:
    return "bad-handle";
  case GdiError::WrongState:
    return "wrong-state";
  case GdiError::PenStillCustom:
    return "pen-still-custom";
  case GdiError::NotSelected:
    return "not-selected";
  }
  return "?";
}

void GdiWorld::violation(GdiError E, const std::string &What) {
  ++Violations;
  Log.push_back(std::string(gdiErrorName(E)) + ": " + What);
}

GdiWorld::Dc *GdiWorld::dc(Handle H) {
  if (H < 1 || H > Dcs.size() || !Dcs[H - 1].Live)
    return nullptr;
  return &Dcs[H - 1];
}

GdiWorld::Handle GdiWorld::createWindow(std::string Title) {
  Windows.push_back(Window{std::move(Title), 0});
  return Windows.size();
}

GdiError GdiWorld::beginPaint(Handle WindowH, Handle &OutDc) {
  if (WindowH < 1 || WindowH > Windows.size()) {
    violation(GdiError::BadHandle, "BeginPaint on unknown window");
    return GdiError::BadHandle;
  }
  Dc D;
  D.Window = WindowH;
  D.Live = true;
  Dcs.push_back(D);
  OutDc = Dcs.size();
  Windows[WindowH - 1].ActiveDc = OutDc;
  return GdiError::Ok;
}

GdiError GdiWorld::endPaint(Handle WindowH, Handle DcH) {
  Dc *D = dc(DcH);
  if (!D) {
    violation(GdiError::WrongState, "EndPaint on dead DC (double end?)");
    return GdiError::WrongState;
  }
  if (D->Window != WindowH) {
    violation(GdiError::BadHandle, "EndPaint with mismatched window");
    return GdiError::BadHandle;
  }
  if (D->SelectedPen != 0) {
    // The DC dies with a custom object selected: that object can never
    // be safely deleted — a GDI leak.
    violation(GdiError::PenStillCustom,
              "EndPaint while a custom pen is selected");
    D->Live = false;
    return GdiError::PenStillCustom;
  }
  D->Live = false;
  Windows[WindowH - 1].ActiveDc = 0;
  return GdiError::Ok;
}

GdiWorld::Handle GdiWorld::createPen(int Width, uint32_t Color) {
  Pens.push_back(Pen{Width, Color, true});
  return Pens.size();
}

GdiError GdiWorld::deletePen(Handle PenH) {
  if (PenH < 1 || PenH > Pens.size() || !Pens[PenH - 1].Live) {
    violation(GdiError::BadHandle, "DeletePen on dead pen");
    return GdiError::BadHandle;
  }
  // Deleting a pen still selected into a live DC is a classic GDI bug.
  for (const Dc &D : Dcs)
    if (D.Live && D.SelectedPen == PenH) {
      violation(GdiError::WrongState, "DeletePen while selected into a DC");
      return GdiError::WrongState;
    }
  Pens[PenH - 1].Live = false;
  return GdiError::Ok;
}

GdiError GdiWorld::selectPen(Handle DcH, Handle PenH, Handle &OutOld) {
  Dc *D = dc(DcH);
  if (!D) {
    violation(GdiError::BadHandle, "SelectPen on dead DC");
    return GdiError::BadHandle;
  }
  if (PenH < 1 || PenH > Pens.size() || !Pens[PenH - 1].Live) {
    violation(GdiError::BadHandle, "SelectPen with dead pen");
    return GdiError::BadHandle;
  }
  OutOld = D->SelectedPen;
  D->SelectedPen = PenH;
  return GdiError::Ok;
}

GdiError GdiWorld::restorePen(Handle DcH, Handle Old) {
  Dc *D = dc(DcH);
  if (!D) {
    violation(GdiError::BadHandle, "RestorePen on dead DC");
    return GdiError::BadHandle;
  }
  if (D->SelectedPen == 0) {
    violation(GdiError::NotSelected, "RestorePen with no custom pen");
    return GdiError::NotSelected;
  }
  D->SelectedPen = Old;
  return GdiError::Ok;
}

GdiError GdiWorld::moveTo(Handle DcH, int X, int Y) {
  Dc *D = dc(DcH);
  if (!D) {
    violation(GdiError::BadHandle, "MoveTo on dead DC");
    return GdiError::BadHandle;
  }
  D->CurX = X;
  D->CurY = Y;
  return GdiError::Ok;
}

GdiError GdiWorld::lineTo(Handle DcH, int X, int Y) {
  Dc *D = dc(DcH);
  if (!D) {
    violation(GdiError::BadHandle, "LineTo on dead DC");
    return GdiError::BadHandle;
  }
  Drawn.push_back(DrawCommand{DcH, D->SelectedPen, D->CurX, D->CurY, X, Y});
  D->CurX = X;
  D->CurY = Y;
  return GdiError::Ok;
}

bool GdiWorld::isDcLive(Handle DcH) const {
  return DcH >= 1 && DcH <= Dcs.size() && Dcs[DcH - 1].Live;
}

size_t GdiWorld::liveDcCount() const {
  size_t N = 0;
  for (const Dc &D : Dcs)
    if (D.Live)
      ++N;
  return N;
}

std::vector<GdiWorld::Handle> GdiWorld::leakedDcs() const {
  std::vector<Handle> Out;
  for (size_t I = 0; I != Dcs.size(); ++I)
    if (Dcs[I].Live)
      Out.push_back(I + 1);
  return Out;
}

size_t GdiWorld::livePenCount() const {
  size_t N = 0;
  for (const Pen &P : Pens)
    if (P.Live)
      ++N;
  return N;
}
