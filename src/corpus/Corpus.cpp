//===- Corpus.cpp ---------------------------------------------------------===//

#include "corpus/Corpus.h"

#include <fstream>
#include <sstream>

using namespace vault;
using namespace vault::corpus;

std::string vault::corpus::corpusDir() {
#ifdef VAULT_CORPUS_DIR
  return VAULT_CORPUS_DIR;
#else
  return "corpus";
#endif
}

static std::string readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return {};
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

std::string vault::corpus::loadInclude(const std::string &Name) {
  return readFile(corpusDir() + "/include/" + Name);
}

std::string
vault::corpus::resolveIncludes(const std::string &Text,
                               std::vector<std::string> *MissingIncludes) {
  // Resolve leading //!include directives. The directive is only
  // honored in the comment header (before the first code line), per
  // the corpus contract; a missing prelude is recorded rather than
  // silently spliced as empty text.
  std::string Out;
  std::istringstream Lines(Text);
  std::string Line;
  bool InHeader = true;
  while (std::getline(Lines, Line)) {
    if (InHeader && Line.rfind("//!include ", 0) == 0) {
      std::string Inc = Line.substr(11);
      while (!Inc.empty() && (Inc.back() == '\r' || Inc.back() == ' '))
        Inc.pop_back();
      std::string Prelude = loadInclude(Inc);
      if (Prelude.empty() && MissingIncludes)
        MissingIncludes->push_back(Inc);
      Out += Prelude;
      Out += '\n';
      continue;
    }
    if (!Line.empty() && Line.rfind("//", 0) != 0)
      InHeader = false;
    Out += Line;
    Out += '\n';
  }
  return Out;
}

std::string vault::corpus::load(const std::string &Name,
                                std::vector<std::string> *MissingIncludes) {
  std::string Path = corpusDir() + "/" + Name;
  if (Path.size() < 4 || Path.substr(Path.size() - 4) != ".vlt")
    Path += ".vlt";
  std::string Text = readFile(Path);
  if (Text.empty())
    return Text;
  return resolveIncludes(Text, MissingIncludes);
}

std::unique_ptr<VaultCompiler> vault::corpus::check(const std::string &Name) {
  auto C = std::make_unique<VaultCompiler>();
  std::vector<std::string> Missing;
  std::string Text = load(Name, &Missing);
  if (Text.empty()) {
    C->diags().report(DiagId::RunError, SourceLoc{},
                      "cannot load corpus program '" + Name + "'");
    return C;
  }
  for (const std::string &Inc : Missing)
    C->diags().report(DiagId::RunError, SourceLoc{},
                      "cannot resolve include '" + Inc + "' in corpus program '" +
                          Name + "'");
  C->addSource(Name + ".vlt", Text);
  C->check();
  return C;
}

const std::vector<ProgramInfo> &vault::corpus::index() {
  static const std::vector<ProgramInfo> Index = {
      // --- Figure 2: regions (§2.2) ---
      {"figures/fig2_okay", true, {}, true, false, "Fig. 2 okay"},
      {"figures/fig2_dangling",
       false,
       {DiagId::FlowGuardNotHeld},
       true,
       true,
       "Fig. 2 dangling"},
      {"figures/fig2_leaky",
       false,
       {DiagId::FlowKeyLeaked},
       true,
       true,
       "Fig. 2 leaky"},
      // --- §2.1: keyed variants ---
      {"figures/sec21_flag", true, {}, true, false, "§2.1 flag"},
      {"figures/sec21_flag_untested",
       false,
       {DiagId::FlowKeyLeaked},
       true,
       false, // The leaked handle is dynamically unobservable.
       "§2.1 flag (untested)"},
      // --- Figure 3: sockets (§2.3) ---
      {"figures/fig3_server_ok", true, {}, true, false, "Fig. 3 server"},
      {"figures/fig3_missing_bind",
       false,
       {DiagId::FlowKeyWrongState},
       true,
       true,
       "§2.3 missing bind"},
      {"figures/fig3_missing_listen",
       false,
       {DiagId::FlowKeyWrongState},
       true,
       true,
       "§2.3 missing listen"},
      {"figures/fig3_socket_leak",
       false,
       {DiagId::FlowKeyLeaked},
       true,
       true,
       "§2.3 socket leak"},
      {"figures/fig3_unchecked_bind",
       false,
       {DiagId::FlowKeyNotHeld},
       true,
       false,
       "§2.3 unchecked bind"},
      {"figures/fig3_checked_bind", true, {}, true, false,
       "§2.3 checked bind"},
      // --- Figure 4 / §2.4: anonymization ---
      {"figures/fig4_anonymous",
       false,
       {DiagId::FlowGuardNotHeld},
       true,
       false, // Dynamically safe: the region is still live. The
              // rejection shows the anonymization abstraction (§2.4).
       "Fig. 4"},
      {"figures/fig4_fixed_pairs", true, {}, true, false, "§2.4 pairs fix"},
      // --- Figure 5 / §2.4: join points ---
      {"figures/fig5_join",
       false,
       {DiagId::FlowJoinMismatch},
       true,
       false,
       "Fig. 5"},
      {"figures/fig5_fixed", true, {}, true, false, "§2.4 variant fix"},
      // --- Figure 7 / §4.3: completion routines ---
      {"figures/fig7_completion", true, {}, false, false, "Fig. 7"},
      {"figures/fig7_finished_bug",
       false,
       {DiagId::FlowKeyNotHeld},
       false,
       false,
       "§4.3 footnote 10"},
      // --- §4.1: IRP discipline ---
      {"figures/irp_service_ok", true, {}, false, false, "§4.1"},
      {"figures/irp_service_leak",
       false,
       {DiagId::FlowKeyLeaked},
       false,
       false,
       "§4.1 forgotten IRP"},
      {"figures/irp_pend_queue_ok", true, {}, false, false, "§4.1 pending"},
      // --- §4.2: locks and events ---
      {"figures/locks_ok", true, {}, false, false, "§4.2"},
      {"figures/locks_missing_release",
       false,
       {DiagId::FlowKeyLeaked},
       false,
       false,
       "§4.2 missing release"},
      {"figures/locks_double_acquire",
       false,
       {DiagId::FlowKeyAlreadyHeld},
       false,
       false,
       "§4.2 double acquire"},
      {"figures/locks_unguarded_access",
       false,
       {DiagId::FlowKeyNotHeld},
       false,
       false,
       "§4.2 unguarded access"},
      // --- §4.4: IRQL and paged memory ---
      {"figures/irql_paged_ok", true, {}, false, false, "§4.4"},
      {"figures/irql_paged_bad",
       false,
       {DiagId::FlowKeyWrongState},
       false,
       false,
       "§4.4 paged at DISPATCH"},
      {"figures/irql_direct_access_bad",
       false,
       {DiagId::FlowGuardWrongState},
       false,
       false,
       "§4.4 guarded paged data"},
      {"figures/irql_priority_bad",
       false,
       {DiagId::FlowKeyWrongState},
       false,
       false,
       "§4.4 KeSetPriorityThread"},
      {"figures/irql_semaphore_ok", true, {}, false, false,
       "§4.4 bounded polymorphism"},
      // --- §6: the pipeline-in-regions validation ---
      {"figures/sec6_pipeline", true, {}, true, false, "§6 pipeline"},
      {"figures/sec6_pipeline_bug",
       false,
       {DiagId::FlowGuardNotHeld},
       true,
       true,
       "§6 pipeline stage bug"},
      // --- The case-study driver (§4) ---
      {"driver/floppy", true, {}, false, false, "§4 floppy driver"},
      // --- Seeded-defect suite (detection-rate experiment, E11) ---
      {"defects/region_ok_workload", true, {}, true, false, "control"},
      {"defects/region_double_delete",
       false,
       {DiagId::FlowKeyNotHeld},
       true,
       true,
       "double delete"},
      {"defects/region_use_after_delete_cold",
       false,
       {DiagId::FlowGuardNotHeld},
       true,
       false,
       "dangling on cold path"},
      {"defects/region_leak_cold",
       false,
       {DiagId::FlowKeyLeaked},
       true,
       false,
       "leak on cold path"},
      {"defects/region_leak_hot",
       false,
       {DiagId::FlowKeyLeaked},
       true,
       true,
       "unconditional leak"},
      {"defects/heap_use_after_free",
       false,
       {DiagId::FlowKeyNotHeld},
       true,
       true,
       "use after free"},
      {"defects/heap_double_free",
       false,
       {DiagId::FlowKeyNotHeld},
       true,
       true,
       "double free"},
      {"defects/socket_receive_raw",
       false,
       {DiagId::FlowKeyWrongState},
       true,
       true,
       "receive on raw socket"},
      {"defects/socket_double_close_cold",
       false,
       {DiagId::FlowKeyNotHeld},
       true,
       false,
       "double close on cold path"},
      {"defects/socket_loop_leak",
       false,
       {},
       true,
       true,
       "leaking accept loop"},
      {"defects/file_leak",
       false,
       {DiagId::FlowKeyLeaked},
       true,
       false,
       "unobservable handle leak"},
      {"defects/file_double_close",
       false,
       {DiagId::FlowKeyNotHeld},
       true,
       true,
       "file double close"},
      // --- Graphics device contexts (§6's "graphic interfaces") ---
      {"gdi/paint_ok", true, {}, true, false, "§6 GDI paint"},
      {"gdi/missing_endpaint",
       false,
       {DiagId::FlowKeyLeaked},
       true,
       true,
       "§6 GDI DC leak"},
      {"gdi/unrestored_pen",
       false,
       {DiagId::FlowKeyWrongState},
       true,
       true,
       "§6 GDI unrestored pen"},
      {"gdi/draw_after_endpaint",
       false,
       {DiagId::FlowKeyNotHeld},
       true,
       true,
       "§6 GDI draw after end"},
      {"gdi/delete_selected_pen",
       false,
       {DiagId::FlowKeyNotHeld},
       true,
       true,
       "§6 GDI delete selected pen"},
      {"gdi/pen_leak_cold",
       false,
       {DiagId::FlowKeyLeaked},
       true,
       false,
       "§6 GDI pen leak, cold path"},
      {"gdi/conditional_restore",
       false,
       {DiagId::FlowJoinMismatch},
       true,
       false, // The default input takes the restoring branch: another
              // cold-path bug a single test run misses.
       "§6 GDI Fig.5-style join"},
      {"gdi/conditional_restore_fixed", true, {}, true, false,
       "§6 GDI join fixed"},
      // --- The concurrency protocol domain (guarded-by + borrows) ---
      {"locks/guarded_ok", true, {}, true, false, "§4.2 guarded cell"},
      {"locks/borrow_loop_ok", true, {}, true, false,
       "§4.2 borrow in a loop"},
      {"locks/two_locks_ok", true, {}, true, false, "§4.2 two lock domains"},
      {"locks/unguarded_access",
       false,
       {DiagId::FlowGuardWrongState},
       true,
       true,
       "§4.2 unguarded cell write"},
      {"locks/unlock_borrow_live",
       false,
       {DiagId::FlowGuardedBorrowLive},
       true,
       true,
       "§4.2 unlock under live borrow"},
      {"locks/use_after_revoke",
       false,
       {DiagId::FlowKeyNotHeld},
       true,
       true,
       "§4.2 use after revoke"},
      {"locks/conditional_endborrow",
       false,
       {DiagId::FlowJoinMismatch},
       true,
       false, // The default input revokes: a cold-path defect.
       "§4.2 borrow join mismatch"},
      {"locks/borrow_live_at_exit",
       false,
       {DiagId::FlowBorrowLiveAtExit},
       true,
       true, // The mutex leaks: visible to the leak tracker.
       "§4.2 borrow live at exit"},
  };
  return Index;
}
