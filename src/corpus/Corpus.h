//===- Corpus.h - The evaluation program corpus -----------------*- C++ -*-===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Index over the Vault program corpus in <repo>/corpus: every figure
/// of the paper as a checkable program with its expected verdict, the
/// full floppy driver, and a seeded-defect suite for the
/// detection-rate experiment. Programs may reference shared preludes
/// via a first-lines `//!include name.vlt` directive, resolved against
/// corpus/include.
///
//===----------------------------------------------------------------------===//

#ifndef VAULT_CORPUS_CORPUS_H
#define VAULT_CORPUS_CORPUS_H

#include "sema/Checker.h"

#include <memory>
#include <string>
#include <vector>

namespace vault::corpus {

struct ProgramInfo {
  /// Relative path without extension, e.g. "figures/fig2_okay".
  std::string Name;
  /// Expected static verdict.
  bool ExpectAccept = true;
  /// Diagnostics that must appear when rejected (subset check).
  std::vector<DiagId> MustReport;
  /// Has a main() executable under the interpreter.
  bool Runnable = false;
  /// When run, the dynamic oracle is expected to record violations
  /// (true only for runnable, statically-rejected programs whose bug
  /// actually triggers on the default input).
  bool ExpectDynViolations = false;
  /// Paper artifact this reproduces, for reports ("Fig. 2", "§4.1").
  std::string PaperRef;
};

/// The corpus root (set at build time from the repository).
std::string corpusDir();

/// Every indexed program.
const std::vector<ProgramInfo> &index();

/// Loads a program (by index name or path), resolving includes.
/// Returns an empty string if the file cannot be read. Include
/// directives naming files that do not exist under corpus/include are
/// recorded in \p MissingIncludes (when non-null); callers are
/// expected to turn them into hard errors.
std::string load(const std::string &Name,
                 std::vector<std::string> *MissingIncludes = nullptr);

/// Splices `//!include name.vlt` lines in \p Text with the named
/// prelude from corpus/include, recording unresolvable names in
/// \p MissingIncludes (when non-null).
std::string resolveIncludes(const std::string &Text,
                            std::vector<std::string> *MissingIncludes = nullptr);

/// Loads, parses, and checks a corpus program.
std::unique_ptr<VaultCompiler> check(const std::string &Name);

/// The raw text of the include prelude \p Name (e.g. "kernel.vlt").
std::string loadInclude(const std::string &Name);

} // namespace vault::corpus

#endif // VAULT_CORPUS_CORPUS_H
