//===- Trace.h - Span/event recorder for --trace-json -----------*- C++ -*-===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lock-free-per-thread span recorder emitting Chrome
/// `chrome://tracing` / Perfetto-compatible trace-event JSON
/// ("complete" events, ph "X"). Every pass of the checker opens spans
/// against a Tracer wired through VaultCompiler::setTracer(); a null
/// tracer reduces every instrumentation site to a single branch, which
/// is the whole cost of tracing-disabled builds (bench_trace pins it).
///
/// Threading model: each worker thread appends to its own buffer; the
/// shared mutex is taken only once per (thread, tracer) pair, to
/// register the buffer. Recording itself never synchronizes, so span
/// timestamps are honest even under --jobs N. Buffers are merged and
/// sorted at serialization time.
///
//===----------------------------------------------------------------------===//

#ifndef VAULT_SUPPORT_TRACE_H
#define VAULT_SUPPORT_TRACE_H

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace vault {

class Tracer {
public:
  using Args = std::vector<std::pair<std::string, std::string>>;

  Tracer();
  Tracer(const Tracer &) = delete;
  Tracer &operator=(const Tracer &) = delete;

  /// Microseconds since this tracer was constructed (steady clock, so
  /// per-thread timestamps are monotonic).
  uint64_t nowUs() const;

  /// Records one complete ("X") event on the calling thread's buffer.
  void complete(std::string Name, uint64_t BeginUs, uint64_t EndUs,
                Args EventArgs = {});

  /// All recorded events as a Chrome trace-event JSON document.
  /// Events are sorted by (ts, dur desc, tid, name) so that, within a
  /// thread, a parent precedes the children it contains — the order
  /// the nesting validation in the tests relies on.
  std::string json() const;

  /// Writes json() to \p Path. Returns false on any filesystem error.
  bool writeJson(const std::string &Path) const;

  /// Number of events recorded so far (all threads).
  size_t eventCount() const;

private:
  struct Event {
    std::string Name;
    uint64_t TsUs = 0;
    uint64_t DurUs = 0;
    uint32_t Tid = 0;
    Args EventArgs;
  };
  struct ThreadBuf {
    uint32_t Tid = 0;
    std::vector<Event> Events;
  };

  ThreadBuf &localBuf();

  /// Process-unique id: the thread-local buffer cache keys on it, so a
  /// tracer allocated at a previous tracer's address can never alias
  /// its stale cached buffer.
  const uint64_t Id;
  const std::chrono::steady_clock::time_point Epoch;
  mutable std::mutex Mu; ///< Guards Bufs growth (registration only).
  std::vector<std::unique_ptr<ThreadBuf>> Bufs;
};

/// RAII span over a Tracer that may be null. With a null tracer every
/// member is one branch and no allocation happens — instrumentation
/// sites can stay unconditional.
class TraceSpan {
public:
  TraceSpan(Tracer *T, const char *Name) : T(T) {
    if (T) {
      this->Name = Name;
      Begin = T->nowUs();
    }
  }
  TraceSpan(Tracer *T, std::string NameStr) : T(T) {
    if (T) {
      Name = std::move(NameStr);
      Begin = T->nowUs();
    }
  }
  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;
  ~TraceSpan() {
    if (T)
      T->complete(std::move(Name), Begin, T->nowUs(), std::move(SpanArgs));
  }

  void arg(const char *Key, std::string Value) {
    if (T)
      SpanArgs.emplace_back(Key, std::move(Value));
  }
  void arg(const char *Key, uint64_t Value) {
    if (T)
      SpanArgs.emplace_back(Key, std::to_string(Value));
  }

private:
  Tracer *T;
  std::string Name;
  uint64_t Begin = 0;
  Tracer::Args SpanArgs;
};

} // namespace vault

#endif // VAULT_SUPPORT_TRACE_H
