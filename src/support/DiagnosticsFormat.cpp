//===- DiagnosticsFormat.cpp ----------------------------------------------===//

#include "support/DiagnosticsFormat.h"

#include "support/Diagnostics.h"
#include "support/Json.h"

#include <algorithm>
#include <set>

using namespace vault;

static const char *severityName(DiagSeverity S) {
  switch (S) {
  case DiagSeverity::Note:
    return "note";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Error:
    return "error";
  }
  return "error";
}

namespace {
struct Position {
  std::string File;
  unsigned Line = 0;
  unsigned Column = 0;
};
} // namespace

static Position position(const SourceManager &SM, SourceLoc Loc) {
  Position P;
  if (Loc.isValid()) {
    PresumedLoc PL = SM.presumed(Loc);
    P.File = PL.BufferName;
    P.Line = PL.Line;
    P.Column = PL.Column;
  }
  return P;
}

std::string vault::renderDiagnosticsJson(const DiagnosticEngine &Diags) {
  const SourceManager &SM = Diags.sourceManager();
  std::string Out = "{\n  \"diagnostics\": [";
  // Each diagnostic renders to ~200 bytes plus its message; one
  // up-front reservation keeps the += chain from reallocating.
  Out.reserve(64 + Diags.diagnostics().size() * 256);
  bool First = true;
  for (const Diagnostic &D : Diags.diagnostics()) {
    Out += First ? "\n" : ",\n";
    First = false;
    Position P = position(SM, D.Loc);
    Out += "    {\"id\": " + json::str(diagName(D.Id)) +
           ", \"severity\": " + json::str(severityName(D.Severity)) +
           ", \"file\": " + json::str(P.File) +
           ", \"line\": " + std::to_string(P.Line) +
           ", \"column\": " + std::to_string(P.Column) +
           ", \"message\": " + json::str(D.Message);
    if (!D.Notes.empty()) {
      Out += ", \"notes\": [";
      bool FirstNote = true;
      for (const auto &[NLoc, NMsg] : D.Notes) {
        if (!FirstNote)
          Out += ", ";
        FirstNote = false;
        Position NP = position(SM, NLoc);
        Out += "{\"file\": " + json::str(NP.File) +
               ", \"line\": " + std::to_string(NP.Line) +
               ", \"column\": " + std::to_string(NP.Column) +
               ", \"message\": " + json::str(NMsg) + "}";
      }
      Out += "]";
    }
    Out += "}";
  }
  Out += "\n  ]\n}\n";
  return Out;
}

static std::string sarifLocation(const Position &P) {
  std::string Out = "{\"physicalLocation\": {\"artifactLocation\": {\"uri\": " +
                    json::str(P.File) + "}";
  if (P.Line != 0)
    Out += ", \"region\": {\"startLine\": " + std::to_string(P.Line) +
           ", \"startColumn\": " + std::to_string(P.Column) + "}";
  Out += "}}";
  return Out;
}

std::string vault::renderDiagnosticsSarif(const DiagnosticEngine &Diags) {
  const SourceManager &SM = Diags.sourceManager();

  // The rule table lists exactly the distinct ids that fired, sorted by
  // name so the document is independent of report order.
  std::set<std::string> RuleIds;
  for (const Diagnostic &D : Diags.diagnostics())
    RuleIds.insert(diagName(D.Id));

  std::string Out =
      "{\n"
      "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"runs\": [\n"
      "    {\n"
      "      \"tool\": {\"driver\": {\"name\": \"vaultc\", \"rules\": [";
  Out.reserve(512 + Diags.diagnostics().size() * 384);
  bool First = true;
  for (const std::string &Rule : RuleIds) {
    if (!First)
      Out += ", ";
    First = false;
    Out += "{\"id\": " + json::str(Rule) + "}";
  }
  Out += "]}},\n"
         "      \"results\": [";
  First = true;
  for (const Diagnostic &D : Diags.diagnostics()) {
    Out += First ? "\n" : ",\n";
    First = false;
    Position P = position(SM, D.Loc);
    Out += "        {\"ruleId\": " + json::str(diagName(D.Id)) +
           ", \"level\": " + json::str(severityName(D.Severity)) +
           ", \"message\": {\"text\": " + json::str(D.Message) +
           "}, \"locations\": [" + sarifLocation(P) + "]";
    if (!D.Notes.empty()) {
      Out += ", \"relatedLocations\": [";
      bool FirstNote = true;
      for (const auto &[NLoc, NMsg] : D.Notes) {
        if (!FirstNote)
          Out += ", ";
        FirstNote = false;
        Position NP = position(SM, NLoc);
        // A relatedLocation is the physicalLocation plus its message in
        // the same object: drop sarifLocation's closing brace and
        // append the message.
        std::string Loc = sarifLocation(NP);
        Loc.pop_back();
        Out += Loc + ", \"message\": {\"text\": " + json::str(NMsg) + "}}";
      }
      Out += "]";
    }
    Out += "}";
  }
  Out += "\n      ]\n"
         "    }\n"
         "  ]\n"
         "}\n";
  return Out;
}
