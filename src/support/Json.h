//===- Json.h - Minimal JSON emission helpers -------------------*- C++ -*-===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String escaping and number formatting for the observability
/// emitters (trace-event JSON, --stats-json, --diagnostics-format).
/// Output-only: the toolchain never needs to parse JSON, so there is
/// deliberately no reader here (the trace tests carry their own).
///
//===----------------------------------------------------------------------===//

#ifndef VAULT_SUPPORT_JSON_H
#define VAULT_SUPPORT_JSON_H

#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

namespace vault {
namespace json {

/// Escapes \p S for inclusion inside a JSON string literal (quotes not
/// included). Control characters become \uXXXX.
inline std::string escape(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\b':
      Out += "\\b";
      break;
    case '\f':
      Out += "\\f";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  return Out;
}

/// \p S as a quoted JSON string literal.
inline std::string str(std::string_view S) {
  return "\"" + escape(S) + "\"";
}

/// A double in the shortest form that round-trips, without locale
/// dependence ("." decimal point always).
inline std::string num(double V) {
  char Buf[64];
  // Integral values print as integers ("10", not "1e+01").
  if (V == static_cast<double>(static_cast<long long>(V)) &&
      V >= -1e15 && V <= 1e15) {
    std::snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(V));
    return Buf;
  }
  for (int Prec = 1; Prec <= 17; ++Prec) {
    std::snprintf(Buf, sizeof(Buf), "%.*g", Prec, V);
    if (std::strtod(Buf, nullptr) == V)
      break;
  }
  // snprintf %g never emits a locale comma for the "C" locale the
  // toolchain runs in, but normalize defensively.
  for (char &C : Buf)
    if (C == ',')
      C = '.';
  return Buf;
}

} // namespace json
} // namespace vault

#endif // VAULT_SUPPORT_JSON_H
