//===- Json.h - Minimal JSON emission helpers -------------------*- C++ -*-===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String escaping and number formatting for the observability
/// emitters (trace-event JSON, --stats-json, --diagnostics-format).
/// Output-only: the toolchain never needs to parse JSON, so there is
/// deliberately no reader here (the trace tests carry their own).
///
//===----------------------------------------------------------------------===//

#ifndef VAULT_SUPPORT_JSON_H
#define VAULT_SUPPORT_JSON_H

#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

namespace vault {
namespace json {

/// Length of the well-formed UTF-8 sequence starting at S[I], or 0 if
/// the bytes there are not valid UTF-8 (stray continuation byte,
/// overlong encoding, surrogate, out-of-range lead, or truncation).
inline size_t utf8SequenceLength(std::string_view S, size_t I) {
  auto Cont = [&](size_t Off) {
    return I + Off < S.size() &&
           (static_cast<unsigned char>(S[I + Off]) & 0xC0) == 0x80;
  };
  unsigned char C0 = static_cast<unsigned char>(S[I]);
  if (C0 < 0x80)
    return 1;
  if (C0 < 0xC2) // Continuation byte or overlong 2-byte lead.
    return 0;
  unsigned char C1 = I + 1 < S.size() ? static_cast<unsigned char>(S[I + 1])
                                      : 0;
  if (C0 <= 0xDF)
    return Cont(1) ? 2 : 0;
  if (C0 <= 0xEF) {
    // E0 excludes overlongs (A0..BF), ED excludes surrogates (80..9F).
    unsigned char Lo = C0 == 0xE0 ? 0xA0 : 0x80;
    unsigned char Hi = C0 == 0xED ? 0x9F : 0xBF;
    return C1 >= Lo && C1 <= Hi && Cont(2) ? 3 : 0;
  }
  if (C0 <= 0xF4) {
    // F0 excludes overlongs (90..BF), F4 caps at U+10FFFF (80..8F).
    unsigned char Lo = C0 == 0xF0 ? 0x90 : 0x80;
    unsigned char Hi = C0 == 0xF4 ? 0x8F : 0xBF;
    return C1 >= Lo && C1 <= Hi && Cont(2) && Cont(3) ? 4 : 0;
  }
  return 0;
}

/// Escapes \p S for inclusion inside a JSON string literal (quotes not
/// included). Control characters become \uXXXX. Bytes that are not
/// part of a well-formed UTF-8 sequence become U+FFFD (�), one
/// replacement per invalid byte, so the document stays valid UTF-8
/// even when a diagnostic quotes garbage source bytes.
inline std::string escape(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (size_t I = 0; I < S.size();) {
    unsigned char C = static_cast<unsigned char>(S[I]);
    switch (C) {
    case '"':
      Out += "\\\"";
      ++I;
      continue;
    case '\\':
      Out += "\\\\";
      ++I;
      continue;
    case '\b':
      Out += "\\b";
      ++I;
      continue;
    case '\f':
      Out += "\\f";
      ++I;
      continue;
    case '\n':
      Out += "\\n";
      ++I;
      continue;
    case '\r':
      Out += "\\r";
      ++I;
      continue;
    case '\t':
      Out += "\\t";
      ++I;
      continue;
    }
    if (C < 0x20) {
      char Buf[8];
      std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
      Out += Buf;
      ++I;
    } else if (C < 0x80) {
      Out += static_cast<char>(C);
      ++I;
    } else if (size_t Len = utf8SequenceLength(S, I)) {
      Out.append(S.substr(I, Len));
      I += Len;
    } else {
      Out += "\\ufffd";
      ++I;
    }
  }
  return Out;
}

/// \p S as a quoted JSON string literal.
inline std::string str(std::string_view S) {
  return "\"" + escape(S) + "\"";
}

/// A double in the shortest form that round-trips, without locale
/// dependence ("." decimal point always).
inline std::string num(double V) {
  char Buf[64];
  // Integral values print as integers ("10", not "1e+01").
  if (V == static_cast<double>(static_cast<long long>(V)) &&
      V >= -1e15 && V <= 1e15) {
    std::snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(V));
    return Buf;
  }
  for (int Prec = 1; Prec <= 17; ++Prec) {
    std::snprintf(Buf, sizeof(Buf), "%.*g", Prec, V);
    if (std::strtod(Buf, nullptr) == V)
      break;
  }
  // snprintf %g never emits a locale comma for the "C" locale the
  // toolchain runs in, but normalize defensively.
  for (char &C : Buf)
    if (C == ',')
      C = '.';
  return Buf;
}

} // namespace json
} // namespace vault

#endif // VAULT_SUPPORT_JSON_H
