//===- Diagnostics.h - Diagnostic engine ------------------------*- C++ -*-===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Collects and renders compiler diagnostics. Every protocol violation
/// the Vault checker reports flows through this engine, tagged with a
/// stable DiagId so tests can assert on the *kind* of error rather than
/// on message text.
///
//===----------------------------------------------------------------------===//

#ifndef VAULT_SUPPORT_DIAGNOSTICS_H
#define VAULT_SUPPORT_DIAGNOSTICS_H

#include "support/SourceManager.h"

#include <optional>
#include <string>
#include <vector>

namespace vault {

/// Stable identifiers for every diagnostic the toolchain can produce.
///
/// The sema ids mirror the error classes of the paper: guard violations
/// (dangling accesses), leaks (extra keys at exit), missing keys at
/// calls, duplicated keys (double acquire / double free), join-point
/// disagreements, and effect-clause mismatches.
enum class DiagId {
  // Lexer.
  LexUnknownChar,
  LexUnterminatedString,
  LexUnterminatedComment,
  LexBadNumber,
  // Parser.
  ParseExpected,
  ParseUnexpectedToken,
  ParseBadEffect,
  ParseBadType,
  ParseBadPattern,
  ParseTooDeep, ///< Nesting beyond the parser's recursion budget.
  // Name resolution / elaboration.
  SemaUnknownName,
  SemaRedefinition,
  SemaUnknownType,
  SemaUnknownKey,
  SemaUnknownState,
  SemaUnknownCtor,
  SemaArity,
  SemaKindMismatch,
  SemaTypeMismatch,
  SemaNotAFunction,
  SemaNotAVariant,
  SemaNotTracked,
  SemaNotARecord,
  SemaUnknownField,
  SemaDuplicateCase,
  SemaNonExhaustiveSwitch,
  SemaBadModule,
  SemaAbstractType,
  SemaProtoMismatch, ///< Definition disagrees with an earlier prototype.
  // Flow checking: the heart of Vault.
  FlowGuardNotHeld,      ///< Accessing data whose guard key is not held.
  FlowGuardWrongState,   ///< Guard key held in the wrong state.
  FlowKeyNotHeld,        ///< Call/free requires a key that is not held.
  FlowKeyWrongState,     ///< Key held, but state violates a precondition.
  FlowKeyAlreadyHeld,    ///< +K / new K would duplicate a held key.
  FlowKeyLeaked,         ///< Extra key held at function exit.
  FlowMissingAtExit,     ///< Promised post-set key missing at exit.
  FlowJoinMismatch,      ///< Held-key sets disagree at a join point.
  FlowLoopNoFixpoint,    ///< Loop invariant inference did not converge.
  FlowUseAfterConsume,   ///< Tracked value used after its key was consumed.
  FlowUninitialized,     ///< Tracked variable used before assignment.
  FlowStateBound,        ///< Bounded state variable constraint violated.
  FlowReturnValue,       ///< Return type/effect mismatch.
  FlowCaptureTracked,    ///< Nested function captures a key-carrying local.
  FlowGuardedBorrowLive, ///< Guard key changed while a borrow depends on it.
  FlowBorrowNotLive,     ///< endborrow on something that is not a live borrow.
  FlowBorrowLiveAtExit,  ///< Borrow key still live at function exit.
  // Interpreter / dynamic oracle.
  RunProtocolViolation,
  RunError,
  NumDiags
};

/// Human-readable short name for a DiagId, e.g. "flow-key-leaked".
const char *diagName(DiagId Id);

enum class DiagSeverity { Note, Warning, Error };

/// One rendered diagnostic with optional attached notes.
struct Diagnostic {
  DiagId Id;
  DiagSeverity Severity;
  SourceLoc Loc;
  std::string Message;
  /// Secondary locations ("key was consumed here", ...).
  std::vector<std::pair<SourceLoc, std::string>> Notes;
};

/// Accumulates diagnostics for a compilation.
class DiagnosticEngine {
public:
  explicit DiagnosticEngine(const SourceManager &SM) : SM(SM) {}

  Diagnostic &report(DiagId Id, SourceLoc Loc, std::string Message,
                     DiagSeverity Severity = DiagSeverity::Error);

  void note(SourceLoc Loc, std::string Message);

  /// While suppressed (counter > 0), report() discards diagnostics.
  /// Used by the flow checker's loop-invariant iteration so that only
  /// the final, converged pass reports.
  void suppress() { ++Suppressed; }
  void unsuppress() {
    assert(Suppressed > 0 && "unbalanced unsuppress");
    --Suppressed;
  }
  bool isSuppressed() const { return Suppressed > 0; }

  /// RAII helper for suppression.
  class SuppressionScope {
  public:
    explicit SuppressionScope(DiagnosticEngine &D) : D(D) { D.suppress(); }
    ~SuppressionScope() { D.unsuppress(); }
    SuppressionScope(const SuppressionScope &) = delete;
    SuppressionScope &operator=(const SuppressionScope &) = delete;

  private:
    DiagnosticEngine &D;
  };

  const std::vector<Diagnostic> &diagnostics() const { return Diags; }
  size_t size() const { return Diags.size(); }
  unsigned errorCount() const { return NumErrors; }
  bool hasErrors() const { return NumErrors != 0; }
  void clear() {
    Diags.clear();
    NumErrors = 0;
  }

  /// Appends an already-built diagnostic (with its notes), updating
  /// the error count. Used to merge per-function buffers into the
  /// main engine in deterministic order.
  void append(Diagnostic D);

  /// Moves all diagnostics out of the engine, leaving it empty.
  std::vector<Diagnostic> take();

  /// Erases diagnostics [Begin, End) and recomputes the error count.
  /// Used by VaultCompiler::check() to discard the previous run's
  /// diagnostics while keeping parse diagnostics intact.
  void eraseRange(size_t Begin, size_t End);

  /// Returns true if any diagnostic with id \p Id was reported.
  bool has(DiagId Id) const;

  /// Number of diagnostics with id \p Id.
  unsigned count(DiagId Id) const;

  /// Renders all diagnostics in a clang-like "file:line:col: error: msg"
  /// format with a source line and caret.
  std::string render() const;

  const SourceManager &sourceManager() const { return SM; }

private:
  const SourceManager &SM;
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
  int Suppressed = 0;
  /// Sink for report() while suppressed: note() needs a current
  /// diagnostic even when the diagnostic is being discarded.
  Diagnostic Discard{};
};

//===----------------------------------------------------------------------===//
// Serialization (incremental-check cache).
//===----------------------------------------------------------------------===//

/// Serializes \p Diags to a stable, line-based text form. Locations are
/// stored as byte offsets *relative to* \p BaseOffset so a cached entry
/// can be replayed after the function moved within its file; every
/// valid location must lie in the serializing function's range (same
/// buffer, offset >= BaseOffset) — callers check this before caching.
/// Round-trips exactly through deserializeDiagnostics, including notes,
/// severities and invalid locations.
std::string serializeDiagnostics(const std::vector<Diagnostic> &Diags,
                                 uint32_t BaseOffset);

/// Parses the output of serializeDiagnostics, rebasing every stored
/// relative offset onto (\p BufferId, \p BaseOffset). Returns
/// std::nullopt on any malformed input (truncated file, unknown id,
/// bad escape), never a partial result.
std::optional<std::vector<Diagnostic>>
deserializeDiagnostics(std::string_view Text, uint32_t BufferId,
                       uint32_t BaseOffset);

} // namespace vault

#endif // VAULT_SUPPORT_DIAGNOSTICS_H
