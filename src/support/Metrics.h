//===- Metrics.h - Counter/histogram registry -------------------*- C++ -*-===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The central metrics registry behind `Checker::Stats`: named
/// monotonic counters plus fixed-edge histograms, populated by
/// VaultCompiler::check() and rendered as stable-ordered text
/// (`--stats`) or JSON (`--stats-json`). Names sort lexicographically
/// in every dump, so output ordering never depends on insertion order
/// or job count.
///
//===----------------------------------------------------------------------===//

#ifndef VAULT_SUPPORT_METRICS_H
#define VAULT_SUPPORT_METRICS_H

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace vault {

class Metrics {
public:
  /// A histogram over fixed bucket edges: N edges define N+1 buckets,
  /// bucket B counting values in [Edges[B-1], Edges[B]).
  struct Histogram {
    std::vector<double> Edges;
    std::vector<uint64_t> Buckets; ///< Edges.size() + 1 entries.
    uint64_t Count = 0;
    double Sum = 0;

    void record(double V) {
      size_t B = 0;
      while (B < Edges.size() && V >= Edges[B])
        ++B;
      ++Buckets[B];
      ++Count;
      Sum += V;
    }
  };

  /// Drops every counter and histogram. Called at the start of each
  /// check() so repeated checks never accumulate.
  void reset() {
    Counters.clear();
    Hists.clear();
  }

  /// Adds \p Delta to counter \p Name, creating it at zero first.
  void add(std::string_view Name, uint64_t Delta = 1) {
    counterRef(Name) += Delta;
  }

  /// Sets counter \p Name to \p V.
  void set(std::string_view Name, uint64_t V) { counterRef(Name) = V; }

  /// Current value of counter \p Name (0 when absent).
  uint64_t value(std::string_view Name) const {
    auto It = Counters.find(Name);
    return It == Counters.end() ? 0 : It->second;
  }

  /// The histogram named \p Name, created with \p Edges on first use.
  /// Edges of an existing histogram are left untouched.
  Histogram &histogram(std::string_view Name, std::vector<double> Edges) {
    auto It = Hists.find(Name);
    if (It == Hists.end()) {
      Histogram H;
      H.Edges = std::move(Edges);
      H.Buckets.assign(H.Edges.size() + 1, 0);
      It = Hists.emplace(std::string(Name), std::move(H)).first;
    }
    return It->second;
  }

  const Histogram *findHistogram(std::string_view Name) const {
    auto It = Hists.find(Name);
    return It == Hists.end() ? nullptr : &It->second;
  }

  bool empty() const { return Counters.empty() && Hists.empty(); }

  const std::map<std::string, uint64_t, std::less<>> &counters() const {
    return Counters;
  }
  const std::map<std::string, Histogram, std::less<>> &histograms() const {
    return Hists;
  }

  /// "name  value" lines, sorted by name, then one block per histogram.
  std::string renderText() const;

  /// {"counters": {...}, "histograms": {...}} with sorted keys.
  std::string renderJson() const;

private:
  uint64_t &counterRef(std::string_view Name) {
    auto It = Counters.find(Name);
    if (It == Counters.end())
      It = Counters.emplace(std::string(Name), 0).first;
    return It->second;
  }

  std::map<std::string, uint64_t, std::less<>> Counters;
  std::map<std::string, Histogram, std::less<>> Hists;
};

} // namespace vault

#endif // VAULT_SUPPORT_METRICS_H
