//===- SourceManager.h - Source buffers and locations ----------*- C++ -*-===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Owns source buffers and maps byte offsets to human-readable
/// line/column positions for diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef VAULT_SUPPORT_SOURCEMANAGER_H
#define VAULT_SUPPORT_SOURCEMANAGER_H

#include <cassert>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace vault {

/// A location inside some buffer registered with a SourceManager.
///
/// Encoded as (buffer id, byte offset). The invalid location is
/// all-zeros; buffer ids are 1-based so that a default-constructed
/// SourceLoc is distinguishable from "offset 0 of the first buffer".
struct SourceLoc {
  uint32_t BufferId = 0;
  uint32_t Offset = 0;

  bool isValid() const { return BufferId != 0; }

  friend bool operator==(SourceLoc A, SourceLoc B) {
    return A.BufferId == B.BufferId && A.Offset == B.Offset;
  }
};

/// A half-open [Begin, End) range of source text within one buffer.
struct SourceRange {
  SourceLoc Begin;
  SourceLoc End;

  SourceRange() = default;
  SourceRange(SourceLoc B, SourceLoc E) : Begin(B), End(E) {}
  explicit SourceRange(SourceLoc B) : Begin(B), End(B) {}

  bool isValid() const { return Begin.isValid(); }
};

/// Line/column form of a SourceLoc, 1-based, for rendering.
struct PresumedLoc {
  std::string BufferName;
  unsigned Line = 0;
  unsigned Column = 0;
  bool isValid() const { return Line != 0; }
};

/// Owns the text of all source files in a compilation and resolves
/// SourceLocs to line/column positions.
class SourceManager {
public:
  /// Registers \p Text under \p Name; returns the buffer id.
  uint32_t addBuffer(std::string Name, std::string Text);

  /// Reads \p Path from disk and registers it. Returns std::nullopt if
  /// the file cannot be read.
  std::optional<uint32_t> addFile(const std::string &Path);

  std::string_view bufferText(uint32_t BufferId) const;
  const std::string &bufferName(uint32_t BufferId) const;
  unsigned numBuffers() const { return static_cast<unsigned>(Buffers.size()); }

  /// Decodes \p Loc into buffer name + 1-based line/column.
  PresumedLoc presumed(SourceLoc Loc) const;

  /// Returns the full text of the line containing \p Loc (without the
  /// trailing newline), for use in caret diagnostics.
  std::string_view lineText(SourceLoc Loc) const;

  SourceLoc locInBuffer(uint32_t BufferId, uint32_t Offset) const {
    assert(BufferId >= 1 && BufferId <= Buffers.size() && "bad buffer id");
    return SourceLoc{BufferId, Offset};
  }

private:
  struct Buffer {
    std::string Name;
    std::string Text;
    /// Byte offsets of the start of each line; LineStarts[0] == 0.
    std::vector<uint32_t> LineStarts;
  };

  const Buffer &buffer(uint32_t BufferId) const {
    assert(BufferId >= 1 && BufferId <= Buffers.size() && "bad buffer id");
    return Buffers[BufferId - 1];
  }

  std::vector<Buffer> Buffers;
};

} // namespace vault

#endif // VAULT_SUPPORT_SOURCEMANAGER_H
