//===- DiagnosticsFormat.h - Machine-readable diagnostics -------*- C++ -*-===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serializers behind `--diagnostics-format=json|sarif`. Both walk the
/// engine's diagnostic vector in order, so the byte-identical merge
/// ordering of the parallel checker carries over verbatim: a warm-cache
/// replay serializes to exactly the bytes of the cold run.
///
//===----------------------------------------------------------------------===//

#ifndef VAULT_SUPPORT_DIAGNOSTICSFORMAT_H
#define VAULT_SUPPORT_DIAGNOSTICSFORMAT_H

#include <string>

namespace vault {

class DiagnosticEngine;

/// Which rendering `vaultc` uses for diagnostics.
enum class DiagnosticsFormat { Text, Json, Sarif };

/// All diagnostics in \p Diags as a JSON document:
/// {"diagnostics": [{"id", "severity", "file", "line", "column",
/// "message", "notes": [...]}]}. Invalid locations render as an empty
/// file with line/column 0.
std::string renderDiagnosticsJson(const DiagnosticEngine &Diags);

/// All diagnostics in \p Diags as a minimal SARIF 2.1.0 log: one run,
/// tool.driver.rules holding the distinct rule ids that fired (sorted),
/// one result per diagnostic with notes as relatedLocations.
std::string renderDiagnosticsSarif(const DiagnosticEngine &Diags);

} // namespace vault

#endif // VAULT_SUPPORT_DIAGNOSTICSFORMAT_H
