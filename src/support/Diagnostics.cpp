//===- Diagnostics.cpp ----------------------------------------------------===//

#include "support/Diagnostics.h"

#include <sstream>

using namespace vault;

const char *vault::diagName(DiagId Id) {
  switch (Id) {
  case DiagId::LexUnknownChar:
    return "lex-unknown-char";
  case DiagId::LexUnterminatedString:
    return "lex-unterminated-string";
  case DiagId::LexUnterminatedComment:
    return "lex-unterminated-comment";
  case DiagId::LexBadNumber:
    return "lex-bad-number";
  case DiagId::ParseExpected:
    return "parse-expected";
  case DiagId::ParseUnexpectedToken:
    return "parse-unexpected-token";
  case DiagId::ParseBadEffect:
    return "parse-bad-effect";
  case DiagId::ParseBadType:
    return "parse-bad-type";
  case DiagId::ParseBadPattern:
    return "parse-bad-pattern";
  case DiagId::SemaUnknownName:
    return "sema-unknown-name";
  case DiagId::SemaRedefinition:
    return "sema-redefinition";
  case DiagId::SemaUnknownType:
    return "sema-unknown-type";
  case DiagId::SemaUnknownKey:
    return "sema-unknown-key";
  case DiagId::SemaUnknownState:
    return "sema-unknown-state";
  case DiagId::SemaUnknownCtor:
    return "sema-unknown-ctor";
  case DiagId::SemaArity:
    return "sema-arity";
  case DiagId::SemaKindMismatch:
    return "sema-kind-mismatch";
  case DiagId::SemaTypeMismatch:
    return "sema-type-mismatch";
  case DiagId::SemaNotAFunction:
    return "sema-not-a-function";
  case DiagId::SemaNotAVariant:
    return "sema-not-a-variant";
  case DiagId::SemaNotTracked:
    return "sema-not-tracked";
  case DiagId::SemaNotARecord:
    return "sema-not-a-record";
  case DiagId::SemaUnknownField:
    return "sema-unknown-field";
  case DiagId::SemaDuplicateCase:
    return "sema-duplicate-case";
  case DiagId::SemaNonExhaustiveSwitch:
    return "sema-non-exhaustive-switch";
  case DiagId::SemaBadModule:
    return "sema-bad-module";
  case DiagId::SemaAbstractType:
    return "sema-abstract-type";
  case DiagId::SemaProtoMismatch:
    return "sema-proto-mismatch";
  case DiagId::FlowGuardNotHeld:
    return "flow-guard-not-held";
  case DiagId::FlowGuardWrongState:
    return "flow-guard-wrong-state";
  case DiagId::FlowKeyNotHeld:
    return "flow-key-not-held";
  case DiagId::FlowKeyWrongState:
    return "flow-key-wrong-state";
  case DiagId::FlowKeyAlreadyHeld:
    return "flow-key-already-held";
  case DiagId::FlowKeyLeaked:
    return "flow-key-leaked";
  case DiagId::FlowMissingAtExit:
    return "flow-missing-at-exit";
  case DiagId::FlowJoinMismatch:
    return "flow-join-mismatch";
  case DiagId::FlowLoopNoFixpoint:
    return "flow-loop-no-fixpoint";
  case DiagId::FlowUseAfterConsume:
    return "flow-use-after-consume";
  case DiagId::FlowUninitialized:
    return "flow-uninitialized";
  case DiagId::FlowStateBound:
    return "flow-state-bound";
  case DiagId::FlowReturnValue:
    return "flow-return-value";
  case DiagId::FlowCaptureTracked:
    return "flow-capture-tracked";
  case DiagId::RunProtocolViolation:
    return "run-protocol-violation";
  case DiagId::RunError:
    return "run-error";
  case DiagId::NumDiags:
    break;
  }
  return "unknown";
}

Diagnostic &DiagnosticEngine::report(DiagId Id, SourceLoc Loc,
                                     std::string Message,
                                     DiagSeverity Severity) {
  if (isSuppressed()) {
    Discard = Diagnostic{Id, Severity, Loc, std::move(Message), {}};
    return Discard;
  }
  if (Severity == DiagSeverity::Error)
    ++NumErrors;
  Diags.push_back(Diagnostic{Id, Severity, Loc, std::move(Message), {}});
  return Diags.back();
}

void DiagnosticEngine::note(SourceLoc Loc, std::string Message) {
  if (isSuppressed()) {
    Discard.Notes.emplace_back(Loc, std::move(Message));
    return;
  }
  assert(!Diags.empty() && "note without a preceding diagnostic");
  Diags.back().Notes.emplace_back(Loc, std::move(Message));
}

void DiagnosticEngine::append(Diagnostic D) {
  if (D.Severity == DiagSeverity::Error)
    ++NumErrors;
  Diags.push_back(std::move(D));
}

std::vector<Diagnostic> DiagnosticEngine::take() {
  std::vector<Diagnostic> Out = std::move(Diags);
  clear();
  return Out;
}

void DiagnosticEngine::eraseRange(size_t Begin, size_t End) {
  assert(Begin <= End && End <= Diags.size() && "bad diagnostic range");
  Diags.erase(Diags.begin() + Begin, Diags.begin() + End);
  NumErrors = 0;
  for (const Diagnostic &D : Diags)
    if (D.Severity == DiagSeverity::Error)
      ++NumErrors;
}

bool DiagnosticEngine::has(DiagId Id) const {
  for (const Diagnostic &D : Diags)
    if (D.Id == Id)
      return true;
  return false;
}

unsigned DiagnosticEngine::count(DiagId Id) const {
  unsigned N = 0;
  for (const Diagnostic &D : Diags)
    if (D.Id == Id)
      ++N;
  return N;
}

static const char *severityName(DiagSeverity S) {
  switch (S) {
  case DiagSeverity::Note:
    return "note";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Error:
    return "error";
  }
  return "error";
}

static void renderOne(std::ostringstream &OS, const SourceManager &SM,
                      SourceLoc Loc, DiagSeverity Sev, const std::string &Msg,
                      const char *Tag) {
  PresumedLoc P = SM.presumed(Loc);
  if (P.isValid())
    OS << P.BufferName << ':' << P.Line << ':' << P.Column << ": ";
  OS << severityName(Sev) << ": " << Msg;
  if (Tag)
    OS << " [" << Tag << "]";
  OS << '\n';
  if (P.isValid()) {
    std::string_view Line = SM.lineText(Loc);
    OS << "  " << Line << '\n';
    OS << "  ";
    for (unsigned I = 1; I < P.Column; ++I)
      OS << (I - 1 < Line.size() && Line[I - 1] == '\t' ? '\t' : ' ');
    OS << "^\n";
  }
}

std::string DiagnosticEngine::render() const {
  std::ostringstream OS;
  for (const Diagnostic &D : Diags) {
    renderOne(OS, SM, D.Loc, D.Severity, D.Message, diagName(D.Id));
    for (const auto &[Loc, Msg] : D.Notes)
      renderOne(OS, SM, Loc, DiagSeverity::Note, Msg, nullptr);
  }
  return OS.str();
}
