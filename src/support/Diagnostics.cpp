//===- Diagnostics.cpp ----------------------------------------------------===//

#include "support/Diagnostics.h"

#include <sstream>

using namespace vault;

const char *vault::diagName(DiagId Id) {
  switch (Id) {
  case DiagId::LexUnknownChar:
    return "lex-unknown-char";
  case DiagId::LexUnterminatedString:
    return "lex-unterminated-string";
  case DiagId::LexUnterminatedComment:
    return "lex-unterminated-comment";
  case DiagId::LexBadNumber:
    return "lex-bad-number";
  case DiagId::ParseExpected:
    return "parse-expected";
  case DiagId::ParseUnexpectedToken:
    return "parse-unexpected-token";
  case DiagId::ParseBadEffect:
    return "parse-bad-effect";
  case DiagId::ParseBadType:
    return "parse-bad-type";
  case DiagId::ParseBadPattern:
    return "parse-bad-pattern";
  case DiagId::ParseTooDeep:
    return "parse-too-deep";
  case DiagId::SemaUnknownName:
    return "sema-unknown-name";
  case DiagId::SemaRedefinition:
    return "sema-redefinition";
  case DiagId::SemaUnknownType:
    return "sema-unknown-type";
  case DiagId::SemaUnknownKey:
    return "sema-unknown-key";
  case DiagId::SemaUnknownState:
    return "sema-unknown-state";
  case DiagId::SemaUnknownCtor:
    return "sema-unknown-ctor";
  case DiagId::SemaArity:
    return "sema-arity";
  case DiagId::SemaKindMismatch:
    return "sema-kind-mismatch";
  case DiagId::SemaTypeMismatch:
    return "sema-type-mismatch";
  case DiagId::SemaNotAFunction:
    return "sema-not-a-function";
  case DiagId::SemaNotAVariant:
    return "sema-not-a-variant";
  case DiagId::SemaNotTracked:
    return "sema-not-tracked";
  case DiagId::SemaNotARecord:
    return "sema-not-a-record";
  case DiagId::SemaUnknownField:
    return "sema-unknown-field";
  case DiagId::SemaDuplicateCase:
    return "sema-duplicate-case";
  case DiagId::SemaNonExhaustiveSwitch:
    return "sema-non-exhaustive-switch";
  case DiagId::SemaBadModule:
    return "sema-bad-module";
  case DiagId::SemaAbstractType:
    return "sema-abstract-type";
  case DiagId::SemaProtoMismatch:
    return "sema-proto-mismatch";
  case DiagId::FlowGuardNotHeld:
    return "flow-guard-not-held";
  case DiagId::FlowGuardWrongState:
    return "flow-guard-wrong-state";
  case DiagId::FlowKeyNotHeld:
    return "flow-key-not-held";
  case DiagId::FlowKeyWrongState:
    return "flow-key-wrong-state";
  case DiagId::FlowKeyAlreadyHeld:
    return "flow-key-already-held";
  case DiagId::FlowKeyLeaked:
    return "flow-key-leaked";
  case DiagId::FlowMissingAtExit:
    return "flow-missing-at-exit";
  case DiagId::FlowJoinMismatch:
    return "flow-join-mismatch";
  case DiagId::FlowLoopNoFixpoint:
    return "flow-loop-no-fixpoint";
  case DiagId::FlowUseAfterConsume:
    return "flow-use-after-consume";
  case DiagId::FlowUninitialized:
    return "flow-uninitialized";
  case DiagId::FlowStateBound:
    return "flow-state-bound";
  case DiagId::FlowReturnValue:
    return "flow-return-value";
  case DiagId::FlowCaptureTracked:
    return "flow-capture-tracked";
  case DiagId::FlowGuardedBorrowLive:
    return "flow-guarded-borrow-live";
  case DiagId::FlowBorrowNotLive:
    return "flow-borrow-not-live";
  case DiagId::FlowBorrowLiveAtExit:
    return "flow-borrow-live-at-exit";
  case DiagId::RunProtocolViolation:
    return "run-protocol-violation";
  case DiagId::RunError:
    return "run-error";
  case DiagId::NumDiags:
    break;
  }
  return "unknown";
}

Diagnostic &DiagnosticEngine::report(DiagId Id, SourceLoc Loc,
                                     std::string Message,
                                     DiagSeverity Severity) {
  if (isSuppressed()) {
    Discard = Diagnostic{Id, Severity, Loc, std::move(Message), {}};
    return Discard;
  }
  if (Severity == DiagSeverity::Error)
    ++NumErrors;
  Diags.push_back(Diagnostic{Id, Severity, Loc, std::move(Message), {}});
  return Diags.back();
}

void DiagnosticEngine::note(SourceLoc Loc, std::string Message) {
  if (isSuppressed()) {
    Discard.Notes.emplace_back(Loc, std::move(Message));
    return;
  }
  assert(!Diags.empty() && "note without a preceding diagnostic");
  Diags.back().Notes.emplace_back(Loc, std::move(Message));
}

void DiagnosticEngine::append(Diagnostic D) {
  if (D.Severity == DiagSeverity::Error)
    ++NumErrors;
  Diags.push_back(std::move(D));
}

std::vector<Diagnostic> DiagnosticEngine::take() {
  std::vector<Diagnostic> Out = std::move(Diags);
  clear();
  return Out;
}

void DiagnosticEngine::eraseRange(size_t Begin, size_t End) {
  assert(Begin <= End && End <= Diags.size() && "bad diagnostic range");
  Diags.erase(Diags.begin() + Begin, Diags.begin() + End);
  NumErrors = 0;
  for (const Diagnostic &D : Diags)
    if (D.Severity == DiagSeverity::Error)
      ++NumErrors;
}

bool DiagnosticEngine::has(DiagId Id) const {
  for (const Diagnostic &D : Diags)
    if (D.Id == Id)
      return true;
  return false;
}

unsigned DiagnosticEngine::count(DiagId Id) const {
  unsigned N = 0;
  for (const Diagnostic &D : Diags)
    if (D.Id == Id)
      ++N;
  return N;
}

static const char *severityName(DiagSeverity S) {
  switch (S) {
  case DiagSeverity::Note:
    return "note";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Error:
    return "error";
  }
  return "error";
}

static void renderOne(std::ostringstream &OS, const SourceManager &SM,
                      SourceLoc Loc, DiagSeverity Sev, const std::string &Msg,
                      const char *Tag) {
  PresumedLoc P = SM.presumed(Loc);
  if (P.isValid())
    OS << P.BufferName << ':' << P.Line << ':' << P.Column << ": ";
  OS << severityName(Sev) << ": " << Msg;
  if (Tag)
    OS << " [" << Tag << "]";
  OS << '\n';
  if (P.isValid()) {
    std::string_view Line = SM.lineText(Loc);
    OS << "  " << Line << '\n';
    OS << "  ";
    for (unsigned I = 1; I < P.Column; ++I)
      OS << (I - 1 < Line.size() && Line[I - 1] == '\t' ? '\t' : ' ');
    OS << "^\n";
  }
}

//===----------------------------------------------------------------------===//
// Serialization (incremental-check cache).
//===----------------------------------------------------------------------===//

static void escapeTo(std::string &Out, const std::string &S) {
  for (char C : S) {
    switch (C) {
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      Out += C;
    }
  }
}

static bool unescape(std::string_view S, std::string &Out) {
  Out.clear();
  Out.reserve(S.size());
  for (size_t I = 0; I < S.size(); ++I) {
    if (S[I] != '\\') {
      Out += S[I];
      continue;
    }
    if (++I == S.size())
      return false;
    switch (S[I]) {
    case '\\':
      Out += '\\';
      break;
    case 'n':
      Out += '\n';
      break;
    case 'r':
      Out += '\r';
      break;
    case 't':
      Out += '\t';
      break;
    default:
      return false;
    }
  }
  return true;
}

static void appendLoc(std::string &Out, SourceLoc Loc, uint32_t BaseOffset) {
  if (!Loc.isValid()) {
    Out += '-';
    return;
  }
  Out += std::to_string(Loc.Offset - BaseOffset);
}

std::string vault::serializeDiagnostics(const std::vector<Diagnostic> &Diags,
                                        uint32_t BaseOffset) {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += "D ";
    Out += std::to_string(static_cast<unsigned>(D.Id));
    Out += ' ';
    Out += std::to_string(static_cast<unsigned>(D.Severity));
    Out += ' ';
    appendLoc(Out, D.Loc, BaseOffset);
    Out += ' ';
    escapeTo(Out, D.Message);
    Out += '\n';
    for (const auto &[Loc, Msg] : D.Notes) {
      Out += "N ";
      appendLoc(Out, Loc, BaseOffset);
      Out += ' ';
      escapeTo(Out, Msg);
      Out += '\n';
    }
  }
  return Out;
}

namespace {
/// Splits one serialized line into space-separated head fields plus the
/// escaped-message tail.
struct LineReader {
  std::string_view Rest;

  bool next(std::string_view &Line) {
    if (Rest.empty())
      return false;
    size_t E = Rest.find('\n');
    if (E == std::string_view::npos)
      return false; // Every line must be terminated.
    Line = Rest.substr(0, E);
    Rest.remove_prefix(E + 1);
    return true;
  }
};

bool takeField(std::string_view &Line, std::string_view &Field) {
  size_t E = Line.find(' ');
  if (E == std::string_view::npos)
    return false;
  Field = Line.substr(0, E);
  Line.remove_prefix(E + 1);
  return true;
}

bool parseUnsigned(std::string_view S, uint64_t Max, uint64_t &Out) {
  if (S.empty() || S.size() > 10)
    return false;
  Out = 0;
  for (char C : S) {
    if (C < '0' || C > '9')
      return false;
    Out = Out * 10 + (C - '0');
  }
  return Out <= Max;
}

bool parseLoc(std::string_view S, uint32_t BufferId, uint32_t BaseOffset,
              SourceLoc &Out) {
  if (S == "-") {
    Out = SourceLoc{};
    return true;
  }
  uint64_t Rel;
  if (!parseUnsigned(S, UINT32_MAX, Rel) ||
      Rel > UINT32_MAX - static_cast<uint64_t>(BaseOffset))
    return false;
  Out = SourceLoc{BufferId, BaseOffset + static_cast<uint32_t>(Rel)};
  return true;
}
} // namespace

std::optional<std::vector<Diagnostic>>
vault::deserializeDiagnostics(std::string_view Text, uint32_t BufferId,
                              uint32_t BaseOffset) {
  std::vector<Diagnostic> Out;
  LineReader R{Text};
  std::string_view Line;
  while (R.next(Line)) {
    std::string_view Tag;
    if (!takeField(Line, Tag))
      return std::nullopt;
    if (Tag == "D") {
      std::string_view IdS, SevS, LocS;
      uint64_t Id, Sev;
      Diagnostic D;
      if (!takeField(Line, IdS) || !takeField(Line, SevS) ||
          !takeField(Line, LocS) ||
          !parseUnsigned(IdS, static_cast<uint64_t>(DiagId::NumDiags) - 1,
                         Id) ||
          !parseUnsigned(SevS, static_cast<uint64_t>(DiagSeverity::Error),
                         Sev) ||
          !parseLoc(LocS, BufferId, BaseOffset, D.Loc) ||
          !unescape(Line, D.Message))
        return std::nullopt;
      D.Id = static_cast<DiagId>(Id);
      D.Severity = static_cast<DiagSeverity>(Sev);
      Out.push_back(std::move(D));
    } else if (Tag == "N") {
      std::string_view LocS;
      SourceLoc Loc;
      std::string Msg;
      if (Out.empty() || !takeField(Line, LocS) ||
          !parseLoc(LocS, BufferId, BaseOffset, Loc) || !unescape(Line, Msg))
        return std::nullopt;
      Out.back().Notes.emplace_back(Loc, std::move(Msg));
    } else {
      return std::nullopt;
    }
  }
  // next() stops at an unterminated final line; anything left over is
  // a truncated file, not a valid (shorter) result.
  if (!R.Rest.empty())
    return std::nullopt;
  return Out;
}

std::string DiagnosticEngine::render() const {
  std::ostringstream OS;
  for (const Diagnostic &D : Diags) {
    renderOne(OS, SM, D.Loc, D.Severity, D.Message, diagName(D.Id));
    for (const auto &[Loc, Msg] : D.Notes)
      renderOne(OS, SM, Loc, DiagSeverity::Note, Msg, nullptr);
  }
  return OS.str();
}
