//===- ShellQuote.h - POSIX shell argument quoting --------------*- C++ -*-===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quoting for the few places the toolchain still builds a command
/// line for std::system (the fuzzing round-trip oracle). Paths that
/// contain spaces, quotes or shell metacharacters must reach the
/// child verbatim — an unquoted scratch directory named "fuzz tmp"
/// used to split into two arguments and misroute the oracle.
///
//===----------------------------------------------------------------------===//

#ifndef VAULT_SUPPORT_SHELLQUOTE_H
#define VAULT_SUPPORT_SHELLQUOTE_H

#include <string>
#include <string_view>

namespace vault {

/// \p Arg as a single POSIX-shell word: wrapped in single quotes, with
/// every embedded single quote spelled '\''. Safe for any byte string
/// (single quotes disable every other metacharacter, including
/// backslash and newline). Plain words pass through unwrapped so
/// logged commands stay readable.
inline std::string shellQuote(std::string_view Arg) {
  auto Plain = [](char C) {
    return (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
           (C >= '0' && C <= '9') || C == '_' || C == '-' || C == '.' ||
           C == '/' || C == '+' || C == ':' || C == '=' || C == ',';
  };
  bool NeedsQuoting = Arg.empty();
  for (char C : Arg)
    if (!Plain(C)) {
      NeedsQuoting = true;
      break;
    }
  if (!NeedsQuoting)
    return std::string(Arg);
  std::string Out;
  Out.reserve(Arg.size() + 2);
  Out += '\'';
  for (char C : Arg) {
    if (C == '\'')
      Out += "'\\''";
    else
      Out += C;
  }
  Out += '\'';
  return Out;
}

} // namespace vault

#endif // VAULT_SUPPORT_SHELLQUOTE_H
