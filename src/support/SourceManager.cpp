//===- SourceManager.cpp --------------------------------------------------===//

#include "support/SourceManager.h"

#include <algorithm>
#include <fstream>
#include <sstream>

using namespace vault;

uint32_t SourceManager::addBuffer(std::string Name, std::string Text) {
  Buffer B;
  B.Name = std::move(Name);
  B.Text = std::move(Text);
  B.LineStarts.push_back(0);
  // Line terminators: "\n", "\r\n" (one line break, starting after the
  // '\n'), and a lone "\r" (classic-Mac endings). Treating the bare
  // '\r' as a terminator keeps line/column numbers identical for LF,
  // CRLF and CR encodings of the same text.
  for (uint32_t I = 0, E = static_cast<uint32_t>(B.Text.size()); I != E; ++I) {
    if (B.Text[I] == '\n')
      B.LineStarts.push_back(I + 1);
    else if (B.Text[I] == '\r' && (I + 1 == E || B.Text[I + 1] != '\n'))
      B.LineStarts.push_back(I + 1);
  }
  Buffers.push_back(std::move(B));
  return static_cast<uint32_t>(Buffers.size());
}

std::optional<uint32_t> SourceManager::addFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return std::nullopt;
  std::ostringstream SS;
  SS << In.rdbuf();
  return addBuffer(Path, SS.str());
}

std::string_view SourceManager::bufferText(uint32_t BufferId) const {
  return buffer(BufferId).Text;
}

const std::string &SourceManager::bufferName(uint32_t BufferId) const {
  return buffer(BufferId).Name;
}

PresumedLoc SourceManager::presumed(SourceLoc Loc) const {
  PresumedLoc P;
  if (!Loc.isValid())
    return P;
  const Buffer &B = buffer(Loc.BufferId);
  // The first line whose start is > Offset; the line containing Offset
  // is the one before it.
  auto It = std::upper_bound(B.LineStarts.begin(), B.LineStarts.end(),
                             Loc.Offset);
  unsigned LineIdx = static_cast<unsigned>(It - B.LineStarts.begin()) - 1;
  P.BufferName = B.Name;
  P.Line = LineIdx + 1;
  P.Column = Loc.Offset - B.LineStarts[LineIdx] + 1;
  return P;
}

std::string_view SourceManager::lineText(SourceLoc Loc) const {
  if (!Loc.isValid())
    return {};
  const Buffer &B = buffer(Loc.BufferId);
  auto It = std::upper_bound(B.LineStarts.begin(), B.LineStarts.end(),
                             Loc.Offset);
  unsigned LineIdx = static_cast<unsigned>(It - B.LineStarts.begin()) - 1;
  uint32_t Start = B.LineStarts[LineIdx];
  uint32_t End = LineIdx + 1 < B.LineStarts.size()
                     ? B.LineStarts[LineIdx + 1] - 1
                     : static_cast<uint32_t>(B.Text.size());
  // The terminator excluded above is the '\n' (LF, CRLF) or the lone
  // '\r' (CR); for CRLF also strip the '\r' before it.
  if (End > Start && B.Text[End - 1] == '\r')
    --End;
  return std::string_view(B.Text).substr(Start, End - Start);
}
