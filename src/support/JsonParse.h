//===- JsonParse.h - Hardened JSON request parsing --------------*- C++ -*-===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The reader half of the JSON support: a strict, limit-enforcing
/// parser for the check server's request frames. Json.h stays the
/// emission half; this file exists because vaultd accepts bytes from
/// untrusted clients, so every malformed input — truncated UTF-8,
/// unterminated strings, lone surrogates, over-deep nesting, oversized
/// payloads, trailing garbage — must become a structured error, never
/// a crash, a hang, or a silently-wrong value.
///
/// Deliberately small: null/bool/number/string/array/object, object
/// members kept in source order, no streaming. Errors carry the byte
/// offset so reduced fuzz frames pin exact failure points.
///
//===----------------------------------------------------------------------===//

#ifndef VAULT_SUPPORT_JSONPARSE_H
#define VAULT_SUPPORT_JSONPARSE_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace vault {
namespace json {

/// A parsed JSON value. Members preserve source order; duplicate keys
/// are kept (find() returns the first), matching the "be liberal in
/// what you accept" side of the frame protocol.
struct Value {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind K = Kind::Null;
  bool B = false;
  double Num = 0;
  std::string Str;
  std::vector<Value> Elems;
  std::vector<std::pair<std::string, Value>> Members;

  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  /// First member named \p Name, or null when absent (or not an
  /// object).
  const Value *find(std::string_view Name) const {
    for (const auto &[K2, V] : Members)
      if (K2 == Name)
        return &V;
    return nullptr;
  }
};

/// Hard ceilings the parser enforces before and during the parse.
struct ParseLimits {
  /// Documents larger than this are rejected without being scanned.
  size_t MaxBytes = 8u << 20;
  /// Maximum array/object nesting depth (the parser recurses, so this
  /// is also the stack-safety bound).
  unsigned MaxDepth = 64;
};

/// Parses \p Text as one complete JSON document. Strict: the whole
/// input must be consumed (trailing non-whitespace is an error),
/// strings must be valid UTF-8 with correctly paired \u surrogates,
/// numbers must be finite, and the ParseLimits ceilings apply. On
/// failure returns nullopt and, when \p Err is non-null, sets it to
/// "offset N: <what>".
std::optional<Value> parseJson(std::string_view Text, std::string *Err,
                               const ParseLimits &Limits = {});

} // namespace json
} // namespace vault

#endif // VAULT_SUPPORT_JSONPARSE_H
