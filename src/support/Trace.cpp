//===- Trace.cpp ----------------------------------------------------------===//

#include "support/Trace.h"

#include "support/Json.h"

#include <algorithm>
#include <atomic>
#include <fstream>

using namespace vault;

static std::atomic<uint64_t> NextTracerId{1};

Tracer::Tracer()
    : Id(NextTracerId.fetch_add(1, std::memory_order_relaxed)),
      Epoch(std::chrono::steady_clock::now()) {}

uint64_t Tracer::nowUs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - Epoch)
          .count());
}

Tracer::ThreadBuf &Tracer::localBuf() {
  // Cache keyed by tracer id, not address: ids are never reused, so a
  // new tracer at a recycled address cannot see a stale buffer.
  struct Cached {
    uint64_t Owner = 0;
    ThreadBuf *Buf = nullptr;
  };
  thread_local Cached Cache;
  if (Cache.Owner != Id) {
    std::lock_guard<std::mutex> L(Mu);
    Bufs.push_back(std::make_unique<ThreadBuf>());
    Bufs.back()->Tid = static_cast<uint32_t>(Bufs.size());
    Cache = {Id, Bufs.back().get()};
  }
  return *Cache.Buf;
}

void Tracer::complete(std::string Name, uint64_t BeginUs, uint64_t EndUs,
                      Args EventArgs) {
  ThreadBuf &B = localBuf();
  Event E;
  E.Name = std::move(Name);
  E.TsUs = BeginUs;
  E.DurUs = EndUs >= BeginUs ? EndUs - BeginUs : 0;
  E.Tid = B.Tid;
  E.EventArgs = std::move(EventArgs);
  B.Events.push_back(std::move(E));
}

size_t Tracer::eventCount() const {
  std::lock_guard<std::mutex> L(Mu);
  size_t N = 0;
  for (const auto &B : Bufs)
    N += B->Events.size();
  return N;
}

std::string Tracer::json() const {
  std::vector<const Event *> All;
  {
    std::lock_guard<std::mutex> L(Mu);
    for (const auto &B : Bufs)
      for (const Event &E : B->Events)
        All.push_back(&E);
  }
  std::stable_sort(All.begin(), All.end(), [](const Event *A, const Event *B) {
    if (A->TsUs != B->TsUs)
      return A->TsUs < B->TsUs;
    if (A->DurUs != B->DurUs)
      return A->DurUs > B->DurUs; // Parent before contained children.
    if (A->Tid != B->Tid)
      return A->Tid < B->Tid;
    return A->Name < B->Name;
  });

  std::string Out = "{\"traceEvents\":[";
  bool First = true;
  for (const Event *E : All) {
    if (!First)
      Out += ",";
    First = false;
    Out += "\n{\"name\":" + json::str(E->Name) +
           ",\"ph\":\"X\",\"ts\":" + std::to_string(E->TsUs) +
           ",\"dur\":" + std::to_string(E->DurUs) +
           ",\"pid\":1,\"tid\":" + std::to_string(E->Tid);
    if (!E->EventArgs.empty()) {
      Out += ",\"args\":{";
      bool FirstArg = true;
      for (const auto &[K, V] : E->EventArgs) {
        if (!FirstArg)
          Out += ",";
        FirstArg = false;
        Out += json::str(K) + ":" + json::str(V);
      }
      Out += "}";
    }
    Out += "}";
  }
  Out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return Out;
}

bool Tracer::writeJson(const std::string &Path) const {
  std::ofstream OutFile(Path, std::ios::binary | std::ios::trunc);
  if (!OutFile)
    return false;
  OutFile << json();
  return static_cast<bool>(OutFile.flush());
}
