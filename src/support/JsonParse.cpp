//===- JsonParse.cpp ------------------------------------------------------===//

#include "support/JsonParse.h"

#include "support/Json.h"

#include <cmath>
#include <cstdlib>

using namespace vault;
using namespace vault::json;

namespace {

class Parser {
public:
  Parser(std::string_view Text, const ParseLimits &Limits)
      : Text(Text), Limits(Limits) {}

  std::optional<Value> run(std::string *Err) {
    std::optional<Value> V = parseValue(0);
    if (!V) {
      if (Err)
        *Err = "offset " + std::to_string(ErrOffset) + ": " + ErrMsg;
      return std::nullopt;
    }
    skipWs();
    if (Pos != Text.size()) {
      if (Err)
        *Err = "offset " + std::to_string(Pos) +
               ": trailing characters after document";
      return std::nullopt;
    }
    return V;
  }

private:
  std::nullopt_t fail(std::string Msg) {
    // Keep the first (deepest) failure; callers propagate nullopt up.
    if (ErrMsg.empty()) {
      ErrMsg = std::move(Msg);
      ErrOffset = Pos;
    }
    return std::nullopt;
  }

  void skipWs() {
    while (Pos < Text.size() && (Text[Pos] == ' ' || Text[Pos] == '\t' ||
                                 Text[Pos] == '\n' || Text[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  std::optional<Value> parseValue(unsigned Depth) {
    if (Depth > Limits.MaxDepth)
      return fail("nesting deeper than " + std::to_string(Limits.MaxDepth));
    skipWs();
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    char C = Text[Pos];
    switch (C) {
    case '{':
      return parseObject(Depth);
    case '[':
      return parseArray(Depth);
    case '"':
      return parseString();
    case 't':
    case 'f':
      return parseKeyword(C == 't' ? "true" : "false",
                          [&](Value &V) {
                            V.K = Value::Kind::Bool;
                            V.B = C == 't';
                          });
    case 'n':
      return parseKeyword("null", [](Value &V) { V.K = Value::Kind::Null; });
    default:
      if (C == '-' || (C >= '0' && C <= '9'))
        return parseNumber();
      return fail(std::string("unexpected character '") +
                  (C >= 0x20 ? std::string(1, C) : std::string("\\x")) + "'");
    }
  }

  template <typename Init>
  std::optional<Value> parseKeyword(std::string_view Word, Init Fill) {
    if (Text.substr(Pos, Word.size()) != Word)
      return fail("invalid literal");
    Pos += Word.size();
    Value V;
    Fill(V);
    return V;
  }

  std::optional<Value> parseNumber() {
    size_t Begin = Pos;
    if (consume('-')) {
    }
    if (consume('0')) {
      // No leading zeros.
    } else {
      if (Pos >= Text.size() || Text[Pos] < '1' || Text[Pos] > '9')
        return fail("malformed number");
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
        ++Pos;
    }
    if (consume('.')) {
      if (Pos >= Text.size() || Text[Pos] < '0' || Text[Pos] > '9')
        return fail("malformed number (no digits after '.')");
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
        ++Pos;
    }
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      if (Pos >= Text.size() || Text[Pos] < '0' || Text[Pos] > '9')
        return fail("malformed number (empty exponent)");
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
        ++Pos;
    }
    // The slice is a valid JSON number by construction, so strtod
    // cannot reject it — but it can overflow to infinity, which the
    // protocol treats as malformed rather than letting non-finite
    // values leak into request fields.
    std::string Num(Text.substr(Begin, Pos - Begin));
    double D = std::strtod(Num.c_str(), nullptr);
    if (!std::isfinite(D))
      return fail("number out of range");
    Value V;
    V.K = Value::Kind::Number;
    V.Num = D;
    return V;
  }

  /// Appends \p Code as UTF-8. The caller has already validated the
  /// scalar-value range.
  static void appendUtf8(std::string &Out, uint32_t Code) {
    if (Code < 0x80) {
      Out += static_cast<char>(Code);
    } else if (Code < 0x800) {
      Out += static_cast<char>(0xC0 | (Code >> 6));
      Out += static_cast<char>(0x80 | (Code & 0x3F));
    } else if (Code < 0x10000) {
      Out += static_cast<char>(0xE0 | (Code >> 12));
      Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
      Out += static_cast<char>(0x80 | (Code & 0x3F));
    } else {
      Out += static_cast<char>(0xF0 | (Code >> 18));
      Out += static_cast<char>(0x80 | ((Code >> 12) & 0x3F));
      Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
      Out += static_cast<char>(0x80 | (Code & 0x3F));
    }
  }

  std::optional<uint32_t> parseHex4() {
    if (Pos + 4 > Text.size())
      return std::nullopt;
    uint32_t V = 0;
    for (int I = 0; I < 4; ++I) {
      char C = Text[Pos + I];
      uint32_t D;
      if (C >= '0' && C <= '9')
        D = C - '0';
      else if (C >= 'a' && C <= 'f')
        D = C - 'a' + 10;
      else if (C >= 'A' && C <= 'F')
        D = C - 'A' + 10;
      else
        return std::nullopt;
      V = V * 16 + D;
    }
    Pos += 4;
    return V;
  }

  std::optional<Value> parseString() {
    ++Pos; // Opening quote.
    Value V;
    V.K = Value::Kind::String;
    for (;;) {
      if (Pos >= Text.size())
        return fail("unterminated string");
      unsigned char C = static_cast<unsigned char>(Text[Pos]);
      if (C == '"') {
        ++Pos;
        return V;
      }
      if (C == '\\') {
        ++Pos;
        if (Pos >= Text.size())
          return fail("unterminated escape");
        char E = Text[Pos];
        ++Pos;
        switch (E) {
        case '"':
          V.Str += '"';
          break;
        case '\\':
          V.Str += '\\';
          break;
        case '/':
          V.Str += '/';
          break;
        case 'b':
          V.Str += '\b';
          break;
        case 'f':
          V.Str += '\f';
          break;
        case 'n':
          V.Str += '\n';
          break;
        case 'r':
          V.Str += '\r';
          break;
        case 't':
          V.Str += '\t';
          break;
        case 'u': {
          std::optional<uint32_t> Hi = parseHex4();
          if (!Hi)
            return fail("malformed \\u escape");
          uint32_t Code = *Hi;
          if (Code >= 0xDC00 && Code <= 0xDFFF)
            return fail("lone low surrogate");
          if (Code >= 0xD800 && Code <= 0xDBFF) {
            // Must be followed by a low surrogate.
            if (Pos + 1 >= Text.size() || Text[Pos] != '\\' ||
                Text[Pos + 1] != 'u')
              return fail("lone high surrogate");
            Pos += 2;
            std::optional<uint32_t> Lo = parseHex4();
            if (!Lo || *Lo < 0xDC00 || *Lo > 0xDFFF)
              return fail("invalid surrogate pair");
            Code = 0x10000 + ((Code - 0xD800) << 10) + (*Lo - 0xDC00);
          }
          appendUtf8(V.Str, Code);
          break;
        }
        default:
          return fail("invalid escape character");
        }
        continue;
      }
      if (C < 0x20)
        return fail("raw control character in string");
      if (C < 0x80) {
        V.Str += static_cast<char>(C);
        ++Pos;
        continue;
      }
      // Non-ASCII: must be a complete, well-formed UTF-8 sequence.
      size_t Len = utf8SequenceLength(Text, Pos);
      if (Len == 0)
        return fail("invalid UTF-8 in string");
      V.Str.append(Text.substr(Pos, Len));
      Pos += Len;
    }
  }

  std::optional<Value> parseArray(unsigned Depth) {
    ++Pos; // '['.
    Value V;
    V.K = Value::Kind::Array;
    skipWs();
    if (consume(']'))
      return V;
    for (;;) {
      std::optional<Value> E = parseValue(Depth + 1);
      if (!E)
        return std::nullopt;
      V.Elems.push_back(std::move(*E));
      skipWs();
      if (consume(']'))
        return V;
      if (!consume(','))
        return fail("expected ',' or ']' in array");
    }
  }

  std::optional<Value> parseObject(unsigned Depth) {
    ++Pos; // '{'.
    Value V;
    V.K = Value::Kind::Object;
    skipWs();
    if (consume('}'))
      return V;
    for (;;) {
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != '"')
        return fail("expected string key in object");
      std::optional<Value> Key = parseString();
      if (!Key)
        return std::nullopt;
      skipWs();
      if (!consume(':'))
        return fail("expected ':' after object key");
      std::optional<Value> Val = parseValue(Depth + 1);
      if (!Val)
        return std::nullopt;
      V.Members.emplace_back(std::move(Key->Str), std::move(*Val));
      skipWs();
      if (consume('}'))
        return V;
      if (!consume(','))
        return fail("expected ',' or '}' in object");
    }
  }

  std::string_view Text;
  const ParseLimits &Limits;
  size_t Pos = 0;
  std::string ErrMsg;
  size_t ErrOffset = 0;
};

} // namespace

std::optional<Value> vault::json::parseJson(std::string_view Text,
                                            std::string *Err,
                                            const ParseLimits &Limits) {
  if (Text.size() > Limits.MaxBytes) {
    if (Err)
      *Err = "offset 0: document of " + std::to_string(Text.size()) +
             " bytes exceeds the " + std::to_string(Limits.MaxBytes) +
             "-byte limit";
    return std::nullopt;
  }
  return Parser(Text, Limits).run(Err);
}
