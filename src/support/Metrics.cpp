//===- Metrics.cpp --------------------------------------------------------===//

#include "support/Metrics.h"

#include "support/Json.h"

#include <cstdio>

using namespace vault;

std::string Metrics::renderText() const {
  std::string Out;
  size_t Width = 0;
  for (const auto &[Name, V] : Counters) {
    (void)V;
    Width = std::max(Width, Name.size());
  }
  for (const auto &[Name, V] : Counters) {
    char Buf[160];
    std::snprintf(Buf, sizeof(Buf), "  %-*s  %llu\n",
                  static_cast<int>(Width), Name.c_str(),
                  static_cast<unsigned long long>(V));
    Out += Buf;
  }
  for (const auto &[Name, H] : Hists) {
    Out += "  " + Name + ":\n";
    for (size_t B = 0; B < H.Buckets.size(); ++B) {
      std::string Label;
      if (B == 0)
        Label = "< " + json::num(H.Edges.empty() ? 0 : H.Edges[0]);
      else if (B == H.Edges.size())
        Label = ">= " + json::num(H.Edges[B - 1]);
      else
        Label = "[" + json::num(H.Edges[B - 1]) + ", " +
                json::num(H.Edges[B]) + ")";
      char Buf[160];
      std::snprintf(Buf, sizeof(Buf), "    %-20s %llu\n", Label.c_str(),
                    static_cast<unsigned long long>(H.Buckets[B]));
      Out += Buf;
    }
  }
  return Out;
}

std::string Metrics::renderJson() const {
  std::string Out = "{\n  \"counters\": {";
  bool First = true;
  for (const auto &[Name, V] : Counters) {
    Out += First ? "\n" : ",\n";
    First = false;
    Out += "    " + json::str(Name) + ": " + std::to_string(V);
  }
  Out += "\n  },\n  \"histograms\": {";
  First = true;
  for (const auto &[Name, H] : Hists) {
    Out += First ? "\n" : ",\n";
    First = false;
    Out += "    " + json::str(Name) + ": {\"edges\": [";
    for (size_t I = 0; I < H.Edges.size(); ++I)
      Out += (I ? ", " : "") + json::num(H.Edges[I]);
    Out += "], \"buckets\": [";
    for (size_t I = 0; I < H.Buckets.size(); ++I)
      Out += (I ? ", " : "") + std::to_string(H.Buckets[I]);
    Out += "], \"count\": " + std::to_string(H.Count) +
           ", \"sum\": " + json::num(H.Sum) + "}";
  }
  Out += "\n  }\n}\n";
  return Out;
}
