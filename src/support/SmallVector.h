//===- SmallVector.h - Inline-capacity vector -------------------*- C++ -*-===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A vector with N elements of inline storage, spilling to the heap
/// only past that. The checker's flow facts (held-key sets, variable
/// binding maps) are copied at every branch and join; almost all of
/// them are tiny, so keeping the common case allocation-free is what
/// makes FlowState snapshots cheap. Deliberately minimal: exactly the
/// surface HeldKeySet and FlowState::VarMap need, nothing more.
///
//===----------------------------------------------------------------------===//

#ifndef VAULT_SUPPORT_SMALLVECTOR_H
#define VAULT_SUPPORT_SMALLVECTOR_H

#include <cassert>
#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace vault {

template <typename T, size_t N> class SmallVector {
public:
  using value_type = T;
  using iterator = T *;
  using const_iterator = const T *;

  SmallVector() = default;
  SmallVector(const SmallVector &O) { append(O.begin(), O.end()); }
  SmallVector(SmallVector &&O) noexcept { moveFrom(std::move(O)); }
  SmallVector &operator=(const SmallVector &O) {
    if (this != &O) {
      clear();
      append(O.begin(), O.end());
    }
    return *this;
  }
  SmallVector &operator=(SmallVector &&O) noexcept {
    if (this != &O) {
      destroyAll();
      moveFrom(std::move(O));
    }
    return *this;
  }
  ~SmallVector() { destroyAll(); }

  iterator begin() { return Data; }
  iterator end() { return Data + Size; }
  const_iterator begin() const { return Data; }
  const_iterator end() const { return Data + Size; }

  size_t size() const { return Size; }
  bool empty() const { return Size == 0; }
  size_t capacity() const { return Cap; }

  T &operator[](size_t I) {
    assert(I < Size);
    return Data[I];
  }
  const T &operator[](size_t I) const {
    assert(I < Size);
    return Data[I];
  }
  T &back() {
    assert(Size);
    return Data[Size - 1];
  }

  void reserve(size_t NewCap) {
    if (NewCap > Cap)
      grow(NewCap);
  }

  void push_back(const T &V) { emplace_back(V); }
  void push_back(T &&V) { emplace_back(std::move(V)); }

  template <typename... Args> T &emplace_back(Args &&...As) {
    if (Size == Cap)
      grow(Cap * 2);
    T *Slot = new (Data + Size) T(std::forward<Args>(As)...);
    ++Size;
    return *Slot;
  }

  /// Inserts \p V before \p Pos, shifting the tail up.
  iterator insert(iterator Pos, T V) {
    size_t Idx = static_cast<size_t>(Pos - Data);
    assert(Idx <= Size);
    if (Size == Cap)
      grow(Cap * 2);
    if (Idx == Size) {
      new (Data + Size) T(std::move(V));
    } else {
      new (Data + Size) T(std::move(Data[Size - 1]));
      for (size_t I = Size - 1; I > Idx; --I)
        Data[I] = std::move(Data[I - 1]);
      Data[Idx] = std::move(V);
    }
    ++Size;
    return Data + Idx;
  }

  /// Erases the element at \p Pos, shifting the tail down.
  iterator erase(iterator Pos) {
    size_t Idx = static_cast<size_t>(Pos - Data);
    assert(Idx < Size);
    for (size_t I = Idx; I + 1 < Size; ++I)
      Data[I] = std::move(Data[I + 1]);
    Data[Size - 1].~T();
    --Size;
    return Data + Idx;
  }

  void clear() {
    for (size_t I = 0; I != Size; ++I)
      Data[I].~T();
    Size = 0;
  }

  friend bool operator==(const SmallVector &A, const SmallVector &B) {
    if (A.Size != B.Size)
      return false;
    for (size_t I = 0; I != A.Size; ++I)
      if (!(A.Data[I] == B.Data[I]))
        return false;
    return true;
  }

private:
  T *inlineData() { return reinterpret_cast<T *>(Inline); }
  bool isInline() const {
    return Data == reinterpret_cast<const T *>(Inline);
  }

  void append(const T *First, const T *Last) {
    size_t Count = static_cast<size_t>(Last - First);
    reserve(Size + Count);
    for (; First != Last; ++First)
      new (Data + Size++) T(*First);
  }

  /// Steals O's heap buffer, or element-moves its inline contents.
  void moveFrom(SmallVector &&O) {
    if (O.isInline()) {
      Data = inlineData();
      Cap = N;
      Size = O.Size;
      for (size_t I = 0; I != O.Size; ++I) {
        new (Data + I) T(std::move(O.Data[I]));
        O.Data[I].~T();
      }
      O.Size = 0;
    } else {
      Data = O.Data;
      Size = O.Size;
      Cap = O.Cap;
      O.Data = O.inlineData();
      O.Size = 0;
      O.Cap = N;
    }
  }

  void grow(size_t NewCap) {
    if (NewCap < Size + 1)
      NewCap = Size + 1;
    T *NewData = static_cast<T *>(
        ::operator new(NewCap * sizeof(T), std::align_val_t(alignof(T))));
    for (size_t I = 0; I != Size; ++I) {
      new (NewData + I) T(std::move(Data[I]));
      Data[I].~T();
    }
    if (!isInline())
      ::operator delete(Data, std::align_val_t(alignof(T)));
    Data = NewData;
    Cap = NewCap;
  }

  void destroyAll() {
    clear();
    if (!isInline())
      ::operator delete(Data, std::align_val_t(alignof(T)));
  }

  alignas(T) unsigned char Inline[N * sizeof(T)];
  T *Data = reinterpret_cast<T *>(Inline);
  size_t Size = 0;
  size_t Cap = N;
};

} // namespace vault

#endif // VAULT_SUPPORT_SMALLVECTOR_H
