//===- Hash.h - Stable hashing for fingerprints -----------------*- C++ -*-===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, dependency-free 128-bit streaming hash used for the
/// incremental-check fingerprints. The value is stable across runs,
/// platforms and job counts: it depends only on the bytes fed in. Not
/// cryptographic — collisions are astronomically unlikely at 128 bits
/// for the workloads here, but an adversarial input could forge one.
///
//===----------------------------------------------------------------------===//

#ifndef VAULT_SUPPORT_HASH_H
#define VAULT_SUPPORT_HASH_H

#include <cstdint>
#include <string>
#include <string_view>

namespace vault {

/// 128-bit fingerprint value.
struct Fingerprint {
  uint64_t Hi = 0;
  uint64_t Lo = 0;

  friend bool operator==(const Fingerprint &A, const Fingerprint &B) {
    return A.Hi == B.Hi && A.Lo == B.Lo;
  }
  friend bool operator!=(const Fingerprint &A, const Fingerprint &B) {
    return !(A == B);
  }

  /// 32 lowercase hex digits.
  std::string hex() const;

  /// Parses the hex() form; returns false on malformed input.
  static bool fromHex(std::string_view S, Fingerprint &Out);
};

/// Streaming hasher: two independent FNV-1a-style 64-bit lanes with
/// distinct primes, finalized with an avalanche mix. Feed bytes or
/// length-prefixed fields; the length prefix keeps adjacent fields
/// from sliding into each other ("ab"+"c" vs "a"+"bc").
class Hasher {
public:
  void bytes(const void *Data, size_t N) {
    const auto *P = static_cast<const unsigned char *>(Data);
    for (size_t I = 0; I < N; ++I) {
      A = (A ^ P[I]) * 0x100000001b3ULL;
      B = (B ^ P[I]) * 0x00000100000001b3ULL ^ (B >> 29);
    }
  }

  void str(std::string_view S) {
    u64(S.size());
    bytes(S.data(), S.size());
  }

  void u64(uint64_t V) { bytes(&V, sizeof V); }
  void u32(uint32_t V) { bytes(&V, sizeof V); }
  void u8(uint8_t V) { bytes(&V, sizeof V); }

  void fingerprint(const Fingerprint &F) {
    u64(F.Hi);
    u64(F.Lo);
  }

  Fingerprint finish() const {
    auto Mix = [](uint64_t X) {
      X ^= X >> 33;
      X *= 0xff51afd7ed558ccdULL;
      X ^= X >> 33;
      X *= 0xc4ceb9fe1a85ec53ULL;
      X ^= X >> 33;
      return X;
    };
    return Fingerprint{Mix(A ^ (B << 1)), Mix(B ^ (A >> 1))};
  }

private:
  uint64_t A = 0xcbf29ce484222325ULL;
  uint64_t B = 0x84222325cbf29ce4ULL;
};

inline std::string Fingerprint::hex() const {
  static const char *Digits = "0123456789abcdef";
  std::string S(32, '0');
  uint64_t W[2] = {Hi, Lo};
  for (int P = 0; P < 2; ++P)
    for (int I = 0; I < 16; ++I)
      S[P * 16 + I] = Digits[(W[P] >> (60 - 4 * I)) & 0xF];
  return S;
}

inline bool Fingerprint::fromHex(std::string_view S, Fingerprint &Out) {
  if (S.size() != 32)
    return false;
  uint64_t W[2] = {0, 0};
  for (int P = 0; P < 2; ++P)
    for (int I = 0; I < 16; ++I) {
      char C = S[P * 16 + I];
      unsigned D;
      if (C >= '0' && C <= '9')
        D = C - '0';
      else if (C >= 'a' && C <= 'f')
        D = C - 'a' + 10;
      else
        return false;
      W[P] = (W[P] << 4) | D;
    }
  Out = Fingerprint{W[0], W[1]};
  return true;
}

} // namespace vault

#endif // VAULT_SUPPORT_HASH_H
