//===- Socket.h - In-memory loopback socket substrate -----------*- C++ -*-===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic in-memory substitute for the Unix sockets of the
/// paper's §2.3. The object under study is the *protocol automaton*
///
///     raw --bind--> named --listen--> listening --accept--> (ready)
///
/// which this substrate implements faithfully: every operation checks
/// the socket's dynamic state and records a protocol violation when
/// misused, providing the run-time oracle that the static Vault
/// checker is evaluated against.
///
//===----------------------------------------------------------------------===//

#ifndef VAULT_SOCKETS_SOCKET_H
#define VAULT_SOCKETS_SOCKET_H

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace vault::net {

enum class SockState : uint8_t {
  Raw,
  Named,
  Listening,
  Ready,
  Closed,
};

const char *sockStateName(SockState S);

enum class SockError : uint8_t {
  Ok,
  WrongState,    ///< Operation applied in the wrong protocol state.
  AddrInUse,     ///< bind() to a port that is already bound.
  WouldBlock,    ///< accept()/receive() with nothing pending.
  NotConnected,  ///< Peer closed.
  BadHandle,     ///< Unknown or closed socket handle.
};

const char *sockErrorName(SockError E);

/// An in-process network of loopback sockets. All operations are
/// non-blocking and deterministic.
class SocketWorld {
public:
  using Handle = uint64_t;

  /// Creates a socket in the "raw" state.
  Handle socketCreate();

  /// raw -> named. Fails with AddrInUse if \p Port is taken.
  SockError bind(Handle H, uint16_t Port);

  /// named -> listening; \p Backlog bounds the pending-connection queue.
  SockError listen(Handle H, unsigned Backlog);

  /// Client side: creates a raw socket already connected to the
  /// listening socket at \p Port (it becomes Ready on success).
  SockError connect(Handle H, uint16_t Port);

  /// listening: pops a pending connection, returning a fresh Ready
  /// socket. WouldBlock if none is pending.
  SockError accept(Handle H, Handle &OutConn);

  /// ready: queues \p Data to the peer.
  SockError send(Handle H, const std::vector<uint8_t> &Data);

  /// ready: pops the next message. WouldBlock if none.
  SockError receive(Handle H, std::vector<uint8_t> &Out);

  /// Any state: closes the socket and disconnects the peer.
  SockError close(Handle H);

  SockState stateOf(Handle H) const;
  bool isLive(Handle H) const;
  size_t liveCount() const;

  /// Sockets never closed (the dynamic analogue of a leaked key).
  std::vector<Handle> leakedSockets() const;

  /// Count of operations applied in a protocol-violating state.
  unsigned violationCount() const { return Violations; }

  /// Log of violations (operation name + state), for the test oracle.
  const std::vector<std::string> &violationLog() const { return Log; }

private:
  struct Sock {
    SockState State = SockState::Raw;
    uint16_t Port = 0;
    unsigned Backlog = 0;
    Handle Peer = 0;
    std::deque<Handle> Pending;          ///< For listening sockets.
    std::deque<std::vector<uint8_t>> Rx; ///< Inbound messages.
  };

  Sock *get(Handle H);
  const Sock *get(Handle H) const;
  void violation(const std::string &What, Handle H);

  std::vector<std::optional<Sock>> Socks;
  std::map<uint16_t, Handle> Bound;
  unsigned Violations = 0;
  std::vector<std::string> Log;
};

} // namespace vault::net

#endif // VAULT_SOCKETS_SOCKET_H
