//===- Socket.cpp ---------------------------------------------------------===//

#include "sockets/Socket.h"

using namespace vault::net;

const char *vault::net::sockStateName(SockState S) {
  switch (S) {
  case SockState::Raw:
    return "raw";
  case SockState::Named:
    return "named";
  case SockState::Listening:
    return "listening";
  case SockState::Ready:
    return "ready";
  case SockState::Closed:
    return "closed";
  }
  return "?";
}

const char *vault::net::sockErrorName(SockError E) {
  switch (E) {
  case SockError::Ok:
    return "ok";
  case SockError::WrongState:
    return "wrong-state";
  case SockError::AddrInUse:
    return "addr-in-use";
  case SockError::WouldBlock:
    return "would-block";
  case SockError::NotConnected:
    return "not-connected";
  case SockError::BadHandle:
    return "bad-handle";
  }
  return "?";
}

SocketWorld::Sock *SocketWorld::get(Handle H) {
  if (H < 1 || H > Socks.size() || !Socks[H - 1])
    return nullptr;
  return &*Socks[H - 1];
}

const SocketWorld::Sock *SocketWorld::get(Handle H) const {
  if (H < 1 || H > Socks.size() || !Socks[H - 1])
    return nullptr;
  return &*Socks[H - 1];
}

void SocketWorld::violation(const std::string &What, Handle H) {
  ++Violations;
  const Sock *S = get(H);
  Log.push_back(What + " on socket #" + std::to_string(H) + " in state " +
                (S ? sockStateName(S->State) : "<dead>"));
}

SocketWorld::Handle SocketWorld::socketCreate() {
  Socks.emplace_back(Sock{});
  return Socks.size();
}

SockError SocketWorld::bind(Handle H, uint16_t Port) {
  Sock *S = get(H);
  if (!S) {
    violation("bind", H);
    return SockError::BadHandle;
  }
  if (S->State != SockState::Raw) {
    violation("bind", H);
    return SockError::WrongState;
  }
  if (Bound.count(Port))
    return SockError::AddrInUse; // Environment failure, not a protocol bug.
  Bound[Port] = H;
  S->Port = Port;
  S->State = SockState::Named;
  return SockError::Ok;
}

SockError SocketWorld::listen(Handle H, unsigned Backlog) {
  Sock *S = get(H);
  if (!S) {
    violation("listen", H);
    return SockError::BadHandle;
  }
  if (S->State != SockState::Named) {
    violation("listen", H);
    return SockError::WrongState;
  }
  S->Backlog = Backlog ? Backlog : 1;
  S->State = SockState::Listening;
  return SockError::Ok;
}

SockError SocketWorld::connect(Handle H, uint16_t Port) {
  Sock *S = get(H);
  if (!S) {
    violation("connect", H);
    return SockError::BadHandle;
  }
  if (S->State != SockState::Raw) {
    violation("connect", H);
    return SockError::WrongState;
  }
  auto It = Bound.find(Port);
  if (It == Bound.end())
    return SockError::NotConnected;
  Sock *L = get(It->second);
  if (!L || L->State != SockState::Listening)
    return SockError::NotConnected;
  if (L->Pending.size() >= L->Backlog)
    return SockError::WouldBlock;
  // The server half of the connection is materialized at accept time;
  // the client becomes Ready now, pointing at a pending slot.
  L->Pending.push_back(H);
  S->State = SockState::Ready;
  S->Peer = 0; // Filled in by accept.
  return SockError::Ok;
}

SockError SocketWorld::accept(Handle H, Handle &OutConn) {
  Sock *S = get(H);
  if (!S) {
    violation("accept", H);
    return SockError::BadHandle;
  }
  if (S->State != SockState::Listening) {
    violation("accept", H);
    return SockError::WrongState;
  }
  if (S->Pending.empty())
    return SockError::WouldBlock;
  Handle Client = S->Pending.front();
  S->Pending.pop_front();
  Socks.emplace_back(Sock{});
  OutConn = Socks.size();
  Sock *Server = get(OutConn);
  Server->State = SockState::Ready;
  Server->Peer = Client;
  if (Sock *C = get(Client))
    C->Peer = OutConn;
  return SockError::Ok;
}

SockError SocketWorld::send(Handle H, const std::vector<uint8_t> &Data) {
  Sock *S = get(H);
  if (!S) {
    violation("send", H);
    return SockError::BadHandle;
  }
  if (S->State != SockState::Ready) {
    violation("send", H);
    return SockError::WrongState;
  }
  Sock *Peer = get(S->Peer);
  if (!Peer || Peer->State != SockState::Ready)
    return SockError::NotConnected;
  Peer->Rx.push_back(Data);
  return SockError::Ok;
}

SockError SocketWorld::receive(Handle H, std::vector<uint8_t> &Out) {
  Sock *S = get(H);
  if (!S) {
    violation("receive", H);
    return SockError::BadHandle;
  }
  if (S->State != SockState::Ready) {
    violation("receive", H);
    return SockError::WrongState;
  }
  if (S->Rx.empty())
    return SockError::WouldBlock;
  Out = std::move(S->Rx.front());
  S->Rx.pop_front();
  return SockError::Ok;
}

SockError SocketWorld::close(Handle H) {
  Sock *S = get(H);
  if (!S) {
    violation("close", H);
    return SockError::BadHandle;
  }
  if (S->State == SockState::Closed) {
    violation("close", H);
    return SockError::WrongState;
  }
  if (S->Port && Bound.count(S->Port) && Bound[S->Port] == H)
    Bound.erase(S->Port);
  if (Sock *Peer = get(S->Peer); Peer && Peer->Peer == H)
    Peer->Peer = 0;
  S->State = SockState::Closed;
  return SockError::Ok;
}

SockState SocketWorld::stateOf(Handle H) const {
  const Sock *S = get(H);
  return S ? S->State : SockState::Closed;
}

bool SocketWorld::isLive(Handle H) const {
  const Sock *S = get(H);
  return S && S->State != SockState::Closed;
}

size_t SocketWorld::liveCount() const {
  size_t N = 0;
  for (const auto &S : Socks)
    if (S && S->State != SockState::Closed)
      ++N;
  return N;
}

std::vector<SocketWorld::Handle> SocketWorld::leakedSockets() const {
  std::vector<Handle> Out;
  for (size_t I = 0; I != Socks.size(); ++I)
    if (Socks[I] && Socks[I]->State != SockState::Closed)
      Out.push_back(I + 1);
  return Out;
}
