//===- VM.h - Register-bytecode engine for the dynamic oracle ---*- C++ -*-===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bytecode engine: compiles checked functions to vm::Chunk on
/// first call (cached per Vm) and executes them in a dispatch loop
/// over interp::Value, sharing the interp::Machine substrate — worlds,
/// violations, output, traps, step budget — with the tree-walker.
/// The contract is observational equivalence with interp::Interp; the
/// differential suite and the fuzz "vm" oracle enforce it.
///
//===----------------------------------------------------------------------===//

#ifndef VAULT_VM_VM_H
#define VAULT_VM_VM_H

#include "interp/Machine.h"
#include "vm/Bytecode.h"

namespace vault::vm {

class Vm : public interp::Machine {
public:
  explicit Vm(VaultCompiler &C);
  ~Vm() override; // Out of line: FramePool's element type is incomplete here.

  bool run(const std::string &Name = "main",
           std::vector<interp::Value> Args = {}) override;

  /// The compiled chunk for a top-level function (compiled lazily,
  /// cached for the lifetime of this Vm).
  const Chunk *chunkFor(const FuncDecl *F);

private:
  struct Frame;

  /// Args is a span into the caller's registers (or run()'s argument
  /// vector); invoke moves the values out to bind parameters.
  interp::Value
  invoke(const Chunk &Ch, interp::Value *Args, size_t NArgs,
         const std::vector<std::shared_ptr<interp::VmBox>> *Upvals);

  std::map<const FuncDecl *, std::unique_ptr<Chunk>> Cache;
  /// Retired frames keep their vector capacity so a call after warmup
  /// allocates nothing; reuse is safe because temps are written before
  /// read, locals are gated by Bound bits, and boxes/refs are reset at
  /// frame entry.
  std::vector<std::unique_ptr<Frame>> FramePool;
  /// Return-value register shared across frames — deliberately
  /// mirroring the tree-walker's interpreter-global ReturnSlot,
  /// including its fall-off-the-end behavior after a nested call.
  interp::Value RetVal;
};

} // namespace vault::vm

#endif // VAULT_VM_VM_H
