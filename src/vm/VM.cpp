//===- VM.cpp - Bytecode dispatch loop ------------------------------------===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
// Every opcode replicates the tree-walker's semantics byte for byte:
// the same trap/violation messages, the same evaluation-order effects
// (encoded by the compiler), the same step-budget charge points (call
// entry + loop iteration). Where the walker has a quirk — the shared
// ReturnSlot, the call-site re-check through a rebindable slot, raw
// (underef'd) truth tests — the VM reproduces the quirk rather than
// "fixing" it, because the differential harness compares observables.
//
//===----------------------------------------------------------------------===//

#include "vm/VM.h"

using namespace vault;
using namespace vault::vm;
using vault::interp::CellData;
using vault::interp::FuncData;
using vault::interp::StructData;
using vault::interp::Value;
using vault::interp::VariantData;
using vault::interp::VmBox;

/// Per-invocation state: value registers with their bound bits, the
/// frame's heap boxes, and lvalue reference slots.
struct Vm::Frame {
  std::vector<Value> R;
  std::vector<uint8_t> Bound;
  std::vector<std::shared_ptr<VmBox>> Boxes;
  std::vector<Value *> Refs;
};

Vm::Vm(VaultCompiler &C) : Machine(C) {}
Vm::~Vm() = default;

const Chunk *Vm::chunkFor(const FuncDecl *F) {
  auto It = Cache.find(F);
  if (It == Cache.end())
    It = Cache.emplace(F, compileFunction(Compiler, F)).first;
  return It->second.get();
}

bool Vm::run(const std::string &Name, std::vector<Value> Args) {
  const FuncDecl *F = findFunction(Name);
  if (!F || !F->body()) {
    trap("no function '" + Name + "' with a body");
    return false;
  }
  Result = invoke(*chunkFor(F), Args.data(), Args.size(), nullptr);
  return !Trapped;
}

Value Vm::invoke(const Chunk &Ch, Value *Args, size_t NArgs,
                 const std::vector<std::shared_ptr<VmBox>> *Upvals) {
  // One step per call entry: the same charge point as the walker.
  if (!chargeStep())
    return Value::unit();

  std::unique_ptr<Frame> Owner;
  if (FramePool.empty()) {
    Owner = std::make_unique<Frame>();
  } else {
    Owner = std::move(FramePool.back());
    FramePool.pop_back();
  }
  Frame &F = *Owner;
  // Stale register values from the previous occupant are unreachable:
  // temps are always written before read, and locals read only through
  // their (cleared) Bound bits.
  F.R.resize(Ch.NumRegs);
  F.Bound.assign(Ch.NumRegs, 0);
  F.Boxes.clear();
  F.Boxes.resize(Ch.NumBoxes);
  F.Refs.assign(Ch.NumRefs, nullptr);
  for (size_t I = 0; I != Ch.NumParams && I < NArgs; ++I)
    if (Ch.ParamNamed[I]) {
      F.R[I] = std::move(Args[I]);
      F.Bound[I] = 1;
    }
  RetVal = Value::unit();

  // A chain candidate resolves when its slot is bound; the first bound
  // candidate wins, like the innermost Env hit.
  auto slotFor = [&](const Binding &B) -> Value * {
    switch (B.K) {
    case Binding::Kind::Reg:
      return F.Bound[B.Index] ? &F.R[B.Index] : nullptr;
    case Binding::Kind::Box: {
      auto &Bx = F.Boxes[B.Index];
      return Bx && Bx->Bound ? &Bx->V : nullptr;
    }
    case Binding::Kind::Upval: {
      if (!Upvals)
        return nullptr;
      auto &Bx = (*Upvals)[B.Index];
      return Bx && Bx->Bound ? &Bx->V : nullptr;
    }
    }
    return nullptr;
  };
  auto resolveChain = [&](const NameChain &C) -> Value * {
    for (const Binding &B : C.Bindings)
      if (Value *V = slotFor(B))
        return V;
    return nullptr;
  };

  const std::vector<Insn> &Code = Ch.Code;
  size_t PC = 0;
  while (PC < Code.size()) {
    if (Trapped)
      break;
    const Insn &I = Code[PC++];
    switch (I.O) {
    case Op::Nop:
      break;
    case Op::LoadUnit:
      F.R[I.A] = Value::unit();
      break;
    case Op::LoadInt:
      F.R[I.A] = Value::intV(Ch.Ints[I.X]);
      break;
    case Op::LoadStr:
      F.R[I.A] = Value::strV(Ch.Strs[I.X]);
      break;
    case Op::LoadBool:
      F.R[I.A] = Value::boolV(I.B != 0);
      break;
    case Op::Move:
      F.R[I.A] = F.R[I.B];
      break;
    case Op::LoadName: {
      const NameChain &C = Ch.Chains[I.X];
      if (Value *V = resolveChain(C)) {
        F.R[I.A] = *V;
        break;
      }
      // A top-level function used as a value; a fresh FuncData per
      // evaluation, like the walker (so f == f is false).
      if (const FuncDecl *Fn = findFunction(Ch.Strs[C.NameIdx])) {
        auto FD = std::make_shared<FuncData>();
        FD->Decl = Fn;
        F.R[I.A] = Value::funcV(std::move(FD));
        break;
      }
      trap("unknown name '" + Ch.Strs[C.NameIdx] + "'");
      F.R[I.A] = Value::unit();
      break;
    }
    case Op::BindReg:
      F.R[I.A] = F.R[I.B];
      F.Bound[I.A] = 1;
      break;
    case Op::SetBox: {
      auto &Bx = F.Boxes[I.A];
      if (!Bx)
        Bx = std::make_shared<VmBox>();
      Bx->V = F.R[I.B];
      Bx->Bound = true;
      break;
    }
    case Op::BoxParam: {
      auto Bx = std::make_shared<VmBox>();
      Bx->V = F.R[I.B];
      Bx->Bound = F.Bound[I.B] != 0;
      F.Boxes[I.A] = std::move(Bx);
      break;
    }
    case Op::Closure: {
      const ClosureSite &CS = Ch.Closures[I.X];
      const Chunk *Proto = Ch.Protos[CS.ProtoIdx].get();
      auto FD = std::make_shared<FuncData>();
      FD->Decl = Proto->Decl;
      FD->VmProto = Proto;
      for (const UpvalSrc &U : CS.Upvals) {
        std::shared_ptr<VmBox> Bx =
            U.K == UpvalSrc::Kind::FromBox
                ? F.Boxes[U.Index]
                : (Upvals ? (*Upvals)[U.Index] : nullptr);
        if (!Bx)
          Bx = std::make_shared<VmBox>();
        FD->VmUpvals.push_back(std::move(Bx));
      }
      F.R[I.A] = Value::funcV(std::move(FD));
      break;
    }
    case Op::ScopeReset: {
      const ResetList &RL = Ch.Resets[I.X];
      for (uint16_t R : RL.Regs)
        F.Bound[R] = 0;
      // Fresh boxes per execution: closures made this round capture
      // this round's slots, and the scope starts undeclared.
      for (uint16_t B : RL.Boxes)
        F.Boxes[B] = std::make_shared<VmBox>();
      break;
    }
    case Op::Jump:
      PC = I.X;
      break;
    case Op::JumpIfFalse:
      if (!F.R[I.A].asBool())
        PC = I.X;
      break;
    case Op::JumpIfTrue:
      if (F.R[I.A].asBool())
        PC = I.X;
      break;
    case Op::ToBool:
      F.R[I.A] = Value::boolV(F.R[I.B].asBool());
      break;
    case Op::Not:
      F.R[I.A] = Value::boolV(!F.R[I.B].asBool());
      break;
    case Op::Neg:
      F.R[I.A] = Value::intV(-F.R[I.B].asInt());
      break;
    case Op::Deref:
      F.R[I.A] = derefForAccess(F.R[I.B], Ch.Strs[I.X].c_str());
      break;
    case Op::Add:
      F.R[I.A] = Value::intV(F.R[I.B].asInt() + F.R[I.C].asInt());
      break;
    case Op::Sub:
      F.R[I.A] = Value::intV(F.R[I.B].asInt() - F.R[I.C].asInt());
      break;
    case Op::Mul:
      F.R[I.A] = Value::intV(F.R[I.B].asInt() * F.R[I.C].asInt());
      break;
    case Op::Div:
      if (F.R[I.C].asInt() == 0) {
        trap("division by zero");
        F.R[I.A] = Value::intV(0);
      } else {
        F.R[I.A] = Value::intV(F.R[I.B].asInt() / F.R[I.C].asInt());
      }
      break;
    case Op::Rem:
      if (F.R[I.C].asInt() == 0) {
        trap("remainder by zero");
        F.R[I.A] = Value::intV(0);
      } else {
        F.R[I.A] = Value::intV(F.R[I.B].asInt() % F.R[I.C].asInt());
      }
      break;
    case Op::Eq:
      F.R[I.A] = Value::boolV(F.R[I.B].equals(F.R[I.C]));
      break;
    case Op::Ne:
      F.R[I.A] = Value::boolV(!F.R[I.B].equals(F.R[I.C]));
      break;
    case Op::Lt:
      F.R[I.A] = Value::boolV(F.R[I.B].asInt() < F.R[I.C].asInt());
      break;
    case Op::Le:
      F.R[I.A] = Value::boolV(F.R[I.B].asInt() <= F.R[I.C].asInt());
      break;
    case Op::Gt:
      F.R[I.A] = Value::boolV(F.R[I.B].asInt() > F.R[I.C].asInt());
      break;
    case Op::Ge:
      F.R[I.A] = Value::boolV(F.R[I.B].asInt() >= F.R[I.C].asInt());
      break;
    case Op::Field: {
      Value Record = derefForAccess(F.R[I.B], "field access");
      Value Out = Value::unit();
      if (Record.kind() == Value::Kind::Struct) {
        auto It = Record.structData()->Fields.find(Ch.Strs[I.X]);
        if (It != Record.structData()->Fields.end())
          Out = It->second;
      }
      F.R[I.A] = std::move(Out);
      break;
    }
    case Op::Index: {
      Value Base = F.R[I.B];
      Value Idx = F.R[I.C];
      Value Arr = derefForAccess(Base, "index");
      if (Arr.kind() == Value::Kind::Array && Arr.array()) {
        auto &Elems = Arr.array()->Elems;
        if (Idx.asInt() >= 0 &&
            static_cast<size_t>(Idx.asInt()) < Elems.size()) {
          F.R[I.A] = Elems[Idx.asInt()];
        } else {
          trap("array index out of bounds");
          F.R[I.A] = Value::unit();
        }
        break;
      }
      if (Base.kind() == Value::Kind::Tuple) {
        auto &Elems = Base.tupleElems();
        if (Idx.asInt() >= 0 &&
            static_cast<size_t>(Idx.asInt()) < Elems.size()) {
          F.R[I.A] = Elems[Idx.asInt()];
          break;
        }
      }
      F.R[I.A] = Value::unit();
      break;
    }
    case Op::MakeTuple: {
      std::vector<Value> Elems(F.R.begin() + I.B, F.R.begin() + I.B + I.C);
      F.R[I.A] = Value::tupleV(std::move(Elems));
      break;
    }
    case Op::CtorV: {
      auto D = std::make_shared<VariantData>();
      D->Tag = Ch.Strs[I.X];
      D->Payload.assign(F.R.begin() + I.B, F.R.begin() + I.B + I.C);
      F.R[I.A] = Value::variantV(std::move(D));
      break;
    }
    case Op::NewObj: {
      const NewSite &NS = Ch.News[I.X];
      auto SD = std::make_shared<StructData>();
      for (uint32_t FIdx : NS.ZeroFields)
        SD->Fields[Ch.Strs[FIdx]] = Value::intV(0);
      for (size_t K = 0; K != NS.InitFields.size(); ++K)
        SD->Fields[Ch.Strs[NS.InitFields[K]]] = F.R[I.B + K];
      auto Cell = std::make_shared<CellData>();
      Cell->Inner = std::make_shared<Value>(Value::structV(std::move(SD)));
      Cell->Alive = true;
      if (NS.HasRegion) {
        const Value &Rg = F.R[I.B + NS.InitFields.size()];
        if (Rg.kind() != Value::Kind::Region) {
          trap("new(rgn) with a non-region value");
          F.R[I.A] = Value::unit();
          break;
        }
        if (!Regions.isLive(Rg.handle()))
          violation("allocation from deleted region");
        else
          Regions.allocate(Rg.handle(), 64); // Account the allocation.
        Cell->Region = Rg.handle();
        F.R[I.A] = Value::trackedV(std::move(Cell));
        break;
      }
      if (NS.Tracked) {
        F.R[I.A] = Value::trackedV(std::move(Cell));
        break;
      }
      F.R[I.A] = *Cell->Inner; // Plain record value.
      break;
    }
    case Op::Callee: {
      const CallSite &CS = Ch.Calls[I.X];
      Value *V = resolveChain(Ch.Chains[CS.ChainIdx]);
      // Only a function value shadows globals; any other local
      // binding falls through to the global/builtin path.
      F.Refs[CS.CalleeRef] =
          V && V->kind() == Value::Kind::Func ? V : nullptr;
      break;
    }
    case Op::Call: {
      const CallSite &CS = Ch.Calls[I.X];
      // Callee invocations consume the argument temps in place (the
      // compiler never reads an argument register after its Call);
      // only builtins — which take a mutable vector — get a copy.
      Value *ArgBase = F.R.data() + I.B;
      if (CS.ChainIdx != NoIndex && F.Refs[CS.CalleeRef]) {
        Value *V = F.Refs[CS.CalleeRef];
        // Re-check through the slot: argument evaluation may have
        // rebound the callee; trap instead of calling through a stale
        // or non-function value.
        if (V->kind() != Value::Kind::Func || !V->func() ||
            !V->func()->Decl) {
          trap("call target is no longer a function");
          F.R[I.A] = Value::unit();
          break;
        }
        // Keep the FuncData alive across the call even if the callee
        // rebinds the slot it was resolved from.
        std::shared_ptr<FuncData> FD = V->func();
        if (!FD->Decl->body()) {
          trap("call to function '" + FD->Decl->name() + "' with no body");
          F.R[I.A] = Value::unit();
          break;
        }
        const Chunk *Proto = FD->VmProto
                                 ? static_cast<const Chunk *>(FD->VmProto)
                                 : chunkFor(FD->Decl);
        F.R[I.A] = invoke(*Proto, ArgBase, I.C, &FD->VmUpvals);
        break;
      }
      if (CS.CachedCallee) {
        F.R[I.A] = invoke(*static_cast<const Chunk *>(CS.CachedCallee),
                          ArgBase, I.C, nullptr);
        break;
      }
      const std::string &Name = Ch.Strs[CS.NameIdx];
      if (const FuncDecl *Fn = findFunction(Name); Fn && Fn->body()) {
        const Chunk *Callee = chunkFor(Fn);
        CS.CachedCallee = Callee; // Global resolution is stable post-check.
        F.R[I.A] = invoke(*Callee, ArgBase, I.C, nullptr);
        break;
      }
      std::vector<Value> CallArgs(ArgBase, ArgBase + I.C);
      if (CS.QualIdx != NoIndex) {
        auto It = Builtins.find(Ch.Strs[CS.QualIdx]);
        if (It != Builtins.end()) {
          F.R[I.A] = It->second(*this, CallArgs);
          break;
        }
      }
      if (auto It = Builtins.find(Name); It != Builtins.end()) {
        F.R[I.A] = It->second(*this, CallArgs);
        break;
      }
      trap("call to undefined function '" +
           (CS.QualIdx != NoIndex ? Ch.Strs[CS.QualIdx] : Name) +
           "' (no body, no builtin)");
      F.R[I.A] = Value::unit();
      break;
    }
    case Op::Ret:
      RetVal = F.R[I.A];
      PC = Code.size();
      break;
    case Op::TrapMsg:
      trap(Ch.Strs[I.X]);
      break;
    case Op::Step:
      (void)chargeStep();
      break;
    case Op::FreeV: {
      const Value &V = F.R[I.A];
      if (V.kind() == Value::Kind::Tracked && V.cell()) {
        if (!V.cell()->Alive)
          violation("double free of tracked object");
        V.cell()->Alive = false;
        break;
      }
      if (V.kind() == Value::Kind::Region) {
        if (!Regions.destroy(V.handle()))
          violation("free of dead region");
        break;
      }
      if (V.kind() == Value::Kind::Tuple || V.kind() == Value::Kind::Variant)
        break; // Freeing an unpacked box: no-op.
      violation("free of a non-tracked value");
      break;
    }
    case Op::BorrowReg:
    case Op::BorrowBox: {
      // The alias gets its own cell sharing the source's storage, so
      // revoking the borrow later does not kill the original.
      Value Src = F.R[I.B];
      Value Bound;
      if (Src.kind() == Value::Kind::Tracked && Src.cell()) {
        auto Alias = std::make_shared<CellData>(*Src.cell());
        Alias->Revoked = false;
        Bound = Value::trackedV(std::move(Alias));
      } else {
        Bound = std::move(Src);
      }
      if (I.O == Op::BorrowReg) {
        F.R[I.A] = std::move(Bound);
        F.Bound[I.A] = 1;
      } else {
        auto &Bx = F.Boxes[I.A];
        if (!Bx)
          Bx = std::make_shared<VmBox>();
        Bx->V = std::move(Bound);
        Bx->Bound = true;
      }
      break;
    }
    case Op::EndBorrowV: {
      const Value &V = F.R[I.A];
      if (V.kind() == Value::Kind::Tracked && V.cell()) {
        if (V.cell()->Revoked)
          violation("endborrow of an already-revoked borrow");
        V.cell()->Revoked = true;
      } else {
        violation("endborrow of a non-borrowed value");
      }
      break;
    }
    case Op::SwitchV: {
      const SwitchSite &SS = Ch.Switches[I.X];
      Value Subj = F.R[I.A];
      // A tracked variant is tested through its cell.
      if (Subj.kind() == Value::Kind::Tracked)
        Subj = derefForAccess(Subj, "switch subject");
      if (Subj.kind() != Value::Kind::Variant) {
        trap("switch on a non-variant value");
        PC = SS.EndTarget;
        break;
      }
      bool Matched = false;
      for (const SwitchCase &SC : SS.Cases) {
        if (Ch.Strs[SC.TagIdx] != Subj.variantData()->Tag)
          continue;
        // Binders start undeclared each execution, then bind the
        // available payload (fresh boxes for captured binders).
        for (const SwitchBinder &SB : SC.Binders) {
          if (!SB.Named)
            continue;
          if (SB.K == Binding::Kind::Reg)
            F.Bound[SB.Index] = 0;
          else
            F.Boxes[SB.Index] = std::make_shared<VmBox>();
        }
        const auto &Payload = Subj.variantData()->Payload;
        for (size_t K = 0; K < SC.Binders.size() && K < Payload.size();
             ++K) {
          const SwitchBinder &SB = SC.Binders[K];
          if (!SB.Named)
            continue;
          if (SB.K == Binding::Kind::Reg) {
            F.R[SB.Index] = Payload[K];
            F.Bound[SB.Index] = 1;
          } else {
            F.Boxes[SB.Index]->V = Payload[K];
            F.Boxes[SB.Index]->Bound = true;
          }
        }
        PC = SC.Target;
        Matched = true;
        break;
      }
      if (!Matched)
        PC = SS.DefaultTarget != NoIndex ? SS.DefaultTarget : SS.EndTarget;
      break;
    }
    case Op::RefName:
      F.Refs[I.A] = resolveChain(Ch.Chains[I.X]);
      break;
    case Op::RefField: {
      // The lvalue lattice of the walker's evalLValue: violations (not
      // traps) on dead/revoked bases, guarded-access recording, then a
      // slot into the shared StructData.
      Value Record = *F.Refs[I.B];
      Value *Out = nullptr;
      if (Record.kind() == Value::Kind::Tracked) {
        if (Record.cell()->Revoked) {
          violation("field access through revoked borrow");
          F.Refs[I.A] = nullptr;
          break;
        }
        if (!Record.cell()->Alive ||
            (Record.cell()->Region &&
             !Regions.isLive(Record.cell()->Region))) {
          violation("field access through dead tracked object");
          F.Refs[I.A] = nullptr;
          break;
        }
        if (Record.cell()->GuardMutex != 0 &&
            !Locks.isLocked(Record.cell()->GuardMutex))
          Locks.unguardedAccess(Record.cell()->GuardMutex, "field access");
        Record = Record.cell()->Inner ? *Record.cell()->Inner : Value::unit();
      }
      if (Record.kind() == Value::Kind::Struct) {
        auto It = Record.structData()->Fields.find(Ch.Strs[I.X]);
        if (It != Record.structData()->Fields.end())
          Out = &It->second;
      }
      F.Refs[I.A] = Out;
      break;
    }
    case Op::RefIndex: {
      Value *BaseRef = F.Refs[I.B];
      const Value &Idx = F.R[I.C];
      Value Arr = derefForAccess(*BaseRef, "index");
      if (Arr.kind() == Value::Kind::Array && Arr.array()) {
        auto &Elems = Arr.array()->Elems;
        if (Idx.asInt() >= 0 &&
            static_cast<size_t>(Idx.asInt()) < Elems.size()) {
          F.Refs[I.A] = &Elems[Idx.asInt()];
          break;
        }
        trap("array index out of bounds");
      }
      if (BaseRef->kind() == Value::Kind::Tuple) {
        auto &Elems = BaseRef->tupleElems();
        if (Idx.asInt() >= 0 &&
            static_cast<size_t>(Idx.asInt()) < Elems.size()) {
          F.Refs[I.A] = &Elems[Idx.asInt()];
          break;
        }
      }
      F.Refs[I.A] = nullptr;
      break;
    }
    case Op::RefTmp:
      F.Refs[I.A] = &F.R[I.B];
      break;
    case Op::RefNull:
      F.Refs[I.A] = nullptr;
      break;
    case Op::JumpIfRefOk:
      if (F.Refs[I.A])
        PC = I.X;
      break;
    case Op::JumpIfRefNull:
      if (!F.Refs[I.A])
        PC = I.X;
      break;
    case Op::StoreRef:
      if (F.Refs[I.A])
        *F.Refs[I.A] = F.R[I.B];
      else
        violation("assignment through dead object");
      break;
    case Op::AssignUnknown:
      trap("assignment to unknown variable '" + Ch.Strs[I.X] + "'");
      break;
    case Op::IncDec: {
      Value *Slot = F.Refs[I.B];
      if (Slot) {
        int64_t Old = Slot->asInt();
        *Slot = Value::intV(I.C ? Old + 1 : Old - 1);
        F.R[I.A] = Value::intV(Old);
      } else {
        violation("increment through dead object");
        F.R[I.A] = Value::unit();
      }
      break;
    }
    }
  }
  FramePool.push_back(std::move(Owner));
  return RetVal;
}
