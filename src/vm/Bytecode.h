//===- Bytecode.h - Register bytecode for the dynamic oracle ----*- C++ -*-===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compact register bytecode for executing checked Vault programs
/// with the dynamic protocol oracle inlined as cheap checks. One
/// function compiles to one Chunk: a flat instruction array plus
/// constant pools and aux tables (name-resolution chains, call/new/
/// switch sites, scope reset lists, closure descriptors) and the
/// Chunks of its nested functions.
///
/// Semantics contract: executing a Chunk through vm::Vm must be
/// observably identical — output lines, violations, traps, leak
/// counts, step-budget trap points — to walking the same AST with
/// interp::Interp. The differential suite (tests/vm/) and the fourth
/// fuzz oracle enforce this.
///
/// Names resolve through compile-time *chains*: the ordered candidate
/// bindings a dynamic Env-chain lookup could hit (innermost scope
/// outward, then enclosing functions as upvalues), each carrying a
/// runtime "bound" bit so conditional / not-yet-executed declarations
/// fall through exactly like absent Env entries. Locals captured by a
/// nested function live in heap boxes (interp::VmBox) materialized at
/// scope entry, so closures created before a later sibling
/// declaration still observe it — the same sharing a captured Env
/// frame gives the tree-walker.
///
//===----------------------------------------------------------------------===//

#ifndef VAULT_VM_BYTECODE_H
#define VAULT_VM_BYTECODE_H

#include "ast/Ast.h"

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace vault {
class VaultCompiler;
}

namespace vault::vm {

enum class Op : uint8_t {
  Nop,
  LoadUnit,    ///< R[A] = unit
  LoadInt,     ///< R[A] = Ints[X]
  LoadStr,     ///< R[A] = Strs[X]
  LoadBool,    ///< R[A] = bool(B)
  Move,        ///< R[A] = R[B]
  LoadName,    ///< R[A] = resolve Chains[X] (global-function fallback; traps on unknown)
  BindReg,     ///< R[A] = R[B]; mark local slot A bound (declaration)
  SetBox,      ///< Boxes[A]->V = R[B]; mark box bound (captured declaration)
  BoxParam,    ///< Boxes[A] = fresh box from param register B (value + bound bit)
  Closure,     ///< R[A] = function value from Closures[X]
  ScopeReset,  ///< unbind Resets[X].Regs; fresh unbound boxes for Resets[X].Boxes
  Jump,        ///< PC = X
  JumpIfFalse, ///< if (!R[A].asBool()) PC = X
  JumpIfTrue,  ///< if (R[A].asBool()) PC = X
  ToBool,      ///< R[A] = bool(R[B].asBool())
  Not,         ///< R[A] = !R[B].asBool()       (operand pre-dereferenced)
  Neg,         ///< R[A] = -R[B].asInt()        (operand pre-dereferenced)
  Deref,       ///< R[A] = derefForAccess(R[B], Strs[X])
  Add,         ///< R[A] = R[B] + R[C]  (integer ops; operands pre-dereferenced)
  Sub,
  Mul,
  Div,         ///< traps "division by zero"
  Rem,         ///< traps "remainder by zero"
  Eq,          ///< structural equality (Value::equals)
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  Field,       ///< R[A] = deref(R[B], "field access").Fields[Strs[X]] or unit
  Index,       ///< R[A] = deref(R[B], "index")[R[C]]; array OOB traps; tuple uses raw base
  MakeTuple,   ///< R[A] = tuple(R[B..B+C))
  CtorV,       ///< R[A] = variant Strs[X] with payload R[B..B+C)
  NewObj,      ///< R[A] = record/tracked cell per News[X], field args at R[B..]
  Callee,      ///< Refs[site.CalleeRef] = local chain hit iff it is a function value
  Call,        ///< R[A] = call per Calls[X] with args R[B..B+C)
  Ret,         ///< RetVal = R[A]; leave frame
  TrapMsg,     ///< trap(Strs[X])
  Step,        ///< charge one step of the execution budget (loop iteration)
  FreeV,       ///< free statement on R[A]
  BorrowReg,   ///< local slot A = borrow-alias of R[B]; mark bound
  BorrowBox,   ///< Boxes[A]->V = borrow-alias of R[B]; mark bound
  EndBorrowV,  ///< endborrow statement on R[A]
  SwitchV,     ///< dispatch on R[A] per Switches[X]: bind case binders, jump
  RefName,     ///< Refs[A] = resolve Chains[X] as a slot (no global fallback)
  RefField,    ///< Refs[A] = &deref-checked (*Refs[B]).Fields[Strs[X]] or null
  RefIndex,    ///< Refs[A] = element slot of (*Refs[B])[R[C]] or null; array OOB traps
  RefTmp,      ///< Refs[A] = &R[B] (rvalue base materialized into a register)
  RefNull,     ///< Refs[A] = null
  JumpIfRefOk, ///< if (Refs[A]) PC = X
  JumpIfRefNull, ///< if (!Refs[A]) PC = X
  StoreRef,    ///< *Refs[A] = R[B]; null target records "assignment through dead object"
  AssignUnknown, ///< trap("assignment to unknown variable 'Strs[X]'")
  IncDec,      ///< R[A] = old int of *Refs[B], slot ±1 per C; null target records violation
};

/// One instruction: a one-byte opcode, three short register/slot
/// operands, and a wide operand for jump targets and pool/table
/// indices. 12 bytes, trivially copyable.
struct Insn {
  Op O = Op::Nop;
  uint16_t A = 0, B = 0, C = 0;
  uint32_t X = 0;
};

constexpr uint32_t NoIndex = 0xFFFFFFFFu;

/// One candidate binding of a name, in lookup order.
struct Binding {
  enum class Kind : uint8_t { Reg, Box, Upval };
  Kind K = Kind::Reg;
  uint16_t Index = 0;
};

/// The ordered candidate bindings a dynamic lookup of one name could
/// hit, innermost first. The first *bound* candidate wins; if none is
/// bound the name falls through to the global function table.
struct NameChain {
  std::vector<Binding> Bindings;
  uint32_t NameIdx = 0; ///< Strs index of the name (fallback + messages).
};

/// A call expression site. Replicates the tree-walker's resolution
/// order: local function value (via Callee), then a global function
/// with a body, then a qualified builtin, then a plain builtin.
struct CallSite {
  uint32_t ChainIdx = NoIndex; ///< local-shadow chain; NoIndex for M.f() calls
  uint16_t CalleeRef = 0;      ///< ref slot Callee resolves into
  uint32_t NameIdx = 0;        ///< plain function name
  uint32_t QualIdx = NoIndex;  ///< "Module.name" for qualified calls
  /// Execution cache: the callee's chunk once the site has resolved
  /// through the global function table (never set for local-shadow or
  /// builtin resolutions, which stay dynamic). Chunks are owned per-Vm,
  /// so the cached pointer never crosses engines.
  mutable const void *CachedCallee = nullptr;
};

/// A `new` expression site: the declared fields to zero-fill, the
/// initialized field names (in source order, matching the argument
/// registers), and the allocation flavor.
struct NewSite {
  std::vector<uint32_t> ZeroFields; ///< Strs indices, declaration order
  std::vector<uint32_t> InitFields; ///< Strs indices, one per argument
  bool Tracked = false;
  bool HasRegion = false; ///< region value register = argbase + InitFields.size()
};

/// A switch binder: where the payload element binds (register or box)
/// — unnamed binder positions still consume a payload slot.
struct SwitchBinder {
  Binding::Kind K = Binding::Kind::Reg;
  uint16_t Index = 0;
  bool Named = false;
};

struct SwitchCase {
  uint32_t TagIdx = 0; ///< Strs index of the constructor name
  std::vector<SwitchBinder> Binders;
  uint32_t Target = 0;
};

struct SwitchSite {
  std::vector<SwitchCase> Cases; ///< non-default cases, source order
  uint32_t DefaultTarget = NoIndex;
  uint32_t EndTarget = 0;
};

/// Scope-entry bookkeeping: unbind the scope's declared registers and
/// materialize fresh unbound boxes for its captured declarations, so
/// each execution of the block starts like a fresh Env frame.
struct ResetList {
  std::vector<uint16_t> Regs;
  std::vector<uint16_t> Boxes;
};

/// How a nested function captures one upvalue, in enclosing-frame
/// terms: a box of the enclosing frame or one of its own upvalues.
struct UpvalSrc {
  enum class Kind : uint8_t { FromBox, FromUpval };
  Kind K = Kind::FromBox;
  uint16_t Index = 0;
};

struct ClosureSite {
  uint32_t ProtoIdx = 0; ///< index into Chunk::Protos
  std::vector<UpvalSrc> Upvals;
};

/// One compiled function.
struct Chunk {
  std::string Name;
  const FuncDecl *Decl = nullptr;
  std::vector<Insn> Code;

  std::vector<int64_t> Ints;
  std::vector<std::string> Strs;
  std::vector<NameChain> Chains;
  std::vector<CallSite> Calls;
  std::vector<NewSite> News;
  std::vector<SwitchSite> Switches;
  std::vector<ResetList> Resets;
  std::vector<ClosureSite> Closures;
  std::vector<std::unique_ptr<Chunk>> Protos; ///< nested functions

  uint16_t NumRegs = 0;
  uint16_t NumBoxes = 0;
  uint16_t NumRefs = 0;
  /// Parameter registers are 0..NumParams-1 in declaration order;
  /// ParamNamed[i] tells whether slot i binds (anonymous params
  /// reserve the position but stay unbound, like the tree-walker).
  uint16_t NumParams = 0;
  std::vector<bool> ParamNamed;
};

/// Compiles one top-level function (no enclosing scope) to a Chunk.
std::unique_ptr<Chunk> compileFunction(VaultCompiler &C, const FuncDecl *F);

/// Renders a chunk (and, recursively, its nested-function protos) as
/// stable human-readable text for `vaultc --dump-bytecode` and tests.
std::string disassemble(const Chunk &Ch);

} // namespace vault::vm

#endif // VAULT_VM_BYTECODE_H
