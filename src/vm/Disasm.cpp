//===- Disasm.cpp - Human-readable chunk rendering ------------------------===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
// Stable text form of a compiled chunk for `vaultc --dump-bytecode`
// and tests. Pool-referencing instructions are annotated with the
// referenced constant so dumps are readable without the tables.
//
//===----------------------------------------------------------------------===//

#include "vm/Bytecode.h"

#include <sstream>

using namespace vault;
using namespace vault::vm;

namespace {

const char *opName(Op O) {
  switch (O) {
  case Op::Nop:           return "nop";
  case Op::LoadUnit:      return "load.unit";
  case Op::LoadInt:       return "load.int";
  case Op::LoadStr:       return "load.str";
  case Op::LoadBool:      return "load.bool";
  case Op::Move:          return "move";
  case Op::LoadName:      return "load.name";
  case Op::BindReg:       return "bind.reg";
  case Op::SetBox:        return "set.box";
  case Op::BoxParam:      return "box.param";
  case Op::Closure:       return "closure";
  case Op::ScopeReset:    return "scope.reset";
  case Op::Jump:          return "jump";
  case Op::JumpIfFalse:   return "jump.if.false";
  case Op::JumpIfTrue:    return "jump.if.true";
  case Op::ToBool:        return "to.bool";
  case Op::Not:           return "not";
  case Op::Neg:           return "neg";
  case Op::Deref:         return "deref";
  case Op::Add:           return "add";
  case Op::Sub:           return "sub";
  case Op::Mul:           return "mul";
  case Op::Div:           return "div";
  case Op::Rem:           return "rem";
  case Op::Eq:            return "eq";
  case Op::Ne:            return "ne";
  case Op::Lt:            return "lt";
  case Op::Le:            return "le";
  case Op::Gt:            return "gt";
  case Op::Ge:            return "ge";
  case Op::Field:         return "field";
  case Op::Index:         return "index";
  case Op::MakeTuple:     return "make.tuple";
  case Op::CtorV:         return "ctor";
  case Op::NewObj:        return "new.obj";
  case Op::Callee:        return "callee";
  case Op::Call:          return "call";
  case Op::Ret:           return "ret";
  case Op::TrapMsg:       return "trap";
  case Op::Step:          return "step";
  case Op::FreeV:         return "free";
  case Op::BorrowReg:     return "borrow.reg";
  case Op::BorrowBox:     return "borrow.box";
  case Op::EndBorrowV:    return "endborrow";
  case Op::SwitchV:       return "switch";
  case Op::RefName:       return "ref.name";
  case Op::RefField:      return "ref.field";
  case Op::RefIndex:      return "ref.index";
  case Op::RefTmp:        return "ref.tmp";
  case Op::RefNull:       return "ref.null";
  case Op::JumpIfRefOk:   return "jump.if.ref";
  case Op::JumpIfRefNull: return "jump.if.noref";
  case Op::StoreRef:      return "store.ref";
  case Op::AssignUnknown: return "assign.unknown";
  case Op::IncDec:        return "incdec";
  }
  return "?";
}

std::string quoted(const std::string &S) {
  std::string Out = "\"";
  for (char C : S) {
    if (C == '\n')
      Out += "\\n";
    else if (C == '"')
      Out += "\\\"";
    else
      Out += C;
  }
  Out += "\"";
  return Out;
}

std::string chainStr(const Chunk &Ch, uint32_t Idx) {
  const NameChain &C = Ch.Chains[Idx];
  std::string Out = Ch.Strs[C.NameIdx] + " [";
  for (size_t I = 0; I != C.Bindings.size(); ++I) {
    if (I)
      Out += " ";
    const Binding &B = C.Bindings[I];
    switch (B.K) {
    case Binding::Kind::Reg:
      Out += "r" + std::to_string(B.Index);
      break;
    case Binding::Kind::Box:
      Out += "b" + std::to_string(B.Index);
      break;
    case Binding::Kind::Upval:
      Out += "u" + std::to_string(B.Index);
      break;
    }
  }
  return Out + "]";
}

void disasmChunk(const Chunk &Ch, const std::string &Prefix,
                 std::ostringstream &Out) {
  Out << "func " << (Prefix.empty() ? Ch.Name : Prefix + "." + Ch.Name) << "/"
      << Ch.NumParams << " (regs=" << Ch.NumRegs << " boxes=" << Ch.NumBoxes
      << " refs=" << Ch.NumRefs << ")\n";
  char Buf[32];
  for (size_t PC = 0; PC != Ch.Code.size(); ++PC) {
    const Insn &I = Ch.Code[PC];
    std::snprintf(Buf, sizeof(Buf), "  %04zu  %-15s", PC, opName(I.O));
    Out << Buf;
    switch (I.O) {
    case Op::Nop:
    case Op::Step:
      break;
    case Op::LoadUnit:
    case Op::RefNull:
      Out << "r" << I.A;
      break;
    case Op::LoadInt:
      Out << "r" << I.A << ", " << Ch.Ints[I.X];
      break;
    case Op::LoadStr:
      Out << "r" << I.A << ", " << quoted(Ch.Strs[I.X]);
      break;
    case Op::LoadBool:
      Out << "r" << I.A << ", " << (I.B ? "true" : "false");
      break;
    case Op::Move:
    case Op::ToBool:
    case Op::Not:
    case Op::Neg:
    case Op::BindReg:
    case Op::BorrowReg:
      Out << "r" << I.A << ", r" << I.B;
      break;
    case Op::SetBox:
    case Op::BoxParam:
    case Op::BorrowBox:
      Out << "b" << I.A << ", r" << I.B;
      break;
    case Op::LoadName:
    case Op::RefName:
      Out << (I.O == Op::RefName ? "f" : "r") << I.A << ", "
          << chainStr(Ch, I.X);
      break;
    case Op::Closure:
      Out << "r" << I.A << ", proto#" << Ch.Closures[I.X].ProtoIdx << " ("
          << Ch.Protos[Ch.Closures[I.X].ProtoIdx]->Name << ", "
          << Ch.Closures[I.X].Upvals.size() << " upvals)";
      break;
    case Op::ScopeReset: {
      const ResetList &RL = Ch.Resets[I.X];
      Out << "regs=" << RL.Regs.size() << " boxes=" << RL.Boxes.size();
      break;
    }
    case Op::Jump:
      Out << "-> " << I.X;
      break;
    case Op::JumpIfFalse:
    case Op::JumpIfTrue:
      Out << "r" << I.A << " -> " << I.X;
      break;
    case Op::JumpIfRefOk:
    case Op::JumpIfRefNull:
      Out << "f" << I.A << " -> " << I.X;
      break;
    case Op::Deref:
      Out << "r" << I.A << ", r" << I.B << ", " << quoted(Ch.Strs[I.X]);
      break;
    case Op::Add:
    case Op::Sub:
    case Op::Mul:
    case Op::Div:
    case Op::Rem:
    case Op::Eq:
    case Op::Ne:
    case Op::Lt:
    case Op::Le:
    case Op::Gt:
    case Op::Ge:
      Out << "r" << I.A << ", r" << I.B << ", r" << I.C;
      break;
    case Op::Field:
      Out << "r" << I.A << ", r" << I.B << ", " << quoted(Ch.Strs[I.X]);
      break;
    case Op::Index:
      Out << "r" << I.A << ", r" << I.B << "[r" << I.C << "]";
      break;
    case Op::MakeTuple:
      Out << "r" << I.A << ", r" << I.B << "..+" << I.C;
      break;
    case Op::CtorV:
      Out << "r" << I.A << ", '" << Ch.Strs[I.X] << ", r" << I.B << "..+"
          << I.C;
      break;
    case Op::NewObj: {
      const NewSite &NS = Ch.News[I.X];
      Out << "r" << I.A << ", args r" << I.B << "..+"
          << (NS.InitFields.size() + (NS.HasRegion ? 1 : 0))
          << (NS.Tracked ? " tracked" : "") << (NS.HasRegion ? " region" : "");
      break;
    }
    case Op::Callee: {
      const CallSite &CS = Ch.Calls[I.X];
      Out << "f" << CS.CalleeRef << ", " << chainStr(Ch, CS.ChainIdx);
      break;
    }
    case Op::Call: {
      const CallSite &CS = Ch.Calls[I.X];
      Out << "r" << I.A << ", "
          << Ch.Strs[CS.QualIdx != NoIndex ? CS.QualIdx : CS.NameIdx] << "(r"
          << I.B << "..+" << I.C << ")";
      break;
    }
    case Op::Ret:
    case Op::FreeV:
    case Op::EndBorrowV:
      Out << "r" << I.A;
      break;
    case Op::TrapMsg:
    case Op::AssignUnknown:
      Out << quoted(Ch.Strs[I.X]);
      break;
    case Op::SwitchV: {
      const SwitchSite &SS = Ch.Switches[I.X];
      Out << "r" << I.A << ", {";
      for (size_t C = 0; C != SS.Cases.size(); ++C) {
        if (C)
          Out << " ";
        Out << "'" << Ch.Strs[SS.Cases[C].TagIdx] << "->"
            << SS.Cases[C].Target;
      }
      if (SS.DefaultTarget != NoIndex)
        Out << (SS.Cases.empty() ? "" : " ") << "_->" << SS.DefaultTarget;
      Out << "} end=" << SS.EndTarget;
      break;
    }
    case Op::RefField:
      Out << "f" << I.A << ", f" << I.B << ", " << quoted(Ch.Strs[I.X]);
      break;
    case Op::RefIndex:
      Out << "f" << I.A << ", f" << I.B << "[r" << I.C << "]";
      break;
    case Op::RefTmp:
      Out << "f" << I.A << ", r" << I.B;
      break;
    case Op::StoreRef:
      Out << "f" << I.A << ", r" << I.B;
      break;
    case Op::IncDec:
      Out << "r" << I.A << ", f" << I.B << (I.C ? " ++" : " --");
      break;
    }
    Out << "\n";
  }
  std::string NextPrefix = Prefix.empty() ? Ch.Name : Prefix + "." + Ch.Name;
  for (const std::unique_ptr<Chunk> &P : Ch.Protos) {
    Out << "\n";
    disasmChunk(*P, NextPrefix, Out);
  }
}

} // namespace

std::string vault::vm::disassemble(const Chunk &Ch) {
  std::ostringstream Out;
  disasmChunk(Ch, "", Out);
  return Out.str();
}
