//===- Compile.cpp - Checked AST → register bytecode ----------------------===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
// Compiles one function to a vm::Chunk. The pass is a single
// syntax-directed walk that mirrors the tree-walker's evaluation
// order exactly (operand order, deref points, trap points), so the
// two engines stay observably identical.
//
// Scoping: the tree-walker resolves names dynamically through an Env
// chain built at run time. The compiler replicates that with *chains*
// of candidate bindings plus per-slot bound bits: a declaration marks
// its slot bound when (and only when) the declaration statement
// executes, and a scope-entry reset unbinds the block's slots so each
// execution behaves like a fresh Env frame. Locals referenced from
// nested functions are promoted to heap boxes materialized at scope
// entry — the same object identity a captured Env frame gives.
//
//===----------------------------------------------------------------------===//

#include "vm/Bytecode.h"
#include "sema/Checker.h"

#include <set>

using namespace vault;
using namespace vault::vm;

namespace {

//===----------------------------------------------------------------------===//
// Capture pre-pass
//===----------------------------------------------------------------------===//

void collectNames(const Expr *E, std::set<std::string> &Out);

void collectNames(const Stmt *S, std::set<std::string> &Out) {
  if (!S)
    return;
  switch (S->kind()) {
  case StmtKind::Block:
    for (const Stmt *Sub : cast<BlockStmt>(S)->stmts())
      collectNames(Sub, Out);
    return;
  case StmtKind::Decl: {
    const Decl *D = cast<DeclStmt>(S)->decl();
    if (const auto *V = dyn_cast<VarDecl>(D))
      collectNames(V->init(), Out);
    else if (const auto *F = dyn_cast<FuncDecl>(D))
      collectNames(F->body(), Out);
    return;
  }
  case StmtKind::Expr:
    collectNames(cast<ExprStmt>(S)->expr(), Out);
    return;
  case StmtKind::If: {
    const auto *I = cast<IfStmt>(S);
    collectNames(I->cond(), Out);
    collectNames(I->thenStmt(), Out);
    collectNames(I->elseStmt(), Out);
    return;
  }
  case StmtKind::While: {
    const auto *W = cast<WhileStmt>(S);
    collectNames(W->cond(), Out);
    collectNames(W->body(), Out);
    return;
  }
  case StmtKind::Return:
    collectNames(cast<ReturnStmt>(S)->value(), Out);
    return;
  case StmtKind::Switch: {
    const auto *Sw = cast<SwitchStmt>(S);
    collectNames(Sw->subject(), Out);
    for (const SwitchStmt::Case &C : Sw->cases())
      for (const Stmt *Sub : C.Body)
        collectNames(Sub, Out);
    return;
  }
  case StmtKind::Free:
    collectNames(cast<FreeStmt>(S)->operand(), Out);
    return;
  case StmtKind::Borrow:
    collectNames(cast<BorrowStmt>(S)->source(), Out);
    return;
  case StmtKind::EndBorrow:
    collectNames(cast<EndBorrowStmt>(S)->operand(), Out);
    return;
  }
}

void collectNames(const Expr *E, std::set<std::string> &Out) {
  if (!E)
    return;
  switch (E->kind()) {
  case ExprKind::IntLiteral:
  case ExprKind::BoolLiteral:
  case ExprKind::StringLiteral:
    return;
  case ExprKind::Name:
    Out.insert(cast<NameExpr>(E)->name());
    return;
  case ExprKind::Call: {
    const auto *C = cast<CallExpr>(E);
    collectNames(C->callee(), Out);
    for (const Expr *A : C->args())
      collectNames(A, Out);
    return;
  }
  case ExprKind::Ctor:
    for (const Expr *A : cast<CtorExpr>(E)->args())
      collectNames(A, Out);
    return;
  case ExprKind::New: {
    const auto *N = cast<NewExpr>(E);
    for (const NewExpr::FieldInit &FI : N->inits())
      collectNames(FI.Init, Out);
    collectNames(N->region(), Out);
    return;
  }
  case ExprKind::Field:
    collectNames(cast<FieldExpr>(E)->base(), Out);
    return;
  case ExprKind::Index: {
    const auto *Ix = cast<IndexExpr>(E);
    collectNames(Ix->base(), Out);
    collectNames(Ix->index(), Out);
    return;
  }
  case ExprKind::Unary:
    collectNames(cast<UnaryExpr>(E)->operand(), Out);
    return;
  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    collectNames(B->lhs(), Out);
    collectNames(B->rhs(), Out);
    return;
  }
  case ExprKind::Assign: {
    const auto *A = cast<AssignExpr>(E);
    collectNames(A->lhs(), Out);
    collectNames(A->rhs(), Out);
    return;
  }
  case ExprKind::IncDec:
    collectNames(cast<IncDecExpr>(E)->base(), Out);
    return;
  case ExprKind::Tuple:
    for (const Expr *El : cast<TupleExpr>(E)->elems())
      collectNames(El, Out);
    return;
  }
}

/// Every name referenced inside any nested function declared under
/// \p S (transitively). An over-approximation: a name in this set that
/// gets declared in the enclosing function is promoted to a box.
void scanForCaptures(const Stmt *S, std::set<std::string> &Out) {
  if (!S)
    return;
  switch (S->kind()) {
  case StmtKind::Block:
    for (const Stmt *Sub : cast<BlockStmt>(S)->stmts())
      scanForCaptures(Sub, Out);
    return;
  case StmtKind::Decl:
    if (const auto *F = dyn_cast<FuncDecl>(cast<DeclStmt>(S)->decl()))
      collectNames(F->body(), Out);
    return;
  case StmtKind::If: {
    const auto *I = cast<IfStmt>(S);
    scanForCaptures(I->thenStmt(), Out);
    scanForCaptures(I->elseStmt(), Out);
    return;
  }
  case StmtKind::While:
    scanForCaptures(cast<WhileStmt>(S)->body(), Out);
    return;
  case StmtKind::Switch:
    for (const SwitchStmt::Case &C : cast<SwitchStmt>(S)->cases())
      for (const Stmt *Sub : C.Body)
        scanForCaptures(Sub, Out);
    return;
  default:
    return;
  }
}

//===----------------------------------------------------------------------===//
// Per-function compiler
//===----------------------------------------------------------------------===//

class FuncCompiler {
public:
  FuncCompiler(VaultCompiler &C, const FuncDecl *F, FuncCompiler *Parent)
      : Compiler(C), Fn(F), Parent(Parent) {}

  std::unique_ptr<Chunk> compile();

  /// Upvalue descriptors of this (nested) function, in enclosing-frame
  /// terms — the parent copies them into the ClosureSite.
  std::vector<UpvalSrc> takeUpvals() { return std::move(Upvals); }

  /// Called by a nested function's compiler: every candidate binding
  /// of \p Name visible at the current compile position, expressed as
  /// upvalue sources in *this* function's frame terms.
  std::vector<UpvalSrc> upvalSourcesFor(const std::string &Name);

private:
  // -- Emission ---------------------------------------------------------
  size_t emit(Op O, uint16_t A = 0, uint16_t B = 0, uint16_t C = 0,
              uint32_t X = 0) {
    Ch->Code.push_back({O, A, B, C, X});
    return Ch->Code.size() - 1;
  }
  uint32_t here() const { return static_cast<uint32_t>(Ch->Code.size()); }
  void patchX(size_t At, uint32_t X) { Ch->Code[At].X = X; }

  uint32_t intIdx(int64_t V) {
    auto [It, New] = IntPool.try_emplace(V, Ch->Ints.size());
    if (New)
      Ch->Ints.push_back(V);
    return static_cast<uint32_t>(It->second);
  }
  uint32_t strIdx(const std::string &S) {
    auto [It, New] = StrPool.try_emplace(S, Ch->Strs.size());
    if (New)
      Ch->Strs.push_back(S);
    return static_cast<uint32_t>(It->second);
  }

  // -- Registers, boxes, refs -------------------------------------------
  void growRegs(uint16_t N) {
    if (N > Ch->NumRegs)
      Ch->NumRegs = N;
  }
  uint16_t allocTmp() {
    uint16_t R = NextTmp++;
    growRegs(NextTmp);
    return R;
  }
  uint16_t tmpMark() const { return NextTmp; }
  void freeTmp(uint16_t Mark) { NextTmp = Mark > LocalTop ? Mark : LocalTop; }
  uint16_t allocLocal() {
    uint16_t R = LocalTop++;
    if (NextTmp < LocalTop)
      NextTmp = LocalTop;
    growRegs(NextTmp);
    return R;
  }
  uint16_t allocBox() { return Ch->NumBoxes++; }
  uint16_t allocRef() {
    uint16_t R = NextRef++;
    if (NextRef > Ch->NumRefs)
      Ch->NumRefs = NextRef;
    return R;
  }

  // -- Scopes -----------------------------------------------------------
  struct ScopeInfo {
    std::map<std::string, Binding> Names;
    uint16_t SavedLocalTop = 0;
    size_t ResetInsn = SIZE_MAX; ///< ScopeReset placeholder, SIZE_MAX if none
    ResetList Resets;
  };

  /// Opens a scope; \p WithReset emits a ScopeReset placeholder so the
  /// scope's declarations start unbound on every execution.
  void openScope(bool WithReset) {
    ScopeInfo S;
    S.SavedLocalTop = LocalTop;
    if (WithReset)
      S.ResetInsn = emit(Op::ScopeReset);
    Scopes.push_back(std::move(S));
  }
  void closeScope() {
    ScopeInfo &S = Scopes.back();
    if (S.ResetInsn != SIZE_MAX) {
      if (S.Resets.Regs.empty() && S.Resets.Boxes.empty()) {
        Ch->Code[S.ResetInsn].O = Op::Nop;
      } else {
        Ch->Resets.push_back(std::move(S.Resets));
        patchX(S.ResetInsn, static_cast<uint32_t>(Ch->Resets.size() - 1));
      }
    }
    LocalTop = S.SavedLocalTop;
    if (NextTmp < LocalTop)
      NextTmp = LocalTop;
    Scopes.pop_back();
  }

  /// Registers a declaration in the current scope, adding its slot to
  /// the scope's reset list. Switch binders and params use
  /// declareNoReset: their own construct (re)binds them.
  void declare(const std::string &Name, Binding B) {
    Scopes.back().Names[Name] = B;
    if (Scopes.back().ResetInsn != SIZE_MAX) {
      if (B.K == Binding::Kind::Reg)
        Scopes.back().Resets.Regs.push_back(B.Index);
      else
        Scopes.back().Resets.Boxes.push_back(B.Index);
    }
  }
  void declareNoReset(const std::string &Name, Binding B) {
    Scopes.back().Names[Name] = B;
  }

  uint16_t addUpval(UpvalSrc S) {
    for (size_t I = 0; I != Upvals.size(); ++I)
      if (Upvals[I].K == S.K && Upvals[I].Index == S.Index)
        return static_cast<uint16_t>(I);
    Upvals.push_back(S);
    return static_cast<uint16_t>(Upvals.size() - 1);
  }

  /// The ordered candidate bindings of \p Name at the current compile
  /// position: this function's scopes innermost-first, then enclosing
  /// functions' (boxed) bindings as upvalues.
  NameChain buildChain(const std::string &Name) {
    NameChain C;
    C.NameIdx = strIdx(Name);
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
      auto F = It->Names.find(Name);
      if (F != It->Names.end())
        C.Bindings.push_back(F->second);
    }
    if (Parent)
      for (UpvalSrc S : Parent->upvalSourcesFor(Name))
        C.Bindings.push_back({Binding::Kind::Upval, addUpval(S)});
    return C;
  }
  uint32_t pushChain(NameChain C) {
    Ch->Chains.push_back(std::move(C));
    return static_cast<uint32_t>(Ch->Chains.size() - 1);
  }

  // -- Compilation ------------------------------------------------------
  void compileStmt(const Stmt *S);
  void compileBlock(const BlockStmt *B);
  uint16_t compileExpr(const Expr *E);
  uint16_t compileCall(const CallExpr *E);
  uint16_t compileRef(const Expr *E);
  uint32_t compileClosure(const FuncDecl *F);

  VaultCompiler &Compiler;
  const FuncDecl *Fn;
  FuncCompiler *Parent;
  std::unique_ptr<Chunk> Ch;
  std::set<std::string> Captured;
  std::vector<ScopeInfo> Scopes;
  std::vector<UpvalSrc> Upvals;
  std::map<int64_t, size_t> IntPool;
  std::map<std::string, size_t> StrPool;
  uint16_t LocalTop = 0;
  uint16_t NextTmp = 0;
  uint16_t NextRef = 0;
};

std::vector<UpvalSrc> FuncCompiler::upvalSourcesFor(const std::string &Name) {
  std::vector<UpvalSrc> Out;
  for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
    auto F = It->Names.find(Name);
    // The capture pre-pass boxes every binding a nested function can
    // see, so only Box bindings are exportable.
    if (F != It->Names.end() && F->second.K == Binding::Kind::Box)
      Out.push_back({UpvalSrc::Kind::FromBox, F->second.Index});
  }
  if (Parent)
    for (UpvalSrc S : Parent->upvalSourcesFor(Name))
      Out.push_back({UpvalSrc::Kind::FromUpval, addUpval(S)});
  return Out;
}

std::unique_ptr<Chunk> FuncCompiler::compile() {
  Ch = std::make_unique<Chunk>();
  Ch->Name = Fn->name();
  Ch->Decl = Fn;
  scanForCaptures(Fn->body(), Captured);

  // Parameter scope: registers 0..N-1 in declaration order, promoted
  // to boxes when a nested function references the name.
  openScope(/*WithReset=*/false);
  Ch->NumParams = static_cast<uint16_t>(Fn->params().size());
  for (const FuncDecl::Param &P : Fn->params()) {
    uint16_t R = allocLocal();
    Ch->ParamNamed.push_back(!P.Name.empty());
    if (P.Name.empty())
      continue;
    if (Captured.count(P.Name)) {
      uint16_t B = allocBox();
      declareNoReset(P.Name, {Binding::Kind::Box, B});
      emit(Op::BoxParam, B, R);
    } else {
      declareNoReset(P.Name, {Binding::Kind::Reg, R});
    }
  }
  compileBlock(Fn->body());
  closeScope();
  return std::move(Ch);
}

void FuncCompiler::compileBlock(const BlockStmt *B) {
  openScope(/*WithReset=*/true);
  for (const Stmt *S : B->stmts())
    compileStmt(S);
  closeScope();
}

uint32_t FuncCompiler::compileClosure(const FuncDecl *F) {
  FuncCompiler Child(Compiler, F, this);
  std::unique_ptr<Chunk> Proto = Child.compile();
  ClosureSite Site;
  Site.Upvals = Child.takeUpvals();
  Ch->Protos.push_back(std::move(Proto));
  Site.ProtoIdx = static_cast<uint32_t>(Ch->Protos.size() - 1);
  Ch->Closures.push_back(std::move(Site));
  return static_cast<uint32_t>(Ch->Closures.size() - 1);
}

void FuncCompiler::compileStmt(const Stmt *S) {
  uint16_t Mark = tmpMark();
  uint16_t RefMark = NextRef;
  switch (S->kind()) {
  case StmtKind::Block:
    compileBlock(cast<BlockStmt>(S));
    break;
  case StmtKind::Decl: {
    const Decl *D = cast<DeclStmt>(S)->decl();
    if (const auto *V = dyn_cast<VarDecl>(D)) {
      bool Cap = Captured.count(V->name()) != 0;
      Binding Bd = Cap ? Binding{Binding::Kind::Box, allocBox()}
                       : Binding{Binding::Kind::Reg, allocLocal()};
      // Registered before the initializer compiles: a self-reference
      // in the initializer sees the (still unbound) new slot and falls
      // through to outer bindings, like the tree-walker's
      // evaluate-then-insert order.
      declare(V->name(), Bd);
      uint16_t T;
      if (V->init()) {
        T = compileExpr(V->init());
      } else {
        T = allocTmp();
        emit(Op::LoadUnit, T);
      }
      emit(Cap ? Op::SetBox : Op::BindReg, Bd.Index, T);
      break;
    }
    if (const auto *F = dyn_cast<FuncDecl>(D)) {
      bool Cap = Captured.count(F->name()) != 0;
      Binding Bd = Cap ? Binding{Binding::Kind::Box, allocBox()}
                       : Binding{Binding::Kind::Reg, allocLocal()};
      declare(F->name(), Bd);
      uint32_t SiteIdx = compileClosure(F);
      uint16_t T = allocTmp();
      emit(Op::Closure, T, 0, 0, SiteIdx);
      emit(Cap ? Op::SetBox : Op::BindReg, Bd.Index, T);
      break;
    }
    break;
  }
  case StmtKind::Expr:
    compileExpr(cast<ExprStmt>(S)->expr());
    break;
  case StmtKind::If: {
    const auto *I = cast<IfStmt>(S);
    uint16_t C = compileExpr(I->cond());
    size_t JF = emit(Op::JumpIfFalse, C);
    compileStmt(I->thenStmt());
    if (I->elseStmt()) {
      size_t J = emit(Op::Jump);
      patchX(JF, here());
      compileStmt(I->elseStmt());
      patchX(J, here());
    } else {
      patchX(JF, here());
    }
    break;
  }
  case StmtKind::While: {
    const auto *W = cast<WhileStmt>(S);
    uint32_t LCond = here();
    uint16_t C = compileExpr(W->cond());
    size_t JF = emit(Op::JumpIfFalse, C);
    emit(Op::Step); // one step per iteration, like the tree-walker
    compileStmt(W->body());
    emit(Op::Jump, 0, 0, 0, LCond);
    patchX(JF, here());
    break;
  }
  case StmtKind::Return: {
    const auto *R = cast<ReturnStmt>(S);
    uint16_t T;
    if (R->value()) {
      T = compileExpr(R->value());
    } else {
      T = allocTmp();
      emit(Op::LoadUnit, T);
    }
    emit(Op::Ret, T);
    break;
  }
  case StmtKind::Switch: {
    const auto *Sw = cast<SwitchStmt>(S);
    uint16_t Subj = compileExpr(Sw->subject());
    Ch->Switches.emplace_back();
    uint32_t SiteIdx = static_cast<uint32_t>(Ch->Switches.size() - 1);
    emit(Op::SwitchV, Subj, 0, 0, SiteIdx);
    SwitchSite Site;
    std::vector<size_t> EndJumps;
    for (const SwitchStmt::Case &C : Sw->cases()) {
      uint32_t Target = here();
      openScope(/*WithReset=*/true);
      if (C.Pattern.IsDefault) {
        // Like the tree-walker's scan, the *last* default wins.
        Site.DefaultTarget = Target;
      } else {
        SwitchCase SC;
        SC.TagIdx = strIdx(C.Pattern.CtorName);
        SC.Target = Target;
        for (const std::string &BinderName : C.Pattern.Binders) {
          SwitchBinder SB;
          SB.Named = !BinderName.empty();
          if (SB.Named) {
            if (Captured.count(BinderName)) {
              SB.K = Binding::Kind::Box;
              SB.Index = allocBox();
            } else {
              SB.K = Binding::Kind::Reg;
              SB.Index = allocLocal();
            }
            declareNoReset(BinderName, {SB.K, SB.Index});
          }
          SC.Binders.push_back(SB);
        }
        Site.Cases.push_back(std::move(SC));
      }
      for (const Stmt *Sub : C.Body)
        compileStmt(Sub);
      closeScope();
      EndJumps.push_back(emit(Op::Jump));
    }
    uint32_t End = here();
    for (size_t J : EndJumps)
      patchX(J, End);
    Site.EndTarget = End;
    Ch->Switches[SiteIdx] = std::move(Site);
    break;
  }
  case StmtKind::Free: {
    uint16_t T = compileExpr(cast<FreeStmt>(S)->operand());
    emit(Op::FreeV, T);
    break;
  }
  case StmtKind::Borrow: {
    const auto *B = cast<BorrowStmt>(S);
    bool Cap = Captured.count(B->binderName()) != 0;
    Binding Bd = Cap ? Binding{Binding::Kind::Box, allocBox()}
                     : Binding{Binding::Kind::Reg, allocLocal()};
    declare(B->binderName(), Bd);
    uint16_t T = compileExpr(B->source());
    emit(Cap ? Op::BorrowBox : Op::BorrowReg, Bd.Index, T);
    break;
  }
  case StmtKind::EndBorrow: {
    uint16_t T = compileExpr(cast<EndBorrowStmt>(S)->operand());
    emit(Op::EndBorrowV, T);
    break;
  }
  }
  freeTmp(Mark);
  NextRef = RefMark;
}

uint16_t FuncCompiler::compileCall(const CallExpr *E) {
  uint16_t Dst = allocTmp();
  CallSite Site;
  const Expr *CalleeE = E->callee();
  if (const auto *N = dyn_cast<NameExpr>(CalleeE)) {
    Site.NameIdx = strIdx(N->name());
    NameChain Chain = buildChain(N->name());
    if (!Chain.Bindings.empty()) {
      Site.ChainIdx = pushChain(std::move(Chain));
      Site.CalleeRef = allocRef();
    }
  } else {
    const auto *F = dyn_cast<FieldExpr>(CalleeE);
    const NameExpr *Base = F ? dyn_cast<NameExpr>(F->base()) : nullptr;
    if (!Base) {
      // The tree-walker traps before evaluating any argument.
      emit(Op::LoadUnit, Dst);
      emit(Op::TrapMsg, 0, 0, 0, strIdx("unsupported call target"));
      return Dst;
    }
    Site.NameIdx = strIdx(F->field());
    Site.QualIdx = strIdx(Base->name() + "." + F->field());
  }
  Ch->Calls.push_back(Site);
  uint32_t SiteIdx = static_cast<uint32_t>(Ch->Calls.size() - 1);
  // Resolve the local-shadow callee before the arguments, like the
  // tree-walker's lookup (argument effects can rebind the name; the
  // call still goes through the originally resolved slot).
  if (Site.ChainIdx != NoIndex)
    emit(Op::Callee, 0, 0, 0, SiteIdx);
  uint16_t NArgs = static_cast<uint16_t>(E->args().size());
  uint16_t ArgBase = NextTmp;
  for (uint16_t I = 0; I != NArgs; ++I)
    allocTmp();
  for (uint16_t I = 0; I != NArgs; ++I) {
    uint16_t R = compileExpr(E->args()[I]);
    emit(Op::Move, static_cast<uint16_t>(ArgBase + I), R);
    freeTmp(static_cast<uint16_t>(ArgBase + NArgs));
  }
  emit(Op::Call, Dst, ArgBase, NArgs, SiteIdx);
  freeTmp(ArgBase);
  return Dst;
}

uint16_t FuncCompiler::compileRef(const Expr *E) {
  if (const auto *N = dyn_cast<NameExpr>(E)) {
    uint16_t Ref = allocRef();
    emit(Op::RefName, Ref, 0, 0, pushChain(buildChain(N->name())));
    return Ref;
  }
  if (const auto *F = dyn_cast<FieldExpr>(E)) {
    uint16_t Ref = compileRef(F->base());
    size_t JOk = emit(Op::JumpIfRefOk, Ref);
    // Base may be an rvalue (e.g. a call); materialize it. The
    // register stays live until the enclosing statement completes.
    uint16_t T = compileExpr(F->base());
    emit(Op::RefTmp, Ref, T);
    patchX(JOk, here());
    emit(Op::RefField, Ref, Ref, 0, strIdx(F->field()));
    return Ref;
  }
  if (const auto *Ix = dyn_cast<IndexExpr>(E)) {
    uint16_t Ref = compileRef(Ix->base());
    // A null base short-circuits without evaluating the index.
    size_t JNull = emit(Op::JumpIfRefNull, Ref);
    uint16_t T = compileExpr(Ix->index());
    emit(Op::RefIndex, Ref, Ref, T);
    patchX(JNull, here());
    return Ref;
  }
  uint16_t Ref = allocRef();
  emit(Op::RefNull, Ref);
  return Ref;
}

uint16_t FuncCompiler::compileExpr(const Expr *E) {
  switch (E->kind()) {
  case ExprKind::IntLiteral: {
    uint16_t T = allocTmp();
    emit(Op::LoadInt, T, 0, 0, intIdx(cast<IntLiteralExpr>(E)->value()));
    return T;
  }
  case ExprKind::BoolLiteral: {
    uint16_t T = allocTmp();
    emit(Op::LoadBool, T, cast<BoolLiteralExpr>(E)->value() ? 1 : 0);
    return T;
  }
  case ExprKind::StringLiteral: {
    uint16_t T = allocTmp();
    emit(Op::LoadStr, T, 0, 0, strIdx(cast<StringLiteralExpr>(E)->value()));
    return T;
  }
  case ExprKind::Name: {
    uint16_t T = allocTmp();
    emit(Op::LoadName, T, 0, 0,
         pushChain(buildChain(cast<NameExpr>(E)->name())));
    return T;
  }
  case ExprKind::Call:
    return compileCall(cast<CallExpr>(E));
  case ExprKind::Ctor: {
    const auto *C = cast<CtorExpr>(E);
    uint16_t Dst = allocTmp();
    uint16_t N = static_cast<uint16_t>(C->args().size());
    uint16_t Base = NextTmp;
    for (uint16_t I = 0; I != N; ++I)
      allocTmp();
    for (uint16_t I = 0; I != N; ++I) {
      uint16_t R = compileExpr(C->args()[I]);
      emit(Op::Move, static_cast<uint16_t>(Base + I), R);
      freeTmp(static_cast<uint16_t>(Base + N));
    }
    emit(Op::CtorV, Dst, Base, N, strIdx(C->name()));
    freeTmp(Base);
    return Dst;
  }
  case ExprKind::New: {
    const auto *N = cast<NewExpr>(E);
    uint16_t Dst = allocTmp();
    NewSite Site;
    if (const auto *Named = dyn_cast<NamedTypeExpr>(N->typeExpr()))
      if (const auto *StD = dyn_cast<StructDecl>(
              Compiler.globals().findType(Named->name())))
        for (const StructDecl::Field &F : StD->fields())
          Site.ZeroFields.push_back(strIdx(F.Name));
    for (const NewExpr::FieldInit &FI : N->inits())
      Site.InitFields.push_back(strIdx(FI.Field));
    Site.Tracked = N->isTracked();
    Site.HasRegion = N->region() != nullptr;
    uint16_t NArgs =
        static_cast<uint16_t>(N->inits().size() + (Site.HasRegion ? 1 : 0));
    uint16_t Base = NextTmp;
    for (uint16_t I = 0; I != NArgs; ++I)
      allocTmp();
    for (size_t I = 0; I != N->inits().size(); ++I) {
      uint16_t R = compileExpr(N->inits()[I].Init);
      emit(Op::Move, static_cast<uint16_t>(Base + I), R);
      freeTmp(static_cast<uint16_t>(Base + NArgs));
    }
    if (Site.HasRegion) {
      uint16_t R = compileExpr(N->region());
      emit(Op::Move, static_cast<uint16_t>(Base + NArgs - 1), R);
      freeTmp(static_cast<uint16_t>(Base + NArgs));
    }
    Ch->News.push_back(std::move(Site));
    emit(Op::NewObj, Dst, Base, 0, static_cast<uint32_t>(Ch->News.size() - 1));
    freeTmp(Base);
    return Dst;
  }
  case ExprKind::Field: {
    const auto *F = cast<FieldExpr>(E);
    uint16_t B = compileExpr(F->base());
    emit(Op::Field, B, B, 0, strIdx(F->field()));
    return B;
  }
  case ExprKind::Index: {
    const auto *Ix = cast<IndexExpr>(E);
    uint16_t B = compileExpr(Ix->base());
    uint16_t I = compileExpr(Ix->index());
    emit(Op::Index, B, B, I);
    freeTmp(I);
    return B;
  }
  case ExprKind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    uint16_t V = compileExpr(U->operand());
    emit(Op::Deref, V, V, 0, strIdx("operand"));
    emit(U->op() == UnaryOp::Not ? Op::Not : Op::Neg, V, V);
    return V;
  }
  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    if (B->op() == BinaryOp::And || B->op() == BinaryOp::Or) {
      bool IsAnd = B->op() == BinaryOp::And;
      uint16_t Dst = allocTmp();
      uint16_t L = compileExpr(B->lhs());
      size_t JShort = emit(IsAnd ? Op::JumpIfFalse : Op::JumpIfTrue, L);
      uint16_t R = compileExpr(B->rhs());
      emit(Op::ToBool, Dst, R);
      size_t JEnd = emit(Op::Jump);
      patchX(JShort, here());
      emit(Op::LoadBool, Dst, IsAnd ? 0 : 1);
      patchX(JEnd, here());
      freeTmp(static_cast<uint16_t>(Dst + 1));
      return Dst;
    }
    uint16_t L = compileExpr(B->lhs());
    emit(Op::Deref, L, L, 0, strIdx("operand"));
    uint16_t R = compileExpr(B->rhs());
    emit(Op::Deref, R, R, 0, strIdx("operand"));
    Op O;
    switch (B->op()) {
    case BinaryOp::Add: O = Op::Add; break;
    case BinaryOp::Sub: O = Op::Sub; break;
    case BinaryOp::Mul: O = Op::Mul; break;
    case BinaryOp::Div: O = Op::Div; break;
    case BinaryOp::Rem: O = Op::Rem; break;
    case BinaryOp::Eq:  O = Op::Eq;  break;
    case BinaryOp::Ne:  O = Op::Ne;  break;
    case BinaryOp::Lt:  O = Op::Lt;  break;
    case BinaryOp::Le:  O = Op::Le;  break;
    case BinaryOp::Gt:  O = Op::Gt;  break;
    case BinaryOp::Ge:  O = Op::Ge;  break;
    default:            O = Op::Nop; break;
    }
    emit(O, L, L, R);
    freeTmp(R);
    return L;
  }
  case ExprKind::Assign: {
    const auto *A = cast<AssignExpr>(E);
    uint16_t RHS = compileExpr(A->rhs());
    if (const auto *N = dyn_cast<NameExpr>(A->lhs())) {
      uint16_t Ref = allocRef();
      emit(Op::RefName, Ref, 0, 0, pushChain(buildChain(N->name())));
      size_t JOk = emit(Op::JumpIfRefOk, Ref);
      emit(Op::AssignUnknown, 0, 0, 0, strIdx(N->name()));
      patchX(JOk, here());
      emit(Op::StoreRef, Ref, RHS);
    } else {
      uint16_t Ref = compileRef(A->lhs());
      emit(Op::StoreRef, Ref, RHS);
    }
    emit(Op::LoadUnit, RHS);
    return RHS;
  }
  case ExprKind::IncDec: {
    const auto *I = cast<IncDecExpr>(E);
    uint16_t Dst = allocTmp();
    uint16_t Ref = compileRef(I->base());
    emit(Op::IncDec, Dst, Ref, I->isIncrement() ? 1 : 0);
    return Dst;
  }
  case ExprKind::Tuple: {
    const auto *T = cast<TupleExpr>(E);
    uint16_t Dst = allocTmp();
    uint16_t N = static_cast<uint16_t>(T->elems().size());
    uint16_t Base = NextTmp;
    for (uint16_t I = 0; I != N; ++I)
      allocTmp();
    for (uint16_t I = 0; I != N; ++I) {
      uint16_t R = compileExpr(T->elems()[I]);
      emit(Op::Move, static_cast<uint16_t>(Base + I), R);
      freeTmp(static_cast<uint16_t>(Base + N));
    }
    emit(Op::MakeTuple, Dst, Base, N);
    freeTmp(Base);
    return Dst;
  }
  }
  uint16_t T = allocTmp();
  emit(Op::LoadUnit, T);
  return T;
}

} // namespace

std::unique_ptr<Chunk> vault::vm::compileFunction(VaultCompiler &C,
                                                  const FuncDecl *F) {
  FuncCompiler FC(C, F, nullptr);
  return FC.compile();
}
