//===- bench_keyset.cpp - Held-key-set micro costs (B2) -------------------===//
//
// Part of the Vault reproduction of DeLine & Fähndrich, PLDI 2001.
//
// Micro-costs of the checker's core data structure: add/remove/query/
// transition/rename on held-key sets of various sizes. These bound the
// per-program-point cost of the flow analysis.
//
//===----------------------------------------------------------------------===//

#include "types/KeySet.h"

#include <benchmark/benchmark.h>

using namespace vault;

namespace {

std::vector<KeySym> makeKeys(KeyTable &T, size_t N) {
  std::vector<KeySym> Keys;
  Keys.reserve(N);
  for (size_t I = 0; I != N; ++I)
    Keys.push_back(T.create("k", KeyTable::Origin::Local, SourceLoc{}));
  return Keys;
}

void BM_AddRemove(benchmark::State &State) {
  KeyTable T;
  auto Keys = makeKeys(T, static_cast<size_t>(State.range(0)));
  for (auto _ : State) {
    HeldKeySet S;
    for (KeySym K : Keys)
      S.add(K, StateRef::top());
    for (KeySym K : Keys)
      S.remove(K);
    benchmark::DoNotOptimize(S.size());
  }
  State.SetItemsProcessed(State.iterations() * Keys.size() * 2);
}
BENCHMARK(BM_AddRemove)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_Contains(benchmark::State &State) {
  KeyTable T;
  auto Keys = makeKeys(T, static_cast<size_t>(State.range(0)));
  HeldKeySet S;
  for (KeySym K : Keys)
    S.add(K, StateRef::top());
  size_t I = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(S.contains(Keys[I++ % Keys.size()]));
  }
}
BENCHMARK(BM_Contains)->Arg(4)->Arg(64)->Arg(1024);

void BM_Transition(benchmark::State &State) {
  KeyTable T;
  auto Keys = makeKeys(T, 64);
  HeldKeySet S;
  for (KeySym K : Keys)
    S.add(K, StateRef::name("raw"));
  size_t I = 0;
  StateRef Named = StateRef::name("named");
  for (auto _ : State)
    benchmark::DoNotOptimize(S.transition(Keys[I++ % Keys.size()], Named));
}
BENCHMARK(BM_Transition);

void BM_CopyForBranch(benchmark::State &State) {
  // Each if/switch branch copies the flow state; this is the dominant
  // join-point cost.
  KeyTable T;
  auto Keys = makeKeys(T, static_cast<size_t>(State.range(0)));
  HeldKeySet S;
  for (KeySym K : Keys)
    S.add(K, StateRef::name("s"));
  for (auto _ : State) {
    HeldKeySet Copy = S;
    benchmark::DoNotOptimize(Copy.size());
  }
}
BENCHMARK(BM_CopyForBranch)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_RenameKeys(benchmark::State &State) {
  // Join-point canonicalization renames local keys (legacy std::map
  // interface; kept to track the compatibility-wrapper overhead).
  KeyTable T;
  auto Keys = makeKeys(T, static_cast<size_t>(State.range(0)));
  auto Fresh = makeKeys(T, Keys.size());
  std::map<KeySym, KeySym> Rename;
  for (size_t I = 0; I != Keys.size(); ++I)
    Rename[Keys[I]] = Fresh[I];
  HeldKeySet S;
  for (KeySym K : Keys)
    S.add(K, StateRef::top());
  for (auto _ : State) {
    HeldKeySet Copy = S;
    bool Ok = Copy.renameKeys(Rename);
    benchmark::DoNotOptimize(Ok);
    benchmark::DoNotOptimize(Copy.size());
  }
}
BENCHMARK(BM_RenameKeys)->Arg(4)->Arg(64);

void BM_RenameKeysFlat(benchmark::State &State) {
  // The flat KeyRename path joinStates actually uses: no std::map
  // conversion, pairs pre-sorted by source key.
  KeyTable T;
  auto Keys = makeKeys(T, static_cast<size_t>(State.range(0)));
  auto Fresh = makeKeys(T, Keys.size());
  KeyRename Rename;
  for (size_t I = 0; I != Keys.size(); ++I)
    Rename.add(Keys[I], Fresh[I]);
  HeldKeySet S;
  for (KeySym K : Keys)
    S.add(K, StateRef::top());
  for (auto _ : State) {
    HeldKeySet Copy = S;
    bool Ok = Copy.renameKeys(Rename);
    benchmark::DoNotOptimize(Ok);
    benchmark::DoNotOptimize(Copy.size());
  }
}
BENCHMARK(BM_RenameKeysFlat)->Arg(4)->Arg(64);

void BM_Equality(benchmark::State &State) {
  KeyTable T;
  auto Keys = makeKeys(T, static_cast<size_t>(State.range(0)));
  HeldKeySet A, B;
  for (KeySym K : Keys) {
    A.add(K, StateRef::name("s"));
    B.add(K, StateRef::name("s"));
  }
  for (auto _ : State)
    benchmark::DoNotOptimize(A == B);
}
BENCHMARK(BM_Equality)->Arg(4)->Arg(64)->Arg(256);

void BM_StateSatisfiesLattice(benchmark::State &State) {
  Stateset L("IRQ", {{"PASSIVE"}, {"APC"}, {"DISPATCH"}, {"DIRQL"}});
  StateRef Held = StateRef::name("APC");
  StateRef Bound = StateRef::var(0, "DISPATCH");
  for (auto _ : State)
    benchmark::DoNotOptimize(stateSatisfies(Held, Bound, &L));
}
BENCHMARK(BM_StateSatisfiesLattice);

} // namespace
